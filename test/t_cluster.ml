open Bp_sim
open Blockplane

(* Cluster-sending (expected-constant WAN path) end-to-end, plus the
   comm daemon's adversarial input handling. The differential property
   at the bottom is the PR's core safety claim: switching the WAN path
   between fi+1-signature bundles and cluster-sending must never change
   the delivered per-source stream — same records, same order, same
   bytes — under loss, duplication, reordering and byzantine nodes. *)

let make_world ?(fi = 1) ?(cluster = true) ?faults ?verify_jobs ?(seed = 91L) ()
    =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper ?faults () in
  let dep =
    Deployment.create ~network:net ~n_participants:2 ~fi
      ~cluster_send:cluster ?verify_jobs
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  (engine, net, dep)

let payloads tag n = List.init n (fun i -> Printf.sprintf "%s-%d" tag i)

let send_all api ~dest msgs =
  List.iter (fun m -> Api.send api ~dest m ~on_done:ignore) msgs

let drain api ~src =
  let rec go acc =
    match Api.receive api ~src with
    | Some m -> go (m :: acc)
    | None -> List.rev acc
  in
  go []

let check_stream name expected got =
  Alcotest.(check (list string)) name expected got

(* -------- clean delivery, fi = 1 -------- *)

let test_clean_fi1 () =
  let engine, _net, dep = make_world ~fi:1 () in
  let a = payloads "a" 10 and b = payloads "b" 7 in
  send_all (Deployment.api dep 0) ~dest:1 a;
  send_all (Deployment.api dep 1) ~dest:0 b;
  Engine.run ~until:(Time.of_sec 10.0) engine;
  check_stream "0->1 stream" a (drain (Deployment.api dep 1) ~src:0);
  check_stream "1->0 stream" b (drain (Deployment.api dep 0) ~src:1);
  Alcotest.(check bool) "unit 0 logs agree" true (Deployment.logs_agree dep 0);
  Alcotest.(check bool) "unit 1 logs agree" true (Deployment.logs_agree dep 1)

(* -------- loss + withholding, fi = 2 -------- *)

let test_loss_withholding_fi2 () =
  (* 3% loss and fi comm-muted nodes per unit (top indices; primaries
     honest): cluster-sending must still deliver the whole stream within
     its 3fi+1 node budget — retry-with-repair, no external help. *)
  let faults = { Network.no_faults with Network.drop = 0.03 } in
  let engine, _net, dep = make_world ~fi:2 ~faults ~seed:92L () in
  let n_nodes = 7 in
  List.iter
    (fun p ->
      for i = n_nodes - 2 to n_nodes - 1 do
        Unit_node.set_byzantine_drop_comm (Deployment.node dep p i) true
      done)
    [ 0; 1 ];
  let a = payloads "wa" 8 in
  send_all (Deployment.api dep 0) ~dest:1 a;
  Engine.run ~until:(Time.of_sec 30.0) engine;
  check_stream "0->1 stream under loss+withholding" a
    (drain (Deployment.api dep 1) ~src:0)

(* -------- adversarial daemon inputs -------- *)

(* A transport at an address no honest node occupies, speaking the
   destination datacenter's aux tag — exactly what a compromised box
   inside the facility could emit. *)
let attacker net ~dc = Bp_net.Transport.create net (Addr.make ~dc ~idx:95)

let attacker_send tx ~dc msg =
  Bp_net.Transport.send tx
    ~dst:(Addr.make ~dc ~idx:0)
    ~tag:(Proto.aux_tag dc) (Proto.encode msg)

let test_ack_replay_and_forgery () =
  (* Duplicate, out-of-order and forged cumulative acks must neither
     rewind nor fast-forward the daemon's frontier: replays are stale
     (comm_seq <= acked), forgeries exceed what the daemon has seen
     committed (comm_seq > highest). *)
  let engine, net, dep = make_world ~cluster:false ~seed:93L () in
  let atk = attacker net ~dc:0 in
  let a = payloads "ack" 3 in
  send_all (Deployment.api dep 0) ~dest:1 a;
  Engine.run ~until:(Time.of_sec 10.0) engine;
  let daemon = Deployment.daemon dep ~src:0 ~dest:1 in
  (* comm_seq is 0-based; the cumulative frontier after records 0..2. *)
  Alcotest.(check int) "all three acked" 2 (Comm_daemon.acked daemon);
  (* Replayed ack (duplicate / out of order), then a forged one far
     beyond the stream. *)
  attacker_send atk ~dc:0 (Proto.Ack { from_participant = 1; comm_seq = 1 });
  attacker_send atk ~dc:0 (Proto.Ack { from_participant = 1; comm_seq = 999 });
  Engine.run ~until:(Time.of_sec 6.0) engine;
  Alcotest.(check int) "frontier unmoved by replay/forgery" 2
    (Comm_daemon.acked daemon);
  (* The daemon still works afterwards. *)
  Api.send (Deployment.api dep 0) ~dest:1 "post-attack" ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 20.0) engine;
  Alcotest.(check int) "fourth record delivered" 3 (Comm_daemon.acked daemon);
  check_stream "stream intact" (a @ [ "post-attack" ])
    (drain (Deployment.api dep 1) ~src:0)

let test_junk_sign_response () =
  (* Garbage signatures under real node identities, racing the honest
     unit round: if the daemon counted them, the bundle would carry
     invalid proofs and the destination would reject the record. The
     daemon verifies before counting, so delivery completes. *)
  let engine, net, dep = make_world ~cluster:false ~seed:94L () in
  let atk = attacker net ~dc:0 in
  let identities =
    Array.to_list (Deployment.nodes_of dep 0)
    |> List.map Unit_node.identity
  in
  (* Inject junk every 200us through the window where the daemon is
     collecting the unit round for comm_seq 1. *)
  for k = 1 to 25 do
    ignore
      (Engine.schedule engine
         ~after:(Time.of_ms (0.2 *. float_of_int k))
         (fun () ->
           List.iter
             (fun identity ->
               attacker_send atk ~dc:0
                 (Proto.Sign_response
                    {
                      dest = 1;
                      comm_seq = 1;
                      identity;
                      signature = "junk-signature";
                    }))
             identities))
  done;
  Api.send (Deployment.api dep 0) ~dest:1 "signed-for-real" ~on_done:ignore;
  Engine.run ~until:(Time.of_sec 10.0) engine;
  check_stream "junk signatures never counted" [ "signed-for-real" ]
    (drain (Deployment.api dep 1) ~src:0)

(* -------- differential: cluster ≡ bundle, byte for byte -------- *)

type profile = Clean | Lossy | Dup_reorder | Withhold | Sign_anything

let profile_name = function
  | Clean -> "clean"
  | Lossy -> "lossy"
  | Dup_reorder -> "dup+reorder"
  | Withhold -> "withhold"
  | Sign_anything -> "sign-anything"

let profile_faults = function
  | Clean -> Network.no_faults
  | Lossy -> { Network.no_faults with Network.drop = 0.03; jitter_ms = 2.0 }
  | Dup_reorder ->
      { Network.no_faults with Network.duplicate = 0.05; jitter_ms = 4.0 }
  | Withhold -> { Network.no_faults with Network.drop = 0.01 }
  | Sign_anything -> { Network.no_faults with Network.drop = 0.02 }

let apply_byzantine profile dep ~fi =
  let n_nodes = (3 * fi) + 1 in
  match profile with
  | Clean | Lossy | Dup_reorder -> ()
  | Withhold ->
      (* Top fi indices comm-muted in both units; primaries honest. *)
      List.iter
        (fun p ->
          for i = n_nodes - fi to n_nodes - 1 do
            Unit_node.set_byzantine_drop_comm (Deployment.node dep p i) true
          done)
        [ 0; 1 ]
  | Sign_anything ->
      List.iter
        (fun p ->
          for i = n_nodes - fi to n_nodes - 1 do
            Unit_node.set_byzantine_sign_anything (Deployment.node dep p i) true
          done)
        [ 0; 1 ]

let run_one ~cluster ~fi ~profile ~verify_jobs ~seed =
  let engine, _net, dep =
    make_world ~fi ~cluster ~faults:(profile_faults profile) ~verify_jobs ~seed
      ()
  in
  apply_byzantine profile dep ~fi;
  let a = payloads "fwd" 8 and b = payloads "rev" 5 in
  send_all (Deployment.api dep 0) ~dest:1 a;
  send_all (Deployment.api dep 1) ~dest:0 b;
  Engine.run ~until:(Time.of_sec 60.0) engine;
  ( drain (Deployment.api dep 1) ~src:0,
    drain (Deployment.api dep 0) ~src:1,
    a,
    b )

let differential_case ~fi ~profile ~verify_jobs ~seed =
  let c01, c10, a, b =
    run_one ~cluster:true ~fi ~profile ~verify_jobs ~seed
  in
  let b01, b10, _, _ =
    run_one ~cluster:false ~fi ~profile ~verify_jobs ~seed
  in
  (* Both paths must deliver the complete sent stream in order — and
     therefore agree with each other byte for byte. *)
  let tag dir = Printf.sprintf "%s fi=%d vj=%d %s" (profile_name profile) fi
      verify_jobs dir
  in
  check_stream (tag "cluster 0->1") a c01;
  check_stream (tag "cluster 1->0") b c10;
  check_stream (tag "bundle 0->1") a b01;
  check_stream (tag "bundle 1->0") b b10

let test_differential_matrix () =
  (* The fixed matrix covers every profile at fi = 1 and the heavier
     unit at fi = 2, across modeled verification parallelism 1/2/4 (the
     delivered bytes must be invariant in all of it). *)
  List.iter
    (fun (fi, profile, verify_jobs, seed) ->
      differential_case ~fi ~profile ~verify_jobs ~seed)
    [
      (1, Clean, 1, 201L);
      (1, Lossy, 2, 202L);
      (1, Dup_reorder, 4, 203L);
      (1, Withhold, 1, 204L);
      (1, Sign_anything, 2, 205L);
      (2, Clean, 4, 206L);
      (2, Lossy, 1, 207L);
      (2, Withhold, 2, 208L);
    ]

let prop_differential =
  QCheck.Test.make ~name:"cluster ≡ bundle delivered stream" ~count:6
    QCheck.(
      pair (int_bound 4) (pair (int_bound 1) (int_bound 1000)))
    (fun (p, (fi0, seed)) ->
      let profile =
        match p with
        | 0 -> Clean
        | 1 -> Lossy
        | 2 -> Dup_reorder
        | 3 -> Withhold
        | _ -> Sign_anything
      in
      let fi = fi0 + 1 in
      differential_case ~fi ~profile ~verify_jobs:1
        ~seed:(Int64.of_int (3000 + seed));
      true)

let suite =
  [
    ( "cluster_send",
      [
        Alcotest.test_case "clean fi=1 both directions" `Quick test_clean_fi1;
        Alcotest.test_case "loss + withholding fi=2" `Quick
          test_loss_withholding_fi2;
        Alcotest.test_case "ack replay and forgery ignored" `Quick
          test_ack_replay_and_forgery;
        Alcotest.test_case "junk sign_response rejected" `Quick
          test_junk_sign_response;
        Alcotest.test_case "differential matrix cluster≡bundle" `Slow
          test_differential_matrix;
        QCheck_alcotest.to_alcotest ~long:true prop_differential;
      ] );
  ]
