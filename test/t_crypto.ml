open Bp_util
open Bp_crypto

(* NIST / RFC test vectors. *)
let sha256_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "The quick brown fox jumps over the lazy dog",
      "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (msg, want) -> Alcotest.(check string) msg want (Sha256.hex msg))
    sha256_vectors

let test_sha256_million_a () =
  (* FIPS long vector: one million 'a'. *)
  let ctx = Sha256.init () in
  let chunk = String.make 1000 'a' in
  for _ = 1 to 1000 do
    Sha256.update ctx chunk
  done;
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Hex.encode (Sha256.finalize ctx))

let test_sha256_incremental_equals_oneshot () =
  let rng = Rng.create 100L in
  for _ = 1 to 30 do
    let len = Rng.int rng 300 in
    let s = Bytes.to_string (Rng.bytes rng len) in
    let ctx = Sha256.init () in
    (* Split at a random point. *)
    let cut = if len = 0 then 0 else Rng.int rng len in
    Sha256.update ctx (String.sub s 0 cut);
    Sha256.update ctx (String.sub s cut (len - cut));
    Alcotest.(check string) "incremental" (Sha256.digest s) (Sha256.finalize ctx)
  done

let test_sha256_block_boundaries () =
  (* Lengths straddling the 55/56/64-byte padding boundaries. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.update ctx (String.make 1 c)) s;
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        (Sha256.digest s) (Sha256.finalize ctx))
    [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_sha256_digest_list () =
  Alcotest.(check string) "list = concat"
    (Sha256.digest "foobarbaz")
    (Sha256.digest_list [ "foo"; "bar"; "baz" ])

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 1. *)
  let key = String.make 20 '\x0b' in
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hex.encode (Hmac.sha256 ~key "Hi There"));
  (* RFC 4231 test case 2. *)
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hex.encode (Hmac.sha256 ~key:"Jefe" "what do ya want for nothing?"));
  (* RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data. *)
  let key3 = String.make 20 '\xaa' and data3 = String.make 50 '\xdd' in
  Alcotest.(check string) "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hex.encode (Hmac.sha256 ~key:key3 data3))

let test_hmac_long_key () =
  (* Keys longer than the block size must be hashed first (RFC 4231 case 6). *)
  let key = String.make 131 '\xaa' in
  Alcotest.(check string) "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hex.encode
       (Hmac.sha256 ~key "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_verify () =
  let tag = Hmac.sha256 ~key:"k" "m" in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key:"k" ~msg:"m" ~tag);
  Alcotest.(check bool) "rejects wrong msg" false
    (Hmac.verify ~key:"k" ~msg:"m2" ~tag);
  Alcotest.(check bool) "rejects wrong key" false
    (Hmac.verify ~key:"k2" ~msg:"m" ~tag);
  Alcotest.(check bool) "rejects truncated tag" false
    (Hmac.verify ~key:"k" ~msg:"m" ~tag:(String.sub tag 0 16))

let test_crc32_vectors () =
  Alcotest.(check int32) "check value" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "");
  Alcotest.(check int32) "a" 0xE8B7BE43l (Crc32.string "a")

let test_crc32_incremental () =
  let s = "hello, incremental world" in
  let b = Bytes.of_string s in
  let crc1 = Crc32.string s in
  let mid = 7 in
  let crc2 =
    Crc32.update
      (Crc32.update Crc32.empty b ~off:0 ~len:mid)
      b ~off:mid ~len:(Bytes.length b - mid)
  in
  Alcotest.(check int32) "incremental equals one-shot" crc1 crc2

let test_crc32_detects_flip () =
  let s = Bytes.of_string "some payload that will be corrupted" in
  let before = Crc32.bytes s ~off:0 ~len:(Bytes.length s) in
  Bytes.set s 4 (Char.chr (Char.code (Bytes.get s 4) lxor 0x01));
  let after = Crc32.bytes s ~off:0 ~len:(Bytes.length s) in
  Alcotest.(check bool) "flip changes crc" false (before = after)

let test_merkle_empty_and_single () =
  let empty_root = Merkle.root [] in
  Alcotest.(check int) "32 bytes" 32 (String.length empty_root);
  let single = Merkle.root [ "only" ] in
  Alcotest.(check string) "single = leaf hash" (Merkle.leaf_hash "only") single

let test_merkle_proof_all_positions () =
  List.iter
    (fun n ->
      let leaves = List.init n (fun i -> Printf.sprintf "leaf-%d" i) in
      let root = Merkle.root leaves in
      List.iteri
        (fun i leaf ->
          let proof = Merkle.prove leaves i in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d i=%d verifies" n i)
            true
            (Merkle.verify ~root ~leaf proof))
        leaves)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16 ]

let test_merkle_rejects_wrong_leaf () =
  let leaves = [ "a"; "b"; "c"; "d" ] in
  let root = Merkle.root leaves in
  let proof = Merkle.prove leaves 1 in
  Alcotest.(check bool) "wrong leaf" false (Merkle.verify ~root ~leaf:"x" proof);
  Alcotest.(check bool) "wrong position leaf" false
    (Merkle.verify ~root ~leaf:"a" proof)

let test_merkle_rejects_wrong_root () =
  let leaves = [ "a"; "b"; "c" ] in
  let proof = Merkle.prove leaves 0 in
  Alcotest.(check bool) "wrong root" false
    (Merkle.verify ~root:(Merkle.root [ "a"; "b" ]) ~leaf:"a" proof)

let test_merkle_order_matters () =
  Alcotest.(check bool) "order sensitive" false
    (Merkle.root [ "a"; "b" ] = Merkle.root [ "b"; "a" ])

let test_lamport_sign_verify () =
  let rng = Rng.create 200L in
  let sk, pk = Lamport.keygen rng in
  let s = Lamport.sign sk "hello" in
  Alcotest.(check bool) "accepts" true (Lamport.verify pk "hello" s);
  Alcotest.(check bool) "rejects other msg" false (Lamport.verify pk "hellO" s)

let test_lamport_rejects_cross_key () =
  let rng = Rng.create 201L in
  let sk1, _pk1 = Lamport.keygen rng in
  let _sk2, pk2 = Lamport.keygen rng in
  let s = Lamport.sign sk1 "msg" in
  Alcotest.(check bool) "cross key" false (Lamport.verify pk2 "msg" s)

let test_lamport_encode_roundtrip () =
  let rng = Rng.create 202L in
  let sk, pk = Lamport.keygen rng in
  let s = Lamport.sign sk "roundtrip" in
  match Lamport.decode (Lamport.encode s) with
  | None -> Alcotest.fail "decode failed"
  | Some s' ->
      Alcotest.(check bool) "decoded verifies" true (Lamport.verify pk "roundtrip" s')

let test_lamport_decode_garbage () =
  Alcotest.(check bool) "short input" true (Lamport.decode "garbage" = None)

let test_merkle_sig_many () =
  let rng = Rng.create 300L in
  let signer, pk = Merkle_sig.keygen ~height:3 rng in
  Alcotest.(check int) "capacity" 8 (Merkle_sig.capacity signer);
  for i = 0 to 7 do
    let msg = Printf.sprintf "message %d" i in
    let s = Merkle_sig.sign signer msg in
    Alcotest.(check bool) "verifies" true (Merkle_sig.verify pk msg s);
    Alcotest.(check bool) "binds message" false (Merkle_sig.verify pk "other" s)
  done;
  (try
     ignore (Merkle_sig.sign signer "too many");
     Alcotest.fail "expected exhaustion"
   with Failure _ -> ())

let test_merkle_sig_encode_roundtrip () =
  let rng = Rng.create 301L in
  let signer, pk = Merkle_sig.keygen ~height:2 rng in
  let s = Merkle_sig.sign signer "wire" in
  match Merkle_sig.decode (Merkle_sig.encode s) with
  | None -> Alcotest.fail "decode failed"
  | Some s' ->
      Alcotest.(check bool) "decoded verifies" true (Merkle_sig.verify pk "wire" s')

let test_signer_hmac_scheme () =
  let rng = Rng.create 400L in
  let ks = Signer.create rng in
  Signer.add_identity ks "alice";
  Signer.add_identity ks "bob";
  let s = Signer.sign ks ~signer:"alice" "payload" in
  Alcotest.(check bool) "accepts" true
    (Signer.verify ks ~signer:"alice" ~msg:"payload" ~signature:s);
  Alcotest.(check bool) "wrong identity" false
    (Signer.verify ks ~signer:"bob" ~msg:"payload" ~signature:s);
  Alcotest.(check bool) "wrong message" false
    (Signer.verify ks ~signer:"alice" ~msg:"other" ~signature:s);
  Alcotest.(check bool) "unknown identity" false
    (Signer.verify ks ~signer:"carol" ~msg:"payload" ~signature:s)

let test_signer_hash_based_scheme () =
  let rng = Rng.create 401L in
  let ks = Signer.create ~scheme:`Hash_based rng in
  Signer.add_identity ks "alice";
  let s = Signer.sign ks ~signer:"alice" "payload" in
  Alcotest.(check bool) "accepts" true
    (Signer.verify ks ~signer:"alice" ~msg:"payload" ~signature:s);
  Alcotest.(check bool) "tampered signature" false
    (Signer.verify ks ~signer:"alice" ~msg:"payload"
       ~signature:(String.map (fun c -> Char.chr (Char.code c lxor 1)) s))

let test_signer_hash_based_rollover () =
  let rng = Rng.create 402L in
  let ks = Signer.create ~scheme:`Hash_based rng in
  Signer.add_identity ks "a";
  (* Burn through more than one 64-signature pool. *)
  let all_ok = ref true in
  for i = 0 to 70 do
    let msg = Printf.sprintf "m%d" i in
    let s = Signer.sign ks ~signer:"a" msg in
    if not (Signer.verify ks ~signer:"a" ~msg ~signature:s) then all_ok := false
  done;
  Alcotest.(check bool) "all verify across rollover" true !all_ok

let test_signer_idempotent_registration () =
  let rng = Rng.create 403L in
  let ks = Signer.create rng in
  Signer.add_identity ks "x";
  let s = Signer.sign ks ~signer:"x" "m" in
  Signer.add_identity ks "x";
  Alcotest.(check bool) "keys stable" true
    (Signer.verify ks ~signer:"x" ~msg:"m" ~signature:s)

(* ---------- differential tests against retained references ----------
   Sha256_ref is the pre-optimization Int32 implementation, kept verbatim
   as an oracle. Crc32 is checked against a straightforward bitwise
   (table-free) evaluation of the same reflected polynomial. *)

let test_sha256_ref_vectors () =
  (* The oracle itself must pass FIPS vectors, or differential agreement
     proves nothing. *)
  List.iter
    (fun (msg, want) -> Alcotest.(check string) msg want (Sha256_ref.hex msg))
    sha256_vectors

let big_input_gen =
  (* Random strings up to 1 MiB, biased so most samples are small/medium
     but every run crosses the megabyte mark at least a few times. *)
  QCheck.string_of_size
    QCheck.Gen.(
      oneof [ 0 -- 512; 0 -- 65536; 1_000_000 -- 1_048_576 ])

let qcheck_sha256_differential =
  QCheck.Test.make ~name:"sha256 = reference (inputs to 1 MiB)" ~count:16
    big_input_gen
    (fun s -> Sha256.digest s = Sha256_ref.digest s)

let qcheck_sha256_incremental_differential =
  QCheck.Test.make ~name:"sha256 incremental = reference incremental" ~count:30
    QCheck.(pair (string_of_size Gen.(0 -- 3000)) (int_bound 2999))
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod String.length s in
      let a = String.sub s 0 cut and b = String.sub s cut (String.length s - cut) in
      let ctx = Sha256.init () in
      Sha256.update ctx a;
      Sha256.update ctx b;
      let rctx = Sha256_ref.init () in
      Sha256_ref.update rctx a;
      Sha256_ref.update rctx b;
      Sha256.finalize ctx = Sha256_ref.finalize rctx)

let crc32_bitwise s =
  let crc = ref 0xffffffff in
  String.iter
    (fun ch ->
      crc := !crc lxor Char.code ch;
      for _ = 0 to 7 do
        crc := if !crc land 1 = 1 then (!crc lsr 1) lxor 0xedb88320 else !crc lsr 1
      done)
    s;
  Int32.of_int (!crc lxor 0xffffffff)

let qcheck_crc32_differential =
  QCheck.Test.make ~name:"crc32 = bitwise reference (inputs to 1 MiB)" ~count:12
    big_input_gen
    (fun s -> Crc32.string s = crc32_bitwise s)

let qcheck_sha256_deterministic =
  QCheck.Test.make ~name:"sha256 deterministic & 32 bytes" ~count:300
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s -> Sha256.digest s = Sha256.digest s && String.length (Sha256.digest s) = 32)

let qcheck_hmac_key_separation =
  QCheck.Test.make ~name:"hmac distinct keys give distinct tags" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 32)) (string_of_size Gen.(0 -- 64)))
    (fun (key, msg) ->
      Hmac.sha256 ~key msg <> Hmac.sha256 ~key:(key ^ "!") msg)

let qcheck_merkle_inclusion =
  QCheck.Test.make ~name:"merkle proofs verify for random forests" ~count:100
    QCheck.(pair (list_of_size Gen.(1 -- 20) (string_of_size Gen.(0 -- 16))) small_nat)
    (fun (leaves, i) ->
      let i = i mod List.length leaves in
      let root = Merkle.root leaves in
      Merkle.verify ~root ~leaf:(List.nth leaves i) (Merkle.prove leaves i))

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "crypto.sha256",
      [
        tc "NIST vectors" test_sha256_vectors;
        tc "million a" test_sha256_million_a;
        tc "incremental = one-shot" test_sha256_incremental_equals_oneshot;
        tc "block boundaries" test_sha256_block_boundaries;
        tc "digest_list" test_sha256_digest_list;
        tc "reference passes NIST vectors" test_sha256_ref_vectors;
        QCheck_alcotest.to_alcotest qcheck_sha256_deterministic;
        QCheck_alcotest.to_alcotest qcheck_sha256_differential;
        QCheck_alcotest.to_alcotest qcheck_sha256_incremental_differential;
      ] );
    ( "crypto.hmac",
      [
        tc "RFC 4231 vectors" test_hmac_rfc4231;
        tc "long key" test_hmac_long_key;
        tc "verify accepts/rejects" test_hmac_verify;
        QCheck_alcotest.to_alcotest qcheck_hmac_key_separation;
      ] );
    ( "crypto.crc32",
      [
        tc "known vectors" test_crc32_vectors;
        tc "incremental" test_crc32_incremental;
        tc "detects bit flip" test_crc32_detects_flip;
        QCheck_alcotest.to_alcotest qcheck_crc32_differential;
      ] );
    ( "crypto.merkle",
      [
        tc "empty and single" test_merkle_empty_and_single;
        tc "proofs at every position" test_merkle_proof_all_positions;
        tc "rejects wrong leaf" test_merkle_rejects_wrong_leaf;
        tc "rejects wrong root" test_merkle_rejects_wrong_root;
        tc "order matters" test_merkle_order_matters;
        QCheck_alcotest.to_alcotest qcheck_merkle_inclusion;
      ] );
    ( "crypto.lamport",
      [
        tc "sign/verify" test_lamport_sign_verify;
        tc "rejects cross key" test_lamport_rejects_cross_key;
        tc "encode roundtrip" test_lamport_encode_roundtrip;
        tc "decode garbage" test_lamport_decode_garbage;
      ] );
    ( "crypto.merkle_sig",
      [
        tc "many signatures + exhaustion" test_merkle_sig_many;
        tc "encode roundtrip" test_merkle_sig_encode_roundtrip;
      ] );
    ( "crypto.signer",
      [
        tc "hmac scheme" test_signer_hmac_scheme;
        tc "hash-based scheme" test_signer_hash_based_scheme;
        tc "hash-based rollover" test_signer_hash_based_rollover;
        tc "idempotent registration" test_signer_idempotent_registration;
      ] );
  ]
