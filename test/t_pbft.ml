open Bp_sim
open Bp_pbft

let ms = Time.of_ms

type cluster = {
  engine : Engine.t;
  net : Network.t;
  cfg : Config.t;
  replicas : Replica.t array;
  transports : Bp_net.Transport.t array;
  (* per-replica (seq, digest) execution records, for agreement checks *)
  executed : (int * string) list ref array;
}

(* A Blockplane-unit-like deployment: n replicas inside one datacenter
   (default), or spread one per datacenter with [geo]. *)
let make_cluster ?(n = 4) ?(geo = false) ?faults ?(seed = 31L)
    ?(request_timeout = ms 500.0) ?(checkpoint_interval = 32) ?batch_max
    ?watermark_window ?max_in_flight () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper ?faults () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  let addrs =
    Array.init n (fun i ->
        if geo then Addr.make ~dc:(i mod 4) ~idx:0 else Addr.make ~dc:2 ~idx:i)
  in
  let cfg =
    Config.make ~nodes:addrs ~keystore ~request_timeout ~checkpoint_interval
      ?batch_max ?watermark_window ?max_in_flight ()
  in
  let executed = Array.init n (fun _ -> ref []) in
  let transports = Array.map (fun a -> Bp_net.Transport.create net a) addrs in
  let replicas =
    Array.init n (fun i ->
        let r =
          Replica.create transports.(i) cfg ~id:i
            ~execute:(fun ~seq:_ r -> "ok:" ^ r.Msg.op)
            ()
        in
        Replica.set_on_executed r (fun ~seq batch ->
            executed.(i) := (seq, Msg.batch_digest batch) :: !(executed.(i)));
        r)
  in
  { engine; net; cfg; replicas; transports; executed }

let make_client c ~dc ~idx =
  let addr = Addr.make ~dc ~idx in
  let transport = Bp_net.Transport.create c.net addr in
  Client.create transport c.cfg

(* Honest replicas must never execute different batches at one sequence. *)
let check_agreement c =
  let merged = Hashtbl.create 64 in
  Array.iteri
    (fun i log ->
      List.iter
        (fun (seq, digest) ->
          match Hashtbl.find_opt merged seq with
          | None -> Hashtbl.replace merged seq digest
          | Some d ->
              if not (String.equal d digest) then
                Alcotest.failf "divergent execution at seq %d (replica %d)" seq i)
        !log)
    c.executed

let test_msg_roundtrip () =
  let engine = Engine.create () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  let addrs = Array.init 4 (fun i -> Addr.make ~dc:0 ~idx:i) in
  let cfg = Config.make ~nodes:addrs ~keystore () in
  let r = Msg.make_request cfg ~client:(Addr.make ~dc:1 ~idx:9) ~ts:3 ~kind:1 ~op:"op" in
  Alcotest.(check bool) "request valid" true (Msg.request_valid cfg r);
  let bodies =
    [
      Msg.Request r;
      Msg.Pre_prepare { view = 0; seq = 1; digest = "d"; batch = [ r ] };
      Msg.Prepare { view = 0; seq = 1; digest = "d"; replica = 2 };
      Msg.Commit { view = 0; seq = 1; digest = "d"; replica = 2 };
      Msg.Reply
        { view = 0; ts = 3; client = r.Msg.client; replica = 1; result = "res" };
      Msg.Checkpoint { seq = 8; state_digest = "sd"; replica = 0 };
      Msg.View_change
        {
          Msg.new_view = 1;
          stable_seq = 0;
          stable_digest = "";
          prepared =
            [
              {
                Msg.pview = 0;
                pseq = 1;
                pdigest = "d";
                pbatch = [ r ];
                prepare_sigs = [ (1, "sig") ];
              };
            ];
          vc_replica = 3;
        };
      Msg.New_view
        { view = 1; view_change_envelopes = [ "vc" ]; batches = [ (1, "d", [ r ]) ]; replica = 1 };
    ]
  in
  List.iter
    (fun b ->
      match Msg.decode_body (Msg.encode_body b) with
      | Ok b' -> Alcotest.(check bool) "body roundtrip" true (b = b')
      | Error e -> Alcotest.fail e)
    bodies

let test_envelope_verification () =
  let engine = Engine.create () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  let addrs = Array.init 4 (fun i -> Addr.make ~dc:0 ~idx:i) in
  let cfg = Config.make ~nodes:addrs ~keystore () in
  let body = Msg.Prepare { view = 0; seq = 1; digest = "d"; replica = 2 } in
  (* Properly signed by replica 2. *)
  (match Msg.verify_envelope cfg (Msg.seal cfg ~sender:addrs.(2) body) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid envelope rejected: %s" e);
  (* Signed by replica 1 but claiming to be replica 2: impersonation. *)
  (match Msg.verify_envelope cfg (Msg.seal cfg ~sender:addrs.(1) body) with
  | Ok _ -> Alcotest.fail "impersonation accepted"
  | Error _ -> ());
  (* Garbage signature. *)
  match Msg.verify_envelope cfg (Msg.seal_forged cfg ~sender:addrs.(2) body) with
  | Ok _ -> Alcotest.fail "forged signature accepted"
  | Error _ -> ()

let test_normal_case_commit () =
  let c = make_cluster () in
  let client = make_client c ~dc:2 ~idx:100 in
  let result = ref "" in
  Client.submit client "hello" ~on_result:(fun r -> result := r);
  Engine.run ~until:(Time.of_sec 2.0) c.engine;
  Alcotest.(check string) "replicated result" "ok:hello" !result;
  Alcotest.(check int) "client satisfied" 0 (Client.in_flight client);
  Array.iteri
    (fun i r ->
      Alcotest.(check int) (Printf.sprintf "replica %d executed" i) 1
        (Replica.last_executed r))
    c.replicas;
  check_agreement c

let test_exec_chains_agree () =
  let c = make_cluster () in
  let client = make_client c ~dc:2 ~idx:100 in
  for i = 1 to 20 do
    Client.submit client (Printf.sprintf "op-%d" i) ~on_result:ignore
  done;
  Engine.run ~until:(Time.of_sec 5.0) c.engine;
  let chain0 = Replica.exec_chain c.replicas.(0) in
  Array.iteri
    (fun i r ->
      Alcotest.(check string)
        (Printf.sprintf "chain %d" i)
        (Bp_util.Hex.encode chain0)
        (Bp_util.Hex.encode (Replica.exec_chain r)))
    c.replicas;
  Alcotest.(check int) "all executed" 20
    (List.fold_left (fun acc (_, d) -> acc + if String.length d > 0 then 1 else 0) 0
       []
    |> fun _ ->
    Array.fold_left (fun acc r -> Stdlib.max acc (Replica.last_executed r)) 0 c.replicas
    |> fun last -> if last > 0 then 20 else 0)
  |> ignore;
  check_agreement c

let test_batching_groups_requests () =
  let c = make_cluster () in
  let client = make_client c ~dc:2 ~idx:100 in
  let done_count = ref 0 in
  for i = 1 to 50 do
    Client.submit client (Printf.sprintf "op-%d" i) ~on_result:(fun _ -> incr done_count)
  done;
  Engine.run ~until:(Time.of_sec 5.0) c.engine;
  Alcotest.(check int) "all requests answered" 50 !done_count;
  (* Group commit: far fewer batches than requests. *)
  let batches = List.length !(c.executed.(0)) in
  Alcotest.(check bool)
    (Printf.sprintf "%d batches for 50 requests" batches)
    true (batches >= 2 && batches <= 10);
  check_agreement c

let test_local_commit_latency_about_1ms () =
  (* Fig. 4(a): intra-datacenter commit of a small batch within ~1 ms. *)
  let c = make_cluster () in
  let client = make_client c ~dc:2 ~idx:100 in
  let started = ref Time.zero and finished = ref Time.zero in
  ignore (Engine.schedule c.engine ~after:(ms 1.0) (fun () ->
      started := Engine.now c.engine;
      Client.submit client (String.make 1000 'x') ~on_result:(fun _ ->
          finished := Engine.now c.engine)));
  Engine.run ~until:(Time.of_sec 2.0) c.engine;
  let lat = Time.to_ms (Time.diff !finished !started) in
  Alcotest.(check bool)
    (Printf.sprintf "latency %.3fms in [0.5, 2.5]" lat)
    true
    (lat >= 0.5 && lat <= 2.5)

let test_backup_crash_tolerated () =
  let c = make_cluster () in
  Network.crash c.net (Addr.make ~dc:2 ~idx:3);
  let client = make_client c ~dc:2 ~idx:100 in
  let result = ref "" in
  Client.submit client "with-one-down" ~on_result:(fun r -> result := r);
  Engine.run ~until:(Time.of_sec 2.0) c.engine;
  Alcotest.(check string) "commits with f crashed" "ok:with-one-down" !result

let test_two_crashes_stall () =
  let c = make_cluster () in
  Network.crash c.net (Addr.make ~dc:2 ~idx:2);
  Network.crash c.net (Addr.make ~dc:2 ~idx:3);
  let client = make_client c ~dc:2 ~idx:100 in
  let got = ref false in
  Client.submit client "never" ~on_result:(fun _ -> got := true);
  Engine.run ~until:(Time.of_sec 3.0) c.engine;
  Alcotest.(check bool) "f+1 crashes stall the protocol" false !got

let test_byzantine_silent_commit_phase () =
  let c = make_cluster () in
  Replica.suppress_commit_votes c.replicas.(3) true;
  let client = make_client c ~dc:2 ~idx:100 in
  let result = ref "" in
  Client.submit client "quiet-byz" ~on_result:(fun r -> result := r);
  Engine.run ~until:(Time.of_sec 2.0) c.engine;
  Alcotest.(check string) "commits despite silent replica" "ok:quiet-byz" !result;
  check_agreement c

let test_primary_crash_view_change () =
  let c = make_cluster () in
  let client = make_client c ~dc:2 ~idx:100 in
  Network.crash c.net (Addr.make ~dc:2 ~idx:0);
  let result = ref "" in
  Client.submit client "survive" ~on_result:(fun r -> result := r);
  Engine.run ~until:(Time.of_sec 10.0) c.engine;
  Alcotest.(check string) "request served after view change" "ok:survive" !result;
  Array.iteri
    (fun i r ->
      if i <> 0 then
        Alcotest.(check bool)
          (Printf.sprintf "replica %d moved past view 0" i)
          true
          (Replica.view r >= 1))
    c.replicas;
  check_agreement c

let test_view_change_preserves_committed () =
  let c = make_cluster () in
  let client = make_client c ~dc:2 ~idx:100 in
  let first = ref "" in
  Client.submit client "pre-crash" ~on_result:(fun r -> first := r);
  Engine.run ~until:(Time.of_sec 1.0) c.engine;
  Alcotest.(check string) "first committed" "ok:pre-crash" !first;
  Network.crash c.net (Addr.make ~dc:2 ~idx:0);
  let second = ref "" in
  Client.submit client "post-crash" ~on_result:(fun r -> second := r);
  Engine.run ~until:(Time.of_sec 10.0) c.engine;
  Alcotest.(check string) "second committed in new view" "ok:post-crash" !second;
  check_agreement c

let test_verification_routine_blocks_invalid () =
  (* Blockplane §IV-B: replicas run the verification routine before the
     commit vote; an op every honest replica rejects can never commit. *)
  let c = make_cluster () in
  Array.iter
    (fun r -> Replica.set_verifier r (fun ~kind ~op:_ -> kind <> 7))
    c.replicas;
  let client = make_client c ~dc:2 ~idx:100 in
  let bad = ref false and good = ref false in
  Client.submit client ~kind:7 "illegal" ~on_result:(fun _ -> bad := true);
  Client.submit client ~kind:0 "legal" ~on_result:(fun _ -> good := true);
  Engine.run ~until:(Time.of_sec 5.0) c.engine;
  Alcotest.(check bool) "illegal op never commits" false !bad;
  Alcotest.(check bool) "legal op commits" true !good;
  check_agreement c

let test_equivocating_primary_no_divergence () =
  let c = make_cluster () in
  (* Take over the primary: silence the honest logic and send conflicting
     pre-prepares to different backups for the same (view 0, seq 1). *)
  Replica.stop c.replicas.(0);
  let mk op = Msg.make_request c.cfg ~client:(Addr.make ~dc:2 ~idx:50) ~ts:1 ~kind:0 ~op in
  let batch_a = [ mk "A" ] and batch_b = [ mk "B" ] in
  let pp batch =
    Msg.seal c.cfg ~sender:c.cfg.Config.nodes.(0)
      (Msg.Pre_prepare { view = 0; seq = 1; digest = Msg.batch_digest batch; batch })
  in
  let send i payload =
    Bp_net.Transport.send c.transports.(0) ~dst:c.cfg.Config.nodes.(i)
      ~tag:c.cfg.Config.tag payload
  in
  send 1 (pp batch_a);
  send 2 (pp batch_a);
  send 3 (pp batch_b);
  Engine.run ~until:(Time.of_sec 15.0) c.engine;
  (* Whatever committed, the honest replicas never diverge. *)
  check_agreement c;
  (* And the system made progress into a new view (the equivocation
     starved seq 1, timers fired). *)
  Alcotest.(check bool) "view changed" true (Replica.view c.replicas.(1) >= 1)

let test_checkpoint_garbage_collection () =
  let c = make_cluster ~checkpoint_interval:4 () in
  let client = make_client c ~dc:2 ~idx:100 in
  let served = ref 0 in
  let rec submit_next i =
    if i <= 30 then
      Client.submit client (Printf.sprintf "op%d" i) ~on_result:(fun _ ->
          incr served;
          submit_next (i + 1))
  in
  submit_next 1;
  Engine.run ~until:(Time.of_sec 10.0) c.engine;
  Alcotest.(check int) "all served" 30 !served;
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d advanced watermark" i)
        true
        (Replica.low_watermark r >= 4))
    c.replicas

let test_geo_pbft_latency () =
  (* Fig. 7 flat PBFT baseline: one replica per datacenter, client near
     the primary (California). Expect ~100-160 ms. *)
  let c = make_cluster ~geo:true ~seed:41L () in
  let client = make_client c ~dc:0 ~idx:100 in
  let started = ref Time.zero and finished = ref Time.zero in
  started := Engine.now c.engine;
  Client.submit client "geo" ~on_result:(fun _ -> finished := Engine.now c.engine);
  Engine.run ~until:(Time.of_sec 3.0) c.engine;
  let lat = Time.to_ms (Time.diff !finished !started) in
  Alcotest.(check bool)
    (Printf.sprintf "geo PBFT latency %.1fms in [90, 170]" lat)
    true
    (lat >= 90.0 && lat <= 170.0)

let test_safety_under_faults_randomized () =
  for seed = 1 to 8 do
    let faults = { Network.no_faults with drop = 0.05; duplicate = 0.05 } in
    let c = make_cluster ~faults ~seed:(Int64.of_int (100 + seed)) () in
    (* One byzantine replica silent in commit phase the whole time. *)
    Replica.suppress_commit_votes c.replicas.(1) true;
    let client = make_client c ~dc:2 ~idx:100 in
    let served = ref 0 in
    for i = 1 to 10 do
      Client.submit client (Printf.sprintf "s%d-%d" seed i) ~on_result:(fun _ -> incr served)
    done;
    Engine.run ~until:(Time.of_sec 30.0) c.engine;
    Alcotest.(check int) (Printf.sprintf "seed %d: all served" seed) 10 !served;
    check_agreement c
  done

let test_larger_cluster_n7 () =
  let c = make_cluster ~n:7 () in
  let client = make_client c ~dc:2 ~idx:100 in
  let result = ref "" in
  Client.submit client "seven" ~on_result:(fun r -> result := r);
  Engine.run ~until:(Time.of_sec 2.0) c.engine;
  Alcotest.(check string) "n=7 commits" "ok:seven" !result;
  (* f = 2: two crashes tolerated. *)
  Network.crash c.net (Addr.make ~dc:2 ~idx:5);
  Network.crash c.net (Addr.make ~dc:2 ~idx:6);
  let again = ref "" in
  Client.submit client "still-alive" ~on_result:(fun r -> again := r);
  Engine.run ~until:(Time.of_sec 4.0) c.engine;
  Alcotest.(check string) "n=7 with 2 crashed" "ok:still-alive" !again

let test_config_validation () =
  let engine = Engine.create () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  let nodes4 = Array.init 4 (fun i -> Addr.make ~dc:0 ~idx:i) in
  let expect_invalid what mk =
    try
      ignore (mk ());
      Alcotest.failf "%s accepted" what
    with Invalid_argument _ -> ()
  in
  expect_invalid "n=5" (fun () ->
      Config.make ~nodes:(Array.init 5 (fun i -> Addr.make ~dc:0 ~idx:i)) ~keystore ());
  expect_invalid "batch_max=0" (fun () ->
      Config.make ~nodes:nodes4 ~keystore ~batch_max:0 ());
  expect_invalid "checkpoint_interval=-1" (fun () ->
      Config.make ~nodes:nodes4 ~keystore ~checkpoint_interval:(-1) ());
  expect_invalid "watermark_window=0" (fun () ->
      Config.make ~nodes:nodes4 ~keystore ~watermark_window:0 ());
  expect_invalid "max_in_flight=0" (fun () ->
      Config.make ~nodes:nodes4 ~keystore ~max_in_flight:0 ());
  expect_invalid "checkpoint beyond window" (fun () ->
      Config.make ~nodes:nodes4 ~keystore ~checkpoint_interval:64
        ~watermark_window:32 ());
  expect_invalid "batch_min_fill=0" (fun () ->
      Config.make ~nodes:nodes4 ~keystore ~batch_min_fill:0 ());
  expect_invalid "batch_min_fill beyond batch_max" (fun () ->
      Config.make ~nodes:nodes4 ~keystore ~batch_max:8 ~batch_min_fill:9 ());
  (* Deferring cuts without a hold bound could stall a trickle forever. *)
  expect_invalid "min_fill>1 without hold timer" (fun () ->
      Config.make ~nodes:nodes4 ~keystore ~batch_min_fill:2 ());
  expect_invalid "negative batch_hold" (fun () ->
      Config.make ~nodes:nodes4 ~keystore ~batch_min_fill:2
        ~batch_hold:(Time.of_ms (-1.0)) ());
  let held =
    Config.make ~nodes:nodes4 ~keystore ~batch_min_fill:16
      ~batch_hold:(Time.of_ms 0.25) ()
  in
  Alcotest.(check int) "min fill accepted" 16 held.Config.batch_min_fill;
  (* A pipeline deeper than the window is clamped, not rejected: the
     window is the hard bound on concurrently-open slots. *)
  let clamped =
    Config.make ~nodes:nodes4 ~keystore ~checkpoint_interval:8
      ~watermark_window:16 ~max_in_flight:64 ()
  in
  Alcotest.(check int) "depth clamped to window" 16 clamped.Config.max_in_flight;
  let cfg = Config.make ~nodes:(Array.init 7 (fun i -> Addr.make ~dc:0 ~idx:i)) ~keystore () in
  Alcotest.(check int) "f" 7 (Config.n cfg);
  Alcotest.(check int) "quorum" 5 (Config.quorum cfg);
  Alcotest.(check int) "primary rotation" 3 (Config.primary_of_view cfg 10)

(* A PBFT broadcast (seal + transport fan-out) must serialize the message
   a fixed number of times — body, signed envelope, transport suffix —
   no matter how many replicas receive it. *)
let pbft_broadcast_encode_delta ~n =
  let c = make_cluster ~n () in
  let body = Msg.Prepare { view = 0; seq = 1; digest = "d"; replica = 0 } in
  let before = Bp_codec.Wire.encode_calls () in
  let sealed = Msg.seal c.cfg ~sender:c.cfg.Config.nodes.(0) body in
  Bp_net.Transport.broadcast c.transports.(0) ~dsts:c.cfg.Config.nodes
    ~tag:c.cfg.Config.tag sealed;
  Bp_codec.Wire.encode_calls () - before

let test_broadcast_seals_and_encodes_once () =
  let d4 = pbft_broadcast_encode_delta ~n:4 in
  let d7 = pbft_broadcast_encode_delta ~n:7 in
  Alcotest.(check int) "body + envelope + transport suffix" 3 d4;
  Alcotest.(check int) "independent of cluster size" d4 d7

(* ---------- windowed pipelining (multi-slot consensus) ---------- *)

(* With commit votes suppressed on every replica, a depth-d primary
   drives several slots to prepared and no further — a pipeline's worth
   of prepared-but-unexecuted sequences. The view change must then carry
   every prepared slot into the new view and commit them all, in order,
   once votes flow again. *)
let test_view_change_with_pipelined_slots () =
  List.iter
    (fun depth ->
      let c =
        make_cluster ~batch_max:1 ~max_in_flight:depth
          ~request_timeout:(ms 200.0)
          ~seed:(Int64.of_int (500 + depth))
          ()
      in
      Array.iter (fun r -> Replica.suppress_commit_votes r true) c.replicas;
      let client = make_client c ~dc:2 ~idx:100 in
      let served = ref 0 in
      for i = 1 to 6 do
        Client.submit client
          (Printf.sprintf "d%d-op%d" depth i)
          ~on_result:(fun _ -> incr served)
      done;
      Engine.run ~until:(ms 100.0) c.engine;
      Alcotest.(check int)
        (Printf.sprintf "depth %d: nothing executes without commits" depth)
        0
        (Replica.last_executed c.replicas.(0));
      Alcotest.(check bool)
        (Printf.sprintf "depth %d: >=3 slots concurrently open" depth)
        true
        (Replica.open_slot_count c.replicas.(0) >= 3
        && Replica.open_slot_count c.replicas.(1) >= 3);
      Array.iter (fun r -> Replica.suppress_commit_votes r false) c.replicas;
      Engine.run ~until:(Time.of_sec 15.0) c.engine;
      Alcotest.(check int)
        (Printf.sprintf "depth %d: all served after view change" depth)
        6 !served;
      Alcotest.(check bool)
        (Printf.sprintf "depth %d: moved past view 0" depth)
        true
        (Replica.view c.replicas.(1) >= 1);
      check_agreement c)
    [ 4; 8 ]

(* Sustained pipelined load must not grow state without bound: open
   slots stay inside the watermark window, and the state-transfer
   archive keeps only a few windows' worth of executed batches. *)
let test_pipeline_bounded_by_watermarks () =
  let window = 8 in
  let c =
    make_cluster ~batch_max:1 ~max_in_flight:8 ~checkpoint_interval:4
      ~watermark_window:window ~seed:77L ()
  in
  let client = make_client c ~dc:2 ~idx:100 in
  let served = ref 0 in
  let total = 80 in
  for i = 1 to total do
    Client.submit client (Printf.sprintf "op%d" i) ~on_result:(fun _ ->
        incr served)
  done;
  let max_open = ref 0 and max_archive = ref 0 in
  let rec sample () =
    Array.iter
      (fun r ->
        max_open := Stdlib.max !max_open (Replica.open_slot_count r);
        max_archive := Stdlib.max !max_archive (Replica.archive_size r))
      c.replicas;
    ignore (Engine.schedule c.engine ~after:(ms 1.0) sample)
  in
  sample ();
  Engine.run ~until:(Time.of_sec 30.0) c.engine;
  Alcotest.(check int) "all served" total !served;
  Alcotest.(check bool)
    (Printf.sprintf "pipeline filled (%d open slots at peak)" !max_open)
    true (!max_open >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "open slots (%d) bounded by the window" !max_open)
    true
    (!max_open <= window);
  Alcotest.(check bool)
    (Printf.sprintf "archive (%d) bounded" !max_archive)
    true
    (!max_archive <= 4 * window);
  Alcotest.(check bool) "watermark advanced under GC" true
    (Replica.low_watermark c.replicas.(0) >= total - window);
  check_agreement c

(* The point of the pipeline: with a dozen 100 KB batches waiting,
   depth 8 overlaps their three-phase rounds and finishes well before
   the stop-and-wait depth-1 primary in simulated time. *)
let test_pipeline_overlaps_rounds () =
  let run depth =
    let c = make_cluster ~batch_max:1 ~max_in_flight:depth ~seed:91L () in
    let client = make_client c ~dc:2 ~idx:100 in
    let served = ref 0 in
    let done_at = ref Time.zero in
    for i = 1 to 12 do
      Client.submit client
        (Printf.sprintf "%06d-" i ^ String.make 100_000 'x')
        ~on_result:(fun _ ->
          incr served;
          done_at := Engine.now c.engine)
    done;
    Engine.run ~until:(Time.of_sec 10.0) c.engine;
    Alcotest.(check int) (Printf.sprintf "depth %d: all served" depth) 12 !served;
    check_agreement c;
    Time.to_ms !done_at
  in
  let t1 = run 1 in
  let t8 = run 8 in
  Alcotest.(check bool)
    (Printf.sprintf "depth 8 (%.1f ms) well under depth 1 (%.1f ms)" t8 t1)
    true
    (t8 < 0.8 *. t1)

(* Differential pinning: the pipeline must change scheduling, never
   results. Requests are all submitted up front, so their arrival order
   at the primary is depth-independent (per-sender FIFO NICs), and the
   flattened stream of executed requests at depth d must equal depth 1
   exactly — batch boundaries may differ (adaptive batch cut), the
   per-request execution order may not. *)
let pipeline_differential =
  QCheck.Test.make ~name:"depth-N execution stream = depth-1" ~count:25
    QCheck.(
      quad (int_range 2 8) (int_range 1 30) (int_range 1 3) (int_range 0 999))
    (fun (depth, n_ops, batch_max, seed) ->
      let run max_in_flight =
        let c =
          make_cluster ~batch_max ~max_in_flight
            ~seed:(Int64.of_int (3000 + seed))
            ()
        in
        let stream = ref [] in
        Replica.set_on_executed c.replicas.(1) (fun ~seq:_ batch ->
            List.iter (fun r -> stream := r.Msg.op :: !stream) batch);
        let client = make_client c ~dc:2 ~idx:100 in
        let served = ref 0 in
        for i = 1 to n_ops do
          Client.submit client (Printf.sprintf "op-%d" i) ~on_result:(fun _ ->
              incr served)
        done;
        Engine.run ~until:(Time.of_sec 20.0) c.engine;
        if !served <> n_ops then
          QCheck.Test.fail_reportf "depth %d: served %d of %d" max_in_flight
            !served n_ops;
        check_agreement c;
        List.rev !stream
      in
      run 1 = run depth)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "pbft.msg",
      [
        tc "body roundtrip" test_msg_roundtrip;
        tc "envelope verification" test_envelope_verification;
        tc "config validation" test_config_validation;
        tc "broadcast seals and encodes once" test_broadcast_seals_and_encodes_once;
      ] );
    ( "pbft.normal",
      [
        tc "normal case commit" test_normal_case_commit;
        tc "exec chains agree" test_exec_chains_agree;
        tc "batching groups requests" test_batching_groups_requests;
        tc "local commit ~1ms" test_local_commit_latency_about_1ms;
        tc "n=7 cluster" test_larger_cluster_n7;
      ] );
    ( "pbft.faults",
      [
        tc "backup crash tolerated" test_backup_crash_tolerated;
        tc "two crashes stall (f=1)" test_two_crashes_stall;
        tc "byzantine silent in commit phase" test_byzantine_silent_commit_phase;
        tc "primary crash triggers view change" test_primary_crash_view_change;
        tc "view change preserves committed" test_view_change_preserves_committed;
        tc "verification routine blocks invalid ops" test_verification_routine_blocks_invalid;
        tc "equivocating primary cannot diverge state" test_equivocating_primary_no_divergence;
        tc "checkpoint garbage collection" test_checkpoint_garbage_collection;
        tc "randomized safety under faults" test_safety_under_faults_randomized;
      ] );
    ( "pbft.pipeline",
      [
        tc "view change carries pipelined prepared slots"
          test_view_change_with_pipelined_slots;
        tc "bounded by watermark window" test_pipeline_bounded_by_watermarks;
        tc "overlapping rounds beat stop-and-wait" test_pipeline_overlaps_rounds;
        QCheck_alcotest.to_alcotest pipeline_differential;
      ] );
    ( "pbft.geo",
      [ tc "flat geo PBFT latency" test_geo_pbft_latency ] );
  ]
