(* The domain pool (lib/parallel) and the parallel experiment harness.

   CI may run on a single core, so these tests assert scheduling
   semantics — index-ordered results, exception propagation, pool reuse,
   and bit-identical experiment output — not wall-clock speedups. *)

exception Boom of int

let test_pool_basics () =
  let pool = Bp_parallel.Pool.create ~jobs:3 in
  Alcotest.(check int) "jobs" 3 (Bp_parallel.Pool.jobs pool);
  Alcotest.(check (list int)) "empty batch" [] (Bp_parallel.Pool.run pool []);
  (* Consecutive batches on one pool, with different result types. *)
  let squares = Bp_parallel.Pool.run pool (List.init 8 (fun i () -> i * i)) in
  Alcotest.(check (list int)) "squares" [ 0; 1; 4; 9; 16; 25; 36; 49 ] squares;
  let strs =
    Bp_parallel.Pool.run pool (List.init 4 (fun i () -> string_of_int i))
  in
  Alcotest.(check (list string)) "strings" [ "0"; "1"; "2"; "3" ] strs;
  (* jobs:1 never spawns domains and runs inline. *)
  let inline = Bp_parallel.Pool.map ~jobs:1 (List.init 3 (fun i () -> -i)) in
  Alcotest.(check (list int)) "jobs:1 inline" [ 0; -1; -2 ] inline;
  Bp_parallel.Pool.shutdown pool;
  (* Shutdown is idempotent, and a shut-down pool refuses work. *)
  Bp_parallel.Pool.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      ignore (Bp_parallel.Pool.run pool [ (fun () -> 0) ]))

let test_pool_order () =
  (* Early tasks spin longer, so on a multicore box later indices finish
     first; the result list must still follow task index. *)
  let tasks =
    List.init 16 (fun i () ->
        let acc = ref 0 in
        for k = 1 to (16 - i) * 10_000 do
          acc := !acc + k
        done;
        ignore !acc;
        i)
  in
  let got = Bp_parallel.Pool.map ~jobs:4 tasks in
  Alcotest.(check (list int)) "index order" (List.init 16 Fun.id) got

let test_pool_exception () =
  let pool = Bp_parallel.Pool.create ~jobs:3 in
  let tasks = List.init 8 (fun i () -> if i = 3 then raise (Boom i) else i) in
  (match Bp_parallel.Pool.run pool tasks with
  | _ -> Alcotest.fail "expected Boom from the failing task"
  | exception Boom 3 -> ());
  (* The pool survives a failed batch and runs the next one normally. *)
  let ok = Bp_parallel.Pool.run pool (List.init 5 (fun i () -> i + 100)) in
  Alcotest.(check (list int)) "pool reusable after failure"
    [ 100; 101; 102; 103; 104 ] ok;
  Bp_parallel.Pool.shutdown pool

let test_submit_await () =
  let pool = Bp_parallel.Pool.create ~jobs:3 in
  (* Several outstanding handles, awaited out of submission order: each
     must still deliver its own results in task-index order. *)
  let h1 =
    Bp_parallel.Pool.submit pool (List.init 10 (fun i () -> i * 2))
  in
  let h2 =
    Bp_parallel.Pool.submit pool (List.init 4 (fun i () -> string_of_int i))
  in
  let h3 = Bp_parallel.Pool.submit pool [] in
  Alcotest.(check (list string)) "h2 first" [ "0"; "1"; "2"; "3" ]
    (Bp_parallel.Pool.await h2);
  Alcotest.(check (list int)) "h1 after h2"
    [ 0; 2; 4; 6; 8; 10; 12; 14; 16; 18 ]
    (Bp_parallel.Pool.await h1);
  Alcotest.(check (list int)) "empty handle" [] (Bp_parallel.Pool.await h3);
  (* await is idempotent: a second await returns the cached results. *)
  Alcotest.(check (list int)) "await twice"
    [ 0; 2; 4; 6; 8; 10; 12; 14; 16; 18 ]
    (Bp_parallel.Pool.await h1);
  (* A failing task surfaces at await, and only from its own handle. *)
  let bad =
    Bp_parallel.Pool.submit pool
      (List.init 6 (fun i () -> if i = 2 then raise (Boom i) else i))
  in
  let good = Bp_parallel.Pool.submit pool (List.init 3 (fun i () -> i + 7)) in
  (match Bp_parallel.Pool.await bad with
  | _ -> Alcotest.fail "expected Boom from the failing batch"
  | exception Boom 2 -> ());
  Alcotest.(check (list int)) "other handle unaffected" [ 7; 8; 9 ]
    (Bp_parallel.Pool.await good);
  (* Re-awaiting a failed handle re-raises the same failure. *)
  (match Bp_parallel.Pool.await bad with
  | _ -> Alcotest.fail "expected Boom again"
  | exception Boom 2 -> ());
  Bp_parallel.Pool.shutdown pool;
  (* Submitting on a shut-down pool refuses work. *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Bp_parallel.Pool.submit pool [ (fun () -> 0) ]))

let test_submit_inline () =
  (* jobs:1 pools defer work to await — no domains, same semantics. *)
  let pool = Bp_parallel.Pool.create ~jobs:1 in
  let h = Bp_parallel.Pool.submit pool (List.init 5 (fun i () -> i * i)) in
  Alcotest.(check (list int)) "deferred batch" [ 0; 1; 4; 9; 16 ]
    (Bp_parallel.Pool.await h);
  Alcotest.(check (list int)) "deferred await idempotent" [ 0; 1; 4; 9; 16 ]
    (Bp_parallel.Pool.await h);
  (* Single-task batches run inline even on a multi-domain pool. *)
  let pool4 = Bp_parallel.Pool.create ~jobs:4 in
  let h1 = Bp_parallel.Pool.submit pool4 [ (fun () -> 42) ] in
  Alcotest.(check (list int)) "singleton inline" [ 42 ]
    (Bp_parallel.Pool.await h1);
  Bp_parallel.Pool.shutdown pool4;
  Bp_parallel.Pool.shutdown pool

(* The tentpole property: fanning an experiment's tasks over worker
   domains must not change a byte of its report — every sweep point is an
   isolated seeded simulation and results merge by task index. *)
let test_parallel_reports_identical () =
  let render_all reports =
    String.concat "" (List.map Bp_harness.Report.render reports)
  in
  let pool = Bp_parallel.Pool.create ~jobs:3 in
  List.iter
    (fun id ->
      match Bp_harness.Experiments.find id with
      | None -> Alcotest.failf "unknown experiment %s" id
      | Some e ->
          let seq = Bp_harness.Experiments.run e ~scale:0.1 in
          let par = Bp_harness.Experiments.run ~pool e ~scale:0.1 in
          Alcotest.(check string)
            (id ^ ": parallel output bit-identical to sequential")
            (render_all seq) (render_all par))
    [ "fig5"; "fig6"; "costs" ];
  Bp_parallel.Pool.shutdown pool

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "pool basics, reuse, shutdown" `Quick
          test_pool_basics;
        Alcotest.test_case "results follow task index" `Quick test_pool_order;
        Alcotest.test_case "exception propagates, pool survives" `Quick
          test_pool_exception;
        Alcotest.test_case "submit/await futures" `Quick test_submit_await;
        Alcotest.test_case "submit defers inline at jobs 1" `Quick
          test_submit_inline;
        Alcotest.test_case "parallel run bit-identical to -j 1" `Quick
          test_parallel_reports_identical;
      ] );
  ]
