open Bp_sim
open Bp_net

let ms = Time.of_ms
let node dc idx = Addr.make ~dc ~idx

let setup ?faults ?(seed = 5L) () =
  let e = Engine.create ~seed () in
  let net = Network.create e Topology.aws_paper ?faults () in
  (e, net)

let test_transport_basic_delivery () =
  let e, net = setup () in
  let a = Transport.create net (node 0 0) in
  let b = Transport.create net (node 0 1) in
  let got = ref [] in
  Transport.set_handler b ~tag:"app" (fun ~src payload ->
      got := (Addr.to_string src, payload) :: !got);
  Transport.send a ~dst:(Transport.addr b) ~tag:"app" "hello";
  Engine.run e;
  Alcotest.(check (list (pair string string))) "delivered" [ ("n0.0", "hello") ] !got

let test_transport_tag_multiplexing () =
  let e, net = setup () in
  let a = Transport.create net (node 0 0) in
  let b = Transport.create net (node 0 1) in
  let xs = ref [] and ys = ref [] in
  Transport.set_handler b ~tag:"x" (fun ~src:_ p -> xs := p :: !xs);
  Transport.set_handler b ~tag:"y" (fun ~src:_ p -> ys := p :: !ys);
  Transport.send a ~dst:(Transport.addr b) ~tag:"x" "1";
  Transport.send a ~dst:(Transport.addr b) ~tag:"y" "2";
  Transport.send a ~dst:(Transport.addr b) ~tag:"x" "3";
  Engine.run e;
  Alcotest.(check (list string)) "x stream" [ "1"; "3" ] (List.rev !xs);
  Alcotest.(check (list string)) "y stream" [ "2" ] (List.rev !ys)

let test_transport_loopback () =
  let e, net = setup () in
  let a = Transport.create net (node 0 0) in
  let got = ref 0 in
  Transport.set_handler a ~tag:"self" (fun ~src:_ _ -> incr got);
  Transport.send a ~dst:(Transport.addr a) ~tag:"self" "ping";
  Engine.run e;
  Alcotest.(check int) "self-delivery" 1 !got

let test_transport_exactly_once_under_loss () =
  let faults = { Network.no_faults with drop = 0.3 } in
  let e, net = setup ~faults () in
  let a = Transport.create net (node 0 0) in
  let b = Transport.create net (node 2 0) in
  let got = ref [] in
  Transport.set_handler b ~tag:"app" (fun ~src:_ p -> got := p :: !got);
  for i = 1 to 50 do
    Transport.send a ~dst:(Transport.addr b) ~tag:"app" (string_of_int i)
  done;
  Engine.run ~until:(Time.of_sec 30.0) e;
  Alcotest.(check (list string)) "all delivered exactly once, in order"
    (List.init 50 (fun i -> string_of_int (i + 1)))
    (List.rev !got)

let test_transport_order_under_duplication () =
  let faults = { Network.no_faults with duplicate = 0.5; drop = 0.2 } in
  let e, net = setup ~faults ~seed:11L () in
  let a = Transport.create net (node 0 0) in
  let b = Transport.create net (node 1 0) in
  let got = ref [] in
  Transport.set_handler b ~tag:"app" (fun ~src:_ p -> got := p :: !got);
  for i = 1 to 30 do
    Transport.send a ~dst:(Transport.addr b) ~tag:"app" (string_of_int i)
  done;
  Engine.run ~until:(Time.of_sec 30.0) e;
  Alcotest.(check (list string)) "exactly once in order"
    (List.init 30 (fun i -> string_of_int (i + 1)))
    (List.rev !got)

let test_transport_survives_corruption () =
  let faults = { Network.no_faults with corrupt = 0.3 } in
  let e, net = setup ~faults () in
  let a = Transport.create net (node 0 0) in
  let b = Transport.create net (node 1 0) in
  let got = ref [] in
  Transport.set_handler b ~tag:"app" (fun ~src:_ p -> got := p :: !got);
  for i = 1 to 30 do
    Transport.send a ~dst:(Transport.addr b) ~tag:"app" (string_of_int i)
  done;
  Engine.run ~until:(Time.of_sec 30.0) e;
  Alcotest.(check (list string)) "corruption recovered by retransmit"
    (List.init 30 (fun i -> string_of_int (i + 1)))
    (List.rev !got);
  let _, discarded = Transport.stats b in
  Alcotest.(check bool) "some frames discarded" true (discarded > 0)

let test_transport_unreliable_lossy () =
  let faults = { Network.no_faults with drop = 1.0 } in
  let e, net = setup ~faults () in
  let a = Transport.create net (node 0 0) in
  let b = Transport.create net (node 0 1) in
  let got = ref 0 in
  Transport.set_handler b ~tag:"app" (fun ~src:_ _ -> incr got);
  Transport.send a ~reliable:false ~dst:(Transport.addr b) ~tag:"app" "x";
  (* Unreliable + total loss: nothing arrives and nothing retransmits, so
     the simulation drains quickly. *)
  Engine.run ~until:(Time.of_sec 5.0) e;
  Alcotest.(check int) "lost" 0 !got;
  let retrans, _ = Transport.stats a in
  Alcotest.(check int) "no retransmissions" 0 retrans

let test_transport_bidirectional () =
  let e, net = setup () in
  let a = Transport.create net (node 0 0) in
  let b = Transport.create net (node 1 0) in
  let got_a = ref [] and got_b = ref [] in
  Transport.set_handler a ~tag:"app" (fun ~src:_ p -> got_a := p :: !got_a);
  Transport.set_handler b ~tag:"app" (fun ~src:_ p ->
      got_b := p :: !got_b;
      Transport.send b ~dst:(Transport.addr a) ~tag:"app" ("re:" ^ p));
  Transport.send a ~dst:(Transport.addr b) ~tag:"app" "ping";
  Engine.run ~until:(Time.of_sec 5.0) e;
  Alcotest.(check (list string)) "request" [ "ping" ] !got_b;
  Alcotest.(check (list string)) "response" [ "re:ping" ] !got_a

let test_transport_many_peers () =
  let e, net = setup () in
  let hub = Transport.create net (node 0 0) in
  let spokes = List.init 6 (fun i -> Transport.create net (node (i mod 4) (i + 1))) in
  let got = ref 0 in
  List.iter
    (fun s -> Transport.set_handler s ~tag:"bcast" (fun ~src:_ _ -> incr got))
    spokes;
  List.iter
    (fun s -> Transport.send hub ~dst:(Transport.addr s) ~tag:"bcast" "m")
    spokes;
  Engine.run ~until:(Time.of_sec 5.0) e;
  Alcotest.(check int) "all spokes" 6 !got

let test_heartbeat_suspects_crashed_peer () =
  let e, net = setup () in
  let a = Transport.create net (node 0 0) in
  let b = Transport.create net (node 1 0) in
  Heartbeat.serve b;
  let suspected = ref [] and restored = ref [] in
  let hb =
    Heartbeat.create a
      ~peers:[ node 1 0 ]
      ~period:(ms 50.0) ~timeout:(ms 200.0)
      ~on_suspect:(fun p -> suspected := (Addr.to_string p, Time.to_ms (Engine.now e)) :: !suspected)
      ~on_restore:(fun p -> restored := Addr.to_string p :: !restored)
      ()
  in
  Engine.run ~until:(Time.of_sec 1.0) e;
  Alcotest.(check (list (pair string (float 1e9)))) "alive peer not suspected" [] !suspected;
  Network.crash net (node 1 0);
  Engine.run ~until:(Time.of_sec 2.0) e;
  Alcotest.(check int) "suspected once" 1 (List.length !suspected);
  Alcotest.(check bool) "flag" true (Heartbeat.suspected hb (node 1 0));
  Network.recover net (node 1 0);
  Engine.run ~until:(Time.of_sec 3.0) e;
  Alcotest.(check (list string)) "restored" [ "n1.0" ] !restored;
  Alcotest.(check bool) "flag cleared" false (Heartbeat.suspected hb (node 1 0));
  Heartbeat.stop hb;
  Engine.run ~until:(Time.of_sec 3.5) e

let test_heartbeat_stop_cancels () =
  let e, net = setup () in
  let a = Transport.create net (node 0 0) in
  let hb =
    Heartbeat.create a ~peers:[] ~period:(ms 10.0) ~timeout:(ms 50.0)
      ~on_suspect:(fun _ -> Alcotest.fail "no peers, no suspicion")
      ()
  in
  Heartbeat.stop hb;
  Engine.run ~until:(Time.of_sec 1.0) e;
  Alcotest.(check int) "no live timers" 0 (Engine.pending e)

(* The encode-once property: a broadcast serializes the (tag, payload)
   suffix exactly once, so the Wire.encode_calls delta must not depend on
   the number of destinations. *)
let broadcast_encode_delta ~reliable ~fanout =
  let e, net = setup () in
  let src = Transport.create net (node 0 0) in
  let dsts =
    Array.init fanout (fun i ->
        let t = Transport.create net (node (i mod 4) (1 + (i / 4))) in
        Transport.set_handler t ~tag:"bc" (fun ~src:_ _ -> ());
        Transport.addr t)
  in
  let before = Bp_codec.Wire.encode_calls () in
  Transport.broadcast src ~reliable ~dsts ~tag:"bc" (String.make 256 'x');
  let delta = Bp_codec.Wire.encode_calls () - before in
  Engine.run ~until:(Time.of_sec 5.0) e;
  delta

let test_broadcast_encodes_once () =
  let d2 = broadcast_encode_delta ~reliable:true ~fanout:2 in
  let d6 = broadcast_encode_delta ~reliable:true ~fanout:6 in
  Alcotest.(check int) "reliable: one serialization per broadcast" 1 d2;
  Alcotest.(check int) "reliable: fan-out does not re-encode" d2 d6;
  let u2 = broadcast_encode_delta ~reliable:false ~fanout:2 in
  let u6 = broadcast_encode_delta ~reliable:false ~fanout:6 in
  Alcotest.(check int) "unreliable: one serialization per broadcast" 1 u2;
  Alcotest.(check int) "unreliable: fan-out does not re-encode" u2 u6

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "net.transport",
      [
        tc "basic delivery" test_transport_basic_delivery;
        tc "tag multiplexing" test_transport_tag_multiplexing;
        tc "loopback" test_transport_loopback;
        tc "exactly-once under loss" test_transport_exactly_once_under_loss;
        tc "order under duplication" test_transport_order_under_duplication;
        tc "survives corruption" test_transport_survives_corruption;
        tc "unreliable mode is lossy" test_transport_unreliable_lossy;
        tc "bidirectional" test_transport_bidirectional;
        tc "many peers" test_transport_many_peers;
        tc "broadcast encodes once" test_broadcast_encodes_once;
      ] );
    ( "net.heartbeat",
      [
        tc "suspects crashed peer" test_heartbeat_suspects_crashed_peer;
        tc "stop cancels timers" test_heartbeat_stop_cancels;
      ] );
  ]
