(* Tests for the saturation-scale load generator: the zipf sampler's
   distribution and O(1) draw cost, the three arrival-process shapes'
   offered rates, the qcheck property pinning the streaming scheduler to
   the eager reference, the O(1) heap-occupancy telemetry, and
   bit-identical saturation sweeps at any --jobs. *)

open Bp_harness

let rng seed = Bp_util.Rng.create seed

(* --- zipf sampler --- *)

let test_zipf_skewed () =
  let z = Bp_util.Zipf.create ~n:100 ~s:1.0 in
  let r = rng 11L in
  let freq = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Bp_util.Zipf.sample z r in
    Alcotest.(check bool) "rank in range" true (k >= 0 && k < 100);
    freq.(k) <- freq.(k) + 1
  done;
  (* P(0) ~ 0.19 under s=1, n=100; P(50) ~ 0.004. *)
  Alcotest.(check bool) "rank 0 dominates" true (freq.(0) > 5 * freq.(50));
  let decade lo = Array.fold_left ( + ) 0 (Array.sub freq lo 10) in
  Alcotest.(check bool) "head decade >> tail decade" true
    (decade 0 > 5 * decade 90)

let test_zipf_uniform () =
  (* s = 0 degenerates to uniform: every 10-rank bucket near 1/10. *)
  let z = Bp_util.Zipf.create ~n:100 ~s:0.0 in
  let r = rng 12L in
  let freq = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let k = Bp_util.Zipf.sample z r in
    freq.(k / 10) <- freq.(k / 10) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform" i)
        true
        (c > 1_600 && c < 2_400))
    freq

let test_zipf_deterministic () =
  let draw seed =
    let z = Bp_util.Zipf.create ~n:1_000_000 ~s:0.99 in
    let r = rng seed in
    List.init 200 (fun _ -> Bp_util.Zipf.sample z r)
  in
  Alcotest.(check (list int)) "same seed, same ranks" (draw 13L) (draw 13L);
  Alcotest.(check bool) "different seed diverges" true (draw 13L <> draw 14L)

let test_zipf_validation () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "n=0 rejected" true
    (invalid (fun () -> Bp_util.Zipf.create ~n:0 ~s:1.0));
  Alcotest.(check bool) "negative s rejected" true
    (invalid (fun () -> Bp_util.Zipf.create ~n:10 ~s:(-0.1)));
  Alcotest.(check bool) "nan s rejected" true
    (invalid (fun () -> Bp_util.Zipf.create ~n:10 ~s:Float.nan))

(* --- arrival processes: offered rate sanity --- *)

let empirical_rate spec seed =
  let arrivals = Loadgen.plan ~rng:(rng seed) spec in
  let last = arrivals.(Array.length arrivals - 1) in
  float_of_int (Array.length arrivals)
  /. (Bp_sim.Time.to_ms last.Loadgen.at /. 1000.0)

let test_poisson_rate () =
  let spec =
    {
      Loadgen.process = Loadgen.Poisson { rate_per_sec = 1000.0 };
      clients = 1;
      skew = 0.0;
      count = 5_000;
    }
  in
  let gen = Loadgen.create ~rng:(rng 21L) spec in
  Alcotest.(check (float 1e-9)) "offered = configured rate" 1000.0
    (Loadgen.offered_per_sec gen);
  let r = empirical_rate spec 22L in
  Alcotest.(check bool) "empirical near offered" true
    (r > 900.0 && r < 1100.0)

let test_bursty_rate () =
  (* Double intensity on half duty cycle: long-run offered rate 1000/s. *)
  let spec =
    {
      Loadgen.process = Loadgen.Bursty { rate_on = 2000.0; on_ms = 2.0; off_ms = 2.0 };
      clients = 50;
      skew = 0.99;
      count = 5_000;
    }
  in
  let gen = Loadgen.create ~rng:(rng 23L) spec in
  Alcotest.(check (float 1e-9)) "offered = rate_on * duty cycle" 1000.0
    (Loadgen.offered_per_sec gen);
  let r = empirical_rate spec 24L in
  Alcotest.(check bool) "empirical near offered" true (r > 800.0 && r < 1200.0)

let test_diurnal_rate_and_quiet () =
  (* One 4 ms cycle: 2 ms at full rate, 2 ms quiet -> offered = base/2,
     and no arrival may land inside a quiet segment. *)
  let trace = [| (2.0, 1.0); (2.0, 0.0) |] in
  let spec =
    {
      Loadgen.process = Loadgen.Diurnal { base_rate = 2000.0; trace };
      clients = 10;
      skew = 0.0;
      count = 2_000;
    }
  in
  let gen = Loadgen.create ~rng:(rng 25L) spec in
  Alcotest.(check (float 1e-9)) "offered = duty-weighted base" 1000.0
    (Loadgen.offered_per_sec gen);
  let r = empirical_rate spec 26L in
  Alcotest.(check bool) "empirical near offered" true (r > 800.0 && r < 1200.0);
  Array.iter
    (fun a ->
      let pos = Float.rem (Bp_sim.Time.to_ms a.Loadgen.at) 4.0 in
      (* Active window is [0, 2]; allow the ns-rounding boundary case. *)
      Alcotest.(check bool)
        (Printf.sprintf "arrival at %.6f ms cycle-pos outside quiet window" pos)
        true
        (pos <= 2.0 +. 1e-6))
    (Loadgen.plan ~rng:(rng 26L) spec)

let test_validation () =
  let invalid spec =
    try
      ignore (Loadgen.create ~rng:(rng 1L) spec);
      false
    with Invalid_argument _ -> true
  in
  let base =
    {
      Loadgen.process = Loadgen.Poisson { rate_per_sec = 100.0 };
      clients = 10;
      skew = 0.0;
      count = 10;
    }
  in
  Alcotest.(check bool) "zero rate" true
    (invalid { base with process = Loadgen.Poisson { rate_per_sec = 0.0 } });
  Alcotest.(check bool) "zero count" true (invalid { base with count = 0 });
  Alcotest.(check bool) "zero clients" true (invalid { base with clients = 0 });
  Alcotest.(check bool) "negative skew" true (invalid { base with skew = -1.0 });
  Alcotest.(check bool) "all-quiet diurnal trace" true
    (invalid
       {
         base with
         process =
           Loadgen.Diurnal { base_rate = 100.0; trace = [| (1.0, 0.0) |] };
       })

(* --- multi-key transaction mix --- *)

let test_mix_targets () =
  let mspec cross skew =
    { Loadgen.shards = 8; cross_fraction = cross; txn_keys = 3; shard_skew = skew }
  in
  let m0 = Loadgen.mix ~rng:(rng 21L) (mspec 0.0 0.0) in
  for _ = 1 to 200 do
    match Loadgen.draw_targets m0 with
    | [ s ] -> Alcotest.(check bool) "shard in range" true (s >= 0 && s < 8)
    | l -> Alcotest.failf "cross=0 drew %d targets" (List.length l)
  done;
  let m1 = Loadgen.mix ~rng:(rng 22L) (mspec 1.0 0.0) in
  for _ = 1 to 200 do
    let l = Loadgen.draw_targets m1 in
    Alcotest.(check int) "txn_keys distinct shards" 3
      (List.length (List.sort_uniq compare l));
    Alcotest.(check bool) "targets sorted" true (l = List.sort compare l)
  done;
  (* Shard skew concentrates singleton draws on the low ranks. *)
  let ms = Loadgen.mix ~rng:(rng 23L) (mspec 0.0 0.99) in
  let freq = Array.make 8 0 in
  for _ = 1 to 4000 do
    match Loadgen.draw_targets ms with
    | [ s ] -> freq.(s) <- freq.(s) + 1
    | _ -> ()
  done;
  Alcotest.(check bool) "hot shard dominates under skew" true
    (freq.(0) > 2 * freq.(7));
  let invalid spec =
    try
      ignore (Loadgen.mix ~rng:(rng 1L) spec);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "cross fraction > 1 rejected" true
    (invalid (mspec 1.5 0.0));
  Alcotest.(check bool) "txn_keys < 2 rejected" true
    (invalid { (mspec 0.5 0.0) with Loadgen.txn_keys = 1 });
  Alcotest.(check bool) "negative shard skew rejected" true
    (invalid (mspec 0.5 (-1.0)))

(* --- streaming scheduler == eager reference (qcheck) --- *)

let arbitrary_spec =
  let open QCheck in
  let process =
    oneof
      [
        map
          (fun r -> Loadgen.Poisson { rate_per_sec = float_of_int (1 + (r mod 5000)) })
          (make Gen.nat);
        map
          (fun (r, on, off) ->
            Loadgen.Bursty
              {
                rate_on = float_of_int (100 + (r mod 5000));
                on_ms = 0.5 +. float_of_int (on mod 5);
                off_ms = 0.5 +. float_of_int (off mod 5);
              })
          (triple (make Gen.nat) (make Gen.nat) (make Gen.nat));
        map
          (fun (r, d) ->
            Loadgen.Diurnal
              {
                base_rate = float_of_int (100 + (r mod 5000));
                trace =
                  [| (1.0 +. float_of_int (d mod 3), 1.5); (2.0, 0.5); (1.0, 0.0) |];
              })
          (pair (make Gen.nat) (make Gen.nat));
      ]
  in
  triple process (int_range 1 1000) (int_range 1 150)

let streaming_matches_eager =
  QCheck.Test.make ~count:60 ~name:"streaming run == eager plan"
    (QCheck.pair arbitrary_spec (QCheck.make QCheck.Gen.nat))
    (fun ((process, clients, count), seed) ->
      let seed = Int64.of_int seed in
      let spec = { Loadgen.process; clients; skew = 0.99; count } in
      let eager = Loadgen.plan ~rng:(rng seed) spec in
      let engine = Bp_sim.Engine.create ~seed:7L () in
      let gen = Loadgen.create ~rng:(rng seed) spec in
      let streamed = ref [] in
      let r =
        Loadgen.run engine ~gen ~submit:(fun i ~client ~on_done ->
            streamed :=
              { Loadgen.index = i; client; at = Bp_sim.Engine.now engine }
              :: !streamed;
            on_done ())
      in
      r.Loadgen.peak_arrivals_pending = 1
      && Array.to_list eager = List.rev !streamed)

(* --- O(1) heap occupancy at scale --- *)

let test_heap_occupancy () =
  (* 50k arrivals with in-flight service events: the generator itself
     still never holds more than one pending arrival, and total heap
     occupancy stays workload-bounded instead of O(count). *)
  let engine = Bp_sim.Engine.create ~seed:31L () in
  let gen =
    Loadgen.create ~rng:(rng 32L)
      {
        Loadgen.process = Loadgen.Poisson { rate_per_sec = 100_000.0 };
        clients = 1_000_000;
        skew = 0.99;
        count = 50_000;
      }
  in
  let r =
    Loadgen.run engine ~gen ~submit:(fun _ ~client:_ ~on_done ->
        ignore
          (Bp_sim.Engine.schedule engine ~after:(Bp_sim.Time.of_ms 0.2) on_done))
  in
  Alcotest.(check int) "all completed" 50_000
    (Bp_util.Stats.count r.Loadgen.latencies);
  Alcotest.(check int) "one pending arrival, ever" 1
    r.Loadgen.peak_arrivals_pending;
  (* 100k/s with 0.2 ms service -> ~20 overlapping service events; far
     below count, which an eager scheduler would put in the heap. *)
  Alcotest.(check bool) "engine heap stays workload-bounded" true
    (r.Loadgen.peak_engine_pending < 200)

(* --- saturation sweep: bit-identical at any --jobs --- *)

let test_saturation_jobs_deterministic () =
  let render_all () =
    String.concat ""
      (List.map Report.render (Runner.run_plan (Exp_saturation.plan ~scale:0.05)))
  in
  let seq = render_all () in
  let pool = Bp_parallel.Pool.create ~jobs:2 in
  let par =
    Fun.protect
      ~finally:(fun () -> Bp_parallel.Pool.shutdown pool)
      (fun () ->
        String.concat ""
          (List.map Report.render
             (Runner.run_plan ~pool (Exp_saturation.plan ~scale:0.05))))
  in
  Alcotest.(check string) "jobs 1 == jobs 2, byte-identical" seq par

let suite =
  [
    ( "loadgen",
      let tc name f = Alcotest.test_case name `Quick f in
      [
        tc "zipf skewed distribution" test_zipf_skewed;
        tc "zipf uniform at s=0" test_zipf_uniform;
        tc "zipf deterministic" test_zipf_deterministic;
        tc "zipf validation" test_zipf_validation;
        tc "poisson offered rate" test_poisson_rate;
        tc "bursty offered rate" test_bursty_rate;
        tc "diurnal rate and quiet windows" test_diurnal_rate_and_quiet;
        tc "spec validation" test_validation;
        tc "transaction mix targets" test_mix_targets;
        QCheck_alcotest.to_alcotest streaming_matches_eager;
        tc "O(1) heap occupancy" test_heap_occupancy;
        tc "saturation bit-identical across jobs"
          test_saturation_jobs_deterministic;
      ] );
  ]
