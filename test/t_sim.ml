open Bp_sim

let ms = Time.of_ms

let test_time_arithmetic () =
  Alcotest.(check int) "add" 3_000_000 (Time.to_ns (Time.add (ms 1.0) (ms 2.0)));
  Alcotest.(check int) "diff" 1_000_000 (Time.to_ns (Time.diff (ms 2.0) (ms 1.0)));
  Alcotest.(check (float 1e-9)) "to_ms" 2.5 (Time.to_ms (ms 2.5));
  Alcotest.(check int) "scale" 500_000 (Time.to_ns (Time.scale (ms 1.0) 0.5));
  (try
     ignore (Time.diff (ms 1.0) (ms 2.0));
     Alcotest.fail "expected raise"
   with Invalid_argument _ -> ())

let test_engine_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  let record tag () = order := tag :: !order in
  ignore (Engine.schedule e ~after:(ms 3.0) (record "c"));
  ignore (Engine.schedule e ~after:(ms 1.0) (record "a"));
  ignore (Engine.schedule e ~after:(ms 2.0) (record "b"));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order)

let test_engine_fifo_at_same_instant () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule e ~after:(ms 1.0) (fun () -> order := i :: !order))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "insertion order" (List.init 10 Fun.id) (List.rev !order)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref Time.zero in
  ignore (Engine.schedule e ~after:(ms 5.0) (fun () -> seen := Engine.now e));
  Engine.run e;
  Alcotest.(check int) "clock at event" (Time.to_ns (ms 5.0)) (Time.to_ns !seen)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let timer = Engine.schedule e ~after:(ms 1.0) (fun () -> fired := true) in
  Engine.cancel timer;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let hits = ref 0 in
  ignore
    (Engine.schedule e ~after:(ms 1.0) (fun () ->
         incr hits;
         ignore (Engine.schedule e ~after:(ms 1.0) (fun () -> incr hits))));
  Engine.run e;
  Alcotest.(check int) "both fired" 2 !hits;
  Alcotest.(check int) "final clock" (Time.to_ns (ms 2.0)) (Time.to_ns (Engine.now e))

let test_engine_until () =
  let e = Engine.create () in
  let hits = ref 0 in
  ignore (Engine.schedule e ~after:(ms 1.0) (fun () -> incr hits));
  ignore (Engine.schedule e ~after:(ms 10.0) (fun () -> incr hits));
  Engine.run ~until:(ms 5.0) e;
  Alcotest.(check int) "only first" 1 !hits;
  Alcotest.(check int) "clock clamped" (Time.to_ns (ms 5.0)) (Time.to_ns (Engine.now e));
  Engine.run e;
  Alcotest.(check int) "resumed" 2 !hits

let test_engine_periodic () =
  let e = Engine.create () in
  let hits = ref 0 in
  let timer =
    Engine.periodic e ~every:(ms 2.0) (fun () ->
        incr hits;
        if !hits = 5 then raise Exit)
  in
  (try Engine.run e with Exit -> ());
  Engine.cancel timer;
  Engine.run e;
  Alcotest.(check int) "five firings" 5 !hits;
  Alcotest.(check int) "clock" (Time.to_ns (ms 10.0)) (Time.to_ns (Engine.now e))

let test_engine_periodic_cancel_from_action () =
  let e = Engine.create () in
  let hits = ref 0 in
  let timer = ref None in
  timer :=
    Some
      (Engine.periodic e ~every:(ms 1.0) (fun () ->
           incr hits;
           if !hits = 3 then Engine.cancel (Option.get !timer)));
  Engine.run e;
  Alcotest.(check int) "stopped at three" 3 !hits

let test_engine_schedule_at_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~after:(ms 2.0) (fun () -> ()));
  Engine.run e;
  try
    ignore (Engine.schedule_at e (ms 1.0) (fun () -> ()));
    Alcotest.fail "expected raise"
  with Invalid_argument _ -> ()

(* [pending] is O(1) bookkeeping, not a heap scan — these pin down its
   value through every transition: schedule, cancel (before and after
   firing), periodic re-arm, and the drain at end of run. *)
let test_engine_pending_accounting () =
  let e = Engine.create () in
  Alcotest.(check int) "empty" 0 (Engine.pending e);
  let timers =
    List.init 10 (fun i -> Engine.schedule e ~after:(ms (float_of_int (i + 1))) ignore)
  in
  Alcotest.(check int) "ten live" 10 (Engine.pending e);
  Alcotest.(check int) "no backlog yet" 0 (Engine.cancelled_backlog e);
  List.iteri (fun i t -> if i mod 2 = 0 then Engine.cancel t) timers;
  Alcotest.(check int) "five live after cancels" 5 (Engine.pending e);
  Alcotest.(check int) "five in backlog" 5 (Engine.cancelled_backlog e);
  (* Double-cancel must not double-count. *)
  Engine.cancel (List.hd timers);
  Alcotest.(check int) "idempotent cancel" 5 (Engine.pending e);
  Alcotest.(check int) "idempotent backlog" 5 (Engine.cancelled_backlog e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e);
  Alcotest.(check int) "backlog drained" 0 (Engine.cancelled_backlog e)

let test_engine_pending_periodic () =
  let e = Engine.create () in
  let hits = ref 0 in
  let timer = ref None in
  timer :=
    Some
      (Engine.periodic e ~every:(ms 1.0) (fun () ->
           incr hits;
           (* While the action runs the next occurrence is already queued. *)
           Alcotest.(check int) "re-armed" 1 (Engine.pending e);
           if !hits = 3 then Option.iter Engine.cancel !timer));
  Alcotest.(check int) "one live timer" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "three firings" 3 !hits;
  Alcotest.(check int) "cancelled and drained" 0 (Engine.pending e)

(* Mass-cancellation beyond the purge threshold compacts the heap eagerly
   (backlog returns to zero on the next schedule) and never loses or
   reorders the survivors. *)
let test_engine_purge_compacts_backlog () =
  let e = Engine.create () in
  let fired = ref [] in
  let timers =
    Array.init 1000 (fun i ->
        Engine.schedule e
          ~after:(ms (float_of_int (i + 1)))
          (fun () -> fired := i :: !fired))
  in
  Array.iteri (fun i t -> if i < 600 then Engine.cancel t) timers;
  Alcotest.(check int) "live survivors" 400 (Engine.pending e);
  Alcotest.(check int) "backlog before purge" 600 (Engine.cancelled_backlog e);
  (* Backlog (600) exceeds both the threshold and the live count, so the
     next schedule triggers the eager purge. *)
  ignore (Engine.schedule e ~after:(ms 5000.0) ignore);
  Alcotest.(check int) "backlog purged" 0 (Engine.cancelled_backlog e);
  Alcotest.(check int) "survivors intact" 401 (Engine.pending e);
  Engine.run e;
  Alcotest.(check (list int)) "survivors fire in schedule order"
    (List.init 400 (fun i -> 600 + i))
    (List.rev !fired)

let test_engine_determinism () =
  let run_once () =
    let e = Engine.create ~seed:7L () in
    let rng = Bp_util.Rng.split (Engine.rng e) in
    let acc = ref [] in
    for _ = 1 to 20 do
      let d = Bp_util.Rng.float rng 10.0 in
      ignore (Engine.schedule e ~after:(Time.of_ms d) (fun () -> acc := d :: !acc))
    done;
    Engine.run e;
    !acc
  in
  Alcotest.(check (list (float 0.0))) "identical traces" (run_once ()) (run_once ())

let test_topology_paper_values () =
  let t = Topology.aws_paper in
  Alcotest.(check int) "4 DCs" 4 (Topology.num_dcs t);
  Alcotest.(check string) "name" "Virginia" (Topology.name t Topology.dc_virginia);
  Alcotest.(check (float 1e-6)) "C-O rtt" 19.0
    (Time.to_ms (Topology.rtt t Topology.dc_california Topology.dc_oregon));
  Alcotest.(check (float 1e-6)) "V-I rtt" 70.0
    (Time.to_ms (Topology.rtt t Topology.dc_virginia Topology.dc_ireland));
  Alcotest.(check (float 1e-6)) "one way symmetric" 9.5
    (Time.to_ms (Topology.one_way t Topology.dc_oregon Topology.dc_california));
  Alcotest.(check (option int)) "lookup" (Some Topology.dc_ireland)
    (Topology.dc_of_name t "Ireland")

let test_topology_neighbors () =
  let t = Topology.aws_paper in
  Alcotest.(check (list int)) "california neighbors"
    [ Topology.dc_oregon; Topology.dc_virginia; Topology.dc_ireland ]
    (Topology.neighbors_by_rtt t Topology.dc_california);
  Alcotest.(check (list int)) "ireland neighbors"
    [ Topology.dc_virginia; Topology.dc_california; Topology.dc_oregon ]
    (Topology.neighbors_by_rtt t Topology.dc_ireland)

let test_topology_closest_majority () =
  let t = Topology.aws_paper in
  (* n=4, majority=3: the 2nd-closest other site. *)
  Alcotest.(check (float 1e-6)) "california" 61.0
    (Time.to_ms (Topology.closest_majority_rtt t Topology.dc_california));
  Alcotest.(check (float 1e-6)) "virginia" 70.0
    (Time.to_ms (Topology.closest_majority_rtt t Topology.dc_virginia));
  Alcotest.(check (float 1e-6)) "oregon" 79.0
    (Time.to_ms (Topology.closest_majority_rtt t Topology.dc_oregon));
  Alcotest.(check (float 1e-6)) "ireland" 130.0
    (Time.to_ms (Topology.closest_majority_rtt t Topology.dc_ireland))

let test_topology_transfer_time () =
  let t = Topology.aws_paper in
  (* 640 MB/s: 640 KB should take 1 ms. *)
  Alcotest.(check (float 1e-3)) "640KB in 1ms" 1.0
    (Time.to_ms (Topology.transfer_time t 640_000))

let test_topology_validation () =
  let bad () =
    Topology.make ~names:[| "a"; "b" |]
      ~rtt_ms:[| [| 0.0; 1.0 |]; [| 2.0; 0.0 |] |]
      ()
  in
  (try
     ignore (bad ());
     Alcotest.fail "asymmetric accepted"
   with Invalid_argument _ -> ())

let node dc idx = Addr.make ~dc ~idx

let setup ?faults () =
  let e = Engine.create ~seed:99L () in
  let net = Network.create e Topology.aws_paper ?faults () in
  (e, net)

let test_network_latency () =
  let e, net = setup () in
  let a = node Topology.dc_california 0 and b = node Topology.dc_oregon 0 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let arrival = ref Time.zero in
  Network.register net b (fun ~src:_ ~hint:_ _ -> arrival := Engine.now e);
  Network.send net ~src:a ~dst:b "hi";
  Engine.run e;
  (* one-way C-O = 9.5ms plus 2-byte serialization (negligible). *)
  let got = Time.to_ms !arrival in
  Alcotest.(check bool) "about 9.5ms" true (got >= 9.5 && got < 9.6)

let test_network_intra_dc_latency () =
  let e, net = setup () in
  let a = node 0 0 and b = node 0 1 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let arrival = ref Time.zero in
  Network.register net b (fun ~src:_ ~hint:_ _ -> arrival := Engine.now e);
  Network.send net ~src:a ~dst:b "hi";
  Engine.run e;
  let got = Time.to_ms !arrival in
  Alcotest.(check bool) "about 0.25ms" true (got >= 0.25 && got < 0.3)

let test_network_nic_serialization () =
  (* Two large back-to-back sends: the second's departure waits on the
     first (shared NIC), so arrivals are spaced by the transfer time. *)
  let e, net = setup () in
  let a = node 0 0 and b = node 0 1 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let arrivals = ref [] in
  Network.register net b (fun ~src:_ ~hint:_ _ -> arrivals := Engine.now e :: !arrivals);
  let payload = String.make 640_000 'x' in
  Network.send net ~src:a ~dst:b payload;
  Network.send net ~src:a ~dst:b payload;
  Engine.run e;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
      let gap = Time.to_ms (Time.diff t2 t1) in
      Alcotest.(check bool) "spaced by ~1ms serialization" true
        (gap > 0.9 && gap < 1.1)
  | _ -> Alcotest.fail "expected two deliveries"

let test_network_crashed_receiver_drops () =
  let e, net = setup () in
  let a = node 0 0 and b = node 0 1 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let got = ref 0 in
  Network.register net b (fun ~src:_ ~hint:_ _ -> incr got);
  Network.crash net b;
  Network.send net ~src:a ~dst:b "hi";
  Engine.run e;
  Alcotest.(check int) "dropped" 0 !got;
  Network.recover net b;
  Network.send net ~src:a ~dst:b "hi";
  Engine.run e;
  Alcotest.(check int) "delivered after recover" 1 !got

let test_network_crashed_sender_drops () =
  let e, net = setup () in
  let a = node 0 0 and b = node 0 1 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let got = ref 0 in
  Network.register net b (fun ~src:_ ~hint:_ _ -> incr got);
  Network.crash net a;
  Network.send net ~src:a ~dst:b "hi";
  Engine.run e;
  Alcotest.(check int) "dropped" 0 !got

let test_network_crash_dc () =
  let e, net = setup () in
  let a = node 0 0 and b = node 0 1 and c = node 1 0 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let got_b = ref 0 and got_c = ref 0 in
  Network.register net b (fun ~src:_ ~hint:_ _ -> incr got_b);
  Network.register net c (fun ~src:_ ~hint:_ _ -> incr got_c);
  Network.crash_dc net 0;
  (* a is crashed too: send from c instead. *)
  Network.send net ~src:c ~dst:b "hi";
  Engine.run e;
  Alcotest.(check int) "dc-0 node unreachable" 0 !got_b;
  Alcotest.(check bool) "a crashed" true (Network.is_crashed net a);
  Network.recover_dc net 0;
  Network.send net ~src:c ~dst:b "hi";
  Engine.run e;
  Alcotest.(check int) "after recovery" 1 !got_b

let test_network_partition () =
  let e, net = setup () in
  let a = node 0 0 and b = node 1 0 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let got = ref 0 in
  Network.register net b (fun ~src:_ ~hint:_ _ -> incr got);
  Network.set_link net 0 1 `Down;
  Network.send net ~src:a ~dst:b "hi";
  Engine.run e;
  Alcotest.(check int) "partitioned" 0 !got;
  Network.set_link net 0 1 `Up;
  Network.send net ~src:a ~dst:b "hi";
  Engine.run e;
  Alcotest.(check int) "healed" 1 !got

let test_network_drop_fault () =
  let faults = { Network.no_faults with drop = 1.0 } in
  let e, net = setup ~faults () in
  let a = node 0 0 and b = node 0 1 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let got = ref 0 in
  Network.register net b (fun ~src:_ ~hint:_ _ -> incr got);
  for _ = 1 to 10 do
    Network.send net ~src:a ~dst:b "hi"
  done;
  Engine.run e;
  Alcotest.(check int) "all dropped" 0 !got;
  Alcotest.(check int) "counted" 10 (Network.counters net).Network.dropped

let test_network_duplicate_fault () =
  let faults = { Network.no_faults with duplicate = 1.0 } in
  let e, net = setup ~faults () in
  let a = node 0 0 and b = node 0 1 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let got = ref 0 in
  Network.register net b (fun ~src:_ ~hint:_ _ -> incr got);
  Network.send net ~src:a ~dst:b "hi";
  Engine.run e;
  Alcotest.(check int) "delivered twice" 2 !got

let test_network_corrupt_fault () =
  let faults = { Network.no_faults with corrupt = 1.0 } in
  let e, net = setup ~faults () in
  let a = node 0 0 and b = node 0 1 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  let received = ref "" in
  Network.register net b (fun ~src:_ ~hint:_ p -> received := p);
  Network.send net ~src:a ~dst:b "payload";
  Engine.run e;
  Alcotest.(check bool) "mutated" false (String.equal !received "payload");
  Alcotest.(check int) "same length" 7 (String.length !received)

let test_network_counters () =
  let e, net = setup () in
  let a = node 0 0 and b = node 0 1 in
  Network.register net a (fun ~src:_ ~hint:_ _ -> ());
  Network.register net b (fun ~src:_ ~hint:_ _ -> ());
  Network.send net ~src:a ~dst:b "12345";
  Engine.run e;
  let c = Network.counters net in
  Alcotest.(check int) "sent" 1 c.Network.sent;
  Alcotest.(check int) "delivered" 1 c.Network.delivered;
  Alcotest.(check int) "bytes" 5 c.Network.bytes_sent

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "sim.time",
      [ tc "arithmetic" test_time_arithmetic ] );
    ( "sim.engine",
      [
        tc "event ordering" test_engine_ordering;
        tc "fifo at same instant" test_engine_fifo_at_same_instant;
        tc "clock advances" test_engine_clock_advances;
        tc "cancel" test_engine_cancel;
        tc "nested schedule" test_engine_nested_schedule;
        tc "run until" test_engine_until;
        tc "periodic" test_engine_periodic;
        tc "periodic cancel from action" test_engine_periodic_cancel_from_action;
        tc "schedule_at past rejected" test_engine_schedule_at_past_rejected;
        tc "pending accounting" test_engine_pending_accounting;
        tc "pending across periodic" test_engine_pending_periodic;
        tc "purge compacts backlog" test_engine_purge_compacts_backlog;
        tc "determinism" test_engine_determinism;
      ] );
    ( "sim.topology",
      [
        tc "paper Table I values" test_topology_paper_values;
        tc "neighbors by rtt" test_topology_neighbors;
        tc "closest majority rtt" test_topology_closest_majority;
        tc "transfer time" test_topology_transfer_time;
        tc "validation" test_topology_validation;
      ] );
    ( "sim.network",
      [
        tc "wide-area latency" test_network_latency;
        tc "intra-dc latency" test_network_intra_dc_latency;
        tc "nic serialization" test_network_nic_serialization;
        tc "crashed receiver drops" test_network_crashed_receiver_drops;
        tc "crashed sender drops" test_network_crashed_sender_drops;
        tc "datacenter outage" test_network_crash_dc;
        tc "partition" test_network_partition;
        tc "drop fault" test_network_drop_fault;
        tc "duplicate fault" test_network_duplicate_fault;
        tc "corrupt fault" test_network_corrupt_fault;
        tc "counters" test_network_counters;
      ] );
  ]
