open Bp_codec

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let s = Wire.encode (fun e -> Wire.varint e n) in
      match Wire.decode s Wire.read_varint with
      | Ok m -> Alcotest.(check int) (string_of_int n) n m
      | Error e -> Alcotest.fail e)
    [ 0; 1; 127; 128; 129; 16383; 16384; 1 lsl 20; 1 lsl 40; max_int ]

let test_varint_negative_rejected () =
  (try
     ignore (Wire.encode (fun e -> Wire.varint e (-1)));
     Alcotest.fail "expected raise"
   with Invalid_argument _ -> ())

let test_zigzag_roundtrip () =
  List.iter
    (fun n ->
      let s = Wire.encode (fun e -> Wire.zigzag e n) in
      match Wire.decode s Wire.read_zigzag with
      | Ok m -> Alcotest.(check int) (string_of_int n) n m
      | Error e -> Alcotest.fail e)
    [ 0; 1; -1; 2; -2; 1000; -1000; (1 lsl 40) - 1; -(1 lsl 40) ]

let test_zigzag_extremes () =
  (* zigzag must be total on the full int range: min_int used to overflow
     into a negative raw varint and fail to encode. *)
  List.iter
    (fun n ->
      let s = Wire.encode (fun e -> Wire.zigzag e n) in
      match Wire.decode s Wire.read_zigzag with
      | Ok m -> Alcotest.(check int) (string_of_int n) n m
      | Error e -> Alcotest.fail e)
    [ min_int; min_int + 1; max_int; max_int - 1; min_int / 2; max_int / 2 ]

let test_varint_rejection_is_precise () =
  (* Exactly 10 continuation bytes: one too many for a 63-bit int. The
     error must say so rather than looping or silently wrapping. *)
  let hostile = String.make 9 '\xff' ^ "\x01" in
  (match Wire.decode hostile Wire.read_varint with
  | Ok _ -> Alcotest.fail "10-byte varint accepted"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions the limit: %S" msg)
        true
        (String.length msg > 0
        && (let has_sub sub =
              let n = String.length sub and m = String.length msg in
              let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
              go 0
            in
            has_sub "10 bytes")));
  (* 9 bytes ending the encoding is still fine (max_int needs 9). *)
  let ok = Wire.encode (fun e -> Wire.varint e max_int) in
  Alcotest.(check int) "max_int is 9 bytes" 9 (String.length ok);
  match Wire.decode ok Wire.read_varint with
  | Ok m -> Alcotest.(check int) "max_int roundtrip" max_int m
  | Error e -> Alcotest.fail e

let test_varint_negative_result_rejected () =
  (* A 9-byte raw varint whose 63-bit value has the top bit set decodes
     to a negative int: read_varint must reject it (read_zigzag may not). *)
  let hostile = String.make 8 '\x80' ^ "\x40" in
  match Wire.decode hostile Wire.read_varint with
  | Ok m -> Alcotest.fail (Printf.sprintf "negative varint accepted: %d" m)
  | Error _ -> ()

let test_encoder_reuse () =
  let e = Wire.encoder ~size_hint:8 () in
  let one = Wire.encode_with e (fun e -> Wire.string e "first payload") in
  let two = Wire.encode_with e (fun e -> Wire.varint e 7) in
  Alcotest.(check (result string string))
    "first" (Ok "first payload")
    (Wire.decode one Wire.read_string);
  Alcotest.(check (result int string)) "second" (Ok 7) (Wire.decode two Wire.read_varint);
  (* Manual reset + primitives (the transport's packet-assembly path). *)
  Wire.reset e;
  Wire.u8 e 3;
  Wire.fixed e "abc";
  Alcotest.(check int) "length" 4 (Wire.length e);
  Alcotest.(check string) "manual assembly" "\x03abc" (Wire.to_string e)

let test_read_fixed_and_skip () =
  let payload = String.make 4096 'p' in
  (* Whole-buffer read_fixed must return the original string unchanged
     (zero-copy fast path). *)
  (match Wire.decode payload (fun d -> Wire.read_fixed d (String.length payload)) with
  | Ok s -> Alcotest.(check bool) "zero-copy" true (s == payload)
  | Error e -> Alcotest.fail e);
  (* skip + partial read_fixed. *)
  let enc = "hdr" ^ payload in
  (match
     Wire.decode enc (fun d ->
         Wire.skip d 3;
         Wire.read_fixed d (String.length payload))
   with
  | Ok s -> Alcotest.(check string) "after skip" payload s
  | Error e -> Alcotest.fail e);
  (* skip past the end must fail, not crash. *)
  match Wire.decode "ab" (fun d -> Wire.skip d 3; Wire.read_u8 d) with
  | Ok _ -> Alcotest.fail "skip past end accepted"
  | Error _ -> ()

let test_string_roundtrip () =
  List.iter
    (fun s ->
      let enc = Wire.encode (fun e -> Wire.string e s) in
      match Wire.decode enc Wire.read_string with
      | Ok s' -> Alcotest.(check string) "roundtrip" s s'
      | Error e -> Alcotest.fail e)
    [ ""; "x"; String.make 1000 'q'; "\x00\xff\x80" ]

let test_composite_roundtrip () =
  let enc =
    Wire.encode (fun e ->
        Wire.bool e true;
        Wire.list e (Wire.string e) [ "a"; "bb"; "" ];
        Wire.option e (Wire.varint e) (Some 42);
        Wire.option e (Wire.varint e) None;
        Wire.u8 e 200)
  in
  match
    Wire.decode enc (fun d ->
        let b = Wire.read_bool d in
        let xs = Wire.read_list d Wire.read_string in
        let o1 = Wire.read_option d Wire.read_varint in
        let o2 = Wire.read_option d Wire.read_varint in
        let u = Wire.read_u8 d in
        (b, xs, o1, o2, u))
  with
  | Ok (b, xs, o1, o2, u) ->
      Alcotest.(check bool) "bool" true b;
      Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ] xs;
      Alcotest.(check (option int)) "some" (Some 42) o1;
      Alcotest.(check (option int)) "none" None o2;
      Alcotest.(check int) "u8" 200 u
  | Error e -> Alcotest.fail e

let test_decode_trailing_bytes () =
  let enc = Wire.encode (fun e -> Wire.varint e 1) ^ "junk" in
  match Wire.decode enc Wire.read_varint with
  | Ok _ -> Alcotest.fail "expected trailing-bytes error"
  | Error _ -> ()

let test_decode_truncated () =
  let enc = Wire.encode (fun e -> Wire.string e "hello") in
  let cut = String.sub enc 0 (String.length enc - 2) in
  match Wire.decode cut Wire.read_string with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_decode_hostile_list_length () =
  (* A list claiming 2^40 elements must not allocate or loop. *)
  let enc = Wire.encode (fun e -> Wire.varint e (1 lsl 40)) in
  match Wire.decode enc (fun d -> Wire.read_list d Wire.read_varint) with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_decode_overlong_varint () =
  let hostile = String.make 12 '\xff' in
  match Wire.decode hostile Wire.read_varint with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      match Frame.unseal (Frame.seal payload) with
      | Ok p -> Alcotest.(check string) "roundtrip" payload p
      | Error _ -> Alcotest.fail "unseal failed")
    [ ""; "x"; String.make 4096 'z'; "\x00\x01\x02" ]

let test_frame_detects_corruption () =
  let frame = Bytes.of_string (Frame.seal "important payload") in
  (* Flip one bit in the payload area. *)
  let i = Bytes.length frame - 3 in
  Bytes.set frame i (Char.chr (Char.code (Bytes.get frame i) lxor 0x10));
  match Frame.unseal (Bytes.to_string frame) with
  | Error `Corrupt -> ()
  | Error `Malformed -> Alcotest.fail "expected Corrupt, got Malformed"
  | Ok _ -> Alcotest.fail "corruption not detected"

let test_frame_detects_header_damage () =
  let frame = Frame.seal "payload" in
  let broken = "XXXX" ^ String.sub frame 4 (String.length frame - 4) in
  (match Frame.unseal broken with
  | Error `Malformed -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  match Frame.unseal (String.sub frame 0 (Frame.overhead - 1)) with
  | Error `Malformed -> ()
  | _ -> Alcotest.fail "short frame accepted"

let test_frame_rejects_truncated_payload () =
  let frame = Frame.seal "0123456789" in
  match Frame.unseal (String.sub frame 0 (String.length frame - 1)) with
  | Error `Malformed -> ()
  | _ -> Alcotest.fail "truncated frame accepted"

let qcheck_wire_string_list =
  QCheck.Test.make ~name:"wire list<string> roundtrip" ~count:300
    QCheck.(list (string_of_size QCheck.Gen.(0 -- 50)))
    (fun xs ->
      let enc = Wire.encode (fun e -> Wire.list e (Wire.string e) xs) in
      Wire.decode enc (fun d -> Wire.read_list d Wire.read_string) = Ok xs)

let qcheck_wire_never_raises =
  QCheck.Test.make ~name:"decoder total on random bytes" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      match
        Wire.decode s (fun d ->
            let _ = Wire.read_varint d in
            let _ = Wire.read_string d in
            Wire.read_list d Wire.read_bool)
      with
      | Ok _ | Error _ -> true)

let qcheck_zigzag_total =
  QCheck.Test.make ~name:"zigzag total on full int range" ~count:1000
    QCheck.(
      let open Gen in
      make ~print:string_of_int
        (oneof
           [
             oneofl [ min_int; min_int + 1; max_int; 0; 1; -1 ];
             map (fun (a, b) -> (a lsl 32) lxor b) (pair int int);
             int;
           ]))
    (fun n ->
      let enc = Wire.encode (fun e -> Wire.zigzag e n) in
      Wire.decode enc Wire.read_zigzag = Ok n)

let qcheck_frame_roundtrip =
  QCheck.Test.make ~name:"frame roundtrip" ~count:300
    QCheck.(string_of_size Gen.(0 -- 256))
    (fun s -> Frame.unseal (Frame.seal s) = Ok s)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "codec.wire",
      [
        tc "varint roundtrip" test_varint_roundtrip;
        tc "varint negative rejected" test_varint_negative_rejected;
        tc "zigzag roundtrip" test_zigzag_roundtrip;
        tc "zigzag extremes" test_zigzag_extremes;
        tc "varint rejection is precise" test_varint_rejection_is_precise;
        tc "varint negative result rejected" test_varint_negative_result_rejected;
        tc "encoder reuse" test_encoder_reuse;
        tc "read_fixed + skip" test_read_fixed_and_skip;
        tc "string roundtrip" test_string_roundtrip;
        tc "composite roundtrip" test_composite_roundtrip;
        tc "trailing bytes" test_decode_trailing_bytes;
        tc "truncated input" test_decode_truncated;
        tc "hostile list length" test_decode_hostile_list_length;
        tc "overlong varint" test_decode_overlong_varint;
        QCheck_alcotest.to_alcotest qcheck_wire_string_list;
        QCheck_alcotest.to_alcotest qcheck_zigzag_total;
        QCheck_alcotest.to_alcotest qcheck_wire_never_raises;
      ] );
    ( "codec.frame",
      [
        tc "roundtrip" test_frame_roundtrip;
        tc "detects corruption" test_frame_detects_corruption;
        tc "detects header damage" test_frame_detects_header_damage;
        tc "rejects truncated payload" test_frame_rejects_truncated_payload;
        QCheck_alcotest.to_alcotest qcheck_frame_roundtrip;
      ] );
  ]
