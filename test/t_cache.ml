(* Differential pinning of Bp_crypto.Verify_cache: a cache is a memo, not
   an oracle, so every answer it gives must be bit-identical to the
   uncached computation — across hits, tampered signatures, unknown
   identities, eviction churn, keystore generation bumps, and both
   signing modes (content-addressed and plain). *)

open Bp_crypto

let with_cache_off f =
  Verify_cache.set_enabled false;
  Fun.protect ~finally:(fun () -> Verify_cache.set_enabled true) f

let ids = Array.init 8 (fun i -> Printf.sprintf "cache/id%d" i)

let make_keystore ?scheme () =
  let ks = Signer.create ?scheme (Bp_util.Rng.create 42L) in
  Array.iter (Signer.add_identity ks) ids;
  ks

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b (i mod Bytes.length b)
    (Char.chr (Char.code (Bytes.get b (i mod Bytes.length b)) lxor 1));
  Bytes.to_string b

(* Replay a random trace of verifications — valid, tampered, misattributed
   to another signer, and against an unknown identity — through a tiny
   cache (capacity 4, so eviction churns constantly) and require the
   memoized verdict to equal the raw one at every single step. *)
let diff_verify_test ~name ~scheme =
  let ks = make_keystore ~scheme () in
  let msgs = Array.init 6 (fun i -> Printf.sprintf "message payload %d" i) in
  let sigs =
    Array.map
      (fun id -> Array.map (fun m -> Signer.sign ks ~signer:id m) msgs)
      ids
  in
  let cache = Verify_cache.create ~capacity:4 ks in
  QCheck.Test.make ~name ~count:200
    QCheck.(
      small_list (quad (int_bound 9) (int_bound 5) (int_bound 5) (int_bound 33)))
    (fun ops ->
      List.for_all
        (fun (who, m, signed_m, tamper) ->
          let signer =
            if who >= Array.length ids then "cache/ghost"
            else ids.(who)
          in
          let signature =
            let base = sigs.(who mod Array.length ids).(signed_m) in
            if tamper < 32 then flip_byte base tamper else base
          in
          let msg = msgs.(m) in
          let cached = Verify_cache.verify cache ~signer ~msg ~signature in
          let raw = Verify_cache.verify_uncached ks ~signer ~msg ~signature in
          cached = raw)
        ops)

(* The soundness invariant, observed through the counters: provisioning an
   identity bumps the keystore generation, after which a previously cached
   verdict must be recomputed (miss), not replayed. *)
let test_generation_invalidation () =
  let ks = make_keystore () in
  let cache = Verify_cache.create ks in
  let msg = "generation test" in
  let signature = Signer.sign ks ~signer:ids.(0) msg in
  Verify_cache.reset_counters ();
  let v1 = Verify_cache.verify cache ~signer:ids.(0) ~msg ~signature in
  let v2 = Verify_cache.verify cache ~signer:ids.(0) ~msg ~signature in
  Alcotest.(check bool) "valid" true (v1 && v2);
  let c = Verify_cache.counters () in
  Alcotest.(check int) "one miss" 1 c.Verify_cache.verify_misses;
  Alcotest.(check int) "one hit" 1 c.Verify_cache.verify_hits;
  Signer.add_identity ks "cache/late-arrival";
  let v3 = Verify_cache.verify cache ~signer:ids.(0) ~msg ~signature in
  Alcotest.(check bool) "still valid" true v3;
  let c = Verify_cache.counters () in
  Alcotest.(check int) "stale entry recomputed" 2 c.Verify_cache.verify_misses

(* Signing through the cache seeds the (known-true) verdict: the signer's
   own envelope verifies without ever running the verifier. *)
let test_sign_seeds_cache () =
  let ks = make_keystore () in
  let cache = Verify_cache.create ks in
  let msg = "self-signed" in
  let signature = Verify_cache.sign cache ~signer:ids.(1) msg in
  Verify_cache.reset_counters ();
  Alcotest.(check bool) "verifies" true
    (Verify_cache.verify cache ~signer:ids.(1) ~msg ~signature);
  let c = Verify_cache.counters () in
  Alcotest.(check int) "pure hit" 1 c.Verify_cache.verify_hits;
  Alcotest.(check int) "no miss" 0 c.Verify_cache.verify_misses;
  (* The seeded verdict is exact, not optimistic: the same signature under
     a different message must fail. *)
  Alcotest.(check bool) "tampered message rejected" false
    (Verify_cache.verify cache ~signer:ids.(1) ~msg:"other" ~signature)

(* Digest memo: always equals Sha256.digest, including under a byte budget
   small enough to evict on nearly every insertion, and for re-allocated
   copies of the same content (the content probe, not just physical
   identity). *)
let diff_digest_test =
  let ks = make_keystore () in
  let cache = Verify_cache.create ~digest_budget:1024 ks in
  QCheck.Test.make ~name:"digest memo = Sha256.digest (budget churn)"
    ~count:300
    QCheck.(string_of_size Gen.(0 -- 400))
    (fun s ->
      let d1 = Verify_cache.digest cache s in
      let copy = String.concat "" [ s; "" ] in
      let d2 = Verify_cache.digest cache copy in
      String.equal d1 (Sha256.digest s) && String.equal d2 d1)

let mk_batch ops =
  List.mapi
    (fun i op ->
      {
        Bp_pbft.Msg.client = Bp_sim.Addr.make ~dc:0 ~idx:i;
        ts = i;
        kind = i land 3;
        op;
        client_sig = String.make 32 (Char.chr (65 + (i land 7)));
      })
    ops

(* Batch digest: the memoized form, the cache-assisted form, and the bare
   form must produce the same bytes for the same batch (within a mode; the
   mode itself legitimately changes the digest's preimage). *)
let diff_batch_digest_test =
  let ks = make_keystore () in
  let cache = Verify_cache.create ks in
  let memo = Verify_cache.memo ~capacity:4 () in
  QCheck.Test.make ~name:"memoized batch digest = Msg.batch_digest" ~count:200
    QCheck.(small_list (string_of_size Gen.(0 -- 200)))
    (fun ops ->
      let batch = mk_batch ops in
      let direct = Bp_pbft.Msg.batch_digest batch in
      let cached = Bp_pbft.Msg.batch_digest ~cache batch in
      let memoized =
        Verify_cache.memoize memo batch (fun () ->
            Bp_pbft.Msg.batch_digest ~cache batch)
      in
      (* Second probe exercises the hit path. *)
      let again =
        Verify_cache.memoize memo batch (fun () ->
            Bp_pbft.Msg.batch_digest ~cache batch)
      in
      String.equal direct cached
      && String.equal direct memoized
      && String.equal direct again)

(* CRC32 combination (used to seal broadcast frames without re-scanning
   the shared payload once per destination) against the direct scan. *)
let diff_crc_combine_test =
  QCheck.Test.make ~name:"Crc32.combine = crc of concatenation" ~count:500
    QCheck.(pair (string_of_size Gen.(0 -- 300)) (string_of_size Gen.(0 -- 300)))
    (fun (a, b) ->
      let direct = Crc32.string (a ^ b) in
      let combined =
        Crc32.combine (Crc32.string a) (Crc32.string b) (String.length b)
      in
      Int32.equal direct combined)

(* Envelopes round-trip in both signing modes. Content-addressed mode
   changes which bytes are signed (so signatures differ between modes) but
   never the envelope's size or its verdict. *)
let test_envelope_both_modes () =
  let roundtrip () =
    let ks = make_keystore () in
    let nodes = Array.init 4 (fun i -> Bp_sim.Addr.make ~dc:0 ~idx:i) in
    let cfg = Bp_pbft.Config.make ~nodes ~keystore:ks () in
    let cache = Verify_cache.create ks in
    let big_op = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
    let request =
      Bp_pbft.Msg.make_request ~cache cfg ~client:nodes.(1) ~ts:1 ~kind:0
        ~op:big_op
    in
    Alcotest.(check bool) "request valid (cached)" true
      (Bp_pbft.Msg.request_valid ~cache cfg request);
    Alcotest.(check bool) "request valid (no cache)" true
      (Bp_pbft.Msg.request_valid cfg request);
    (* A Request envelope's claimed sender is the client inside it. *)
    let sealed =
      Bp_pbft.Msg.seal ~cache cfg ~sender:nodes.(1)
        (Bp_pbft.Msg.Request request)
    in
    (match Bp_pbft.Msg.verify_envelope ~cache cfg sealed with
    | Ok (Bp_pbft.Msg.Request r) ->
        Alcotest.(check string) "op intact" big_op r.Bp_pbft.Msg.op
    | Ok _ -> Alcotest.fail "wrong body"
    | Error e -> Alcotest.fail ("rejected: " ^ e));
    (* A cache-less verifier must agree with the cached one. *)
    (match Bp_pbft.Msg.verify_envelope cfg sealed with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("cache-less verifier rejected: " ^ e));
    (* Tampering with the op must invalidate the signature in this mode
       too: the content-addressed payload binds the op through its
       digest. *)
    let tampered = flip_byte sealed (String.length sealed - 40) in
    (match Bp_pbft.Msg.verify_envelope ~cache cfg tampered with
    | Ok _ ->
        (* A flipped byte can land in framing rather than content; the
           decoder rejecting with Error is equally acceptable — what is
           forbidden is accepting a different op silently. *)
        ()
    | Error _ -> ());
    String.length sealed
  in
  let len_on = roundtrip () in
  let len_off = with_cache_off roundtrip in
  (* Same envelope size in both modes: signatures are fixed-width, so the
     mode cannot leak into message timing or wire-size accounting. *)
  Alcotest.(check int) "envelope size mode-independent" len_on len_off

let suite =
  [
    ( "cache",
      List.map QCheck_alcotest.to_alcotest
        [
          diff_verify_test ~name:"cached verify = raw verify (hmac)"
            ~scheme:`Hmac;
          diff_verify_test ~name:"cached verify = raw verify (hash-based)"
            ~scheme:`Hash_based;
          diff_digest_test;
          diff_batch_digest_test;
          diff_crc_combine_test;
        ]
      @ [
          Alcotest.test_case "generation bump invalidates" `Quick
            test_generation_invalidation;
          Alcotest.test_case "sign seeds own verdict" `Quick
            test_sign_seeds_cache;
          Alcotest.test_case "envelope round-trip in both modes" `Quick
            test_envelope_both_modes;
        ] );
  ]
