(* Batched verification (lib/crypto/verify_batch): differential tests
   against the sequential reference and jobs-invariance of experiment
   output.

   The contract under test: for any batch of jobs, [Verify_batch.verify]
   returns exactly the verdict list the sequential [Signer.verify] /
   [Lamport.verify] calls would — at any worker count, with or without a
   [Verify_cache], and across keystore generation churn. *)

open Bp_crypto

let idents = [| "node-0"; "node-1"; "node-2" |]

(* A job spec is an int code plus an index: everything about the job is
   derived deterministically so qcheck only has to generate small ints. *)
let msg_of i = Printf.sprintf "payload-%d;" i

(* Flip one byte in the middle of the signature: for hash-based
   signatures the leading bytes are structural header, so byte 0 is not
   guaranteed to be load-bearing — the midpoint always is. *)
let tamper s = if String.length s = 0 then "x" else
  let k = String.length s / 2 in
  String.mapi (fun i c -> if i = k then Char.chr (Char.code c lxor 1) else c) s

let build_job ~keystore ~rng (code, i) =
  let signer = idents.(abs i mod Array.length idents) in
  let msg = msg_of i in
  match abs code mod 6 with
  | 0 ->
      (* valid registry-keyed signature *)
      Verify_batch.Keyed
        { signer; msg; signature = Signer.sign keystore ~signer msg }
  | 1 ->
      (* tampered signature bytes *)
      Verify_batch.Keyed
        { signer; msg; signature = tamper (Signer.sign keystore ~signer msg) }
  | 2 ->
      (* ghost: identity never registered *)
      Verify_batch.Keyed { signer = "ghost"; msg; signature = "sig" }
  | 3 ->
      (* signed by one identity, claimed by another *)
      let other = idents.((abs i + 1) mod Array.length idents) in
      Verify_batch.Keyed
        { signer = other; msg; signature = Signer.sign keystore ~signer msg }
  | 4 ->
      (* valid lamport one-time signature *)
      let sk, pk = Lamport.keygen rng in
      Verify_batch.Lamport { key = pk; msg; signature = Lamport.sign sk msg }
  | _ ->
      (* lamport signature over a different message *)
      let sk, pk = Lamport.keygen rng in
      Verify_batch.Lamport
        { key = pk; msg; signature = Lamport.sign sk (msg ^ "!") }

(* The sequential reference, job by job on the calling domain. *)
let reference ~keystore job =
  match job with
  | Verify_batch.Keyed { signer; msg; signature } ->
      Signer.verify keystore ~signer ~msg ~signature
  | Verify_batch.Lamport { key; msg; signature } ->
      Lamport.verify key msg signature

let scenario_arbitrary =
  QCheck.make
    ~print:(fun (codes, churn) ->
      Printf.sprintf "codes=[%s] churn=%b"
        (String.concat ";" (List.map string_of_int codes))
        churn)
    QCheck.Gen.(pair (list_size (1 -- 8) (int_bound 5)) bool)

let differential_test =
  QCheck.Test.make ~name:"batched = sequential at jobs 1/2/4" ~count:40
    scenario_arbitrary (fun (codes, churn) ->
      let keystore = Signer.create (Bp_util.Rng.create 7801L) in
      Array.iter (Signer.add_identity keystore) idents;
      let rng = Bp_util.Rng.create 7802L in
      let jobs = List.mapi (fun i code -> build_job ~keystore ~rng (code, i)) codes in
      if churn then Signer.add_identity keystore "late-arrival";
      let expected = List.map (reference ~keystore) jobs in
      List.for_all
        (fun n ->
          let ctx = Verify_batch.create ~jobs:n () in
          let plain = Verify_batch.verify ~keystore ctx jobs in
          (* Same batch twice through one cache, with a generation bump
             between the runs: memoized verdicts must never change a
             verdict, and stale-generation entries must re-verify. *)
          let cache = Verify_cache.create keystore in
          let cached1 = Verify_batch.verify ~cache ~keystore ctx jobs in
          Signer.add_identity keystore (Printf.sprintf "churn-%d" n);
          let cached2 = Verify_batch.verify ~cache ~keystore ctx jobs in
          Verify_batch.shutdown ctx;
          List.equal Bool.equal expected plain
          && List.equal Bool.equal expected cached1
          && List.equal Bool.equal expected cached2)
        [ 1; 2; 4 ])

(* Hash-based scheme: snapshots carry root lists (not HMAC secrets), and
   signing consumes one-time keys — the batch path must agree with the
   sequential reference here too. *)
let test_hash_based_batch () =
  let keystore = Signer.create ~scheme:`Hash_based (Bp_util.Rng.create 7803L) in
  Signer.add_identity keystore "hb-node";
  let sigs =
    List.init 6 (fun i -> Signer.sign keystore ~signer:"hb-node" (msg_of i))
  in
  let jobs =
    List.mapi
      (fun i signature ->
        let signature = if i mod 3 = 2 then tamper signature else signature in
        Verify_batch.Keyed { signer = "hb-node"; msg = msg_of i; signature })
      sigs
  in
  let expected = List.map (reference ~keystore) jobs in
  Alcotest.(check bool) "tampered rejected" true
    (List.exists not expected && List.exists Fun.id expected);
  List.iter
    (fun n ->
      let ctx = Verify_batch.create ~jobs:n () in
      Alcotest.(check (list bool))
        (Printf.sprintf "hash-based verdicts at jobs %d" n)
        expected
        (Verify_batch.verify ~keystore ctx jobs);
      Verify_batch.shutdown ctx)
    [ 1; 4 ]

(* Submitted batches may be awaited late (the replica's preverify path
   overlaps head-slot execution); verdicts and stats must not care. *)
let test_submit_overlap_and_stats () =
  let keystore = Signer.create (Bp_util.Rng.create 7804L) in
  Array.iter (Signer.add_identity keystore) idents;
  let jobs =
    List.init 9 (fun i ->
        let signer = idents.(i mod 3) in
        let s = Signer.sign keystore ~signer (msg_of i) in
        Verify_batch.Keyed
          { signer; msg = msg_of i; signature = (if i = 4 then tamper s else s) })
  in
  let expected = List.map (reference ~keystore) jobs in
  let ctx = Verify_batch.create ~jobs:2 () in
  let cache = Verify_cache.create keystore in
  let h1 = Verify_batch.submit ~cache ~keystore ctx jobs in
  let h2 = Verify_batch.submit ~cache ~keystore ctx jobs in
  Alcotest.(check (list bool)) "h2 verdicts" expected (Verify_batch.await h2);
  Alcotest.(check (list bool)) "h1 verdicts" expected (Verify_batch.await h1);
  Alcotest.(check (list bool)) "await idempotent" expected
    (Verify_batch.await h1);
  let s = Verify_batch.stats ctx in
  Alcotest.(check int) "batches" 2 s.Verify_batch.batches;
  Alcotest.(check int) "jobs submitted" 18 s.Verify_batch.jobs_submitted;
  Alcotest.(check bool) "occupancy in (0,1]" true
    (s.Verify_batch.occupancy > 0.0 && s.Verify_batch.occupancy <= 1.0);
  Alcotest.(check int) "histogram counts batches" 2
    (Array.fold_left ( + ) 0 s.Verify_batch.hist);
  Verify_batch.reset_stats ctx;
  Alcotest.(check int) "stats reset" 0 (Verify_batch.stats ctx).Verify_batch.batches;
  Verify_batch.shutdown ctx

(* The global context behind the receive paths: resizing it must leave
   experiment bytes untouched, because the golden experiments charge no
   simulated verification time and verdicts are jobs-invariant. *)
let test_fig4_bytes_jobs_invariant () =
  let render_all reports =
    String.concat "" (List.map Bp_harness.Report.render reports)
  in
  Verify_batch.set_default_jobs 1;
  let at_one = render_all (Bp_harness.Exp_local.fig4 ~scale:0.1 ()) in
  Fun.protect
    ~finally:(fun () -> Verify_batch.set_default_jobs 1)
    (fun () ->
      Verify_batch.set_default_jobs 4;
      let at_four = render_all (Bp_harness.Exp_local.fig4 ~scale:0.1 ()) in
      Alcotest.(check string) "fig4 bytes identical at verify jobs 1 vs 4"
        at_one at_four)

let suite =
  [
    ( "verify_batch",
      [
        QCheck_alcotest.to_alcotest differential_test;
        Alcotest.test_case "hash-based scheme batches" `Quick
          test_hash_based_batch;
        Alcotest.test_case "overlapped submits + stats" `Quick
          test_submit_overlap_and_stats;
        Alcotest.test_case "fig4 bytes invariant to verify jobs" `Quick
          test_fig4_bytes_jobs_invariant;
      ] );
  ]
