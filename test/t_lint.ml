(* The bplint static-analysis pass (tools/bplint) — fixture modules under
   tools/bplint/fixtures exercise each rule, and a final test scans the
   real tree and requires zero findings, so reintroducing a hazard
   (polymorphic compare on protocol state, a wall-clock read, a swallowed
   exception on a verification path, a pool job touching the verify
   cache, ...) fails `dune runtest` even before `dune build @lint` runs. *)

(* The test binary runs in [_build/default/test]; the .cmt artifacts live
   one level up, in the build context root. *)
let root () =
  match Sys.getenv_opt "BPLINT_ROOT" with
  | Some r -> r
  | None ->
      (* `dune runtest` runs tests in _build/default/test; `dune exec`
         runs them from the project root. Probe for the build context
         that holds the fixture artifacts. *)
      let cwd = Sys.getcwd () in
      let candidates =
        [ Filename.dirname cwd; Filename.concat cwd "_build/default"; cwd ]
      in
      let marker = "tools/bplint/fixtures/.bplint_fixtures.objs" in
      let found =
        List.find_opt
          (fun c -> Sys.file_exists (Filename.concat c marker))
          candidates
      in
      (match found with Some c -> c | None -> Filename.dirname cwd)

(* Linking [bplint_fixtures] into this binary is what guarantees dune has
   produced the fixture .cmt files before the test runs. *)
let fixture name =
  Filename.concat (root ())
    (Filename.concat "tools/bplint/fixtures/.bplint_fixtures.objs/byte"
       ("bplint_fixtures__" ^ name ^ ".cmt"))

let count rule diags =
  List.length (List.filter (fun (d : Lint.diagnostic) -> String.equal d.Lint.rule rule) diags)

let show diags = String.concat "\n" (List.map Lint.to_string diags)

let check_count ~msg rule expected diags =
  Alcotest.(check int) (Printf.sprintf "%s [%s]\n%s" msg rule (show diags)) expected
    (count rule diags)

let message_mem needle diags =
  List.exists
    (fun (d : Lint.diagnostic) ->
      let m = d.Lint.message and nl = String.length needle in
      let ml = String.length m in
      let rec at i = i + nl <= ml && (String.equal (String.sub m i nl) needle || at (i + 1)) in
      at 0)
    diags

let test_r1_polycmp () =
  let diags = Lint.lint_cmt ~rules:[ "R1-polycmp" ] (fixture "Fx_r1") in
  check_count ~msg:"poly compare at record type" "R1-polycmp" 4 diags;
  (* The two primitive uses (int =, int sort) must not be flagged. *)
  Alcotest.(check int) "total findings" 4 (List.length diags)

let test_r2_nondet () =
  let diags = Lint.lint_cmt ~rules:[ "R2-nondet" ] (fixture "Fx_r2") in
  check_count ~msg:"self_init + Sys.time + ~random:true" "R2-nondet" 3 diags

let test_r2_hiter () =
  let diags = Lint.lint_cmt ~rules:[ "R2-hiter" ] (fixture "Fx_r2") in
  (* The fold is flagged; the iter carries [@bplint.allow "R2-hiter"] and
     must be suppressed. *)
  check_count ~msg:"order-dependent fold" "R2-hiter" 1 diags

let test_r2_domain () =
  let diags = Lint.lint_cmt ~rules:[ "R2-domain" ] (fixture "Fx_r2") in
  (* Domain.spawn, Atomic.make and Mutex.create are flagged; the
     Condition.create carries [@bplint.allow "R2-domain"]. *)
  check_count ~msg:"Domain.spawn + Atomic.make + Mutex.create" "R2-domain" 3
    diags

let test_r3 () =
  let diags = Lint.lint_cmt ~rules:[ "R3-partial"; "R3-catchall" ] (fixture "Fx_r3") in
  check_count ~msg:"Option.get + List.hd" "R3-partial" 2 diags;
  (* The [with Failure _ ->] handler must not be flagged. *)
  check_count ~msg:"catch-all try" "R3-catchall" 1 diags

let test_r4 () =
  let diags = Lint.lint_cmt ~rules:[ "R4-print"; "R4-mli" ] (fixture "Fx_r4") in
  check_count ~msg:"print_endline + Printf.printf" "R4-print" 2 diags;
  check_count ~msg:"module has no .mli" "R4-mli" 1 diags

let test_r5 () =
  let diags = Lint.lint_cmt ~rules:[ "R5-rawverify" ] (fixture "Fx_r5") in
  (* The bare Signer.verify is flagged; Verify_cache.verify and
     verify_uncached are sanctioned; the allow-attributed site is
     suppressed. *)
  check_count ~msg:"bare Signer.verify" "R5-rawverify" 1 diags;
  Alcotest.(check int) "total findings" 1 (List.length diags)

(* R6-domainescape: each bad_* pattern in the fixture yields exactly one
   finding; the good_* twins and the allow-attributed site yield none. *)
let test_r6_domainescape () =
  let diags = Lint.lint_cmt ~rules:[ "R6-domainescape" ] (fixture "Fx_r6") in
  check_count
    ~msg:
      "module-ref read + field write + hashtbl read + post-submit write + \
       thunk accumulation"
    "R6-domainescape" 5 diags;
  Alcotest.(check bool) "post-submit write is called out" true
    (message_mem "after the submit call" diags);
  Alcotest.(check bool) "hashtable capture is called out" true
    (message_mem "hashtable" diags)

(* R7-parpure: direct violations, a cross-module hop, and a two-hop
   chain that only the call graph can see; the pure twin, the
   probe-before-fan-out twin and the [@@bplint.parallel_pure]-annotated
   path stay clean. *)
let test_r7_parpure () =
  let graph = Lint.build_graph [ fixture "Fx_r7"; fixture "Fx_r7_helper" ] in
  let diags = Lint.lint_cmt ~graph ~rules:[ "R7-parpure" ] (fixture "Fx_r7") in
  check_count
    ~msg:"cache record + keystore + two hops + cross module" "R7-parpure" 4
    diags;
  Alcotest.(check bool) "multi-hop chain is spelled out" true
    (message_mem "call path:" diags);
  Alcotest.(check bool) "Random is the two-hop target" true
    (message_mem "Stdlib.Random.int" diags);
  (* Without the graph the interprocedural hops are invisible, but the
     direct violations (cache record, keystore) are still caught. *)
  let direct = Lint.lint_cmt ~rules:[ "R7-parpure" ] (fixture "Fx_r7") in
  check_count ~msg:"graph-free: direct violations only" "R7-parpure" 2 direct

let test_clean_fixture () =
  let diags = Lint.lint_cmt ~rules:Lint.all_rules (fixture "Fx_clean") in
  Alcotest.(check int) (Printf.sprintf "clean module\n%s" (show diags)) 0
    (List.length diags)

let test_allowlist () =
  (* A file-level allowlist entry excuses a whole module; the rule field
     matches by prefix so "R1" covers "R1-polycmp". *)
  let allowlist = Lint.allowlist_of_lines [ "# comment"; ""; "R1 fx_r1" ] in
  let diags = Lint.lint_cmt ~allowlist ~rules:[ "R1-polycmp" ] (fixture "Fx_r1") in
  Alcotest.(check int) "allowlisted module" 0 (List.length diags);
  (* ...but an entry for a different path does not. *)
  let other = Lint.allowlist_of_lines [ "R1 some/other/file.ml" ] in
  let diags = Lint.lint_cmt ~allowlist:other ~rules:[ "R1-polycmp" ] (fixture "Fx_r1") in
  Alcotest.(check int) "non-matching entry" 4 (List.length diags)

(* Satellite regression: allowlist patterns and the R2-domain exemption
   are anchored on whole path segments — a near-miss filename sharing a
   prefix must not inherit either. *)
let test_segment_matching () =
  Alcotest.(check bool) "exact file matches" true
    (Lint_diag.path_matches ~pattern:"lib/crypto/verify_batch"
       "lib/crypto/verify_batch.ml");
  Alcotest.(check bool) "prefix near-miss does not match" false
    (Lint_diag.path_matches ~pattern:"lib/crypto/verify_batch"
       "lib/crypto/verify_batchx.ml");
  Alcotest.(check bool) "substring inside a segment does not match" false
    (Lint_diag.path_matches ~pattern:"crypto" "lib/mycrypto/foo.ml");
  Alcotest.(check bool) "segment run matches mid-path" true
    (Lint_diag.path_matches ~pattern:"crypto/verify_batch"
       "lib/crypto/verify_batch.ml");
  let has rule source = List.mem rule (Lint.policy ~source) in
  Alcotest.(check bool) "verify_batch.ml is R2-domain exempt" false
    (has "R2-domain" "lib/crypto/verify_batch.ml");
  Alcotest.(check bool) "verify_batchx.ml is NOT exempt" true
    (has "R2-domain" "lib/crypto/verify_batchx.ml")

let test_policy () =
  (* Consensus code gets the full rule set; generic lib code a subset;
     executables and tools a determinism/totality baseline; fixtures
     nothing. *)
  let has rule source = List.mem rule (Lint.policy ~source) in
  Alcotest.(check bool) "pbft gets R1" true (has "R1-polycmp" "lib/pbft/replica.ml");
  Alcotest.(check bool) "harness exempt from R1" false
    (has "R1-polycmp" "lib/harness/report.ml");
  Alcotest.(check bool) "all lib gets R2-nondet" true
    (has "R2-nondet" "lib/harness/report.ml");
  Alcotest.(check bool) "all lib gets R4-print" true
    (has "R4-print" "lib/util/tablefmt.ml");
  Alcotest.(check bool) "sim gets R2-domain" true
    (has "R2-domain" "lib/sim/engine.ml");
  Alcotest.(check bool) "pbft gets R2-domain" true
    (has "R2-domain" "lib/pbft/replica.ml");
  Alcotest.(check bool) "parallel exempt from R2-domain" false
    (has "R2-domain" "lib/parallel/pool.ml");
  Alcotest.(check bool) "verify_batch exempt from R2-domain" false
    (has "R2-domain" "lib/crypto/verify_batch.ml");
  Alcotest.(check bool) "rest of crypto still gets R2-domain" true
    (has "R2-domain" "lib/crypto/signer.ml");
  Alcotest.(check bool) "pbft gets R5-rawverify" true
    (has "R5-rawverify" "lib/pbft/replica.ml");
  Alcotest.(check bool) "core gets R5-rawverify" true
    (has "R5-rawverify" "lib/core/unit_node.ml");
  Alcotest.(check bool) "crypto exempt from R5-rawverify" false
    (has "R5-rawverify" "lib/crypto/verify_cache.ml");
  (* The parallel-purity rules run across the whole scanned tree. *)
  Alcotest.(check bool) "lib gets R6" true
    (has "R6-domainescape" "lib/crypto/verify_batch.ml");
  Alcotest.(check bool) "lib gets R7" true
    (has "R7-parpure" "lib/core/unit_node.ml");
  Alcotest.(check bool) "bench gets R7" true (has "R7-parpure" "bench/main.ml");
  (* The former coverage gap: bench/bin/tools now carry a baseline. *)
  Alcotest.(check bool) "bench gets R2-nondet" true
    (has "R2-nondet" "bench/main.ml");
  Alcotest.(check bool) "bin gets R3-partial" true
    (has "R3-partial" "bin/blockplane_cli.ml");
  Alcotest.(check bool) "bin has no .mli requirement" false
    (has "R4-mli" "bin/blockplane_cli.ml");
  Alcotest.(check bool) "tools modules need an .mli" true
    (has "R4-mli" "tools/bplint/lint.ml");
  Alcotest.(check bool) "tools main.ml exempt from R4-mli" false
    (has "R4-mli" "tools/bplint/main.ml");
  Alcotest.(check int) "lint fixtures get nothing" 0
    (List.length (Lint.policy ~source:"tools/bplint/fixtures/fx_r6.ml"))

(* The policy exemption, proven end-to-end on the fixture: the same .cmt
   full of multicore primitives is clean when linted under
   lib/crypto/verify_batch's rule set but flags under any other
   lib/crypto module's. *)
let test_r2_domain_exemption_applies () =
  let lint_as source =
    Lint.lint_cmt ~rules:(Lint.policy ~source) (fixture "Fx_r2")
  in
  Alcotest.(check int) "verify_batch source: no R2-domain findings" 0
    (count "R2-domain" (lint_as "lib/crypto/verify_batch.ml"));
  Alcotest.(check int) "other crypto source: R2-domain findings remain" 3
    (count "R2-domain" (lint_as "lib/crypto/signer.ml"));
  Alcotest.(check int) "parallel source: no R2-domain findings" 0
    (count "R2-domain" (lint_as "lib/parallel/pool.ml"))

(* The stable machine-readable output consumed by CI tooling. *)
let test_json_format () =
  let d =
    {
      Lint.rule = "R7-parpure";
      file = "a.ml";
      line = 2;
      col = 4;
      message = "needs \"quoting\"";
    }
  in
  Alcotest.(check string) "stable schema"
    "[{\"rule\":\"R7-parpure\",\"file\":\"a.ml\",\"line\":2,\"col\":4,\"message\":\"needs \\\"quoting\\\"\"}]"
    (Lint_diag.findings_json [ d ])

(* Baseline subtraction keys on (rule, file, message) and ignores
   line/col, so recorded debt survives unrelated code motion while new
   findings still fail. *)
let test_baseline () =
  let d rule file message = { Lint.rule; file; line = 3; col = 1; message } in
  let diags =
    [ d "R2-nondet" "bench/main.ml" "m1"; d "R3-partial" "bin/x.ml" "m2" ]
  in
  let baseline =
    Lint_diag.baseline_of_lines [ "# comment"; "R2-nondet\tbench/main.ml\tm1" ]
  in
  match Lint_diag.filter_baseline baseline diags with
  | [ keep ] ->
      Alcotest.(check string) "only the new finding survives" "R3-partial"
        keep.Lint.rule
  | other ->
      Alcotest.failf "expected exactly one surviving finding, got %d:\n%s"
        (List.length other) (show other)

(* The teeth of the suite: the real tree must be clean. Any regression —
   a reintroduced Option.get, a new module without an .mli, a pool job
   reaching the verify cache — lands here as a test failure with
   file:line diagnostics. *)
let test_real_tree_clean () =
  let allowlist =
    Lint.load_allowlist
      (Filename.concat (root ()) (Filename.concat "tools/bplint" "bplint.allow"))
  in
  let diags, stats = Lint.scan ~allowlist ~root:(root ()) () in
  Alcotest.(check int)
    (Printf.sprintf "tree has findings:\n%s" (show diags))
    0 (List.length diags);
  (* The scan really did cover the tree and build a whole-program graph. *)
  Alcotest.(check bool) "scanned a real number of files" true
    (stats.Lint.files_scanned > 20);
  Alcotest.(check bool) "call graph has definitions" true
    (stats.Lint.graph_defs > 200);
  Alcotest.(check bool) "call graph has edges" true
    (stats.Lint.graph_edges > stats.Lint.graph_defs)

let suite =
  [
    ( "lint",
      [
        Alcotest.test_case "R1 polymorphic compare" `Quick test_r1_polycmp;
        Alcotest.test_case "R2 nondeterminism" `Quick test_r2_nondet;
        Alcotest.test_case "R2 hashtbl iteration + allow attribute" `Quick test_r2_hiter;
        Alcotest.test_case "R2 multicore primitives confined" `Quick test_r2_domain;
        Alcotest.test_case "R3 partial functions and catch-alls" `Quick test_r3;
        Alcotest.test_case "R4 printing and missing mli" `Quick test_r4;
        Alcotest.test_case "R5 raw verify confined to crypto" `Quick test_r5;
        Alcotest.test_case "R6 domain escape on pool jobs" `Quick
          test_r6_domainescape;
        Alcotest.test_case "R7 parallel purity via call graph" `Quick
          test_r7_parpure;
        Alcotest.test_case "clean fixture" `Quick test_clean_fixture;
        Alcotest.test_case "allowlist suppression" `Quick test_allowlist;
        Alcotest.test_case "segment-anchored path matching" `Quick
          test_segment_matching;
        Alcotest.test_case "per-directory policy" `Quick test_policy;
        Alcotest.test_case "R2-domain exemption is path-scoped" `Quick
          test_r2_domain_exemption_applies;
        Alcotest.test_case "json diagnostic schema" `Quick test_json_format;
        Alcotest.test_case "baseline subtraction" `Quick test_baseline;
        Alcotest.test_case "real tree is clean" `Quick test_real_tree_clean;
      ] );
  ]
