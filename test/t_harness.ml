open Bp_harness

(* Parse the leading float out of a report cell like "61.0 (61)". *)
let cell_float s =
  match String.split_on_char ' ' (String.trim s) with
  | first :: _ -> (
      match float_of_string_opt first with
      | Some f -> f
      | None -> Alcotest.failf "cell %S is not numeric" s)
  | [] -> Alcotest.failf "empty cell"

let row_label r = List.nth r 0
let col r i = cell_float (List.nth r i)

let find_report id reports =
  match List.find_opt (fun r -> String.equal r.Report.id id) reports with
  | Some r -> r
  | None -> Alcotest.failf "report %s missing" id

let test_registry_complete () =
  let ids = List.map (fun e -> e.Experiments.id) Experiments.all in
  Alcotest.(check (list string)) "all paper artifacts present"
    [
      "table1"; "fig4"; "table2"; "fig5"; "fig6"; "fig7"; "fig8";
      "ablation-reads"; "ablation-batch"; "ablation-sig"; "ablation-loss";
      "ablation-load"; "ablation-saturation"; "ablation-pipeline";
      "ablation-verify"; "ablation-shard";
      "ablation-clustersend"; "locality"; "costs";
    ]
    ids;
  Alcotest.(check bool) "find works" true (Experiments.find "fig7" <> None);
  Alcotest.(check bool) "unknown id" true (Experiments.find "fig99" = None)

let test_table1_matches_paper () =
  let r = find_report "table1" (Exp_comm.table1 ()) in
  (* Spot-check the published matrix. *)
  let row name = List.find (fun row -> row_label row = name) r.Report.rows in
  Alcotest.(check (float 0.01)) "C-O" 19.0 (col (row "C") 2);
  Alcotest.(check (float 0.01)) "C-I" 130.0 (col (row "C") 4);
  Alcotest.(check (float 0.01)) "V-I" 70.0 (col (row "V") 4);
  Alcotest.(check (float 0.01)) "diagonal" 0.0 (col (row "O") 2)

let test_fig4_shapes () =
  let reports = Exp_local.fig4 ~scale:0.08 () in
  let lat = find_report "fig4a" reports and thr = find_report "fig4b" reports in
  let lat_of label = col (List.find (fun r -> row_label r = label) lat.Report.rows) 1 in
  let thr_of label = col (List.find (fun r -> row_label r = label) thr.Report.rows) 1 in
  (* Latency: ~1 ms at small sizes, growing at MB sizes. *)
  Alcotest.(check bool) "1KB ~1ms" true (lat_of "1 KB" < 2.5);
  Alcotest.(check bool) "2000KB well above 1KB" true
    (lat_of "2000 KB" > 4.0 *. lat_of "1 KB");
  (* Throughput: steep growth to 100 KB, then plateau-ish. *)
  Alcotest.(check bool) "100KB >> 1KB" true (thr_of "100 KB" > 20.0 *. thr_of "1 KB");
  Alcotest.(check bool) "plateau" true
    (thr_of "2000 KB" > 0.5 *. thr_of "1000 KB")

let test_table2_shape () =
  let r = find_report "table2" (Exp_local.table2 ~scale:0.2 ()) in
  let lats = List.map (fun row -> col row 3) r.Report.rows in
  let rec increasing = function
    | a :: b :: rest -> a <= b +. 0.01 && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "latency grows with n" true (increasing lats);
  let thrs = List.map (fun row -> col row 1) r.Report.rows in
  Alcotest.(check bool) "throughput falls with n" true
    (increasing (List.rev thrs))

let test_fig5_shape () =
  let r = find_report "fig5" (Exp_geo.fig5 ~scale:0.2 ()) in
  let v label = col (List.find (fun row -> row_label row = label) r.Report.rows) 1 in
  (* fg monotonicity at California, and the paper's crossing points. *)
  Alcotest.(check bool) "C(1)<C(2)<C(3)" true (v "C(1)" < v "C(2)" && v "C(2)" < v "C(3)");
  Alcotest.(check bool) "C(1) ~20-30" true (v "C(1)" >= 19.0 && v "C(1)" <= 30.0);
  Alcotest.(check bool) "V(3) ~80 best at fg=3" true
    (v "V(3)" < v "C(3)" && v "V(3)" < v "O(3)" && v "V(3)" < v "I(3)");
  Alcotest.(check bool) "I worst at fg=1" true
    (v "I(1)" > v "C(1)" && v "I(1)" > v "O(1)" && v "I(1)" > v "V(1)")

let test_fig6_shape () =
  let r = find_report "fig6" (Exp_comm.fig6 ~scale:0.2 ()) in
  let v label = col (List.find (fun row -> row_label row = label) r.Report.rows) 1 in
  Alcotest.(check bool) "CO smallest" true (v "CO" < v "CV" && v "CO" < v "VI");
  Alcotest.(check bool) "CI and OI largest" true
    (v "CI" > 120.0 && v "OI" > 120.0);
  Alcotest.(check bool) "CO close to paper 23.4" true (v "CO" >= 19.5 && v "CO" <= 27.0)

let test_fig7_ordering () =
  let r = find_report "fig7" (Exp_consensus.fig7 ~scale:0.2 ()) in
  List.iter
    (fun row ->
      let paxos = col row 1 and bp = col row 2 and pbft = col row 3 and hier = col row 4 in
      let leader = row_label row in
      Alcotest.(check bool) (leader ^ ": paxos <= hier") true (paxos <= hier +. 1.0);
      Alcotest.(check bool) (leader ^ ": hier <= bp-paxos") true (hier <= bp +. 1.0);
      Alcotest.(check bool) (leader ^ ": bp-paxos < pbft") true (bp < pbft);
      Alcotest.(check bool)
        (Printf.sprintf "%s: bp overhead %.1f vs %.1f modest" leader bp paxos)
        true
        (bp -. paxos < 25.0))
    r.Report.rows

let test_fig8_shapes () =
  let reports = Exp_geo.fig8 ~scale:0.25 () in
  let a = find_report "fig8a" reports and b = find_report "fig8b" reports in
  let first_region r = col (List.hd r.Report.rows) 1 in
  let last_region r = col (List.nth r.Report.rows (List.length r.Report.rows - 1)) 1 in
  Alcotest.(check bool) "8a: before ~20-40" true
    (first_region a >= 19.0 && first_region a <= 40.0);
  Alcotest.(check bool) "8a: after is higher (Virginia proofs)" true
    (last_region a >= 55.0 && last_region a <= 90.0);
  Alcotest.(check bool) "8b: before ~20-40" true
    (first_region b >= 19.0 && first_region b <= 40.0);
  Alcotest.(check bool) "8b: after ~70-85 at Virginia" true
    (last_region b >= 60.0 && last_region b <= 95.0);
  (* The takeover spike: some batch in 8b paid the detection timeout. *)
  let spike =
    List.exists (fun row -> col row 1 > 150.0) b.Report.rows
  in
  Alcotest.(check bool) "8b: takeover spike present" true spike

let test_locality_shape () =
  let r = find_report "locality" (Exp_locality.locality ~scale:0.3 ()) in
  let share label =
    let row = List.find (fun row -> row_label row = label) r.Report.rows in
    cell_float (String.map (fun c -> if c = '%' then ' ' else c) (List.nth row 3))
  in
  Alcotest.(check bool) "blockplane mostly local" true (share "blockplane-paxos" < 50.0);
  Alcotest.(check bool) "flat PBFT mostly wide-area" true (share "flat PBFT" > 80.0)

let test_costs_sanity () =
  let r = find_report "costs" (Exp_costs.costs ~scale:0.3 ()) in
  List.iter
    (fun row ->
      let msgs_commit = col row 3 and msgs_send = col row 5 in
      Alcotest.(check bool) "commit needs a protocol's worth of messages" true
        (msgs_commit > 10.0);
      Alcotest.(check bool) "send costs at least a commit" true
        (msgs_send >= msgs_commit *. 0.8))
    r.Report.rows;
  (* fg=1 must cost more than fg=0 at the same fi. *)
  let v label i = col (List.find (fun row -> row_label row = label) r.Report.rows) i in
  Alcotest.(check bool) "fg=1 sends cost more" true
    (v "fi=1 fg=1" 5 > v "fi=1 fg=0" 5)

let test_workload_open_loop () =
  (* The generator delivers exactly [count] requests at roughly the
     offered rate, and measures per-request latency. *)
  let engine = Bp_sim.Engine.create ~seed:95L () in
  let rng = Bp_util.Rng.create 96L in
  let inflight = ref 0 and peak = ref 0 in
  let r =
    Workload.open_loop engine ~rng ~rate_per_sec:1000.0 ~count:200
      ~submit:(fun _ ~on_done ->
        incr inflight;
        peak := Stdlib.max !peak !inflight;
        (* Simulated 5 ms service time. *)
        ignore
          (Bp_sim.Engine.schedule engine ~after:(Bp_sim.Time.of_ms 5.0) (fun () ->
               decr inflight;
               on_done ())))
  in
  Alcotest.(check int) "all completed" 200 (Bp_util.Stats.count r.Workload.latencies);
  Alcotest.(check (float 0.5)) "latency = service time" 5.0
    (Bp_util.Stats.mean r.Workload.latencies);
  (* 1000/s with 5 ms service => several overlapping requests. *)
  Alcotest.(check bool) "open loop overlaps" true (!peak >= 2);
  Alcotest.(check bool) "achieved near offered" true
    (r.Workload.achieved_per_sec > 700.0 && r.Workload.achieved_per_sec < 1400.0)

let test_runner_helpers () =
  Alcotest.(check int) "scaled floor" 1 (Runner.scaled 0.001 100);
  Alcotest.(check int) "scaled exact" 50 (Runner.scaled 0.5 100);
  Alcotest.(check int) "payload size" 1234 (String.length (Runner.payload ~size:1234 7));
  Alcotest.(check bool) "payloads distinct" true
    (Runner.payload ~size:64 1 <> Runner.payload ~size:64 2)

(* The whole stack is a deterministic simulation: rerunning an experiment
   at the same scale must reproduce every measured number bit for bit.
   This is the regression net for the hot-path optimizations — a perf
   change that perturbs virtual time shows up here as a diff, not as a
   silently shifted result. *)
let test_experiments_deterministic () =
  let render_all reports =
    String.concat "\n" (List.map Report.render reports)
  in
  let a = render_all (Exp_consensus.fig7 ~scale:0.2 ()) in
  let b = render_all (Exp_consensus.fig7 ~scale:0.2 ()) in
  Alcotest.(check string) "fig7 twice, identical" a b;
  let c = render_all (Exp_comm.fig6 ~scale:0.2 ()) in
  let d = render_all (Exp_comm.fig6 ~scale:0.2 ()) in
  Alcotest.(check string) "fig6 twice, identical" c d;
  (* fig7 exercises the paxos side and fig4 the PBFT local-commitment
     path, so both protocols' replicas are covered: any order-dependent
     container iteration reintroduced there shows up as a diff here. *)
  let e = render_all (Exp_local.fig4 ~scale:0.2 ()) in
  let f = render_all (Exp_local.fig4 ~scale:0.2 ()) in
  Alcotest.(check string) "fig4 twice, identical" e f

(* The verification caches and content-addressed signing are pure
   accelerators: disabling them (--no-cache) must reproduce every
   experiment table byte for byte. Signature values differ between the
   modes, but they are fixed-width and never rendered, so nothing
   measurable moves. *)
let test_experiments_identical_without_cache () =
  let render_all reports =
    String.concat "\n" (List.map Report.render reports)
  in
  let uncached f =
    Bp_crypto.Verify_cache.set_enabled false;
    Fun.protect
      ~finally:(fun () -> Bp_crypto.Verify_cache.set_enabled true)
      f
  in
  let on4 = render_all (Exp_local.fig4 ~scale:0.08 ()) in
  let off4 = uncached (fun () -> render_all (Exp_local.fig4 ~scale:0.08 ())) in
  Alcotest.(check string) "fig4 identical with caches off" on4 off4;
  let on5 = render_all (Exp_geo.fig5 ~scale:0.2 ()) in
  let off5 = uncached (fun () -> render_all (Exp_geo.fig5 ~scale:0.2 ())) in
  Alcotest.(check string) "fig5 identical with caches off" on5 off5

(* The harness defaults to pipeline depth 1, and at depth 1 the pipelined
   replica is the seed's stop-and-wait one: fig4 at scale 0.08 must
   render byte-for-byte what the pre-pipeline tree rendered. Any change
   to these bytes means the "depth 1 = baseline" contract broke — treat
   a diff here as a bug, not as a table to re-pin. *)
let fig4_depth1_golden =
  "== fig4a: Local commitment latency vs batch size ==\n\
   \   (Fig. 4(a), SVIII-A: Virginia, fi=1, 4 nodes)\n\
   +------------+-----------------------+--------------------+\n\
   | batch size | latency ms (measured) | latency ms (paper) |\n\
   +============+=======================+====================+\n\
   | 1 KB       | 1.3                   | <1                 |\n\
   | 10 KB      | 1.3                   | <1                 |\n\
   | 100 KB     | 1.6                   | ~1.2               |\n\
   | 500 KB     | 3.9                   | -                  |\n\
   | 1000 KB    | 7.5                   | 4.5                |\n\
   | 2000 KB    | 15.5                  | 8.2                |\n\
   +------------+-----------------------+--------------------+\n\
   \   note: expected shape: ~1 ms up to 100 KB, then growing with NIC \
   serialization\n\
   == fig4b: Local commitment throughput vs batch size ==\n\
   \   (Fig. 4(b), SVIII-A)\n\
   +------------+-----------------+--------------+\n\
   | batch size | MB/s (measured) | MB/s (paper) |\n\
   +============+=================+==============+\n\
   | 1 KB       | 0.8             | ~1.4         |\n\
   | 10 KB      | 7.8             | -            |\n\
   | 100 KB     | 61.5            | 83           |\n\
   | 500 KB     | 129.0           | -            |\n\
   | 1000 KB    | 132.8           | ~215         |\n\
   | 2000 KB    | 129.0           | ~240         |\n\
   +------------+-----------------+--------------+\n\
   \   note: expected shape: steep growth to 100 KB (~60x from 1 KB), \
   +~160% to 1 MB, ~+10% to 2 MB\n"

let test_fig4_depth1_matches_seed () =
  Runner.set_default_pipeline 1;
  let rendered =
    String.concat "" (List.map Report.render (Exp_local.fig4 ~scale:0.08 ()))
  in
  Alcotest.(check string) "depth-1 fig4 bytes = pre-pipeline seed"
    fig4_depth1_golden rendered

(* The ablation-load table was recorded while open_loop pre-scheduled
   every arrival eagerly; the streaming scheduler draws the same gap
   sequence from the same rng split, so these bytes must not move. A
   diff here means the streaming conversion perturbed arrival times or
   draw order — a bug, not a table to re-pin. *)
let ablation_load_golden =
  "== ablation-load: Open-loop offered load vs local-commit latency ==\n\
   \   (extension: the queueing knee of group commit (SVI-C), Poisson \
   arrivals, 1 KB ops)\n\
   +---------+----------+---------+--------+\n\
   | offered | achieved | mean ms | p99 ms |\n\
   +=========+==========+=========+========+\n\
   | 1000/s  | 1046/s   | 1.3     | 1.3    |\n\
   | 5000/s  | 4946/s   | 1.3     | 1.3    |\n\
   | 20000/s | 17149/s  | 1.4     | 1.7    |\n\
   | 40000/s | 25708/s  | 1.4     | 1.7    |\n\
   | 80000/s | 34571/s  | 1.7     | 2.0    |\n\
   +---------+----------+---------+--------+\n\
   \   note: group commit absorbs load almost flat until the unit \
   saturates, then queueing delay takes over\n"

let test_ablation_load_matches_eager_seed () =
  let rendered =
    String.concat ""
      (List.map Report.render (Exp_ablation.load ~scale:0.25 ()))
  in
  Alcotest.(check string) "streaming open_loop bytes = eager seed"
    ablation_load_golden rendered

let test_saturation_shape () =
  let reports = Exp_saturation.saturation ~scale:0.1 () in
  let r = find_report "ablation-saturation" reports in
  (* 5 series (d1 d2 d4 d8 d8mf16) x 5 rates. *)
  Alcotest.(check int) "25 rows" 25 (List.length r.Report.rows);
  let metric name =
    match List.assoc_opt name r.Report.metrics with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  (* The generator never holds more than one pending arrival per
     process — the O(1)-heap contract of the streaming scheduler. *)
  Alcotest.(check (float 0.0)) "O(1) arrival heap occupancy" 1.0
    (metric "peak_arrivals_pending");
  List.iter
    (fun series ->
      Alcotest.(check bool)
        (series ^ " knee positive")
        true
        (metric (series ^ "_saturation_knee_rps") > 0.0))
    [ "d1"; "d2"; "d4"; "d8"; "d8mf16" ];
  (* Deeper pipelines must not lose to shallow ones at the top rate, and
     the min-fill/hold cut policy must repair depth 8's degenerate tiny
     batches (the regression this experiment exists to catch). *)
  let top s = metric (s ^ "_top_achieved_rps") in
  Alcotest.(check bool) "d8 >= d2 at top rate" true
    (top "d8" >= 0.95 *. top "d2");
  Alcotest.(check bool) "d8 >= d1 at top rate" true (top "d8" >= top "d1");
  Alcotest.(check bool) "min-fill policy repairs depth 8" true
    (top "d8mf16" >= 0.95 *. top "d8");
  (* Default policy at depth 8 degrades into small batches under
     open-loop load; the adaptive policy holds fill up. *)
  Alcotest.(check bool) "default d8 fill degenerates vs d1" true
    (metric "d8_top_mean_fill" < metric "d1_top_mean_fill")

(* --load-rate collapses the sweep to one probed rate per series;
   --load-trace / --skew reshape the arrival process. All three are
   write-once knobs, restored here so later tests see the defaults. *)
let test_saturation_load_knobs () =
  let restore () =
    Runner.set_default_load_rate None;
    Runner.set_default_load_shape `Poisson;
    Runner.set_default_skew 0.99
  in
  Fun.protect ~finally:restore (fun () ->
      Runner.set_default_load_rate (Some 20_000.0);
      Runner.set_default_load_shape `Bursty;
      Runner.set_default_skew 0.0;
      let r =
        find_report "ablation-saturation" (Exp_saturation.saturation ~scale:0.05 ())
      in
      Alcotest.(check int) "one rate x 5 series" 5 (List.length r.Report.rows);
      List.iter
        (fun row ->
          Alcotest.(check string) "probed rate" "20000/s" (List.nth row 1))
        r.Report.rows)

let test_pipeline_ablation_shape () =
  let r = find_report "pipeline" (Exp_local.pipeline ~scale:0.3 ()) in
  Alcotest.(check (list string)) "one row per depth" [ "1"; "2"; "4"; "8" ]
    (List.map row_label r.Report.rows);
  let d1 = List.hd r.Report.rows in
  Alcotest.(check string) "depth 1 is its own baseline" "1.00x" (List.nth d1 2);
  let metric name =
    match List.assoc_opt name r.Report.metrics with
    | Some v -> v
    | None -> Alcotest.failf "metric %s missing" name
  in
  (* The acceptance bar: the default depth beats stop-and-wait by >=1.3x
     in closed-loop throughput, with the window actually occupied. *)
  Alcotest.(check bool)
    (Printf.sprintf "depth-8 speedup %.2fx >= 1.3" (metric "d8_speedup_vs_d1"))
    true
    (metric "d8_speedup_vs_d1" >= 1.3);
  Alcotest.(check bool) "depth-8 occupancy > 2" true
    (metric "d8_pipeline_occupancy" > 2.0);
  Alcotest.(check bool) "depth-1 occupancy = 1" true
    (abs_float (metric "d1_pipeline_occupancy" -. 1.0) < 0.01);
  Alcotest.(check bool) "latency percentiles recorded" true
    (metric "d8_p99_ms" >= metric "d8_p50_ms")

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    ( "harness",
      [
        tc "registry complete" test_registry_complete;
        tc "table1 matches paper" test_table1_matches_paper;
        tc "fig4 shapes" test_fig4_shapes;
        tc "fig4 depth-1 bytes = seed" test_fig4_depth1_matches_seed;
        tc "pipeline ablation shape" test_pipeline_ablation_shape;
        tc "table2 shape" test_table2_shape;
        tc "fig5 shape" test_fig5_shape;
        tc "fig6 shape" test_fig6_shape;
        tc "fig7 ordering" test_fig7_ordering;
        tc "fig8 shapes" test_fig8_shapes;
        tc "locality shape" test_locality_shape;
        tc "costs sanity" test_costs_sanity;
        tc "workload open loop" test_workload_open_loop;
        tc "ablation-load bytes = eager seed" test_ablation_load_matches_eager_seed;
        tc "saturation sweep shape" test_saturation_shape;
        tc "saturation load knobs" test_saturation_load_knobs;
        tc "runner helpers" test_runner_helpers;
        tc "experiments deterministic" test_experiments_deterministic;
        tc "experiments identical without cache"
          test_experiments_identical_without_cache;
      ] );
  ]
