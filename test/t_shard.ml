(* Tests for the keyspace shard map and the cross-shard BFT two-phase
   commit: routing properties of hash/range maps, atomicity and
   determinism of cross-shard transactions on adversary-free schedules
   (qcheck), the abort downgrade when a participant shard rejects its
   prepare, the Runner default knobs (clamping, composition with the
   batch-cut policy), and the 1-shard byte-identity of the golden
   table2 under a global --shards default. *)

open Bp_sim
open Blockplane

(* --- a recording app: describe() lists every applied payload --- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

module Recorder = struct
  type state = { mutable applied : string list }

  let create () = { applied = [] }

  (* The verification routine IS a participant's 2PC vote: a poisoned op
     inside a cross-shard prepare makes this shard vote NO. *)
  let verify _ = function
    | Record.Commit p -> not (contains ~sub:"poison" p)
    | _ -> true

  let apply st = function
    | Record.Commit p -> st.applied <- p :: st.applied
    | _ -> ()

  let digest st = String.concat ";" (List.rev st.applied)
  let describe = digest
end

type world = { engine : Engine.t; dep : Deployment.t }

let make_world ?policy ?(seed = 77L) ~shards () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper () in
  let map = Shard.make ?policy ~shards () in
  let dep =
    Deployment.create ~network:net ~n_participants:shards ~fi:1
      ~app:(fun () -> App.make (module Recorder))
      ~shard_map:map ()
  in
  { engine; dep }

let applied_at w p = App.describe (Unit_node.app (Deployment.node w.dep p 0))

let run w = Engine.run ~until:(Time.of_sec 10.0) w.engine

(* --- shard map routing --- *)

let test_map_basics () =
  let h4 = Shard.make ~shards:4 () in
  Alcotest.(check int) "shards" 4 (Shard.shards h4);
  for i = 0 to 199 do
    let s = Shard.shard_of_key h4 (Printf.sprintf "key-%d" i) in
    Alcotest.(check bool) "hash shard in range" true (s >= 0 && s < 4);
    Alcotest.(check int) "hash deterministic" s
      (Shard.shard_of_key h4 (Printf.sprintf "key-%d" i))
  done;
  let one = Shard.make ~shards:1 () in
  Alcotest.(check int) "one shard owns everything" 0
    (Shard.shard_of_key one "anything");
  let r = Shard.make ~policy:(Shard.Range [| "b"; "c" |]) ~shards:3 () in
  Alcotest.(check int) "below first split" 0 (Shard.shard_of_key r "aardvark");
  Alcotest.(check int) "at a split point" 1 (Shard.shard_of_key r "b");
  Alcotest.(check int) "between splits" 1 (Shard.shard_of_key r "bzzz");
  Alcotest.(check int) "above last split" 2 (Shard.shard_of_key r "zebra");
  Alcotest.(check (list int)) "shards_of_keys sorted distinct" [ 0; 2 ]
    (Shard.shards_of_keys r [ "zzz"; "a"; "aa"; "z" ]);
  Alcotest.(check int) "coordinator = min shard" 1
    (Shard.coordinator r [ 2; 1 ]);
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero shards rejected" true
    (raises (fun () -> Shard.make ~shards:0 ()));
  Alcotest.(check bool) "wrong split count rejected" true
    (raises (fun () -> Shard.make ~policy:(Shard.Range [| "m" |]) ~shards:3 ()));
  Alcotest.(check bool) "non-ascending splits rejected" true
    (raises (fun () -> Shard.make ~policy:(Shard.Range [| "m"; "m" |]) ~shards:3 ()))

let key_for_roundtrip =
  QCheck.Test.make ~count:200 ~name:"key_for lands on its shard"
    QCheck.(triple (int_range 1 16) (int_range 0 1_000_000) bool)
    (fun (shards, salt, use_range) ->
      let policy =
        if use_range then
          Shard.Range (Array.init (shards - 1) (fun i -> Printf.sprintf "s%02d" (i + 1)))
        else Shard.Hash
      in
      let m = Shard.make ~policy ~shards () in
      List.for_all
        (fun shard -> Shard.shard_of_key m (Shard.key_for m ~shard ~salt) = shard)
        (List.init shards Fun.id))

(* --- cross-shard commit: concrete atomicity --- *)

let range4 = Shard.Range [| "b"; "c"; "d" |]

let test_cross_shard_commit () =
  let w = make_world ~policy:range4 ~shards:4 () in
  let router = Deployment.shard_router w.dep in
  let done_count = ref 0 and aborted = ref 0 in
  let submit ops =
    Shard.submit router
      ~on_aborted:(fun () -> incr aborted)
      ~on_done:(fun () -> incr done_count)
      ops
  in
  submit [ ("a1", "op-t1") ];
  submit [ ("a2", "op-t2a"); ("a3", "op-t2b") ];
  submit [ ("a4", "op-t3a"); ("b1", "op-t3b") ];
  submit [ ("b2", "op-t4a"); ("c1", "op-t4b"); ("d1", "op-t4c") ];
  run w;
  Alcotest.(check int) "all four done" 4 !done_count;
  Alcotest.(check int) "no aborts" 0 !aborted;
  let st = Shard.stats router in
  Alcotest.(check int) "single-shard submissions" 2 st.Shard.single_shard;
  Alcotest.(check int) "cross-shard submissions" 2 st.Shard.cross_shard;
  Alcotest.(check int) "cross-shard commits" 2 st.Shard.committed;
  Alcotest.(check int) "no timeouts" 0 st.Shard.timeouts;
  (* Each op landed exactly on its owning shard... *)
  let s0 = applied_at w 0 and s1 = applied_at w 1 in
  let s2 = applied_at w 2 and s3 = applied_at w 3 in
  List.iter
    (fun op -> Alcotest.(check bool) (op ^ " on shard 0") true (contains ~sub:op s0))
    [ "op-t1"; "op-t2a"; "op-t2b"; "op-t3a" ];
  List.iter
    (fun op -> Alcotest.(check bool) (op ^ " on shard 1") true (contains ~sub:op s1))
    [ "op-t3b"; "op-t4a" ];
  Alcotest.(check bool) "op-t4b on shard 2" true (contains ~sub:"op-t4b" s2);
  Alcotest.(check bool) "op-t4c on shard 3" true (contains ~sub:"op-t4c" s3);
  (* ...and nowhere else. *)
  Alcotest.(check bool) "shard 0 has no foreign ops" false
    (contains ~sub:"op-t3b" s0 || contains ~sub:"op-t4a" s0);
  Alcotest.(check bool) "shard 1 has no foreign ops" false
    (contains ~sub:"op-t1" s1 || contains ~sub:"op-t4b" s1);
  (* Single-shard multi-op transactions preserve submission order. *)
  Alcotest.(check bool) "t2 ops in order" true
    (contains ~sub:"op-t2a;op-t2b" s0
    || contains ~sub:"op-t2a" s0 && contains ~sub:"op-t2b" s0);
  for p = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "participant %d replicas agree" p)
      true
      (Deployment.app_digests_agree w.dep p);
    Alcotest.(check int)
      (Printf.sprintf "participant %d staging drained" p)
      0
      (Api.xs_staged (Deployment.api w.dep p))
  done

(* --- abort downgrade: a rejected prepare is a NO vote --- *)

let test_cross_shard_abort () =
  let w = make_world ~policy:range4 ~shards:4 () in
  let router = Deployment.shard_router w.dep in
  let done_count = ref 0 and aborted = ref 0 in
  Shard.submit router
    ~on_aborted:(fun () -> incr aborted)
    ~on_done:(fun () -> incr done_count)
    [ ("a1", "op-ok"); ("b1", "poison-op") ];
  run w;
  Alcotest.(check int) "aborted once" 1 !aborted;
  Alcotest.(check int) "never completed" 0 !done_count;
  let st = Shard.stats router in
  Alcotest.(check int) "abort counted" 1 st.Shard.aborted;
  Alcotest.(check int) "rejection counted" 1 st.Shard.prepares_rejected;
  Alcotest.(check int) "no commit" 0 st.Shard.committed;
  (* Atomic: the clean op on shard 0 must not survive its partner's NO. *)
  Alcotest.(check bool) "no partial application" false
    (contains ~sub:"op-ok" (applied_at w 0)
    || contains ~sub:"poison" (applied_at w 1));
  for p = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "participant %d staging drained" p)
      0
      (Api.xs_staged (Deployment.api w.dep p))
  done

(* --- qcheck: adversary-free schedules commit atomically and
       deterministically --- *)

type txn = { salts : (int * int) list (* (shard, salt) *) }

let gen_schedule =
  QCheck.Gen.(
    let* shards = int_range 2 4 in
    let* n_txns = int_range 1 10 in
    let txn =
      let* width = int_range 1 (min 3 shards) in
      let* first = int_range 0 (shards - 1) in
      let* salt = int_range 0 9999 in
      (* [width] distinct shards starting at a random one, wrapping. *)
      return { salts = List.init width (fun i -> ((first + i) mod shards, salt + i)) }
    in
    let* txns = list_repeat n_txns txn in
    let* seed = int_range 1 100_000 in
    return (shards, txns, seed))

let run_schedule (shards, txns, seed) =
  let policy =
    Shard.Range (Array.init (shards - 1) (fun i -> Printf.sprintf "s%02d" (i + 1)))
  in
  let w = make_world ~policy ~seed:(Int64.of_int seed) ~shards () in
  let router = Deployment.shard_router w.dep in
  let map = Deployment.shard_map w.dep in
  let done_count = ref 0 and aborted = ref 0 in
  List.iteri
    (fun i txn ->
      let ops =
        List.map
          (fun (s, salt) ->
            (Shard.key_for map ~shard:s ~salt, Printf.sprintf "op-%d-s%d" i s))
          txn.salts
      in
      Shard.submit router
        ~on_aborted:(fun () -> incr aborted)
        ~on_done:(fun () -> incr done_count)
        ops)
    txns;
  run w;
  let states = List.init shards (applied_at w) in
  (!done_count, !aborted, Shard.stats router, states)

let atomic_deterministic =
  QCheck.Test.make ~count:12 ~name:"cross-shard 2PC atomic + deterministic"
    (QCheck.make gen_schedule) (fun ((shards, txns, _) as sched) ->
      let done1, aborted1, st1, states1 = run_schedule sched in
      (* Adversary-free: every transaction commits, none abort. *)
      done1 = List.length txns
      && aborted1 = 0
      && st1.Shard.aborted = 0
      && st1.Shard.timeouts = 0
      && st1.Shard.single_shard + st1.Shard.cross_shard = List.length txns
      (* Atomic: every op of every txn landed exactly on its own shard. *)
      && List.for_all2
           (fun i txn ->
             List.for_all
               (fun (s, _salt) ->
                 let op = Printf.sprintf "op-%d-s%d" i s in
                 List.for_all2
                   (fun p state -> contains ~sub:op state = (p = s))
                   (List.init shards Fun.id)
                   states1)
               txn.salts)
           (List.init (List.length txns) Fun.id)
           txns
      (* Deterministic: an identical world replays to identical state. *)
      &&
      let done2, aborted2, st2, states2 = run_schedule sched in
      done1 = done2 && aborted1 = aborted2 && st1 = st2 && states1 = states2)

(* --- Runner default knobs: validation, clamping, composition --- *)

let test_runner_knobs () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "shards 0 rejected" true
    (raises (fun () -> Bp_harness.Runner.set_default_shards 0));
  Alcotest.(check bool) "min-fill 0 rejected" true
    (raises (fun () -> Bp_harness.Runner.set_default_batch_min_fill (Some 0)));
  Alcotest.(check bool) "negative hold rejected" true
    (raises (fun () ->
         Bp_harness.Runner.set_default_batch_hold (Some (Time.of_ms (-1.0)))));
  let restore () =
    Bp_harness.Runner.set_default_shards 1;
    Bp_harness.Runner.set_default_batch_min_fill None;
    Bp_harness.Runner.set_default_batch_hold None
  in
  Fun.protect ~finally:restore (fun () ->
      (* The default shard count clamps to small fixed worlds... *)
      Bp_harness.Runner.set_default_shards 3;
      let w = Bp_harness.Runner.fresh_world ~n_participants:2 () in
      Alcotest.(check int) "default shards clamped to participants" 2
        (Shard.shards (Deployment.shard_map w.Bp_harness.Runner.dep));
      (* ...an explicit per-world shard count never clamps. *)
      Alcotest.(check bool) "explicit shards > participants rejected" true
        (raises (fun () ->
             Bp_harness.Runner.fresh_world ~shards:8 ~n_participants:4 ()));
      (* Batch knobs compose: the default pair is valid together, and an
         explicit min-fill composes with the default hold instead of
         resetting it (1 + hold is a valid pair; 16 + zero would not be). *)
      Bp_harness.Runner.set_default_batch_min_fill (Some 16);
      Bp_harness.Runner.set_default_batch_hold (Some (Time.of_ms 0.25));
      let w = Bp_harness.Runner.fresh_world ~n_participants:1 () in
      let api = Deployment.api w.Bp_harness.Runner.dep 0 in
      let ok = ref false in
      Api.log_commit api "knob-probe" ~on_done:(fun () -> ok := true);
      Engine.run ~until:(Time.of_sec 2.0) w.Bp_harness.Runner.engine;
      Alcotest.(check bool) "world under composed defaults commits" true !ok;
      let w2 =
        Bp_harness.Runner.fresh_world ~batch_min_fill:1 ~n_participants:1 ()
      in
      ignore w2);
  (* With the defaults restored, an explicit min-fill above 1 and no hold
     anywhere is the invalid pair — Config.make must see the COMPOSED
     pair and reject it. *)
  Alcotest.(check bool) "min-fill without any hold rejected" true
    (raises (fun () ->
         Bp_harness.Runner.fresh_world ~batch_min_fill:4 ~n_participants:1 ()))

(* --- 1-shard byte-identity: golden table2 under a global --shards --- *)

(* Captured from the seed tree at scale 0.2 (the shape test's scale).
   table2 builds 1-participant worlds, so any global --shards default
   clamps to one shard and the router installs nothing: these bytes must
   not move at ANY --shards value. A diff here means the shard layer
   leaked into unsharded worlds — a bug, not a table to re-pin. *)
let table2_golden =
  "== table2: Local commitment vs unit size (batch 100 KB) ==\n\
   \   (Table II, SVIII-A)\n\
   +-----------+-----------------+--------------+---------------+------------+\n\
   | nodes     | MB/s (measured) | MB/s (paper) | ms (measured) | ms (paper) |\n\
   +===========+=================+==============+===============+============+\n\
   | 4 (fi=1)  | 61.5            | 83           | 1.6           | 1.2        |\n\
   | 7 (fi=2)  | 49.2            | 51           | 2.0           | 1.9        |\n\
   | 10 (fi=3) | 42.6            | 28           | 2.3           | 3.5        |\n\
   | 13 (fi=4) | 36.5            | 25           | 2.7           | 4          |\n\
   +-----------+-----------------+--------------+---------------+------------+\n\
   \   note: expected shape: throughput falls and latency rises with n\n"

let test_table2_golden_any_shards () =
  let render () =
    String.concat ""
      (List.map Bp_harness.Report.render
         (Bp_harness.Exp_local.table2 ~scale:0.2 ()))
  in
  Alcotest.(check string) "table2 bytes at default shards" table2_golden
    (render ());
  Fun.protect
    ~finally:(fun () -> Bp_harness.Runner.set_default_shards 1)
    (fun () ->
      Bp_harness.Runner.set_default_shards 16;
      Alcotest.(check string) "table2 bytes under --shards 16" table2_golden
        (render ()))

(* --- the shard sweep is bit-identical at any --jobs --- *)

let test_shard_sweep_jobs_deterministic () =
  let render_all pool =
    String.concat ""
      (List.map Bp_harness.Report.render
         (Bp_harness.Runner.run_plan ?pool (Bp_harness.Exp_shard.plan ~scale:0.01)))
  in
  let seq = render_all None in
  let pool = Bp_parallel.Pool.create ~jobs:2 in
  let par =
    Fun.protect
      ~finally:(fun () -> Bp_parallel.Pool.shutdown pool)
      (fun () -> render_all (Some pool))
  in
  Alcotest.(check string) "jobs 1 == jobs 2, byte-identical" seq par

let suite =
  [
    ( "shard",
      let tc name f = Alcotest.test_case name `Quick f in
      [
        tc "map basics" test_map_basics;
        QCheck_alcotest.to_alcotest key_for_roundtrip;
        tc "cross-shard commit atomic" test_cross_shard_commit;
        tc "cross-shard abort atomic" test_cross_shard_abort;
        QCheck_alcotest.to_alcotest atomic_deterministic;
        tc "runner shard/batch knobs" test_runner_knobs;
        tc "table2 golden at any shards" test_table2_golden_any_shards;
        tc "shard sweep bit-identical across jobs"
          test_shard_sweep_jobs_deterministic;
      ] );
  ]
