(* The benchmark executable.

   Part 1 regenerates every table and figure of the paper's evaluation
   (§VIII) on the deterministic simulator, printing measured-vs-paper
   rows — one block per table/figure, in paper order.

   Part 2 runs Bechamel micro-benchmarks of the compute-bound substrate
   (hashing, signatures, codecs, the event engine), i.e. the real CPU
   cost of running the harness itself.

   Usage:
     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig7         # one experiment
     dune exec bench/main.exe -- micro        # only the micro-benchmarks
     dune exec bench/main.exe -- --json out.json   # also dump bp-bench/1 JSON
     BP_BENCH_SCALE=0.2 dune exec bench/main.exe   # quicker sweep

   The --json report (schema documented in EXPERIMENTS.md, "Performance
   methodology") is the perf-regression record: one BENCH_PRn.json is
   committed per PR and compared against its predecessors. *)

open Bechamel
open Toolkit

(* ---------- part 1: the paper's tables and figures ---------- *)

let scale =
  match Sys.getenv_opt "BP_BENCH_SCALE" with
  | Some s -> ( try float_of_string s with _ -> 1.0)
  | None -> 1.0

let run_experiment e =
  Printf.printf "\n";
  let t0 = Unix.gettimeofday () in
  List.iter (fun r -> print_string (Bp_harness.Report.render r)) (e.Bp_harness.Experiments.run ~scale);
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "   (regenerated in %.1fs wall time)\n%!" wall;
  (e.Bp_harness.Experiments.id, wall)

let run_paper_benches ids =
  let known = List.map (fun e -> e.Bp_harness.Experiments.id) Bp_harness.Experiments.all in
  (match List.filter (fun id -> not (List.mem id known)) ids with
  | [] -> ()
  | unknown ->
      Printf.eprintf "bench: unknown experiment%s: %s\n  (known: %s, micro)\n"
        (if List.length unknown > 1 then "s" else "")
        (String.concat ", " unknown) (String.concat ", " known);
      exit 2);
  Printf.printf "=====================================================\n";
  Printf.printf "Blockplane (ICDE 2019) - evaluation reproduction\n";
  Printf.printf "scale=%.2f (set BP_BENCH_SCALE to adjust)\n" scale;
  Printf.printf "=====================================================\n";
  List.filter_map
    (fun e ->
      if ids = [] || List.mem e.Bp_harness.Experiments.id ids then
        Some (run_experiment e)
      else None)
    Bp_harness.Experiments.all

(* ---------- part 2: micro-benchmarks ---------- *)

let micro_tests () =
  let open Bp_crypto in
  let rng = Bp_util.Rng.create 7L in
  let payload_1k = String.init 1024 (fun i -> Char.chr (i land 0xff)) in
  let payload_64k = String.init 65536 (fun i -> Char.chr (i land 0xff)) in
  let lamport_sk, lamport_pk = Lamport.keygen rng in
  let lamport_sig = Lamport.sign lamport_sk "msg" in
  let record =
    Blockplane.Record.Recv
      {
        Blockplane.Record.src = 1;
        tdest = 0;
        tcomm_seq = 42;
        log_pos = 117;
        tpayload = payload_1k;
        proofs = [ ("u1/n1.0", String.make 32 's'); ("u1/n1.1", String.make 32 't') ];
        geo_proofs = [];
      }
  in
  let encoded_record = Blockplane.Record.encode record in
  let frame = Bp_codec.Frame.seal payload_1k in
  [
    Test.make ~name:"sha256 (1 KiB)"
      (Staged.stage (fun () -> Sha256.digest payload_1k));
    Test.make ~name:"sha256 (64 KiB)"
      (Staged.stage (fun () -> Sha256.digest payload_64k));
    (* Retained pre-optimization implementation: the gap between this row
       and "sha256 (64 KiB)" is the digest speedup, self-contained in any
       single bench report. *)
    Test.make ~name:"sha256-ref (64 KiB)"
      (Staged.stage (fun () -> Sha256_ref.digest payload_64k));
    Test.make ~name:"hmac-sha256 (1 KiB)"
      (Staged.stage (fun () -> Hmac.sha256 ~key:"benchkey" payload_1k));
    Test.make ~name:"crc32 (64 KiB)"
      (Staged.stage (fun () -> Crc32.string payload_64k));
    Test.make ~name:"merkle root (64 leaves)"
      (Staged.stage
         (let leaves = List.init 64 string_of_int in
          fun () -> Merkle.root leaves));
    Test.make ~name:"lamport verify"
      (Staged.stage (fun () -> Lamport.verify lamport_pk "msg" lamport_sig));
    Test.make ~name:"record decode (1 KiB recv)"
      (Staged.stage (fun () -> Blockplane.Record.decode encoded_record));
    Test.make ~name:"frame unseal (1 KiB)"
      (Staged.stage (fun () -> Bp_codec.Frame.unseal frame));
    Test.make ~name:"engine schedule+fire 1k events"
      (Staged.stage (fun () ->
           let e = Bp_sim.Engine.create () in
           for i = 1 to 1000 do
             ignore
               (Bp_sim.Engine.schedule e ~after:(Bp_sim.Time.of_us i) (fun () -> ()))
           done;
           Bp_sim.Engine.run e));
    Test.make ~name:"engine 1k events, half cancelled"
      (Staged.stage (fun () ->
           let e = Bp_sim.Engine.create () in
           let timers =
             Array.init 1000 (fun i ->
                 Bp_sim.Engine.schedule e
                   ~after:(Bp_sim.Time.of_us (i + 1))
                   (fun () -> ()))
           in
           for i = 0 to 999 do
             if i land 1 = 0 then Bp_sim.Engine.cancel timers.(i)
           done;
           assert (Bp_sim.Engine.pending e = 500);
           assert (Bp_sim.Engine.cancelled_backlog e <= 500);
           Bp_sim.Engine.run e));
    Test.make ~name:"simulated local commit (full unit)"
      (Staged.stage (fun () ->
           let world = Bp_harness.Runner.fresh_world ~n_participants:1 () in
           let api = Blockplane.Deployment.api world.Bp_harness.Runner.dep 0 in
           let ok = ref false in
           Blockplane.Api.log_commit api "bench" ~on_done:(fun () -> ok := true);
           Bp_sim.Engine.run ~until:(Bp_sim.Time.of_sec 1.0)
             world.Bp_harness.Runner.engine;
           assert !ok));
  ]

let run_micro () =
  Printf.printf "\n=====================================================\n";
  Printf.printf "Micro-benchmarks (Bechamel; real CPU time per call)\n";
  Printf.printf "=====================================================\n";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (ns :: _) ->
              if ns < 1e4 then Printf.printf "%-42s %10.0f ns/op\n" name ns
              else Printf.printf "%-42s %10.1f us/op\n" name (ns /. 1e3);
              rows := (name, ns) :: !rows
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        analyzed)
    (micro_tests ());
  Printf.printf "%!";
  List.rev !rows

(* ---------- JSON report (schema bp-bench/1) ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path ~experiments ~micro =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"bp-bench/1\",\n";
  p "  \"scale\": %g,\n" scale;
  p "  \"experiments\": [";
  List.iteri
    (fun i (id, wall) ->
      p "%s\n    { \"id\": \"%s\", \"wall_s\": %.3f }"
        (if i = 0 then "" else ",")
        (json_escape id) wall)
    experiments;
  p "\n  ],\n";
  p "  \"micro\": [";
  List.iteri
    (fun i (name, ns) ->
      p "%s\n    { \"name\": \"%s\", \"ns_per_op\": %.1f }"
        (if i = 0 then "" else ",")
        (json_escape name) ns)
    micro;
  p "\n  ]\n";
  p "}\n";
  close_out oc

let () =
  let rec split_json = function
    | "--json" :: path :: rest ->
        let others, _ = split_json rest in
        (others, Some path)
    | [ "--json" ] ->
        prerr_endline "bench: --json requires an output path";
        exit 2
    | a :: rest ->
        let others, json = split_json rest in
        (a :: others, json)
    | [] -> ([], None)
  in
  let args, json_path = split_json (List.tl (Array.to_list Sys.argv)) in
  let experiments, micro =
    match args with
    | [ "micro" ] -> ([], run_micro ())
    | [] ->
        let experiments = run_paper_benches [] in
        (experiments, run_micro ())
    | ids -> (run_paper_benches ids, [])
  in
  match json_path with
  | None -> ()
  | Some path -> (
      try
        write_json path ~experiments ~micro;
        if path <> "/dev/null" then Printf.printf "\nwrote %s\n%!" path
      with Sys_error msg ->
        Printf.eprintf "bench: cannot write JSON report: %s\n" msg;
        exit 2)
