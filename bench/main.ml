(* The benchmark executable.

   Part 1 regenerates every table and figure of the paper's evaluation
   (§VIII) on the deterministic simulator, printing measured-vs-paper
   rows — one block per table/figure, in paper order.

   Part 2 runs Bechamel micro-benchmarks of the compute-bound substrate
   (hashing, signatures, codecs, the event engine), i.e. the real CPU
   cost of running the harness itself.

   Usage:
     dune exec bench/main.exe                 # everything, default scale
     dune exec bench/main.exe -- fig7         # one experiment
     dune exec bench/main.exe -- micro        # only the micro-benchmarks
     dune exec bench/main.exe -- --json out.json   # also dump bp-bench/8 JSON
     dune exec bench/main.exe -- --jobs 4     # fan experiment tasks over 4 domains
     dune exec bench/main.exe -- -j 1         # strictly sequential (reference)
     dune exec bench/main.exe -- --json out.json --baseline base.json
                                              # also record speedup_vs_baseline
     dune exec bench/main.exe -- --no-cache   # disable verify/digest caches
     dune exec bench/main.exe -- --pipeline 4 # consensus pipeline depth
     dune exec bench/main.exe -- --verify-jobs 4   # batch-crypto fan-out
     dune exec bench/main.exe -- --cluster-send on # cluster-sending WAN path
     dune exec bench/main.exe -- --load-rate 50000 # single saturation rate
     dune exec bench/main.exe -- --load-trace bursty  # arrival process shape
     dune exec bench/main.exe -- --skew 0         # uniform client skew
     dune exec bench/main.exe -- --shards 4       # keyspace shards per world
     dune exec bench/main.exe -- --batch-min-fill 16 --batch-hold 0.25
                                              # adaptive batch-cut policy
     BP_BENCH_SCALE=0.2 dune exec bench/main.exe   # quicker sweep

   --jobs defaults to Domain.recommended_domain_count. Parallel runs are
   bit-identical to -j 1 in every report row (each sweep point is its own
   seeded simulation; results merge by task index) — only wall times move.

   The --json report (schema documented in EXPERIMENTS.md, "Performance
   methodology") is the perf-regression record: one BENCH_PRn.json is
   committed per PR and compared against its predecessors. *)

open Bechamel
open Toolkit

(* ---------- part 1: the paper's tables and figures ---------- *)

let scale =
  match Sys.getenv_opt "BP_BENCH_SCALE" with
  | Some s -> ( try float_of_string s with _ -> 1.0)
  | None -> 1.0

let run_experiment ?pool e =
  Printf.printf "\n";
  (* Each experiment's wall time must not pay for its predecessors'
     garbage: the big-payload sweeps leave whole simulated worlds (and
     their per-node caches) dead on the major heap, and letting the
     incremental GC reclaim them during the *next* experiment's timed
     region skews that experiment by hundreds of ms. Collect to a clean
     slate first — identically in cached and --no-cache runs, so
     baseline ratios stay honest. *)
  Gc.compact ();
  (* Per-experiment verify-batch stats: reset the shared context before
     the run and snapshot after, so the JSON records how each
     experiment's receive path used the batch machinery. *)
  Bp_crypto.Verify_batch.reset_stats (Bp_crypto.Verify_batch.global ());
  (* Wall-clock is the quantity being reported here — the bench harness
     measures real elapsed time by design, not simulated time. *)
  let t0 = (Unix.gettimeofday () [@bplint.allow "R2-nondet"]) in
  let reports = Bp_harness.Experiments.run ?pool e ~scale in
  List.iter (fun r -> print_string (Bp_harness.Report.render r)) reports;
  let wall = (Unix.gettimeofday () [@bplint.allow "R2-nondet"]) -. t0 in
  Printf.printf "   (regenerated in %.1fs wall time)\n%!" wall;
  let vb = Bp_crypto.Verify_batch.stats (Bp_crypto.Verify_batch.global ()) in
  (* Per-operation counters (latency percentiles, pipeline occupancy)
     for the JSON record, keyed "<report-id>.<name>" since an experiment
     can emit several reports (fig4a/fig4b). *)
  let metrics =
    List.concat_map
      (fun r ->
        List.map
          (fun (k, v) -> (r.Bp_harness.Report.id ^ "." ^ k, v))
          r.Bp_harness.Report.metrics)
      reports
  in
  (e.Bp_harness.Experiments.id, wall, metrics, vb)

let load_shape_name = function
  | `Poisson -> "poisson"
  | `Bursty -> "bursty"
  | `Diurnal -> "diurnal"

let run_paper_benches ?pool ~jobs ~pipeline ~verify_jobs ~cluster_send ~shards
    ids =
  let known = List.map (fun e -> e.Bp_harness.Experiments.id) Bp_harness.Experiments.all in
  (match List.filter (fun id -> not (List.mem id known)) ids with
  | [] -> ()
  | unknown ->
      Printf.eprintf "bench: unknown experiment%s: %s\n  (known: %s, micro)\n"
        (if List.length unknown > 1 then "s" else "")
        (String.concat ", " unknown) (String.concat ", " known);
      exit 2);
  Printf.printf "=====================================================\n";
  Printf.printf "Blockplane (ICDE 2019) - evaluation reproduction\n";
  Printf.printf "scale=%.2f (set BP_BENCH_SCALE to adjust)\n" scale;
  Printf.printf "jobs=%d (--jobs N; results are identical at any N)\n" jobs;
  Printf.printf
    "pipeline=%d (--pipeline N; consensus depth for every world; the \
     ablation sweeps its own)\n"
    pipeline;
  Printf.printf
    "verify-jobs=%d (--verify-jobs N; batch-crypto fan-out and modeled \
     verify parallelism; golden tables are identical at any N)\n"
    verify_jobs;
  Printf.printf "cache=%s (--no-cache to disable; tables are identical either way)\n"
    (if Bp_crypto.Verify_cache.enabled () then "on" else "off");
  Printf.printf
    "cluster-send=%s (--cluster-send on|off; default WAN path for every \
     world; the clustersend ablation sweeps both regardless)\n"
    (if cluster_send then "on" else "off");
  Printf.printf
    "load=%s%s skew=%g (--load-trace poisson|bursty|diurnal, --load-rate N, \
     --skew S; the saturation sweep's arrival model)\n"
    (load_shape_name !Bp_harness.Runner.default_load_shape)
    (match !Bp_harness.Runner.default_load_rate with
    | Some r -> Printf.sprintf " rate=%.0f/s" r
    | None -> "")
    !Bp_harness.Runner.default_skew;
  Printf.printf
    "shards=%d (--shards N; keyspace shards for worlds without their own \
     map, clamped to each world's participants; the shard ablation sweeps \
     1..16 regardless)\n"
    shards;
  Printf.printf
    "batch-cut=%s/%s (--batch-min-fill N, --batch-hold MS; default policy \
     for worlds without their own; seed = cut on any signal)\n"
    (match !Bp_harness.Runner.default_batch_min_fill with
    | Some m -> string_of_int m
    | None -> "-")
    (match !Bp_harness.Runner.default_batch_hold with
    | Some h -> Printf.sprintf "%gms" (Bp_sim.Time.to_ms h)
    | None -> "-");
  Printf.printf "=====================================================\n";
  List.filter_map
    (fun e ->
      if ids = [] || List.mem e.Bp_harness.Experiments.id ids then
        Some (run_experiment ?pool e)
      else None)
    Bp_harness.Experiments.all

(* ---------- part 2: micro-benchmarks ---------- *)

let micro_tests () =
  let open Bp_crypto in
  let rng = Bp_util.Rng.create 7L in
  let payload_1k = String.init 1024 (fun i -> Char.chr (i land 0xff)) in
  let payload_64k = String.init 65536 (fun i -> Char.chr (i land 0xff)) in
  let payload_1m = String.init (1 lsl 20) (fun i -> Char.chr (i land 0xff)) in
  let seal_scratch = Bp_codec.Wire.encoder ~size_hint:((1 lsl 20) + 64) () in
  let lamport_sk, lamport_pk = Lamport.keygen rng in
  let lamport_sig = Lamport.sign lamport_sk "msg" in
  let record =
    Blockplane.Record.Recv
      {
        Blockplane.Record.src = 1;
        tdest = 0;
        tcomm_seq = 42;
        log_pos = 117;
        tpayload = payload_1k;
        proofs = [ ("u1/n1.0", String.make 32 's'); ("u1/n1.1", String.make 32 't') ];
        geo_proofs = [];
      }
  in
  let encoded_record = Blockplane.Record.encode record in
  let frame = Bp_codec.Frame.seal payload_1k in
  (* Verification-cache rows. The hit row probes a warmed cache; the miss
     row pays the full uncached verify plus insertion bookkeeping into a
     fresh cache; their gap is what each memoized re-verification saves.
     With --no-cache all three degrade to the uncached computation. *)
  let vkeystore = Signer.create (Bp_util.Rng.split rng) in
  let vsigner = "bench/verifier" in
  Signer.add_identity vkeystore vsigner;
  let vcache = Verify_cache.create vkeystore in
  let vsig = Signer.sign vkeystore ~signer:vsigner payload_1k in
  ignore (Verify_cache.verify vcache ~signer:vsigner ~msg:payload_1k ~signature:vsig);
  let batch =
    List.init 16 (fun i ->
        {
          Bp_pbft.Msg.client = Bp_sim.Addr.make ~dc:0 ~idx:i;
          ts = i;
          kind = 0;
          op = payload_1k;
          client_sig = String.make 32 'x';
        })
  in
  let bmemo = Verify_cache.memo () in
  (* Batch-verification rows: the same job list through a sequential
     (jobs 1) and a fanned (jobs 4) Verify_batch context — their gap is
     the real wall-clock win of the domain-pool crypto path. Hash-based
     signatures make the keyed rows compute-bound (HMAC verifies are too
     cheap to amortize a fan-out); no cache, so every call re-verifies. *)
  let bb_keystore = Signer.create ~scheme:`Hash_based (Bp_util.Rng.split rng) in
  let bb_signer = "bench/batch" in
  Signer.add_identity bb_keystore bb_signer;
  let bb_jobs16 =
    List.init 16 (fun i ->
        let msg = Printf.sprintf "batch-msg-%d" i in
        Verify_batch.Keyed
          { signer = bb_signer; msg; signature = Signer.sign bb_keystore ~signer:bb_signer msg })
  in
  let lamport_jobs8 =
    List.init 8 (fun i ->
        let sk, pk = Lamport.keygen rng in
        let msg = Printf.sprintf "lamport-msg-%d" i in
        Verify_batch.Lamport { key = pk; msg; signature = Lamport.sign sk msg })
  in
  let vb_seq = Verify_batch.create ~jobs:1 () in
  let vb_par = Verify_batch.create ~jobs:4 () in
  let cleanup () =
    Verify_batch.shutdown vb_par;
    Verify_batch.shutdown vb_seq
  in
  ( cleanup,
    [
    Test.make ~name:"sha256 (1 KiB)"
      (Staged.stage (fun () -> Sha256.digest payload_1k));
    Test.make ~name:"sha256 (64 KiB)"
      (Staged.stage (fun () -> Sha256.digest payload_64k));
    (* Retained pre-optimization implementation: the gap between this row
       and "sha256 (64 KiB)" is the digest speedup, self-contained in any
       single bench report. *)
    Test.make ~name:"sha256-ref (64 KiB)"
      (Staged.stage (fun () -> Sha256_ref.digest payload_64k));
    Test.make ~name:"hmac-sha256 (1 KiB)"
      (Staged.stage (fun () -> Hmac.sha256 ~key:"benchkey" payload_1k));
    Test.make ~name:"crc32 (64 KiB)"
      (Staged.stage (fun () -> Crc32.string payload_64k));
    Test.make ~name:"crc32 (1 MiB)"
      (Staged.stage (fun () -> Crc32.string payload_1m));
    Test.make ~name:"frame seal (1 MiB)"
      (Staged.stage (fun () -> Bp_codec.Frame.seal payload_1m));
    (* The transport send path, before and after PR 3: encode the payload
       to a string and seal it (two big allocations, payload moved three
       times) vs assemble the frame directly in a reused scratch encoder
       (one allocation, payload moved twice). The bare "frame seal" row
       above is not the old send path — it starts from an already
       materialized payload string. *)
    Test.make ~name:"wire encode + frame seal (1 MiB)"
      (Staged.stage (fun () ->
           Bp_codec.Frame.seal
             (Bp_codec.Wire.encode_with seal_scratch (fun e ->
                  Bp_codec.Wire.fixed e payload_1m))));
    Test.make ~name:"frame seal_with (1 MiB)"
      (Staged.stage (fun () ->
           Bp_codec.Frame.seal_with seal_scratch (fun e ->
               Bp_codec.Wire.fixed e payload_1m)));
    Test.make ~name:"merkle root (64 leaves)"
      (Staged.stage
         (let leaves = List.init 64 string_of_int in
          fun () -> Merkle.root leaves));
    Test.make ~name:"lamport verify"
      (Staged.stage (fun () -> Lamport.verify lamport_pk "msg" lamport_sig));
    Test.make ~name:"batch verify 16 sigs, jobs 1"
      (Staged.stage (fun () ->
           Verify_batch.verify ~keystore:bb_keystore vb_seq bb_jobs16));
    Test.make ~name:"batch verify 16 sigs, jobs 4"
      (Staged.stage (fun () ->
           Verify_batch.verify ~keystore:bb_keystore vb_par bb_jobs16));
    Test.make ~name:"lamport batch verify 8, jobs 1"
      (Staged.stage (fun () ->
           Verify_batch.verify ~keystore:bb_keystore vb_seq lamport_jobs8));
    Test.make ~name:"lamport batch verify 8, jobs 4"
      (Staged.stage (fun () ->
           Verify_batch.verify ~keystore:bb_keystore vb_par lamport_jobs8));
    Test.make ~name:"verify hit (1 KiB, cached)"
      (Staged.stage (fun () ->
           Verify_cache.verify vcache ~signer:vsigner ~msg:payload_1k
             ~signature:vsig));
    Test.make ~name:"verify miss (1 KiB, cold cache)"
      (Staged.stage (fun () ->
           let c = Verify_cache.create ~capacity:16 vkeystore in
           Verify_cache.verify c ~signer:vsigner ~msg:payload_1k ~signature:vsig));
    Test.make ~name:"batch_digest memo (16 x 1 KiB)"
      (Staged.stage (fun () ->
           Bp_crypto.Verify_cache.memoize bmemo batch (fun () ->
               Bp_pbft.Msg.batch_digest ~cache:vcache batch)));
    Test.make ~name:"record decode (1 KiB recv)"
      (Staged.stage (fun () -> Blockplane.Record.decode encoded_record));
    Test.make ~name:"frame unseal (1 KiB)"
      (Staged.stage (fun () -> Bp_codec.Frame.unseal frame));
    Test.make ~name:"engine schedule+fire 1k events"
      (Staged.stage (fun () ->
           let e = Bp_sim.Engine.create () in
           for i = 1 to 1000 do
             ignore
               (Bp_sim.Engine.schedule e ~after:(Bp_sim.Time.of_us i) (fun () -> ()))
           done;
           Bp_sim.Engine.run e));
    Test.make ~name:"engine 1k events, half cancelled"
      (Staged.stage (fun () ->
           let e = Bp_sim.Engine.create () in
           let timers =
             Array.init 1000 (fun i ->
                 Bp_sim.Engine.schedule e
                   ~after:(Bp_sim.Time.of_us (i + 1))
                   (fun () -> ()))
           in
           for i = 0 to 999 do
             if i land 1 = 0 then Bp_sim.Engine.cancel timers.(i)
           done;
           assert (Bp_sim.Engine.pending e = 500);
           assert (Bp_sim.Engine.cancelled_backlog e <= 500);
           Bp_sim.Engine.run e));
    Test.make ~name:"simulated local commit (full unit)"
      (Staged.stage (fun () ->
           let world = Bp_harness.Runner.fresh_world ~n_participants:1 () in
           let api = Blockplane.Deployment.api world.Bp_harness.Runner.dep 0 in
           let ok = ref false in
           Blockplane.Api.log_commit api "bench" ~on_done:(fun () -> ok := true);
           Bp_sim.Engine.run ~until:(Bp_sim.Time.of_sec 1.0)
             world.Bp_harness.Runner.engine;
           assert !ok));
  ] )

let run_micro () =
  Printf.printf "\n=====================================================\n";
  Printf.printf "Micro-benchmarks (Bechamel; real CPU time per call)\n";
  Printf.printf "=====================================================\n";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let rows = ref [] in
  let cleanup, tests = micro_tests () in
  Fun.protect ~finally:cleanup @@ fun () ->
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (ns :: _) ->
              if ns < 1e4 then Printf.printf "%-42s %10.0f ns/op\n" name ns
              else Printf.printf "%-42s %10.1f us/op\n" name (ns /. 1e3);
              rows := (name, ns) :: !rows
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        analyzed)
    tests;
  Printf.printf "%!";
  List.rev !rows

(* ---------- JSON report (schema bp-bench/8) ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* A baseline is a prior --json report to compare against — a sequential
   run for parallel speedups, or a --no-cache run for cache speedups. We
   only need (id, wall_s) pairs, and every experiment line of bp-bench/1
   through /4 reports starts with exactly those two fields, so a
   line-oriented scan is enough — no JSON parser needed. *)
let read_baseline path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "bench: cannot read baseline: %s\n" msg;
      exit 2
  in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       match
         Scanf.sscanf line "{ \"id\": %S, \"wall_s\": %f" (fun id w -> (id, w))
       with
       | entry -> entries := entry :: !entries
       | exception _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

(* One verify-batch stats object, shared between the per-experiment
   entries and the whole-run aggregate. The histogram is keyed by the
   bucket labels so the record is self-describing. *)
let print_vb_stats oc label (s : Bp_crypto.Verify_batch.stats) =
  let p fmt = Printf.fprintf oc fmt in
  p
    "\"%s\": { \"batches\": %d, \"jobs\": %d, \"fanned\": %d, \
     \"cache_hits\": %d, \"fanned_batches\": %d, \"occupancy\": %.3f, \
     \"batch_size_hist\": { "
    label s.Bp_crypto.Verify_batch.batches s.Bp_crypto.Verify_batch.jobs_submitted
    s.Bp_crypto.Verify_batch.fanned s.Bp_crypto.Verify_batch.cache_hits
    s.Bp_crypto.Verify_batch.fanned_batches s.Bp_crypto.Verify_batch.occupancy;
  Array.iteri
    (fun i label ->
      p "%s\"%s\": %d"
        (if i = 0 then "" else ", ")
        label s.Bp_crypto.Verify_batch.hist.(i))
    Bp_crypto.Verify_batch.hist_buckets;
  p " } }"

(* Sum of per-experiment deltas; occupancy re-weighted by fanned batches. *)
let sum_vb_stats stats_list : Bp_crypto.Verify_batch.stats =
  let open Bp_crypto.Verify_batch in
  let buckets = Array.length hist_buckets in
  List.fold_left
    (fun acc s ->
      {
        batches = acc.batches + s.batches;
        jobs_submitted = acc.jobs_submitted + s.jobs_submitted;
        fanned = acc.fanned + s.fanned;
        cache_hits = acc.cache_hits + s.cache_hits;
        fanned_batches = acc.fanned_batches + s.fanned_batches;
        occupancy =
          (let fb = acc.fanned_batches + s.fanned_batches in
           if fb = 0 then 0.0
           else
             ((acc.occupancy *. float_of_int acc.fanned_batches)
             +. (s.occupancy *. float_of_int s.fanned_batches))
             /. float_of_int fb);
        hist = Array.init buckets (fun i -> acc.hist.(i) + s.hist.(i));
      })
    {
      batches = 0;
      jobs_submitted = 0;
      fanned = 0;
      cache_hits = 0;
      fanned_batches = 0;
      occupancy = 0.0;
      hist = Array.make buckets 0;
    }
    stats_list

let write_json path ~jobs ~pipeline ~verify_jobs ~cluster_send ~shards
    ~baseline ~experiments ~micro =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"bp-bench/8\",\n";
  p "  \"scale\": %g,\n" scale;
  p "  \"jobs\": %d,\n" jobs;
  p "  \"pipeline\": %d,\n" pipeline;
  p "  \"verify_jobs\": %d,\n" verify_jobs;
  p "  \"cluster_send\": %b,\n" cluster_send;
  (* bp-bench/8: the sharding knob and the batch-cut policy defaults
     (null = the seed's cut-on-any-signal behaviour). *)
  p "  \"shards\": %d,\n" shards;
  p "  \"batch\": { \"min_fill\": %s, \"hold_ms\": %s },\n"
    (match !Bp_harness.Runner.default_batch_min_fill with
    | Some m -> string_of_int m
    | None -> "null")
    (match !Bp_harness.Runner.default_batch_hold with
    | Some h -> Printf.sprintf "%g" (Bp_sim.Time.to_ms h)
    | None -> "null");
  (* The load-generation knobs behind the saturation sweep; rate is null
     when the sweep's own rate list ran. *)
  p "  \"load\": { \"trace\": \"%s\", \"rate\": %s, \"skew\": %g },\n"
    (load_shape_name !Bp_harness.Runner.default_load_shape)
    (match !Bp_harness.Runner.default_load_rate with
    | Some r -> Printf.sprintf "%g" r
    | None -> "null")
    !Bp_harness.Runner.default_skew;
  p "  \"cache_enabled\": %b,\n" (Bp_crypto.Verify_cache.enabled ());
  (let c = Bp_crypto.Verify_cache.counters () in
   let nodes = Bp_crypto.Verify_cache.instances () in
   let per_node v = if nodes = 0 then 0.0 else float_of_int v /. float_of_int nodes in
   p
     "  \"cache\": { \"verify_hits\": %d, \"verify_misses\": %d, \
      \"digest_hits\": %d, \"digest_misses\": %d, \"memo_hits\": %d, \
      \"memo_misses\": %d,\n"
     c.Bp_crypto.Verify_cache.verify_hits c.Bp_crypto.Verify_cache.verify_misses
     c.Bp_crypto.Verify_cache.digest_hits c.Bp_crypto.Verify_cache.digest_misses
     c.Bp_crypto.Verify_cache.memo_hits c.Bp_crypto.Verify_cache.memo_misses;
   (* The aggregate counters above span every node cache the run created;
      the per-node means divide by the instance count so runs of
      different topology sizes stay comparable. *)
   p
     "    \"nodes\": %d, \"per_node_mean\": { \"verify_hits\": %.1f, \
      \"verify_misses\": %.1f, \"digest_hits\": %.1f, \"digest_misses\": \
      %.1f } },\n"
     nodes
     (per_node c.Bp_crypto.Verify_cache.verify_hits)
     (per_node c.Bp_crypto.Verify_cache.verify_misses)
     (per_node c.Bp_crypto.Verify_cache.digest_hits)
     (per_node c.Bp_crypto.Verify_cache.digest_misses));
  p "  ";
  print_vb_stats oc "verify_batch"
    (sum_vb_stats (List.map (fun (_, _, _, vb) -> vb) experiments));
  p ",\n";
  p "  \"experiments\": [";
  List.iteri
    (fun i (id, wall, metrics, vb) ->
      p "%s\n    { \"id\": \"%s\", \"wall_s\": %.3f" (if i = 0 then "" else ",")
        (json_escape id) wall;
      (* Sub-millisecond walls (table1 just prints a constant matrix)
         would make the ratio pure noise; omit the fields there. *)
      (match List.assoc_opt id baseline with
      | Some base_wall when wall > 0.001 && base_wall > 0.001 ->
          p ", \"baseline_wall_s\": %.3f, \"speedup_vs_baseline\": %.2f"
            base_wall (base_wall /. wall)
      | _ -> ());
      if vb.Bp_crypto.Verify_batch.batches > 0 then begin
        p ",\n      ";
        print_vb_stats oc "verify_batch" vb
      end;
      (match metrics with
      | [] -> ()
      | metrics ->
          p ",\n      \"metrics\": { ";
          List.iteri
            (fun j (k, v) ->
              p "%s\"%s\": %g" (if j = 0 then "" else ", ") (json_escape k) v)
            metrics;
          p " }");
      p " }")
    experiments;
  p "\n  ],\n";
  p "  \"micro\": [";
  List.iteri
    (fun i (name, ns) ->
      p "%s\n    { \"name\": \"%s\", \"ns_per_op\": %.1f }"
        (if i = 0 then "" else ",")
        (json_escape name) ns)
    micro;
  p "\n  ]\n";
  p "}\n";
  close_out oc

let () =
  let json_path = ref None in
  let baseline_path = ref None in
  let jobs = ref (Bp_parallel.Pool.default_jobs ()) in
  let pipeline = ref 1 in
  let verify_jobs = ref 1 in
  let cluster_send = ref false in
  let shards = ref 1 in
  let batch_min_fill = ref None in
  let batch_hold_ms = ref None in
  let missing flag =
    Printf.eprintf "bench: %s requires an argument\n" flag;
    exit 2
  in
  let rec parse = function
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | [ "--json" ] -> missing "--json"
    | "--baseline" :: path :: rest ->
        baseline_path := Some path;
        parse rest
    | [ "--baseline" ] -> missing "--baseline"
    | "--no-cache" :: rest ->
        Bp_crypto.Verify_cache.set_enabled false;
        parse rest
    | ("--jobs" | "-j") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ ->
            Printf.eprintf "bench: --jobs expects a positive integer, got %S\n" n;
            exit 2)
    | [ ("--jobs" | "-j") ] -> missing "--jobs"
    | "--pipeline" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            pipeline := n;
            parse rest
        | _ ->
            Printf.eprintf "bench: --pipeline expects a positive integer, got %S\n"
              n;
            exit 2)
    | [ "--pipeline" ] -> missing "--pipeline"
    | "--verify-jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            verify_jobs := n;
            parse rest
        | _ ->
            Printf.eprintf
              "bench: --verify-jobs expects a positive integer, got %S\n" n;
            exit 2)
    | [ "--verify-jobs" ] -> missing "--verify-jobs"
    | "--cluster-send" :: v :: rest -> (
        match v with
        | "on" -> cluster_send := true; parse rest
        | "off" -> cluster_send := false; parse rest
        | _ ->
            Printf.eprintf "bench: --cluster-send expects on or off, got %S\n" v;
            exit 2)
    | [ "--cluster-send" ] -> missing "--cluster-send"
    | "--load-rate" :: n :: rest -> (
        match float_of_string_opt n with
        | Some r when r > 0.0 ->
            Bp_harness.Runner.set_default_load_rate (Some r);
            parse rest
        | _ ->
            Printf.eprintf "bench: --load-rate expects a positive rate, got %S\n"
              n;
            exit 2)
    | [ "--load-rate" ] -> missing "--load-rate"
    | "--load-trace" :: v :: rest -> (
        match v with
        | "poisson" -> Bp_harness.Runner.set_default_load_shape `Poisson; parse rest
        | "bursty" -> Bp_harness.Runner.set_default_load_shape `Bursty; parse rest
        | "diurnal" -> Bp_harness.Runner.set_default_load_shape `Diurnal; parse rest
        | _ ->
            Printf.eprintf
              "bench: --load-trace expects poisson, bursty or diurnal, got %S\n"
              v;
            exit 2)
    | [ "--load-trace" ] -> missing "--load-trace"
    | "--skew" :: n :: rest -> (
        match float_of_string_opt n with
        | Some s when s >= 0.0 ->
            Bp_harness.Runner.set_default_skew s;
            parse rest
        | _ ->
            Printf.eprintf "bench: --skew expects a non-negative float, got %S\n"
              n;
            exit 2)
    | [ "--skew" ] -> missing "--skew"
    | "--shards" :: n :: rest -> (
        match int_of_string_opt n with
        | Some s when s >= 1 ->
            shards := s;
            parse rest
        | _ ->
            Printf.eprintf "bench: --shards expects a positive integer, got %S\n"
              n;
            exit 2)
    | [ "--shards" ] -> missing "--shards"
    | "--batch-min-fill" :: n :: rest -> (
        match int_of_string_opt n with
        | Some m when m >= 1 ->
            batch_min_fill := Some m;
            parse rest
        | _ ->
            Printf.eprintf
              "bench: --batch-min-fill expects a positive integer, got %S\n" n;
            exit 2)
    | [ "--batch-min-fill" ] -> missing "--batch-min-fill"
    | "--batch-hold" :: ms :: rest -> (
        match float_of_string_opt ms with
        | Some h when h >= 0.0 ->
            batch_hold_ms := Some h;
            parse rest
        | _ ->
            Printf.eprintf
              "bench: --batch-hold expects a non-negative duration in ms, got \
               %S\n"
              ms;
            exit 2)
    | [ "--batch-hold" ] -> missing "--batch-hold"
    | a :: rest -> a :: parse rest
    | [] -> []
  in
  let args =
    match Array.to_list Sys.argv with [] -> [] | _self :: rest -> parse rest
  in
  let jobs = !jobs in
  let pipeline = !pipeline in
  let verify_jobs = !verify_jobs in
  let cluster_send = !cluster_send in
  let shards = !shards in
  (* Same pair rule Config.make enforces on every world: a min-fill
     above 1 without a hold timer would stall batches that never reach
     the fill target. Catch it here with a flag-level message instead of
     an Invalid_argument from deep inside the first experiment. *)
  (match (!batch_min_fill, !batch_hold_ms) with
  | Some m, (None | Some 0.0) when m > 1 ->
      Printf.eprintf
        "bench: --batch-min-fill %d needs --batch-hold MS with MS > 0 (a \
         batch below the fill target must have a timer to cut it)\n"
        m;
      exit 2
  | _ -> ());
  Bp_harness.Runner.set_default_pipeline pipeline;
  Bp_harness.Runner.set_default_cluster_send cluster_send;
  Bp_harness.Runner.set_default_shards shards;
  Bp_harness.Runner.set_default_batch_min_fill !batch_min_fill;
  Bp_harness.Runner.set_default_batch_hold
    (Option.map Bp_sim.Time.of_ms !batch_hold_ms);
  (* --verify-jobs drives both mechanisms: the modeled in-replica
     parallelism (worlds with verify_cost enabled) and the real
     domain-pool fan-out behind the receive paths. *)
  Bp_harness.Runner.set_default_verify_jobs verify_jobs;
  Bp_crypto.Verify_batch.set_default_jobs verify_jobs;
  let pool = if jobs > 1 then Some (Bp_parallel.Pool.create ~jobs) else None in
  let finally () =
    Option.iter Bp_parallel.Pool.shutdown pool;
    (* Joins the global batch-verify workers, if any were spawned. *)
    Bp_crypto.Verify_batch.set_default_jobs 1
  in
  Fun.protect ~finally @@ fun () ->
  let experiments, micro =
    match args with
    | [ "micro" ] -> ([], run_micro ())
    | [] ->
        let experiments =
          run_paper_benches ?pool ~jobs ~pipeline ~verify_jobs ~cluster_send
            ~shards []
        in
        (experiments, run_micro ())
    | ids ->
        ( run_paper_benches ?pool ~jobs ~pipeline ~verify_jobs ~cluster_send
            ~shards ids,
          [] )
  in
  match !json_path with
  | None -> ()
  | Some path -> (
      let baseline =
        match !baseline_path with None -> [] | Some p -> read_baseline p
      in
      try
        write_json path ~jobs ~pipeline ~verify_jobs ~cluster_send ~shards
          ~baseline ~experiments ~micro;
        if path <> "/dev/null" then Printf.printf "\nwrote %s\n%!" path
      with Sys_error msg ->
        Printf.eprintf "bench: cannot write JSON report: %s\n" msg;
        exit 2)
