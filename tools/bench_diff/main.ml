(* bench_diff: compare two committed bp-bench JSON reports and fail
   (exit 1) on a >10% regression in any shared experiment's primary
   metrics.

   The reports' per-experiment metrics are simulated quantities —
   deterministic for equal seeds — so a metric moving between two
   committed BENCH_PRn.json files means a code change moved it, not
   machine noise. Wall-clock fields (wall_s, the micro rows) are
   machine-dependent and deliberately NOT compared.

   Which metrics count as primary is directional by name:
     higher-is-better  *_rps, *_mbps, *_speedup, *_scaleout
     lower-is-better   *_ms   (the latency percentiles)
   Everything else (occupancy, fills, counters, ratios) is telemetry,
   compared by nothing — it has no regression direction a threshold can
   police.

   Usage: bench_diff OLD.json NEW.json [--threshold PCT]

   Schema compatibility: reads any bp-bench/5..8 report (it only needs
   the experiments array's id and metrics fields). Experiments or
   metrics present in only one report are skipped — new experiments are
   growth, not regressions. *)

(* ---------- a minimal JSON reader ---------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char b '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); loop ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); loop ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); loop ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* The reports are ASCII; escape non-ASCII back to '?' so a
                 stray code point cannot crash the comparator. *)
              Buffer.add_char b (if code < 0x80 then Char.chr code else '?');
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (elements [])
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "bench_diff: cannot read %s: %s\n" path msg;
      exit 2
  in
  let len = in_channel_length ic in
  let b = really_input_string ic len in
  close_in ic;
  b

(* ---------- report model ---------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

(* [(experiment id, [(metric name, value)])] for every experiment that
   reports metrics. *)
let experiments_of path =
  let root =
    match parse_json (read_file path) with
    | root -> root
    | exception Parse_error msg ->
        Printf.eprintf "bench_diff: %s: %s\n" path msg;
        exit 2
  in
  let exps =
    match member "experiments" root with
    | Some (Arr exps) -> exps
    | _ ->
        Printf.eprintf "bench_diff: %s: no experiments array\n" path;
        exit 2
  in
  List.filter_map
    (fun e ->
      match (member "id" e, member "metrics" e) with
      | Some (Str id), Some (Obj metrics) ->
          let metrics =
            List.filter_map
              (fun (k, v) -> match v with Num f -> Some (k, f) | _ -> None)
              metrics
          in
          Some (id, metrics)
      | Some (Str id), _ -> Some (id, [])
      | _ -> None)
    exps

(* ---------- directional comparison ---------- *)

type direction = Higher_better | Lower_better

let ends_with suffix name =
  let ls = String.length suffix and ln = String.length name in
  ln >= ls && String.sub name (ln - ls) ls = suffix

let direction_of name =
  if
    ends_with "_rps" name || ends_with "_mbps" name
    || ends_with "_speedup" name || ends_with "_scaleout" name
  then Some Higher_better
  else if ends_with "_ms" name then Some Lower_better
  else None

(* Percent change in the regression direction: positive = worse. *)
let regression_pct dir ~old_v ~new_v =
  match dir with
  | Higher_better -> (old_v -. new_v) /. old_v *. 100.0
  | Lower_better -> (new_v -. old_v) /. old_v *. 100.0

let () =
  let threshold = ref 10.0 in
  let paths = ref [] in
  let rec parse = function
    | "--threshold" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t > 0.0 ->
            threshold := t;
            parse rest
        | _ ->
            Printf.eprintf "bench_diff: --threshold expects a positive percent\n";
            exit 2)
    | [ "--threshold" ] ->
        Printf.eprintf "bench_diff: --threshold requires an argument\n";
        exit 2
    | p :: rest ->
        paths := p :: !paths;
        parse rest
    | [] -> ()
  in
  (match Array.to_list Sys.argv with
  | _exe :: rest -> parse rest
  | [] -> ());
  let old_path, new_path =
    match List.rev !paths with
    | [ o; n ] -> (o, n)
    | _ ->
        Printf.eprintf "usage: bench_diff OLD.json NEW.json [--threshold PCT]\n";
        exit 2
  in
  let old_exps = experiments_of old_path in
  let new_exps = experiments_of new_path in
  let compared = ref 0 in
  let regressions = ref [] in
  List.iter
    (fun (id, old_metrics) ->
      match List.assoc_opt id new_exps with
      | None -> () (* experiment dropped: not this tool's concern *)
      | Some new_metrics ->
          List.iter
            (fun (name, old_v) ->
              match (direction_of name, List.assoc_opt name new_metrics) with
              | Some dir, Some new_v
                when Float.is_finite old_v && Float.is_finite new_v
                     && old_v > 0.0 ->
                  incr compared;
                  let pct = regression_pct dir ~old_v ~new_v in
                  if pct > !threshold then
                    regressions := (id, name, old_v, new_v, pct) :: !regressions
              | _ -> ())
            old_metrics)
    old_exps;
  Printf.printf "bench_diff: %s -> %s: %d directional metrics compared\n"
    old_path new_path !compared;
  match List.rev !regressions with
  | [] ->
      Printf.printf "bench_diff: no regression beyond %.0f%%\n" !threshold;
      exit 0
  | regs ->
      List.iter
        (fun (id, name, old_v, new_v, pct) ->
          Printf.printf "REGRESSION %s %s: %g -> %g (%.1f%% worse)\n" id name
            old_v new_v pct)
        regs;
      Printf.printf "bench_diff: %d metric(s) regressed beyond %.0f%%\n"
        (List.length regs) !threshold;
      exit 1
