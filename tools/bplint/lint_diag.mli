(** Shared diagnostic machinery for the bplint passes: the finding record,
    text/JSON rendering, the file allowlist (path-segment anchored), and
    the CI baseline. [Lint] re-exports the user-facing parts. *)

type diagnostic = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

val to_string : diagnostic -> string
(** ["file:line:col: [rule] message"] — one line per finding. *)

val compare_diag : diagnostic -> diagnostic -> int
(** Sort key: file, then (line, col, rule). *)

val diag_to_json : diagnostic -> string
(** One finding as a JSON object [{rule, file, line, col, message}]. *)

val findings_json : diagnostic list -> string
(** JSON array of {!diag_to_json} objects, in list order. *)

val json_string : string -> string
(** JSON-quoted, escaped string literal. *)

type allowlist

val empty_allowlist : allowlist

val allowlist_of_lines : string list -> allowlist
(** Each non-empty, non-[#] line is [RULE path-pattern] (trailing words
    are a free-form comment). [RULE] matches by prefix, so [R2] excuses
    both [R2-nondet] and [R2-hiter]. *)

val load_allowlist : string -> allowlist
(** Read an allowlist file from disk. Missing file = empty allowlist. *)

val path_matches : pattern:string -> string -> bool
(** Anchored on ['/']-separated path segments: the pattern's segments
    must equal a contiguous run of the file's segments, except that the
    final pattern segment may also match a segment with its extension
    stripped (["verify_batch"] matches ["lib/crypto/verify_batch.ml"]
    but not ["lib/crypto/verify_batchx.ml"]). *)

val allowlisted : allowlist -> rule:string -> file:string -> bool

type baseline

val empty_baseline : baseline

val baseline_of_lines : string list -> baseline
(** Each non-comment line is [RULE<TAB>FILE<TAB>MESSAGE]; line/col are
    deliberately absent so entries survive unrelated code motion. *)

val load_baseline : string -> baseline
(** Read a baseline file from disk. Missing file = empty baseline. *)

val baseline_lines : diagnostic list -> string list
(** Serialize findings (plus an explanatory header) for
    [--update-baseline]. *)

val filter_baseline : baseline -> diagnostic list -> diagnostic list
(** Drop findings whose (rule, file, message) appear in the baseline —
    what remains is the set of {e new} findings CI must fail on. *)

val allows_of_attributes : Parsetree.attributes -> string list
(** Rule prefixes named by [[@bplint.allow "R1 R2-nondet"]] attributes. *)

val has_attribute : string -> Parsetree.attributes -> bool
(** Whether an attribute with the given name is present (e.g.
    ["bplint.parallel_pure"]). *)
