(** Cross-module call graph over dune's [.cmt] output, for the
    interprocedural parallel-purity passes (R6/R7).

    Nodes are module-level value bindings named by normalized qualified
    path (["Bp_crypto.Verify_batch.submit"]); edges over-approximate
    "may call": every identifier referenced anywhere in a binding's body
    (including from its local closures) is a callee. Closures that reach
    a call site through a parameter or a record field are invisible —
    their calls are attributed to the binding that constructed them. *)

type t

val empty : t

val build : string list -> t
(** Read each [.cmt] and accumulate its module-level bindings and edges.
    Unreadable files and interface-only artifacts are skipped. *)

val normalize_name : string -> string
(** Undo wrapped-library mangling: ["Bp_crypto__Signer.verify"] becomes
    ["Bp_crypto.Signer.verify"]. *)

val local_defs :
  modname:string -> Typedtree.structure -> (Ident.t * string) list
(** The module-level bindings of one structure, as (ident, qualified
    name) pairs — lets a per-file pass qualify same-module calls the way
    the graph names them. [modname] must already be normalized. *)

val qualify : locals:(Ident.t * string) list -> Path.t -> string option
(** The graph name for one referenced path: global paths normalized,
    same-module idents looked up in [locals], other local idents
    (parameters, inner lets) [None]. *)

val expr_callees :
  locals:(Ident.t * string) list -> Typedtree.expression -> string list
(** Every function/value name referenced in the expression: global paths
    normalized, same-module idents qualified via [locals], other local
    idents (parameters, inner lets) dropped. Sorted, deduplicated. *)

val callees : t -> string -> string list

val is_pure : t -> string -> bool
(** Whether the binding carries [[@@bplint.parallel_pure]] — an audited
    exemption: reachability neither reports nor expands such a node. *)

val size : t -> int * int
(** (definitions, edges) — for [--stats]. *)

val find_forbidden :
  t ->
  roots:string list ->
  forbidden:(string -> string option) ->
  (string list * string) option
(** Deterministic BFS from [roots] along call edges. Returns the first
    (in BFS order) call chain ending at a name for which [forbidden]
    gives a reason, as [(chain, reason)] with [chain] running from root
    to the offending name. [[@@bplint.parallel_pure]] nodes are pruned. *)
