(* Shared diagnostic machinery for the bplint passes: the finding record,
   text/JSON rendering, the file allowlist, and the CI baseline. Split out
   of [Lint] so the interprocedural passes ([Lint_graph]/[Lint_interproc])
   can report findings without a dependency cycle. *)

type diagnostic = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let to_string d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

let compare_diag a b =
  match String.compare a.file b.file with
  | 0 -> Stdlib.compare (a.line, a.col, a.rule) (b.line, b.col, b.rule)
  | c -> c

(* ---------- JSON rendering (schema bplint/1) ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string s = "\"" ^ json_escape s ^ "\""

let diag_to_json d =
  Printf.sprintf "{\"rule\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"message\":%s}"
    (json_string d.rule) (json_string d.file) d.line d.col
    (json_string d.message)

let findings_json diags =
  "[" ^ String.concat "," (List.map diag_to_json diags) ^ "]"

(* ---------- allowlist ---------- *)

type allowlist = (string * string) list (* rule prefix, path pattern *)

let empty_allowlist = []

(* Path patterns are anchored on '/'-separated segments: the pattern's
   segments must match a contiguous run of the file's segments exactly,
   except that the final pattern segment may also match a segment with
   its extension stripped ("verify_batch" matches ".../verify_batch.ml").
   Substrings inside a segment never match: a "verify_batch" entry does
   not excuse "verify_batchx.ml". *)
let path_matches ~pattern file =
  let psegs =
    List.filter (fun s -> s <> "") (String.split_on_char '/' pattern)
  in
  let fsegs = String.split_on_char '/' file in
  if psegs = [] then false
  else begin
    let rec run ps fs =
      match (ps, fs) with
      | [], _ -> true
      | [ p ], f :: _ ->
          String.equal p f || String.equal p (Filename.remove_extension f)
      | p :: ps', f :: fs' -> String.equal p f && run ps' fs'
      | _ :: _, [] -> false
    in
    let rec scan fs =
      run psegs fs || match fs with [] -> false | _ :: tl -> scan tl
    in
    scan fsegs
  end

let allowlist_of_lines lines =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if String.length line = 0 || line.[0] = '#' then None
      else
        match String.split_on_char ' ' line with
        | rule :: path :: _ when path <> "" -> Some (rule, path)
        | _ -> None)
    lines

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let load_allowlist path =
  if not (Sys.file_exists path) then [] else allowlist_of_lines (read_lines path)

let rule_matches ~prefix rule = String.starts_with ~prefix rule

let allowlisted allowlist ~rule ~file =
  List.exists
    (fun (p, pattern) -> rule_matches ~prefix:p rule && path_matches ~pattern file)
    allowlist

(* ---------- baseline ---------- *)

(* A baseline entry identifies a tolerated pre-existing finding by
   (rule, file, message) — line/col are deliberately ignored so the
   baseline survives unrelated edits that shift code around. CI filters
   baselined findings out and fails only on what is left: new findings. *)

type baseline = (string * string * string) list

let empty_baseline = []

let baseline_of_lines lines =
  List.filter_map
    (fun line ->
      if String.length (String.trim line) = 0 || (String.trim line).[0] = '#'
      then None
      else
        match String.split_on_char '\t' line with
        | [ rule; file; message ] -> Some (rule, file, message)
        | _ -> None)
    lines

let load_baseline path =
  if not (Sys.file_exists path) then []
  else baseline_of_lines (read_lines path)

let baseline_header =
  [
    "# bplint baseline: tolerated pre-existing findings, one per line as";
    "# RULE<TAB>FILE<TAB>MESSAGE (line/col intentionally omitted so the";
    "# baseline survives unrelated code motion). CI subtracts these and";
    "# fails only on findings not listed here. Regenerate with";
    "#   bplint --root . --allowlist tools/bplint/bplint.allow \\";
    "#          --baseline tools/bplint/lint-baseline --update-baseline";
    "# Keep this file empty: fix findings or allowlist them with a";
    "# justification instead of baselining new debt.";
  ]

let baseline_lines diags =
  baseline_header
  @ List.map (fun d -> Printf.sprintf "%s\t%s\t%s" d.rule d.file d.message) diags

let filter_baseline baseline diags =
  List.filter
    (fun d ->
      not
        (List.exists
           (fun (rule, file, message) ->
             String.equal rule d.rule && String.equal file d.file
             && String.equal message d.message)
           baseline))
    diags

(* ---------- attribute helpers ---------- *)

let allows_of_attributes (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if not (String.equal a.Parsetree.attr_name.Location.txt "bplint.allow")
      then []
      else
        match a.Parsetree.attr_payload with
        | Parsetree.PStr
            [
              {
                Parsetree.pstr_desc =
                  Parsetree.Pstr_eval
                    ( {
                        Parsetree.pexp_desc =
                          Parsetree.Pexp_constant
                            (Parsetree.Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
            String.split_on_char ' ' s
            |> List.concat_map (String.split_on_char ',')
            |> List.filter (fun r -> r <> "")
        | _ -> [])
    attrs

let has_attribute name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.Parsetree.attr_name.Location.txt name)
    attrs
