(* Cross-module call graph over the .cmt files dune produced.

   Nodes are module-level value bindings, named by their normalized
   qualified path ("Bp_crypto.Verify_batch.submit"); an edge caller ->
   callee is recorded for every identifier referenced anywhere in the
   caller's body (including from local closures — a deliberate
   over-approximation: if the body mentions a function, a pool job built
   from that body may run it). Wrapped-library name mangling is undone
   by [normalize_name], so "Bp_crypto__Signer.verify" and
   "Bp_crypto.Signer.verify" denote the same node.

   What the graph does not see: closures passed through parameters or
   record fields (e.g. Runner.run_plan's task list) — calls made through
   those are attributed to the function that *constructed* the closure,
   not to the caller that eventually invokes it, which is exactly the
   attribution the parallel-purity passes want. *)

(* Undo dune's wrapped-library mangling: "Lib__Module" -> "Lib.Module".
   Only a "__" followed by an uppercase letter is a module separator;
   user identifiers containing "__" (none in this tree) are left alone. *)
let normalize_name name =
  let n = String.length name in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if
      !i + 2 < n
      && name.[!i] = '_'
      && name.[!i + 1] = '_'
      && name.[!i + 2] >= 'A'
      && name.[!i + 2] <= 'Z'
    then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* ---------- module-level bindings ---------- *)

let rec module_structure (me : Typedtree.module_expr) =
  match me.Typedtree.mod_desc with
  | Typedtree.Tmod_structure s -> Some s
  | Typedtree.Tmod_constraint (inner, _, _, _) -> module_structure inner
  | _ -> None

let rec bindings_of_structure ~prefix (str : Typedtree.structure) =
  List.concat_map
    (fun (si : Typedtree.structure_item) ->
      match si.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
          List.filter_map
            (fun (vb : Typedtree.value_binding) ->
              match vb.Typedtree.vb_pat.Typedtree.pat_desc with
              | Typedtree.Tpat_var (id, _) ->
                  Some (id, prefix ^ "." ^ Ident.name id, vb)
              | _ -> None)
            vbs
      | Typedtree.Tstr_module mb -> bindings_of_module ~prefix mb
      | Typedtree.Tstr_recmodule mbs ->
          List.concat_map (bindings_of_module ~prefix) mbs
      | _ -> [])
    str.Typedtree.str_items

and bindings_of_module ~prefix (mb : Typedtree.module_binding) =
  match (mb.Typedtree.mb_id, module_structure mb.Typedtree.mb_expr) with
  | Some id, Some inner ->
      bindings_of_structure ~prefix:(prefix ^ "." ^ Ident.name id) inner
  | _ -> []

let local_defs ~modname str =
  List.map (fun (id, qual, _) -> (id, qual)) (bindings_of_structure ~prefix:modname str)

let qualify ~locals path =
  match path with
  | Path.Pident id ->
      List.find_map
        (fun (i, qual) -> if Ident.same i id then Some qual else None)
        locals
  | _ -> Some (normalize_name (Path.name path))

let expr_callees ~locals (e : Typedtree.expression) =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      Tast_iterator.expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (path, _, _) -> (
              match qualify ~locals path with
              | Some name -> acc := name :: !acc
              | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.Tast_iterator.expr sub e);
    }
  in
  it.Tast_iterator.expr it e;
  List.sort_uniq String.compare !acc

(* ---------- the graph ---------- *)

type t = {
  defs : (string, string list) Hashtbl.t; (* name -> sorted callees *)
  pure : (string, unit) Hashtbl.t; (* [@bplint.parallel_pure] bindings *)
  mutable n_edges : int;
}

let empty = { defs = Hashtbl.create 1; pure = Hashtbl.create 1; n_edges = 0 }

let add_structure t ~modname str =
  let bindings = bindings_of_structure ~prefix:modname str in
  let locals = List.map (fun (id, qual, _) -> (id, qual)) bindings in
  List.iter
    (fun (_, qual, (vb : Typedtree.value_binding)) ->
      if Lint_diag.has_attribute "bplint.parallel_pure" vb.Typedtree.vb_attributes
      then Hashtbl.replace t.pure qual ();
      let callees =
        expr_callees ~locals vb.Typedtree.vb_expr
        |> List.filter (fun c -> not (String.equal c qual))
      in
      let prev =
        match Hashtbl.find_opt t.defs qual with Some l -> l | None -> []
      in
      let merged = List.sort_uniq String.compare (prev @ callees) in
      t.n_edges <- t.n_edges - List.length prev + List.length merged;
      Hashtbl.replace t.defs qual merged)
    bindings

let build paths =
  let t =
    { defs = Hashtbl.create 512; pure = Hashtbl.create 16; n_edges = 0 }
  in
  List.iter
    (fun path ->
      match Cmt_format.read_cmt path with
      | exception _ -> ()
      | cmt -> (
          match cmt.Cmt_format.cmt_annots with
          | Cmt_format.Implementation str ->
              add_structure t
                ~modname:(normalize_name cmt.Cmt_format.cmt_modname)
                str
          | _ -> ()))
    paths;
  t

let callees t name =
  match Hashtbl.find_opt t.defs name with Some l -> l | None -> []

let is_pure t name = Hashtbl.mem t.pure name
let size t = (Hashtbl.length t.defs, t.n_edges)

(* ---------- reachability ---------- *)

let find_forbidden t ~roots ~forbidden =
  let parent : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if not (Hashtbl.mem visited r) then begin
        Hashtbl.add visited r ();
        Queue.add r q
      end)
    roots;
  let result = ref None in
  while Option.is_none !result && not (Queue.is_empty q) do
    match Queue.take_opt q with
    | None -> ()
    | Some name ->
        if is_pure t name then
          (* Audited escape hatch: neither reported nor expanded. *)
          ()
        else begin
          match forbidden name with
          | Some reason ->
              let rec chain n acc =
                match Hashtbl.find_opt parent n with
                | Some p -> chain p (n :: acc)
                | None -> n :: acc
              in
              result := Some (chain name [], reason)
          | None ->
              List.iter
                (fun c ->
                  if not (Hashtbl.mem visited c) then begin
                    Hashtbl.add visited c ();
                    Hashtbl.replace parent c name;
                    Queue.add c q
                  end)
                (callees t name)
        end
  done;
  !result
