(* R6-domainescape / R7-parpure: the PR-6 parallel-verification
   discipline (DESIGN.md §5.11), statically enforced.

   Both passes start from the same place: the closures that actually run
   on pool worker domains. A *task* is a unit-argument closure
   ([fun () -> ...]) that flows into an argument of one of the fan-out
   entry points (Pool.submit/run/map and the Verify_batch wrappers).
   "Flows into" is a small intra-item slice: starting from the argument
   expressions we follow let-bound identifiers of the same structure
   item and the right-hand sides of [r := ...] assignments (so thunks
   accumulated through a list ref, as Verify_batch.submit does, are
   found), but we do not enter non-unit closures (a [fun r -> Keyed
   {...}] job-data builder runs on the calling domain, not a worker) and
   we do not follow parameters or module-level functions (a task list
   received as an argument is the submitting caller's to prove).

   R6-domainescape then checks each task body for captured mutable
   state: reads of refs that are not submitting-scope snapshots, any
   write to a captured ref / mutable record field / Hashtbl / Buffer /
   Bytes / Array, any Hashtbl or Buffer access at all (hashtables and
   buffers are never recognized snapshots), and — for the asynchronous
   fan-outs, where a submit→join window exists — mutations of captured
   state *after* the submit call.

   R7-parpure collects the functions a task body references and walks
   the cross-module call graph (Lint_graph) looking for
   protocol-domain-only operations: Verify_cache access, Signer keystore
   access (only [verify_key] is domain-safe), network sends, the
   simulator engine/clock, Random / shared Rng streams, wall clocks.
   A binding carrying [@@bplint.parallel_pure] is an audited exemption:
   the walk neither reports nor expands it. *)

type report_fn =
  rule:string -> loc:Location.t -> allows:string list -> string -> unit

let rules = [ "R6-domainescape"; "R7-parpure" ]

(* Entry points that fan work out to pool domains. Calls inside the
   defining modules resolve to local idents; [qualify] names those the
   same way, so the set needs only the canonical spellings. *)
let fanout_fns =
  [
    "Bp_parallel.Pool.submit";
    "Bp_parallel.Pool.run";
    "Bp_parallel.Pool.map";
    "Bp_crypto.Verify_batch.submit";
    "Bp_crypto.Verify_batch.verify";
    "Bp_crypto.Verify_batch.verify_one";
  ]

(* The subset with a submit→join window during which the submitting
   domain keeps running: only these get the post-submit-write check
   (after Pool.run/map return, the join has already happened). *)
let async_fanout_fns = [ "Bp_parallel.Pool.submit"; "Bp_crypto.Verify_batch.submit" ]

(* ---------- R7 forbidden set ---------- *)

let parallel_safe = [ "Bp_crypto.Signer.verify_key" ]

let forbidden_prefixes =
  [
    ( "Bp_crypto.Verify_cache.",
      "the verify cache is protocol-domain state: probe before fan-out, \
       record after the join" );
    ( "Bp_crypto.Signer.",
      "the keystore is protocol-domain state: snapshot keys before submit; \
       workers may only run Signer.verify_key" );
    ("Bp_net.", "network access from a pool job");
    ("Bp_sim.Network.", "simulated network access from a pool job");
    ("Bp_sim.Engine.", "simulator engine/clock access from a pool job");
    ("Stdlib.Random.", "nondeterministic randomness in a pool job");
    ( "Bp_util.Rng.",
      "drawing from a shared Rng stream in a pool job makes the stream \
       depend on worker scheduling" );
  ]

let forbidden_exact =
  [
    ("Stdlib.Sys.time", "wall-clock read in a pool job");
    ("Unix.time", "wall-clock read in a pool job");
    ("Unix.gettimeofday", "wall-clock read in a pool job");
  ]

let forbidden_reason name =
  if List.mem name parallel_safe then None
  else
    match List.assoc_opt name forbidden_exact with
    | Some r -> Some r
    | None ->
        List.find_map
          (fun (p, r) ->
            if String.starts_with ~prefix:p name then Some r else None)
          forbidden_prefixes

(* ---------- small typedtree helpers ---------- *)

let is_unit_closure (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function { cases = [ c ]; _ } -> (
      match c.Typedtree.c_lhs.Typedtree.pat_desc with
      | Typedtree.Tpat_construct (_, cstr, [], _) ->
          String.equal cstr.Types.cstr_name "()"
      | _ -> false)
  | _ -> false

let closure_body (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_function { cases = [ c ]; _ } -> Some c.Typedtree.c_rhs
  | _ -> None

(* The identifier at the root of an access path: [x], [x.f.g],
   [(x.f).g] ... Local idents are returned as the ident, module-level
   paths as their normalized name. *)
let rec access_root (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> Some (`Local id)
  | Typedtree.Texp_ident (p, _, _) ->
      Some (`Global (Lint_graph.normalize_name (Path.name p)))
  | Typedtree.Texp_field (inner, _, _) -> access_root inner
  | _ -> None

let positional_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some (a : Typedtree.expression) -> Some a | _ -> None)
    args

let ident_key id = Ident.unique_name id

(* Stdlib mutators whose first positional argument is the mutated
   structure. Hashtbl and Buffer additionally have their *reads* flagged
   inside tasks (handled separately): neither is ever a snapshot. *)
let array_mutators =
  [ "set"; "unsafe_set"; "fill"; "blit"; "sort"; "stable_sort"; "fast_sort" ]

let bytes_mutators = [ "set"; "unsafe_set"; "fill"; "blit"; "blit_string" ]

let module_fn ~m name =
  let prefix = "Stdlib." ^ m ^ "." in
  if String.starts_with ~prefix name then
    Some (String.sub name (String.length prefix) (String.length name - String.length prefix))
  else None

(* ---------- per-structure-item tables ---------- *)

type item_tables = {
  let_defs : (string, Typedtree.expression list) Hashtbl.t;
      (* ident -> binding exprs (all lets anywhere in the item) *)
  ref_assigns : (string, Typedtree.expression list) Hashtbl.t;
      (* ident -> RHS exprs of [ident := ...] *)
  mutable mutations : (string * Location.t * string) list;
      (* ident -> write sites in the item (for the post-submit check) *)
}

let table_add tbl key v =
  let prev = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
  Hashtbl.replace tbl key (v :: prev)

let collect_tables (si : Typedtree.structure_item) =
  let t =
    {
      let_defs = Hashtbl.create 32;
      ref_assigns = Hashtbl.create 8;
      mutations = [];
    }
  in
  let note_mutation id loc what =
    t.mutations <- (ident_key id, loc, what) :: t.mutations
  in
  let on_expr (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_setfield (obj, _, label, _) -> (
        match access_root obj with
        | Some (`Local id) ->
            note_mutation id e.Typedtree.exp_loc
              ("<- on field " ^ label.Types.lbl_name)
        | _ -> ())
    | Typedtree.Texp_apply (fn, args) -> (
        match fn.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            let q = Path.name p in
            let pos = positional_args args in
            let root_of_first () =
              match pos with a :: _ -> access_root a | [] -> None
            in
            match q with
            | "Stdlib.:=" -> (
                match pos with
                | [ lhs; rhs ] -> (
                    match access_root lhs with
                    | Some (`Local id) ->
                        table_add t.ref_assigns (ident_key id) rhs;
                        note_mutation id e.Typedtree.exp_loc ":="
                    | _ -> ())
                | _ -> ())
            | "Stdlib.incr" | "Stdlib.decr" -> (
                match root_of_first () with
                | Some (`Local id) ->
                    note_mutation id e.Typedtree.exp_loc
                      (Filename.extension q)
                | _ -> ())
            | _ -> (
                let flag_if mutators m =
                  match module_fn ~m q with
                  | Some fn_name when List.mem fn_name mutators -> (
                      match root_of_first () with
                      | Some (`Local id) ->
                          note_mutation id e.Typedtree.exp_loc q
                      | _ -> ())
                  | _ -> ()
                in
                flag_if array_mutators "Array";
                flag_if bytes_mutators "Bytes";
                (match module_fn ~m:"Hashtbl" q with
                | Some ("hash" | "seeded_hash" | "create" | "is_randomized") | None
                  ->
                    ()
                | Some _ -> (
                    match root_of_first () with
                    | Some (`Local id) ->
                        note_mutation id e.Typedtree.exp_loc q
                    | _ -> ()));
                match module_fn ~m:"Buffer" q with
                | Some "create" | None -> ()
                | Some _ -> (
                    match root_of_first () with
                    | Some (`Local id) ->
                        note_mutation id e.Typedtree.exp_loc q
                    | _ -> ())))
        | _ -> ())
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      Tast_iterator.expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_let (_, vbs, _) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match vb.Typedtree.vb_pat.Typedtree.pat_desc with
                  | Typedtree.Tpat_var (id, _) ->
                      table_add t.let_defs (ident_key id) vb.Typedtree.vb_expr
                  | _ -> ())
                vbs
          | _ -> ());
          on_expr e;
          Tast_iterator.default_iterator.Tast_iterator.expr sub e);
      Tast_iterator.structure_item =
        (fun sub si ->
          (match si.Typedtree.str_desc with
          | Typedtree.Tstr_value (_, vbs) ->
              List.iter
                (fun (vb : Typedtree.value_binding) ->
                  match vb.Typedtree.vb_pat.Typedtree.pat_desc with
                  | Typedtree.Tpat_var (id, _) ->
                      table_add t.let_defs (ident_key id) vb.Typedtree.vb_expr
                  | _ -> ())
                vbs
          | _ -> ());
          Tast_iterator.default_iterator.Tast_iterator.structure_item sub si);
    }
  in
  it.Tast_iterator.structure_item it si;
  t

(* ---------- fan-out sites ---------- *)

type fanout = {
  f_name : string;
  f_loc : Location.t;
  f_args : Typedtree.expression list;
  f_allows : string list; (* [@bplint.allow] prefixes in force at the site *)
}

let collect_fanouts ~locals (si : Typedtree.structure_item) =
  let sites = ref [] in
  let stack = ref [] in
  let with_allows attrs k =
    let saved = !stack in
    stack := Lint_diag.allows_of_attributes attrs @ saved;
    k ();
    stack := saved
  in
  let it =
    {
      Tast_iterator.default_iterator with
      Tast_iterator.expr =
        (fun sub e ->
          with_allows e.Typedtree.exp_attributes (fun () ->
              (match e.Typedtree.exp_desc with
              | Typedtree.Texp_apply (fn, args) -> (
                  match fn.Typedtree.exp_desc with
                  | Typedtree.Texp_ident (p, _, _) -> (
                      match Lint_graph.qualify ~locals p with
                      | Some name when List.mem name fanout_fns ->
                          sites :=
                            {
                              f_name = name;
                              f_loc = e.Typedtree.exp_loc;
                              f_args = positional_args args;
                              f_allows = !stack;
                            }
                            :: !sites
                      | _ -> ())
                  | _ -> ())
              | _ -> ());
              Tast_iterator.default_iterator.Tast_iterator.expr sub e));
      Tast_iterator.value_binding =
        (fun sub vb ->
          with_allows vb.Typedtree.vb_attributes (fun () ->
              Tast_iterator.default_iterator.Tast_iterator.value_binding sub vb));
    }
  in
  it.Tast_iterator.structure_item it si;
  List.rev !sites

(* ---------- the argument slice ---------- *)

let slice_tasks tables args =
  let visited : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let tasks = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      Tast_iterator.expr =
        (fun sub e ->
          if is_unit_closure e then tasks := e :: !tasks
          else
            match e.Typedtree.exp_desc with
            | Typedtree.Texp_function _ ->
                (* A non-unit closure in a fan-out argument builds job
                   *data* on the calling domain; it is not a task and
                   may legitimately touch protocol-domain state. *)
                ()
            | Typedtree.Texp_ident (Path.Pident id, _, _) ->
                let k = ident_key id in
                if not (Hashtbl.mem visited k) then begin
                  Hashtbl.add visited k ();
                  let follow tbl =
                    match Hashtbl.find_opt tbl k with
                    | Some exprs ->
                        List.iter (fun e' -> sub.Tast_iterator.expr sub e') exprs
                    | None -> ()
                  in
                  follow tables.let_defs;
                  follow tables.ref_assigns
                end
            | _ -> Tast_iterator.default_iterator.Tast_iterator.expr sub e);
    }
  in
  List.iter (fun a -> it.Tast_iterator.expr it a) args;
  List.rev !tasks

(* ---------- R6: the task-body escape check ---------- *)

(* Idents bound anywhere inside the task (parameters of inner closures,
   local lets, match bindings): accesses to those are job-local. *)
let bound_idents (e : Typedtree.expression) =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit
      =
   fun sub p ->
    (match p.Typedtree.pat_desc with
    | Typedtree.Tpat_var (id, _) -> Hashtbl.replace bound (ident_key id) ()
    | Typedtree.Tpat_alias (_, id, _) -> Hashtbl.replace bound (ident_key id) ()
    | _ -> ());
    Tast_iterator.default_iterator.Tast_iterator.pat sub p
  in
  let it = { Tast_iterator.default_iterator with Tast_iterator.pat } in
  it.Tast_iterator.expr it e;
  bound

let check_task_r6 ~report ~tables ~task_allows ~captured task =
  let body = match closure_body task with Some b -> b | None -> task in
  let bound = bound_idents task in
  let is_captured id = not (Hashtbl.mem bound (ident_key id)) in
  let stack = ref [] in
  let emit ~loc msg =
    report ~rule:"R6-domainescape" ~loc ~allows:(!stack @ task_allows) msg
  in
  let with_allows attrs k =
    let saved = !stack in
    stack := Lint_diag.allows_of_attributes attrs @ saved;
    k ();
    stack := saved
  in
  let snapshot_read id =
    (* A captured ref may be read iff it was let-bound in the submitting
       structure item — i.e. constructed in the submitting scope. Writes
       after submit are reported separately, at the write site. *)
    Hashtbl.mem tables.let_defs (ident_key id)
  in
  let on_expr (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) ->
        if is_captured id then Hashtbl.replace captured (ident_key id) ()
    | _ -> ());
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_setfield (obj, _, label, _) -> (
        match access_root obj with
        | Some (`Local id) when is_captured id ->
            emit ~loc:e.Typedtree.exp_loc
              (Printf.sprintf
                 "pool job mutates field %s of captured '%s'; jobs must \
                  capture immutable snapshots and publish results only \
                  through the join"
                 label.Types.lbl_name (Ident.name id))
        | Some (`Global g) ->
            emit ~loc:e.Typedtree.exp_loc
              (Printf.sprintf
                 "pool job mutates field %s of module-level state %s"
                 label.Types.lbl_name g)
        | _ -> ())
    | Typedtree.Texp_apply (fn, args) -> (
        match fn.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
            let q = Path.name p in
            let pos = positional_args args in
            let first_root () =
              match pos with a :: _ -> access_root a | [] -> None
            in
            match q with
            | "Stdlib.!" -> (
                match first_root () with
                | Some (`Local id) when is_captured id ->
                    if not (snapshot_read id) then
                      emit ~loc:e.Typedtree.exp_loc
                        (Printf.sprintf
                           "pool job reads captured ref '%s' that is not a \
                            snapshot constructed in the submitting scope"
                           (Ident.name id))
                | Some (`Global g) ->
                    emit ~loc:e.Typedtree.exp_loc
                      (Printf.sprintf
                         "pool job reads module-level mutable ref %s" g)
                | _ -> ())
            | "Stdlib.:=" | "Stdlib.incr" | "Stdlib.decr" -> (
                match first_root () with
                | Some (`Local id) when is_captured id ->
                    emit ~loc:e.Typedtree.exp_loc
                      (Printf.sprintf "pool job writes captured ref '%s'"
                         (Ident.name id))
                | Some (`Global g) ->
                    emit ~loc:e.Typedtree.exp_loc
                      (Printf.sprintf
                         "pool job writes module-level mutable ref %s" g)
                | _ -> ())
            | _ -> (
                let offender () =
                  match first_root () with
                  | Some (`Local id) when is_captured id ->
                      Some ("captured '" ^ Ident.name id ^ "'")
                  | Some (`Global g) -> Some ("module-level " ^ g)
                  | _ -> None
                in
                (match module_fn ~m:"Hashtbl" q with
                | Some ("hash" | "seeded_hash" | "create" | "is_randomized")
                | None ->
                    ()
                | Some _ -> (
                    match offender () with
                    | Some who ->
                        emit ~loc:e.Typedtree.exp_loc
                          (Printf.sprintf
                             "pool job calls %s on %s; a hashtable is never \
                              a recognized snapshot — copy it to an \
                              immutable structure before submit"
                             q who)
                    | None -> ()));
                (match module_fn ~m:"Buffer" q with
                | Some "create" | None -> ()
                | Some _ -> (
                    match offender () with
                    | Some who ->
                        emit ~loc:e.Typedtree.exp_loc
                          (Printf.sprintf "pool job calls %s on %s" q who)
                    | None -> ()));
                let flag_writes mutators m =
                  match module_fn ~m q with
                  | Some fn_name when List.mem fn_name mutators -> (
                      match offender () with
                      | Some who ->
                          emit ~loc:e.Typedtree.exp_loc
                            (Printf.sprintf "pool job calls %s on %s" q who)
                      | None -> ())
                  | _ -> ()
                in
                flag_writes array_mutators "Array";
                flag_writes bytes_mutators "Bytes"))
        | _ -> ())
    | _ -> ()
  in
  let it =
    {
      Tast_iterator.default_iterator with
      Tast_iterator.expr =
        (fun sub e ->
          with_allows e.Typedtree.exp_attributes (fun () ->
              on_expr e;
              Tast_iterator.default_iterator.Tast_iterator.expr sub e));
      Tast_iterator.value_binding =
        (fun sub vb ->
          with_allows vb.Typedtree.vb_attributes (fun () ->
              Tast_iterator.default_iterator.Tast_iterator.value_binding sub vb));
    }
  in
  it.Tast_iterator.expr it body

(* ---------- R7: reachability from the task body ---------- *)

let check_task_r7 ~report ~graph ~locals ~task_allows task =
  let body = match closure_body task with Some b -> b | None -> task in
  let roots = Lint_graph.expr_callees ~locals body in
  match Lint_graph.find_forbidden graph ~roots ~forbidden:forbidden_reason with
  | None -> ()
  | Some (chain, reason) ->
      let target =
        match List.rev chain with t :: _ -> t | [] -> "<unknown>"
      in
      let via =
        match chain with
        | [] | [ _ ] -> ""
        | _ -> " (call path: " ^ String.concat " -> " chain ^ ")"
      in
      report ~rule:"R7-parpure" ~loc:task.Typedtree.exp_loc
        ~allows:task_allows
        (Printf.sprintf "pool job reaches %s: %s%s" target reason via)

(* ---------- driver ---------- *)

let after (loc : Location.t) (site : Location.t) =
  loc.Location.loc_start.Lexing.pos_cnum
  > site.Location.loc_end.Lexing.pos_cnum

let check_item ~report ~graph ~locals (si : Typedtree.structure_item) =
  let fanouts = collect_fanouts ~locals si in
  if fanouts <> [] then begin
    let tables = collect_tables si in
    List.iter
      (fun f ->
        let tasks = slice_tasks tables f.f_args in
        let captured : (string, unit) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun task ->
            let task_allows =
              Lint_diag.allows_of_attributes task.Typedtree.exp_attributes
              @ f.f_allows
            in
            check_task_r6 ~report ~tables ~task_allows ~captured task;
            check_task_r7 ~report ~graph ~locals ~task_allows task)
          tasks;
        if List.mem f.f_name async_fanout_fns then
          List.iter
            (fun (key, mloc, what) ->
              if Hashtbl.mem captured key && after mloc f.f_loc then
                report ~rule:"R6-domainescape" ~loc:mloc ~allows:f.f_allows
                  (Printf.sprintf
                     "state captured by a pool job is mutated (%s) after \
                      the submit call; jobs capture snapshots — mutate \
                      only after the join"
                     what))
            (List.rev tables.mutations))
      fanouts
  end

let check ~report ~graph ~modname (str : Typedtree.structure) =
  let locals = Lint_graph.local_defs ~modname str in
  List.iter (check_item ~report ~graph ~locals) str.Typedtree.str_items
