(* Fixture: R2-nondet and R2-hiter. Nondeterminism escape hatches. *)

let reseed () = Random.self_init ()
let wall_clock () = Sys.time ()
let randomized_table () : (int, int) Hashtbl.t = Hashtbl.create ~random:true 16

(* Order-dependent iteration: flagged. *)
let sum_values (h : (int, int) Hashtbl.t) =
  Hashtbl.fold (fun _ v acc -> v + acc) h 0

(* Same construct under a site-level allow: must NOT be flagged. *)
let cancel_all (h : (int, unit -> unit) Hashtbl.t) =
  (Hashtbl.iter (fun _ f -> f ()) h [@bplint.allow "R2-hiter"])

(* Multicore primitives outside lib/parallel: all three flagged. *)
let fork_work () = Domain.spawn (fun () -> 42)
let shared_flag () = Atomic.make false
let fresh_lock () = Mutex.create ()

(* Same family under a site-level allow: must NOT be flagged. *)
let allowed_condvar () = (Condition.create () [@bplint.allow "R2-domain"])
