(* R7-parpure fixtures: pool jobs that reach protocol-domain-only
   operations (verify-cache access, keystore mutation, Random) directly
   or through call chains, each paired with a clean twin. Never
   executed. *)

open Bp_parallel

(* BAD: records a verify-cache verdict inside a pool job — the cache is
   protocol-domain state; record belongs after the join. *)
let bad_cache_record cache =
  Pool.map ~jobs:2
    [
      (fun () ->
        Bp_crypto.Verify_cache.record cache ~signer:"a" ~msg:"m"
          ~signature:"s" ~verdict:true);
    ]

(* BAD: mutates the keystore inside a pool job. *)
let bad_keystore ks =
  Pool.map ~jobs:2 [ (fun () -> Bp_crypto.Signer.add_identity ks "node9") ]

(* A same-module hop on the way to the helper module's leak. *)
let mix_step n = Fx_r7_helper.leaky_hop n

(* BAD: Random is reachable only through two call hops
   (mix_step -> Fx_r7_helper.leaky_hop -> leaky_entropy -> Random.int);
   only the cross-module call graph can see this. *)
let bad_two_hops () = Pool.map ~jobs:2 [ (fun () -> mix_step 3) ]

(* BAD: the forbidden call sits one module away. *)
let bad_cross_module () =
  Pool.map ~jobs:2 [ (fun () -> Fx_r7_helper.leaky_entropy 1) ]

(* OK: pure arithmetic across the same module boundary. *)
let good_pure_math () =
  Pool.map ~jobs:2 [ (fun () -> Fx_r7_helper.pure_mix 1 2) ]

(* OK: the cache is probed before fan-out on the calling domain; the job
   only captures the immutable verdict. *)
let good_cache_prehit cache =
  let hit =
    Bp_crypto.Verify_cache.probe cache ~signer:"a" ~msg:"m" ~signature:"s"
  in
  Pool.map ~jobs:2
    [ (fun () -> match hit with Some v -> v | None -> false) ]

(* The audited escape hatch: reviewed, deliberately exempt. *)
let audited_mixer n = Random.int (n + 1) [@@bplint.parallel_pure]

(* OK: the annotated binding is neither reported nor expanded. *)
let good_annotated () = Pool.map ~jobs:2 [ (fun () -> audited_mixer 3) ]
