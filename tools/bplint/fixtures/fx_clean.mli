val equal_ints : int -> int -> bool
val compare_strings : string -> string -> int
val safe_head : 'a list -> 'a option
val sorted_bindings : (int, string) Hashtbl.t -> (int * string) list
val parse_int : string -> int option
