(* Helpers for the R7-parpure fixtures: the interesting cases reach the
   forbidden operation across a module boundary, which only the
   cross-module call graph can see. *)

let pure_mix a b = (a * 31) + b

(* Protocol-domain-only: draws from Random. *)
let leaky_entropy n = Random.int (n + 1)

(* One more hop of indirection on the way to Random. *)
let leaky_hop n = leaky_entropy n
