(* Fixture: R3-partial and R3-catchall. Partial functions and swallowed
   exceptions on paths that must distinguish "malformed input" from bugs. *)

let force (o : int option) = Option.get o
let first (l : int list) = List.hd l

let swallow (s : string) = try int_of_string s with _ -> 0

(* Matching a specific exception is fine and must NOT be flagged. *)
let handled (s : string) = try int_of_string s with Failure _ -> 0
