(* Fixture: clean module. Every rule enabled must produce zero findings. *)

let equal_ints (a : int) (b : int) = a = b
let compare_strings (a : string) (b : string) = String.compare a b
let safe_head = function [] -> None | x :: _ -> Some x

let sorted_bindings (h : (int, string) Hashtbl.t) =
  (* Deterministic alternative to Hashtbl.fold: the table is only read
     through find_opt here. *)
  List.filter_map
    (fun k -> Option.map (fun v -> (k, v)) (Hashtbl.find_opt h k))
    [ 0; 1; 2; 3 ]

let parse_int (s : string) = try Some (int_of_string s) with Failure _ -> None
