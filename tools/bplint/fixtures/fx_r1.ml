(* Fixture: R1-polycmp. Polymorphic comparison at non-primitive types. *)

type pair = { left : int; right : string }

let equal_pairs (a : pair) (b : pair) = a = b
let order (a : pair) (b : pair) = compare a b
let hash_pair (p : pair) = Hashtbl.hash p
let member (p : pair) (l : pair list) = List.mem p l

(* Primitive uses are fine and must NOT be flagged. *)
let equal_ints (a : int) (b : int) = a = b
let sort_ints (l : int list) = List.sort compare l
