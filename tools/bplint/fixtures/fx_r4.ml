(* Fixture: R4-print (and, having no .mli, R4-mli). *)

let shout (msg : string) = print_endline msg
let report_count (n : int) = Printf.printf "count=%d\n" n
