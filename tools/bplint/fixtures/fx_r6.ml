(* R6-domainescape fixtures: closures handed to the domain pool that
   capture mutable state, each paired with a clean twin showing the
   sanctioned snapshot-at-submit shape. Nothing here is ever executed —
   pools are only created inside function bodies that no test calls. *)

open Bp_parallel

let shared_counter = ref 0
let shared_tbl : (string, int) Hashtbl.t = Hashtbl.create 16

type cell = { mutable value : int }

(* BAD: the job reads a module-level ref — not a submitting-scope
   snapshot; another domain (or the submitter) may write it meanwhile. *)
let bad_ref_read () = Pool.map ~jobs:2 [ (fun () -> !shared_counter) ]

(* BAD: the job writes a captured mutable record field. *)
let bad_field_write c = Pool.map ~jobs:2 [ (fun () -> c.value <- 1) ]

(* BAD: the job reads a captured hashtable; hashtables are never a
   recognized snapshot. *)
let bad_hashtbl_read () =
  Pool.map ~jobs:2 [ (fun () -> Hashtbl.find_opt shared_tbl "k") ]

(* BAD: the captured ref is written between submit and join. *)
let bad_post_submit_write pool =
  let acc = ref 1 in
  let h = Pool.submit pool [ (fun () -> !acc) ] in
  acc := 2;
  Pool.await h

(* BAD: thunks accumulated through a list ref (the Verify_batch.submit
   shape) are still sliced — the leaky closure inside is found. *)
let bad_accumulated_thunks pool =
  let pending = ref [] in
  pending := (fun () -> !shared_counter) :: !pending;
  let thunks = List.rev !pending in
  Pool.run pool thunks

(* OK: capture an immutable snapshot of the value, taken before submit. *)
let good_value_snapshot () =
  let v = !shared_counter in
  Pool.map ~jobs:2 [ (fun () -> v + 1) ]

(* OK: a ref constructed in the submitting scope and never written after
   the submit call is a recognized snapshot. *)
let good_local_ref pool =
  let acc = ref 5 in
  let h = Pool.submit pool [ (fun () -> !acc) ] in
  Pool.await h

(* OK: job-local mutable state never escapes the worker. *)
let good_job_local_state () =
  Pool.map ~jobs:2
    [
      (fun () ->
        let c = ref 0 in
        incr c;
        !c);
    ]

(* OK: the hashtable is copied to an immutable list before submit. *)
let good_tbl_snapshot () =
  let snap =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) shared_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Pool.map ~jobs:2 [ (fun () -> List.length snap) ]

(* Excused: an audited exception, suppressed at the site. *)
let excused_ref_read () =
  Pool.map ~jobs:2
    [ (fun () -> !shared_counter) [@bplint.allow "R6-domainescape"] ]
