(* Fixture: R5-rawverify. Signature verification outside lib/crypto must
   go through Verify_cache; a bare Signer.verify is flagged. *)

let raw keystore ~signer ~msg ~signature =
  Bp_crypto.Signer.verify keystore ~signer ~msg ~signature

(* The sanctioned spellings must NOT be flagged. *)
let cached cache ~signer ~msg ~signature =
  Bp_crypto.Verify_cache.verify cache ~signer ~msg ~signature

let uncached keystore ~signer ~msg ~signature =
  Bp_crypto.Verify_cache.verify_uncached keystore ~signer ~msg ~signature

(* Site-level escape hatch: suppressed by the allow attribute. *)
let excused keystore ~signer ~msg ~signature =
  (Bp_crypto.Signer.verify keystore ~signer ~msg ~signature
  [@bplint.allow "R5-rawverify"])
