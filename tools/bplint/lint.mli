(** [bplint]: repo-specific static analysis over the typed [.cmt] ASTs that
    dune produces for every library.

    Blockplane's correctness argument rests on deterministic, replayable
    state-machine replication: every replica must make the same decision
    from the same log, and simulator experiments must be byte-reproducible.
    These rules machine-check the hazards that previously had to be caught
    by hand in review:

    - [R1-polycmp]: polymorphic [compare]/[=]/[Hashtbl.hash] (and the
      [List.mem]/[List.assoc] family, which call them internally) applied
      at a non-primitive type. Slow on the hot path, and order/structure
      sensitive in ways monomorphic comparisons are not.
    - [R2-nondet]: nondeterminism escape hatches anywhere in [lib/]:
      [Random.*], [Sys.time], [Unix.gettimeofday], [Hashtbl.randomize],
      [Hashtbl.create ~random:true].
    - [R2-hiter]: order-dependent [Hashtbl.iter]/[Hashtbl.fold] in protocol
      code, where iteration order can leak into protocol state.
    - [R2-domain]: multicore primitives ([Domain.*], [Atomic.*], [Mutex.*],
      [Condition.*]) outside [lib/parallel]. Replicas and the simulator are
      single-domain deterministic; the only shared-memory code allowed is
      the audited worker pool.
    - [R3-partial]: partial functions ([Option.get], [List.hd], [List.tl],
      [List.nth]) on verification/consensus paths.
    - [R3-catchall]: [try ... with _ ->] catch-alls that turn programming
      errors into silently-accepted "Byzantine" input.
    - [R4-print]: direct [print_*]/[Printf.printf]/[Format.printf] output
      from library code (libraries must use [Logs]).
    - [R4-mli]: a library module compiled without an [.mli].

    Suppression: a site can carry [[@bplint.allow "RULE ..."]] (on the
    expression or enclosing [let]); whole files can be excused in an
    allowlist file of [RULE path-substring] lines. *)

type diagnostic = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

val all_rules : string list
(** Every rule id known to the linter. *)

val to_string : diagnostic -> string
(** ["file:line:col: [rule] message"] — one line per finding. *)

type allowlist

val empty_allowlist : allowlist

val allowlist_of_lines : string list -> allowlist
(** Each non-empty, non-[#] line is [RULE path-substring] (trailing words
    are a free-form comment). [RULE] matches by prefix, so [R2] excuses
    both [R2-nondet] and [R2-hiter]. *)

val load_allowlist : string -> allowlist
(** Read an allowlist file from disk. Missing file = empty allowlist. *)

val policy : source:string -> string list
(** The repo policy: which rules apply to a source path (as recorded in the
    [.cmt], e.g. ["lib/pbft/replica.ml"]). Non-[lib/] paths get no rules. *)

val lint_cmt :
  ?allowlist:allowlist -> rules:string list -> string -> diagnostic list
(** [lint_cmt ~rules path] reads one [.cmt] file and returns the findings
    for the requested rules, already filtered through [allowlist] and any
    [[@bplint.allow]] attributes. Generated modules (dune's [*.ml-gen]
    alias modules) yield no findings. *)

val scan : ?allowlist:allowlist -> root:string -> unit -> diagnostic list
(** Walk [root]/lib for every [.cmt] dune produced, apply [policy] to each,
    and return all findings sorted by file/line. *)
