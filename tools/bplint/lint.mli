(** [bplint]: repo-specific static analysis over the typed [.cmt] ASTs that
    dune produces for every library.

    Blockplane's correctness argument rests on deterministic, replayable
    state-machine replication: every replica must make the same decision
    from the same log, and simulator experiments must be byte-reproducible.
    These rules machine-check the hazards that previously had to be caught
    by hand in review:

    - [R1-polycmp]: polymorphic [compare]/[=]/[Hashtbl.hash] (and the
      [List.mem]/[List.assoc] family, which call them internally) applied
      at a non-primitive type. Slow on the hot path, and order/structure
      sensitive in ways monomorphic comparisons are not.
    - [R2-nondet]: nondeterminism escape hatches: [Random.*], [Sys.time],
      [Unix.gettimeofday], [Hashtbl.randomize],
      [Hashtbl.create ~random:true].
    - [R2-hiter]: order-dependent [Hashtbl.iter]/[Hashtbl.fold] in protocol
      code, where iteration order can leak into protocol state.
    - [R2-domain]: multicore primitives ([Domain.*], [Atomic.*], [Mutex.*],
      [Condition.*]) outside [lib/parallel] and [lib/crypto/verify_batch].
      Replicas and the simulator are single-domain deterministic; the only
      shared-memory code allowed is the audited worker pool and the
      batched-verification wrapper on top of it.
    - [R3-partial]: partial functions ([Option.get], [List.hd], [List.tl],
      [List.nth]) on verification/consensus paths.
    - [R3-catchall]: [try ... with _ ->] catch-alls that turn programming
      errors into silently-accepted "Byzantine" input.
    - [R4-print]: direct [print_*]/[Printf.printf]/[Format.printf] output
      from library code (libraries must use [Logs]).
    - [R4-mli]: a library module compiled without an [.mli].
    - [R5-rawverify]: a bare [Signer.verify] outside [lib/crypto], which
      bypasses the verification cache and its invalidation discipline.
    - [R6-domainescape] (interprocedural): a closure submitted to the
      domain pool ([Pool.submit]/[run]/[map], the [Verify_batch] wrappers)
      captures mutable state that is not a submit-scope snapshot — ref
      reads/writes, mutable record fields, [Hashtbl]/[Buffer]/[Bytes]/
      [Array] access, or mutation of captured state after an asynchronous
      submit.
    - [R7-parpure] (interprocedural): a pool job reaches — through any
      chain of calls in the cross-module call graph — a
      protocol-domain-only operation: [Verify_cache] access, [Signer]
      keystore access (only [verify_key] is domain-safe), network sends,
      the simulator engine/clock, [Random]/shared [Rng] streams, wall
      clocks. [[@@bplint.parallel_pure]] on a binding is the audited
      escape hatch.

    Suppression: a site can carry [[@bplint.allow "RULE ..."]] (on the
    expression or enclosing [let]); whole files can be excused in an
    allowlist file of [RULE path-pattern] lines, where the pattern is
    anchored on whole path segments (see {!Lint_diag.path_matches}). *)

type diagnostic = Lint_diag.diagnostic = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

val all_rules : string list
(** Every rule id known to the linter. *)

val to_string : diagnostic -> string
(** ["file:line:col: [rule] message"] — one line per finding. *)

type allowlist = Lint_diag.allowlist

val empty_allowlist : allowlist

val allowlist_of_lines : string list -> allowlist
(** Each non-empty, non-[#] line is [RULE path-pattern] (trailing words
    are a free-form comment). [RULE] matches by prefix, so [R2] excuses
    both [R2-nondet] and [R2-hiter]; the pattern matches whole path
    segments, never substrings. *)

val load_allowlist : string -> allowlist
(** Read an allowlist file from disk. Missing file = empty allowlist. *)

type graph = Lint_graph.t
(** Cross-module call graph for the interprocedural rules (R6/R7). *)

val empty_graph : graph

val build_graph : string list -> graph
(** Build the call graph from a list of [.cmt] paths. *)

val graph_size : graph -> int * int
(** (definitions, edges). *)

val policy : source:string -> string list
(** The repo policy: which rules apply to a source path (as recorded in
    the [.cmt], e.g. ["lib/pbft/replica.ml"]). [lib/] gets the full
    per-directory matrix; [bench/], [bin/] and [tools/] get a baseline
    (determinism, totality, and the parallel-purity rules; [tools/]
    non-[main] modules also need an [.mli]); lint fixtures get none. *)

val lint_cmt :
  ?allowlist:allowlist ->
  ?graph:graph ->
  rules:string list ->
  string ->
  diagnostic list
(** [lint_cmt ~rules path] reads one [.cmt] file and returns the findings
    for the requested rules, already filtered through [allowlist] and any
    [[@bplint.allow]] attributes. R6/R7 need [graph] for multi-hop
    reachability (without it they still catch direct violations).
    Generated modules (dune's [*.ml-gen] alias modules) yield no
    findings. *)

type scan_stats = {
  files_scanned : int;
  graph_defs : int;
  graph_edges : int;
  rule_hits : (string * int) list;
}

val scan :
  ?allowlist:allowlist -> root:string -> unit -> diagnostic list * scan_stats
(** Walk [root]'s lib/, bench/, bin/ and tools/ for every [.cmt] dune
    produced, build the cross-module call graph over all of them, apply
    [policy] to each file, and return all findings sorted by file/line,
    plus scan statistics for [--stats]. *)
