type diagnostic = Lint_diag.diagnostic = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let all_rules =
  [
    "R1-polycmp";
    "R2-nondet";
    "R2-hiter";
    "R2-domain";
    "R3-partial";
    "R3-catchall";
    "R4-print";
    "R4-mli";
    "R5-rawverify";
    "R6-domainescape";
    "R7-parpure";
  ]

let to_string = Lint_diag.to_string

(* ---------- allowlist (Lint_diag: segment-anchored path matching) ---------- *)

type allowlist = Lint_diag.allowlist

let empty_allowlist = Lint_diag.empty_allowlist
let allowlist_of_lines = Lint_diag.allowlist_of_lines
let load_allowlist = Lint_diag.load_allowlist
let allowlisted = Lint_diag.allowlisted
let rule_matches ~prefix rule = String.starts_with ~prefix rule

(* ---------- call graph ---------- *)

type graph = Lint_graph.t

let empty_graph = Lint_graph.empty
let build_graph = Lint_graph.build
let graph_size = Lint_graph.size

(* ---------- policy ---------- *)

(* The directories the scanner covers; also the anchors used to
   normalize the source paths recorded in .cmt files. *)
let scanned_dirs = [ "lib"; "bench"; "bin"; "tools" ]

let normalize_source source =
  (* dune records sources relative to the build context root, but be
     defensive about "./" prefixes and absolute paths: anchor at the
     first scanned-directory path segment when there is one. *)
  let parts = String.split_on_char '/' source in
  let rec from_anchor = function
    | d :: _ as rest when List.mem d scanned_dirs -> String.concat "/" rest
    | _ :: tl -> from_anchor tl
    | [] -> source
  in
  from_anchor parts

let source_segments source = String.split_on_char '/' (normalize_source source)

let lib_dir_of source =
  match source_segments source with
  | "lib" :: dir :: _ :: _ -> Some dir
  | _ -> None

(* Shared-memory parallelism is confined to two audited modules: the
   domain pool itself (all of lib/parallel) and the batched-verification
   wrapper built directly on it (lib/crypto/verify_batch, whose global
   context and stats need a mutex). Everything else in lib/crypto — and
   every other lib directory — stays single-domain deterministic.

   The exemption is matched on whole path segments (with the extension
   stripped), never on prefixes or substrings: lib/crypto/verify_batchx.ml
   does NOT inherit it. *)
let r2_domain_exempt source =
  match lib_dir_of source with
  | Some "parallel" -> true
  | _ -> (
      match source_segments source with
      | [ "lib"; "crypto"; file ] ->
          String.equal (Filename.remove_extension file) "verify_batch"
      | _ -> false)

(* R6/R7 run everywhere fan-out calls can appear — which after PR 6 is
   any scanned directory. The passes are no-ops on files with no fan-out
   sites, so applying them broadly costs nothing. *)
let interproc_rules = Lint_interproc.rules

let policy ~source =
  match source_segments source with
  | "lib" :: dir :: _ :: _ ->
      let in_dirs dirs = List.mem dir dirs in
      List.concat
        [
          [ "R2-nondet"; "R4-print"; "R4-mli" ];
          (if r2_domain_exempt source then [] else [ "R2-domain" ]);
          (if in_dirs [ "sim"; "pbft"; "paxos"; "net"; "codec" ] then
             [ "R1-polycmp" ]
           else []);
          (if in_dirs [ "pbft"; "paxos"; "sim"; "core" ] then [ "R2-hiter" ]
           else []);
          (if in_dirs [ "pbft"; "paxos"; "crypto"; "codec"; "core" ] then
             [ "R3-partial"; "R3-catchall" ]
           else []);
          (* Signature verification outside lib/crypto must go through
             Verify_cache (verify, or verify_uncached when no cache is in
             scope): a stray Signer.verify silently bypasses both the memo
             and its generation-stamped invalidation discipline. *)
          (if in_dirs [ "crypto" ] then [] else [ "R5-rawverify" ]);
          interproc_rules;
        ]
  | "bench" :: _ :: _ | "bin" :: _ :: _ ->
      (* Executables: no .mli to require and console output is their job,
         but they feed the golden tables, so determinism and totality
         still apply — and so does the parallel-purity discipline. *)
      [ "R2-nondet"; "R3-partial" ] @ interproc_rules
  | "tools" :: rest when rest <> [] ->
      if List.mem "fixtures" rest then
        (* Lint fixtures violate rules on purpose; they are linted
           explicitly by the test suite, never by the tree scan. *)
        []
      else
        let file = List.nth_opt rest (List.length rest - 1) in
        let is_main =
          match file with
          | Some f -> String.equal (Filename.remove_extension f) "main"
          | None -> false
        in
        [ "R2-nondet"; "R3-partial" ]
        @ (if is_main then [] else [ "R4-mli" ])
        @ interproc_rules
  | _ -> []

(* ---------- AST checks ---------- *)

type ctx = {
  source : string;
  rules : string list;
  allowlist : allowlist;
  mutable allow_stack : string list;
  mutable diags : diagnostic list;
}

let report ctx ~rule ~(loc : Location.t) message =
  let site_allowed =
    List.exists (fun prefix -> rule_matches ~prefix rule) ctx.allow_stack
  in
  if
    List.mem rule ctx.rules
    && (not site_allowed)
    && not (allowlisted ctx.allowlist ~rule ~file:ctx.source)
  then begin
    let p = loc.Location.loc_start in
    ctx.diags <-
      {
        rule;
        file = ctx.source;
        line = p.Lexing.pos_lnum;
        col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
        message;
      }
      :: ctx.diags
  end

(* The interprocedural passes track their own [@bplint.allow] scopes
   (they slice across binding boundaries, so the iterator stack above
   does not apply); bridge their findings into this context's filters. *)
let interproc_report ctx ~rule ~loc ~allows message =
  let saved = ctx.allow_stack in
  ctx.allow_stack <- allows @ saved;
  report ctx ~rule ~loc message;
  ctx.allow_stack <- saved

let allows_of_attributes = Lint_diag.allows_of_attributes

let strip_stdlib name =
  let prefix = "Stdlib." in
  if String.starts_with ~prefix name then
    String.sub name (String.length prefix) (String.length name - String.length prefix)
  else name

let primitive_paths =
  Predef.
    [
      path_int;
      path_char;
      path_string;
      path_bytes;
      path_float;
      path_bool;
      path_unit;
      path_int32;
      path_int64;
      path_nativeint;
    ]

let expand_type env ty =
  (* cmt files store environments as summaries; rebuild enough of the env
     to expand abbreviations like [Int_map.key] or [Time.t] down to their
     definitions. Fall back to the unexpanded type when a cmi is missing. *)
  let env = try Envaux.env_of_only_summary env with _ -> env in
  try Ctype.expand_head env ty with _ -> ty

let rec type_is_primitive env ty =
  match Types.get_desc (expand_type env ty) with
  | Types.Tconstr (p, [], _) -> List.exists (Path.same p) primitive_paths
  | Types.Tvar _ | Types.Tunivar _ ->
      (* A still-polymorphic use inside a generic helper: nothing concrete
         to complain about at this site. *)
      true
  | Types.Tpoly (t, _) -> type_is_primitive env t
  | _ -> false

let first_arrow_arg ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, t1, _, _) -> Some t1
  | Types.Tpoly (t, _) -> (
      match Types.get_desc t with
      | Types.Tarrow (_, t1, _, _) -> Some t1
      | _ -> None)
  | _ -> None

let print_type ty =
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "<type>"

(* All rule function lists use fully-qualified paths: a repo module's own
   monomorphic [compare]/[equal] resolves to a local ident and must not
   match. Unqualified uses of stdlib names resolve to [Stdlib.*] paths in
   the typedtree. *)

(* Functions whose semantics depend on polymorphic structural comparison
   (directly, or internally for the List.* family). *)
let poly_compare_fns =
  [
    "Stdlib.=";
    "Stdlib.<>";
    "Stdlib.<";
    "Stdlib.>";
    "Stdlib.<=";
    "Stdlib.>=";
    "Stdlib.compare";
    "Stdlib.min";
    "Stdlib.max";
    "Stdlib.Hashtbl.hash";
    "Stdlib.Hashtbl.seeded_hash";
    "Stdlib.List.mem";
    "Stdlib.List.assoc";
    "Stdlib.List.assoc_opt";
    "Stdlib.List.mem_assoc";
    "Stdlib.List.remove_assoc";
  ]

let nondet_fns =
  [
    "Stdlib.Sys.time";
    "Unix.time";
    "Unix.gettimeofday";
    "Stdlib.Hashtbl.randomize";
  ]

let hiter_fns = [ "Stdlib.Hashtbl.iter"; "Stdlib.Hashtbl.fold" ]

(* Any value from these modules (spawn, create, lock, ...) is flagged:
   shared-memory parallelism is confined to lib/parallel. *)
let domain_module_prefixes =
  [ "Stdlib.Domain."; "Stdlib.Atomic."; "Stdlib.Mutex."; "Stdlib.Condition." ]

let partial_fns =
  [ "Stdlib.Option.get"; "Stdlib.List.hd"; "Stdlib.List.tl"; "Stdlib.List.nth" ]

let print_fns =
  [
    "Stdlib.print_endline";
    "Stdlib.print_string";
    "Stdlib.print_newline";
    "Stdlib.print_char";
    "Stdlib.print_int";
    "Stdlib.print_float";
    "Stdlib.print_bytes";
    "Stdlib.prerr_endline";
    "Stdlib.prerr_string";
    "Stdlib.prerr_newline";
    "Stdlib.Printf.printf";
    "Stdlib.Printf.eprintf";
    "Stdlib.Format.printf";
    "Stdlib.Format.eprintf";
    "Stdlib.Format.print_string";
    "Stdlib.Format.print_newline";
  ]

(* Both spellings occur in cmt files: the alias path as written, and the
   mangled name of the wrapped library's implementation module. *)
let raw_verify_fns = [ "Bp_crypto.Signer.verify"; "Bp_crypto__Signer.verify" ]

let check_ident ctx (e : Typedtree.expression) path =
  let qual = Path.name path in
  let name = strip_stdlib qual in
  let loc = e.Typedtree.exp_loc in
  if List.mem qual poly_compare_fns then begin
    match first_arrow_arg e.Typedtree.exp_type with
    | Some t1 when not (type_is_primitive e.Typedtree.exp_env t1) ->
        report ctx ~rule:"R1-polycmp" ~loc
          (Printf.sprintf
             "polymorphic %s at non-primitive type %s; use a monomorphic \
              comparison (String.equal, Int.compare, a dedicated equal/compare, \
              or restructure with a match)"
             name (print_type t1))
    | _ -> ()
  end;
  if
    List.mem qual nondet_fns
    || String.starts_with ~prefix:"Stdlib.Random." qual
  then
    report ctx ~rule:"R2-nondet" ~loc
      (Printf.sprintf
         "%s is a nondeterminism escape hatch; replicas and experiments must \
          draw time from Bp_sim.Time/Engine and randomness from Bp_util.Rng"
         name);
  if
    List.exists (fun prefix -> String.starts_with ~prefix qual)
      domain_module_prefixes
  then
    report ctx ~rule:"R2-domain" ~loc
      (Printf.sprintf
         "%s brings shared-memory parallelism into deterministic code; \
          multicore primitives (Domain/Atomic/Mutex/Condition) are confined \
          to lib/parallel and lib/crypto/verify_batch — express the work as \
          independent Runner.plan tasks or a Verify_batch batch instead"
         name);
  if List.mem qual hiter_fns then
    report ctx ~rule:"R2-hiter" ~loc
      (Printf.sprintf
         "%s iterates in hash-bucket order, which depends on insertion \
          history; protocol state must not depend on it (fold to a sorted \
          list, use a Map, or track the aggregate incrementally)"
         name);
  if List.mem qual partial_fns then
    report ctx ~rule:"R3-partial" ~loc
      (Printf.sprintf
         "%s is partial; on a consensus/verification path use an explicit \
          match (raising a named invariant exception when impossible)"
         name)
  else if List.mem qual print_fns then
    report ctx ~rule:"R4-print" ~loc
      (Printf.sprintf
         "library code must not write to the console (%s); return strings or \
          log through Logs"
         name);
  if List.mem qual raw_verify_fns then
    report ctx ~rule:"R5-rawverify" ~loc
      "direct Signer.verify bypasses the per-node verification cache; call \
       Bp_crypto.Verify_cache.verify (or verify_uncached when no cache is \
       in scope) so verdict memoization and its generation-based \
       invalidation stay in force"

let rec pattern_catches_all : type k. k Typedtree.general_pattern -> bool =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_any -> true
  | Typedtree.Tpat_var _ -> true
  | Typedtree.Tpat_alias (inner, _, _) -> pattern_catches_all inner
  | Typedtree.Tpat_or (a, b, _) -> pattern_catches_all a || pattern_catches_all b
  | _ -> false

let rec unwrap_option_some (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_construct (_, { Types.cstr_name = "Some"; _ }, [ inner ]) ->
      unwrap_option_some inner
  | _ -> e

let check_expr ctx (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (path, _, _) -> check_ident ctx e path
  | Typedtree.Texp_apply (fn, args) -> (
      match fn.Typedtree.exp_desc with
      | Typedtree.Texp_ident (path, _, _)
        when String.equal (Path.name path) "Stdlib.Hashtbl.create" ->
          let randomized =
            List.exists
              (fun (label, arg) ->
                match (label, arg) with
                | (Asttypes.Labelled "random" | Asttypes.Optional "random"),
                  Some arg -> (
                    (* An omitted ?random is elaborated as a None argument;
                       only an explicit non-false value randomizes. *)
                    match (unwrap_option_some arg).Typedtree.exp_desc with
                    | Typedtree.Texp_construct
                        (_, { Types.cstr_name = "false" | "None"; _ }, _) ->
                        false
                    | _ -> true)
                | _ -> false)
              args
          in
          if randomized then
            report ctx ~rule:"R2-nondet" ~loc:e.Typedtree.exp_loc
              "Hashtbl.create ~random:true makes iteration order differ \
               across runs; deterministic replay forbids it"
      | _ -> ())
  | Typedtree.Texp_try (_, cases) ->
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          if pattern_catches_all c.Typedtree.c_lhs then
            report ctx ~rule:"R3-catchall"
              ~loc:c.Typedtree.c_lhs.Typedtree.pat_loc
              "catch-all exception handler: a swallowed programming error \
               reads as Byzantine input; match the specific exceptions the \
               guarded code can raise")
        cases
  | _ -> ()

let make_iterator ctx =
  let super = Tast_iterator.default_iterator in
  let with_allows attrs k =
    let pushed = allows_of_attributes attrs in
    let saved = ctx.allow_stack in
    ctx.allow_stack <- pushed @ saved;
    k ();
    ctx.allow_stack <- saved
  in
  let expr sub (e : Typedtree.expression) =
    with_allows e.Typedtree.exp_attributes (fun () ->
        check_expr ctx e;
        super.Tast_iterator.expr sub e)
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    with_allows vb.Typedtree.vb_attributes (fun () ->
        super.Tast_iterator.value_binding sub vb)
  in
  let structure_item sub (si : Typedtree.structure_item) =
    let attrs =
      match si.Typedtree.str_desc with
      | Typedtree.Tstr_attribute a -> [ a ]
      | _ -> []
    in
    with_allows attrs (fun () -> super.Tast_iterator.structure_item sub si)
  in
  { super with Tast_iterator.expr; value_binding; structure_item }

(* ---------- cmt driving ---------- *)

let generated_source = function
  | None -> true
  | Some s -> Filename.check_suffix s ".ml-gen"

let ends_with ~suffix s =
  let sl = String.length suffix and l = String.length s in
  l >= sl && String.equal (String.sub s (l - sl) sl) suffix

let init_cmt_env ~cmt_path (cmt : Cmt_format.cmt_infos) =
  (* Point the compiler's load path at the cmi directories recorded when
     this cmt was built, so Envaux can reconstruct environments. dune
     records the build dir as the sanitized placeholder "/workspace_root"
     and library dirs relative to the build-context root, so recover that
     root from the cmt's own path: it ends with one of the relative
     loadpath entries (its own .objs/byte directory). *)
  let dir = Filename.dirname cmt_path in
  let rels =
    List.filter (fun p -> p <> "" && Filename.is_relative p)
      cmt.Cmt_format.cmt_loadpath
  in
  let root =
    match List.find_opt (fun e -> ends_with ~suffix:e dir) rels with
    | Some e -> String.sub dir 0 (String.length dir - String.length e)
    | None -> ""
  in
  let absolute p =
    if Filename.is_relative p then root ^ p else p
  in
  Load_path.init ~auto_include:Load_path.no_auto_include
    (List.map absolute rels
    @ List.filter (fun p -> not (Filename.is_relative p))
        cmt.Cmt_format.cmt_loadpath);
  Env.reset_cache ();
  Envaux.reset_cache ()

let lint_cmt ?(allowlist = empty_allowlist) ?(graph = Lint_graph.empty) ~rules
    path =
  let cmt = Cmt_format.read_cmt path in
  init_cmt_env ~cmt_path:path cmt;
  if generated_source cmt.Cmt_format.cmt_sourcefile then []
  else begin
    let source =
      match cmt.Cmt_format.cmt_sourcefile with
      | Some s -> normalize_source s
      | None -> path
    in
    let ctx = { source; rules; allowlist; allow_stack = []; diags = [] } in
    (if
       List.mem "R4-mli" rules
       && (not (allowlisted allowlist ~rule:"R4-mli" ~file:source))
       && Filename.check_suffix source ".ml"
     then
       let cmti = Filename.remove_extension path ^ ".cmti" in
       if not (Sys.file_exists cmti) then
         ctx.diags <-
           {
             rule = "R4-mli";
             file = source;
             line = 1;
             col = 0;
             message =
               "library module has no .mli; every lib/ module must declare \
                its interface";
           }
           :: ctx.diags);
    (match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
        let iter = make_iterator ctx in
        iter.Tast_iterator.structure iter str;
        if List.exists (fun r -> List.mem r rules) Lint_interproc.rules then
          Lint_interproc.check ~report:(interproc_report ctx) ~graph
            ~modname:(Lint_graph.normalize_name cmt.Cmt_format.cmt_modname)
            str
    | _ -> ());
    List.rev ctx.diags
  end

(* ---------- whole-tree scan ---------- *)

type scan_stats = {
  files_scanned : int;
  graph_defs : int;
  graph_edges : int;
  rule_hits : (string * int) list;
}

let scan ?(allowlist = empty_allowlist) ~root () =
  let cmts = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort String.compare entries;
        Array.iter
          (fun entry ->
            let full = Filename.concat dir entry in
            if Sys.is_directory full then begin
              if
                not
                  (List.mem entry [ "_build"; ".git"; "node_modules"; "_opam" ])
              then walk full
            end
            else if Filename.check_suffix entry ".cmt" then
              cmts := full :: !cmts)
          entries
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun d ->
      let dir = Filename.concat root d in
      if Sys.file_exists dir && Sys.is_directory dir then walk dir)
    scanned_dirs;
  let cmts = List.sort String.compare !cmts in
  (* The call graph spans every scanned .cmt, so a pool job in lib/core
     is checked through helpers it calls in lib/crypto. *)
  let graph = Lint_graph.build cmts in
  let files_scanned = ref 0 in
  let diags =
    List.concat_map
      (fun path ->
        match Cmt_format.read_cmt path with
        | exception _ -> []
        | cmt ->
            if generated_source cmt.Cmt_format.cmt_sourcefile then []
            else begin
              let source =
                match cmt.Cmt_format.cmt_sourcefile with
                | Some s -> normalize_source s
                | None -> path
              in
              let rules = policy ~source in
              if rules = [] then []
              else begin
                incr files_scanned;
                lint_cmt ~allowlist ~graph ~rules path
              end
            end)
      cmts
  in
  let diags = List.sort Lint_diag.compare_diag diags in
  let graph_defs, graph_edges = Lint_graph.size graph in
  let rule_hits =
    List.map
      (fun rule ->
        ( rule,
          List.length (List.filter (fun d -> String.equal d.rule rule) diags) ))
      all_rules
  in
  (diags, { files_scanned = !files_scanned; graph_defs; graph_edges; rule_hits })
