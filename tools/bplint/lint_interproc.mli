(** R6-domainescape / R7-parpure: the parallel-verification discipline
    (snapshot-at-submit, cache partition), statically enforced over the
    closures that flow into [Pool.submit]/[run]/[map] and the
    [Verify_batch] wrappers. See DESIGN.md §5.12 for the semantics and
    the limits of the analysis. *)

type report_fn =
  rule:string -> loc:Location.t -> allows:string list -> string -> unit
(** Findings are emitted through this callback; [allows] carries the
    [[@bplint.allow]] prefixes in force at the site, for the caller's
    suppression logic. *)

val rules : string list
(** [["R6-domainescape"; "R7-parpure"]]. *)

val forbidden_reason : string -> string option
(** Why a normalized qualified name is protocol-domain-only (R7), or
    [None] if it is fine to call from a pool job. Exposed for tests. *)

val check :
  report:report_fn ->
  graph:Lint_graph.t ->
  modname:string ->
  Typedtree.structure ->
  unit
(** Run both passes over one implementation. [modname] must be the
    normalized module name (used to qualify same-module calls the way
    [graph] names them). With [graph = Lint_graph.empty], R6 and the
    direct-call portion of R7 still work; only multi-hop reachability
    needs a built graph. *)
