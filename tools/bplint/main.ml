(* bplint CLI.

   Modes:
     main.exe --root DIR [--allowlist FILE] [--baseline FILE]
              [--update-baseline] [--format text|json] [--stats]
       Scan DIR's lib/bench/bin/tools for every .cmt dune produced, build
       the cross-module call graph, apply the repo policy (Lint.policy)
       per source file, print findings, exit 1 if any. With --baseline,
       findings listed in the baseline file are subtracted first, so CI
       fails only on new ones; --update-baseline rewrites the file from
       the current findings instead of failing.

     main.exe --rules R1-polycmp,R7-parpure [--allowlist FILE]
              [--format text|json] a.cmt b.cmt
       Lint explicit .cmt files with an explicit rule set (used by tests
       and for one-off investigation); the call graph for R7 spans
       exactly the listed files. *)

let usage () =
  prerr_endline
    "usage: bplint --root DIR [--allowlist FILE] [--baseline FILE]\n\
    \              [--update-baseline] [--format text|json] [--stats]\n\
    \       bplint --rules R1,R2,... [--allowlist FILE] [--format text|json] \
     FILE.cmt...";
  exit 2

let rule_hits_of diags =
  List.map
    (fun rule ->
      ( rule,
        List.length
          (List.filter (fun (d : Lint.diagnostic) -> String.equal d.Lint.rule rule) diags)
      ))
    Lint.all_rules

let () =
  let root = ref None in
  let allowlist_file = ref None in
  let baseline_file = ref None in
  let update_baseline = ref false in
  let json = ref false in
  let stats_mode = ref false in
  let rules = ref None in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        root := Some dir;
        parse rest
    | "--allowlist" :: file :: rest ->
        allowlist_file := Some file;
        parse rest
    | "--baseline" :: file :: rest ->
        baseline_file := Some file;
        parse rest
    | "--update-baseline" :: rest ->
        update_baseline := true;
        parse rest
    | "--format" :: fmt :: rest ->
        (match fmt with
        | "json" -> json := true
        | "text" -> json := false
        | _ -> usage ());
        parse rest
    | "--stats" :: rest ->
        stats_mode := true;
        parse rest
    | "--rules" :: spec :: rest ->
        rules := Some (String.split_on_char ',' spec);
        parse rest
    | ("--help" | "-help") :: _ -> usage ()
    | arg :: rest ->
        if String.length arg > 0 && arg.[0] = '-' then usage ();
        files := arg :: !files;
        parse rest
  in
  (match Array.to_list Sys.argv with [] -> () | _self :: args -> parse args);
  let allowlist =
    match !allowlist_file with
    | None -> Lint.empty_allowlist
    | Some f -> Lint.load_allowlist f
  in
  let t0 = (Unix.gettimeofday () [@bplint.allow "R2-nondet"]) in
  let diags, stats =
    match (!root, !rules, List.rev !files) with
    | Some root, None, [] -> Lint.scan ~allowlist ~root ()
    | None, Some rules, (_ :: _ as files) ->
        let graph = Lint.build_graph files in
        let diags =
          List.concat_map (Lint.lint_cmt ~allowlist ~graph ~rules) files
        in
        let graph_defs, graph_edges = Lint.graph_size graph in
        ( diags,
          {
            Lint.files_scanned = List.length files;
            graph_defs;
            graph_edges;
            rule_hits = rule_hits_of diags;
          } )
    | _ -> usage ()
  in
  let wall = (Unix.gettimeofday () [@bplint.allow "R2-nondet"]) -. t0 in
  if !update_baseline then begin
    match !baseline_file with
    | None ->
        prerr_endline "bplint: --update-baseline requires --baseline FILE";
        exit 2
    | Some f ->
        let oc = open_out f in
        List.iter
          (fun line -> output_string oc (line ^ "\n"))
          (Lint_diag.baseline_lines diags);
        close_out oc;
        Printf.eprintf "bplint: wrote %d baseline entr%s to %s\n"
          (List.length diags)
          (if List.length diags = 1 then "y" else "ies")
          f
  end
  else begin
    let fresh =
      match !baseline_file with
      | None -> diags
      | Some f -> Lint_diag.filter_baseline (Lint_diag.load_baseline f) diags
    in
    if !json then print_endline (Lint_diag.findings_json fresh)
    else List.iter (fun d -> prerr_endline (Lint.to_string d)) fresh;
    if !stats_mode then begin
      Printf.printf "bplint stats: files_scanned=%d graph_defs=%d \
                     graph_edges=%d wall_s=%.3f findings=%d baselined=%d\n"
        stats.Lint.files_scanned stats.Lint.graph_defs stats.Lint.graph_edges
        wall (List.length fresh)
        (List.length diags - List.length fresh);
      List.iter
        (fun (rule, n) -> Printf.printf "bplint stats: rule %s hits=%d\n" rule n)
        stats.Lint.rule_hits
    end;
    if fresh <> [] then begin
      Printf.eprintf "bplint: %d %sfinding(s)\n" (List.length fresh)
        (match !baseline_file with Some _ -> "new " | None -> "");
      exit 1
    end
  end
