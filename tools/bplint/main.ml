(* bplint CLI.

   Modes:
     main.exe --root DIR [--allowlist FILE]
       Scan DIR/lib for every .cmt dune produced, apply the repo policy
       (Lint.policy) per source file, print findings, exit 1 if any.

     main.exe --rules R1-polycmp,R3-partial [--allowlist FILE] a.cmt b.cmt
       Lint explicit .cmt files with an explicit rule set (used by tests
       and for one-off investigation). *)

let usage () =
  prerr_endline
    "usage: bplint --root DIR [--allowlist FILE]\n\
    \       bplint --rules R1,R2,... [--allowlist FILE] FILE.cmt...";
  exit 2

let () =
  let root = ref None in
  let allowlist_file = ref None in
  let rules = ref None in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        root := Some dir;
        parse rest
    | "--allowlist" :: file :: rest ->
        allowlist_file := Some file;
        parse rest
    | "--rules" :: spec :: rest ->
        rules := Some (String.split_on_char ',' spec);
        parse rest
    | ("--help" | "-help") :: _ -> usage ()
    | arg :: rest ->
        if String.length arg > 0 && arg.[0] = '-' then usage ();
        files := arg :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let allowlist =
    match !allowlist_file with
    | None -> Lint.empty_allowlist
    | Some f -> Lint.load_allowlist f
  in
  let diags =
    match (!root, !rules, List.rev !files) with
    | Some root, None, [] -> Lint.scan ~allowlist ~root ()
    | None, Some rules, (_ :: _ as files) ->
        List.concat_map (Lint.lint_cmt ~allowlist ~rules) files
    | _ -> usage ()
  in
  List.iter (fun d -> prerr_endline (Lint.to_string d)) diags;
  if diags <> [] then begin
    Printf.eprintf "bplint: %d finding(s)\n" (List.length diags);
    exit 1
  end
