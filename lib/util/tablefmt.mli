(** Minimal ASCII table rendering for experiment reports. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] draws a boxed table. [align] gives per-column
    alignment (defaults to [Left]); missing entries default to [Left]. Rows
    shorter than the header are padded with empty cells.

    Library code never writes to stdout (bplint rule R4): callers decide
    where the rendered table goes. *)
