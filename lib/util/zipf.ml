(* Rejection-inversion sampling for the Zipf distribution (Hörmann &
   Derflinger, "Rejection-inversion to generate variates from monotone
   discrete distributions", ACM TOMACS 1996). O(1) expected draws per
   sample at any population size and exponent — the naive
   inverse-CDF-table approach is O(n) setup and O(log n) per sample,
   untenable at the 10^5..10^7 modeled-client populations the load
   harness targets. *)

type t = {
  n : int;
  s : float;
  h_x1 : float;  (* H(1.5) - 1 *)
  h_n : float;  (* H(n + 0.5) *)
  cut : float;  (* s_const: acceptance shortcut threshold *)
}

(* log(1+x)/x, numerically stable near 0. *)
let helper1 x =
  if Float.abs x > 1e-8 then Stdlib.log1p x /. x
  else 1.0 -. (x /. 2.0) +. (x *. x /. 3.0) -. (x *. x *. x /. 4.0)

(* (e^x - 1)/x, numerically stable near 0. *)
let helper2 x =
  if Float.abs x > 1e-8 then Stdlib.expm1 x /. x
  else 1.0 +. (x /. 2.0) +. (x *. x /. 6.0) +. (x *. x *. x /. 24.0)

(* H(x) = integral of x^(-s): (x^(1-s) - 1)/(1-s), log x at s = 1. *)
let h_integral ~s x =
  let log_x = Stdlib.log x in
  helper2 ((1.0 -. s) *. log_x) *. log_x

let h ~s x = Stdlib.exp (-.s *. Stdlib.log x)

let h_integral_inverse ~s x =
  let t = x *. (1.0 -. s) in
  (* Clamp: floating error can push t below -1 where the inverse power
     is undefined; -1 maps back to the distribution's lower edge. *)
  let t = Stdlib.max t (-1.0) in
  Stdlib.exp (helper1 t *. x)

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: population must be >= 1";
  if s < 0.0 || not (Float.is_finite s) then
    invalid_arg "Zipf.create: exponent must be finite and >= 0";
  {
    n;
    s;
    h_x1 = h_integral ~s 1.5 -. 1.0;
    h_n = h_integral ~s (float_of_int n +. 0.5);
    cut = 2.0 -. h_integral_inverse ~s (h_integral ~s 2.5 -. h ~s 2.0);
  }

let n t = t.n
let s t = t.s

let sample t rng =
  if t.n = 1 then 0
  else begin
    let rec draw () =
      let u = t.h_n +. (Rng.float rng 1.0 *. (t.h_x1 -. t.h_n)) in
      let x = h_integral_inverse ~s:t.s u in
      let k = int_of_float (x +. 0.5) in
      let k = if k < 1 then 1 else if k > t.n then t.n else k in
      (* Accept k when x landed within the hat's shortcut band, or by
         the exact rejection test against the histogram bar at k. *)
      if
        float_of_int k -. x <= t.cut
        || u >= h_integral ~s:t.s (float_of_int k +. 0.5) -. h ~s:t.s (float_of_int k)
      then k - 1
      else draw ()
    in
    draw ()
  end
