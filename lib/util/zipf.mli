(** Zipf-distributed sampling over ranks [0, n-1] (rank 0 most popular),
    P(rank k) proportional to (k+1)^(-s).

    Uses rejection-inversion (Hörmann & Derflinger 1996): O(1) setup and
    O(1) expected {!Rng.t} draws per sample at any population size —
    what lets the load harness model 10^5..10^7 clients without
    per-client state or inverse-CDF tables. Exponent 0 degenerates to
    the uniform distribution; s ~ 0.99 is the classic YCSB skew. *)

type t

val create : n:int -> s:float -> t
(** Sampler over ranks [0, n-1] with exponent [s].
    @raise Invalid_argument when [n < 1] or [s] is negative or non-finite. *)

val n : t -> int
val s : t -> float

val sample : t -> Rng.t -> int
(** Draw a rank in [0, n-1]. Deterministic given the rng state; draws a
    geometric(~1) number of rng variates (1 draw in the common case). *)
