type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let all = header :: rows in
  let widths = Array.make ncols 0 in
  let record row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- Stdlib.max widths.(i) (String.length cell))
      row
  in
  List.iter record all;
  let align_of i = match List.nth_opt align i with Some a -> a | None -> Left in
  let line ch =
    let parts = Array.to_list (Array.map (fun w -> String.make (w + 2) ch) widths) in
    "+" ^ String.concat "+" parts ^ "+\n"
  in
  let draw_row row =
    let cells =
      List.mapi (fun i cell -> " " ^ pad (align_of i) widths.(i) cell ^ " ") row
    in
    "|" ^ String.concat "|" cells ^ "|\n"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-');
  Buffer.add_string buf (draw_row header);
  Buffer.add_string buf (line '=');
  List.iter (fun r -> Buffer.add_string buf (draw_row r)) rows;
  Buffer.add_string buf (line '-');
  Buffer.contents buf
