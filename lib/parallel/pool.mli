(** A fixed-size pool of worker domains for independent, closed tasks.

    This is the only module in the repository allowed to touch the
    multicore primitives ([Domain] / [Mutex] / [Condition] — enforced by
    the bplint R2-domain rule): protocol and simulator code stays
    single-domain deterministic, and parallelism exists purely at the
    granularity of whole simulations. The experiment harness hands the
    pool a list of closures, each of which builds its own engine,
    network and replicas from its own seed; the pool returns the results
    in task-index order, so a parallel run is observationally identical
    to [List.map (fun f -> f ()) tasks].

    The pool is not a general scheduler: one batch runs at a time, and
    {!run} must not be called from two domains concurrently or from
    inside a task. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] workers. [jobs <= 1] spawns no domains
    at all: {!run} then executes tasks inline on the calling domain, so
    [-j 1] is exactly the pre-pool sequential behaviour. *)

val jobs : t -> int
(** The (clamped) parallelism the pool was created with. *)

val run : t -> (unit -> 'a) list -> 'a list
(** Execute every task and return the results in task-index order,
    regardless of completion order. Tasks are claimed by workers in
    index order but may finish in any order; the caller blocks until the
    batch is complete.

    If a task raises, the first exception (in completion order) is
    re-raised in the caller with its backtrace, tasks not yet started
    are abandoned, and already-running tasks are allowed to finish. The
    pool remains usable for subsequent batches.

    @raise Invalid_argument if the pool is shut down. *)

val shutdown : t -> unit
(** Join all workers. Idempotent. The pool cannot run batches after. *)

val map : jobs:int -> (unit -> 'a) list -> 'a list
(** One-shot convenience: create a pool, {!run} the batch, {!shutdown}
    (also on exception). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)
