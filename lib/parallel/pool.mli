(** A fixed-size pool of worker domains for independent, closed tasks.

    This is the only general-purpose module in the repository allowed to
    touch the multicore primitives ([Domain] / [Mutex] / [Condition] —
    enforced by the bplint R2-domain rule, which also exempts the thin
    [Bp_crypto.Verify_batch] wrapper built on top of this pool): protocol
    and simulator code stays single-domain deterministic, and parallelism
    exists purely at the granularity of closed tasks — a whole seeded
    simulation, or a batch of signature checks over immutable snapshots.
    The pool returns results in task-index order, so a parallel run is
    observationally identical to [List.map (fun f -> f ()) tasks].

    Two entry points share one FIFO of batches:

    - {!run} is the original plan API: enqueue a batch and block until it
      completes.
    - {!submit} / {!await} is the futures API: enqueue a batch, keep the
      handle, and join later — several batches may be outstanding at
      once, which lets callers overlap verification with other work.

    Handles are single-consumer: {!await} from the domain that submitted
    (a second {!await} returns the cached results).

    The task contract — capture only immutable snapshots, never reach
    protocol-domain state (verify cache, keystore, network, RNG, wall
    clock) from inside a task — is not just documentation: bplint's
    interprocedural R6-domainescape and R7-parpure passes check every
    closure passed to {!submit} / {!run} / {!map} against it on each
    build, following calls across modules through a whole-program call
    graph. Audited leaf functions opt in with
    [[@@bplint.parallel_pure]]. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] workers. [jobs <= 1] spawns no domains
    at all: {!run} then executes tasks inline on the calling domain, so
    [-j 1] is exactly the pre-pool sequential behaviour. *)

val jobs : t -> int
(** The (clamped) parallelism the pool was created with. *)

type 'a handle
(** An outstanding batch: claim it with {!await}. *)

val submit : t -> (unit -> 'a) list -> 'a handle
(** Enqueue a batch without blocking. Tasks are claimed by workers in
    index order (FIFO across batches) and may finish in any order; the
    eventual {!await} merges results by task index. On a pool with
    [jobs <= 1] (or a batch of fewer than two tasks) nothing is
    enqueued: the tasks run inline, deferred until {!await}, preserving
    the sequential reference behaviour exactly.

    @raise Invalid_argument if the pool is shut down. *)

val await : 'a handle -> 'a list
(** Block until the batch completes and return its results in
    task-index order. If a task raised, the first exception (in
    completion order) is re-raised with its backtrace, tasks not yet
    started are abandoned, and already-running tasks finish; the pool
    remains usable for subsequent batches. Awaiting an already-awaited
    handle returns the cached results without re-running anything. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run t tasks] is [await (submit t tasks)]: execute every task and
    return the results in task-index order, regardless of completion
    order.

    If a task raises, the first exception (in completion order) is
    re-raised in the caller with its backtrace, tasks not yet started
    are abandoned, and already-running tasks are allowed to finish. The
    pool remains usable for subsequent batches.

    @raise Invalid_argument if the pool is shut down. *)

val shutdown : t -> unit
(** Join all workers. Idempotent. The pool cannot run batches after;
    outstanding handles with unstarted work fail their {!await} with
    [Invalid_argument]. *)

val map : jobs:int -> (unit -> 'a) list -> 'a list
(** One-shot convenience: create a pool, {!run} the batch, {!shutdown}
    (also on exception). *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the [--jobs] default. *)
