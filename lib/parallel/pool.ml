(* A mutex/condition work-sharing pool over OCaml 5 domains — the one
   place in the tree where multicore primitives are allowed (bplint
   R2-domain). Workers pull task indices from the batch at the head of a
   FIFO queue under the pool mutex, run the task unlocked, and publish
   the result into a per-batch slot keyed by that index; the caller
   merges by index, so scheduling order never leaks into results.

   Batches are first-class: {!submit} enqueues one and returns a handle,
   {!await} blocks on it, and {!run} is submit-then-await. Several
   batches may be outstanding at once (they drain in FIFO order), which
   is what lets verification batches overlap with protocol work.

   Everything mutable is protected by [mutex]; there are no atomics and
   no lock-free cleverness. The tasks themselves dwarf the per-task
   locking cost (each is a whole simulation or a signature check), so
   contention on the cursor is irrelevant. *)

type batch = {
  b_run : int -> unit;
      (* slot [i] runs task [i] and stores its result (closed over the
         submitter's result array, erasing the element type) *)
  b_total : int; (* number of tasks in this batch *)
  mutable b_next : int; (* next unclaimed task index *)
  mutable b_active : int; (* tasks currently executing in workers *)
  mutable b_failure : (exn * Printexc.raw_backtrace) option;
  mutable b_done : bool; (* all indices claimed and finished *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* workers wait here for a batch / more indices *)
  idle : Condition.t; (* awaiting callers wait here for completion *)
  mutable queue : batch list;
      (* FIFO of batches that still have unclaimed indices; a batch is
         removed as soon as its last index is claimed (or abandoned) *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

type 'a state =
  | Deferred of (unit -> 'a) array
      (* inline path (jobs <= 1 or trivial batch): tasks run on the
         awaiting domain, exactly like the sequential reference *)
  | Pending of batch * 'a option array
  | Done of 'a list

type 'a handle = { h_pool : t; mutable h_state : 'a state }

(* Called with [t.mutex] held; returns with it held. *)
let rec next_job t =
  if t.stopping then None
  else
    match t.queue with
    | b :: rest when b.b_next < b.b_total ->
        let i = b.b_next in
        b.b_next <- b.b_next + 1;
        b.b_active <- b.b_active + 1;
        if b.b_next >= b.b_total then t.queue <- rest;
        Some (b, i)
    | _ :: _ | [] ->
        Condition.wait t.work t.mutex;
        next_job t

(* Called with [t.mutex] held. *)
let finish_task t b outcome =
  (match outcome with
  | None -> ()
  | Some failure -> (
      (match b.b_failure with
      | Some _ -> () (* first exception (in completion order) wins *)
      | None -> b.b_failure <- Some failure);
      (* Abandon indices not yet claimed; running tasks finish. *)
      if b.b_next < b.b_total then begin
        b.b_next <- b.b_total;
        t.queue <- List.filter (fun b' -> b' != b) t.queue
      end));
  b.b_active <- b.b_active - 1;
  if b.b_next >= b.b_total && b.b_active = 0 then begin
    b.b_done <- true;
    Condition.broadcast t.idle
  end

let rec worker t =
  Mutex.lock t.mutex;
  match next_job t with
  | None -> Mutex.unlock t.mutex
  | Some (b, i) ->
      Mutex.unlock t.mutex;
      let outcome =
        match b.b_run i with
        | () -> None
        | exception e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      finish_task t b outcome;
      Mutex.unlock t.mutex;
      worker t

let create ~jobs =
  let jobs = Stdlib.max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = [];
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let submit_exn msg t tasks =
  if t.stopping then invalid_arg msg;
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if t.jobs <= 1 || n <= 1 then
    (* Defer to the awaiting domain: this is the [-j 1] reference path,
       and trivially bit-identical to the sequential harness. *)
    { h_pool = t; h_state = Deferred tasks }
  else begin
    let results = Array.make n None in
    let b =
      {
        b_run = (fun i -> results.(i) <- Some (tasks.(i) ()));
        b_total = n;
        b_next = 0;
        b_active = 0;
        b_failure = None;
        b_done = false;
      }
    in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg msg
    end;
    t.queue <- t.queue @ [ b ];
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    { h_pool = t; h_state = Pending (b, results) }
  end

let submit t tasks = submit_exn "Pool.submit: pool is shut down" t tasks

let await h =
  match h.h_state with
  | Done rs -> rs
  | Deferred tasks ->
      let rs = Array.to_list (Array.map (fun f -> f ()) tasks) in
      h.h_state <- Done rs;
      rs
  | Pending (b, results) ->
      let t = h.h_pool in
      Mutex.lock t.mutex;
      while not b.b_done do
        Condition.wait t.idle t.mutex
      done;
      let failure = b.b_failure in
      Mutex.unlock t.mutex;
      (match failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          let rs =
            Array.to_list
              (Array.map
                 (function
                   | Some v -> v
                   | None ->
                       (* Unreachable: every index claimed and completed. *)
                       invalid_arg "Pool.await: missing result")
                 results)
          in
          h.h_state <- Done rs;
          rs)

let run t tasks = await (submit_exn "Pool.run: pool is shut down" t tasks)

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopping then begin
    t.stopping <- true;
    (* Fail batches that still have unclaimed work: with the workers
       gone nobody would ever finish them, and await would hang. *)
    List.iter
      (fun b ->
        if b.b_next < b.b_total then begin
          b.b_next <- b.b_total;
          match b.b_failure with
          | Some _ -> ()
          | None ->
              b.b_failure <-
                Some
                  ( Invalid_argument "Pool.await: pool was shut down",
                    Printexc.get_callstack 0 )
        end;
        if b.b_active = 0 then b.b_done <- true)
      t.queue;
    t.queue <- [];
    Condition.broadcast t.work;
    Condition.broadcast t.idle
  end;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let map ~jobs tasks =
  let t = create ~jobs in
  match run t tasks with
  | results ->
      shutdown t;
      results
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown t;
      Printexc.raise_with_backtrace e bt

let default_jobs () = Domain.recommended_domain_count ()
