(* A mutex/condition work-sharing pool over OCaml 5 domains — the one
   place in the tree where multicore primitives are allowed (bplint
   R2-domain). Workers pull task indices from a shared cursor under the
   pool mutex, run the task unlocked, and publish the result into a
   per-batch slot keyed by that index; the caller merges by index, so
   scheduling order never leaks into results.

   Everything mutable is protected by [mutex]; there are no atomics and
   no lock-free cleverness. The tasks themselves dwarf the per-task
   locking cost (each is a whole simulation), so contention on the
   cursor is irrelevant. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* workers wait here for a batch / more indices *)
  idle : Condition.t; (* the caller waits here for batch completion *)
  mutable run_task : (int -> unit) option;
      (* the current batch, erased to [int -> unit]: slot [i] runs task
         [i] and stores its result (closed over the caller's array) *)
  mutable total : int; (* number of tasks in the current batch *)
  mutable next : int; (* next unclaimed task index *)
  mutable active : int; (* tasks currently executing in workers *)
  mutable failure : (exn * Printexc.raw_backtrace) option;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

(* Called with [t.mutex] held; returns with it held. *)
let rec next_job t =
  if t.stopping then None
  else
    match t.run_task with
    | Some f when t.next < t.total ->
        let i = t.next in
        t.next <- t.next + 1;
        t.active <- t.active + 1;
        Some (f, i)
    | Some _ | None ->
        Condition.wait t.work t.mutex;
        next_job t

let rec worker t =
  Mutex.lock t.mutex;
  match next_job t with
  | None -> Mutex.unlock t.mutex
  | Some (f, i) ->
      Mutex.unlock t.mutex;
      let outcome =
        match f i with
        | () -> None
        | exception e -> Some (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      (match outcome with
      | None -> ()
      | Some failure ->
          (match t.failure with
          | Some _ -> ()
          | None -> t.failure <- Some failure);
          (* Abandon indices not yet claimed; running tasks finish. *)
          t.next <- t.total);
      t.active <- t.active - 1;
      if t.next >= t.total && t.active = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex;
      worker t

let create ~jobs =
  let jobs = Stdlib.max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      run_task = None;
      total = 0;
      next = 0;
      active = 0;
      failure = None;
      stopping = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let run t tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if t.stopping then invalid_arg "Pool.run: pool is shut down";
  if n = 0 then []
  else if t.jobs <= 1 || n = 1 then
    (* Inline on the calling domain: this is the [-j 1] reference path,
       and trivially bit-identical to the sequential harness. *)
    Array.to_list (Array.map (fun f -> f ()) tasks)
  else begin
    let results = Array.make n None in
    Mutex.lock t.mutex;
    (match t.run_task with
    | Some _ ->
        Mutex.unlock t.mutex;
        invalid_arg "Pool.run: a batch is already running"
    | None -> ());
    t.run_task <- Some (fun i -> results.(i) <- Some (tasks.(i) ()));
    t.total <- n;
    t.next <- 0;
    t.failure <- None;
    Condition.broadcast t.work;
    while not (t.next >= t.total && t.active = 0) do
      Condition.wait t.idle t.mutex
    done;
    t.run_task <- None;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list
          (Array.map
             (function
               | Some v -> v
               | None ->
                   (* Unreachable: every index was claimed and completed. *)
                   invalid_arg "Pool.run: missing result")
             results)
  end

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.work
  end;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let map ~jobs tasks =
  let t = create ~jobs in
  match run t tasks with
  | results ->
      shutdown t;
      results
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown t;
      Printexc.raise_with_backtrace e bt

let default_jobs () = Domain.recommended_domain_count ()
