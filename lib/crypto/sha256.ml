(* SHA-256 per FIPS 180-4 on untagged native-int arithmetic.

   Every 32-bit word lives in OCaml's native [int] (63-bit on 64-bit
   platforms), masked back to 32 bits only where a carry could propagate
   upward. This removes the boxed-[Int32] allocation per arithmetic step
   that dominated the original [compress]; the message schedule is a
   preallocated scratch array in the context, so steady-state hashing
   allocates nothing per block. [Sha256_ref] retains the Int32
   transcription as a differential-testing oracle. *)

let mask = 0xffffffff

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b;
    0x59f111f1; 0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01;
    0x243185be; 0x550c7dc3; 0x72be5d74; 0x80deb1fe; 0x9bdc06a7;
    0xc19bf174; 0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
    0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da; 0x983e5152;
    0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc;
    0x53380d13; 0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
    0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3; 0xd192e819;
    0xd6990624; 0xf40e3585; 0x106aa070; 0x19a4c116; 0x1e376c08;
    0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f;
    0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words, each < 2^32 *)
  block : Bytes.t; (* 64-byte buffer *)
  mutable fill : int; (* bytes currently in [block]; always < 64 *)
  mutable length : int; (* total message bytes absorbed *)
  w : int array; (* message schedule scratch *)
}

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    block = Bytes.create 64;
    fill = 0;
    length = 0;
    w = Array.make 64 0;
  }

(* Working values are allowed to carry garbage above bit 31: additions,
   [lxor] and [land] never let high bits contaminate the low 32, so masking
   is deferred to the few places a right shift would pull garbage down.
   Rotations use the "doubled word" form [y = (x land mask) lor (x lsl 32)]
   — with the low 32 bits replicated at bits 32..62, every rotation by
   1..31 is a single [lsr] of [y] (the result's own high garbage is again
   harmless). The round loop is unrolled 8-up with variable renaming, so
   the classic (non-flambda) compiler keeps the state in registers instead
   of shuffling eight refs per round. *)
let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let o = off + (4 * i) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block o) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (o + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (o + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (o + 3)))
  done;
  (* Schedule words are stored pre-masked, so both σ inputs below are
     already clean 32-bit values: the doubled form is two ops, and the
     plain right shifts need no mask of their own. *)
  for i = 16 to 63 do
    let x = Array.unsafe_get w (i - 15) and y = Array.unsafe_get w (i - 2) in
    let xd = x lor (x lsl 32) and yd = y lor (y lsl 32) in
    let s0 = (xd lsr 7) lxor (xd lsr 18) lxor (x lsr 3) in
    let s1 = (yd lsr 17) lxor (yd lsr 19) lxor (y lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask)
  done;
  let h = ctx.h in
  let a = ref (Array.unsafe_get h 0) and b = ref (Array.unsafe_get h 1) in
  let c = ref (Array.unsafe_get h 2) and d = ref (Array.unsafe_get h 3) in
  let e = ref (Array.unsafe_get h 4) and f = ref (Array.unsafe_get h 5) in
  let g = ref (Array.unsafe_get h 6) and hh = ref (Array.unsafe_get h 7) in
  for group = 0 to 7 do
    let i = group * 8 in
    let a0 = !a and b0 = !b and c0 = !c and d0 = !d in
    let e0 = !e and f0 = !f and g0 = !g and h0 = !hh in
    (* One round: consumes (a..h) at offset [j], yields d' and h'; the
       other six values pass through renamed. *)
    let ed = (e0 land mask) lor (e0 lsl 32) in
    let s1 = (ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25) in
    let ch = g0 lxor (e0 land (f0 lxor g0)) in
    let t1 = s1 + ch + (h0 + Array.unsafe_get k i + Array.unsafe_get w i) in
    let ad = (a0 land mask) lor (a0 lsl 32) in
    let s0 = (ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22) in
    let mj = (a0 land b0) lor (c0 land (a0 lor b0)) in
    let d1 = d0 + t1 and h1 = t1 + s0 + mj in

    let ed = (d1 land mask) lor (d1 lsl 32) in
    let s1 = (ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25) in
    let ch = f0 lxor (d1 land (e0 lxor f0)) in
    let t1 = s1 + ch + (g0 + Array.unsafe_get k (i + 1) + Array.unsafe_get w (i + 1)) in
    let ad = (h1 land mask) lor (h1 lsl 32) in
    let s0 = (ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22) in
    let mj = (h1 land a0) lor (b0 land (h1 lor a0)) in
    let c1 = c0 + t1 and g1 = t1 + s0 + mj in

    let ed = (c1 land mask) lor (c1 lsl 32) in
    let s1 = (ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25) in
    let ch = e0 lxor (c1 land (d1 lxor e0)) in
    let t1 = s1 + ch + (f0 + Array.unsafe_get k (i + 2) + Array.unsafe_get w (i + 2)) in
    let ad = (g1 land mask) lor (g1 lsl 32) in
    let s0 = (ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22) in
    let mj = (g1 land h1) lor (a0 land (g1 lor h1)) in
    let b1 = b0 + t1 and f1 = t1 + s0 + mj in

    let ed = (b1 land mask) lor (b1 lsl 32) in
    let s1 = (ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25) in
    let ch = d1 lxor (b1 land (c1 lxor d1)) in
    let t1 = s1 + ch + (e0 + Array.unsafe_get k (i + 3) + Array.unsafe_get w (i + 3)) in
    let ad = (f1 land mask) lor (f1 lsl 32) in
    let s0 = (ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22) in
    let mj = (f1 land g1) lor (h1 land (f1 lor g1)) in
    let a1 = a0 + t1 and e1 = t1 + s0 + mj in

    let ed = (a1 land mask) lor (a1 lsl 32) in
    let s1 = (ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25) in
    let ch = c1 lxor (a1 land (b1 lxor c1)) in
    let t1 = s1 + ch + (d1 + Array.unsafe_get k (i + 4) + Array.unsafe_get w (i + 4)) in
    let ad = (e1 land mask) lor (e1 lsl 32) in
    let s0 = (ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22) in
    let mj = (e1 land f1) lor (g1 land (e1 lor f1)) in
    let h2 = h1 + t1 and d2 = t1 + s0 + mj in

    let ed = (h2 land mask) lor (h2 lsl 32) in
    let s1 = (ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25) in
    let ch = b1 lxor (h2 land (a1 lxor b1)) in
    let t1 = s1 + ch + (c1 + Array.unsafe_get k (i + 5) + Array.unsafe_get w (i + 5)) in
    let ad = (d2 land mask) lor (d2 lsl 32) in
    let s0 = (ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22) in
    let mj = (d2 land e1) lor (f1 land (d2 lor e1)) in
    let g2 = g1 + t1 and c2 = t1 + s0 + mj in

    let ed = (g2 land mask) lor (g2 lsl 32) in
    let s1 = (ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25) in
    let ch = a1 lxor (g2 land (h2 lxor a1)) in
    let t1 = s1 + ch + (b1 + Array.unsafe_get k (i + 6) + Array.unsafe_get w (i + 6)) in
    let ad = (c2 land mask) lor (c2 lsl 32) in
    let s0 = (ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22) in
    let mj = (c2 land d2) lor (e1 land (c2 lor d2)) in
    let f2 = f1 + t1 and b2 = t1 + s0 + mj in

    let ed = (f2 land mask) lor (f2 lsl 32) in
    let s1 = (ed lsr 6) lxor (ed lsr 11) lxor (ed lsr 25) in
    let ch = h2 lxor (f2 land (g2 lxor h2)) in
    let t1 = s1 + ch + (a1 + Array.unsafe_get k (i + 7) + Array.unsafe_get w (i + 7)) in
    let ad = (b2 land mask) lor (b2 lsl 32) in
    let s0 = (ad lsr 2) lxor (ad lsr 13) lxor (ad lsr 22) in
    let mj = (b2 land c2) lor (d2 land (b2 lor c2)) in
    let e2 = e1 + t1 and a2 = t1 + s0 + mj in

    a := a2;
    b := b2;
    c := c2;
    d := d2;
    e := e2;
    f := f2;
    g := g2;
    hh := h2
  done;
  Array.unsafe_set h 0 ((Array.unsafe_get h 0 + !a) land mask);
  Array.unsafe_set h 1 ((Array.unsafe_get h 1 + !b) land mask);
  Array.unsafe_set h 2 ((Array.unsafe_get h 2 + !c) land mask);
  Array.unsafe_set h 3 ((Array.unsafe_get h 3 + !d) land mask);
  Array.unsafe_set h 4 ((Array.unsafe_get h 4 + !e) land mask);
  Array.unsafe_set h 5 ((Array.unsafe_get h 5 + !f) land mask);
  Array.unsafe_set h 6 ((Array.unsafe_get h 6 + !g) land mask);
  Array.unsafe_set h 7 ((Array.unsafe_get h 7 + !hh) land mask)

let update_bytes ctx src ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Sha256.update_bytes";
  ctx.length <- ctx.length + len;
  let pos = ref off and remaining = ref len in
  (* Fill a partial block first. *)
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit src !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx src !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos ctx.block 0 !remaining;
    ctx.fill <- !remaining
  end

let update ctx s =
  update_bytes ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize ctx =
  let bit_length = ctx.length * 8 in
  (* Append 0x80, zero padding, then the 64-bit big-endian length — written
     in place into the context's block buffer, no tail allocation. *)
  let fill = ctx.fill in
  Bytes.set ctx.block fill '\x80';
  if fill + 1 + 8 <= 64 then Bytes.fill ctx.block (fill + 1) (55 - fill) '\x00'
  else begin
    Bytes.fill ctx.block (fill + 1) (63 - fill) '\x00';
    compress ctx ctx.block 0;
    Bytes.fill ctx.block 0 56 '\x00'
  end;
  Bytes.set_int64_be ctx.block 56 (Int64.of_int bit_length);
  compress ctx ctx.block 0;
  ctx.fill <- 0;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (4 * i) (Int32.of_int ctx.h.(i))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let digest_list parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  finalize ctx

let hex s = Bp_util.Hex.encode (digest s)

let digest_length = 32
