let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\x00'

(* One Bytes.create + in-place xor instead of a String.init closure per
   character: the pads sit on the digest hot path of every signature. *)
let xor_pad key byte =
  let pad = Bytes.create block_size in
  for i = 0 to block_size - 1 do
    Bytes.unsafe_set pad i
      (Char.unsafe_chr (Char.code (String.unsafe_get key i) lxor byte))
  done;
  Bytes.unsafe_to_string pad

let sha256 ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest_list [ xor_pad key 0x36; msg ] in
  Sha256.digest_list [ xor_pad key 0x5c; inner ]

let constant_time_equal a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end

let verify ~key ~msg ~tag = constant_time_equal (sha256 ~key msg) tag
