type scheme = [ `Hmac | `Hash_based ]

type hash_identity = {
  mutable current : Merkle_sig.signer;
  mutable roots : string list; (* all published roots, newest first *)
}

type identity =
  | Hmac_secret of string
  | Hash_keys of hash_identity

type t = {
  scheme : scheme;
  rng : Bp_util.Rng.t;
  identities : (string, identity) Hashtbl.t;
  mutable generation : int;
}

let create ?(scheme = `Hmac) rng =
  { scheme; rng; identities = Hashtbl.create 64; generation = 0 }

let scheme t = t.scheme

let generation t = t.generation

(* 64 one-time keys per pool; pools are rolled over transparently when
   exhausted, modelling key rotation. *)
let pool_height = 6

let add_identity t id =
  if not (Hashtbl.mem t.identities id) then begin
    let entry =
      match t.scheme with
      | `Hmac -> Hmac_secret (Bytes.to_string (Bp_util.Rng.bytes t.rng 32))
      | `Hash_based ->
          let signer, root = Merkle_sig.keygen ~height:pool_height t.rng in
          Hash_keys { current = signer; roots = [ root ] }
    in
    Hashtbl.add t.identities id entry;
    t.generation <- t.generation + 1
  end

let sign t ~signer msg =
  match Hashtbl.find t.identities signer with
  | Hmac_secret secret -> Hmac.sha256 ~key:secret msg
  | Hash_keys keys ->
      if Merkle_sig.capacity keys.current = 0 then begin
        let fresh, root = Merkle_sig.keygen ~height:pool_height t.rng in
        keys.current <- fresh;
        keys.roots <- root :: keys.roots;
        t.generation <- t.generation + 1
      end;
      Merkle_sig.encode (Merkle_sig.sign keys.current msg)

(* An immutable view of one identity's verification state. [Hash_keys]
   entries are mutable (root lists grow on pool rollover), so the
   snapshot copies the root list out; the strings themselves are never
   mutated. This is what makes it safe to verify on another domain
   while the owning domain keeps signing. *)
type key = Hmac_key of string | Hash_roots of string list

let snapshot t ~signer =
  match Hashtbl.find_opt t.identities signer with
  | None -> None
  | Some (Hmac_secret secret) -> Some (Hmac_key secret)
  | Some (Hash_keys keys) -> Some (Hash_roots keys.roots)

let verify_key key ~msg ~signature =
  match key with
  | Hmac_key secret -> Hmac.verify ~key:secret ~msg ~tag:signature
  | Hash_roots roots -> (
      match Merkle_sig.decode signature with
      | None -> false
      | Some s -> List.exists (fun root -> Merkle_sig.verify root msg s) roots)
(* Audited for pool workers (bplint R7-parpure): operates on an immutable
   [key] snapshot and never touches the keystore hashtable, the verify
   cache, or any other protocol-domain state. *)
[@@bplint.parallel_pure]

let verify t ~signer ~msg ~signature =
  match snapshot t ~signer with
  | None -> false
  | Some key -> verify_key key ~msg ~signature

let signature_overhead t =
  match t.scheme with
  | `Hmac -> 32
  | `Hash_based ->
      (* index + path-count + path entries + leaf pk + Lamport signature *)
      4 + (pool_height * 33) + 32 + (2 * 256 * 32)
