(* CRC-32 (IEEE 802.3, zlib variant) on untagged native-int arithmetic.
   The table and accumulator are plain [int]s — the hot loop is one table
   load, one shift and two xors per byte, with no boxing. The public API
   stays [int32] so checksums round-trip through the 4-byte wire field. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xedb88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let empty = 0l

let update crc buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Crc32.update";
  let table = Lazy.force table in
  let c = ref (Int32.to_int crc land 0xffffffff lxor 0xffffffff) in
  for i = off to off + len - 1 do
    c :=
      Array.unsafe_get table
        ((!c lxor Char.code (Bytes.unsafe_get buf i)) land 0xff)
      lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor 0xffffffff)

let bytes buf ~off ~len = update empty buf ~off ~len

let string s = bytes (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
