(* CRC-32 (IEEE 802.3, zlib variant) on untagged native-int arithmetic.
   The tables and accumulator are plain [int]s; the hot loop is the
   slicing-by-8 formulation — eight bytes per iteration, eight table
   loads and seven xors, no boxing. The public API stays [int32] so
   checksums round-trip through the 4-byte wire field.

   The tables are built eagerly at module initialization (8 x 256 ints,
   16 KiB) rather than under [lazy]: worker domains of the experiment
   pool checksum frames concurrently, and a shared lazy thunk forced
   from two domains at once raises [Lazy.RacyLazy]. *)

let t0 =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        if !c land 1 <> 0 then c := 0xedb88320 lxor (!c lsr 1)
        else c := !c lsr 1
      done;
      !c)

(* tables.(k).(b) = CRC of byte [b] followed by [k] zero bytes, so eight
   single-byte steps collapse into one lookup per input byte. *)
let tables =
  let t = Array.make 8 t0 in
  for k = 1 to 7 do
    t.(k) <-
      Array.map (fun prev -> Array.unsafe_get t0 (prev land 0xff) lxor (prev lsr 8)) t.(k - 1)
  done;
  t

let empty = 0l

let update crc buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Crc32.update";
  let t1 = tables.(1) and t2 = tables.(2) and t3 = tables.(3) in
  let t4 = tables.(4) and t5 = tables.(5) and t6 = tables.(6) in
  let t7 = tables.(7) in
  let c = ref (Int32.to_int crc land 0xffffffff lxor 0xffffffff) in
  let i = ref off in
  let limit = off + len - 7 in
  while !i < limit do
    let p = !i in
    let b0 = Char.code (Bytes.unsafe_get buf p)
    and b1 = Char.code (Bytes.unsafe_get buf (p + 1))
    and b2 = Char.code (Bytes.unsafe_get buf (p + 2))
    and b3 = Char.code (Bytes.unsafe_get buf (p + 3)) in
    let b4 = Char.code (Bytes.unsafe_get buf (p + 4))
    and b5 = Char.code (Bytes.unsafe_get buf (p + 5))
    and b6 = Char.code (Bytes.unsafe_get buf (p + 6))
    and b7 = Char.code (Bytes.unsafe_get buf (p + 7)) in
    (* The running CRC only mixes into the first word; the second word is
       raw input shifted eight bytes further through the polynomial. *)
    let lo = !c lxor (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)) in
    c :=
      Array.unsafe_get t7 (lo land 0xff)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xff)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xff)
      lxor Array.unsafe_get t4 ((lo lsr 24) land 0xff)
      lxor Array.unsafe_get t3 b4
      lxor Array.unsafe_get t2 b5
      lxor Array.unsafe_get t1 b6
      lxor Array.unsafe_get t0 b7;
    i := p + 8
  done;
  for j = !i to off + len - 1 do
    c :=
      Array.unsafe_get t0
        ((!c lxor Char.code (Bytes.unsafe_get buf j)) land 0xff)
      lxor (!c lsr 8)
  done;
  Int32.of_int (!c lxor 0xffffffff)

let bytes buf ~off ~len = update empty buf ~off ~len

let string s = bytes (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

(* CRC combination over GF(2): crc(A ++ B) from crc(A), crc(B) and |B|.
   Shifting crc(A) through |B| zero bytes is a linear map, represented as
   a 32x32 bit matrix; squaring the "shift one zero byte * 2^k" matrices
   walks the bits of |B|. This is the classic zlib crc32_combine
   construction, valid here because the checksum above uses zlib's exact
   reflected polynomial, init and final xor. *)

let gf2_times mat vec =
  let sum = ref 0 and v = ref vec and n = ref 0 in
  while !v <> 0 do
    if !v land 1 <> 0 then sum := !sum lxor Array.unsafe_get mat !n;
    v := !v lsr 1;
    incr n
  done;
  !sum

let gf2_square sq mat =
  for n = 0 to 31 do
    sq.(n) <- gf2_times mat mat.(n)
  done

let combine crc1 crc2 len2 =
  if len2 <= 0 then crc1
  else begin
    let even = Array.make 32 0 and odd = Array.make 32 0 in
    (* odd = the operator "apply one zero byte": polynomial row then the
       32 single-bit shift rows. *)
    odd.(0) <- 0xedb88320;
    let row = ref 1 in
    for n = 1 to 31 do
      odd.(n) <- !row;
      row := !row lsl 1
    done;
    (* even = zeros^2, odd = zeros^4: the loop below starts at zeros^8,
       one squaring per bit of len2. *)
    gf2_square even odd;
    gf2_square odd even;
    let crc = ref (Int32.to_int crc1 land 0xffffffff) in
    let len = ref len2 in
    let running = ref true in
    while !running do
      gf2_square even odd;
      if !len land 1 <> 0 then crc := gf2_times even !crc;
      len := !len lsr 1;
      if !len = 0 then running := false
      else begin
        gf2_square odd even;
        if !len land 1 <> 0 then crc := gf2_times odd !crc;
        len := !len lsr 1;
        if !len = 0 then running := false
      end
    done;
    Int32.of_int ((!crc lxor (Int32.to_int crc2 land 0xffffffff)) land 0xffffffff)
  end
