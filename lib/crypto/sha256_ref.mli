(** Reference SHA-256 (boxed Int32, literal FIPS 180-4 transcription).

    Retained as the differential-testing oracle for the optimized
    {!Sha256} and as the baseline leg of crypto micro-benchmarks. Not for
    production use — it allocates an [Int32] per arithmetic step. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val update_bytes : ctx -> bytes -> off:int -> len:int -> unit
val finalize : ctx -> string

val digest : string -> string
(** One-shot hash; 32 raw bytes. *)

val digest_list : string list -> string
val hex : string -> string
val digest_length : int
