(** Batched, optionally parallel signature verification.

    Accepts a batch of independent verification jobs — registry-keyed
    [(signer, signature, message)] checks and raw lamport one-time
    signatures — and fans it across a [Bp_parallel.Pool] of worker
    domains, joining in {e index order}: the verdict list is
    byte-identical to sequential [Signer.verify] / [Lamport.verify] at
    any worker count, so protocol tables never depend on [--verify-jobs].

    Domain-safety rules (see the implementation for the full argument):

    - {b Snapshot at submit}: keyed signers are resolved to immutable
      {!Signer.key} snapshots on the calling domain; workers run the
      pure {!Signer.verify_key} and never touch the keystore.
    - {b Cache partition}: the optional per-node {!Verify_cache} is
      consulted once per batch on the calling domain — {!Verify_cache.probe}
      before fan-out, {!Verify_cache.record} after the join. Worker
      domains never see the cache.

    Alongside [lib/parallel], this is the only module exempt from the
    bplint R2-domain rule. *)

type t
(** A verification context: a worker pool (when [jobs > 1]) plus stats. *)

type job =
  | Keyed of { signer : string; msg : string; signature : string }
      (** Verified against the shared keystore registry, through the
          per-node cache when one is supplied. *)
  | Lamport of {
      key : Lamport.public_key;
      msg : string;
      signature : Lamport.signature;
    }
      (** Raw one-time signature check; never cached (the sequential
          reference [Lamport.verify] isn't either). *)

val create : ?jobs:int -> unit -> t
(** [jobs <= 1] (the default) spawns no domains: every batch runs
    inline on the awaiting domain, the sequential reference path. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join the worker pool, if any. Idempotent. *)

type handle
(** An outstanding batch; claim it with {!await}. *)

val submit : ?cache:Verify_cache.t -> keystore:Signer.t -> t -> job list -> handle
(** Probe the cache, snapshot signer keys, and enqueue the residue on
    the worker pool without blocking — the caller may overlap other
    work before {!await}ing. Must be called on the domain that owns
    [cache] and [keystore]. *)

val await : handle -> bool list
(** Join the batch: verdicts in job order, cache records written (on
    the calling domain). Idempotent — a second await returns the cached
    verdict list. *)

val verify : ?cache:Verify_cache.t -> keystore:Signer.t -> t -> job list -> bool list
(** [verify ?cache ~keystore t jobs] is [await (submit ...)]: verdicts
    in job order, equal element-wise to the sequential reference
    ([Verify_cache.verify] / [Signer.verify] for keyed jobs,
    [Lamport.verify] for lamport jobs). *)

val verify_one :
  ?cache:Verify_cache.t ->
  keystore:Signer.t ->
  t ->
  signer:string ->
  msg:string ->
  signature:string ->
  bool
(** Single keyed check through the batch machinery (inline, no fan-out:
    batches of one never leave the calling domain). *)

(** {1 Stats} *)

type stats = {
  batches : int; (** batches submitted *)
  jobs_submitted : int; (** total jobs across all batches *)
  fanned : int; (** jobs that actually went to worker domains *)
  cache_hits : int; (** jobs answered by the cache probe, never fanned *)
  fanned_batches : int; (** batches with at least one job on workers *)
  occupancy : float;
      (** mean over fanned batches of [min(batch, jobs) / jobs] — 1.0
          means every fan-out filled all worker slots *)
  hist : int array; (** batch-size histogram, buckets {!hist_buckets} *)
}

val hist_buckets : string array
(** Labels for {!stats.hist}: sizes 1, 2, 3-4, 5-8, 9-16, 17+. *)

val stats : t -> stats
val reset_stats : t -> unit

(** {1 Process-global default context}

    The receive paths (replica batch validation, transmission-record
    bundles, comm-daemon signature collection) share one context sized
    by the [--verify-jobs] flag. *)

val set_default_jobs : int -> unit
(** Resize the shared context (clamped to [>= 1]; default 1). Shuts
    down the old pool if the size changed. Call at startup or between
    bench configurations, never mid-simulation. *)

val default_jobs : unit -> int

val global : unit -> t
(** The shared context, (re)built lazily at the current default size. *)
