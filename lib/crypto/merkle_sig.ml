type public_key = string

type signer = {
  secrets : Lamport.secret_key array;
  leaves : string array; (* one-time public keys, the Merkle leaves *)
  mutable next : int;
}

type signature = {
  leaf_pk : Lamport.public_key;
  ots : Lamport.signature;
  proof : Merkle.proof;
}

let keygen ?(height = 6) rng =
  if height < 0 || height > 20 then invalid_arg "Merkle_sig.keygen: height";
  let n = 1 lsl height in
  let pairs = Array.init n (fun _ -> Lamport.keygen rng) in
  let secrets = Array.map fst pairs in
  let leaves = Array.map snd pairs in
  let root = Merkle.root (Array.to_list leaves) in
  ({ secrets; leaves; next = 0 }, root)

let capacity t = Array.length t.secrets - t.next

let sign t msg =
  if t.next >= Array.length t.secrets then
    failwith "Merkle_sig.sign: one-time key pool exhausted";
  let i = t.next in
  t.next <- i + 1;
  let ots = Lamport.sign t.secrets.(i) msg in
  let proof = Merkle.prove (Array.to_list t.leaves) i in
  { leaf_pk = t.leaves.(i); ots; proof }

let verify root msg { leaf_pk; ots; proof } =
  Merkle.verify ~root ~leaf:leaf_pk proof && Lamport.verify leaf_pk msg ots

let signature_size { leaf_pk; ots; proof } =
  String.length leaf_pk
  + Lamport.signature_size ots
  + List.fold_left (fun acc (h, _) -> acc + String.length h + 1) 0 proof.path

let encode { leaf_pk; ots; proof } =
  let buf = Buffer.create 1024 in
  let add_u16 n =
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (n land 0xff))
  in
  add_u16 proof.Merkle.leaf_index;
  add_u16 (List.length proof.Merkle.path);
  List.iter
    (fun (h, side) ->
      Buffer.add_char buf (match side with `Left -> 'L' | `Right -> 'R');
      Buffer.add_string buf h)
    proof.Merkle.path;
  Buffer.add_string buf leaf_pk;
  Buffer.add_string buf (Lamport.encode ots);
  Buffer.contents buf

let decode s =
  let u16 off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1] in
  try
    let leaf_index = u16 0 in
    let plen = u16 2 in
    let pos = ref 4 in
    let path =
      List.init plen (fun _ ->
          let side =
            match s.[!pos] with
            | 'L' -> `Left
            | 'R' -> `Right
            | _ -> raise Exit
          in
          let h = String.sub s (!pos + 1) 32 in
          pos := !pos + 33;
          (h, side))
    in
    let leaf_pk = String.sub s !pos 32 in
    pos := !pos + 32;
    let rest = String.sub s !pos (String.length s - !pos) in
    match Lamport.decode rest with
    | None -> None
    | Some ots -> Some { leaf_pk; ots; proof = { Merkle.leaf_index; path } }
  with
  (* Exit: bad side byte; Invalid_argument: out-of-bounds [s.[i]] or
     [String.sub] on a truncated signature. Anything else is a bug and
     must propagate. *)
  | Exit | Invalid_argument _ ->
    None
