(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).

    Used by the framing layer to detect in-flight corruption, modelling the
    paper's reliance on TCP-style checksums. *)

val string : string -> int32

val bytes : bytes -> off:int -> len:int -> int32

val update : int32 -> bytes -> off:int -> len:int -> int32
(** Incremental: feed successive chunks, starting from {!empty}. *)

val empty : int32
(** The CRC of the empty string (the initial accumulator). *)

val combine : int32 -> int32 -> int -> int32
(** [combine crc1 crc2 len2] is the CRC of the concatenation [a ^ b] given
    [crc1 = crc a], [crc2 = crc b] and [len2 = String.length b], without
    touching the bytes of either. O(32^2 * log len2); the framing layer
    uses it to reuse one precomputed payload CRC across many per-recipient
    frames whose headers differ. *)
