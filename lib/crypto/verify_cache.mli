(** Per-node memoization of signature verification and content digests.

    PBFT's receive path re-verifies the same envelope signature and
    re-digests the same request batch many times per slot (prepare,
    commit, checkpoint, view-change proofs). This module memoizes those
    verdicts and digests {e per node} — a cache only ever replays work its
    own node performed (or, via {!sign}, the outcome the signer knows by
    construction), so it is an accelerator, never an oracle.

    Soundness invariant: {b a cached verdict never outlives the keystore
    state that produced it}. Entries are stamped with
    {!Signer.generation}; provisioning an identity or rolling a
    hash-based key pool bumps the generation and invalidates every older
    verdict.

    Everything is deterministic: FIFO eviction, no wall-clock, no
    randomness. With the global flag {!set_enabled} off, every call
    degrades to the exact uncached computation. *)

type t

val create : ?capacity:int -> ?digest_budget:int -> Signer.t -> t
(** [capacity] bounds the verdict table (entries, FIFO-evicted; default
    4096). [digest_budget] bounds the digest memo by the bytes of content
    it keeps alive (default 8 MiB — enough for the operations still in
    flight; a bigger window would mostly pin dead content on the major
    heap). *)

val keystore : t -> Signer.t

val verify : t -> signer:string -> msg:string -> signature:string -> bool
(** Memoized {!Signer.verify}: same verdicts, bit for bit. Keyed by
    [(signer, signature)] with the stored message compared on every probe,
    so colliding or tampered inputs recompute rather than cross-talk. *)

val probe : t -> signer:string -> msg:string -> signature:string -> bool option
(** Lookup half of {!verify}, for batched verification (see
    [Verify_batch]): [Some verdict] on a fresh-generation hit, [None]
    otherwise (always [None] with the cache disabled). Counts the
    hit/miss exactly as {!verify} would. Must be called on the domain
    that owns the cache — the protocol domain probes every job {e before}
    fanning the residue out to workers. *)

val record : t -> signer:string -> msg:string -> signature:string -> verdict:bool -> unit
(** Insertion half of {!verify}: store a verdict computed elsewhere
    (stamped with the current generation), without counting anything.
    No-op with the cache disabled. Must be called on the domain that
    owns the cache — after the batch join, never from a worker. *)

val sign : t -> signer:string -> string -> string
(** {!Signer.sign}, additionally seeding the cache with the (known-true)
    verdict so a node's own loopback deliveries verify for free.
    @raise Not_found like {!Signer.sign} for unregistered identities. *)

val verify_uncached :
  Signer.t -> signer:string -> msg:string -> signature:string -> bool
(** Raw pass-through to {!Signer.verify}, for callers that have no cache
    in scope. Outside [lib/crypto] this is the only sanctioned spelling of
    a direct verification (lint rule R5-rawverify). *)

val digest : t -> string -> string
(** Memoized {!Sha256.digest}. Probes by physical identity first, then by
    content (a fingerprint of length plus first/last 64 bytes narrows the
    candidates before any full comparison), so re-decoded copies of the
    same megabyte operation hash once per node. Strings under 256 bytes
    are hashed directly without touching the memo: at that size the probe
    costs as much as the hash, and unique small strings would only pile
    up never-hit entries for the GC to trace. *)

(** {1 Generic bounded memo}

    A tiny physical-identity memo for values that are reused as-is (e.g. a
    replica's current batch list threaded through prepare/commit). *)

type 'a memo

val memo : ?capacity:int -> unit -> 'a memo
(** Bounded association list, newest first (default capacity 8). *)

val memoize : 'a memo -> 'a -> (unit -> string) -> string
(** [memoize m key f] returns the memoized value for [key] (compared with
    physical equality) or computes, stores and returns [f ()]. With the
    cache globally disabled it always computes. *)

(** {1 Global mode switch} *)

val set_enabled : bool -> unit
(** Content-addressed signing (see {!Bp_pbft.Msg}) changes which bytes get
    signed, so the whole process must agree on the mode: it is keyed off
    this single flag, never off whether a caller holds a cache. Flip it
    once at startup ([--no-cache] in the bench and CLI), not
    mid-simulation. Default: enabled. *)

val enabled : unit -> bool

(** {1 Diagnostics} *)

type counters = {
  verify_hits : int;
  verify_misses : int;
  digest_hits : int;
  digest_misses : int;
  memo_hits : int;
  memo_misses : int;
}

val counters : unit -> counters
(** Process-global tallies (exact at [-j 1]; see implementation note).
    These aggregate over {e every} cache instance in the process — one
    per node — so they are not a single node's figures; divide by
    {!instances} (or read {!instance_counters}) for per-node rates. *)

val instance_counters : t -> counters
(** This cache's own verify/digest tallies ([memo_*] are always 0: the
    generic memo is not tied to an instance). *)

val instances : unit -> int
(** Number of caches created since the last {!reset_counters} — the
    node count behind the {!counters} aggregate. *)

val reset_counters : unit -> unit
