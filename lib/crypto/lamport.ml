let bits = 256
let chunk = 32

type secret_key = { zero : string array; one : string array }
type public_key = string

(* A signature carries, per digest bit, the revealed preimage and the hash
   of the counterpart preimage, so the verifier can recompute the public
   digest without the full public key. *)
type signature = { revealed : string array; other_hash : string array }

let keygen rng =
  let fresh () =
    Array.init bits (fun _ -> Bytes.to_string (Bp_util.Rng.bytes rng chunk))
  in
  let zero = fresh () and one = fresh () in
  let buf = Buffer.create (2 * bits * chunk) in
  for i = 0 to bits - 1 do
    Buffer.add_string buf (Sha256.digest zero.(i));
    Buffer.add_string buf (Sha256.digest one.(i))
  done;
  ({ zero; one }, Sha256.digest (Buffer.contents buf))

let bit_of digest i = (Char.code digest.[i / 8] lsr (7 - (i mod 8))) land 1

let sign sk msg =
  let d = Sha256.digest msg in
  let revealed = Array.make bits "" and other_hash = Array.make bits "" in
  for i = 0 to bits - 1 do
    if bit_of d i = 0 then begin
      revealed.(i) <- sk.zero.(i);
      other_hash.(i) <- Sha256.digest sk.one.(i)
    end
    else begin
      revealed.(i) <- sk.one.(i);
      other_hash.(i) <- Sha256.digest sk.zero.(i)
    end
  done;
  { revealed; other_hash }

let verify pk msg { revealed; other_hash } =
  Array.length revealed = bits
  && Array.length other_hash = bits
  && begin
       let d = Sha256.digest msg in
       let buf = Buffer.create (2 * bits * chunk) in
       (try
          for i = 0 to bits - 1 do
            if String.length revealed.(i) <> chunk
               || String.length other_hash.(i) <> chunk
            then raise Exit;
            let revealed_hash = Sha256.digest revealed.(i) in
            if bit_of d i = 0 then begin
              Buffer.add_string buf revealed_hash;
              Buffer.add_string buf other_hash.(i)
            end
            else begin
              Buffer.add_string buf other_hash.(i);
              Buffer.add_string buf revealed_hash
            end
          done;
          true
        with Exit -> false)
       && String.equal (Sha256.digest (Buffer.contents buf)) pk
     end
(* Audited for pool workers (bplint R7-parpure): verification hashes
   immutable inputs and touches no protocol-domain state. *)
[@@bplint.parallel_pure]

let signature_size { revealed; other_hash } =
  Array.fold_left (fun acc s -> acc + String.length s) 0 revealed
  + Array.fold_left (fun acc s -> acc + String.length s) 0 other_hash

let encode { revealed; other_hash } =
  let buf = Buffer.create (2 * bits * chunk) in
  Array.iter (Buffer.add_string buf) revealed;
  Array.iter (Buffer.add_string buf) other_hash;
  Buffer.contents buf

let decode s =
  if String.length s <> 2 * bits * chunk then None
  else begin
    let part base i = String.sub s (base + (i * chunk)) chunk in
    let revealed = Array.init bits (part 0) in
    let other_hash = Array.init bits (part (bits * chunk)) in
    Some { revealed; other_hash }
  end
