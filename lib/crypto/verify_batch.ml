(* Batched, optionally parallel signature verification.

   The receive path presents natural batches of independent checks: the
   fi+1 signatures on a transmission record, the per-operation client
   signatures in a pre-prepare, a run of lamport one-time signatures.
   This module fans such a batch across a [Bp_parallel.Pool] of worker
   domains and joins in index order, so the verdict list — and therefore
   every protocol table downstream — is byte-identical to sequential
   verification at any worker count.

   Determinism and domain-safety rest on two rules:

   - Snapshot at submit. Keyed jobs resolve the signer to an immutable
     [Signer.key] snapshot on the calling domain before anything is
     enqueued; workers only ever run [Signer.verify_key] over immutable
     strings, never touching the keystore's hashtable (which the
     protocol domain keeps mutating via [sign] rollover and
     [add_identity]). The snapshot is taken even on the inline jobs=1
     path, so verdicts cannot depend on the worker count.

   - Cache partition. The per-node [Verify_cache] is consulted exactly
     once per batch on the calling domain: every job is [probe]d before
     fan-out (hits never reach a worker) and computed verdicts are
     [record]ed after the join. Worker domains never see the cache, so
     its mutable state stays single-domain.

   The mutex here guards the global default context and per-context
   stats — this module and lib/parallel are the only places allowed to
   touch multicore primitives (bplint R2-domain). *)

type job =
  | Keyed of { signer : string; msg : string; signature : string }
  | Lamport of {
      key : Lamport.public_key;
      msg : string;
      signature : Lamport.signature;
    }

type stats = {
  batches : int;
  jobs_submitted : int;
  fanned : int;
  cache_hits : int;
  fanned_batches : int;
  occupancy : float;
  hist : int array;
}

(* Batch-size histogram buckets: 1, 2, 3-4, 5-8, 9-16, 17+. *)
let hist_buckets = [| "1"; "2"; "3-4"; "5-8"; "9-16"; "17+" |]

let bucket n =
  if n <= 1 then 0
  else if n = 2 then 1
  else if n <= 4 then 2
  else if n <= 8 then 3
  else if n <= 16 then 4
  else 5

type t = {
  jobs : int;
  pool : Bp_parallel.Pool.t option; (* [Some] iff [jobs > 1] *)
  mutex : Mutex.t; (* guards the stats fields below *)
  mutable s_batches : int;
  mutable s_jobs : int;
  mutable s_fanned : int;
  mutable s_cache_hits : int;
  mutable s_fanned_batches : int;
  mutable s_occ_sum : float;
  s_hist : int array;
}

let create ?(jobs = 1) () =
  let jobs = Stdlib.max 1 jobs in
  {
    jobs;
    pool = (if jobs > 1 then Some (Bp_parallel.Pool.create ~jobs) else None);
    mutex = Mutex.create ();
    s_batches = 0;
    s_jobs = 0;
    s_fanned = 0;
    s_cache_hits = 0;
    s_fanned_batches = 0;
    s_occ_sum = 0.0;
    s_hist = Array.make (Array.length hist_buckets) 0;
  }

let jobs t = t.jobs

let shutdown t =
  match t.pool with None -> () | Some p -> Bp_parallel.Pool.shutdown p

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      batches = t.s_batches;
      jobs_submitted = t.s_jobs;
      fanned = t.s_fanned;
      cache_hits = t.s_cache_hits;
      fanned_batches = t.s_fanned_batches;
      occupancy =
        (if t.s_fanned_batches = 0 then 0.0
         else t.s_occ_sum /. float_of_int t.s_fanned_batches);
      hist = Array.copy t.s_hist;
    }
  in
  Mutex.unlock t.mutex;
  s

let reset_stats t =
  Mutex.lock t.mutex;
  t.s_batches <- 0;
  t.s_jobs <- 0;
  t.s_fanned <- 0;
  t.s_cache_hits <- 0;
  t.s_fanned_batches <- 0;
  t.s_occ_sum <- 0.0;
  Array.fill t.s_hist 0 (Array.length t.s_hist) 0;
  Mutex.unlock t.mutex

type handle = {
  h_ctx : t;
  h_verdicts : bool option array; (* [Some] = resolved by cache probe *)
  h_pending : (int * (string * string * string) option) array;
      (* verdict index + the (signer, msg, signature) to [record] after
         the join (None for lamport jobs / no cache) *)
  h_join : unit -> bool list;
  h_cache : Verify_cache.t option;
  mutable h_results : bool list option;
}

let submit ?cache ~keystore t jobs_list =
  let n = List.length jobs_list in
  let verdicts = Array.make (Stdlib.max 1 n) None in
  let pending = ref [] (* reversed (idx, record-key, thunk) *) in
  let n_hits = ref 0 in
  List.iteri
    (fun i job ->
      match job with
      | Lamport { key; msg; signature } ->
          pending := (i, None, fun () -> Lamport.verify key msg signature) :: !pending
      | Keyed { signer; msg; signature } -> (
          let probed =
            match cache with
            | None -> None
            | Some c -> Verify_cache.probe c ~signer ~msg ~signature
          in
          match probed with
          | Some v ->
              incr n_hits;
              verdicts.(i) <- Some v
          | None ->
              let rkey =
                match cache with
                | None -> None
                | Some _ -> Some (signer, msg, signature)
              in
              let thunk =
                (* Snapshot on the calling domain, before fan-out. The
                   thunk closes over the immutable [key] view only —
                   never the keystore or the cache — which is exactly
                   what bplint R6-domainescape/R7-parpure verify on
                   every build by slicing these thunks out of the
                   [Pool.submit] below. *)
                match Signer.snapshot keystore ~signer with
                | None -> fun () -> false
                | Some key ->
                    fun () -> Signer.verify_key key ~msg ~signature
              in
              pending := (i, rkey, thunk) :: !pending))
    jobs_list;
  let pending = Array.of_list (List.rev !pending) in
  let thunks = Array.to_list (Array.map (fun (_, _, f) -> f) pending) in
  let m = Array.length pending in
  let join =
    match t.pool with
    | Some p when m > 1 ->
        let ph = Bp_parallel.Pool.submit p thunks in
        fun () -> Bp_parallel.Pool.await ph
    | Some _ | None ->
        (* Inline reference path: the thunks run on the awaiting domain,
           deferred so submit/await overlap semantics match. *)
        fun () -> List.map (fun f -> f ()) thunks
  in
  Mutex.lock t.mutex;
  t.s_batches <- t.s_batches + 1;
  t.s_jobs <- t.s_jobs + n;
  t.s_cache_hits <- t.s_cache_hits + !n_hits;
  if n > 0 then t.s_hist.(bucket n) <- t.s_hist.(bucket n) + 1;
  (match t.pool with
  | Some _ when m > 1 ->
      t.s_fanned <- t.s_fanned + m;
      t.s_fanned_batches <- t.s_fanned_batches + 1;
      t.s_occ_sum <-
        t.s_occ_sum +. (float_of_int (Stdlib.min m t.jobs) /. float_of_int t.jobs)
  | Some _ | None -> ());
  Mutex.unlock t.mutex;
  {
    h_ctx = t;
    h_verdicts = verdicts;
    h_pending = Array.map (fun (i, r, _) -> (i, r)) pending;
    h_join = join;
    h_cache = cache;
    h_results = None;
  }

let await h =
  match h.h_results with
  | Some rs -> rs
  | None ->
      let computed = h.h_join () in
      List.iteri
        (fun k v ->
          let i, rkey = h.h_pending.(k) in
          h.h_verdicts.(i) <- Some v;
          (* Record on the calling domain, after the join. *)
          match (rkey, h.h_cache) with
          | Some (signer, msg, signature), Some c ->
              Verify_cache.record c ~signer ~msg ~signature ~verdict:v
          | _ -> ())
        computed;
      let n = Array.length h.h_verdicts in
      let rec collect i acc =
        if i < 0 then acc
        else
          match h.h_verdicts.(i) with
          | Some v -> collect (i - 1) (v :: acc)
          | None -> collect (i - 1) acc
      in
      let rs = collect (n - 1) [] in
      h.h_results <- Some rs;
      rs

let verify ?cache ~keystore t jobs_list =
  await (submit ?cache ~keystore t jobs_list)

let verify_one ?cache ~keystore t ~signer ~msg ~signature =
  match verify ?cache ~keystore t [ Keyed { signer; msg; signature } ] with
  | [ v ] -> v
  | _ -> false

(* ---------- process-global default context ---------- *)

(* The receive paths (replica, unit node, comm daemon) share one
   context sized by [--verify-jobs]; harness worker domains may reach it
   concurrently, hence the mutex. Re-sizing shuts the old pool down and
   builds a fresh one — done at startup / between bench configurations,
   never mid-simulation. *)

let default_jobs_ref = ref 1
let global_ctx = ref None
let global_mutex = Mutex.create ()

let default_jobs () = !default_jobs_ref

let set_default_jobs n =
  let n = Stdlib.max 1 n in
  Mutex.lock global_mutex;
  default_jobs_ref := n;
  (match !global_ctx with
  | Some c when c.jobs <> n ->
      shutdown c;
      global_ctx := None
  | Some _ | None -> ());
  Mutex.unlock global_mutex

let global () =
  Mutex.lock global_mutex;
  let c =
    match !global_ctx with
    | Some c when c.jobs = !default_jobs_ref -> c
    | stale ->
        (match stale with Some c -> shutdown c | None -> ());
        let c = create ~jobs:!default_jobs_ref () in
        global_ctx := Some c;
        c
  in
  Mutex.unlock global_mutex;
  c
