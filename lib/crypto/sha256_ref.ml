(* Reference SHA-256 per FIPS 180-4, kept verbatim from the original
   boxed-Int32 implementation. [Sha256] is the optimized production
   module; this one exists as a differential-testing oracle (every word
   is an [Int32], matching the specification literally) and as the
   baseline leg of the crypto micro-benchmarks. Do not optimize it. *)

let k =
  [|
    0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
    0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
    0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
    0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
    0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
    0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
    0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
    0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
    0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
    0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
    0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
    0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
    0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l;
  |]

type ctx = {
  h : int32 array; (* 8 state words *)
  block : Bytes.t; (* 64-byte buffer *)
  mutable fill : int; (* bytes currently in [block] *)
  mutable length : int64; (* total message bytes absorbed *)
  w : int32 array; (* message schedule scratch *)
}

let init () =
  {
    h =
      [|
        0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
        0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l;
      |];
    block = Bytes.create 64;
    fill = 0;
    length = 0L;
    w = Array.make 64 0l;
  }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand

let word_at b off =
  let byte i = Int32.of_int (Char.code (Bytes.unsafe_get b (off + i))) in
  Int32.logor
    (Int32.shift_left (byte 0) 24)
    (Int32.logor
       (Int32.shift_left (byte 1) 16)
       (Int32.logor (Int32.shift_left (byte 2) 8) (byte 3)))

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    w.(i) <- word_at block (off + (4 * i))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 ^% rotr w.(i - 15) 18 ^% Int32.shift_right_logical w.(i - 15) 3 in
    let s1 = rotr w.(i - 2) 17 ^% rotr w.(i - 2) 19 ^% Int32.shift_right_logical w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (Int32.lognot !e &% !g) in
    let temp1 = !hh +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let temp2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b;
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let update_bytes ctx src ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Sha256.update_bytes";
  ctx.length <- Int64.add ctx.length (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* Fill a partial block first. *)
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit src !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx src !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos ctx.block 0 !remaining;
    ctx.fill <- !remaining
  end

let update ctx s =
  update_bytes ctx (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)

let finalize ctx =
  let bit_length = Int64.mul ctx.length 8L in
  (* Append 0x80, zero padding, then the 64-bit big-endian length. *)
  let pad_len =
    let rem = (ctx.fill + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\x00' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set tail (pad_len + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical bit_length shift) land 0xff))
  done;
  (* Bypass the length accounting: padding is not message content. *)
  let absorb b =
    let pos = ref 0 in
    let len = Bytes.length b in
    while !pos < len do
      let take = min (len - !pos) (64 - ctx.fill) in
      Bytes.blit b !pos ctx.block ctx.fill take;
      ctx.fill <- ctx.fill + take;
      pos := !pos + take;
      if ctx.fill = 64 then begin
        compress ctx ctx.block 0;
        ctx.fill <- 0
      end
    done
  in
  absorb tail;
  assert (ctx.fill = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let word = ctx.h.(i) in
    for j = 0 to 3 do
      Bytes.set out ((4 * i) + j)
        (Char.chr (Int32.to_int (Int32.shift_right_logical word (8 * (3 - j))) land 0xff))
    done
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let digest_list parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  finalize ctx

let hex s = Bp_util.Hex.encode (digest s)

let digest_length = 32
