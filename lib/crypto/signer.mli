(** Identity keystore and signing facade used by all protocols.

    Each protocol node owns an identity; "the set of nodes and their public
    keys are known to all nodes" (paper §III-B), which this keystore
    models. Two interchangeable schemes:

    - [`Hmac] — per-identity secret, tag = HMAC-SHA256(secret, msg). Fast;
      verification consults the shared registry. This is the scheme the
      paper's evaluation models (it treats signature cost as negligible).
    - [`Hash_based] — a real asymmetric Merkle/Lamport scheme; verification
      needs only the registered public root. Slower and with large
      signatures, used to demonstrate full fidelity.

    Byzantine nodes hold a keystore handle like everyone else but can only
    produce signatures for identities they control; tests assert that
    forged or tampered signatures are rejected. *)

type t

type scheme = [ `Hmac | `Hash_based ]

val create : ?scheme:scheme -> Bp_util.Rng.t -> t
(** Defaults to [`Hmac]. *)

val scheme : t -> scheme

val add_identity : t -> string -> unit
(** Provision keys for a new identity. Idempotent. For [`Hash_based] the
    one-time key pool is sized for long simulations (4096 signatures). *)

val sign : t -> signer:string -> string -> string
(** Signature bytes over the message by the given identity.
    @raise Not_found if the identity was never registered. *)

val verify : t -> signer:string -> msg:string -> signature:string -> bool
(** [false] for unknown identities or invalid signatures (never raises).
    Equivalent to {!verify_key} over {!snapshot}. *)

type key = Hmac_key of string | Hash_roots of string list
(** An immutable snapshot of one identity's verification state. Unlike
    the keystore itself — whose hash-based root lists grow on one-time
    pool rollover — a [key] never changes after {!snapshot} returns it,
    so it may be handed to another domain (see [Verify_batch]) and
    verified against without synchronization. *)

val snapshot : t -> signer:string -> key option
(** The identity's current verification key, or [None] if it was never
    registered. Must be taken on the domain that owns the keystore. *)

val verify_key : key -> msg:string -> signature:string -> bool
(** Pure verification against a snapshot: no keystore access, safe on
    any domain. [verify t ~signer ~msg ~signature] equals
    [match snapshot t ~signer with None -> false
     | Some k -> verify_key k ~msg ~signature] at snapshot time. *)

val generation : t -> int
(** Monotone counter bumped whenever the keystore's verification state
    changes: a new identity is provisioned, or a [`Hash_based] one-time
    key pool rolls over (publishing a new root). [Verify_cache] stamps
    every memoized verdict with the generation it was computed under, so a
    cached verdict never outlives the keystore state that produced it. *)

val signature_overhead : t -> int
(** Nominal wire size in bytes of one signature, for cost accounting. *)
