(* Content-addressed verification memoization.

   A cache instance is strictly per-node: it wraps that node's view of the
   shared keystore and only ever memoizes work the node has already done
   (or, via [sign], work whose outcome the signer knows by construction).
   Nothing here is an oracle — with the cache disabled every call degrades
   to the exact uncached computation, and the differential tests pin that
   the two paths agree bit for bit.

   Soundness invariant: a cached verdict never outlives the keystore state
   that produced it. Every memoized verdict is stamped with
   [Signer.generation] at computation time; any keystore change (identity
   provisioning, hash-based key-pool rollover) bumps the generation and
   silently invalidates every older entry.

   Determinism: no wall-clock, no randomness. The verdict table evicts
   with a FIFO ring (insertion order), the digest table with a FIFO byte
   budget, so behaviour depends only on the call sequence. *)

(* ---------- global mode flag ---------- *)

(* Content-addressed signing changes which bytes get signed, so every
   signer and verifier in the process must agree on the mode: it is keyed
   off this one flag, never off whether a particular caller happens to
   hold a cache. Set once at startup (bench/CLI [--no-cache]); not meant
   to be toggled mid-simulation. *)
let enabled_flag = ref true

let set_enabled b = enabled_flag := b

let enabled () = !enabled_flag

(* ---------- counters ---------- *)

(* Process-global, plain [int] refs: exact under the deterministic
   single-domain runs that reports are generated from ([-j 1]); with the
   experiment pool fanning work across domains concurrent increments can
   drop, which only under-counts diagnostics and never affects results. *)

type counters = {
  verify_hits : int;
  verify_misses : int;
  digest_hits : int;
  digest_misses : int;
  memo_hits : int;
  memo_misses : int;
}

let c_verify_hits = ref 0
let c_verify_misses = ref 0
let c_digest_hits = ref 0
let c_digest_misses = ref 0
let c_memo_hits = ref 0
let c_memo_misses = ref 0

let counters () =
  {
    verify_hits = !c_verify_hits;
    verify_misses = !c_verify_misses;
    digest_hits = !c_digest_hits;
    digest_misses = !c_digest_misses;
    memo_hits = !c_memo_hits;
    memo_misses = !c_memo_misses;
  }

(* Caches created since the last [reset_counters] — one per node, so
   this is the divisor that turns the aggregate tallies above into
   honest per-node figures (the bench used to report the aggregate as
   if it were a single node's). *)
let c_instances = ref 0

let instances () = !c_instances

let reset_counters () =
  c_verify_hits := 0;
  c_verify_misses := 0;
  c_digest_hits := 0;
  c_digest_misses := 0;
  c_memo_hits := 0;
  c_memo_misses := 0;
  c_instances := 0

(* ---------- the cache ---------- *)

type entry = {
  mutable e_msg : string;
  mutable e_gen : int;
  mutable e_verdict : bool;
}

type t = {
  keystore : Signer.t;
  (* Keyed by (signer, signature): for honest traffic the signature alone
     pins the message, and the stored message is compared on every probe,
     so colliding keys (e.g. the all-zero forged signature under several
     bodies) just overwrite each other — never cross-talk. Hashing the
     message instead would cost as much as the verify being saved. *)
  verdicts : (string * string, entry) Hashtbl.t;
  ring : (string * string) option array; (* FIFO eviction; slots = table keys *)
  mutable cursor : int;
  (* Digest memo: cheap fingerprint -> bucket of (content, digest).
     Bounded by bytes (not entries) because the keys it pins alive can be
     megabytes each. *)
  digests : (int, (string * string) list) Hashtbl.t;
  dqueue : (int * string) Queue.t; (* insertion order, for eviction *)
  mutable dbytes : int;
  digest_budget : int;
  (* Per-instance (= per-node) counters, alongside the process-global
     refs: a multi-node world shares the globals, so only these can say
     what one node's hit rate actually was. *)
  mutable i_verify_hits : int;
  mutable i_verify_misses : int;
  mutable i_digest_hits : int;
  mutable i_digest_misses : int;
}

(* The digest memo's FIFO window only has to cover content still in
   flight (a few pipelined batches); a huge budget would just pin dead
   operations on the major heap for the GC to trace. *)
let create ?(capacity = 4096) ?(digest_budget = 8 * 1024 * 1024) keystore =
  incr c_instances;
  {
    keystore;
    verdicts = Hashtbl.create (2 * capacity);
    ring = Array.make (max 1 capacity) None;
    cursor = 0;
    digests = Hashtbl.create 256;
    dqueue = Queue.create ();
    dbytes = 0;
    digest_budget;
    i_verify_hits = 0;
    i_verify_misses = 0;
    i_digest_hits = 0;
    i_digest_misses = 0;
  }

let keystore t = t.keystore

let instance_counters t =
  {
    verify_hits = t.i_verify_hits;
    verify_misses = t.i_verify_misses;
    digest_hits = t.i_digest_hits;
    digest_misses = t.i_digest_misses;
    memo_hits = 0;
    memo_misses = 0;
  }

let insert t key entry =
  (match t.ring.(t.cursor) with
  | Some old -> Hashtbl.remove t.verdicts old
  | None -> ());
  t.ring.(t.cursor) <- Some key;
  Hashtbl.replace t.verdicts key entry;
  t.cursor <- (t.cursor + 1) mod Array.length t.ring

(* Raw pass-through, so modules outside lib/crypto can express "verify
   without a cache" without naming [Signer.verify] (which the R5-rawverify
   lint rule confines to this directory). *)
let verify_uncached keystore ~signer ~msg ~signature =
  Signer.verify keystore ~signer ~msg ~signature

let hit t =
  incr c_verify_hits;
  t.i_verify_hits <- t.i_verify_hits + 1

let miss t =
  incr c_verify_misses;
  t.i_verify_misses <- t.i_verify_misses + 1

(* Cache-partitioning primitives for batched verification: the protocol
   domain [probe]s every job before fan-out and [record]s the computed
   verdicts after the join, so worker domains never see the cache. The
   counter accounting matches [verify] exactly — a probe counts the
   hit/miss, a record counts nothing. *)

let probe t ~signer ~msg ~signature =
  if not !enabled_flag then None
  else begin
    let gen = Signer.generation t.keystore in
    match Hashtbl.find_opt t.verdicts (signer, signature) with
    | Some e when e.e_gen = gen && (e.e_msg == msg || String.equal e.e_msg msg)
      ->
        hit t;
        Some e.e_verdict
    | Some _ | None ->
        miss t;
        None
  end

let record t ~signer ~msg ~signature ~verdict =
  if !enabled_flag then begin
    let gen = Signer.generation t.keystore in
    let key = (signer, signature) in
    match Hashtbl.find_opt t.verdicts key with
    | Some e ->
        (* Stale generation, or a key collision with a different message:
           refresh in place (no ring movement). *)
        e.e_msg <- msg;
        e.e_gen <- gen;
        e.e_verdict <- verdict
    | None -> insert t key { e_msg = msg; e_gen = gen; e_verdict = verdict }
  end

let verify t ~signer ~msg ~signature =
  if not !enabled_flag then
    Signer.verify t.keystore ~signer ~msg ~signature
  else begin
    let gen = Signer.generation t.keystore in
    let key = (signer, signature) in
    match Hashtbl.find_opt t.verdicts key with
    | Some e when e.e_gen = gen && (e.e_msg == msg || String.equal e.e_msg msg)
      ->
        hit t;
        e.e_verdict
    | Some e ->
        (* Stale generation, or a key collision with a different message:
           recompute and refresh in place (no ring movement). *)
        miss t;
        let v = Signer.verify t.keystore ~signer ~msg ~signature in
        e.e_msg <- msg;
        e.e_gen <- gen;
        e.e_verdict <- v;
        v
    | None ->
        miss t;
        let v = Signer.verify t.keystore ~signer ~msg ~signature in
        insert t key { e_msg = msg; e_gen = gen; e_verdict = v };
        v
  end

let sign t ~signer msg =
  let signature = Signer.sign t.keystore ~signer msg in
  if !enabled_flag then begin
    (* Read the generation after signing: a hash-based pool rollover
       inside [sign] bumps it, and the verdict we seed is valid under the
       post-rollover root set. The seeded [true] is exact: HMAC verify
       recomputes the same tag, and a Merkle signature verifies against
       the root that [sign] just used. *)
    let gen = Signer.generation t.keystore in
    let key = (signer, signature) in
    match Hashtbl.find_opt t.verdicts key with
    | Some e ->
        e.e_msg <- msg;
        e.e_gen <- gen;
        e.e_verdict <- true
    | None -> insert t key { e_msg = msg; e_gen = gen; e_verdict = true }
  end;
  signature

(* ---------- content-addressed digest memo ---------- *)

let fingerprint s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let head = Int32.to_int (Crc32.bytes b ~off:0 ~len:(min len 64)) land 0xffffffff in
  let tail_off = if len > 64 then len - 64 else 0 in
  let tail =
    if tail_off = 0 then head
    else Int32.to_int (Crc32.bytes b ~off:tail_off ~len:(len - tail_off)) land 0xffffffff
  in
  (head * 0x9e3779b1) lxor (tail * 0x85ebca77) lxor len

let rec evict_digests t =
  if t.dbytes > t.digest_budget && not (Queue.is_empty t.dqueue) then begin
    let fp, key = Queue.pop t.dqueue in
    (match Hashtbl.find_opt t.digests fp with
    | None -> ()
    | Some bucket -> (
        match List.filter (fun (k, _) -> not (k == key)) bucket with
        | [] -> Hashtbl.remove t.digests fp
        | rest -> Hashtbl.replace t.digests fp rest));
    t.dbytes <- t.dbytes - String.length key;
    evict_digests t
  end

(* Memoizing a digest only pays above a minimum size: below it, hashing
   the bytes again costs about as much as the probe, and unique small
   strings (transmission statements, tiny operations) would fill the
   table with never-hit entries the GC must keep tracing until the byte
   budget finally evicts them. *)
let digest_memo_min = 256

let digest t s =
  if (not !enabled_flag) || String.length s < digest_memo_min then
    Sha256.digest s
  else begin
    let fp = fingerprint s in
    let bucket =
      match Hashtbl.find_opt t.digests fp with Some b -> b | None -> []
    in
    match List.find_opt (fun (k, _) -> k == s || String.equal k s) bucket with
    | Some (_, d) ->
        incr c_digest_hits;
        t.i_digest_hits <- t.i_digest_hits + 1;
        d
    | None ->
        incr c_digest_misses;
        t.i_digest_misses <- t.i_digest_misses + 1;
        let d = Sha256.digest s in
        Hashtbl.replace t.digests fp ((s, d) :: bucket);
        Queue.push (fp, s) t.dqueue;
        t.dbytes <- t.dbytes + String.length s;
        evict_digests t;
        d
  end

(* ---------- generic physical-identity memo ---------- *)

type 'a memo = { mutable entries : ('a * string) list; mcap : int }

let memo ?(capacity = 8) () = { entries = []; mcap = max 1 capacity }

let memoize m key f =
  if not !enabled_flag then f ()
  else
    match List.assq_opt key m.entries with
    | Some v ->
        incr c_memo_hits;
        v
    | None ->
        incr c_memo_misses;
        let v = f () in
        let kept =
          if List.length m.entries >= m.mcap then
            List.filteri (fun i _ -> i < m.mcap - 1) m.entries
          else m.entries
        in
        m.entries <- (key, v) :: kept;
        v
