(** The discrete-event simulation engine.

    Events are closures scheduled at virtual times. Two events at the same
    instant fire in scheduling order (a monotone sequence number breaks
    ties), which — together with {!Bp_util.Rng} — makes whole simulations
    deterministic for a given seed. *)

type t

type timer
(** Handle for a scheduled event; can be cancelled before it fires. *)

val create : ?seed:int64 -> unit -> t
(** Default seed is 1. *)

val now : t -> Time.t

val rng : t -> Bp_util.Rng.t
(** The engine's root generator; split it per component. *)

val schedule : t -> after:Time.t -> (unit -> unit) -> timer
(** Fire the closure [after] virtual time from now. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> timer
(** Fire at an absolute time, which must not be in the past. *)

val periodic : t -> every:Time.t -> (unit -> unit) -> timer
(** Fire repeatedly until cancelled. The first firing is [every] from now. *)

val cancel : timer -> unit
(** Idempotent; cancelling a fired timer is a no-op. *)

val pending : t -> int
(** Live (uncancelled, unfired) events. O(1): a counter maintained on
    schedule, fire and cancel, not a heap scan. *)

val cancelled_backlog : t -> int
(** Cancelled events still occupying heap slots. Normally discarded
    lazily as they surface; once they exceed an internal threshold and
    outnumber live events, the heap is compacted eagerly. Exposed for
    the engine micro-benchmarks and tests. *)

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Drain the queue. [until] stops the clock at that instant (events beyond
    it stay queued); [max_events] bounds work as a runaway guard
    (default 50 million). *)

val step : t -> bool
(** Execute the single next event; [false] if the queue is empty. *)
