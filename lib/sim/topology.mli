(** Deployment topology: datacenters, the wide-area RTT matrix, intra-DC
    latency and per-NIC bandwidth. The default instance is the paper's
    Table I (four AWS regions). *)

type t

val make :
  names:string array ->
  rtt_ms:float array array ->
  ?intra_rtt_ms:float ->
  ?bandwidth_mbps:float ->
  unit ->
  t
(** [rtt_ms] must be square, symmetric, zero on the diagonal.
    [intra_rtt_ms] defaults to 0.5 ms; [bandwidth_mbps] (MB/s) to 640,
    the iperf measurement reported in §VIII. *)

val aws_paper : t
(** Table I: California, Oregon, Virginia, Ireland. *)

val dc_california : int
val dc_oregon : int
val dc_virginia : int
val dc_ireland : int

val tiled : ?metro_rtt_ms:float -> t -> sites:int -> t
(** [tiled base ~sites] extends [base] to [sites] datacenters by tiling
    its regions: site [i] lives in region [i mod k] (k = base size), two
    distinct sites of the same region are [metro_rtt_ms] apart (default
    4 ms — metro-area peering), and cross-region pairs keep the base
    matrix's RTT. The first k sites are exactly the base topology, so a
    deployment confined to them is unchanged. This is how scale-out
    worlds get more than the paper's four sites (one per Blockplane
    unit) at fixed per-unit resources.
    @raise Invalid_argument on a non-positive [sites] or [metro_rtt_ms]. *)

val num_dcs : t -> int
val name : t -> int -> string
val dc_of_name : t -> string -> int option

val rtt : t -> int -> int -> Time.t
(** Round-trip between two datacenters; intra-DC RTT when equal. *)

val one_way : t -> int -> int -> Time.t
(** Half the RTT. *)

val bandwidth : t -> float
(** Bytes per second of one NIC. *)

val transfer_time : t -> int -> Time.t
(** Serialization delay for that many bytes on one NIC. *)

val neighbors_by_rtt : t -> int -> int list
(** Other datacenters sorted by increasing RTT from the given one. *)

val closest_majority_rtt : t -> int -> Time.t
(** RTT from a datacenter to the farthest member of its closest majority
    (itself included): with [n] sites this is the RTT to the
    [ceil(n/2)]-th closest site — the floor latency of a Paxos round. *)
