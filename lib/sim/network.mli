(** The simulated datagram network.

    Delivery cost of a message of [b] bytes from node [s] to node [d]:

    - the sender's NIC serializes at the topology bandwidth, so the packet
      departs at [max(now, nic_busy_until(s)) + b/bandwidth] — this shared
      egress queue is what produces the throughput plateau of Fig. 4(b);
    - propagation adds [one_way(s.dc, d.dc)] (or the intra-DC latency);
    - optional fault injection may drop, duplicate, corrupt (flip a byte)
      or jitter the packet.

    Delivery is *not* reliable or ordered — {!Bp_net.Channel} builds that.
    Crashed nodes neither send nor receive. *)

type t

type faults = {
  drop : float;  (** probability a packet vanishes *)
  duplicate : float;  (** probability a packet is delivered twice *)
  corrupt : float;  (** probability one byte is flipped in flight *)
  jitter_ms : float;  (** extra delay, uniform in [0, jitter_ms] *)
}

val no_faults : faults

val create : Engine.t -> Topology.t -> ?faults:faults -> unit -> t

val engine : t -> Engine.t
val topology : t -> Topology.t
val set_faults : t -> faults -> unit

type hint = ..
(** Sender-supplied delivery hints. A hint carries a pre-interpreted form
    of the payload (e.g. {!Bp_net.Transport} attaches the decoded packet
    when one encoded frame fans out to many recipients). Hints never
    change the delivered bytes; a receiver must only honour one after
    checking physical identity with the payload it refers to, and fault
    injection drops the hint whenever it rewrites the payload. Extensible
    so upper layers can define hint shapes the simulator knows nothing
    about. *)

val register :
  t -> Addr.t -> (src:Addr.t -> hint:hint option -> string -> unit) -> unit
(** Attach a node's receive handler. @raise Invalid_argument if already
    registered. *)

val send : t -> src:Addr.t -> dst:Addr.t -> ?hint:hint -> string -> unit
(** Fire-and-forget datagram. Sends from/to crashed or unregistered nodes
    are silently dropped (the sender cannot tell — like UDP). *)

val crash : t -> Addr.t -> unit
(** The node stops sending and receiving until {!recover}. In-flight
    packets to it are lost. *)

val recover : t -> Addr.t -> unit
val is_crashed : t -> Addr.t -> bool

val crash_dc : t -> int -> unit
(** Geo-correlated outage: crash every registered node in a datacenter. *)

val recover_dc : t -> int -> unit

val set_link : t -> int -> int -> [ `Up | `Down ] -> unit
(** Administratively partition a pair of datacenters (both directions). *)

(** Counters since creation (delivered duplicates and corrupted-but-
    delivered packets count as delivered). [sent] and [bytes_sent] cover
    only packets that actually departed the source NIC; sends refused at
    the source (unregistered or crashed sender, administratively downed
    link) appear in [dropped] and, additionally, in [dropped_at_source].
    Packets lost to the in-flight drop fault departed, so they count as
    sent and dropped but not dropped-at-source. *)
type counters = {
  sent : int;
  delivered : int;
  dropped : int;
  dropped_at_source : int;
  corrupted : int;
  duplicated : int;
  bytes_sent : int;
}

val counters : t -> counters

val traffic_matrix : t -> int array array
(** [traffic_matrix t].(i).(j) = bytes from datacenter [i] that departed
    towards datacenter [j] (including packets later lost in flight, but
    not sends refused at the source). Quantifies locality: diagonal =
    intra-datacenter traffic. *)

val message_matrix : t -> int array array
(** Same accounting as {!traffic_matrix} but in messages rather than
    bytes — the WAN-messages-per-delivered-record metric of the
    cluster-sending ablation reads the off-diagonal cells. *)
