(* Counters shared between an engine and its timers, so [cancel] — whose
   public signature takes only the timer — can maintain O(1) live-event
   accounting without a back-pointer to the whole engine. *)
type cell = { mutable live : int; mutable backlog : int }

type timer = {
  mutable cancelled : bool;
  mutable queued : bool; (* a heap entry for this timer exists *)
  cell : cell;
}

type event = {
  fire_at : Time.t;
  seq : int;
  action : unit -> unit;
  timer : timer;
  repeat : Time.t option;
}

module Heap = struct
  (* Binary min-heap ordered by (fire_at, seq). The keys live in two
     parallel unboxed [int array]s so a comparison reads contiguous
     integers; the event pointers ride along in a third array and are only
     dereferenced when an event is actually popped. Sifting moves entries
     into a hole instead of swapping, and indices are always < len by the
     heap invariant, so accesses skip the bounds checks. *)
  type t = {
    mutable times : int array; (* fire_at, in ns *)
    mutable seqs : int array;
    mutable events : event array;
    mutable len : int;
  }

  let dummy =
    {
      fire_at = Time.zero;
      seq = -1;
      action = ignore;
      timer = { cancelled = true; queued = false; cell = { live = 0; backlog = 0 } };
      repeat = None;
    }

  let create () =
    {
      times = Array.make 64 0;
      seqs = Array.make 64 0;
      events = Array.make 64 dummy;
      len = 0;
    }

  let grow h =
    let n = 2 * Array.length h.times in
    let times = Array.make n 0 in
    let seqs = Array.make n 0 in
    let events = Array.make n dummy in
    Array.blit h.times 0 times 0 h.len;
    Array.blit h.seqs 0 seqs 0 h.len;
    Array.blit h.events 0 events 0 h.len;
    h.times <- times;
    h.seqs <- seqs;
    h.events <- events

  (* Write (te, se, e) at index [i]. *)
  let[@inline] place h i te se e =
    Array.unsafe_set h.times i te;
    Array.unsafe_set h.seqs i se;
    Array.unsafe_set h.events i e

  let[@inline] move h ~src ~dst =
    place h dst
      (Array.unsafe_get h.times src)
      (Array.unsafe_get h.seqs src)
      (Array.unsafe_get h.events src)

  let push h e =
    if h.len = Array.length h.times then grow h;
    let te = Time.to_ns e.fire_at and se = e.seq in
    let i = ref h.len in
    h.len <- h.len + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      let tp = Array.unsafe_get h.times p in
      if tp > te || (tp = te && Array.unsafe_get h.seqs p > se) then begin
        move h ~src:p ~dst:!i;
        i := p
      end
      else continue := false
    done;
    place h !i te se e

  (* Sift (te, se, e) down from the hole at [i]. *)
  let sift_down_from h i te se e =
    let len = h.len in
    let i = ref i in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= len then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < len then begin
            let tl = Array.unsafe_get h.times l and tr = Array.unsafe_get h.times r in
            if tr < tl || (tr = tl && Array.unsafe_get h.seqs r < Array.unsafe_get h.seqs l)
            then r
            else l
          end
          else l
        in
        let tc = Array.unsafe_get h.times c in
        if tc < te || (tc = te && Array.unsafe_get h.seqs c < se) then begin
          move h ~src:c ~dst:!i;
          i := c
        end
        else continue := false
      end
    done;
    place h !i te se e

  (* Re-sift the entry currently at [i] (used by the purge heapify). *)
  let sift_down h i =
    sift_down_from h i
      (Array.unsafe_get h.times i)
      (Array.unsafe_get h.seqs i)
      (Array.unsafe_get h.events i)

  let pop h =
    if h.len = 0 then None
    else begin
      let top = Array.unsafe_get h.events 0 in
      let n = h.len - 1 in
      h.len <- n;
      if n > 0 then begin
        let te = Array.unsafe_get h.times n and se = Array.unsafe_get h.seqs n in
        let e = Array.unsafe_get h.events n in
        Array.unsafe_set h.events n dummy;
        sift_down_from h 0 te se e
      end
      else Array.unsafe_set h.events 0 dummy;
      Some top
    end
end

type t = {
  heap : Heap.t;
  mutable clock : Time.t;
  mutable next_seq : int;
  cell : cell;
  rng : Bp_util.Rng.t;
}

(* Cancelled entries are normally discarded lazily when they surface at
   the heap root. Past this many — and once they outnumber live events —
   the heap is compacted eagerly, so a cancel-heavy workload (timeout
   timers that almost never fire) cannot grow the heap without bound. *)
let purge_threshold = 256

let create ?(seed = 1L) () =
  {
    heap = Heap.create ();
    clock = Time.zero;
    next_seq = 0;
    cell = { live = 0; backlog = 0 };
    rng = Bp_util.Rng.create seed;
  }

let now t = t.clock
let rng t = t.rng
let pending t = t.cell.live
let cancelled_backlog t = t.cell.backlog

(* Drop every cancelled entry, then re-heapify in place (Floyd, O(n)).
   The (fire_at, seq) order makes the rebuilt heap's pop sequence
   independent of how survivors were laid out, so purging never perturbs
   determinism. *)
let purge t =
  let h = t.heap in
  let j = ref 0 in
  for i = 0 to h.Heap.len - 1 do
    let e = h.Heap.events.(i) in
    if e.timer.cancelled then e.timer.queued <- false
    else begin
      h.Heap.times.(!j) <- h.Heap.times.(i);
      h.Heap.seqs.(!j) <- h.Heap.seqs.(i);
      h.Heap.events.(!j) <- e;
      incr j
    end
  done;
  for i = !j to h.Heap.len - 1 do
    h.Heap.events.(i) <- Heap.dummy
  done;
  h.Heap.len <- !j;
  for i = (!j / 2) - 1 downto 0 do
    Heap.sift_down h i
  done;
  t.cell.backlog <- 0

let[@inline] maybe_purge t =
  if t.cell.backlog > purge_threshold && t.cell.backlog > t.cell.live then purge t

let enqueue t ~at ~repeat ~timer action =
  maybe_purge t;
  let e = { fire_at = at; seq = t.next_seq; action; timer; repeat } in
  t.next_seq <- t.next_seq + 1;
  timer.queued <- true;
  t.cell.live <- t.cell.live + 1;
  Heap.push t.heap e;
  timer

let fresh_timer t = { cancelled = false; queued = false; cell = t.cell }

let schedule_at t at action =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule_at: in the past";
  enqueue t ~at ~repeat:None ~timer:(fresh_timer t) action

let schedule t ~after action =
  enqueue t ~at:(Time.add t.clock after) ~repeat:None ~timer:(fresh_timer t) action

let periodic t ~every action =
  if Time.to_ns every <= 0 then invalid_arg "Engine.periodic: period must be positive";
  enqueue t ~at:(Time.add t.clock every) ~repeat:(Some every) ~timer:(fresh_timer t)
    action

let cancel (timer : timer) =
  if not timer.cancelled then begin
    timer.cancelled <- true;
    if timer.queued then begin
      timer.cell.live <- timer.cell.live - 1;
      timer.cell.backlog <- timer.cell.backlog + 1
    end
  end

(* Discard a cancelled event that surfaced at the heap root. *)
let drop_cancelled t e =
  e.timer.queued <- false;
  t.cell.backlog <- t.cell.backlog - 1

let fire t e =
  e.timer.queued <- false;
  t.cell.live <- t.cell.live - 1;
  (* Re-arm periodic timers before running the action so the action can
     cancel its own timer. *)
  (match e.repeat with
  | Some every ->
      ignore
        (enqueue t ~at:(Time.add e.fire_at every) ~repeat:(Some every)
           ~timer:e.timer e.action)
  | None -> ());
  t.clock <- e.fire_at;
  e.action ()

(* A cancelled root means the pop path is wading through tombstones. One
   lazy drop per pop is fine when they are rare; once the backlog
   dominates (same condition as [maybe_purge]) a single O(n) compaction
   replaces O(backlog) sift-downs — this is what keeps a cancel-heavy
   workload (e.g. timeout timers that almost never fire) from paying a
   per-event logarithmic toll on dead entries at drain time, not just at
   enqueue time. *)
let[@inline] purge_worthwhile t =
  t.cell.backlog > purge_threshold && t.cell.backlog > t.cell.live

let step t =
  let rec next () =
    if purge_worthwhile t then purge t;
    match Heap.pop t.heap with
    | None -> false
    | Some e ->
        if e.timer.cancelled then begin
          drop_cancelled t e;
          next ()
        end
        else begin
          fire t e;
          true
        end
  in
  next ()

let run ?until ?(max_events = 50_000_000) t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    let h = t.heap in
    if h.Heap.len = 0 then continue := false
    else begin
      (* Inspect the root once, then pop it directly — no peek-then-pop
         re-descent through [step]. *)
      let top = h.Heap.events.(0) in
      if top.timer.cancelled then begin
        if purge_worthwhile t then purge t
        else begin
          ignore (Heap.pop h);
          drop_cancelled t top
        end
      end
      else begin
        let beyond =
          match until with Some u -> Time.(top.fire_at > u) | None -> false
        in
        if beyond then begin
          (match until with Some u -> t.clock <- Time.max t.clock u | None -> ());
          continue := false
        end
        else begin
          ignore (Heap.pop h);
          fire t top;
          incr fired;
          if !fired >= max_events then
            failwith "Engine.run: max_events exceeded (runaway simulation?)"
        end
      end
    end
  done
