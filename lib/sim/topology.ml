type t = {
  names : string array;
  rtt_ms : float array array;
  intra_rtt_ms : float;
  bandwidth_bps : float; (* bytes per second *)
}

let make ~names ~rtt_ms ?(intra_rtt_ms = 0.5) ?(bandwidth_mbps = 640.0) () =
  let n = Array.length names in
  if Array.length rtt_ms <> n then invalid_arg "Topology.make: matrix size";
  Array.iteri
    (fun i row ->
      if Array.length row <> n then invalid_arg "Topology.make: matrix not square";
      if row.(i) <> 0.0 then invalid_arg "Topology.make: nonzero diagonal";
      Array.iteri
        (fun j v ->
          if v < 0.0 then invalid_arg "Topology.make: negative RTT";
          if rtt_ms.(j).(i) <> v then invalid_arg "Topology.make: asymmetric matrix")
        row)
    rtt_ms;
  if intra_rtt_ms <= 0.0 then invalid_arg "Topology.make: intra_rtt_ms";
  if bandwidth_mbps <= 0.0 then invalid_arg "Topology.make: bandwidth";
  { names; rtt_ms; intra_rtt_ms; bandwidth_bps = bandwidth_mbps *. 1e6 }

(* Table I of the paper, in milliseconds. Order: C, O, V, I. *)
let dc_california = 0
let dc_oregon = 1
let dc_virginia = 2
let dc_ireland = 3

let aws_paper =
  make
    ~names:[| "California"; "Oregon"; "Virginia"; "Ireland" |]
    ~rtt_ms:
      [|
        [| 0.0; 19.0; 61.0; 130.0 |];
        [| 19.0; 0.0; 79.0; 132.0 |];
        [| 61.0; 79.0; 0.0; 70.0 |];
        [| 130.0; 132.0; 70.0; 0.0 |];
      |]
    ()

let tiled ?(metro_rtt_ms = 4.0) base ~sites =
  if sites < 1 then invalid_arg "Topology.tiled: sites must be positive";
  if metro_rtt_ms <= 0.0 then invalid_arg "Topology.tiled: metro_rtt_ms";
  let k = Array.length base.names in
  let names =
    Array.init sites (fun i ->
        if i < k then base.names.(i)
        else Printf.sprintf "%s-%d" base.names.(i mod k) (i / k))
  in
  let rtt_ms =
    Array.init sites (fun i ->
        Array.init sites (fun j ->
            if i = j then 0.0
            else if i mod k = j mod k then metro_rtt_ms
            else base.rtt_ms.(i mod k).(j mod k)))
  in
  make ~names ~rtt_ms ~intra_rtt_ms:base.intra_rtt_ms
    ~bandwidth_mbps:(base.bandwidth_bps /. 1e6) ()

let num_dcs t = Array.length t.names

let name t i = t.names.(i)

let dc_of_name t s =
  let found = ref None in
  Array.iteri (fun i n -> if String.equal n s then found := Some i) t.names;
  !found

let rtt t i j =
  if i = j then Time.of_ms t.intra_rtt_ms else Time.of_ms t.rtt_ms.(i).(j)

let one_way t i j = Time.scale (rtt t i j) 0.5

let bandwidth t = t.bandwidth_bps

let transfer_time t bytes =
  Time.of_sec (float_of_int bytes /. t.bandwidth_bps)

let neighbors_by_rtt t i =
  let others = List.filter (fun j -> j <> i) (List.init (num_dcs t) Fun.id) in
  List.sort
    (fun a b -> compare t.rtt_ms.(i).(a) t.rtt_ms.(i).(b))
    others

let closest_majority_rtt t i =
  let n = num_dcs t in
  let majority = (n / 2) + 1 in
  (* The site itself counts; we need [majority - 1] other sites. *)
  let needed = majority - 1 in
  if needed = 0 then Time.zero
  else begin
    let sorted = neighbors_by_rtt t i in
    rtt t i (List.nth sorted (needed - 1))
  end
