type faults = {
  drop : float;
  duplicate : float;
  corrupt : float;
  jitter_ms : float;
}

let no_faults = { drop = 0.0; duplicate = 0.0; corrupt = 0.0; jitter_ms = 0.0 }

type counters = {
  sent : int;
  delivered : int;
  dropped : int;
  dropped_at_source : int;
  corrupted : int;
  duplicated : int;
  bytes_sent : int;
}

(* Delivery hints are an in-simulator optimization channel: a sender that
   already holds a decoded form of the payload can attach it, and a
   receiver that trusts physical identity (hint carries the very same
   payload string it was handed) may skip re-parsing. Hints ride outside
   the byte stream — they never change what is delivered, only how fast a
   receiver can interpret it — and are dropped whenever fault injection
   rewrites the payload. *)
type hint = ..

type node_state = {
  handler : src:Addr.t -> hint:hint option -> string -> unit;
  mutable crashed : bool;
  mutable nic_busy_until : Time.t;
}

type t = {
  engine : Engine.t;
  topology : Topology.t;
  mutable faults : faults;
  nodes : node_state Addr.Tbl.t;
  rng : Bp_util.Rng.t;
  down_links : (int * int, unit) Hashtbl.t;
      (* unordered DC pairs, keyed (min, max): O(1) membership on the
         per-send hot path instead of an association-list scan *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable dropped_at_source : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable bytes_sent : int;
  traffic : int array array; (* bytes by (src dc, dst dc) *)
  traffic_msgs : int array array; (* messages by (src dc, dst dc) *)
}

let create engine topology ?(faults = no_faults) () =
  {
    engine;
    topology;
    faults;
    nodes = Addr.Tbl.create 64;
    rng = Bp_util.Rng.split (Engine.rng engine);
    down_links = Hashtbl.create 8;
    sent = 0;
    delivered = 0;
    dropped = 0;
    dropped_at_source = 0;
    corrupted = 0;
    duplicated = 0;
    bytes_sent = 0;
    traffic =
      (let n = Topology.num_dcs topology in
       Array.make_matrix n n 0);
    traffic_msgs =
      (let n = Topology.num_dcs topology in
       Array.make_matrix n n 0);
  }

let engine t = t.engine
let topology t = t.topology
let set_faults t faults = t.faults <- faults

let register t addr handler =
  if Addr.Tbl.mem t.nodes addr then
    invalid_arg (Printf.sprintf "Network.register: %s already registered" (Addr.to_string addr));
  Addr.Tbl.add t.nodes addr { handler; crashed = false; nic_busy_until = Time.zero }

let is_crashed t addr =
  match Addr.Tbl.find_opt t.nodes addr with
  | Some n -> n.crashed
  | None -> true

let crash t addr =
  match Addr.Tbl.find_opt t.nodes addr with
  | Some n -> n.crashed <- true
  | None -> ()

let recover t addr =
  match Addr.Tbl.find_opt t.nodes addr with
  | Some n -> n.crashed <- false
  | None -> ()

let crash_dc t dc =
  Addr.Tbl.iter (fun a n -> if a.Addr.dc = dc then n.crashed <- true) t.nodes

let recover_dc t dc =
  Addr.Tbl.iter (fun a n -> if a.Addr.dc = dc then n.crashed <- false) t.nodes

let set_link t a b state =
  let key = (min a b, max a b) in
  match state with
  | `Down -> Hashtbl.replace t.down_links key ()
  | `Up -> Hashtbl.remove t.down_links key

let link_down t a b =
  a <> b && Hashtbl.mem t.down_links (min a b, max a b)

let flip_byte rng payload =
  if String.length payload = 0 then payload
  else begin
    let b = Bytes.of_string payload in
    let i = Bp_util.Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Bp_util.Rng.int rng 8)));
    Bytes.unsafe_to_string b
  end

let deliver t ~src ~dst ~hint payload =
  match Addr.Tbl.find_opt t.nodes dst with
  | None -> t.dropped <- t.dropped + 1
  | Some node ->
      if node.crashed then t.dropped <- t.dropped + 1
      else begin
        t.delivered <- t.delivered + 1;
        node.handler ~src ~hint payload
      end

(* The send never leaves the source NIC: it is neither offered traffic
   nor load on the link, so [sent]/[bytes_sent]/the traffic matrix must
   not see it — otherwise crashed or partitioned senders inflate the
   cost and locality accounting. *)
let drop_at_source t =
  t.dropped <- t.dropped + 1;
  t.dropped_at_source <- t.dropped_at_source + 1

let send t ~src ~dst ?hint payload =
  match Addr.Tbl.find_opt t.nodes src with
  | None -> drop_at_source t
  | Some sender ->
      if sender.crashed then drop_at_source t
      else if link_down t src.Addr.dc dst.Addr.dc then drop_at_source t
      else begin
        (* The packet actually departs: count it as offered traffic even
           if the drop fault loses it in flight below. *)
        t.sent <- t.sent + 1;
        t.bytes_sent <- t.bytes_sent + String.length payload;
        t.traffic.(src.Addr.dc).(dst.Addr.dc) <-
          t.traffic.(src.Addr.dc).(dst.Addr.dc) + String.length payload;
        t.traffic_msgs.(src.Addr.dc).(dst.Addr.dc) <-
          t.traffic_msgs.(src.Addr.dc).(dst.Addr.dc) + 1;
        let now = Engine.now t.engine in
        let serialization = Topology.transfer_time t.topology (String.length payload) in
        let depart = Time.add (Time.max now sender.nic_busy_until) serialization in
        sender.nic_busy_until <- depart;
        let propagation = Topology.one_way t.topology src.Addr.dc dst.Addr.dc in
        let jitter =
          if t.faults.jitter_ms > 0.0 then
            Time.of_ms (Bp_util.Rng.float t.rng t.faults.jitter_ms)
          else Time.zero
        in
        let arrive = Time.add (Time.add depart propagation) jitter in
        if Bp_util.Rng.bernoulli t.rng t.faults.drop then t.dropped <- t.dropped + 1
        else begin
          let payload, hint =
            if Bp_util.Rng.bernoulli t.rng t.faults.corrupt then begin
              t.corrupted <- t.corrupted + 1;
              (* The bytes changed, so any decoded form of the original is
                 a lie: the hint must not survive corruption. *)
              (flip_byte t.rng payload, None)
            end
            else (payload, hint)
          in
          ignore
            (Engine.schedule_at t.engine arrive (fun () ->
                 deliver t ~src ~dst ~hint payload));
          if Bp_util.Rng.bernoulli t.rng t.faults.duplicate then begin
            t.duplicated <- t.duplicated + 1;
            let again = Time.add arrive (Time.of_ms 0.1) in
            ignore
              (Engine.schedule_at t.engine again (fun () ->
                   deliver t ~src ~dst ~hint payload))
          end
        end
      end

let traffic_matrix t = Array.map Array.copy t.traffic
let message_matrix t = Array.map Array.copy t.traffic_msgs

let counters t =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    dropped_at_source = t.dropped_at_source;
    corrupted = t.corrupted;
    duplicated = t.duplicated;
    bytes_sent = t.bytes_sent;
  }
