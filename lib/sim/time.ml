type t = int

let zero = 0

let of_ns n =
  if n < 0 then invalid_arg "Time.of_ns: negative";
  n

let of_us n = of_ns (n * 1_000)
let of_ms ms = of_ns (int_of_float (ms *. 1e6 +. 0.5))
let of_sec s = of_ns (int_of_float (s *. 1e9 +. 0.5))

let to_ns t = t
let to_ms t = float_of_int t /. 1e6
let to_sec t = float_of_int t /. 1e9

(* All comparisons below are written out with [int]-typed operands so the
   compiler emits inline integer comparisons. Aliasing the polymorphic
   [Stdlib.compare] / [Stdlib.( < )] instead sends every virtual-time
   comparison — the event heap does dozens per scheduled event — through
   the generic structural-comparison C runtime. *)

let add (a : t) (b : t) : t = a + b

let diff (a : t) (b : t) : t =
  if a < b then invalid_arg "Time.diff: negative";
  a - b

let scale t f = of_ns (int_of_float (float_of_int t *. f +. 0.5))
let max (a : t) (b : t) : t = if a >= b then a else b
let compare (a : t) (b : t) = if a < b then -1 else if a > b then 1 else 0
let ( < ) (a : t) (b : t) = a < b
let ( <= ) (a : t) (b : t) = a <= b
let ( > ) (a : t) (b : t) = a > b
let ( >= ) (a : t) (b : t) = a >= b

let pp ppf t = Format.fprintf ppf "%.3fms" (to_ms t)
