open Bp_sim

module Int_map = Map.Make (Int)

(* ---------- deterministic pairing schedule ---------- *)

module Schedule = struct
  (* Pure arithmetic hash — no RNG, no global state: the schedule is a
     function of the per-source chain state alone, so runs are
     bit-reproducible at any --jobs and every node computes the same
     rotation. *)
  let fold_string h s =
    String.fold_left
      (fun h c -> ((h * 131) + Char.code c) land 0x3FFFFFFFFFFFFF)
      h s

  let pair ~src ~dest ~head_seq ~chain ~attempt ~n_senders ~n_receivers =
    let h0 = (((src * 8191) + dest) * 524287) + (head_seq land 0xFFFFFF) in
    let h = fold_string (h0 land max_int) chain in
    let h = (h lxor (h lsr 17)) land max_int in
    let s = (((h mod n_senders) + attempt) mod n_senders + n_senders) mod n_senders in
    (* The receiver takes an extra step each time the sender completes a
       full rotation: with a shared stride the pairing degenerates to the
       n pairs of one diagonal and a skip-guided pick loop (demotions,
       distinctness) cycles the same few pairs until its fuel runs out.
       The staggered stride sweeps all [n_senders * n_receivers] pairs. *)
    let r =
      ((((h / 1048573) mod n_receivers) + attempt + (attempt / n_senders))
       mod n_receivers
      + n_receivers)
      mod n_receivers
    in
    (s, r)
end

(* ---------- agent ---------- *)

type host = {
  participant : int;
  n_participants : int;
  node_idx : int;
  fi : int;
  identity : string;
  addr : Addr.t;
  peers : Addr.t array;
  peer_addr : int -> int -> Addr.t;
  digest : string -> string;
  sign : string -> string;
  verify : signer:string -> msg:string -> signature:string -> bool;
  send : dst:Addr.t -> Proto.t -> unit;
  last_received : int -> int;
  enqueue_recv : Record.transmission -> requester:Addr.t -> unit;
}

(* A coverage candidate: one claimed statement at a sequence number, with
   the distinct source-unit signers whose verified chain heads contain
   it. Byzantine signers can introduce at most fi forks, none of which
   can reach fi+1 distinct signers without an honest one — and honest
   nodes all sign the single committed chain. *)
type candidate = {
  c_log_pos : int;
  mutable c_payload : string option;
      (* filled by the wave's payload-carrying probe; digest-stub probes
         add signers without bytes *)
  c_stmt : string; (* statement digest *)
  mutable c_signers : string list; (* distinct identities, sorted *)
}

type src_state = {
  mutable committed_chain : string Int_map.t; (* seq -> chain digest *)
  mutable candidates : candidate list Int_map.t; (* seq -> forks *)
  mutable s_reply : Addr.t option;
      (* the source daemon's ack address, learned from direct probes *)
  mutable s_owed_heads : unit Int_map.t;
      (* heads this node was {e directly} probed at: it owes the daemon
         an ack for exactly those sequence numbers, even when the signer
         completing their coverage arrives by dispersal. Every other
         record enqueues silently — acks are cumulative, so the wave
         owners of the highest committed head vouch for the whole prefix
         and the WAN ack fan-in stays at the wave size, not the unit or
         backlog size. *)
  mutable s_submit : unit Int_map.t;
      (* records whose bytes arrived aboard a {e direct} probe: this node
         is the designated consensus submitter for exactly those — one
         node per record on the clean path, so the receiving unit opens
         one slot per record instead of one per holder. *)
}

type out_state = {
  mutable out_records : (int * string) Int_map.t; (* seq -> pos, payload *)
  mutable out_chain : string Int_map.t; (* seq -> chain digest *)
  mutable out_stmts : string Int_map.t; (* seq -> statement digest *)
  mutable out_frontier : int; (* highest contiguously chained seq *)
  mutable deferred : (int * int * int * int * Addr.t) list;
      (* probe requests whose head outruns our committed frontier —
         (base, head, payload_from, receiver, reply_to) — replayed when
         the chain catches up *)
}

type stats = {
  probes_sent : int;
  probes_rx : int;
  disperses_rx : int;
  sig_verifies : int;
  rejected : int;
}

type t = {
  host : host;
  incoming : (int, src_state) Hashtbl.t; (* by source participant *)
  outgoing : (int, out_state) Hashtbl.t; (* by destination participant *)
  mutable probes_sent : int;
  mutable probes_rx : int;
  mutable disperses_rx : int;
  mutable sig_verifies : int;
  mutable rejected : int;
  mutable byz_equivocate : bool;
}

(* Largest window a single probe may carry; a bigger backlog converges
   over successive probes (each ack advances the base). *)
let max_window = 64

let create host =
  {
    host;
    incoming = Hashtbl.create 8;
    outgoing = Hashtbl.create 8;
    probes_sent = 0;
    probes_rx = 0;
    disperses_rx = 0;
    sig_verifies = 0;
    rejected = 0;
    byz_equivocate = false;
  }

let stats t =
  {
    probes_sent = t.probes_sent;
    probes_rx = t.probes_rx;
    disperses_rx = t.disperses_rx;
    sig_verifies = t.sig_verifies;
    rejected = t.rejected;
  }

let set_byzantine_equivocate t b = t.byz_equivocate <- b

let src_state t src =
  match Hashtbl.find_opt t.incoming src with
  | Some s -> s
  | None ->
      let s =
        {
          committed_chain = Int_map.empty;
          candidates = Int_map.empty;
          s_reply = None;
          s_owed_heads = Int_map.empty;
          s_submit = Int_map.empty;
        }
      in
      Hashtbl.replace t.incoming src s;
      s

let out_state t dest =
  match Hashtbl.find_opt t.outgoing dest with
  | Some o -> o
  | None ->
      let o =
        {
          out_records = Int_map.empty;
          out_chain = Int_map.empty;
          out_stmts = Int_map.empty;
          out_frontier = -1;
          deferred = [];
        }
      in
      Hashtbl.replace t.outgoing dest o;
      o

let committed_chain_at s seq =
  if seq = -1 then Some Record.chain_genesis
  else Int_map.find_opt seq s.committed_chain

let out_chain_at o seq =
  if seq = -1 then Some Record.chain_genesis else Int_map.find_opt seq o.out_chain

let chain_head t ~dest ~seq = out_chain_at (out_state t dest) seq

let stmt_digest t (tr : Record.transmission) =
  t.host.digest (Record.transmission_statement ~digest:t.host.digest tr)

(* ---------- sender side: own outbound chain index ---------- *)

(* Build and send one probe over (base, min head out_frontier], shipping
   payloads only above [payload_from] (statement digests below — the
   chain head recomputes from either). Assumes the request was already
   screened. *)
let send_probe t ~dest o ~base ~head ~payload_from ~receiver ~reply_to =
  let head = Stdlib.min head o.out_frontier in
  let head = Stdlib.min head (base + max_window) in
  if head > base then begin
    let window =
      List.init (head - base) (fun k ->
          let seq = base + 1 + k in
          match Int_map.find_opt seq o.out_records with
          | Some (pos, payload) ->
              if seq > payload_from then (seq, pos, payload)
              else
                let stmt =
                  match Int_map.find_opt seq o.out_stmts with
                  | Some s -> s
                  | None -> "" (* unreachable: seq <= out_frontier *)
                in
                (seq, pos, stmt)
          | None -> (seq, -1, "") (* unreachable: seq <= out_frontier *))
    in
    match out_chain_at o head with
    | None -> ()
    | Some head_digest ->
        let head_digest =
          if t.byz_equivocate then t.host.digest ("equivocation:" ^ head_digest)
          else head_digest
        in
        let statement =
          Record.chain_statement ~src:t.host.participant ~dest ~head_seq:head
            ~head:head_digest
        in
        let probe =
          {
            Proto.p_src = t.host.participant;
            p_dest = dest;
            p_base = base;
            p_payload_from = payload_from;
            p_window = window;
            p_signer = t.host.identity;
            p_signature = t.host.sign statement;
            p_reply_to = reply_to;
          }
        in
        let n_dest = Array.length t.host.peers in
        t.probes_sent <- t.probes_sent + 1;
        t.host.send
          ~dst:(t.host.peer_addr dest (((receiver mod n_dest) + n_dest) mod n_dest))
          (Proto.Probe probe)
  end

let extend_out_chain t dest o =
  let continue = ref true in
  while !continue do
    let next = o.out_frontier + 1 in
    match Int_map.find_opt next o.out_records with
    | None -> continue := false
    | Some (pos, payload) ->
        let tr =
          {
            Record.src = t.host.participant;
            tdest = dest;
            tcomm_seq = next;
            log_pos = pos;
            tpayload = payload;
            proofs = [];
            geo_proofs = [];
          }
        in
        let prev =
          match out_chain_at o o.out_frontier with
          | Some c -> c
          | None -> Record.chain_genesis (* unreachable: frontier is chained *)
        in
        let stmt = stmt_digest t tr in
        let link = Record.chain_step ~digest:t.host.digest ~prev ~stmt_digest:stmt in
        o.out_chain <- Int_map.add next link o.out_chain;
        o.out_stmts <- Int_map.add next stmt o.out_stmts;
        o.out_frontier <- next
  done;
  (* Replay probe requests that were waiting for our chain to commit up
     to their head — a solicitation races the sender's own execution of
     the record, and dropping it would cost a full daemon retry tick. *)
  let matured, still =
    List.partition (fun (_, head, _, _, _) -> head <= o.out_frontier) o.deferred
  in
  o.deferred <- still;
  List.iter
    (fun (base, head, payload_from, receiver, reply_to) ->
      send_probe t ~dest o ~base ~head ~payload_from ~receiver ~reply_to)
    matured

(* ---------- receiver side: committed chain + coverage ---------- *)

let retire_candidates s frontier =
  let _, above = Int_map.partition (fun seq _ -> seq <= frontier) s.candidates in
  s.candidates <- above;
  let _, owed = Int_map.partition (fun seq _ -> seq <= frontier) s.s_owed_heads in
  s.s_owed_heads <- owed;
  let _, submit = Int_map.partition (fun seq _ -> seq <= frontier) s.s_submit in
  s.s_submit <- submit

let on_committed t ~pos record =
  match record with
  | Record.Comm { dest; comm_seq; payload } ->
      let o = out_state t dest in
      o.out_records <- Int_map.add comm_seq (pos, payload) o.out_records;
      extend_out_chain t dest o
  | Record.Recv tr when tr.Record.tdest = t.host.participant ->
      let s = src_state t tr.Record.src in
      let seq = tr.Record.tcomm_seq in
      (match committed_chain_at s (seq - 1) with
      | Some prev when not (Int_map.mem seq s.committed_chain) ->
          let link =
            Record.chain_step ~digest:t.host.digest ~prev
              ~stmt_digest:(stmt_digest t (Record.strip_proofs tr))
          in
          s.committed_chain <- Int_map.add seq link s.committed_chain
      | _ -> ());
      retire_candidates s (t.host.last_received tr.Record.src)
  | Record.Recv _ | Record.Commit _ | Record.Mirrored _ -> ()

let unit_prefix p = Printf.sprintf "u%d/" p

let has_prefix ~prefix s =
  let plen = String.length prefix in
  String.length s > plen && String.equal (String.sub s 0 plen) prefix

let insert_signer c identity =
  let rec go = function
    | [] -> [ identity ]
    | x :: rest as l ->
        let cmp = String.compare identity x in
        if cmp = 0 then l else if cmp < 0 then identity :: l else x :: go rest
  in
  c.c_signers <- go c.c_signers

let add_candidate s ~seq ~log_pos ~payload ~stmt ~signer =
  let existing = Option.value ~default:[] (Int_map.find_opt seq s.candidates) in
  match List.find_opt (fun c -> String.equal c.c_stmt stmt) existing with
  | Some c -> (
      insert_signer c signer;
      match (c.c_payload, payload) with
      | None, Some _ -> c.c_payload <- payload
      | (None | Some _), _ -> ())
  | None ->
      let c =
        { c_log_pos = log_pos; c_payload = payload; c_stmt = stmt; c_signers = [ signer ] }
      in
      insert_signer c signer;
      s.candidates <- Int_map.add seq (c :: existing) s.candidates

let covered_candidate t cands stmt =
  List.find_opt
    (fun c ->
      String.equal c.c_stmt stmt && List.length c.c_signers >= t.host.fi + 1)
    cands

let covered t (tr : Record.transmission) =
  match Int_map.find_opt tr.Record.tcomm_seq (src_state t tr.Record.src).candidates with
  | None -> false
  | Some cands ->
      Option.is_some
        (covered_candidate t cands (stmt_digest t (Record.strip_proofs tr)))

(* Enqueue every record of the window that just reached fi+1 distinct
   signers into the node's receive path. The pending set deduplicates;
   consensus still re-checks coverage via [covered] at every replica. *)
let enqueue_ready t s ~src ~reply_for entries =
  (* Submission duty is scoped tighter than ack duty: only the node
     whose direct probe carried this record's bytes hands it to the
     consensus pump — one node per record. Dispersal-only nodes keep their
     candidates, answering [covered] when the replica verifies the
     proposal, but submitting from all 3fi+1 of them would put ~n
     duplicate requests through the receiving unit's consensus per
     record (and, under the modeled verification cost, charge for every
     one). Liveness: coverage spreads only through honest direct
     receivers' dispersals, and recovery re-ships register duty for the
     whole stalled window, so a coverable record always has an honest
     exact-duty owner. *)
  let duty seq = Int_map.mem seq s.s_submit in
  List.iter
    (fun (seq, _log_pos, _payload, stmt) ->
      if seq > t.host.last_received src && duty seq then
        match Int_map.find_opt seq s.candidates with
        | None -> ()
        | Some cands -> (
            match covered_candidate t cands stmt with
            | None -> ()
            | Some c -> (
                match c.c_payload with
                | None ->
                    (* Covered by digest-stub probes alone: the wave's
                       payload probe is lost or late; the daemon's retry
                       re-ships bytes. *)
                    ()
                | Some payload ->
                    t.host.enqueue_recv
                      {
                        Record.src;
                        tdest = t.host.participant;
                        tcomm_seq = seq;
                        log_pos = c.c_log_pos;
                        tpayload = payload;
                        proofs = [];
                        geo_proofs = [];
                      }
                      ~requester:(reply_for seq))))
    entries

(* Validate the probe's shape and recompute the chain head from our own
   committed anchor over the probe's window. Returns the per-entry
   statement digests and the implied head. *)
let fold_window t ~src ~base ~payload_from window =
  let rec go expected prev acc = function
    | [] -> Some (prev, List.rev acc)
    | (seq, log_pos, body) :: rest ->
        if seq <> expected then None
        else begin
          let stmt, payload =
            if seq > payload_from then begin
              let tr =
                {
                  Record.src;
                  tdest = t.host.participant;
                  tcomm_seq = seq;
                  log_pos;
                  tpayload = body;
                  proofs = [];
                  geo_proofs = [];
                }
              in
              (stmt_digest t tr, Some body)
            end
            else (body, None) (* digest stub: the body is the statement *)
          in
          let link = Record.chain_step ~digest:t.host.digest ~prev ~stmt_digest:stmt in
          go (seq + 1) link ((seq, log_pos, payload, stmt) :: acc) rest
        end
  in
  match committed_chain_at (src_state t src) base with
  | None -> None
  | Some anchor -> go (base + 1) anchor [] window

let handle_probe t (p : Proto.probe) ~disperse =
  let {
    Proto.p_src;
    p_dest;
    p_base;
    p_payload_from;
    p_window;
    p_signer;
    p_signature;
    p_reply_to;
  } =
    p
  in
  if
    p_dest = t.host.participant
    && p_src >= 0
    && p_src < t.host.n_participants
    && p_src <> t.host.participant
    && has_prefix ~prefix:(unit_prefix p_src) p_signer
    && List.length p_window <= max_window
  then begin
    let frontier = t.host.last_received p_src in
    let head_seq =
      List.fold_left (fun _ (seq, _, _) -> seq) p_base p_window
    in
    if head_seq <= frontier then begin
      (* Nothing new — cumulative ack so the daemon's frontier advances
         past a duplicate or stale probe. Only the directly probed node
         answers: peers acking every dispersal would turn the one WAN
         ack per delivery into a unit-sized fan-in. *)
      if disperse then
        t.host.send ~dst:p_reply_to
          (Proto.Ack { from_participant = t.host.participant; comm_seq = frontier })
    end
    else begin
      match fold_window t ~src:p_src ~base:p_base ~payload_from:p_payload_from p_window with
      | None -> t.rejected <- t.rejected + 1 (* gap, fork anchor, malformed *)
      | Some (head, entries) ->
          let statement =
            Record.chain_statement ~src:p_src ~dest:p_dest ~head_seq ~head
          in
          t.sig_verifies <- t.sig_verifies + 1;
          if
            t.host.verify ~signer:p_signer ~msg:statement ~signature:p_signature
          then begin
            let s = src_state t p_src in
            if disperse then begin
              s.s_reply <- Some p_reply_to;
              (* Being probed directly creates duty: an ack owed for the
                 probe's head, and submission duty for every record whose
                 bytes this probe carried. A normal wave's payload probe
                 carries one new record, so duty lands on one node per
                 record; a recovery re-ship carries the whole stalled
                 window, so its receiver adopts the stuck range — that is
                 what keeps exact-duty submission live when the original
                 owners were byzantine or lossy. *)
              s.s_owed_heads <- Int_map.add head_seq () s.s_owed_heads;
              List.iter
                (fun (seq, _log_pos, payload, _stmt) ->
                  match payload with
                  | Some _ -> s.s_submit <- Int_map.add seq () s.s_submit
                  | None -> ())
                entries
            end;
            (* One verified chain-head signature vouches for every
               statement of the window: the signer joins each entry's
               candidate. *)
            List.iter
              (fun (seq, log_pos, payload, stmt) ->
                if seq > frontier then
                  add_candidate s ~seq ~log_pos ~payload ~stmt ~signer:p_signer)
              entries;
            if disperse then begin
              let self = t.host.addr in
              Array.iter
                (fun peer ->
                  if not (Addr.equal peer self) then
                    t.host.send ~dst:peer (Proto.Disperse p))
                t.host.peers
            end;
            (* Only the nodes directly probed at a head carry the ack
               duty for that head: coverage often completes on a
               dispersal — each direct probe alone is one signer short
               of fi+1 — and the ack must still flow, but from the wave
               owners alone. Acks are cumulative, so the owners of the
               newest committed head cover every lower record and the
               WAN fan-in stays at the wave size. *)
            let reply_for seq =
              if Int_map.mem seq s.s_owed_heads then
                Option.value ~default:t.host.addr s.s_reply
              else t.host.addr
            in
            enqueue_ready t s ~src:p_src ~reply_for entries
          end
          else t.rejected <- t.rejected + 1
    end
  end
  else t.rejected <- t.rejected + 1

let on_probe t p =
  t.probes_rx <- t.probes_rx + 1;
  handle_probe t p ~disperse:true

let on_disperse t p =
  t.disperses_rx <- t.disperses_rx + 1;
  handle_probe t p ~disperse:false

(* ---------- sender side: delegated probe construction ---------- *)

let max_deferred = 8

let on_probe_request t ~dest ~base ~head ~payload_from ~receiver ~reply_to =
  if dest >= 0 && dest < t.host.n_participants && dest <> t.host.participant
     && base >= -1 && head > base
     && head - base <= 4 * max_window
  then begin
    let o = out_state t dest in
    if head > o.out_frontier then begin
      (* The solicitation raced our own execution of the record: stash
         it (bounded, so junk requests from a byzantine daemon cannot
         grow state) and replay once the chain commits that far. *)
      let same (b, h, pf, r, rt) =
        b = base && h = head && pf = payload_from && r = receiver
        && Addr.equal rt reply_to
      in
      if not (List.exists same o.deferred) then begin
        let kept =
          match o.deferred with
          | _oldest :: rest when List.length o.deferred >= max_deferred -> rest
          | l -> l
        in
        o.deferred <- kept @ [ (base, head, payload_from, receiver, reply_to) ]
      end
    end;
    (* Serve whatever prefix of the window is already committed — prompt
       partial coverage beats waiting for the full head. *)
    if o.out_frontier > base then
      send_probe t ~dest o ~base ~head ~payload_from ~receiver ~reply_to
  end
