open Bp_sim

let log_src = Logs.Src.create "bp.core" ~doc:"Blockplane unit node"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Int_map = Map.Make (Int)

type pending_txn = { txn : Record.transmission; requester : Addr.t }

type t = {
  net : Network.t;
  pbft_cfg : Bp_pbft.Config.t;
  participant : int;
  n_participants : int;
  node_idx : int;
  fg : int;
  addr : Addr.t;
  transport : Bp_net.Transport.t;
  vcache : Bp_crypto.Verify_cache.t;
  mutable replica : Bp_pbft.Replica.t option; (* set right after create *)
  client : Bp_pbft.Client.t;
  log : Bp_storage.Log_store.t;
  wal : Bp_storage.Wal.t;
  app : App.instance;
  last_received : int array;
  reception : string Queue.t array;
  (* receive path: per-source out-of-order transmissions awaiting commit *)
  pending : (int, pending_txn Int_map.t) Hashtbl.t;
  submitting : (int, int) Hashtbl.t; (* src -> in-flight comm_seq *)
  committed_waiters : (int * int, unit -> unit) Hashtbl.t;
  mutable executed_hooks : (pos:int -> Record.t -> unit) list;
  mutable aux_listeners : (src:Addr.t -> Proto.t -> bool) list;
  mutable geo_handler : (src:Addr.t -> Proto.t -> unit) option;
  mirror_index : (int * int, string) Hashtbl.t; (* owner, pos -> value digest *)
  mutable byz_sign_anything : bool;
  mutable byz_drop_comm : bool;
  mutable cluster : Cluster_send.t option; (* set by create iff cluster-send on *)
  mutable sig_jobs : int; (* transmission-proof signature checks demanded *)
  (* cross-shard 2PC: ops staged by a committed prepare record, awaiting
     the decide record of the same txid (see Shard) *)
  xs_staging : (string, (string * string) list) Hashtbl.t;
}

let addr t = t.addr
let peers t = t.pbft_cfg.Bp_pbft.Config.nodes
let transport t = t.transport
let replica t =
  match t.replica with
  | Some r -> r
  | None ->
      (* [create] installs the replica before returning the node. *)
      invalid_arg "Unit_node.replica: node not fully constructed"
let participant t = t.participant
let pipeline_occupancy t = Bp_pbft.Replica.pipeline_occupancy (replica t)
let log t = t.log
let app t = t.app
let app_digest t = App.digest t.app
let identity t = Bp_pbft.Config.identity t.pbft_cfg t.addr
let last_received t ~src = t.last_received.(src)
let set_byzantine_sign_anything t b = t.byz_sign_anything <- b
let set_byzantine_drop_comm t b = t.byz_drop_comm <- b
let cluster_agent t = t.cluster
let cluster_enabled t = Option.is_some t.cluster
let xs_staged t = Hashtbl.length t.xs_staging

let poll_receive t ~src =
  let q = t.reception.(src) in
  if Queue.is_empty q then None else Some (Queue.pop q)

let add_executed_hook t f = t.executed_hooks <- f :: t.executed_hooks
let add_aux_listener t f = t.aux_listeners <- f :: t.aux_listeners
let set_geo_request_handler t f = t.geo_handler <- Some f

let mirror_digest t ~owner ~pos = Hashtbl.find_opt t.mirror_index (owner, pos)

let keystore t = t.pbft_cfg.Bp_pbft.Config.keystore
let vcache t = t.vcache

let sign_mirror t ~owner ~pos ~digest =
  match mirror_digest t ~owner ~pos with
  | Some d when String.equal d digest ->
      Some
        (Bp_crypto.Verify_cache.sign t.vcache ~signer:(identity t)
           (Proto.mirror_statement ~owner ~pos ~digest))
  | _ -> None

(* ---------- built-in receive verification (§IV-C) ---------- *)

let unit_identity_prefix p = Printf.sprintf "u%d/" p

(* Signatures whose claimed identity belongs to the attesting unit; the
   screen is pure string work, so it runs before any crypto. *)
let eligible_sigs ~from_participant sigs =
  let prefix = unit_identity_prefix from_participant in
  let plen = String.length prefix in
  List.filter
    (fun (identity, _) ->
      String.length identity > plen
      && String.equal (String.sub identity 0 plen) prefix)
    sigs

let bundle_jobs ~from_participant ~statement sigs =
  List.map
    (fun (identity, _, signature) ->
      Bp_crypto.Verify_batch.Keyed
        { signer = identity; msg = statement; signature })
    (Record.signature_jobs ~statement (eligible_sigs ~from_participant sigs))

(* One fanned Verify_batch submission for the whole fi+1 bundle instead
   of a per-signature loop. The fold over verdicts reproduces the
   sequential counting rule exactly: an identity only enters [seen] once
   a signature of its verifies, so several (even byzantine-duplicated)
   copies count at most once, and the count — hence the accept verdict —
   is identical at any worker count. The jobs carry only immutable data
   (strings); everything mutable — [t.vcache], [seen], the keystore —
   stays on this domain, a discipline bplint's R6-domainescape and
   R7-parpure passes check mechanically on every build. *)
let valid_sig_bundle t ~from_participant ~statement ~needed sigs =
  let eligible = eligible_sigs ~from_participant sigs in
  t.sig_jobs <- t.sig_jobs + List.length eligible;
  let jobs =
    List.map
      (fun (identity, signature) ->
        Bp_crypto.Verify_batch.Keyed
          { signer = identity; msg = statement; signature })
      eligible
  in
  let verdicts =
    Bp_crypto.Verify_batch.verify ~cache:t.vcache
      ~keystore:t.pbft_cfg.Bp_pbft.Config.keystore
      (Bp_crypto.Verify_batch.global ())
      jobs
  in
  let seen = Hashtbl.create 8 in
  let count =
    List.fold_left2
      (fun acc (identity, _) verdict ->
        if Hashtbl.mem seen identity then acc
        else if verdict then begin
          Hashtbl.add seen identity ();
          acc + 1
        end
        else acc)
      0 eligible verdicts
  in
  count >= needed

let fi t = t.pbft_cfg.Bp_pbft.Config.f

let verify_effort t =
  t.sig_jobs
  + (match t.cluster with
    | Some agent -> (Cluster_send.stats agent).Cluster_send.sig_verifies
    | None -> 0)

let verify_transmission t (tr : Record.transmission) =
  tr.Record.tdest = t.participant
  && tr.Record.src >= 0
  && tr.Record.src < t.n_participants
  && tr.Record.src <> t.participant
  (* (1) fi+1 signatures from the source unit over the statement — or,
     in cluster-sending mode, fi+1 distinct source-unit signers attesting
     a chain head that covers exactly this record (the probe signatures
     were verified once on arrival; this is a pure table lookup). The
     bundle path stays live even with the agent installed: reserves or a
     mixed deployment may still ship proof-carrying records. *)
  && (match (t.cluster, tr.Record.proofs) with
     | Some agent, [] when t.fg = 0 -> Cluster_send.covered agent tr
     | _ ->
         valid_sig_bundle t ~from_participant:tr.Record.src
           ~statement:
             (Record.transmission_statement
                ~digest:(Bp_crypto.Verify_cache.digest t.vcache)
                tr)
           ~needed:(fi t + 1) tr.Record.proofs)
  (* (2) not received before and (3) no gap: strictly the next one *)
  && tr.Record.tcomm_seq = t.last_received.(tr.Record.src) + 1
  (* (4) with fg > 0, proofs from fg other participants (§V) *)
  && begin
       if t.fg = 0 then true
       else begin
         let valid_bundles =
           List.filter
             (fun (p, sigs) ->
               p <> tr.Record.src
               && valid_sig_bundle t ~from_participant:p
                    ~statement:
                      (Proto.mirror_statement ~owner:tr.Record.src
                         ~pos:tr.Record.log_pos
                         ~digest:
                           (Bp_crypto.Verify_cache.digest t.vcache
                              (Record.encode (Record.comm_image tr))))
                    ~needed:(fi t + 1) sigs)
             tr.Record.geo_proofs
         in
         List.length valid_bundles >= t.fg
       end
     end

(* Read markers (§VI-A linearizable reads) are middleware-internal
   commit records: they order reads but never reach the user protocol. *)
let is_read_marker payload =
  String.length payload >= 13 && String.sub payload 0 13 = "_read_marker:"

(* What the user protocol sees of a committed record — shared between
   live execution and WAL replay so recovery is exact. Cross-shard
   transaction records carry staging semantics: a prepare parks its ops
   under the txid, the decide of the same txid applies them in order (or
   drops them on abort), and a single-shard [Xs_apply] applies its ops
   immediately. The user protocol sees each op as an ordinary commit;
   the xs envelope never reaches it, like read markers. [staging] is
   per-log-copy state, so replay hands in its own empty table and
   reconverges exactly. *)
let apply_to_app ~staging app record =
  match record with
  | Record.Mirrored _ -> ()
  | Record.Commit payload when is_read_marker payload -> ()
  | Record.Commit payload when Record.is_xs_payload payload -> (
      match Record.xs_of_payload payload with
      | `Xs (Record.Xs_prepare { txid; ops }) -> Hashtbl.replace staging txid ops
      | `Xs (Record.Xs_apply { txid = _; ops }) ->
          List.iter (fun (_key, op) -> App.apply app (Record.Commit op)) ops
      | `Xs (Record.Xs_decide { txid; commit }) ->
          (match Hashtbl.find_opt staging txid with
          | Some ops when commit ->
              List.iter (fun (_key, op) -> App.apply app (Record.Commit op)) ops
          | Some _ | None -> ());
          Hashtbl.remove staging txid
      | `Not_xs | `Malformed -> ())
  | Record.Commit _ | Record.Comm _ | Record.Recv _ -> App.apply app record

let wal_image t = Bp_storage.Wal.contents t.wal

let replay ~image ~app =
  let wal, discarded = Bp_storage.Wal.of_contents image in
  let staging = Hashtbl.create 8 in
  let count = ref 0 in
  List.iter
    (fun encoded ->
      match Record.decode encoded with
      | Ok record ->
          apply_to_app ~staging app record;
          incr count
      | Error _ -> ())
    (Bp_storage.Wal.records wal);
  (!count, if discarded = 0 then Ok () else Error `Corrupt_tail)

let verifier t ~kind ~op =
  match Record.decode op with
  | Error _ -> false
  | Ok record -> (
      Record.kind_to_int (Record.kind_of record) = kind
      &&
      match record with
      | Record.Recv tr -> verify_transmission t tr && App.verify t.app record
      | Record.Mirrored _ -> true (* geo failures are benign (§V) *)
      | Record.Commit payload when is_read_marker payload -> true
      | Record.Commit payload when Record.is_xs_payload payload -> (
          (* Prepare/apply: every enclosed op must be a transition the
             app would accept — a rejected prepare is this shard's NO
             vote. Decides carry no ops; a decide for an unknown txid
             applies nothing, so it is always safe to order. *)
          match Record.xs_of_payload payload with
          | `Xs (Record.Xs_prepare { ops; _ } | Record.Xs_apply { ops; _ }) ->
              ops <> []
              && List.for_all
                   (fun (_key, op) -> App.verify t.app (Record.Commit op))
                   ops
          | `Xs (Record.Xs_decide _) -> true
          | `Not_xs | `Malformed -> false)
      | Record.Commit _ | Record.Comm _ -> App.verify t.app record)

(* ---------- asynchronous verification prefetch ---------- *)

(* Every signature check [verifier] will run for a batch's transmission
   records: the fi+1 source-unit bundles and, with fg > 0, the geo
   mirror bundles. Only crypto — the stateful screens (sequence gaps,
   duplicate detection, application verify) stay in [verifier], judged
   at the head of the execution order as always. *)
let prefetch_jobs t batch =
  List.concat_map
    (fun (r : Bp_pbft.Msg.request) ->
      match Record.decode r.Bp_pbft.Msg.op with
      | Ok (Record.Recv tr) when tr.Record.tdest = t.participant ->
          let statement =
            Record.transmission_statement
              ~digest:(Bp_crypto.Verify_cache.digest t.vcache)
              tr
          in
          let main =
            bundle_jobs ~from_participant:tr.Record.src ~statement
              tr.Record.proofs
          in
          let geo =
            if t.fg = 0 then []
            else
              List.concat_map
                (fun (p, sigs) ->
                  if p = tr.Record.src then []
                  else
                    bundle_jobs ~from_participant:p
                      ~statement:
                        (Proto.mirror_statement ~owner:tr.Record.src
                           ~pos:tr.Record.log_pos
                           ~digest:
                             (Bp_crypto.Verify_cache.digest t.vcache
                                (Record.encode (Record.comm_image tr))))
                      sigs)
                tr.Record.geo_proofs
          in
          main @ geo
      | _ -> [])
    batch

(* The replica calls this when a pre-prepare lands for a slot that is
   not next to execute: submit the batch's signature checks to the
   worker pool and hand back the join closure. The join [record]s every
   verdict in the per-node cache, so when the slot is judged the
   bundle verification above is all probe hits — verdicts identical
   with or without the prefetch, at any worker count. *)
let preverify t batch =
  match prefetch_jobs t batch with
  | [] -> None
  | jobs ->
      let handle =
        Bp_crypto.Verify_batch.submit ~cache:t.vcache
          ~keystore:t.pbft_cfg.Bp_pbft.Config.keystore
          (Bp_crypto.Verify_batch.global ())
          jobs
      in
      Some (fun () -> ignore (Bp_crypto.Verify_batch.await handle))

(* ---------- execution ---------- *)

(* Participants map 1:1 to datacenters, so an address's unit — and hence
   its aux tag — is its [dc] component. *)
let send_aux t ~dst msg =
  Bp_net.Transport.send t.transport ~dst ~tag:(Proto.aux_tag dst.Addr.dc)
    (Proto.encode msg)

let ack_pending t src =
  (* Acknowledge and drop every pending transmission at or below the
     in-order frontier. Cumulative acks. *)
  let frontier = t.last_received.(src) in
  let map = Option.value ~default:Int_map.empty (Hashtbl.find_opt t.pending src) in
  let acked, rest = Int_map.partition (fun seq _ -> seq <= frontier) map in
  Hashtbl.replace t.pending src rest;
  Int_map.iter
    (fun _ { requester; _ } ->
      send_aux t ~dst:requester
        (Proto.Ack { from_participant = t.participant; comm_seq = frontier }))
    acked;
  (match Hashtbl.find_opt t.submitting src with
  | Some seq when seq <= frontier -> Hashtbl.remove t.submitting src
  | _ -> ())

let rec pump_receive t src =
  if not (Hashtbl.mem t.submitting src) then begin
    let next = t.last_received.(src) + 1 in
    let map = Option.value ~default:Int_map.empty (Hashtbl.find_opt t.pending src) in
    match Int_map.find_opt next map with
    | None -> ()
    | Some { txn; _ } ->
        Hashtbl.replace t.submitting src next;
        Bp_pbft.Client.submit t.client
          ~kind:(Record.kind_to_int Record.Received)
          (Record.encode (Record.Recv txn))
          ~on_result:(fun result ->
            (match Hashtbl.find_opt t.submitting src with
            | Some seq when seq = next -> Hashtbl.remove t.submitting src
            | _ -> ());
            if int_of_string_opt result = None then begin
              (* Rejected (bad proofs / duplicate): drop it for good — an
                 honest daemon will retransmit a valid copy if one exists. *)
              let map =
                Option.value ~default:Int_map.empty (Hashtbl.find_opt t.pending src)
              in
              Hashtbl.replace t.pending src (Int_map.remove next map)
            end;
            pump_receive t src)
  end

let submit_record t record ~on_result =
  Bp_pbft.Client.submit t.client
    ~kind:(Record.kind_to_int (Record.kind_of record))
    (Record.encode record) ~on_result

let submit_recv t txn ~on_committed =
  let src = txn.Record.src in
  if txn.Record.tcomm_seq <= t.last_received.(src) then on_committed ()
  else begin
    Hashtbl.replace t.committed_waiters (src, txn.Record.tcomm_seq) on_committed;
    let map = Option.value ~default:Int_map.empty (Hashtbl.find_opt t.pending src) in
    if not (Int_map.mem txn.Record.tcomm_seq map) then
      Hashtbl.replace t.pending src
        (Int_map.add txn.Record.tcomm_seq { txn; requester = t.addr } map);
    pump_receive t src
  end

let execute t ~seq:_ (r : Bp_pbft.Msg.request) =
  match Record.decode r.Bp_pbft.Msg.op with
  | Error msg ->
      (* Cannot happen for records that passed verification. *)
      Log.err (fun m -> m "%s: executing undecodable record: %s" (Addr.to_string t.addr) msg);
      "error"
  | Ok record ->
      let entry = Bp_storage.Log_store.append t.log r.Bp_pbft.Msg.op in
      let pos = entry.Bp_storage.Log_store.index in
      Bp_storage.Wal.append t.wal r.Bp_pbft.Msg.op;
      apply_to_app ~staging:t.xs_staging t.app record;
      (match record with
      | Record.Recv tr ->
          let src = tr.Record.src in
          if tr.Record.tcomm_seq = t.last_received.(src) + 1 then begin
            t.last_received.(src) <- tr.Record.tcomm_seq;
            Queue.push tr.Record.tpayload t.reception.(src)
          end;
          ack_pending t src;
          (match Hashtbl.find_opt t.committed_waiters (src, tr.Record.tcomm_seq) with
          | Some k ->
              Hashtbl.remove t.committed_waiters (src, tr.Record.tcomm_seq);
              k ()
          | None -> ());
          pump_receive t src
      | Record.Mirrored { owner; opos; ovalue } ->
          Hashtbl.replace t.mirror_index (owner, opos)
            (Bp_crypto.Verify_cache.digest t.vcache ovalue)
      | Record.Commit _ | Record.Comm _ -> ());
      List.iter (fun hook -> hook ~pos record) t.executed_hooks;
      string_of_int pos

(* ---------- auxiliary message handling ---------- *)

let sign_transmission t (tr : Record.transmission) =
  let ok =
    t.byz_sign_anything
    ||
    match Bp_storage.Log_store.get t.log tr.Record.log_pos with
    | None -> false
    | Some entry -> (
        match Record.decode entry.Bp_storage.Log_store.payload with
        | Ok (Record.Comm { dest; comm_seq; payload }) ->
            dest = tr.Record.tdest
            && comm_seq = tr.Record.tcomm_seq
            && String.equal payload tr.Record.tpayload
        | _ -> false)
  in
  if ok then begin
    let statement =
      Record.transmission_statement
        ~digest:(Bp_crypto.Verify_cache.digest t.vcache)
        tr
    in
    Some (identity t, Bp_crypto.Verify_cache.sign t.vcache ~signer:(identity t) statement)
  end
  else None

let handle_sign_request t ~src (tr : Record.transmission) =
  match sign_transmission t tr with
  | None -> ()
  | Some (identity, signature) ->
      send_aux t ~dst:src
        (Proto.Sign_response
           {
             dest = tr.Record.tdest;
             comm_seq = tr.Record.tcomm_seq;
             identity;
             signature;
           })

let enqueue_pending t (tr : Record.transmission) ~requester =
  if tr.Record.tdest = t.participant
     && tr.Record.tcomm_seq > t.last_received.(tr.Record.src)
  then begin
    let s = tr.Record.src in
    let map = Option.value ~default:Int_map.empty (Hashtbl.find_opt t.pending s) in
    (match Int_map.find_opt tr.Record.tcomm_seq map with
    | None ->
        Hashtbl.replace t.pending s
          (Int_map.add tr.Record.tcomm_seq { txn = tr; requester } map)
    | Some entry
      when entry.requester.Addr.dc = t.participant
           && requester.Addr.dc <> t.participant ->
        (* A remote requester (the source's daemon) supersedes a local
           placeholder: cluster-sending dispersals enqueue on the unit's
           own behalf, and if one landed first the eventual direct probe
           must still get its WAN acknowledgement. *)
        Hashtbl.replace t.pending s
          (Int_map.add tr.Record.tcomm_seq { entry with requester } map)
    | Some _ -> ());
    pump_receive t s
  end

let handle_transmit t ~src (tr : Record.transmission) =
  if tr.Record.tdest = t.participant then begin
    if tr.Record.tcomm_seq <= t.last_received.(tr.Record.src) then
      (* Duplicate: cumulative ack so the sender advances. *)
      send_aux t ~dst:src
        (Proto.Ack
           {
             from_participant = t.participant;
             comm_seq = t.last_received.(tr.Record.src);
           })
    else enqueue_pending t tr ~requester:src
  end

let on_aux t ~src payload =
  match Proto.decode payload with
  | Error e -> Log.debug (fun m -> m "%s: bad aux message: %s" (Addr.to_string t.addr) e)
  | Ok msg -> (
      match msg with
      (* The withholding knob mutes this node's communication-layer
         duties only (signing, receiving, probing) — its PBFT replica
         stays honest, as a byzantine-but-careful node's would. *)
      | Proto.Sign_request { transmission } ->
          if not t.byz_drop_comm then handle_sign_request t ~src transmission
      | Proto.Transmit { transmission } ->
          if not t.byz_drop_comm then handle_transmit t ~src transmission
      | Proto.Probe p -> (
          match t.cluster with
          | Some agent when not t.byz_drop_comm -> Cluster_send.on_probe agent p
          | _ -> ())
      | Proto.Disperse p -> (
          match t.cluster with
          | Some agent when not t.byz_drop_comm -> Cluster_send.on_disperse agent p
          | _ -> ())
      | Proto.Probe_request
          { pr_dest; pr_base; pr_head; pr_payload_from; pr_receiver; pr_reply_to }
        -> (
          match t.cluster with
          | Some agent when not t.byz_drop_comm ->
              Cluster_send.on_probe_request agent ~dest:pr_dest ~base:pr_base
                ~head:pr_head ~payload_from:pr_payload_from ~receiver:pr_receiver
                ~reply_to:pr_reply_to
          | _ -> ())
      | Proto.Reserve_query { src = from } ->
          send_aux t ~dst:src
            (Proto.Reserve_reply { src = from; last = t.last_received.(from) })
      | Proto.Read_query { pos } ->
          let payload =
            Option.map
              (fun e -> e.Bp_storage.Log_store.payload)
              (Bp_storage.Log_store.get t.log pos)
          in
          send_aux t ~dst:src (Proto.Read_reply { pos; payload })
      | Proto.Mirror_request _ | Proto.Mirror_sign_request _ -> (
          match t.geo_handler with Some h -> h ~src msg | None -> ())
      | Proto.Sign_response _ | Proto.Ack _ | Proto.Reserve_reply _
      | Proto.Mirror_proof _ | Proto.Mirror_sign_response _
      | Proto.Read_reply _ ->
          let rec dispatch = function
            | [] -> ()
            | listener :: rest -> if not (listener ~src msg) then dispatch rest
          in
          dispatch t.aux_listeners)

let create ~network ~pbft_cfg ~participant ~n_participants ~node_idx ~fg
    ?(cluster_send = false) ~app () =
  let addr = pbft_cfg.Bp_pbft.Config.nodes.(node_idx) in
  let transport = Bp_net.Transport.create network addr in
  let vcache =
    Bp_crypto.Verify_cache.create pbft_cfg.Bp_pbft.Config.keystore
  in
  let client = Bp_pbft.Client.create ~cache:vcache transport pbft_cfg in
  let t =
    {
      net = network;
      pbft_cfg;
      participant;
      n_participants;
      node_idx;
      fg;
      addr;
      transport;
      vcache;
      replica = None;
      client;
      log = Bp_storage.Log_store.create ();
      wal = Bp_storage.Wal.create ();
      app;
      last_received = Array.make n_participants (-1);
      reception = Array.init n_participants (fun _ -> Queue.create ());
      pending = Hashtbl.create 8;
      submitting = Hashtbl.create 8;
      committed_waiters = Hashtbl.create 8;
      executed_hooks = [];
      aux_listeners = [];
      geo_handler = None;
      mirror_index = Hashtbl.create 64;
      byz_sign_anything = false;
      byz_drop_comm = false;
      cluster = None;
      sig_jobs = 0;
      xs_staging = Hashtbl.create 8;
    }
  in
  let replica =
    Bp_pbft.Replica.create ~cache:vcache transport pbft_cfg ~id:node_idx
      ~execute:(fun ~seq r -> execute t ~seq r)
      ()
  in
  Bp_pbft.Replica.set_verifier replica (fun ~kind ~op -> verifier t ~kind ~op);
  Bp_pbft.Replica.set_preverifier replica (fun batch -> preverify t batch);
  t.replica <- Some replica;
  Bp_net.Transport.set_handler transport ~tag:(Proto.aux_tag participant)
    (fun ~src payload -> on_aux t ~src payload);
  (* Cluster-sending agent: strictly per-node, gated on the knob so the
     default-off path installs no hooks and stays byte-identical to the
     fi+1-bundle deployment. *)
  if cluster_send && fg = 0 then begin
    let agent =
      Cluster_send.create
        {
          Cluster_send.participant;
          n_participants;
          node_idx;
          fi = pbft_cfg.Bp_pbft.Config.f;
          identity = identity t;
          addr;
          peers = pbft_cfg.Bp_pbft.Config.nodes;
          peer_addr = (fun p i -> Addr.make ~dc:p ~idx:i);
          digest = Bp_crypto.Verify_cache.digest vcache;
          sign =
            (fun statement ->
              Bp_crypto.Verify_cache.sign vcache ~signer:(identity t) statement);
          verify =
            (fun ~signer ~msg ~signature ->
              Bp_crypto.Verify_batch.verify_one ~cache:vcache
                ~keystore:pbft_cfg.Bp_pbft.Config.keystore
                (Bp_crypto.Verify_batch.global ())
                ~signer ~msg ~signature);
          send = (fun ~dst msg -> send_aux t ~dst msg);
          last_received = (fun src -> t.last_received.(src));
          enqueue_recv = (fun tr ~requester -> enqueue_pending t tr ~requester);
        }
    in
    t.cluster <- Some agent;
    add_executed_hook t (fun ~pos record -> Cluster_send.on_committed agent ~pos record)
  end;
  t
