(** Expected-constant byzantine cluster-sending (Hellings & Sadoghi,
    "Byzantine Cluster-Sending in Expected Constant Communication").

    The fi+1-signature-bundle path ships Θ(fi) signature bytes per record
    over the WAN and makes every destination node verify fi+1 signatures
    — Θ(fi²) signature work per delivered record. This layer replaces it
    on the inter-participant hot path:

    - {b Pairing schedule}: each delivery attempt picks one source-unit
      sender node and one destination-unit receiver node from a
      deterministic pseudorandom rotation seeded by the per-source chain
      state ({!Schedule.pair}). Both honest with probability at least
      ((2fi+1)/(3fi+1))² ≥ 4/9, so delivery needs O(1) attempts in
      expectation; consecutive attempts rotate through distinct nodes, so
      at most 2fi failed pairs precede a guaranteed honest one — within
      the 3fi+1 node budget.
    - {b Single-signature probes}: the sender signs the head of its
      statement chain ({!Record.chain_statement}); the chain digest binds
      the whole record prefix, so one signature vouches for every record
      in the probe's window.
    - {b Receiver-side local agreement + dispersal}: the receiving node
      verifies one signature, re-broadcasts the probe inside its unit,
      and every node counts {e distinct source-unit signers} per chain
      head. A record is accepted once fi+1 distinct signers — hence at
      least one honest source node — attest a chain covering it. Honest
      source nodes only sign their unit's committed chain, and source
      PBFT safety means only one chain can ever gather an honest
      signature, so equivocating signers cannot assemble fi+1 backing for
      a fork.

    The agent is strictly per-node (like {!Bp_crypto.Verify_cache}):
    coverage observed by one node never stands in for another's. All
    scheduling is pure arithmetic over committed chain state — no RNG —
    so simulation runs are bit-reproducible at any [--jobs]. *)

module Schedule : sig
  val pair :
    src:int ->
    dest:int ->
    head_seq:int ->
    chain:string ->
    attempt:int ->
    n_senders:int ->
    n_receivers:int ->
    int * int
  (** [(sender_idx, receiver_idx)] for a delivery attempt. Base offsets
      are a pure hash of (src, dest, head_seq, chain); successive
      [attempt]s advance the sender every step and the receiver by an
      extra step per full sender rotation, so any window of [n_senders]
      consecutive attempts uses pairwise distinct senders and any window
      of [n_senders * n_receivers] attempts sweeps every pair once. *)
end

type host = {
  participant : int;
  n_participants : int;
  node_idx : int;
  fi : int;
  identity : string;
  addr : Bp_sim.Addr.t;
  peers : Bp_sim.Addr.t array;  (** this unit's nodes, including self *)
  peer_addr : int -> int -> Bp_sim.Addr.t;
      (** [peer_addr p i] = node [i] of participant [p] (deployment
          addressing convention) *)
  digest : string -> string;
  sign : string -> string;  (** sign as this node's identity *)
  verify : signer:string -> msg:string -> signature:string -> bool;
  send : dst:Bp_sim.Addr.t -> Proto.t -> unit;
  last_received : int -> int;
      (** committed in-order frontier per source participant *)
  enqueue_recv : Record.transmission -> requester:Bp_sim.Addr.t -> unit;
      (** hand a covered record to the node's receive path (pending set +
          consensus pump); [requester] receives cumulative acks *)
}
(** Everything the agent needs from its hosting node, as closures — the
    agent layers under {!Unit_node} without depending on it. *)

type t

val create : host -> t

val on_committed : t -> pos:int -> Record.t -> unit
(** Feed every record executed on the hosting node: [Comm] records extend
    the node's own outbound chains (it may be scheduled as a sender);
    [Recv] records extend the committed incoming chain and retire
    coverage candidates. *)

val on_probe : t -> Proto.probe -> unit
(** A WAN probe addressed to this node: verify the chain-head signature
    against the committed anchor, accumulate signer coverage, disperse to
    unit peers, enqueue covered records, ack duplicates. *)

val on_disperse : t -> Proto.probe -> unit
(** Same as {!on_probe} minus the re-dispersal. *)

val on_probe_request :
  t ->
  dest:int ->
  base:int ->
  head:int ->
  payload_from:int ->
  receiver:int ->
  reply_to:Bp_sim.Addr.t ->
  unit
(** The daemon scheduled this node as sender: build the window
    (base, min head own-frontier] from this node's own log index — record
    payloads above [payload_from], statement digests at or below it —
    sign the chain head, and probe destination node [receiver]. A request
    whose head outruns this node's committed frontier is served partially
    (whatever prefix is committed) and stashed, bounded, for replay when
    the chain catches up; a request entirely below the frontier is
    dropped. *)

val covered : t -> Record.transmission -> bool
(** The verifier query: do fi+1 distinct source-unit signers attest a
    chain that contains exactly this record's statement at its sequence
    number? *)

val chain_head : t -> dest:int -> seq:int -> string option
(** This node's own outbound chain digest at [seq] of the (self, dest)
    stream, if committed — seeds the daemon's pairing schedule. *)

type stats = {
  probes_sent : int;
  probes_rx : int;
  disperses_rx : int;
  sig_verifies : int;  (** chain-head signature verifications performed *)
  rejected : int;  (** probes dropped: bad anchor, bad signature, junk *)
}

val stats : t -> stats

val set_byzantine_equivocate : t -> bool -> unit
(** Byzantine knob: when scheduled as a sender, this node signs a
    corrupted chain head — the signature verifies as a byte string but
    attests a fork no honest node shares. *)
