open Bp_sim

module Int_map = Map.Make (Int)

type txn_state = {
  txn : Record.transmission;
  mutable sigs : (string * string) list;
  mutable geo : (int * (string * string) list) list option;
      (* None = still waiting (only when fg > 0) *)
  mutable ready : bool; (* sigs (+ geo) complete, eligible to transmit *)
  mutable transmitted : bool;
}

type t = {
  node : Unit_node.t;
  dest : int;
  dest_nodes : Addr.t array;
  geo_proofs :
    (pos:int -> on_ready:((int * (string * string) list) list -> unit) -> unit)
    option;
  engine : Engine.t;
  needed_sigs : int;
  mutable pending : txn_state Int_map.t; (* comm_seq -> state *)
  mutable ready_count : int; (* pending entries with [ready = true] *)
  mutable highest : int;
  mutable acked : int;
  mutable target : int; (* destination node rotation index *)
  mutable enabled : bool;
  mutable sent_count : int;
  mutable ack_count : int;
  mutable ack_subs : (int -> unit) list;
}

let dest t = t.dest
let highest_comm_seq t = t.highest
let acked t = t.acked
let set_enabled t b = t.enabled <- b
let stats t = (t.sent_count, t.ack_count)
let on_acked t f = t.ack_subs <- f :: t.ack_subs

let send_aux t ~dst msg =
  Bp_net.Transport.send (Unit_node.transport t.node) ~dst
    ~tag:(Proto.aux_tag dst.Addr.dc) (Proto.encode msg)

let transmit t st =
  if t.enabled then begin
    let target = t.dest_nodes.(t.target mod Array.length t.dest_nodes) in
    st.transmitted <- true;
    t.sent_count <- t.sent_count + 1;
    send_aux t ~dst:target
      (Proto.Transmit
         {
           transmission =
             {
               st.txn with
               Record.proofs = st.sigs;
               geo_proofs = Option.value ~default:[] st.geo;
             };
         })
  end

let maybe_ready t st =
  if
    (not st.ready)
    && List.length st.sigs >= t.needed_sigs
    && (t.geo_proofs = None || st.geo <> None)
  then begin
    st.ready <- true;
    t.ready_count <- t.ready_count + 1;
    transmit t st
  end

let request_signatures t st =
  (* Our own attestation is immediate; fi more come from the unit round. *)
  (match Unit_node.sign_transmission t.node st.txn with
  | Some pair -> st.sigs <- [ pair ]
  | None -> ());
  let self = Unit_node.addr t.node in
  (* Unit peers all live in one datacenter, so the fan-out shares one aux
     tag — encode the sign request once for the whole round. *)
  let others =
    Array.of_list
      (List.filter
         (fun peer -> not (Addr.equal peer self))
         (Array.to_list (Unit_node.peers t.node)))
  in
  Bp_net.Transport.broadcast (Unit_node.transport t.node) ~dsts:others
    ~tag:(Proto.aux_tag self.Addr.dc)
    (Proto.encode (Proto.Sign_request { transmission = st.txn }));
  maybe_ready t st

let track t ~pos (comm : Record.communication) =
  if comm.Record.dest = t.dest && comm.Record.comm_seq > t.acked
     && not (Int_map.mem comm.Record.comm_seq t.pending)
  then begin
    let txn =
      {
        Record.src = Unit_node.participant t.node;
        tdest = t.dest;
        tcomm_seq = comm.Record.comm_seq;
        log_pos = pos;
        tpayload = comm.Record.payload;
        proofs = [];
        geo_proofs = [];
      }
    in
    let st = { txn; sigs = []; geo = None; ready = false; transmitted = false } in
    t.pending <- Int_map.add comm.Record.comm_seq st t.pending;
    t.highest <- Stdlib.max t.highest comm.Record.comm_seq;
    (match t.geo_proofs with
    | None -> ()
    | Some wait ->
        wait ~pos ~on_ready:(fun bundles ->
            st.geo <- Some bundles;
            maybe_ready t st));
    request_signatures t st
  end

let on_sign_response t ~dest ~comm_seq ~identity ~signature =
  if dest = t.dest then
    match Int_map.find_opt comm_seq t.pending with
    | Some st when not st.ready ->
        if not (List.mem_assoc identity st.sigs) then begin
          (* Validate before counting: a byzantine node could send junk. *)
          let vcache = Unit_node.vcache t.node in
          let statement =
            Record.transmission_statement
              ~digest:(Bp_crypto.Verify_cache.digest vcache)
              st.txn
          in
          if
            (* Single-signature batch: stays inline on this domain, but
               goes through the same probe/verify/record path as the
               fanned bundles, so the daemon's verdicts share the
               per-node cache discipline (probe/record on the protocol
               domain only — enforced by bplint R7-parpure). *)
            Bp_crypto.Verify_batch.verify_one ~cache:vcache
              ~keystore:(Unit_node.keystore t.node)
              (Bp_crypto.Verify_batch.global ())
              ~signer:identity ~msg:statement ~signature
          then begin
            st.sigs <- (identity, signature) :: st.sigs;
            maybe_ready t st
          end
        end
    | _ -> ()

let on_ack t ~from_participant ~comm_seq =
  if from_participant = t.dest && comm_seq > t.acked then begin
    t.acked <- comm_seq;
    t.ack_count <- t.ack_count + 1;
    let acked, rest = Int_map.partition (fun seq _ -> seq <= comm_seq) t.pending in
    Int_map.iter
      (fun _ st -> if st.ready then t.ready_count <- t.ready_count - 1)
      acked;
    t.pending <- rest;
    List.iter (fun f -> f comm_seq) t.ack_subs
  end

let retry t =
  (* Rotate to another destination node and re-send everything ready but
     unacknowledged, in order — a crashed or malicious receiver node is
     bypassed; the receiving side deduplicates. *)
  if t.enabled && not (Int_map.is_empty t.pending) then begin
    (* O(1) via the counter — this runs on every retry tick, and a scan
       of [pending] grows with the unacknowledged backlog. *)
    let any_ready = t.ready_count > 0 in
    if any_ready then begin
      t.target <- t.target + 1;
      Int_map.iter (fun _ st -> if st.ready then transmit t st) t.pending
    end
    else
      (* Signatures still missing (lagging peers): ask again. *)
      Int_map.iter (fun _ st -> request_signatures t st) t.pending
  end

let create ~node ~dest ~dest_nodes ?geo_proofs ?(start_after = -1) () =
  let engine =
    Network.engine (Bp_net.Transport.network (Unit_node.transport node))
  in
  let t =
    {
      node;
      dest;
      dest_nodes;
      geo_proofs;
      engine;
      needed_sigs = Unit_node.fi node + 1;
      pending = Int_map.empty;
      ready_count = 0;
      highest = start_after;
      acked = start_after;
      target = 0;
      enabled = true;
      sent_count = 0;
      ack_count = 0;
      ack_subs = [];
    }
  in
  (* Backlog: scan the host node's log from the start (Algorithm 2's
     pointer p starts at the first entry). *)
  Bp_storage.Log_store.iter_from (Unit_node.log node) 0 (fun entry ->
      match Record.decode entry.Bp_storage.Log_store.payload with
      | Ok (Record.Comm comm) ->
          track t ~pos:entry.Bp_storage.Log_store.index comm
      | _ -> ());
  (* Follow new executions. *)
  Unit_node.add_executed_hook node (fun ~pos record ->
      match record with Record.Comm comm -> track t ~pos comm | _ -> ());
  (* Responses (signatures, acks) arrive on the unit's aux tag. *)
  Unit_node.add_aux_listener node (fun ~src:_ msg ->
      match msg with
      | Proto.Sign_response { dest; comm_seq; identity; signature } when dest = t.dest ->
          on_sign_response t ~dest ~comm_seq ~identity ~signature;
          true
      | Proto.Ack { from_participant; comm_seq } when from_participant = t.dest ->
          on_ack t ~from_participant ~comm_seq;
          true
      | _ -> false);
  (* Retry cadence scales with the destination RTT. *)
  let topo = Network.topology (Bp_net.Transport.network (Unit_node.transport node)) in
  let rtt = Topology.rtt topo (Unit_node.addr node).Addr.dc dest in
  ignore
    (Engine.periodic engine ~every:(Time.add (Time.scale rtt 3.0) (Time.of_ms 20.0))
       (fun () -> retry t));
  t
