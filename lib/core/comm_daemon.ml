open Bp_sim

module Int_map = Map.Make (Int)

type txn_state = {
  txn : Record.transmission;
  mutable sigs : (string * string) list;
  mutable geo : (int * (string * string) list) list option;
      (* None = still waiting (only when fg > 0) *)
  mutable ready : bool; (* sigs (+ geo) complete, eligible to transmit *)
  mutable transmitted : bool;
}

type counters = {
  sent : int;
  acks : int;
  retries : int;
  backoff : int;
  demoted : int;
}

type t = {
  node : Unit_node.t;
  dest : int;
  dest_nodes : Addr.t array;
  geo_proofs :
    (pos:int -> on_ready:((int * (string * string) list) list -> unit) -> unit)
    option;
  engine : Engine.t;
  needed_sigs : int;
  cluster : bool; (* cluster-sending mode: solicit probes, ship no bundles *)
  mutable pending : txn_state Int_map.t; (* comm_seq -> state *)
  mutable ready_count : int; (* pending entries with [ready = true] *)
  mutable highest : int;
  mutable acked : int;
  mutable target : int; (* destination node rotation index *)
  mutable enabled : bool;
  mutable sent_count : int;
  mutable ack_count : int;
  mutable ack_subs : (int -> unit) list;
  (* cluster mode: outstanding solicitations as (head_seq, sender, receiver) *)
  mutable sols : (int * int * int) list;
  (* comm_seq -> (sender, receiver) pairs whose probes carried that
     record's payload bytes. A stalled frontier is almost always a lost
     payload — the blocking record's carriers are the pairs to blame,
     not every outstanding solicitation (demoting all of those spreads
     strikes evenly over the whole unit and carries no signal at small
     n). Retired as the ack frontier passes. *)
  mutable carriers : (int * int) list Int_map.t;
  mutable attempt : int; (* pairing-schedule cursor *)
  mutable shipped : int;
      (* highest comm_seq whose payload bytes went out in a probe window;
         later probes of the same wave carry statement digests only.
         Reset to the acked frontier on a fruitless retry — the payload
         probe itself may be what was lost. *)
  (* node index -> strike count for nodes that burned a delivery
     attempt; any strikes mean the node is skipped (softly) by the
     pairing schedule. A starving schedule halves strikes instead of
     forgiving outright, so one-off collateral demotions clear while
     repeat offenders — the actual byzantine nodes — stay remembered.
     The bundle path's epoch reset (everyone demoted) still clears. *)
  mutable demoted_senders : (int * int) list;
  mutable demoted_receivers : (int * int) list;
  mutable demoted_count : int;
  (* capped exponential backoff over the retry tick, with deterministic
     jitter — the periodic event stream itself never changes, only
     whether a tick acts, so default runs are byte-identical to a
     backoff-free daemon *)
  mutable tick : int;
  mutable backoff : int; (* ticks between fires; 1 = every tick *)
  mutable next_fire_tick : int;
  mutable last_fire_acked : int;
  mutable retry_count : int;
  (* cluster mode: when the last probe solicitation went out, and the
     link round-trip — a fire with no ack progress is only {e stalled}
     once a full round trip (plus slack for the remote commit) has
     elapsed since then; earlier fires must not demote honest pairs or
     re-ship payloads that are still in flight *)
  mutable last_solicit : Time.t;
  mutable rtt : Time.t;
}

let dest t = t.dest
let highest_comm_seq t = t.highest
let acked t = t.acked
let set_enabled t b = t.enabled <- b
let stats t = (t.sent_count, t.ack_count)

let counters t =
  {
    sent = t.sent_count;
    acks = t.ack_count;
    retries = t.retry_count;
    backoff = t.backoff;
    demoted = t.demoted_count;
  }

let on_acked t f = t.ack_subs <- f :: t.ack_subs

let send_aux t ~dst msg =
  Bp_net.Transport.send (Unit_node.transport t.node) ~dst
    ~tag:(Proto.aux_tag dst.Addr.dc) (Proto.encode msg)

(* ---------- destination rotation with demotion ---------- *)

(* Advance to the next destination node, skipping demoted ones. The seed
   behaviour — plain [target + 1] — meant a byzantine or crashed target
   was re-offered the whole pending set every |dest_nodes| retries; a
   demoted index stays skipped until every node has been demoted (then
   the epoch resets: blaming everyone means the fault was elsewhere). *)
let advance_target t =
  let n = Array.length t.dest_nodes in
  if List.length t.demoted_receivers >= n then t.demoted_receivers <- [];
  let rec next k fuel =
    if fuel = 0 then k
    else if List.mem_assoc (k mod n) t.demoted_receivers then
      next (k + 1) (fuel - 1)
    else k
  in
  t.target <- next (t.target + 1) n

let add_strike demoted idx =
  let prior = Option.value ~default:0 (List.assoc_opt idx demoted) in
  (idx, Stdlib.min 8 (prior + 1)) :: List.remove_assoc idx demoted

(* Integer halving: single-strike (collateral) entries drop out, repeat
   offenders survive with half their record. *)
let halve_strikes demoted =
  List.filter_map
    (fun (idx, s) -> if s / 2 > 0 then Some (idx, s / 2) else None)
    demoted

let demote_receiver t idx =
  if not (List.mem_assoc idx t.demoted_receivers) then
    t.demoted_count <- t.demoted_count + 1;
  t.demoted_receivers <- add_strike t.demoted_receivers idx

let demote_sender t idx =
  if not (List.mem_assoc idx t.demoted_senders) then
    t.demoted_count <- t.demoted_count + 1;
  t.demoted_senders <- add_strike t.demoted_senders idx

(* ---------- fi+1-bundle path ---------- *)

let transmit t st =
  if t.enabled then begin
    let target = t.dest_nodes.(t.target mod Array.length t.dest_nodes) in
    st.transmitted <- true;
    t.sent_count <- t.sent_count + 1;
    send_aux t ~dst:target
      (Proto.Transmit
         {
           transmission =
             {
               st.txn with
               Record.proofs = st.sigs;
               geo_proofs = Option.value ~default:[] st.geo;
             };
         })
  end

let maybe_ready t st =
  if
    (not st.ready)
    && List.length st.sigs >= t.needed_sigs
    && (t.geo_proofs = None || st.geo <> None)
  then begin
    st.ready <- true;
    t.ready_count <- t.ready_count + 1;
    transmit t st
  end

let request_signatures t st =
  (* Our own attestation is immediate; fi more come from the unit round. *)
  (match Unit_node.sign_transmission t.node st.txn with
  | Some pair -> st.sigs <- [ pair ]
  | None -> ());
  let self = Unit_node.addr t.node in
  (* Unit peers all live in one datacenter, so the fan-out shares one aux
     tag — encode the sign request once for the whole round. *)
  let others =
    Array.of_list
      (List.filter
         (fun peer -> not (Addr.equal peer self))
         (Array.to_list (Unit_node.peers t.node)))
  in
  Bp_net.Transport.broadcast (Unit_node.transport t.node) ~dsts:others
    ~tag:(Proto.aux_tag self.Addr.dc)
    (Proto.encode (Proto.Sign_request { transmission = st.txn }));
  maybe_ready t st

(* ---------- cluster-sending path ---------- *)

(* Keep the outstanding solicitations at fi+1 {e distinct} senders: every
   probe's window reaches back to the acked frontier, so distinct-sender
   solicitations each add one signer to every pending record's coverage,
   and fi+1 of them deliver the whole backlog. A steady stream then costs
   one probe per new record (plus one cumulative ack) regardless of unit
   size — the expected-constant claim. Two refinements keep the tail of a
   burst off the retry tick: only the first probe of a wave ships payload
   bytes (the rest are digest stubs, see {!Proto.probe}), and once the
   backlog shrinks to a single wave the head itself is topped up to fi+1
   distinct senders because no further records will arrive to do it. *)
let solicit ?(ship_all = false) t ~fresh =
  if t.cluster && t.enabled && t.highest > t.acked then begin
    let peers = Unit_node.peers t.node in
    let n_senders = Array.length peers in
    let n_receivers = Array.length t.dest_nodes in
    let chain =
      match Unit_node.cluster_agent t.node with
      | Some agent ->
          Option.value ~default:Record.chain_genesis
            (Cluster_send.chain_head agent ~dest:t.dest ~seq:t.highest)
      | None -> Record.chain_genesis
    in
    let src = Unit_node.participant t.node in
    let distinct l = List.sort_uniq Int.compare l in
    let used = ref (distinct (List.map (fun (_, s, _) -> s) t.sols)) in
    let deficit = t.needed_sigs - List.length !used in
    let head_cover =
      distinct
        (List.filter_map
           (fun (h, s, _) -> if h >= t.highest then Some s else None)
           t.sols)
    in
    let tail = Int_map.cardinal t.pending <= t.needed_sigs in
    let head_deficit = t.needed_sigs - List.length head_cover in
    let want =
      if tail then head_deficit
      else if fresh then
        (* A new head launches with two distinct signers (the payload
           probe plus one stub) so a small unit's fi+1 = 2 coverage
           completes in one round; larger units close the gap from the
           stream's later heads, still O(1) probes per record. *)
        Stdlib.max (Stdlib.min 2 head_deficit) deficit
      else 0
      (* Ack-driven mid-stream solicitation launches nothing: every
         upcoming head's eager wave extends coverage of the whole
         pending prefix, so topping the current head up to fi+1 here
         would spend probes the stream delivers for free. Stalls are
         the retry tick's job, and the tail case above handles the end
         of the stream, where no further heads are coming. *)
    in
    (* [fuel] bounds the soft skips: sender and receiver indices advance
       in lockstep, so an unfortunate demotion pattern could starve the
       schedule — after a full sweep of pair space, forgive everyone and
       accept the next pair rather than stall. Distinctness {e within}
       this wave is hard (repeating a signer adds nothing to coverage)
       but terminates on its own: the schedule cycles through all
       senders every [n_senders] attempts. *)
    let wave = ref [] in
    let rec pick k fuel =
      if k > 0 then begin
        (* A saturated [used] set — every sender not under demotion
           already carries an outstanding solicitation — makes the
           distinctness skip unsatisfiable; reuse is then harmless (a
           sender re-signing at a higher head is still one distinct
           signer per record), so reset the set rather than burn fuel
           down to the demotion amnesty, which would forgive the very
           strikes a stall just handed out. Counting the demoted list
           in (over-counts on overlap, which only resets early and
           reuse is harmless) keeps the amnesty for true starvation:
           demotions alone blocking every pair. Small units hit the
           reset constantly: 3fi+1 = 4 senders against a deeper
           pending window. *)
        if List.length !used + List.length t.demoted_senders >= n_senders then
          used := [];
        if fuel = 0 then begin
          t.demoted_senders <- halve_strikes t.demoted_senders;
          t.demoted_receivers <- halve_strikes t.demoted_receivers
        end;
        let sender, receiver =
          Cluster_send.Schedule.pair ~src ~dest:t.dest ~head_seq:t.highest
            ~chain ~attempt:t.attempt ~n_senders ~n_receivers
        in
        t.attempt <- t.attempt + 1;
        if
          List.mem sender !wave
          || fuel > 0
             && (List.mem_assoc sender t.demoted_senders
                || List.mem_assoc receiver t.demoted_receivers
                || List.mem sender !used)
        then pick k (fuel - 1)
        else begin
          used := sender :: !used;
          wave := sender :: !wave;
          (* Normally only the wave's first probe carries record bytes
             (the rest are digest stubs); a recovery wave after a
             fruitless tick ships bytes on every path, because the
             stalled frontier means the single payload copy was lost to
             a byzantine or lossy pair — redundancy here costs bytes
             only under faults. *)
          let payload_from =
            if ship_all then t.acked else Stdlib.max t.acked t.shipped
          in
          if payload_from < t.highest then begin
            (* This probe ships bytes for (payload_from, highest]: record
               the pair as those records' payload carrier so a stall can
               blame the actual burned path. *)
            let rec reg s =
              if s <= t.highest then begin
                let prior =
                  Option.value ~default:[] (Int_map.find_opt s t.carriers)
                in
                if
                  not
                    (List.exists
                       (fun (s0, r0) -> s0 = sender && r0 = receiver)
                       prior)
                then
                  t.carriers <-
                    Int_map.add s ((sender, receiver) :: prior) t.carriers;
                reg (s + 1)
              end
            in
            reg (payload_from + 1)
          end;
          t.sols <- (t.highest, sender, receiver) :: t.sols;
          t.sent_count <- t.sent_count + 1;
          send_aux t ~dst:peers.(sender)
            (Proto.Probe_request
               {
                 pr_dest = t.dest;
                 pr_base = t.acked;
                 pr_head = t.highest;
                 pr_payload_from = payload_from;
                 pr_receiver = receiver;
                 pr_reply_to = Unit_node.addr t.node;
               });
          t.shipped <- Stdlib.max t.shipped t.highest;
          t.last_solicit <- Engine.now t.engine;
          pick (k - 1) (n_senders * n_receivers)
        end
      end
    in
    pick want (n_senders * n_receivers)
  end

(* ---------- tracking and acknowledgements ---------- *)

let track t ~pos (comm : Record.communication) =
  if comm.Record.dest = t.dest && comm.Record.comm_seq > t.acked
     && not (Int_map.mem comm.Record.comm_seq t.pending)
  then begin
    let txn =
      {
        Record.src = Unit_node.participant t.node;
        tdest = t.dest;
        tcomm_seq = comm.Record.comm_seq;
        log_pos = pos;
        tpayload = comm.Record.payload;
        proofs = [];
        geo_proofs = [];
      }
    in
    let st = { txn; sigs = []; geo = None; ready = false; transmitted = false } in
    t.pending <- Int_map.add comm.Record.comm_seq st t.pending;
    t.highest <- Stdlib.max t.highest comm.Record.comm_seq;
    if t.cluster then solicit t ~fresh:true
    else begin
      (match t.geo_proofs with
      | None -> ()
      | Some wait ->
          wait ~pos ~on_ready:(fun bundles ->
              st.geo <- Some bundles;
              maybe_ready t st));
      request_signatures t st
    end
  end

let on_sign_response t ~dest ~comm_seq ~identity ~signature =
  if dest = t.dest then
    match Int_map.find_opt comm_seq t.pending with
    | Some st when not st.ready ->
        if not (List.mem_assoc identity st.sigs) then begin
          (* Validate before counting: a byzantine node could send junk. *)
          let vcache = Unit_node.vcache t.node in
          let statement =
            Record.transmission_statement
              ~digest:(Bp_crypto.Verify_cache.digest vcache)
              st.txn
          in
          if
            (* Single-signature batch: stays inline on this domain, but
               goes through the same probe/verify/record path as the
               fanned bundles, so the daemon's verdicts share the
               per-node cache discipline (probe/record on the protocol
               domain only — enforced by bplint R7-parpure). *)
            Bp_crypto.Verify_batch.verify_one ~cache:vcache
              ~keystore:(Unit_node.keystore t.node)
              (Bp_crypto.Verify_batch.global ())
              ~signer:identity ~msg:statement ~signature
          then begin
            st.sigs <- (identity, signature) :: st.sigs;
            maybe_ready t st
          end
        end
    | _ -> ()

let on_ack t ~from_participant ~comm_seq =
  (* The upper guard is load-bearing: a byzantine destination node could
     forge a cumulative ack for a comm_seq this daemon never shipped,
     silently wiping the pending set and stalling delivery for good. An
     ack is only honoured up to what we have actually seen committed. *)
  if from_participant = t.dest && comm_seq > t.acked && comm_seq <= t.highest
  then begin
    t.acked <- comm_seq;
    t.ack_count <- t.ack_count + 1;
    let acked, rest = Int_map.partition (fun seq _ -> seq <= comm_seq) t.pending in
    Int_map.iter
      (fun _ st -> if st.ready then t.ready_count <- t.ready_count - 1)
      acked;
    t.pending <- rest;
    (* Progress vindicates the current cadence: snap back to retrying
       every tick and drop solicitations the frontier has overtaken. *)
    t.backoff <- 1;
    t.next_fire_tick <- 0;
    t.sols <- List.filter (fun (seq, _, _) -> seq > comm_seq) t.sols;
    t.carriers <- Int_map.filter (fun seq _ -> seq > comm_seq) t.carriers;
    if t.shipped < comm_seq then t.shipped <- comm_seq;
    (* The frontier just moved: re-cover what remains now rather than on
       the next retry tick — the tail of a burst has no new tracks left
       to raise its coverage. *)
    if t.cluster && not (Int_map.is_empty t.pending) then solicit t ~fresh:false;
    List.iter (fun f -> f comm_seq) t.ack_subs
  end

(* ---------- retry cadence ---------- *)

(* Deterministic jitter: when backed off, stagger daemons that share a
   tick phase by a pair-and-round parity — pure arithmetic, no RNG. *)
let jitter t =
  if t.backoff = 1 then 0
  else
    (((Unit_node.participant t.node * 131) + t.dest) * 131 + t.retry_count)
    land 1

let retry_bundle t =
  (* Re-send everything ready but unacknowledged, in order — a crashed
     or malicious receiver node is bypassed; the receiver deduplicates. *)
  (* O(1) via the counter — this runs on every retry tick, and a scan
     of [pending] grows with the unacknowledged backlog. *)
  let any_ready = t.ready_count > 0 in
  if any_ready then begin
    advance_target t;
    Int_map.iter (fun _ st -> if st.ready then transmit t st) t.pending
  end
  else
    (* Signatures still missing (lagging peers): ask again. *)
    Int_map.iter (fun _ st -> request_signatures t st) t.pending

let retry_cluster t ~progressed =
  if not progressed then begin
    (* The frontier is stuck: the blocking record's payload never landed
       (or its coverage shortfall persists). Demote both ends of the
       pairs that carried its bytes — one of them burned the delivery —
       and only those: demoting every outstanding solicitation's ends
       would hand out strikes to the whole unit at small n, drowning the
       byzantine signal in collateral. The carrier entry is dropped so
       the next stall blames only the paths tried since this one. *)
    (match Int_map.find_opt (t.acked + 1) t.carriers with
    | Some pairs ->
        List.iter
          (fun (sender, receiver) ->
            demote_sender t sender;
            demote_receiver t receiver)
          pairs;
        t.carriers <- Int_map.remove (t.acked + 1) t.carriers
    | None -> ());
    t.sols <- [];
    (* Any of the burned probes may have been the one carrying payload
       bytes: re-ship the whole unacked window. *)
    t.shipped <- t.acked
  end;
  solicit t ~fresh:(not progressed) ~ship_all:(not progressed)

let on_tick t =
  t.tick <- t.tick + 1;
  if t.enabled && not (Int_map.is_empty t.pending) && t.tick >= t.next_fire_tick
  then begin
    let progressed = t.acked > t.last_fire_acked in
    (* Cluster mode: a fire with no progress is only a {e stall} once the
       newest solicitation has had a full round trip (plus commit slack)
       to produce an ack. The fast cluster timer fires well inside that
       window; treating those early fires as fruitless would demote
       honest pairs and re-ship payloads that are still in flight. The
       bundle path keeps the seed's plain no-progress test. *)
    let ripe =
      (not t.cluster)
      || Time.(
           Engine.now t.engine
           >= Time.add t.last_solicit (Time.add t.rtt (Time.of_ms 10.0)))
    in
    let stalled = (not progressed) && ripe in
    (* Fruitless fire: nothing delivered since the last one. Back off
       (capped) so a dead destination is not hammered every tick; any
       ack resets the cadence. A progressing daemon keeps backoff = 1
       and this gate never skips a tick — byte-identical to the seed. *)
    if stalled && t.retry_count > 0 then
      t.backoff <- Stdlib.min (t.backoff * 2) 8;
    if stalled && t.retry_count > 0 && not t.cluster then
      demote_receiver t (t.target mod Array.length t.dest_nodes);
    t.last_fire_acked <- t.acked;
    t.retry_count <- t.retry_count + 1;
    t.next_fire_tick <- t.tick + t.backoff + jitter t;
    if t.cluster then retry_cluster t ~progressed:(not stalled)
    else retry_bundle t
  end

let create ~node ~dest ~dest_nodes ?geo_proofs ?(cluster_send = false)
    ?(start_after = -1) () =
  let engine =
    Network.engine (Bp_net.Transport.network (Unit_node.transport node))
  in
  let t =
    {
      node;
      dest;
      dest_nodes;
      geo_proofs;
      engine;
      needed_sigs = Unit_node.fi node + 1;
      (* geo-proof records must carry bundles for the mirrors: the knob
         falls back to the bundle path when fg-proofs are in play. *)
      cluster =
        cluster_send && Option.is_none geo_proofs
        && Unit_node.cluster_enabled node;
      pending = Int_map.empty;
      ready_count = 0;
      highest = start_after;
      acked = start_after;
      target = 0;
      enabled = true;
      sent_count = 0;
      ack_count = 0;
      ack_subs = [];
      sols = [];
      carriers = Int_map.empty;
      attempt = 0;
      shipped = start_after;
      demoted_senders = [];
      demoted_receivers = [];
      demoted_count = 0;
      tick = 0;
      backoff = 1;
      next_fire_tick = 0;
      last_fire_acked = start_after;
      retry_count = 0;
      last_solicit = Time.zero;
      rtt = Time.zero;
    }
  in
  (* Backlog: scan the host node's log from the start (Algorithm 2's
     pointer p starts at the first entry). *)
  Bp_storage.Log_store.iter_from (Unit_node.log node) 0 (fun entry ->
      match Record.decode entry.Bp_storage.Log_store.payload with
      | Ok (Record.Comm comm) ->
          track t ~pos:entry.Bp_storage.Log_store.index comm
      | _ -> ());
  (* Follow new executions. *)
  Unit_node.add_executed_hook node (fun ~pos record ->
      match record with Record.Comm comm -> track t ~pos comm | _ -> ());
  (* Responses (signatures, acks) arrive on the unit's aux tag. *)
  Unit_node.add_aux_listener node (fun ~src:_ msg ->
      match msg with
      | Proto.Sign_response { dest; comm_seq; identity; signature } when dest = t.dest ->
          on_sign_response t ~dest ~comm_seq ~identity ~signature;
          true
      | Proto.Ack { from_participant; comm_seq } when from_participant = t.dest ->
          on_ack t ~from_participant ~comm_seq;
          true
      | _ -> false);
  (* Retry cadence scales with the destination RTT. The timer stream is
     unconditional; backoff decides per tick whether to act, so enabling
     it never perturbs the simulation's event schedule. *)
  let topo = Network.topology (Bp_net.Transport.network (Unit_node.transport node)) in
  let rtt = Topology.rtt topo (Unit_node.addr node).Addr.dc dest in
  t.rtt <- rtt;
  ignore
    (Engine.periodic engine ~every:(Time.add (Time.scale rtt 3.0) (Time.of_ms 20.0))
       (fun () -> on_tick t));
  (* Cluster mode recovers from a burned wave by re-pairing, which only
     needs a fresh probe round trip — give it a tick near the RTT rather
     than the bundle path's conservative 3x cadence. The extra timer
     exists only in cluster mode, so bundle-mode runs (and the golden
     experiments) keep the seed's exact event schedule. *)
  if t.cluster then
    ignore
      (Engine.periodic engine ~every:(Time.add rtt (Time.of_ms 20.0)) (fun () ->
           on_tick t));
  t
