(** One Blockplane node: a PBFT replica plus the Blockplane-space state it
    maintains — its copy of the Local Log, a replica of the user protocol
    [P], per-source reception buffers, and the auxiliary services other
    components call over the network (transmission-record signing, receive
    handling, reserve answers, mirror duties). *)

type t

val create :
  network:Bp_sim.Network.t ->
  pbft_cfg:Bp_pbft.Config.t ->
  participant:int ->
  n_participants:int ->
  node_idx:int ->
  fg:int ->
  ?cluster_send:bool ->
  app:App.instance ->
  unit ->
  t
(** Builds the transport, PBFT replica and client for node [node_idx] of
    the participant's unit, and installs the verification routine (the
    built-in receive checks of §IV-C plus the app's own [verify]).
    [cluster_send] (default off) installs a {!Cluster_send} agent: the
    node answers probe/dispersal traffic and accepts proofs-free
    transmission records backed by fi+1 chain-head signers instead of the
    fi+1-signature bundle. Only honoured when [fg = 0]. *)

val addr : t -> Bp_sim.Addr.t
val peers : t -> Bp_sim.Addr.t array
(** All node addresses of this unit (including this node). *)

val fi : t -> int
val keystore : t -> Bp_crypto.Signer.t

val vcache : t -> Bp_crypto.Verify_cache.t
(** The node's verification/digest memo (see {!Bp_crypto.Verify_cache}).
    Strictly per-node: sharing it across nodes would let one node's
    verdicts stand in for another's. *)

val transport : t -> Bp_net.Transport.t
val replica : t -> Bp_pbft.Replica.t

val pipeline_occupancy : t -> float
(** Mean in-flight consensus slots at this node's replica — see
    {!Bp_pbft.Replica.pipeline_occupancy}. *)

val participant : t -> int
val identity : t -> string
val log : t -> Bp_storage.Log_store.t
val app : t -> App.instance
val app_digest : t -> string

val last_received : t -> src:int -> int
(** Highest in-order transmission comm_seq committed from [src]; -1 if
    none. *)

val poll_receive : t -> src:int -> string option
(** The [receive] instruction (§III-C): next unread message from [src]'s
    reception buffer at this node. *)

val add_executed_hook : t -> (pos:int -> Record.t -> unit) -> unit
(** Called after a record is appended to this node's Local Log copy
    (daemon notifications, API receive callbacks, geo proving). *)

val add_aux_listener : t -> (src:Bp_sim.Addr.t -> Proto.t -> bool) -> unit
(** Components co-located on this node (daemons, reserves, geo
    coordinators) receive auxiliary responses here; return [true] to
    consume the message. *)

val set_geo_request_handler : t -> (src:Bp_sim.Addr.t -> Proto.t -> unit) -> unit
(** Handler for [Mirror_request] / [Mirror_sign_request] traffic (§V). *)

val mirror_digest : t -> owner:int -> pos:int -> string option
(** Digest of a mirrored entry committed in this node's log, if any. *)

val sign_mirror : t -> owner:int -> pos:int -> digest:string -> string option
(** Attest a mirrored entry: a signature over {!Proto.mirror_statement},
    or [None] if this node has not committed that mirror entry. *)

val sign_transmission : t -> Record.transmission -> (string * string) option
(** Attest a transmission record against this node's own log: [(identity,
    signature)] if the log's entry at [log_pos] is the matching
    communication record (or unconditionally, if the byzantine knob is
    set). *)

val submit_record : t -> Record.t -> on_result:(string -> unit) -> unit
(** Local-commit an arbitrary record through the unit's PBFT (the node
    acts as the client; the result is the log position as a string). *)

val submit_recv : t -> Record.transmission -> on_committed:(unit -> unit) -> unit
(** Local-commit a received transmission record through the unit's PBFT
    (used by the receive path; deduplicates in-flight submissions). *)

val set_byzantine_sign_anything : t -> bool -> unit
(** Byzantine knob: this node will attest any transmission record without
    checking its log (a malicious signer). *)

val set_byzantine_drop_comm : t -> bool -> unit
(** Byzantine knob: this node silently ignores communication-layer
    traffic — sign requests, transmits, probes, dispersals, probe
    requests. Its PBFT replica stays honest (withholding only). *)

val cluster_agent : t -> Cluster_send.t option
(** The node's cluster-sending agent, if [create] was given
    [~cluster_send:true] (and [fg = 0]). *)

val cluster_enabled : t -> bool

val xs_staged : t -> int
(** Cross-shard transactions whose prepare has committed in this node's
    log copy but whose decide has not yet: staged op slices awaiting the
    coordinator's decision. 0 at quiescence — every prepared txid is
    eventually decided (commit or the timeout downgrade). *)

val verify_effort : t -> int
(** Transmission-proof signature verifications this node has demanded so
    far: fi+1-bundle checks submitted by the receive verifier plus
    chain-head checks by the cluster-sending agent. Per-node, so sums
    across a unit are reproducible at any [--jobs]. *)

val wal_image : t -> string
(** The node's durable write-ahead log: every executed Local Log record,
    checksummed — what would be on this node's disk. *)

val replay :
  image:string -> app:App.instance -> int * (unit, [ `Corrupt_tail ]) result
(** Crash recovery (§III-C: "the participant uses log-commit records to
    persist its state ... to enable recovery in the case of failure"):
    rebuild a protocol replica by replaying a (possibly torn) WAL image.
    Returns the number of records recovered and whether trailing bytes
    had to be discarded. The [app] instance is mutated to the recovered
    state; records the middleware hides from the app (mirror entries,
    read markers) are skipped exactly as during live execution. *)
