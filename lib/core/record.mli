(** Local Log records (§III-B).

    A participant's Local Log holds two kinds of events written by the
    user protocol — log-commit records and communication records — plus
    received transmission records committed on the receiver's side.
    The kind doubles as the PBFT request annotation (§IV-B). *)

type kind = Log_commit | Communication | Received | Mirror

val kind_to_int : kind -> int
val kind_of_int : int -> kind option

type communication = {
  dest : int;  (** destination participant *)
  comm_seq : int;
      (** per-(source, destination) sequence number; the paper's "pointer
          to the previous communication record to the same destination"
          is [comm_seq - 1] *)
  payload : string;
}

type transmission = {
  src : int;
  tdest : int;
  tcomm_seq : int;
  log_pos : int;  (** position of the communication record in the source's Local Log *)
  tpayload : string;
  proofs : (string * string) list;
      (** fi+1 (signer identity, signature) pairs from the source unit *)
  geo_proofs : (int * (string * string) list) list;
      (** with fg>0: per-participant proof bundles (§V) *)
}

type t =
  | Commit of string  (** user state-change event *)
  | Comm of communication  (** a [send] not yet transmitted *)
  | Recv of transmission  (** a received transmission record *)
  | Mirrored of { owner : int; opos : int; ovalue : string }
      (** geo layer (§V): a durable copy of entry [opos] of participant
          [owner]'s Local Log, co-located in this unit's log. Invisible to
          the user protocol. *)

val kind_of : t -> kind

val encode : t -> string
val decode : string -> (t, string) result

val transmission_statement : ?digest:(string -> string) -> transmission -> string
(** The byte string that source-unit nodes sign to attest a transmission
    record (everything except the proofs themselves). [digest] must compute
    SHA-256 of its argument; pass {!Bp_crypto.Verify_cache.digest} to reuse
    a node's memoized payload digest (default: the plain digest). *)

val chain_genesis : string
(** Anchor of the per-(source, destination) statement chain: the chain
    digest "before" comm_seq 0. *)

val chain_step :
  digest:(string -> string) -> prev:string -> stmt_digest:string -> string
(** One link of the statement chain:
    [chain k = chain_step ~prev:(chain (k-1)) ~stmt_digest:(digest
    (transmission_statement tr_k))]. Binding each statement to the whole
    prefix is what lets a single chain-head signature vouch for every
    earlier record of the stream (cluster-sending, Hellings & Sadoghi). *)

val chain_statement : src:int -> dest:int -> head_seq:int -> head:string -> string
(** The byte string a source-unit node signs to attest chain digest
    [head] at [head_seq] of its (src, dest) stream — the single-signature
    payload of a cluster-sending probe. *)

val proof_units : string -> int
(** Signature-bundle size carried by an encoded record: the number of
    unit proofs plus geo proofs embedded in a [Recv], 0 for every other
    form (and for undecodable bytes). This is the per-request argument
    for {!Bp_pbft.Config.extra_verify_units} — under the modeled
    verification cost, every replica of the receiving unit pays for
    checking the bundle before voting. *)

val strip_proofs : transmission -> transmission
(** Proofs and geo-proofs cleared — the canonical form stored in the
    receiver's log (signatures are checked, not re-stored). *)

val comm_image : transmission -> t
(** The communication record this transmission claims to carry — what the
    source appended to its Local Log. Its encoding is the content that
    geo mirror statements attest (§V), shared by the receive-verification
    and prefetch paths. *)

val signature_jobs :
  statement:string -> (string * string) list -> (string * string * string) list
(** Pair every [(identity, signature)] of a proof bundle with the
    statement it must attest: [(identity, statement, signature)] triples
    ready to become [Bp_crypto.Verify_batch] jobs. *)

(** {1 Cross-shard transaction records}

    The shard layer ({!Shard}) drives its BFT two-phase commit through
    ordinary log-commit records: a reserved ["__xs:"] payload prefix
    marks the prepare / apply / decide entries each participant shard
    appends to its own Local Log. Middleware-internal, like read markers
    — {!Unit_node} gives them their staging semantics and the user
    protocol only ever sees the enclosed ops as plain commits. *)

type xs =
  | Xs_prepare of { txid : string; ops : (string * string) list }
      (** Stage [(key, op)] pairs under [txid]; committed by every
          participant shard as its YES vote. *)
  | Xs_apply of { txid : string; ops : (string * string) list }
      (** Single-shard multi-op transaction: apply immediately, no
          staging round-trip needed. *)
  | Xs_decide of { txid : string; commit : bool }
      (** The coordinator's decision, committed in every participant's
          log; applies the staged ops in order, or drops them. A decide
          for an unknown [txid] is a deterministic no-op. *)

val xs_payload : xs -> string
(** The ["__xs:"]-prefixed log-commit payload encoding this step. *)

val is_xs_payload : string -> bool

val xs_of_payload : string -> [ `Not_xs | `Xs of xs | `Malformed ]
(** [`Malformed] is an xs-prefixed payload whose body does not decode —
    verification routines reject these ([`Not_xs] payloads are ordinary
    user commits). *)
