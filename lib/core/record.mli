(** Local Log records (§III-B).

    A participant's Local Log holds two kinds of events written by the
    user protocol — log-commit records and communication records — plus
    received transmission records committed on the receiver's side.
    The kind doubles as the PBFT request annotation (§IV-B). *)

type kind = Log_commit | Communication | Received | Mirror

val kind_to_int : kind -> int
val kind_of_int : int -> kind option

type communication = {
  dest : int;  (** destination participant *)
  comm_seq : int;
      (** per-(source, destination) sequence number; the paper's "pointer
          to the previous communication record to the same destination"
          is [comm_seq - 1] *)
  payload : string;
}

type transmission = {
  src : int;
  tdest : int;
  tcomm_seq : int;
  log_pos : int;  (** position of the communication record in the source's Local Log *)
  tpayload : string;
  proofs : (string * string) list;
      (** fi+1 (signer identity, signature) pairs from the source unit *)
  geo_proofs : (int * (string * string) list) list;
      (** with fg>0: per-participant proof bundles (§V) *)
}

type t =
  | Commit of string  (** user state-change event *)
  | Comm of communication  (** a [send] not yet transmitted *)
  | Recv of transmission  (** a received transmission record *)
  | Mirrored of { owner : int; opos : int; ovalue : string }
      (** geo layer (§V): a durable copy of entry [opos] of participant
          [owner]'s Local Log, co-located in this unit's log. Invisible to
          the user protocol. *)

val kind_of : t -> kind

val encode : t -> string
val decode : string -> (t, string) result

val transmission_statement : ?digest:(string -> string) -> transmission -> string
(** The byte string that source-unit nodes sign to attest a transmission
    record (everything except the proofs themselves). [digest] must compute
    SHA-256 of its argument; pass {!Bp_crypto.Verify_cache.digest} to reuse
    a node's memoized payload digest (default: the plain digest). *)

val strip_proofs : transmission -> transmission
(** Proofs and geo-proofs cleared — the canonical form stored in the
    receiver's log (signatures are checked, not re-stored). *)

val comm_image : transmission -> t
(** The communication record this transmission claims to carry — what the
    source appended to its Local Log. Its encoding is the content that
    geo mirror statements attest (§V), shared by the receive-verification
    and prefetch paths. *)

val signature_jobs :
  statement:string -> (string * string) list -> (string * string * string) list
(** Pair every [(identity, signature)] of a proof bundle with the
    statement it must attest: [(identity, statement, signature)] triples
    ready to become [Bp_crypto.Verify_batch] jobs. *)
