open Bp_codec

(* A cluster-sending probe: one source-unit node's single-signature
   attestation of its (src, dest) statement-chain head, together with the
   window of records the receiver needs to recompute that head from its
   own committed anchor. [base] is the sender's view of the destination's
   acknowledged frontier; [window] covers (base, head] contiguously as
   (comm_seq, log_pos, body) triples, where the body of an entry with
   comm_seq > [payload_from] is the record payload and the body of an
   entry at or below it is the record's statement digest. Statement
   digests suffice to recompute the chain head, so only the first probe
   of a coverage wave ships the window's bytes; the parallel probes that
   raise the window to fi+1 distinct signers stay digest-sized. *)
type probe = {
  p_src : int;
  p_dest : int;
  p_base : int;
  p_payload_from : int;
  p_window : (int * int * string) list;
  p_signer : string;
  p_signature : string;
  p_reply_to : Bp_sim.Addr.t; (* where cumulative acks go (daemon host) *)
}

type t =
  | Sign_request of { transmission : Record.transmission }
  | Sign_response of {
      dest : int;
      comm_seq : int;
      identity : string;
      signature : string;
    }
  | Transmit of { transmission : Record.transmission }
  | Ack of { from_participant : int; comm_seq : int }
  | Reserve_query of { src : int }
  | Reserve_reply of { src : int; last : int }
  | Mirror_request of { owner : int; pos : int; value : string }
  | Mirror_proof of {
      owner : int;
      pos : int;
      participant : int;
      sigs : (string * string) list;
    }
  | Mirror_sign_request of { owner : int; pos : int; digest : string }
  | Mirror_sign_response of {
      owner : int;
      pos : int;
      identity : string;
      signature : string;
    }
  | Read_query of { pos : int }
  | Read_reply of { pos : int; payload : string option }
  | Probe of probe  (* WAN: sender node -> one destination node *)
  | Disperse of probe  (* intra-unit: receiving node -> its peers *)
  | Probe_request of {
      pr_dest : int;
      pr_base : int;
      pr_head : int;
      pr_payload_from : int; (* ship payloads only above this seq *)
      pr_receiver : int; (* destination node index for this attempt *)
      pr_reply_to : Bp_sim.Addr.t;
    }  (* intra-unit: daemon -> scheduled sender node *)

let aux_tag u = Printf.sprintf "u%d.aux" u

let encode_transmission e (tr : Record.transmission) =
  Wire.string e (Record.encode (Record.Recv tr))

let decode_transmission d =
  match Record.decode (Wire.read_string d) with
  | Ok (Record.Recv tr) -> tr
  | Ok _ -> raise (Wire.Malformed "expected Recv record")
  | Error msg -> raise (Wire.Malformed msg)

let encode_sigs e sigs =
  Wire.list e
    (fun (identity, signature) ->
      Wire.string e identity;
      Wire.string e signature)
    sigs

let decode_sigs d =
  Wire.read_list d (fun d ->
      let identity = Wire.read_string d in
      let signature = Wire.read_string d in
      (identity, signature))

let encode_addr e (a : Bp_sim.Addr.t) =
  Wire.varint e a.Bp_sim.Addr.dc;
  Wire.varint e a.Bp_sim.Addr.idx

let decode_addr d =
  let dc = Wire.read_varint d in
  let idx = Wire.read_varint d in
  Bp_sim.Addr.make ~dc ~idx

let encode_probe e p =
  Wire.varint e p.p_src;
  Wire.varint e p.p_dest;
  Wire.zigzag e p.p_base;
  Wire.zigzag e p.p_payload_from;
  Wire.list e
    (fun (seq, pos, payload) ->
      Wire.varint e seq;
      Wire.varint e pos;
      Wire.string e payload)
    p.p_window;
  Wire.string e p.p_signer;
  Wire.string e p.p_signature;
  encode_addr e p.p_reply_to

let decode_probe d =
  let p_src = Wire.read_varint d in
  let p_dest = Wire.read_varint d in
  let p_base = Wire.read_zigzag d in
  let p_payload_from = Wire.read_zigzag d in
  let p_window =
    Wire.read_list d (fun d ->
        let seq = Wire.read_varint d in
        let pos = Wire.read_varint d in
        let payload = Wire.read_string d in
        (seq, pos, payload))
  in
  let p_signer = Wire.read_string d in
  let p_signature = Wire.read_string d in
  let p_reply_to = decode_addr d in
  {
    p_src;
    p_dest;
    p_base;
    p_payload_from;
    p_window;
    p_signer;
    p_signature;
    p_reply_to;
  }

let encode m =
  Wire.encode (fun e ->
      match m with
      | Sign_request { transmission } ->
          Wire.u8 e 0;
          encode_transmission e transmission
      | Sign_response { dest; comm_seq; identity; signature } ->
          Wire.u8 e 1;
          Wire.varint e dest;
          Wire.varint e comm_seq;
          Wire.string e identity;
          Wire.string e signature
      | Transmit { transmission } ->
          Wire.u8 e 2;
          encode_transmission e transmission
      | Ack { from_participant; comm_seq } ->
          Wire.u8 e 3;
          Wire.varint e from_participant;
          Wire.zigzag e comm_seq
      | Reserve_query { src } ->
          Wire.u8 e 4;
          Wire.varint e src
      | Reserve_reply { src; last } ->
          Wire.u8 e 5;
          Wire.varint e src;
          Wire.zigzag e last
      | Mirror_request { owner; pos; value } ->
          Wire.u8 e 6;
          Wire.varint e owner;
          Wire.varint e pos;
          Wire.string e value
      | Mirror_proof { owner; pos; participant; sigs } ->
          Wire.u8 e 7;
          Wire.varint e owner;
          Wire.varint e pos;
          Wire.varint e participant;
          encode_sigs e sigs
      | Mirror_sign_request { owner; pos; digest } ->
          Wire.u8 e 8;
          Wire.varint e owner;
          Wire.varint e pos;
          Wire.string e digest
      | Mirror_sign_response { owner; pos; identity; signature } ->
          Wire.u8 e 9;
          Wire.varint e owner;
          Wire.varint e pos;
          Wire.string e identity;
          Wire.string e signature
      | Read_query { pos } ->
          Wire.u8 e 10;
          Wire.varint e pos
      | Read_reply { pos; payload } ->
          Wire.u8 e 11;
          Wire.varint e pos;
          Wire.option e (Wire.string e) payload
      | Probe p ->
          Wire.u8 e 12;
          encode_probe e p
      | Disperse p ->
          Wire.u8 e 13;
          encode_probe e p
      | Probe_request
          { pr_dest; pr_base; pr_head; pr_payload_from; pr_receiver; pr_reply_to }
        ->
          Wire.u8 e 14;
          Wire.varint e pr_dest;
          Wire.zigzag e pr_base;
          Wire.zigzag e pr_head;
          Wire.zigzag e pr_payload_from;
          Wire.varint e pr_receiver;
          encode_addr e pr_reply_to)

let decode s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 -> Sign_request { transmission = decode_transmission d }
      | 1 ->
          let dest = Wire.read_varint d in
          let comm_seq = Wire.read_varint d in
          let identity = Wire.read_string d in
          let signature = Wire.read_string d in
          Sign_response { dest; comm_seq; identity; signature }
      | 2 -> Transmit { transmission = decode_transmission d }
      | 3 ->
          let from_participant = Wire.read_varint d in
          let comm_seq = Wire.read_zigzag d in
          Ack { from_participant; comm_seq }
      | 4 -> Reserve_query { src = Wire.read_varint d }
      | 5 ->
          let src = Wire.read_varint d in
          let last = Wire.read_zigzag d in
          Reserve_reply { src; last }
      | 6 ->
          let owner = Wire.read_varint d in
          let pos = Wire.read_varint d in
          let value = Wire.read_string d in
          Mirror_request { owner; pos; value }
      | 7 ->
          let owner = Wire.read_varint d in
          let pos = Wire.read_varint d in
          let participant = Wire.read_varint d in
          let sigs = decode_sigs d in
          Mirror_proof { owner; pos; participant; sigs }
      | 8 ->
          let owner = Wire.read_varint d in
          let pos = Wire.read_varint d in
          let digest = Wire.read_string d in
          Mirror_sign_request { owner; pos; digest }
      | 9 ->
          let owner = Wire.read_varint d in
          let pos = Wire.read_varint d in
          let identity = Wire.read_string d in
          let signature = Wire.read_string d in
          Mirror_sign_response { owner; pos; identity; signature }
      | 10 -> Read_query { pos = Wire.read_varint d }
      | 11 ->
          let pos = Wire.read_varint d in
          let payload = Wire.read_option d Wire.read_string in
          Read_reply { pos; payload }
      | 12 -> Probe (decode_probe d)
      | 13 -> Disperse (decode_probe d)
      | 14 ->
          let pr_dest = Wire.read_varint d in
          let pr_base = Wire.read_zigzag d in
          let pr_head = Wire.read_zigzag d in
          let pr_payload_from = Wire.read_zigzag d in
          let pr_receiver = Wire.read_varint d in
          let pr_reply_to = decode_addr d in
          Probe_request
            { pr_dest; pr_base; pr_head; pr_payload_from; pr_receiver; pr_reply_to }
      | n -> raise (Wire.Malformed (Printf.sprintf "proto tag %d" n)))

let mirror_statement ~owner ~pos ~digest =
  Wire.encode (fun e ->
      Wire.string e "bp-mirror";
      Wire.varint e owner;
      Wire.varint e pos;
      Wire.string e digest)
