(** Multi-unit keyspace sharding (ROADMAP: "Multi-unit sharding with
    byzantine cluster-sending").

    The paper runs ONE logical log mirrored across participants; this
    layer runs N independent Blockplane units — one per participant —
    and partitions the keyspace across them with a static shard map. A
    single-shard operation is routed directly to the owning unit's API
    (one ordinary log-commit on its primary, the exact seed path), while
    a cross-shard transaction is driven through a BFT two-phase commit
    in the style of Zhao's byzantine-fault-tolerant commit protocol
    (PAPERS.md): every 2PC step is itself a committed record in a
    participant unit's Local Log, so no single node — not even the
    coordinator's primary — can equivocate about the outcome.

    Protocol, for a transaction touching shards [S] with deterministic
    coordinator [c = min S]:

    + the router commits an [Xs_prepare] record carrying the shard's
      slice of the ops to every participant's log (the coordinator's own
      prepare is its YES vote; the others send their votes back over the
      ordinary communication path — commit-then-transmit, so each vote
      rides the cluster-sending/reserve machinery of §IV);
    + a prepare that fails the unit's verification routine (f+1 replicas
      pre-reject, the PR 5 [__rejected] downgrade) is that shard's NO
      vote — the op slice never stages;
    + on all-YES the coordinator commits [Xs_decide commit=true] and
      transmits the decision; on any NO — or on local timeout — it
      commits [Xs_decide commit=false] (a deterministic no-op downgrade:
      a decide for an unstaged txid applies nothing);
    + each participant commits the decide in its own log; only that
      committed decide applies the staged ops (see
      {!Unit_node.replay}'s staging semantics), then acknowledges, and
      the transaction completes at the coordinator when every
      participant has applied.

    With [fi] byzantine nodes per unit the usual PBFT bound holds inside
    every step: prepares, votes (communication + received records) and
    decides are all log-committed, so 2fi+1 honest-majority quorums
    agree on each, and the coordinator's decision is a deterministic
    function of committed evidence. *)

(** How keys map to shards. *)
type policy =
  | Hash  (** CRC-32 of the key, mod the shard count. *)
  | Range of string array
      (** [Range splits] with [splits] sorted ascending: keys strictly
          below [splits.(0)] land on shard 0, keys in
          [[splits.(i-1), splits.(i))] on shard [i], the rest on the
          last shard. Needs exactly [shards - 1] split points. *)

type map
(** A static shard map: the shard count plus the routing policy. Carried
    in {!Deployment}; every router and every test derives routing from
    the same map, so placement is deterministic. *)

val make : ?policy:policy -> shards:int -> unit -> map
(** Default policy is [Hash].
    @raise Invalid_argument on [shards < 1] or an ill-formed [Range]
    (wrong split count, unsorted or duplicate splits). *)

val shards : map -> int
val policy : map -> policy

val shard_of_key : map -> string -> int

val shards_of_keys : map -> string list -> int list
(** Distinct owning shards, sorted ascending. *)

val coordinator : map -> int list -> int
(** The deterministic coordinator of a participating-shard set: the
    minimum shard. @raise Invalid_argument on an empty list. *)

val key_for : map -> shard:int -> salt:int -> string
(** A key that routes to [shard] under this map — [Range]: derived from
    the split points directly; [Hash]: found by bounded probing over
    salted candidates. Deterministic in [(map, shard, salt)]; load
    generators use it to target shards without rejection sampling.
    @raise Invalid_argument if [shard] is out of range. *)

(** {1 Router} *)

type stats = {
  single_shard : int;  (** ops routed straight to one unit's primary *)
  cross_shard : int;  (** transactions that needed the 2PC path *)
  committed : int;  (** cross-shard transactions decided commit *)
  aborted : int;  (** cross-shard transactions decided abort *)
  prepares_rejected : int;  (** NO votes observed (rejected prepares) *)
  timeouts : int;  (** aborts forced by the coordinator's timer *)
}

type t

val router :
  map:map ->
  engine:Bp_sim.Engine.t ->
  api:(int -> Api.t) ->
  ?prepare_timeout:Bp_sim.Time.t ->
  unit ->
  t
(** [api i] must be participant [i]'s API handle, for every shard in the
    map. With more than one shard the router installs an
    {!Api.on_receive} handler on each participant to carry the 2PC
    messages (votes and decides travel as ordinary communication
    records); with one shard it installs nothing and every submit is the
    seed-identical direct path. [prepare_timeout] (default 2 s of
    simulated time) bounds how long the coordinator waits for votes and
    applied-acks before downgrading to abort. *)

val map_of : t -> map
val stats : t -> stats

val submit :
  t ->
  ?on_aborted:(unit -> unit) ->
  on_done:(unit -> unit) ->
  (string * string) list ->
  unit
(** Route a transaction of [(key, op)] pairs. A single op on a single
    shard is an ordinary {!Api.log_commit} of the raw op (byte-identical
    to the unsharded path); several ops on one shard commit as one
    atomic record; ops spanning shards run the two-phase commit.
    [on_done] fires once every participant shard has applied;
    [on_aborted] (default: ignore) fires after the coordinator's abort
    decision commits. @raise Invalid_argument on an empty [ops]. *)
