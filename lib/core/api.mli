(** The user-level Blockplane interface (§III-C): [log-commit], [read],
    [send] and [receive], plus the three read strategies of §VI-A.

    One API handle exists per participant, representing the user-space of
    Fig. 1. It submits records through the unit's PBFT as a co-located
    client and observes the Local Log through the unit's lead node. *)

type t

val create :
  network:Bp_sim.Network.t ->
  pbft_cfg:Bp_pbft.Config.t ->
  participant:int ->
  n_participants:int ->
  lead_node:Unit_node.t ->
  geo:Geo.t ->
  t

val participant : t -> int

val log_commit : t -> ?on_rejected:(unit -> unit) -> string -> on_done:(unit -> unit) -> unit
(** Durably append a state-change event. [on_done] fires when the value
    is committed to the Local Log — and, when fg > 0, additionally proved
    by fg other participants (§V). *)

val send : t -> ?on_rejected:(unit -> unit) -> dest:int -> string -> on_done:(unit -> unit) -> unit
(** Write a communication record. [on_done] fires at local commitment
    (plus geo proving when fg > 0); actual wide-area transmission is the
    communication daemon's job and is asynchronous. *)

val receive : t -> src:int -> string option
(** Poll the next unread message from [src] (reception buffers, §IV-C). *)

val on_receive : t -> (src:int -> string -> unit) -> unit
(** Push-style delivery as received records execute. Use either this or
    {!receive} polling for a given source, not both. *)

val read : t -> int -> Record.t option
(** Read-1 strategy: serve from the closest (lead) node directly. A
    byzantine lead node could lie — see {!read_quorum}. *)

val read_quorum : t -> int -> on_result:(Record.t option -> unit) -> unit
(** Wait for 2f+1 identical answers from distinct unit nodes: tolerates f
    liars. [on_result None] after a majority of "no such entry". *)

val read_linearizable : t -> int -> on_result:(Record.t option -> unit) -> unit
(** Strongest strategy: commits a read marker through the log, then
    serves the entry — the answer reflects every commit that preceded the
    marker. *)

val next_comm_seq : t -> dest:int -> int
(** The next per-destination sequence number [send] would use. *)

val pipeline_depth : t -> int
(** The unit's configured consensus pipeline depth
    ({!Bp_pbft.Config.t.max_in_flight}). *)

val pipeline_occupancy : t -> float
(** Mean in-flight consensus slots observed at the unit's lead node —
    1.0 for stop-and-wait, up to {!pipeline_depth} when saturated. *)

val batch_stats : t -> Bp_pbft.Replica.batch_stats
(** Batch-formation telemetry at the unit's lead node (the view-0
    primary): batches cut, ops proposed, window stalls, hold deferrals.
    See {!Bp_pbft.Replica.batch_stats}. *)

val queue_depth : t -> int
(** Requests queued at the unit's lead node awaiting batch formation. *)

val cluster_send : t -> bool
(** Whether this participant's unit runs the expected-constant
    cluster-sending path ({!Cluster_send}) instead of fi+1-signature
    bundles on the inter-participant hot path. *)

val xs_staged : t -> int
(** Cross-shard transactions staged (prepared, undecided) at this unit's
    lead node — see {!Unit_node.xs_staged}. 0 at quiescence. *)

val submit_record :
  t -> Record.t -> on_done:(unit -> unit) -> on_rejected:(unit -> unit) -> unit
(** Low-level submission of an arbitrary record (used by tests to model
    byzantine proposals; [on_rejected] fires when f+1 replicas pre-reject
    the record via their verification routines). *)
