(** Whole-system deployment: one Blockplane unit per participant
    (3fi+1 nodes in its datacenter), the user API per participant,
    communication daemons and reserves between every pair, and the geo
    layer when fg > 0. Participants map 1:1 onto the topology's
    datacenters; node [i] of participant [p] lives at address [(p, i)]. *)

type t

val create :
  network:Bp_sim.Network.t ->
  n_participants:int ->
  ?fi:int ->
  ?fg:int ->
  ?scheme:Bp_crypto.Signer.scheme ->
  ?batch_max:int ->
  ?batch_min_fill:int ->
  ?batch_hold:Bp_sim.Time.t ->
  ?request_timeout:Bp_sim.Time.t ->
  ?max_in_flight:int ->
  ?verify_cost:Bp_sim.Time.t ->
  ?verify_jobs:int ->
  ?extra_verify_units:(string -> int) ->
  ?cluster_send:bool ->
  ?shard_map:Shard.map ->
  ?prepare_timeout:Bp_sim.Time.t ->
  app:(unit -> App.instance) ->
  unit ->
  t
(** [app] builds a fresh protocol instance per node (all must start
    identical). Defaults: fi = 1, fg = 0, HMAC signatures.
    [batch_min_fill] / [batch_hold] configure the primary's adaptive
    batch-cut policy (see {!Bp_pbft.Config}); the defaults reproduce the
    seed's cut-on-any-signal behaviour. Mirror sets
    (fg > 0) are each participant's other datacenters ordered by RTT.
    [verify_cost] / [verify_jobs] configure the modeled in-replica
    verification cost (see {!Bp_pbft.Config}); by default the model is
    off and crypto is free in simulated time, as in the paper.
    [extra_verify_units] (see {!Bp_pbft.Config.extra_verify_units})
    prices per-request signature bundles into that model — pass
    {!Record.proof_units} to charge fi+1-proof [Recv] records at the
    receiving unit.
    [cluster_send] (default off) switches the inter-participant path to
    expected-constant cluster-sending ({!Cluster_send}); it is forced
    off when fg > 0, where records must carry signature bundles for the
    mirrors.
    [shard_map] (default: one shard) partitions the keyspace across the
    participants' units — shard [s] is participant [s]'s unit, so the
    map may not have more shards than participants. A {!Shard.router}
    over the units is built either way; with one shard it installs no
    handlers and every submit is the seed-identical direct path.
    [prepare_timeout] bounds the router's cross-shard vote wait (see
    {!Shard.router}). *)

val n_participants : t -> int
val fi : t -> int
val fg : t -> int

val cluster_send : t -> bool
(** Whether the deployment runs the cluster-sending path (the requested
    knob after the fg > 0 fallback). *)

val shard_map : t -> Shard.map
(** The static shard map this deployment was built with. *)

val shard_router : t -> Shard.t
(** The deployment's shard router: submit keyed transactions here to get
    shard routing and cross-shard two-phase commit over the units. *)

val api : t -> int -> Api.t
(** Participant [p]'s user-space handle. *)

val node : t -> int -> int -> Unit_node.t
(** [node t p i] is node [i] of participant [p]'s unit. *)

val nodes_of : t -> int -> Unit_node.t array

val daemon : t -> src:int -> dest:int -> Comm_daemon.t
(** The active communication daemon for the pair. *)

val reserves : t -> src:int -> dest:int -> Reserve.t list

val geo : t -> int -> Geo.t

val unit_addrs : t -> int -> Bp_sim.Addr.t array

val app_digests_agree : t -> int -> bool
(** Do all honest... all nodes of participant [p] hold identical app
    state? (Test helper; byzantine nodes may diverge deliberately.) *)

val logs_agree : t -> int -> bool
(** Do all of participant [p]'s nodes agree on their common Local Log
    prefix (Lemma 1 check)? *)
