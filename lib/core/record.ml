open Bp_codec

type kind = Log_commit | Communication | Received | Mirror

let kind_to_int = function
  | Log_commit -> 0
  | Communication -> 1
  | Received -> 2
  | Mirror -> 3

let kind_of_int = function
  | 0 -> Some Log_commit
  | 1 -> Some Communication
  | 2 -> Some Received
  | 3 -> Some Mirror
  | _ -> None

type communication = { dest : int; comm_seq : int; payload : string }

type transmission = {
  src : int;
  tdest : int;
  tcomm_seq : int;
  log_pos : int;
  tpayload : string;
  proofs : (string * string) list;
  geo_proofs : (int * (string * string) list) list;
}

type t =
  | Commit of string
  | Comm of communication
  | Recv of transmission
  | Mirrored of { owner : int; opos : int; ovalue : string }

let kind_of = function
  | Commit _ -> Log_commit
  | Comm _ -> Communication
  | Recv _ -> Received
  | Mirrored _ -> Mirror

let encode_sig_list e sigs =
  Wire.list e
    (fun (identity, signature) ->
      Wire.string e identity;
      Wire.string e signature)
    sigs

let decode_sig_list d =
  Wire.read_list d (fun d ->
      let identity = Wire.read_string d in
      let signature = Wire.read_string d in
      (identity, signature))

let encode r =
  Wire.encode (fun e ->
      match r with
      | Commit payload ->
          Wire.u8 e 0;
          Wire.string e payload
      | Comm { dest; comm_seq; payload } ->
          Wire.u8 e 1;
          Wire.varint e dest;
          Wire.varint e comm_seq;
          Wire.string e payload
      | Recv { src; tdest; tcomm_seq; log_pos; tpayload; proofs; geo_proofs } ->
          Wire.u8 e 2;
          Wire.varint e src;
          Wire.varint e tdest;
          Wire.varint e tcomm_seq;
          Wire.varint e log_pos;
          Wire.string e tpayload;
          encode_sig_list e proofs;
          Wire.list e
            (fun (participant, sigs) ->
              Wire.varint e participant;
              encode_sig_list e sigs)
            geo_proofs
      | Mirrored { owner; opos; ovalue } ->
          Wire.u8 e 3;
          Wire.varint e owner;
          Wire.varint e opos;
          Wire.string e ovalue)

let decode s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 -> Commit (Wire.read_string d)
      | 1 ->
          let dest = Wire.read_varint d in
          let comm_seq = Wire.read_varint d in
          let payload = Wire.read_string d in
          Comm { dest; comm_seq; payload }
      | 2 ->
          let src = Wire.read_varint d in
          let tdest = Wire.read_varint d in
          let tcomm_seq = Wire.read_varint d in
          let log_pos = Wire.read_varint d in
          let tpayload = Wire.read_string d in
          let proofs = decode_sig_list d in
          let geo_proofs =
            Wire.read_list d (fun d ->
                let participant = Wire.read_varint d in
                let sigs = decode_sig_list d in
                (participant, sigs))
          in
          Recv { src; tdest; tcomm_seq; log_pos; tpayload; proofs; geo_proofs }
      | 3 ->
          let owner = Wire.read_varint d in
          let opos = Wire.read_varint d in
          let ovalue = Wire.read_string d in
          Mirrored { owner; opos; ovalue }
      | n -> raise (Wire.Malformed (Printf.sprintf "record tag %d" n)))

let transmission_statement ?(digest = Bp_crypto.Sha256.digest) t =
  Wire.encode (fun e ->
      Wire.varint e t.src;
      Wire.varint e t.tdest;
      Wire.varint e t.tcomm_seq;
      Wire.varint e t.log_pos;
      Wire.string e (digest t.tpayload))

(* ---------- cluster-sending statement chain ----------

   Per (source, destination) pair the transmission statements form a hash
   chain: [chain k = H(link(chain (k-1), statement_digest k))] with
   [chain (-1) = ""]. A single signature over {!chain_statement} at head
   [k] therefore vouches for the entire statement prefix up to [k] — the
   receiver-side local-agreement rule of the cluster-sending layer counts
   distinct source-unit signers per chain head instead of verifying fi+1
   signatures per record. *)

let chain_genesis = ""

let chain_step ~digest ~prev ~stmt_digest =
  digest
    (Wire.encode (fun e ->
         Wire.string e "bp-chain-link";
         Wire.string e prev;
         Wire.string e stmt_digest))

let chain_statement ~src ~dest ~head_seq ~head =
  Wire.encode (fun e ->
      Wire.string e "bp-chain-head";
      Wire.varint e src;
      Wire.varint e dest;
      Wire.zigzag e head_seq;
      Wire.string e head)

let strip_proofs t = { t with proofs = []; geo_proofs = [] }

let proof_units op =
  match decode op with
  | Ok (Recv tr) ->
      List.length tr.proofs
      + List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 tr.geo_proofs
  | Ok (Commit _ | Comm _ | Mirrored _) | Error _ -> 0

(* ---------- cross-shard transaction records ----------

   The shard layer drives its BFT two-phase commit through ordinary
   log-commit records: a reserved "__xs:" payload prefix marks the
   prepare / apply / decide entries each participant shard appends to its
   own Local Log. The prefix mirrors the "_read_marker:" and "__rejected"
   precedents — middleware-internal payloads the user protocol never
   sees raw; Unit_node gives them their staging semantics. *)

type xs =
  | Xs_prepare of { txid : string; ops : (string * string) list }
  | Xs_apply of { txid : string; ops : (string * string) list }
  | Xs_decide of { txid : string; commit : bool }

let xs_prefix = "__xs:"

let encode_ops e ops =
  Wire.list e
    (fun (key, op) ->
      Wire.string e key;
      Wire.string e op)
    ops

let decode_ops d =
  Wire.read_list d (fun d ->
      let key = Wire.read_string d in
      let op = Wire.read_string d in
      (key, op))

let xs_payload xs =
  xs_prefix
  ^ Wire.encode (fun e ->
        match xs with
        | Xs_prepare { txid; ops } ->
            Wire.u8 e 0;
            Wire.string e txid;
            encode_ops e ops
        | Xs_apply { txid; ops } ->
            Wire.u8 e 1;
            Wire.string e txid;
            encode_ops e ops
        | Xs_decide { txid; commit } ->
            Wire.u8 e 2;
            Wire.string e txid;
            Wire.bool e commit)

let is_xs_payload payload =
  String.length payload >= String.length xs_prefix
  && String.equal (String.sub payload 0 (String.length xs_prefix)) xs_prefix

let xs_of_payload payload =
  if not (is_xs_payload payload) then `Not_xs
  else
    let body =
      String.sub payload (String.length xs_prefix)
        (String.length payload - String.length xs_prefix)
    in
    match
      Wire.decode body (fun d ->
          let xs =
            match Wire.read_u8 d with
            | 0 ->
                let txid = Wire.read_string d in
                let ops = decode_ops d in
                Xs_prepare { txid; ops }
            | 1 ->
                let txid = Wire.read_string d in
                let ops = decode_ops d in
                Xs_apply { txid; ops }
            | 2 ->
                let txid = Wire.read_string d in
                let commit = Wire.read_bool d in
                Xs_decide { txid; commit }
            | n -> raise (Wire.Malformed (Printf.sprintf "xs tag %d" n))
          in
          if not (Wire.at_end d) then raise (Wire.Malformed "xs trailing bytes");
          xs)
    with
    | Ok xs -> `Xs xs
    | Error _ -> `Malformed

let comm_image t =
  Comm { dest = t.tdest; comm_seq = t.tcomm_seq; payload = t.tpayload }

let signature_jobs ~statement sigs =
  List.map (fun (identity, signature) -> (identity, statement, signature)) sigs
