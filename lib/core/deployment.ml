open Bp_sim

type unit_t = {
  participant : int;
  pbft_cfg : Bp_pbft.Config.t;
  nodes : Unit_node.t array;
  api : Api.t;
  geo : Geo.t;
  daemons : (int * Comm_daemon.t) list; (* dest -> daemon *)
  reserves : (int * Reserve.t list) list; (* dest -> reserves *)
}

type t = {
  n_participants : int;
  fi : int;
  fg : int;
  cluster : bool;
  units : unit_t array;
  shard_map : Shard.map;
  shard_router : Shard.t;
}

let n_participants t = t.n_participants
let fi t = t.fi
let fg t = t.fg
let cluster_send t = t.cluster
let shard_map t = t.shard_map
let shard_router t = t.shard_router
let api t p = t.units.(p).api
let node t p i = t.units.(p).nodes.(i)
let nodes_of t p = t.units.(p).nodes
let geo t p = t.units.(p).geo
let unit_addrs t p = t.units.(p).pbft_cfg.Bp_pbft.Config.nodes

let daemon t ~src ~dest = List.assoc dest t.units.(src).daemons
let reserves t ~src ~dest = List.assoc dest t.units.(src).reserves

let addrs_for ~fi p = Array.init ((3 * fi) + 1) (fun i -> Addr.make ~dc:p ~idx:i)

let create ~network ~n_participants ?(fi = 1) ?(fg = 0) ?(scheme = `Hmac)
    ?batch_max ?batch_min_fill ?batch_hold ?request_timeout ?max_in_flight
    ?verify_cost ?verify_jobs ?extra_verify_units ?(cluster_send = false)
    ?shard_map ?prepare_timeout ~app () =
  let shard_map =
    match shard_map with Some m -> m | None -> Shard.make ~shards:1 ()
  in
  if Shard.shards shard_map > n_participants then
    invalid_arg "Deployment.create: more shards than participants";
  (* Cluster-sending covers the plain inter-participant path; geo-proof
     records (fg > 0) still need the signature bundles every mirror
     checks, so the knob falls back to bundle mode there. *)
  let cluster_send = cluster_send && fg = 0 in
  let engine = Network.engine network in
  let topology = Network.topology network in
  if n_participants > Topology.num_dcs topology then
    invalid_arg "Deployment.create: more participants than datacenters";
  if fg > n_participants - 1 then
    invalid_arg "Deployment.create: fg needs fg other participants";
  let keystore = Bp_crypto.Signer.create ~scheme (Bp_util.Rng.split (Engine.rng engine)) in
  let all_addrs = Array.init n_participants (addrs_for ~fi) in
  (* Build units: nodes + geo coordinators first, then daemons/reserves
     which need every unit's addresses. *)
  let units =
    Array.init n_participants (fun p ->
        let pbft_cfg =
          Bp_pbft.Config.make ~nodes:all_addrs.(p) ~keystore
            ~tag:(Printf.sprintf "u%d" p) ?batch_max ?batch_min_fill
            ?batch_hold ?request_timeout ?max_in_flight ?verify_cost
            ?verify_jobs ?extra_verify_units ()
        in
        let nodes =
          Array.init
            ((3 * fi) + 1)
            (fun i ->
              Unit_node.create ~network ~pbft_cfg ~participant:p ~n_participants
                ~node_idx:i ~fg ~cluster_send ~app:(app ()) ())
        in
        (* Every node serves mirror duties (fg > 0 traffic). *)
        Array.iter (fun n -> ignore (Geo.Agent.install n)) nodes;
        let mirror_set = Topology.neighbors_by_rtt topology p in
        let geo =
          Geo.create ~node:nodes.(0) ~fg ~mirror_set
            ~all_unit_nodes:(fun q -> all_addrs.(q))
            ()
        in
        let api =
          Api.create ~network ~pbft_cfg ~participant:p ~n_participants
            ~lead_node:nodes.(0) ~geo
        in
        (p, pbft_cfg, nodes, geo, api))
  in
  let units =
    Array.map
      (fun (p, pbft_cfg, nodes, geo, api) ->
        let others =
          List.filter (fun q -> q <> p) (List.init n_participants Fun.id)
        in
        let geo_proofs =
          if fg > 0 then Some (fun ~pos ~on_ready -> Geo.proofs_for geo ~pos ~on_ready)
          else None
        in
        let daemons =
          List.map
            (fun dest ->
              ( dest,
                Comm_daemon.create ~node:nodes.(0) ~dest
                  ~dest_nodes:all_addrs.(dest) ?geo_proofs ~cluster_send () ))
            others
        in
        let reserves =
          List.map
            (fun dest ->
              (* f+1 reserves on nodes 1..f+1 (distinct from the daemon's
                 host, node 0). *)
              let hosts = List.init (fi + 1) (fun k -> nodes.(1 + k)) in
              ( dest,
                List.map
                  (fun host ->
                    Reserve.create ~node:host ~dest ~dest_nodes:all_addrs.(dest)
                      ?geo_proofs ())
                  hosts ))
            others
        in
        { participant = p; pbft_cfg; nodes; api; geo; daemons; reserves })
      units
  in
  (* The shard router lives over the units: shard s is participant s's
     unit. With one shard (the default) it installs nothing and the
     deployment behaves byte-identically to the unsharded seed. *)
  let shard_router =
    Shard.router ~map:shard_map ~engine
      ~api:(fun p -> units.(p).api)
      ?prepare_timeout ()
  in
  { n_participants; fi; fg; cluster = cluster_send; units; shard_map; shard_router }

let app_digests_agree t p =
  let nodes = t.units.(p).nodes in
  let d0 = Unit_node.app_digest nodes.(0) in
  Array.for_all (fun n -> String.equal (Unit_node.app_digest n) d0) nodes

let logs_agree t p =
  let nodes = t.units.(p).nodes in
  let logs = Array.map Unit_node.log nodes in
  let min_len =
    Array.fold_left
      (fun acc l -> Stdlib.min acc (Bp_storage.Log_store.length l))
      max_int logs
  in
  if min_len = 0 then true
  else begin
    let d0 = Bp_storage.Log_store.digest_at logs.(0) min_len in
    Array.for_all
      (fun l -> String.equal (Bp_storage.Log_store.digest_at l min_len) d0)
      logs
  end
