open Bp_sim

module Int_map = Map.Make (Int)

let send_aux node ~dst msg =
  Bp_net.Transport.send (Unit_node.transport node) ~dst
    ~tag:(Proto.aux_tag dst.Addr.dc) (Proto.encode msg)

(* ---------- the mirror-side agent ---------- *)

module Agent = struct
  type duty = {
    owner : int;
    pos : int;
    digest : string;
    requester : Addr.t;
    mutable sigs : (string * string) list;
    mutable responded : bool;
  }

  type t = {
    node : Unit_node.t;
    duties : (int * int, duty) Hashtbl.t; (* owner, pos *)
  }

  let needed t = Unit_node.fi t.node + 1

  let respond t duty =
    if (not duty.responded) && List.length duty.sigs >= needed t then begin
      duty.responded <- true;
      send_aux t.node ~dst:duty.requester
        (Proto.Mirror_proof
           {
             owner = duty.owner;
             pos = duty.pos;
             participant = Unit_node.participant t.node;
             sigs = duty.sigs;
           })
    end

  let gather_signatures t duty =
    (match
       Unit_node.sign_mirror t.node ~owner:duty.owner ~pos:duty.pos
         ~digest:duty.digest
     with
    | Some signature -> duty.sigs <- [ (Unit_node.identity t.node, signature) ]
    | None -> ());
    let self = Unit_node.addr t.node in
    Array.iter
      (fun peer ->
        if not (Addr.equal peer self) then
          send_aux t.node ~dst:peer
            (Proto.Mirror_sign_request
               { owner = duty.owner; pos = duty.pos; digest = duty.digest }))
      (Unit_node.peers t.node);
    respond t duty

  let on_request t ~src ~owner ~pos ~value =
    let digest = Bp_crypto.Verify_cache.digest (Unit_node.vcache t.node) value in
    match Hashtbl.find_opt t.duties (owner, pos) with
    | Some duty ->
        (* Duplicate request (retry): re-answer if complete. *)
        duty.responded <- false;
        respond t duty;
        if not duty.responded then gather_signatures t duty
    | None ->
        let duty = { owner; pos; digest; requester = src; sigs = []; responded = false } in
        Hashtbl.replace t.duties (owner, pos) duty;
        if Unit_node.mirror_digest t.node ~owner ~pos <> None then
          gather_signatures t duty
        else
          (* Commit the mirrored entry through our own unit's PBFT. *)
          Unit_node.submit_record t.node
            (Record.Mirrored { owner; opos = pos; ovalue = value })
            ~on_result:(fun _ -> gather_signatures t duty)

  let on_sign_request t ~src ~owner ~pos ~digest =
    match Unit_node.sign_mirror t.node ~owner ~pos ~digest with
    | None -> ()
    | Some signature ->
        send_aux t.node ~dst:src
          (Proto.Mirror_sign_response
             { owner; pos; identity = Unit_node.identity t.node; signature })

  let on_sign_response t ~owner ~pos ~identity ~signature =
    match Hashtbl.find_opt t.duties (owner, pos) with
    | None -> ()
    | Some duty ->
        if not (List.mem_assoc identity duty.sigs) then begin
          let statement =
            Proto.mirror_statement ~owner ~pos ~digest:duty.digest
          in
          if
            Bp_crypto.Verify_cache.verify (Unit_node.vcache t.node)
              ~signer:identity ~msg:statement ~signature
          then begin
            duty.sigs <- (identity, signature) :: duty.sigs;
            respond t duty
          end
        end

  let install node =
    let t = { node; duties = Hashtbl.create 64 } in
    Unit_node.set_geo_request_handler node (fun ~src msg ->
        match msg with
        | Proto.Mirror_request { owner; pos; value } ->
            on_request t ~src ~owner ~pos ~value
        | Proto.Mirror_sign_request { owner; pos; digest } ->
            on_sign_request t ~src ~owner ~pos ~digest
        | _ -> ());
    Unit_node.add_aux_listener node (fun ~src:_ msg ->
        match msg with
        | Proto.Mirror_sign_response { owner; pos; identity; signature } ->
            on_sign_response t ~owner ~pos ~identity ~signature;
            true
        | _ -> false);
    t
end

(* ---------- the owner-side coordinator ---------- *)

type entry_state = {
  value : string;
  mutable bundles : (int * (string * string) list) list;
  mutable proved : bool;
  mutable waiters : (unit -> unit) list;
}

type t = {
  node : Unit_node.t;
  fg : int;
  mirror_set : int list;
  all_unit_nodes : int -> Addr.t array;
  engine : Engine.t;
  mutable entries : entry_state Int_map.t;
  mutable suspected : int list;
  mutable suspect_subs : (int -> unit) list;
  mutable restore_subs : (int -> unit) list;
}

let current_targets t =
  let live = List.filter (fun p -> not (List.mem p t.suspected)) t.mirror_set in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  take t.fg live

let is_proved t ~pos =
  t.fg = 0
  ||
  match Int_map.find_opt pos t.entries with
  | Some e -> e.proved
  | None -> false

let suspected t p = List.mem p t.suspected
let on_suspect t f = t.suspect_subs <- f :: t.suspect_subs
let on_restore t f = t.restore_subs <- f :: t.restore_subs

let request_proofs t pos e =
  List.iter
    (fun participant ->
      let nodes = t.all_unit_nodes participant in
      send_aux t.node ~dst:nodes.(0)
        (Proto.Mirror_request
           { owner = Unit_node.participant t.node; pos; value = e.value }))
    (current_targets t)

let begin_proving t ~pos ~value =
  if t.fg > 0 && not (Int_map.mem pos t.entries) then begin
    let e = { value; bundles = []; proved = false; waiters = [] } in
    t.entries <- Int_map.add pos e t.entries;
    request_proofs t pos e
  end

let mark_proved _t e =
  if not e.proved then begin
    e.proved <- true;
    let ws = List.rev e.waiters in
    e.waiters <- [];
    List.iter (fun k -> k ()) ws
  end

let on_proof t ~pos ~participant ~sigs =
  match Int_map.find_opt pos t.entries with
  | None -> ()
  | Some e ->
      if (not e.proved) && not (List.mem_assoc participant e.bundles) then begin
        let digest = Bp_crypto.Verify_cache.digest (Unit_node.vcache t.node) e.value in
        let statement =
          Proto.mirror_statement ~owner:(Unit_node.participant t.node) ~pos ~digest
        in
        let prefix = Printf.sprintf "u%d/" participant in
        let distinct = Hashtbl.create 8 in
        let valid =
          List.filter
            (fun (identity, signature) ->
              (not (Hashtbl.mem distinct identity))
              && String.length identity > String.length prefix
              && String.sub identity 0 (String.length prefix) = prefix
              && Bp_crypto.Verify_cache.verify (Unit_node.vcache t.node)
                   ~signer:identity ~msg:statement ~signature
              && begin
                   Hashtbl.add distinct identity ();
                   true
                 end)
            sigs
        in
        if List.length valid >= Unit_node.fi t.node + 1 then begin
          e.bundles <- (participant, valid) :: e.bundles;
          if List.length e.bundles >= t.fg then mark_proved t e
        end
      end

let wait_proved t ~pos k =
  if t.fg = 0 then k ()
  else
    match Int_map.find_opt pos t.entries with
    | Some e -> if e.proved then k () else e.waiters <- k :: e.waiters
    | None ->
        (* Proving starts from the execution hook; a waiter may register
           first (API callback order). Park a placeholder. *)
        let e = { value = ""; bundles = []; proved = false; waiters = [ k ] } in
        t.entries <- Int_map.add pos e t.entries

let proofs_for t ~pos ~on_ready =
  if t.fg = 0 then on_ready []
  else
    wait_proved t ~pos (fun () ->
        match Int_map.find_opt pos t.entries with
        | Some e -> on_ready e.bundles
        | None -> on_ready [])

let create ~node ~fg ~mirror_set ~all_unit_nodes () =
  let engine = Network.engine (Bp_net.Transport.network (Unit_node.transport node)) in
  let t =
    {
      node;
      fg;
      mirror_set;
      all_unit_nodes;
      engine;
      entries = Int_map.empty;
      suspected = [];
      suspect_subs = [];
      restore_subs = [];
    }
  in
  if fg > 0 then begin
    (* Start proving every record as it lands in the Local Log. *)
    Unit_node.add_executed_hook node (fun ~pos record ->
        match record with
        | Record.Mirrored _ -> () (* mirror entries are not re-mirrored *)
        | _ -> (
            let value = Record.encode record in
            match Int_map.find_opt pos t.entries with
            | Some e when e.value = "" ->
                (* A waiter parked a placeholder before execution. *)
                let e' = { e with value } in
                t.entries <- Int_map.add pos e' t.entries;
                request_proofs t pos e'
            | Some _ -> ()
            | None -> begin_proving t ~pos ~value));
    (* Proof bundles come back on the aux tag. *)
    Unit_node.add_aux_listener node (fun ~src:_ msg ->
        match msg with
        | Proto.Mirror_proof { owner; pos; participant; sigs }
          when owner = Unit_node.participant node ->
            on_proof t ~pos ~participant ~sigs;
            true
        | _ -> false);
    (* Heartbeat the mirror candidates' lead nodes; reroute on suspicion. *)
    let peers = List.map (fun p -> (all_unit_nodes p).(0)) mirror_set in
    let addr_to_participant a = a.Addr.dc in
    ignore
      (Bp_net.Heartbeat.create (Unit_node.transport node) ~peers
         ~period:(Time.of_ms 50.0) ~timeout:(Time.of_ms 200.0)
         ~on_suspect:(fun a ->
           let p = addr_to_participant a in
           if not (List.mem p t.suspected) then begin
             t.suspected <- p :: t.suspected;
             List.iter (fun f -> f p) t.suspect_subs;
             (* Re-request proofs for unproved entries from the new
                target set. *)
             Int_map.iter
               (fun pos e -> if (not e.proved) && e.value <> "" then request_proofs t pos e)
               t.entries
           end)
         ~on_restore:(fun a ->
           let p = addr_to_participant a in
           t.suspected <- List.filter (fun q -> q <> p) t.suspected;
           List.iter (fun f -> f p) t.restore_subs)
         ());
    (* Slow retry for unproved entries (lost requests, lagging mirrors). *)
    ignore
      (Engine.periodic engine ~every:(Time.of_ms 500.0) (fun () ->
           Int_map.iter
             (fun pos e ->
               if (not e.proved) && e.value <> "" then request_proofs t pos e)
             t.entries))
  end;
  t
