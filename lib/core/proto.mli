(** Auxiliary Blockplane-space messages: transmission-record signing,
    delivery and acknowledgement, reserve probes (§IV-C), and the
    geo-correlated mirroring protocol (§V).

    Tag layout for participant [u] (on top of the PBFT tags ["u<u>"] and
    ["u<u>.reply"]):
    - ["u<u>.aux"] — everything below, dispatched by constructor. *)

type probe = {
  p_src : int;
  p_dest : int;
  p_base : int;
      (** chain anchor: the sender's view of the destination's committed
          frontier; the receiver recomputes the chain from its own
          committed digest at this sequence number *)
  p_payload_from : int;
      (** entries with [comm_seq > p_payload_from] carry the record
          payload; entries at or below it carry the record's statement
          digest instead — enough to recompute the chain head, so the
          parallel probes of a coverage wave stay digest-sized and only
          one probe ships the window's bytes *)
  p_window : (int * int * string) list;
      (** (comm_seq, log_pos, payload-or-statement-digest), contiguous
          over (p_base, head] *)
  p_signer : string;
  p_signature : string;  (** over {!Record.chain_statement} at the head *)
  p_reply_to : Bp_sim.Addr.t;
      (** where destination nodes send cumulative acks (the daemon host) *)
}
(** A cluster-sending probe (expected-constant byzantine cluster-sending,
    Hellings & Sadoghi): a single source-node signature over the
    statement-chain head vouches for every record in (and before) the
    window, replacing the fi+1-signature bundle of {!Transmit}. *)

type t =
  | Sign_request of { transmission : Record.transmission }
      (** daemon -> local node: attest this transmission record (proofs
          field empty) *)
  | Sign_response of {
      dest : int;
      comm_seq : int;
      identity : string;
      signature : string;
    }
  | Transmit of { transmission : Record.transmission }
      (** source daemon -> destination node *)
  | Ack of { from_participant : int; comm_seq : int }
      (** destination node -> source daemon: committed up to [comm_seq]
          (cumulative) *)
  | Reserve_query of { src : int }
      (** reserve node -> destination nodes: highest in-order transmission
          comm_seq you have committed from [src]? *)
  | Reserve_reply of { src : int; last : int }
  | Mirror_request of { owner : int; pos : int; value : string }
      (** geo: primary -> mirror participant: durably store entry [pos] *)
  | Mirror_proof of {
      owner : int;
      pos : int;
      participant : int;
      sigs : (string * string) list;  (** fi+1 local attestations *)
    }
  | Mirror_sign_request of { owner : int; pos : int; digest : string }
      (** mirror agent -> its local nodes *)
  | Mirror_sign_response of {
      owner : int;
      pos : int;
      identity : string;
      signature : string;
    }
  | Read_query of { pos : int }
      (** read strategies (§VI-A): fetch Local Log entry [pos] *)
  | Read_reply of { pos : int; payload : string option }
  | Probe of probe
      (** WAN: scheduled sender node -> the scheduled destination node *)
  | Disperse of probe
      (** intra-unit dispersal: the destination node that accepted a probe
          re-broadcasts it so every unit peer accumulates coverage *)
  | Probe_request of {
      pr_dest : int;
      pr_base : int;
      pr_head : int;
      pr_payload_from : int;
      pr_receiver : int;
      pr_reply_to : Bp_sim.Addr.t;
    }
      (** intra-unit delegation: daemon -> scheduled sender node. The
          sender builds the window from its {e own} log copy (the daemon
          is not trusted with record contents) and probes destination
          node [pr_receiver]; payloads ship only above
          [pr_payload_from]. *)

val encode : t -> string
val decode : string -> (t, string) result

val aux_tag : int -> string
(** Transport tag for participant [u]'s auxiliary traffic. *)

val mirror_statement : owner:int -> pos:int -> digest:string -> string
(** The byte string mirror nodes sign to attest a mirrored entry. *)
