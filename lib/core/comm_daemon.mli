(** The communication daemon (§IV-C, Algorithm 2).

    One daemon per (participant, destination) pair, hosted on one of the
    unit's nodes. It watches the node's Local Log copy for communication
    records addressed to its destination, builds transmission records,
    collects fi+1 local signatures (its own plus a broadcast round),
    attaches geo proofs when fg > 0, ships the record to a destination
    node, and advances on cumulative acknowledgements. Unacknowledged
    transmissions are retried against rotating destination nodes, so a
    crashed or byzantine destination node cannot block delivery; a
    destination node that burns a delivery attempt is demoted — skipped
    by the rotation — until every node has been demoted, and the retry
    cadence backs off exponentially (capped, deterministically jittered)
    while no acknowledgement progress is made.

    In cluster-sending mode ({!Cluster_send}) the daemon ships no
    signature bundles at all: it keeps fi+1 sender/receiver probe
    solicitations outstanding against the pairing schedule, delegating
    the actual windowed, single-signature probes to the scheduled sender
    nodes, and retries with fresh pairs (demoting burned ones) until the
    cumulative ack frontier catches up. *)

type t

val create :
  node:Unit_node.t ->
  dest:int ->
  dest_nodes:Bp_sim.Addr.t array ->
  ?geo_proofs:(pos:int -> on_ready:((int * (string * string) list) list -> unit) -> unit) ->
  ?cluster_send:bool ->
  ?start_after:int ->
  unit ->
  t
(** [geo_proofs] asynchronously supplies the §V proof bundles for a log
    position (required iff fg > 0). [cluster_send] (default off) runs
    the probe-solicitation path instead of signature bundles; it
    requires the host node's {!Cluster_send} agent and is forced off
    when [geo_proofs] is supplied (mirror bundles must travel with the
    record). [start_after] skips communication records with comm_seq <=
    it (used by promoted reserves that know the destination's frontier).
    Scans the host node's existing log for backlog, then follows new
    executions via the node hook. *)

val dest : t -> int

val highest_comm_seq : t -> int
(** Highest comm_seq this daemon has seen committed locally for its
    destination (-1 if none) — what reserve nodes compare against. *)

val acked : t -> int
(** Destination's cumulative acknowledgement frontier. *)

val set_enabled : t -> bool -> unit
(** Byzantine knob: a disabled daemon silently stops transmitting
    (maliciously delaying messages, §IV-C) — reserves must take over. *)

val stats : t -> int * int
(** (transmissions sent incl. retries, acks received). In cluster mode
    "sent" counts probe solicitations. *)

type counters = {
  sent : int;  (** transmissions / solicitations, incl. retries *)
  acks : int;  (** cumulative-ack messages honoured *)
  retries : int;  (** retry-tick fires *)
  backoff : int;  (** current cadence: ticks between fires (1 = every) *)
  demoted : int;  (** delivery-attempt demotions issued *)
}

val counters : t -> counters

val on_acked : t -> (int -> unit) -> unit
(** Subscribe to acknowledgement progress: called with the destination's
    new cumulative comm_seq frontier whenever it advances (the instant the
    source knows the message was committed remotely — the end point of the
    Fig. 6 measurement). *)
