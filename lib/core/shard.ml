open Bp_sim

let log_src = Logs.Src.create "bp.shard" ~doc:"Blockplane shard router"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ---------- shard map ---------- *)

type policy = Hash | Range of string array

type map = { n_shards : int; pol : policy }

let make ?(policy = Hash) ~shards () =
  if shards < 1 then invalid_arg "Shard.make: shards must be positive";
  (match policy with
  | Hash -> ()
  | Range splits ->
      if Array.length splits <> shards - 1 then
        invalid_arg "Shard.make: Range needs shards - 1 split points";
      Array.iteri
        (fun i s ->
          if String.length s = 0 then invalid_arg "Shard.make: empty split point";
          if i > 0 && String.compare splits.(i - 1) s >= 0 then
            invalid_arg "Shard.make: split points must be strictly ascending")
        splits);
  { n_shards = shards; pol = policy }

let shards m = m.n_shards
let policy m = m.pol

let shard_of_key m key =
  match m.pol with
  | Hash ->
      if m.n_shards = 1 then 0
      else Int32.to_int (Bp_crypto.Crc32.string key) land 0x3fffffff mod m.n_shards
  | Range splits ->
      (* Binary search for the first split point strictly above [key]. *)
      let lo = ref 0 and hi = ref (Array.length splits) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if String.compare key splits.(mid) < 0 then hi := mid else lo := mid + 1
      done;
      !lo

let shards_of_keys m keys =
  List.sort_uniq compare (List.map (shard_of_key m) keys)

let coordinator _m = function
  | [] -> invalid_arg "Shard.coordinator: empty participant set"
  | parts -> List.fold_left min max_int parts

let key_for m ~shard ~salt =
  if shard < 0 || shard >= m.n_shards then invalid_arg "Shard.key_for: bad shard";
  match m.pol with
  | Range splits ->
      let base = if shard = 0 then "" else splits.(shard - 1) in
      let key = Printf.sprintf "%s\x00%08x" base salt in
      if shard_of_key m key <> shard then
        invalid_arg "Shard.key_for: shard unreachable under this range map";
      key
  | Hash ->
      (* Bounded deterministic probing: each candidate hits the target
         shard with probability 1/N, so the bound is astronomically
         unlikely to be reached for any practical shard count. *)
      let attempts = 64 * m.n_shards in
      let rec probe i =
        if i >= attempts then
          invalid_arg "Shard.key_for: probing bound exceeded"
        else
          let key = Printf.sprintf "k%08x-%x" salt i in
          if shard_of_key m key = shard then key else probe (i + 1)
      in
      probe 0

(* ---------- 2PC wire messages (ride inside communication records) ---------- *)

type msg =
  | Prepare of { txid : string; coord : int; ops : (string * string) list }
  | Vote of { txid : string; yes : bool }
  | Decide of { txid : string; commit : bool }
  | Applied of { txid : string }

let msg_prefix = "__xsm:"

open Bp_codec

let encode_msg msg =
  msg_prefix
  ^ Wire.encode (fun e ->
        match msg with
        | Prepare { txid; coord; ops } ->
            Wire.u8 e 0;
            Wire.string e txid;
            Wire.varint e coord;
            Wire.list e
              (fun (k, op) ->
                Wire.string e k;
                Wire.string e op)
              ops
        | Vote { txid; yes } ->
            Wire.u8 e 1;
            Wire.string e txid;
            Wire.bool e yes
        | Decide { txid; commit } ->
            Wire.u8 e 2;
            Wire.string e txid;
            Wire.bool e commit
        | Applied { txid } ->
            Wire.u8 e 3;
            Wire.string e txid)

let is_msg payload =
  String.length payload >= String.length msg_prefix
  && String.equal (String.sub payload 0 (String.length msg_prefix)) msg_prefix

let decode_msg payload =
  if not (is_msg payload) then None
  else
    let body =
      String.sub payload (String.length msg_prefix)
        (String.length payload - String.length msg_prefix)
    in
    match
      Wire.decode body (fun d ->
          match Wire.read_u8 d with
          | 0 ->
              let txid = Wire.read_string d in
              let coord = Wire.read_varint d in
              let ops =
                Wire.read_list d (fun d ->
                    let k = Wire.read_string d in
                    let op = Wire.read_string d in
                    (k, op))
              in
              Prepare { txid; coord; ops }
          | 1 ->
              let txid = Wire.read_string d in
              let yes = Wire.read_bool d in
              Vote { txid; yes }
          | 2 ->
              let txid = Wire.read_string d in
              let commit = Wire.read_bool d in
              Decide { txid; commit }
          | 3 -> Applied { txid = Wire.read_string d }
          | n -> raise (Wire.Malformed (Printf.sprintf "xsm tag %d" n)))
    with
    | Ok m -> Some m
    | Error _ -> None

(* ---------- router ---------- *)

type stats = {
  single_shard : int;
  cross_shard : int;
  committed : int;
  aborted : int;
  prepares_rejected : int;
  timeouts : int;
}

type pending = {
  p_txid : string;
  coord : int;
  parts : int list; (* participating shards, sorted ascending *)
  mutable votes : (int * bool) list; (* participant -> YES/NO *)
  mutable decided : bool;
  mutable coord_applied : bool; (* coordinator's decide record committed *)
  mutable applied : int list; (* non-coordinator participants that applied *)
  mutable timer : Engine.timer option;
  k_done : unit -> unit;
  k_aborted : unit -> unit;
}

type t = {
  map : map;
  engine : Engine.t;
  api : int -> Api.t;
  prepare_timeout : Time.t;
  txns : (string, pending) Hashtbl.t;
  mutable next_txid : int;
  mutable single_shard : int;
  mutable cross_shard : int;
  mutable committed : int;
  mutable aborted : int;
  mutable prepares_rejected : int;
  mutable timeouts : int;
}

let map_of t = t.map

let stats t =
  {
    single_shard = t.single_shard;
    cross_shard = t.cross_shard;
    committed = t.committed;
    aborted = t.aborted;
    prepares_rejected = t.prepares_rejected;
    timeouts = t.timeouts;
  }

let cancel_timer pending =
  (match pending.timer with Some timer -> Engine.cancel timer | None -> ());
  pending.timer <- None

let send_msg t ~from ~dest msg =
  Api.send (t.api from) ~dest (encode_msg msg) ~on_done:ignore

(* The transaction is finished once the coordinator's decide has
   committed (its own shard applied) and every other participant has
   acknowledged applying theirs. *)
let check_done t pending =
  if
    pending.decided && pending.coord_applied
    && List.for_all
         (fun p -> p = pending.coord || List.mem p pending.applied)
         pending.parts
  then begin
    Hashtbl.remove t.txns pending.p_txid;
    t.committed <- t.committed + 1;
    pending.k_done ()
  end

let decide t pending ~commit =
  if not pending.decided then begin
    pending.decided <- true;
    cancel_timer pending;
    let coord = pending.coord in
    let others = List.filter (fun p -> p <> coord) pending.parts in
    Api.log_commit (t.api coord)
      (Record.xs_payload (Record.Xs_decide { txid = pending.p_txid; commit }))
      ~on_done:(fun () ->
        List.iter
          (fun p ->
            send_msg t ~from:coord ~dest:p
              (Decide { txid = pending.p_txid; commit }))
          others;
        if commit then begin
          pending.coord_applied <- true;
          check_done t pending
        end
        else begin
          (* Abort completes at the coordinator's committed downgrade;
             participants drop their staged slices when the transmitted
             decide commits in their own logs. *)
          Hashtbl.remove t.txns pending.p_txid;
          t.aborted <- t.aborted + 1;
          pending.k_aborted ()
        end)
  end

let record_vote t pending ~participant ~yes =
  if (not pending.decided) && not (List.mem_assoc participant pending.votes)
  then begin
    pending.votes <- (participant, yes) :: pending.votes;
    if not yes then begin
      t.prepares_rejected <- t.prepares_rejected + 1;
      decide t pending ~commit:false
    end
    else if List.length pending.votes = List.length pending.parts then
      decide t pending ~commit:true
  end

(* Participant-side handling of a prepare that arrived over the wire:
   commit it to this shard's own log; the verification verdict IS the
   vote, transmitted back to the coordinator as an ordinary message. *)
let on_prepare t ~self ~txid ~coord ~ops =
  let vote yes =
    send_msg t ~from:self ~dest:coord (Vote { txid; yes })
  in
  Api.log_commit (t.api self)
    (Record.xs_payload (Record.Xs_prepare { txid; ops }))
    ~on_done:(fun () -> vote true)
    ~on_rejected:(fun () -> vote false)

let on_message t ~self ~src payload =
  match decode_msg payload with
  | None -> ()
  | Some (Prepare { txid; coord; ops }) ->
      (* Trust [coord = src] only as far as routing the vote back; the
         prepare itself still has to pass this unit's verification. *)
      ignore coord;
      on_prepare t ~self ~txid ~coord:src ~ops
  | Some (Vote { txid; yes }) -> (
      match Hashtbl.find_opt t.txns txid with
      | Some pending when pending.coord = self ->
          record_vote t pending ~participant:src ~yes
      | Some _ | None -> ())
  | Some (Decide { txid; commit }) ->
      (* Commit the decision in this shard's own log — only that commit
         applies (or drops) the staged slice. A commit needs the
         coordinator's completion barrier, so acknowledge it; an abort
         is already final once the coordinator logged its downgrade. *)
      Api.log_commit (t.api self)
        (Record.xs_payload (Record.Xs_decide { txid; commit }))
        ~on_done:(fun () ->
          if commit then send_msg t ~from:self ~dest:src (Applied { txid }))
  | Some (Applied { txid }) -> (
      match Hashtbl.find_opt t.txns txid with
      | Some pending when pending.coord = self && pending.decided ->
          if not (List.mem src pending.applied) then begin
            pending.applied <- src :: pending.applied;
            check_done t pending
          end
      | Some _ | None -> ())

let router ~map ~engine ~api ?(prepare_timeout = Time.of_ms 2000.0) () =
  let t =
    {
      map;
      engine;
      api;
      prepare_timeout;
      txns = Hashtbl.create 64;
      next_txid = 0;
      single_shard = 0;
      cross_shard = 0;
      committed = 0;
      aborted = 0;
      prepares_rejected = 0;
      timeouts = 0;
    }
  in
  (* One shard: no cross-shard traffic can exist; install nothing so the
     deployment stays byte-identical to the unsharded seed. *)
  if map.n_shards > 1 then
    for p = 0 to map.n_shards - 1 do
      Api.on_receive (api p) (fun ~src payload -> on_message t ~self:p ~src payload)
    done;
  t

(* Group ops by owning shard, preserving submission order inside each
   shard's slice. Association list keyed by shard, kept sorted. *)
let slices map ops =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (key, op) ->
      let s = shard_of_key map key in
      let slice = Option.value ~default:[] (Hashtbl.find_opt tbl s) in
      Hashtbl.replace tbl s ((key, op) :: slice))
    ops;
  let parts = shards_of_keys map (List.map fst ops) in
  List.map (fun s -> (s, List.rev (Hashtbl.find tbl s))) parts

let submit t ?(on_aborted = ignore) ~on_done ops =
  if ops = [] then invalid_arg "Shard.submit: empty transaction";
  match slices t.map ops with
  | [ (s, [ (_key, op) ]) ] ->
      (* The seed path: one op, one shard, one raw log-commit. *)
      t.single_shard <- t.single_shard + 1;
      Api.log_commit (t.api s) op ~on_done ~on_rejected:on_aborted
  | [ (s, slice) ] ->
      (* Several ops, one shard: a single atomic record on that unit. *)
      t.single_shard <- t.single_shard + 1;
      let txid = Printf.sprintf "x%d" t.next_txid in
      t.next_txid <- t.next_txid + 1;
      Api.log_commit (t.api s)
        (Record.xs_payload (Record.Xs_apply { txid; ops = slice }))
        ~on_done ~on_rejected:on_aborted
  | parts ->
      t.cross_shard <- t.cross_shard + 1;
      let txid = Printf.sprintf "x%d" t.next_txid in
      t.next_txid <- t.next_txid + 1;
      let shard_ids = List.map fst parts in
      let coord = coordinator t.map shard_ids in
      let pending =
        {
          p_txid = txid;
          coord;
          parts = shard_ids;
          votes = [];
          decided = false;
          coord_applied = false;
          applied = [];
          timer = None;
          k_done = on_done;
          k_aborted = on_aborted;
        }
      in
      Hashtbl.replace t.txns txid pending;
      pending.timer <-
        Some
          (Engine.schedule t.engine ~after:t.prepare_timeout (fun () ->
               if Hashtbl.mem t.txns txid && not pending.decided then begin
                 t.timeouts <- t.timeouts + 1;
                 Log.debug (fun m -> m "txn %s: prepare timeout, aborting" txid);
                 decide t pending ~commit:false
               end));
      List.iter
        (fun (s, slice) ->
          if s = coord then
            (* The coordinator's own prepare doubles as its vote. *)
            Api.log_commit (t.api coord)
              (Record.xs_payload (Record.Xs_prepare { txid; ops = slice }))
              ~on_done:(fun () -> record_vote t pending ~participant:coord ~yes:true)
              ~on_rejected:(fun () ->
                record_vote t pending ~participant:coord ~yes:false)
          else
            send_msg t ~from:coord ~dest:s (Prepare { txid; coord; ops = slice }))
        parts
