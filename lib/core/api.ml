open Bp_sim

type read_round = {
  rpos : int;
  mutable answers : (Addr.t * string option) list;
  mutable resolved : bool;
  callback : Record.t option -> unit;
}

type t = {
  participant : int;
  n_participants : int;
  pbft_cfg : Bp_pbft.Config.t;
  transport : Bp_net.Transport.t;
  client : Bp_pbft.Client.t;
  lead_node : Unit_node.t;
  geo : Geo.t;
  next_comm_seq : int array;
  mutable recv_handlers : (src:int -> string -> unit) list;
  mutable reads : read_round list;
}

let participant t = t.participant
let next_comm_seq t ~dest = t.next_comm_seq.(dest)
let pipeline_depth t = t.pbft_cfg.Bp_pbft.Config.max_in_flight
let pipeline_occupancy t = Unit_node.pipeline_occupancy t.lead_node
let batch_stats t = Bp_pbft.Replica.batch_stats (Unit_node.replica t.lead_node)
let queue_depth t = Bp_pbft.Replica.queue_depth (Unit_node.replica t.lead_node)
let cluster_send t = Unit_node.cluster_enabled t.lead_node
let xs_staged t = Unit_node.xs_staged t.lead_node

let quorum t = (2 * t.pbft_cfg.Bp_pbft.Config.f) + 1

let on_read_reply t ~src ~pos ~payload =
  List.iter
    (fun round ->
      if round.rpos = pos && not round.resolved then
        if not (List.mem_assoc src round.answers) then begin
          round.answers <- (src, payload) :: round.answers;
          (* Count identical answers. *)
          let tally p =
            List.length (List.filter (fun (_, q) -> q = p) round.answers)
          in
          let winner =
            List.find_opt (fun (_, p) -> tally p >= quorum t) round.answers
          in
          match winner with
          | Some (_, p) ->
              round.resolved <- true;
              round.callback
                (Option.bind p (fun s ->
                     match Record.decode s with Ok r -> Some r | Error _ -> None))
          | None -> ()
        end)
    t.reads;
  t.reads <- List.filter (fun r -> not r.resolved) t.reads

let create ~network ~pbft_cfg ~participant ~n_participants ~lead_node ~geo =
  (* The API endpoint is co-located with the unit (client latency is one
     intra-DC hop, as in Fig. 3(a)). *)
  let addr = Addr.make ~dc:participant ~idx:90 in
  let transport = Bp_net.Transport.create network addr in
  (* The endpoint is its own principal: it gets its own memo, never a
     replica's (verdict caches must not cross node boundaries). *)
  let vcache = Bp_crypto.Verify_cache.create pbft_cfg.Bp_pbft.Config.keystore in
  let client = Bp_pbft.Client.create ~cache:vcache transport pbft_cfg in
  let t =
    {
      participant;
      n_participants;
      pbft_cfg;
      transport;
      client;
      lead_node;
      geo;
      next_comm_seq = Array.make n_participants 0;
      recv_handlers = [];
      reads = [];
    }
  in
  Unit_node.add_executed_hook lead_node (fun ~pos:_ record ->
      match record with
      | Record.Recv tr ->
          List.iter
            (fun h -> h ~src:tr.Record.src tr.Record.tpayload)
            t.recv_handlers
      | _ -> ());
  (* Quorum-read replies arrive on this participant's aux tag. *)
  Bp_net.Transport.set_handler transport ~tag:(Proto.aux_tag participant)
    (fun ~src payload ->
      match Proto.decode payload with
      | Ok (Proto.Read_reply { pos; payload }) -> on_read_reply t ~src ~pos ~payload
      | _ -> ());
  t

let submit t record ~on_done ~on_rejected =
  Bp_pbft.Client.submit t.client
    ~kind:(Record.kind_to_int (Record.kind_of record))
    (Record.encode record)
    ~on_result:(fun result ->
      match int_of_string_opt result with
      | Some pos -> Geo.wait_proved t.geo ~pos on_done
      | None -> on_rejected ())

let log_commit t ?(on_rejected = ignore) payload ~on_done =
  submit t (Record.Commit payload) ~on_done ~on_rejected

let send t ?(on_rejected = ignore) ~dest payload ~on_done =
  if dest < 0 || dest >= t.n_participants || dest = t.participant then
    invalid_arg "Blockplane.Api.send: bad destination";
  let comm_seq = t.next_comm_seq.(dest) in
  t.next_comm_seq.(dest) <- comm_seq + 1;
  submit t (Record.Comm { Record.dest; comm_seq; payload }) ~on_done ~on_rejected

let receive t ~src = Unit_node.poll_receive t.lead_node ~src

let on_receive t handler = t.recv_handlers <- handler :: t.recv_handlers

let read t pos =
  match Bp_storage.Log_store.get (Unit_node.log t.lead_node) pos with
  | None -> None
  | Some entry -> (
      match Record.decode entry.Bp_storage.Log_store.payload with
      | Ok r -> Some r
      | Error _ -> None)

let read_quorum t pos ~on_result =
  let round = { rpos = pos; answers = []; resolved = false; callback = on_result } in
  t.reads <- round :: t.reads;
  Bp_net.Transport.broadcast t.transport ~dsts:t.pbft_cfg.Bp_pbft.Config.nodes
    ~tag:(Proto.aux_tag t.participant)
    (Proto.encode (Proto.Read_query { pos }))

let read_linearizable t pos ~on_result =
  (* A committed read marker orders the read after all earlier commits. *)
  log_commit t (Printf.sprintf "_read_marker:%d" pos) ~on_done:(fun () ->
      read_quorum t pos ~on_result)

let submit_record = submit
