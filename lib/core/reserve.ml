open Bp_sim

type t = {
  node : Unit_node.t;
  dest : int;
  dest_nodes : Addr.t array;
  geo_proofs :
    (pos:int -> on_ready:((int * (string * string) list) list -> unit) -> unit)
    option;
  fi : int;
  patience : int;
  mutable local_highest : int; (* highest comm_seq to dest in our log copy *)
  mutable replies : (Addr.t * int) list; (* current probe round *)
  mutable consecutive_gaps : int;
  mutable promoted_daemon : Comm_daemon.t option;
  mutable probe_timer : Engine.timer option;
}

let promoted t = Option.is_some t.promoted_daemon
let daemon t = t.promoted_daemon

let send_aux t ~dst msg =
  Bp_net.Transport.send (Unit_node.transport t.node) ~dst
    ~tag:(Proto.aux_tag dst.Addr.dc) (Proto.encode msg)

(* The paper's rule: with responses from more than f+1 nodes, pick the set
   of f+1 that maximises the lowest reported position — i.e. the (f+1)-th
   largest response. Any set of f+1 contains an honest node, so that value
   is a true floor. *)
let guaranteed_floor t =
  let values = List.map snd t.replies in
  if List.length values < t.fi + 1 then None
  else begin
    let sorted = List.sort (fun a b -> Int.compare b a) values in
    List.nth_opt sorted t.fi
  end

let promote t floor =
  if not (promoted t) then begin
    t.promoted_daemon <-
      Some
        (Comm_daemon.create ~node:t.node ~dest:t.dest ~dest_nodes:t.dest_nodes
           ?geo_proofs:t.geo_proofs
           ~cluster_send:(Unit_node.cluster_enabled t.node)
           ~start_after:floor ());
    match t.probe_timer with
    | Some timer ->
        Engine.cancel timer;
        t.probe_timer <- None
    | None -> ()
  end

let evaluate t =
  (match guaranteed_floor t with
  | None -> ()
  | Some floor ->
      if t.local_highest > floor then begin
        t.consecutive_gaps <- t.consecutive_gaps + 1;
        if t.consecutive_gaps >= t.patience then promote t floor
      end
      else t.consecutive_gaps <- 0);
  t.replies <- []

let probe t =
  evaluate t;
  if not (promoted t) then begin
    (* Ask up to 2f+1 destination nodes. *)
    let count = Stdlib.min (Array.length t.dest_nodes) ((2 * t.fi) + 1) in
    for i = 0 to count - 1 do
      send_aux t ~dst:t.dest_nodes.(i)
        (Proto.Reserve_query { src = Unit_node.participant t.node })
    done
  end

let create ~node ~dest ~dest_nodes ?geo_proofs
    ?(probe_every = Time.of_ms 500.0) ?(patience = 3) () =
  let engine = Network.engine (Bp_net.Transport.network (Unit_node.transport node)) in
  let t =
    {
      node;
      dest;
      dest_nodes;
      geo_proofs;
      fi = Unit_node.fi node;
      patience;
      local_highest = -1;
      replies = [];
      consecutive_gaps = 0;
      promoted_daemon = None;
      probe_timer = None;
    }
  in
  (* Track the communication frontier from our own log copy. *)
  Bp_storage.Log_store.iter_from (Unit_node.log node) 0 (fun entry ->
      match Record.decode entry.Bp_storage.Log_store.payload with
      | Ok (Record.Comm { dest = d; comm_seq; _ }) when d = dest ->
          t.local_highest <- Stdlib.max t.local_highest comm_seq
      | _ -> ());
  Unit_node.add_executed_hook node (fun ~pos:_ record ->
      match record with
      | Record.Comm { dest = d; comm_seq; _ } when d = dest ->
          t.local_highest <- Stdlib.max t.local_highest comm_seq
      | _ -> ());
  Unit_node.add_aux_listener node (fun ~src msg ->
      match msg with
      | Proto.Reserve_reply { src = s; last }
        when s = Unit_node.participant node
             && src.Addr.dc = t.dest
             && not (promoted t) ->
          if not (List.mem_assoc src t.replies) then
            t.replies <- (src, last) :: t.replies;
          true
      | _ -> false);
  t.probe_timer <- Some (Engine.periodic engine ~every:probe_every (fun () -> probe t));
  t
