(** Saturation-scale open-loop load generation.

    Models very large client populations (10^5..10^7) as lightweight
    arrival {e processes} rather than per-client simulation objects: a
    process keeps O(1) state (its rng split and phase position) and at
    most one pending event in the engine heap at any instant, because
    each arrival schedules its successor from inside its own event.
    {!Workload.open_loop} is the single-process Poisson special case of
    this module; this one adds bursty and diurnal-trace rate processes
    and zipfian client/key skew, and reports the heap-occupancy
    telemetry that backs the O(1) claim.

    Determinism: all randomness flows through the [rng] handed to
    {!create} (a per-task split under the harness's per-seed plan
    discipline), so runs are bit-identical for equal seeds at any
    [--jobs]. *)

type process =
  | Poisson of { rate_per_sec : float }
      (** memoryless arrivals at a constant offered rate *)
  | Bursty of { rate_on : float; on_ms : float; off_ms : float }
      (** Markov-modulated on/off: exponential on-phases (mean [on_ms])
          with Poisson arrivals at [rate_on], separated by silent
          exponential off-phases (mean [off_ms]); the long-run offered
          rate is [rate_on * on_ms / (on_ms + off_ms)] *)
  | Diurnal of { base_rate : float; trace : (float * float) array }
      (** piecewise rate trace cycled forever: each [(duration_ms,
          multiplier)] segment offers [base_rate * multiplier] (0
          multiplier = quiet period) — a day-curve compressed into
          simulated time *)

type spec = {
  process : process;
  clients : int;  (** modeled client population *)
  skew : float;
      (** zipf exponent over client ranks; 0 = uniform, ~0.99 = YCSB *)
  count : int;  (** arrivals to generate *)
}

type t
(** A generator: spec + rng + mutable phase state. *)

val create : rng:Bp_util.Rng.t -> spec -> t
(** @raise Invalid_argument on non-positive rates/durations/counts, a
    negative skew, or a diurnal trace with no positive-rate segment. *)

val spec : t -> spec

val offered_per_sec : t -> float
(** Long-run mean offered rate implied by the process parameters. *)

val next_gap_ms : t -> float
(** Draw the next inter-arrival gap, advancing phase state. Exposed for
    the eager reference and distribution tests; {!run} calls it from
    inside arrival events. *)

val next_client : t -> int
(** Draw the arriving client's rank in [0, clients-1] (zipf when
    [skew > 0], else uniform). *)

(** {1 Multi-key transaction mix}

    Shard targeting for the sharded-deployment experiments: each arrival
    is either a single-shard op or, with probability [cross_fraction], a
    multi-key transaction spanning [txn_keys] distinct shards. Shard
    popularity is zipfian when [shard_skew > 0] (hot-shard contention),
    uniform otherwise. O(1) state, like the arrival processes; all
    randomness flows through the [rng] handed to {!mix}. *)

type mix_spec = {
  shards : int;
  cross_fraction : float;  (** probability an arrival spans shards *)
  txn_keys : int;  (** distinct shards per cross-shard txn (>= 2, capped
                       at [shards]) *)
  shard_skew : float;  (** zipf exponent over shard ranks; 0 = uniform *)
}

type mix

val mix : rng:Bp_util.Rng.t -> mix_spec -> mix
(** @raise Invalid_argument on a non-positive shard count, a
    [cross_fraction] outside [0, 1], [txn_keys < 2] or a negative or
    non-finite [shard_skew]. *)

val mix_spec : mix -> mix_spec

val draw_targets : mix -> int list
(** The target shards of the next arrival: a singleton for a
    single-shard op, [min txn_keys shards] distinct shards (sorted
    ascending) for a cross-shard transaction. With one shard every draw
    is a singleton. *)

type arrival = { index : int; client : int; at : Bp_sim.Time.t }

val plan :
  ?start:Bp_sim.Time.t -> rng:Bp_util.Rng.t -> spec -> arrival array
(** Eager reference: the full arrival sequence a generator over [rng]
    produces, materialised up front (O(count) memory — test-sized runs
    only). Draw order per arrival matches {!run} exactly, so for equal
    seeds the streamed arrivals are identical — the qcheck property
    pinning the streaming scheduler. *)

type result = {
  latencies : Bp_util.Stats.t;  (** per-request completion latency, ms *)
  makespan_ms : float;  (** first arrival to last completion *)
  achieved_per_sec : float;  (** completions / makespan *)
  offered_per_sec : float;  (** {!offered_per_sec} of the generator *)
  peak_arrivals_pending : int;
      (** max generator arrivals simultaneously in the heap — 1 by
          construction (the O(1)-occupancy telemetry) *)
  peak_engine_pending : int;
      (** max total engine heap occupancy observed at arrival instants —
          protocol events included; stays workload-bounded instead of
          growing with [count] *)
}

val run :
  Bp_sim.Engine.t ->
  gen:t ->
  submit:(int -> client:int -> on_done:(unit -> unit) -> unit) ->
  result
(** Stream the generator's [count] arrivals into [submit] and drive the
    engine until every request completes (fails on a runaway guard).
    [submit i ~client ~on_done] must eventually call [on_done]. *)
