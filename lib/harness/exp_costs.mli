(** §VI-D — performance and monetary costs.

    The paper discusses (without measuring) what byzantizing costs in
    resources: 3fi extra nodes per participant, local-commitment message
    rounds on every commit and communication, and geo-proof traffic when
    fg > 0. This experiment measures those costs directly from the
    network counters: nodes provisioned, messages and bytes on the wire
    per [log-commit] and per [send], across (fi, fg) configurations. *)

val costs_plan : scale:float -> Runner.plan
(** One task per (fi, fg) configuration. *)

val costs : ?scale:float -> unit -> Report.t list
