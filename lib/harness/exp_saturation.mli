(** Saturation sweep (beyond the paper): open-loop offered rate x
    consensus pipeline depth, driven by {!Loadgen}'s streaming arrival
    processes over a zipf-skewed 200k-client modeled population.

    For each series (depths 1/2/4/8 under the seed's cut-on-any-signal
    batch policy, plus depth 8 under the min-fill/hold adaptive policy)
    the sweep reports achieved throughput and p50/p95/p99 latency at
    each offered rate, the mean batch fill the cut policy achieved, and
    the {e saturation knee} — the highest offered rate whose p99 still
    meets the SLO — as [<series>_saturation_knee_rps] metrics in the
    bench JSON. [peak_arrivals_pending] certifies the generator's
    O(1)-per-process heap occupancy. *)

val slo_p99_ms : float
(** The tail SLO defining the knee. *)

val plan : scale:float -> Runner.plan
(** One task per (series, rate) point — 25 independent worlds. *)

val saturation : ?scale:float -> unit -> Report.t list
