open Bp_sim
open Blockplane

type sample = {
  nodes_per_participant : int;
  commit_msgs : int;
  commit_bytes : int;
  send_msgs : int;
  send_bytes : int;
}

let measure ~fi ~fg ~n ~seed =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper () in
  let dep =
    Deployment.create ~network:net ~n_participants:4 ~fi ~fg
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  let api = Deployment.api dep 0 in
  (* Let the deployment's periodic machinery (probes, heartbeats) settle
     into steady state before taking baselines, so we bill per-op deltas,
     not background traffic. *)
  Engine.run ~until:(Time.of_ms 100.0) engine;
  let snapshot () =
    let c = Network.counters net in
    (c.Network.sent, c.Network.bytes_sent)
  in
  let run_ops op =
    let m0, b0 = snapshot () in
    let t0 = Engine.now engine in
    ignore
      (Runner.sequential engine ~n ~warmup:0 ~run_one:(fun i ~on_done ->
           op i ~k:(fun () -> on_done 0.0)));
    (* Subtract the background traffic accrued over the same span. *)
    let span_ms = Time.to_ms (Time.diff (Engine.now engine) t0) in
    let m1, b1 = snapshot () in
    (m1 - m0, b1 - b0, span_ms)
  in
  (* Background rate estimate over an idle second. *)
  let mb0, bb0 = snapshot () in
  Engine.run ~until:(Time.add (Engine.now engine) (Time.of_sec 1.0)) engine;
  let mb1, bb1 = snapshot () in
  let bg_msgs_per_ms = float_of_int (mb1 - mb0) /. 1000.0 in
  let bg_bytes_per_ms = float_of_int (bb1 - bb0) /. 1000.0 in
  let commit_msgs, commit_bytes, commit_span =
    run_ops (fun i ~k -> Api.log_commit api (Runner.payload ~size:1000 i) ~on_done:k)
  in
  let send_msgs, send_bytes, send_span =
    run_ops (fun i ~k ->
        Api.send api ~dest:1 (Runner.payload ~size:1000 i) ~on_done:k)
  in
  let netto count bg span = float_of_int count -. (bg *. span) in
  {
    nodes_per_participant = (3 * fi) + 1;
    commit_msgs =
      int_of_float (netto commit_msgs bg_msgs_per_ms commit_span /. float_of_int n);
    commit_bytes =
      int_of_float (netto commit_bytes bg_bytes_per_ms commit_span /. float_of_int n);
    send_msgs =
      int_of_float (netto send_msgs bg_msgs_per_ms send_span /. float_of_int n);
    send_bytes =
      int_of_float (netto send_bytes bg_bytes_per_ms send_span /. float_of_int n);
  }

let configs = [ (1, 0); (1, 1); (2, 0) ]

(* One task per (fi, fg) configuration; [i] fixes the seed. *)
let costs_task ~scale i (fi, fg) () =
  let n = Runner.scaled scale 10 in
  let s = measure ~fi ~fg ~n ~seed:(Int64.of_int (6500 + i)) in
  [
    Printf.sprintf "fi=%d fg=%d" fi fg;
    string_of_int s.nodes_per_participant;
    string_of_int (4 * s.nodes_per_participant);
    string_of_int s.commit_msgs;
    string_of_int (s.commit_bytes / 1000);
    string_of_int s.send_msgs;
    string_of_int (s.send_bytes / 1000);
  ]

let costs_merge rows =
  [
    {
      Report.id = "costs";
      title = "Resource costs of byzantizing (SVI-D, measured)";
      paper_ref = "SVI-D discusses these costs qualitatively; measured per 1 KB operation";
      header =
        [
          "config";
          "nodes/participant";
          "total nodes";
          "msgs/commit";
          "KB/commit";
          "msgs/send";
          "KB/send";
        ];
      rows;
      metrics = [];
      notes =
        [
          "a benign single-copy deployment would use 1 node/participant and ~2 msgs/send";
          "fg=1 adds mirror requests and fi+1 attestations per committed entry";
        ];
    };
  ]

let costs_plan ~scale =
  Runner.Plan
    {
      tasks = List.mapi (fun i c -> costs_task ~scale i c) configs;
      merge = costs_merge;
    }

let costs ?(scale = 1.0) () = Runner.run_plan (costs_plan ~scale)
