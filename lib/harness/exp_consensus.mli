(** §VIII-D (Fig. 7) — global consensus: the Replication-phase latency of
    Blockplane-Paxos against plain Paxos, flat geo-PBFT and Hierarchical
    PBFT, with the leader placed at each of the four datacenters. *)

val fig7_plan : scale:float -> Runner.plan
(** One task per (leader, system) cell — 16 independent simulations,
    leader-major. *)

val fig7 : ?scale:float -> unit -> Report.t list
