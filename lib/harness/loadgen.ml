open Bp_sim

type process =
  | Poisson of { rate_per_sec : float }
  | Bursty of { rate_on : float; on_ms : float; off_ms : float }
  | Diurnal of { base_rate : float; trace : (float * float) array }

type spec = { process : process; clients : int; skew : float; count : int }

type t = {
  spec : spec;
  rng : Bp_util.Rng.t;
  zipf : Bp_util.Zipf.t option;
  (* Phase state advanced by gap draws. Bursty: time left in the current
     on-phase. Diurnal: current trace segment and time left in it. *)
  mutable on_left_ms : float;
  mutable seg : int;
  mutable seg_left_ms : float;
}

let validate spec =
  let pos name v =
    if v <= 0.0 || not (Float.is_finite v) then
      invalid_arg (Printf.sprintf "Loadgen: %s must be positive and finite" name)
  in
  (match spec.process with
  | Poisson { rate_per_sec } -> pos "rate_per_sec" rate_per_sec
  | Bursty { rate_on; on_ms; off_ms } ->
      pos "rate_on" rate_on;
      pos "on_ms" on_ms;
      pos "off_ms" off_ms
  | Diurnal { base_rate; trace } ->
      pos "base_rate" base_rate;
      if Array.length trace = 0 then invalid_arg "Loadgen: empty diurnal trace";
      Array.iter
        (fun (seg_ms, mult) ->
          pos "trace segment duration" seg_ms;
          if mult < 0.0 || not (Float.is_finite mult) then
            invalid_arg "Loadgen: trace multiplier must be >= 0 and finite")
        trace;
      if not (Array.exists (fun (_, m) -> m > 0.0) trace) then
        invalid_arg "Loadgen: diurnal trace needs a positive-rate segment");
  if spec.clients < 1 then invalid_arg "Loadgen: clients must be >= 1";
  if spec.skew < 0.0 || not (Float.is_finite spec.skew) then
    invalid_arg "Loadgen: skew must be >= 0 and finite";
  if spec.count < 1 then invalid_arg "Loadgen: count must be >= 1"

let create ~rng spec =
  validate spec;
  let zipf =
    (* skew 0 is the uniform distribution; sample it directly rather
       than through the rejection layer. *)
    if spec.skew > 0.0 && spec.clients > 1 then
      Some (Bp_util.Zipf.create ~n:spec.clients ~s:spec.skew)
    else None
  in
  let on_left_ms =
    match spec.process with
    | Bursty { on_ms; _ } -> Bp_util.Rng.exponential rng ~mean:on_ms
    | _ -> 0.0
  in
  let seg_left_ms =
    match spec.process with Diurnal { trace; _ } -> fst trace.(0) | _ -> 0.0
  in
  { spec; rng; zipf; on_left_ms; seg = 0; seg_left_ms }

let spec t = t.spec

let offered_per_sec t =
  match t.spec.process with
  | Poisson { rate_per_sec } -> rate_per_sec
  | Bursty { rate_on; on_ms; off_ms } -> rate_on *. on_ms /. (on_ms +. off_ms)
  | Diurnal { base_rate; trace } ->
      let wsum = Array.fold_left (fun a (d, m) -> a +. (d *. m)) 0.0 trace in
      let dsum = Array.fold_left (fun a (d, _) -> a +. d) 0.0 trace in
      base_rate *. wsum /. dsum

(* Draw the next inter-arrival gap, advancing phase state. Bursty and
   diurnal phases rely on the exponential's memorylessness: a candidate
   gap overshooting the current phase is discarded and redrawn inside
   the next active phase, with the dead time added to the gap. *)
let next_gap_ms t =
  match t.spec.process with
  | Poisson { rate_per_sec } ->
      Bp_util.Rng.exponential t.rng ~mean:(1000.0 /. rate_per_sec)
  | Bursty { rate_on; on_ms; off_ms } ->
      let mean_gap = 1000.0 /. rate_on in
      let rec go acc =
        let g = Bp_util.Rng.exponential t.rng ~mean:mean_gap in
        if g <= t.on_left_ms then begin
          t.on_left_ms <- t.on_left_ms -. g;
          acc +. g
        end
        else begin
          let dead = t.on_left_ms +. Bp_util.Rng.exponential t.rng ~mean:off_ms in
          t.on_left_ms <- Bp_util.Rng.exponential t.rng ~mean:on_ms;
          go (acc +. dead)
        end
      in
      go 0.0
  | Diurnal { base_rate; trace } ->
      let advance () =
        t.seg <- (t.seg + 1) mod Array.length trace;
        t.seg_left_ms <- fst trace.(t.seg)
      in
      let rec go acc =
        let _, mult = trace.(t.seg) in
        if mult <= 0.0 then begin
          (* Quiet segment: no arrivals, the whole remainder is gap. *)
          let dead = t.seg_left_ms in
          advance ();
          go (acc +. dead)
        end
        else begin
          let g =
            Bp_util.Rng.exponential t.rng ~mean:(1000.0 /. (base_rate *. mult))
          in
          if g <= t.seg_left_ms then begin
            t.seg_left_ms <- t.seg_left_ms -. g;
            acc +. g
          end
          else begin
            let dead = t.seg_left_ms in
            advance ();
            go (acc +. dead)
          end
        end
      in
      go 0.0

let next_client t =
  match t.zipf with
  | Some z -> Bp_util.Zipf.sample z t.rng
  | None -> if t.spec.clients = 1 then 0 else Bp_util.Rng.int t.rng t.spec.clients

(* ---------- multi-key transaction mix (shard targeting) ---------- *)

type mix_spec = {
  shards : int;
  cross_fraction : float;
  txn_keys : int;
  shard_skew : float;
}

type mix = {
  mspec : mix_spec;
  mrng : Bp_util.Rng.t;
  mzipf : Bp_util.Zipf.t option;
}

let mix ~rng spec =
  if spec.shards < 1 then invalid_arg "Loadgen.mix: shards must be >= 1";
  if
    spec.cross_fraction < 0.0 || spec.cross_fraction > 1.0
    || not (Float.is_finite spec.cross_fraction)
  then invalid_arg "Loadgen.mix: cross_fraction must be in [0, 1]";
  if spec.txn_keys < 2 then invalid_arg "Loadgen.mix: txn_keys must be >= 2";
  if spec.shard_skew < 0.0 || not (Float.is_finite spec.shard_skew) then
    invalid_arg "Loadgen.mix: shard_skew must be >= 0 and finite";
  let mzipf =
    if spec.shard_skew > 0.0 && spec.shards > 1 then
      Some (Bp_util.Zipf.create ~n:spec.shards ~s:spec.shard_skew)
    else None
  in
  { mspec = spec; mrng = rng; mzipf }

let mix_spec m = m.mspec

let draw_shard m =
  match m.mzipf with
  | Some z -> Bp_util.Zipf.sample z m.mrng
  | None -> if m.mspec.shards = 1 then 0 else Bp_util.Rng.int m.mrng m.mspec.shards

let draw_targets m =
  let home = draw_shard m in
  if m.mspec.shards = 1 || not (Bp_util.Rng.bernoulli m.mrng m.mspec.cross_fraction)
  then [ home ]
  else begin
    (* Distinct shards by redraw: the draw count is capped at the shard
       count, so the rejection loop terminates; under skew the expected
       redraws stay small because duplicates concentrate on few ranks. *)
    let want = Stdlib.min m.mspec.txn_keys m.mspec.shards in
    let chosen = ref [ home ] in
    while List.length !chosen < want do
      let s = draw_shard m in
      if not (List.mem s !chosen) then chosen := s :: !chosen
    done;
    List.sort compare !chosen
  end

type arrival = { index : int; client : int; at : Time.t }

(* The canonical per-arrival draw order — shared, by construction, with
   the streaming [run] below: gap_0 at start; then, inside arrival i,
   gap_{i+1} (when a successor exists) followed by client_i. The qcheck
   equivalence property holds [run] to this reference. *)
let plan ?(start = Time.zero) ~rng spec =
  let t = create ~rng spec in
  let arr = Array.make spec.count { index = 0; client = 0; at = Time.zero } in
  let rec fill i at =
    let next =
      if i + 1 < spec.count then
        Some (Time.add at (Time.of_ms (next_gap_ms t)))
      else None
    in
    let client = next_client t in
    arr.(i) <- { index = i; client; at };
    match next with Some a -> fill (i + 1) a | None -> ()
  in
  fill 0 (Time.add start (Time.of_ms (next_gap_ms t)));
  arr

type result = {
  latencies : Bp_util.Stats.t;
  makespan_ms : float;
  achieved_per_sec : float;
  offered_per_sec : float;
  peak_arrivals_pending : int;
  peak_engine_pending : int;
}

let run engine ~gen ~submit =
  let count = gen.spec.count in
  let stats = Bp_util.Stats.create () in
  let completed = ref 0 in
  let first_arrival = ref None in
  let last_completion = ref Time.zero in
  let arrivals_pending = ref 0 in
  let peak_arrivals = ref 0 in
  let peak_engine = ref 0 in
  let rec arrive i at =
    incr arrivals_pending;
    if !arrivals_pending > !peak_arrivals then peak_arrivals := !arrivals_pending;
    ignore
      (Engine.schedule_at engine at (fun () ->
           decr arrivals_pending;
           (* Streaming: the successor enters the heap here — never more
              than one pending arrival per process, however large
              [count]. Scheduled before the submit so that same-instant
              ties resolve arrival-first, as an eager pre-scheduler
              would. *)
           if i + 1 < count then
             arrive (i + 1) (Time.add at (Time.of_ms (next_gap_ms gen)));
           let p = Engine.pending engine in
           if p > !peak_engine then peak_engine := p;
           let client = next_client gen in
           if !first_arrival = None then first_arrival := Some (Engine.now engine);
           let t0 = Engine.now engine in
           submit i ~client ~on_done:(fun () ->
               incr completed;
               last_completion := Engine.now engine;
               Bp_util.Stats.add stats
                 (Time.to_ms (Time.diff (Engine.now engine) t0)))))
  in
  arrive 0 (Time.add (Engine.now engine) (Time.of_ms (next_gap_ms gen)));
  let guard = ref 0 in
  while !completed < count && Engine.step engine do
    incr guard;
    if !guard > 200_000_000 then failwith "Loadgen.run: runaway simulation"
  done;
  if !completed < count then failwith "Loadgen.run: requests lost";
  let start = Option.value ~default:Time.zero !first_arrival in
  let makespan_ms = Time.to_ms (Time.diff !last_completion start) in
  {
    latencies = stats;
    makespan_ms;
    achieved_per_sec = float_of_int count /. (makespan_ms /. 1000.0);
    offered_per_sec = offered_per_sec gen;
    peak_arrivals_pending = !peak_arrivals;
    peak_engine_pending = !peak_engine;
  }
