open Bp_sim
open Blockplane

(* Paper readings for Fig. 5 (SVIII-B text). *)
let fig5_paper = function
  | 0, 1 -> "~23" | 0, 2 -> "~64" | 0, 3 -> ">135" (* California *)
  | 1, 1 -> "~23" | 1, 2 -> "~80" | 1, 3 -> ">135" (* Oregon *)
  | 2, 1 -> "~64" | 2, 2 -> "64-80" | 2, 3 -> "~80" (* Virginia *)
  | 3, 1 -> "~72" | 3, 2 -> "~135" | 3, 3 -> ">135" (* Ireland *)
  | _ -> "-"

(* dc-major, fg-minor: the row order of the rendered report. *)
let fig5_points =
  List.concat_map (fun dc -> List.map (fun fg -> (dc, fg)) [ 1; 2; 3 ]) [ 0; 1; 2; 3 ]

let fig5_task ~scale (dc, fg) () =
  let topo = Topology.aws_paper in
  let world =
    Runner.fresh_world ~fg ~seed:(Int64.of_int (4000 + (10 * dc) + fg)) ()
  in
  let api = Deployment.api world.Runner.dep dc in
  let n = Runner.scaled scale 10 in
  let stats =
    Runner.sequential world.Runner.engine ~n ~warmup:2 ~run_one:(fun i ~on_done ->
        let started = Engine.now world.Runner.engine in
        Api.log_commit api (Runner.payload ~size:1000 i) ~on_done:(fun () ->
            on_done
              (Time.to_ms (Time.diff (Engine.now world.Runner.engine) started))))
  in
  [
    Printf.sprintf "%c(%d)" (Topology.name topo dc).[0] fg;
    Report.ms (Bp_util.Stats.mean stats);
    fig5_paper (dc, fg);
  ]

let fig5_merge rows =
  [
    {
      Report.id = "fig5";
      title = "Commit latency with geo-correlated fault tolerance";
      paper_ref = "Fig. 5, SVIII-B: fi=1, fg varies; X(g) = commit at X with fg=g";
      header = [ "scenario"; "ms (measured)"; "ms (paper)" ];
      rows;
      metrics = [];
      notes =
        [
          "latency ~= local commit + RTT to the fg-th closest datacenter + mirror commit";
        ];
    };
  ]

let fig5_plan ~scale =
  Runner.Plan
    { tasks = List.map (fun p -> fig5_task ~scale p) fig5_points; merge = fig5_merge }

let fig5 ?(scale = 1.0) () = Runner.run_plan (fig5_plan ~scale)

(* ---------- Fig. 8 ---------- *)

(* Summarise a latency series: a mean row per stable region plus
   individual rows around the failure point. *)
let summarize_series series ~failure_at =
  let arr = Array.of_list series in
  let n = Array.length arr in
  let mean lo hi =
    (* inclusive bounds, 0-based *)
    let s = ref 0.0 and c = ref 0 in
    for i = lo to hi do
      if i >= 0 && i < n then begin
        s := !s +. snd arr.(i);
        incr c
      end
    done;
    if !c = 0 then 0.0 else !s /. float_of_int !c
  in
  let detail_lo = Stdlib.max 0 (failure_at - 2) in
  let detail_hi = Stdlib.min (n - 1) (failure_at + 4) in
  let rows = ref [] in
  if detail_lo > 0 then
    rows :=
      [
        Printf.sprintf "batches %d-%d" (fst arr.(0)) (fst arr.(detail_lo - 1));
        Report.ms (mean 0 (detail_lo - 1));
      ]
      :: !rows;
  for i = detail_lo to detail_hi do
    rows := [ Printf.sprintf "batch %d" (fst arr.(i)); Report.ms (snd arr.(i)) ] :: !rows
  done;
  if detail_hi < n - 1 then
    rows :=
      [
        Printf.sprintf "batches %d-%d" (fst arr.(detail_hi + 1)) (fst arr.(n - 1));
        Report.ms (mean (detail_hi + 1) (n - 1));
      ]
      :: !rows;
  List.rev !rows

let fig8a ~scale =
  let world = Runner.fresh_world ~fg:1 ~seed:4800L () in
  let api = Deployment.api world.Runner.dep Topology.dc_california in
  let total = Runner.scaled scale 100 in
  let failure_at = Stdlib.max 1 (45 * total / 100) in
  let series = ref [] in
  let stats =
    Runner.sequential world.Runner.engine ~n:total ~warmup:0 ~run_one:(fun i ~on_done ->
        if i = failure_at then Network.crash_dc world.Runner.net Topology.dc_oregon;
        let started = Engine.now world.Runner.engine in
        Api.log_commit api (Runner.payload ~size:1000 i) ~on_done:(fun () ->
            let ms = Time.to_ms (Time.diff (Engine.now world.Runner.engine) started) in
            series := (i + 1, ms) :: !series;
            on_done ms))
  in
  ignore stats;
  {
    Report.id = "fig8a";
    title = "Reacting to a backup failure (Oregon dies)";
    paper_ref =
      Printf.sprintf
        "Fig. 8(a), SVIII-E: fi=fg=1, primary California; Oregon killed at batch %d"
        failure_at;
    header = [ "batch"; "latency ms" ];
    rows = summarize_series (List.rev !series) ~failure_at;
    metrics = [];
    notes =
      [
        "expected shape: ~20-40 ms while Oregon lives, ~60-80 ms after (proofs from Virginia)";
        "the batch in flight at the failure pays the suspicion timeout";
      ];
  }

let fig8b ~scale =
  let world = Runner.fresh_world ~fg:1 ~seed:4900L () in
  let engine = world.Runner.engine in
  let c = Topology.dc_california and v = Topology.dc_virginia in
  let api_c = Deployment.api world.Runner.dep c in
  let api_v = Deployment.api world.Runner.dep v in
  let total = Runner.scaled scale 160 in
  let failure_at = Stdlib.max 1 (70 * total / 160) in
  (* The standby driver at Virginia watches California's lead node. *)
  let takeover = ref false in
  let pending : (string * (unit -> unit)) option ref = ref None in
  let standby_transport =
    Bp_net.Transport.create world.Runner.net (Addr.make ~dc:v ~idx:95)
  in
  ignore
    (Bp_net.Heartbeat.create standby_transport
       ~peers:[ (Deployment.unit_addrs world.Runner.dep c).(0) ]
       ~period:(Time.of_ms 50.0) ~timeout:(Time.of_ms 200.0)
       ~on_suspect:(fun _ ->
         takeover := true;
         (* Re-drive the batch that died with the primary. *)
         match !pending with
         | Some (payload, k) ->
             pending := None;
             Api.log_commit api_v payload ~on_done:k
         | None -> ())
       ());
  let series = ref [] in
  let stats =
    Runner.sequential world.Runner.engine ~n:total ~warmup:0 ~run_one:(fun i ~on_done ->
        if i = failure_at then Network.crash_dc world.Runner.net c;
        let started = Engine.now engine in
        let payload = Runner.payload ~size:1000 i in
        let finish () =
          let ms = Time.to_ms (Time.diff (Engine.now engine) started) in
          series := (i + 1, ms) :: !series;
          on_done ms
        in
        if !takeover then Api.log_commit api_v payload ~on_done:finish
        else begin
          (* Submitted at the (possibly just-killed) primary; the standby
             resubmits it if California never answers. *)
          pending := Some (payload, finish);
          Api.log_commit api_c payload ~on_done:(fun () ->
              pending := None;
              finish ())
        end)
  in
  ignore stats;
  {
    Report.id = "fig8b";
    title = "Reacting to a primary failure (California dies, Virginia takes over)";
    paper_ref =
      Printf.sprintf
        "Fig. 8(b), SVIII-E: fi=fg=1; primary killed after batch %d" failure_at;
    header = [ "batch"; "latency ms" ];
    rows = summarize_series (List.rev !series) ~failure_at;
    metrics = [];
    notes =
      [
        "expected shape: ~20-40 ms at California, then a takeover spike (~250 ms)";
        "and ~70-80 ms steady state at Virginia (its closest live mirror is Ireland)";
      ];
  }

let fig8_plan ~scale =
  Runner.Plan
    {
      tasks = [ (fun () -> fig8a ~scale); (fun () -> fig8b ~scale) ];
      merge = (fun reports -> reports);
    }

let fig8 ?(scale = 1.0) () = Runner.run_plan (fig8_plan ~scale)
