(** §VIII-C — communication performance (Fig. 6): the latency of sending
    a message through [send], committing it at the destination through
    [receive], and acknowledging receipt back at the source, for every
    pair of datacenters; plus the overhead relative to the raw RTT. *)

val fig6_plan : scale:float -> Runner.plan
(** One task per datacenter pair — 6 worlds. *)

val fig6 : ?scale:float -> unit -> Report.t list

(** Table I is reproduced for completeness (the topology inputs). *)
val table1 : unit -> Report.t list

val table1_plan : unit -> Runner.plan
