open Bp_sim
open Blockplane

(* ---------- read strategies (§VI-A) ---------- *)

(* Internally sequential (three strategies share one populated world),
   so the plan is a single task. *)
let reads_reports ~scale =
  let world = Runner.fresh_world ~seed:6100L () in
  let engine = world.Runner.engine in
  let api = Deployment.api world.Runner.dep 0 in
  (* Populate a few entries first. *)
  let n = Runner.scaled scale 20 in
  ignore
    (Runner.sequential engine ~n:5 ~warmup:0 ~run_one:(fun i ~on_done ->
         Api.log_commit api (Printf.sprintf "entry-%d" i) ~on_done:(fun () ->
             on_done 0.0)));
  let measure strategy =
    Runner.sequential engine ~n ~warmup:2 ~run_one:(fun i ~on_done ->
        let pos = i mod 5 in
        let started = Engine.now engine in
        let finish r =
          (match r with
          | Some (Record.Commit _) -> ()
          | _ -> failwith "read ablation: wrong record");
          on_done (Time.to_ms (Time.diff (Engine.now engine) started))
        in
        match strategy with
        | `One ->
            let r = Api.read api pos in
            (* Synchronous: complete on the next engine step so the loop
               stays uniform. *)
            ignore (Engine.schedule engine ~after:Time.zero (fun () -> finish r))
        | `Quorum -> Api.read_quorum api pos ~on_result:finish
        | `Linearizable -> Api.read_linearizable api pos ~on_result:finish)
  in
  let r1 = measure `One in
  let rq = measure `Quorum in
  let rl = measure `Linearizable in
  [
    {
      Report.id = "ablation-reads";
      title = "Read strategies (extension of SVI-A)";
      paper_ref = "SVI-A describes the three strategies; the paper does not measure them";
      header = [ "strategy"; "latency ms"; "tolerates" ];
      rows =
        [
          [ "read-1 (closest node)"; Report.ms (Bp_util.Stats.mean r1); "crash only (a liar can answer)" ];
          [ "2f+1 quorum"; Report.ms (Bp_util.Stats.mean rq); "f byzantine nodes" ];
          [ "linearizable (committed marker)"; Report.ms (Bp_util.Stats.mean rl); "f byzantine + stale reads" ];
        ];
      metrics = [];
      notes = [ "each stronger strategy buys safety with one more protocol round" ];
    };
  ]

let reads_plan ~scale =
  Runner.Plan { tasks = [ (fun () -> reads_reports ~scale) ]; merge = List.concat }

let reads ?(scale = 1.0) () = Runner.run_plan (reads_plan ~scale)

(* ---------- batching / group commit (§VI-C) ---------- *)

let run_burst ~burst ~batch_max ~seed =
    let engine = Engine.create ~seed () in
    let net = Network.create engine Topology.aws_paper () in
    let dep =
      Deployment.create ~network:net ~n_participants:1 ~fi:1 ~batch_max
        ~app:(fun () -> App.make (module App.Null))
        ()
    in
    let api = Deployment.api dep 0 in
    let done_count = ref 0 in
    let t0 = Engine.now engine in
    let finish_at = ref Time.zero in
    for i = 1 to burst do
      Api.log_commit api (Runner.payload ~size:1000 i) ~on_done:(fun () ->
          incr done_count;
          if !done_count = burst then finish_at := Engine.now engine)
    done;
    Engine.run ~until:(Time.of_sec 60.0) engine;
  if !done_count < burst then failwith "batching ablation: burst did not finish";
  let makespan_ms = Time.to_ms (Time.diff !finish_at t0) in
  let throughput = float_of_int burst /. (makespan_ms /. 1000.0) in
  (makespan_ms, throughput)

let batching_merge ~burst results =
  let (mk1, th1), (mk64, th64) =
    match results with
    | [ a; b ] -> (a, b)
    | _ -> failwith "batching ablation: expected two burst results"
  in
  [
    {
      Report.id = "ablation-batch";
      title = "Group commit (SVI-C): burst of concurrent log-commits";
      paper_ref =
        Printf.sprintf "SVI-C batching; burst of %d 1 KB requests, one unit" burst;
      header = [ "batching"; "makespan ms"; "requests/s" ];
      rows =
        [
          [ "off (1 request per PBFT batch)"; Report.ms mk1; Printf.sprintf "%.0f" th1 ];
          [ "on (up to 64 per batch)"; Report.ms mk64; Printf.sprintf "%.0f" th64 ];
        ];
      metrics = [];
      notes = [ "batching amortizes the three-phase protocol across the whole burst" ];
    };
  ]

let batching_plan ~scale =
  let burst = Runner.scaled scale 50 in
  Runner.Plan
    {
      tasks =
        [
          (fun () -> run_burst ~burst ~batch_max:1 ~seed:6200L);
          (fun () -> run_burst ~burst ~batch_max:64 ~seed:6201L);
        ];
      merge = batching_merge ~burst;
    }

let batching ?(scale = 1.0) () = Runner.run_plan (batching_plan ~scale)

(* ---------- signature schemes ---------- *)

let run_scheme ~n ~scheme ~seed =
    let engine = Engine.create ~seed () in
    let net = Network.create engine Topology.aws_paper () in
    let dep =
      Deployment.create ~network:net ~n_participants:2 ~fi:1 ~scheme
        ~app:(fun () -> App.make (module App.Null))
        ()
    in
    let api0 = Deployment.api dep 0 in
    let received = ref 0 in
    (* Messages arrive in order; resolve the waiting sender directly. *)
    let waiting : (unit -> unit) Queue.t = Queue.create () in
    Api.on_receive (Deployment.api dep 1) (fun ~src:_ _ ->
        incr received;
        if not (Queue.is_empty waiting) then (Queue.pop waiting) ());
    let stats = Bp_util.Stats.create () in
    let rec go i =
      if i <= n then begin
        let started = Engine.now engine in
        Queue.push
          (fun () ->
            Bp_util.Stats.add stats
              (Time.to_ms (Time.diff (Engine.now engine) started));
            go (i + 1))
          waiting;
        Api.send api0 ~dest:1 (Runner.payload ~size:1000 i) ~on_done:ignore
      end
    in
    go 1;
    Engine.run ~until:(Time.of_sec 60.0) engine;
  if !received < n then failwith "signature ablation: messages lost";
  let bytes = (Network.counters net).Network.bytes_sent in
  (Bp_util.Stats.mean stats, bytes / n)

let signatures_merge results =
  let (hmac_lat, hmac_bytes), (hash_lat, hash_bytes) =
    match results with
    | [ a; b ] -> (a, b)
    | _ -> failwith "signature ablation: expected two scheme results"
  in
  [
    {
      Report.id = "ablation-sig";
      title = "Signature schemes: HMAC registry vs hash-based (Lamport/Merkle)";
      paper_ref =
        "SVIII: the paper's prototype skipped signatures entirely; both schemes here are real";
      header =
        [ "scheme"; "send->receive ms (C->O)"; "network bytes per message" ];
      rows =
        [
          [ "HMAC-SHA256 (32 B sigs)"; Report.ms hmac_lat; string_of_int hmac_bytes ];
          [
            "hash-based (Lamport+Merkle, ~16 KB sigs)";
            Report.ms hash_lat;
            string_of_int hash_bytes;
          ];
        ];
      metrics = [];
      notes =
        [
          "hash-based signatures need no trusted registry; each signature is ~500x larger (message-level traffic ~23x)";
          "wire size feeds the NIC model, so the latency gap is bandwidth, not CPU";
        ];
    };
  ]

let signatures_plan ~scale =
  let n = Stdlib.max 2 (Runner.scaled scale 5) in
  Runner.Plan
    {
      tasks =
        [
          (fun () -> run_scheme ~n ~scheme:`Hmac ~seed:6300L);
          (fun () -> run_scheme ~n ~scheme:`Hash_based ~seed:6301L);
        ];
      merge = signatures_merge;
    }

let signatures ?(scale = 1.0) () = Runner.run_plan (signatures_plan ~scale)

(* ---------- behaviour under network loss ---------- *)

let loss_rates = [ 0.0; 0.01; 0.05; 0.10 ]

let loss_task ~scale i rate () =
  let n = Runner.scaled scale 30 in
  let seed = Int64.of_int (6400 + i) in
  let engine = Engine.create ~seed () in
  let faults = { Network.no_faults with drop = rate } in
  let net = Network.create engine Topology.aws_paper ~faults () in
  let dep =
    Deployment.create ~network:net ~n_participants:1 ~fi:1
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  let api = Deployment.api dep 0 in
  let stats =
    Runner.sequential engine ~n ~warmup:3 ~run_one:(fun i ~on_done ->
        let started = Engine.now engine in
        Api.log_commit api (Runner.payload ~size:1000 i) ~on_done:(fun () ->
            on_done (Time.to_ms (Time.diff (Engine.now engine) started))))
  in
  let s = Bp_util.Stats.summarize stats in
  [
    Printf.sprintf "%.0f%%" (rate *. 100.0);
    Report.ms s.Bp_util.Stats.mean;
    Report.ms s.Bp_util.Stats.p50;
    Report.ms s.Bp_util.Stats.max;
  ]

let loss_merge rows =
  [
    {
      Report.id = "ablation-loss";
      title = "Local commit latency under packet loss";
      paper_ref = "extension: the reliable-transport layer the paper assumes from TCP";
      header = [ "drop rate"; "mean ms"; "p50 ms"; "max ms" ];
      rows;
      metrics = [];
      notes =
        [
          "losses surface as retransmission delays, never as protocol failures";
        ];
    };
  ]

let loss_plan ~scale =
  Runner.Plan
    {
      tasks = List.mapi (fun i r -> loss_task ~scale i r) loss_rates;
      merge = loss_merge;
    }

let loss ?(scale = 1.0) () = Runner.run_plan (loss_plan ~scale)

(* ---------- offered load vs latency (open loop) ---------- *)

let load_rates = [ 1_000.0; 5_000.0; 20_000.0; 40_000.0; 80_000.0 ]

let load_task ~scale i rate () =
  let count = Runner.scaled scale 400 in
  let seed = Int64.of_int (6600 + i) in
  let engine = Engine.create ~seed () in
    let net = Network.create engine Topology.aws_paper () in
    let dep =
      Deployment.create ~network:net ~n_participants:1 ~fi:1
        ~app:(fun () -> App.make (module App.Null))
        ()
    in
  let api = Deployment.api dep 0 in
  let rng = Bp_util.Rng.split (Engine.rng engine) in
  let r =
    Workload.open_loop engine ~rng ~rate_per_sec:rate ~count
      ~submit:(fun i ~on_done ->
        Api.log_commit api (Runner.payload ~size:1000 i) ~on_done)
  in
  let s = Bp_util.Stats.summarize r.Workload.latencies in
  [
    Printf.sprintf "%.0f/s" rate;
    Printf.sprintf "%.0f/s" r.Workload.achieved_per_sec;
    Report.ms s.Bp_util.Stats.mean;
    Report.ms s.Bp_util.Stats.p99;
  ]

let load_merge rows =
  [
    {
      Report.id = "ablation-load";
      title = "Open-loop offered load vs local-commit latency";
      paper_ref = "extension: the queueing knee of group commit (SVI-C), Poisson arrivals, 1 KB ops";
      header = [ "offered"; "achieved"; "mean ms"; "p99 ms" ];
      rows;
      metrics = [];
      notes =
        [
          "group commit absorbs load almost flat until the unit saturates, then queueing delay takes over";
        ];
    };
  ]

let load_plan ~scale =
  Runner.Plan
    {
      tasks = List.mapi (fun i r -> load_task ~scale i r) load_rates;
      merge = load_merge;
    }

let load ?(scale = 1.0) () = Runner.run_plan (load_plan ~scale)
