(** §VIII-B and §VIII-E — geo-correlated fault tolerance.

    Fig. 5: [log-commit] latency at each datacenter while varying fg from
    1 to 3 (fi = 1).
    Fig. 8(a): per-batch latency with fi = fg = 1, primary California,
    when the closest backup (Oregon) fails mid-run.
    Fig. 8(b): the same when the *primary* fails and Virginia takes over. *)

val fig5_plan : scale:float -> Runner.plan
(** One task per (datacenter, fg) scenario — 12 worlds. *)

val fig5 : ?scale:float -> unit -> Report.t list

val fig8_plan : scale:float -> Runner.plan
(** Two tasks: the backup-failure and primary-failure runs. *)

val fig8 : ?scale:float -> unit -> Report.t list
