open Bp_sim
open Blockplane

let table1 () =
  let topo = Topology.aws_paper in
  let n = Topology.num_dcs topo in
  let initial name = String.make 1 name.[0] in
  let header =
    "" :: List.init n (fun j -> initial (Topology.name topo j))
  in
  let rows =
    List.init n (fun i ->
        initial (Topology.name topo i)
        :: List.init n (fun j ->
               Printf.sprintf "%.0f" (if i = j then 0.0 else Time.to_ms (Topology.rtt topo i j))))
  in
  [
    {
      Report.id = "table1";
      title = "Round-trip times between the four datacenters (ms)";
      paper_ref = "Table I (these are the simulator's inputs)";
      header;
      rows;
      metrics = [];
      notes = [ "C=California O=Oregon V=Virginia I=Ireland" ];
    };
  ]

(* Paper readings for Fig. 6 (from the SVIII-C text). *)
let pairs =
  [
    (Topology.dc_california, Topology.dc_oregon, "23.4", "23%");
    (Topology.dc_california, Topology.dc_virginia, "64-80", "1-7%");
    (Topology.dc_california, Topology.dc_ireland, ">135", "1-7%");
    (Topology.dc_oregon, Topology.dc_virginia, "64-80", "1-7%");
    (Topology.dc_oregon, Topology.dc_ireland, ">135", "1-7%");
    (Topology.dc_virginia, Topology.dc_ireland, "64-80", "1-7%");
  ]

let measure_pair ~scale ~src ~dst ~seed =
  let world = Runner.fresh_world ~seed () in
  let api = Deployment.api world.Runner.dep src in
  let daemon = Deployment.daemon world.Runner.dep ~src ~dest:dst in
  let n = Runner.scaled scale 10 in
  let waiting : (int, float -> unit) Hashtbl.t = Hashtbl.create 8 in
  let started : (int, Time.t) Hashtbl.t = Hashtbl.create 8 in
  Comm_daemon.on_acked daemon (fun frontier ->
      (* Cumulative: resolve everything at or below the frontier. *)
      let ready =
        Hashtbl.fold (fun seq k acc -> if seq <= frontier then (seq, k) :: acc else acc)
          waiting []
      in
      List.iter
        (fun (seq, k) ->
          Hashtbl.remove waiting seq;
          let t0 = Hashtbl.find started seq in
          k (Time.to_ms (Time.diff (Engine.now world.Runner.engine) t0)))
        (* Sort by sequence only: the snd components are closures, which
           polymorphic compare would inspect (and crash on) if two seqs
           ever tied. *)
        (List.sort (fun (a, _) (b, _) -> Int.compare a b) ready));
  Runner.sequential world.Runner.engine ~n ~warmup:2 ~run_one:(fun _i ~on_done ->
      let seq = Api.next_comm_seq api ~dest:dst in
      Hashtbl.replace started seq (Engine.now world.Runner.engine);
      Hashtbl.replace waiting seq on_done;
      Api.send api ~dest:dst (Runner.payload ~size:1000 seq) ~on_done:ignore)

(* One task per datacenter pair; [i] fixes the seed. *)
let fig6_task ~scale i (src, dst, paper_lat, paper_ovh) () =
  let topo = Topology.aws_paper in
  let stats = measure_pair ~scale ~src ~dst ~seed:(Int64.of_int (3000 + i)) in
  let mean = Bp_util.Stats.mean stats in
  let rtt = Time.to_ms (Topology.rtt topo src dst) in
  let overhead = (mean -. rtt) /. rtt *. 100.0 in
  [
    Printf.sprintf "%c%c"
      (Topology.name topo src).[0]
      (Topology.name topo dst).[0];
    Report.ms mean;
    paper_lat;
    Printf.sprintf "%.0f%%" overhead;
    paper_ovh;
  ]

let fig6_merge rows =
  [
    {
      Report.id = "fig6";
      title = "Communication latency between participants (send -> receive -> ack)";
      paper_ref = "Fig. 6, SVIII-C: fi=1, fg=0";
      header =
        [
          "pair";
          "ms (measured)";
          "ms (paper)";
          "overhead vs RTT";
          "overhead (paper)";
        ];
      rows;
      metrics = [];
      notes =
        [
          "overhead = the two local commitments + signature round on top of the raw RTT";
          "expected shape: overhead largest for the closest pair (C-O), negligible for far pairs";
        ];
    };
  ]

let fig6_plan ~scale =
  Runner.Plan
    { tasks = List.mapi (fun i p -> fig6_task ~scale i p) pairs; merge = fig6_merge }

let fig6 ?(scale = 1.0) () = Runner.run_plan (fig6_plan ~scale)

(* Table I is a pure topology readout — a single trivial task. *)
let table1_plan () =
  Runner.Plan { tasks = [ (fun () -> table1 ()) ]; merge = List.concat }
