(** Experiment reports: the rows/series the paper's tables and figures
    show, side by side with the paper's reference values. *)

type t = {
  id : string;  (** "fig4a", "table2", ... *)
  title : string;
  paper_ref : string;  (** where in the paper this comes from *)
  header : string list;
  rows : string list list;
  notes : string list;
  metrics : (string * float) list;
      (** Machine-readable counters for the bench JSON (pipeline
          occupancy, percentile latencies, speedups) — never rendered
          into the table text, so they cannot perturb golden-table
          comparisons. *)
}

val render : t -> string
(** Callers print the result themselves — library code never writes to
    stdout (bplint rule R4). *)

val ms : float -> string
(** "12.3" — millisecond formatting used across reports. *)

val mbps : float -> string
