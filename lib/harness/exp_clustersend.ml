open Bp_sim
open Blockplane

(* ablation-clustersend: expected-constant byzantine cluster-sending vs
   the fi+1-signature-bundle baseline, swept over unit size
   n = 3fi+1 = 4/7/10/13 and three network conditions. One closed-loop
   C->O stream per task; delivery is measured at the source daemon's
   cumulative-ack frontier (the fig6 end point). *)

type mode = Bundle | Cluster
type scenario = Clean | Loss | Byz

let mode_name = function Bundle -> "bundle" | Cluster -> "cluster"

let scenario_name = function
  | Clean -> "clean"
  | Loss -> "loss 3%"
  | Byz -> "byz withhold"

let fis = [ 1; 2; 3; 4 ]

let combos =
  List.concat_map
    (fun mode ->
      List.concat_map
        (fun fi -> List.map (fun sc -> (mode, fi, sc)) [ Clean; Loss; Byz ])
        fis)
    [ Bundle; Cluster ]

(* Per-task result: the rendered row plus the raw numbers the merge
   needs for cross-mode speedup metrics. *)
type result = {
  r_mode : mode;
  r_fi : int;
  r_scenario : scenario;
  r_thr : float; (* delivered records / simulated second *)
  r_p50 : float;
  r_p99 : float;
  r_wan_msgs : float; (* WAN messages per delivered record *)
  r_wan_kb : float;
  r_verifies : float; (* signature verifications per delivered record *)
}

let task ~scale idx (mode, fi, scenario) () =
  let seed = Int64.of_int (8000 + idx) in
  let engine = Engine.create ~seed () in
  let faults =
    match scenario with
    | Loss -> { Network.no_faults with Network.drop = 0.03 }
    | Clean | Byz -> Network.no_faults
  in
  let net = Network.create engine Topology.aws_paper ~faults () in
  let cluster_send = match mode with Cluster -> true | Bundle -> false in
  let dep =
    (* The modeled verification cost (same constant the pipeline
       ablations use, see exp_local) with proof bundles priced in: under
       bundles, every replica of the receiving unit checks fi+1 embedded
       signatures per record before voting, so consensus pays
       Theta(n*fi) signature time per record; under cluster-sending Recv
       records carry no bundle (coverage was established by chain-head
       probes, one signature each) and only the base batch units are
       charged. Without this the crypto gap between the modes is
       invisible in throughput — signatures would be free. *)
    Deployment.create ~network:net ~n_participants:2 ~fi ~cluster_send
      ~verify_cost:(Time.of_ms 0.4) ~extra_verify_units:Record.proof_units
      ~app:(fun () -> App.make (module App.Null))
      ()
  in
  let n_nodes = (3 * fi) + 1 in
  (match scenario with
  | Byz ->
      (* fi withholding nodes per unit, at the top indices: the PBFT
         primaries (node 0) stay honest, so consensus sees exactly the
         2fi+1 honest quorum and the fault shows up purely in the
         communication layer — unanswered sign requests and probe
         requests on the source side, dropped transmits and probes on
         the destination side. *)
      List.iter
        (fun p ->
          for i = n_nodes - fi to n_nodes - 1 do
            Unit_node.set_byzantine_drop_comm (Deployment.node dep p i) true
          done)
        [ 0; 1 ]
  | Clean | Loss -> ());
  let api = Deployment.api dep 0 in
  let daemon = Deployment.daemon dep ~src:0 ~dest:1 in
  let total = Runner.scaled scale 24 in
  let waiting : (int, float -> unit) Hashtbl.t = Hashtbl.create 8 in
  let started : (int, Time.t) Hashtbl.t = Hashtbl.create 8 in
  Comm_daemon.on_acked daemon (fun frontier ->
      let ready =
        Hashtbl.fold
          (fun seq k acc -> if seq <= frontier then (seq, k) :: acc else acc)
          waiting []
      in
      List.iter
        (fun (seq, k) ->
          Hashtbl.remove waiting seq;
          let t0 = Hashtbl.find started seq in
          k (Time.to_ms (Time.diff (Engine.now engine) t0)))
        (List.sort (fun (a, _) (b, _) -> Int.compare a b) ready));
  (* Outstanding must exceed fi+1 at every swept n: cluster-sending
     amortizes a record's coverage over the stream's later heads, so a
     window smaller than one coverage wave degenerates to
     stop-and-wait. *)
  let stats, makespan =
    Runner.closed_loop engine ~total ~outstanding:8 ~run_one:(fun _i ~on_done ->
        let seq = Api.next_comm_seq api ~dest:1 in
        Hashtbl.replace started seq (Engine.now engine);
        Hashtbl.replace waiting seq on_done;
        Api.send api ~dest:1 (Runner.payload ~size:1000 seq) ~on_done:ignore)
  in
  let s = Bp_util.Stats.summarize stats in
  let delivered = float_of_int total in
  let off_diagonal m =
    let acc = ref 0 in
    Array.iteri
      (fun i row -> Array.iteri (fun j v -> if i <> j then acc := !acc + v) row)
      m;
    float_of_int !acc
  in
  let wan_msgs = off_diagonal (Network.message_matrix net) /. delivered in
  let wan_kb = off_diagonal (Network.traffic_matrix net) /. 1024.0 /. delivered in
  let verifies =
    let sum = ref 0 in
    List.iter
      (fun p ->
        Array.iter
          (fun node -> sum := !sum + Unit_node.verify_effort node)
          (Deployment.nodes_of dep p))
      [ 0; 1 ];
    float_of_int !sum /. delivered
  in
  {
    r_mode = mode;
    r_fi = fi;
    r_scenario = scenario;
    r_thr = delivered /. Time.to_sec makespan;
    r_p50 = s.Bp_util.Stats.p50;
    r_p99 = s.Bp_util.Stats.p99;
    r_wan_msgs = wan_msgs;
    r_wan_kb = wan_kb;
    r_verifies = verifies;
  }

let row r =
  [
    mode_name r.r_mode;
    string_of_int ((3 * r.r_fi) + 1);
    string_of_int r.r_fi;
    scenario_name r.r_scenario;
    Printf.sprintf "%.1f" r.r_thr;
    Report.ms r.r_p50;
    Report.ms r.r_p99;
    Printf.sprintf "%.1f" r.r_wan_msgs;
    Printf.sprintf "%.1f" r.r_wan_kb;
    Printf.sprintf "%.1f" r.r_verifies;
  ]

let find results mode fi scenario =
  List.find_opt
    (fun r ->
      (match (r.r_mode, mode) with
      | Bundle, Bundle | Cluster, Cluster -> true
      | Bundle, Cluster | Cluster, Bundle -> false)
      && r.r_fi = fi
      &&
      match (r.r_scenario, scenario) with
      | Clean, Clean | Loss, Loss | Byz, Byz -> true
      | _, _ -> false)
    results

let merge results =
  let metrics =
    List.concat_map
      (fun fi ->
        List.concat_map
          (fun sc ->
            match (find results Bundle fi sc, find results Cluster fi sc) with
            | Some b, Some c ->
                let tag =
                  Printf.sprintf "n%d_%s" ((3 * fi) + 1)
                    (match sc with
                    | Clean -> "clean"
                    | Loss -> "loss"
                    | Byz -> "byz")
                in
                [
                  (Printf.sprintf "%s_speedup" tag, c.r_thr /. b.r_thr);
                  (Printf.sprintf "%s_p99_ratio" tag, c.r_p99 /. b.r_p99);
                  ( Printf.sprintf "%s_wan_msgs_ratio" tag,
                    c.r_wan_msgs /. b.r_wan_msgs );
                  ( Printf.sprintf "%s_verify_ratio" tag,
                    c.r_verifies /. b.r_verifies );
                ]
            | _, _ -> [])
          [ Clean; Loss; Byz ])
      fis
  in
  [
    {
      Report.id = "ablation-clustersend";
      title =
        "Cluster-sending vs fi+1-signature bundles (WAN cost per delivered \
         record)";
      paper_ref =
        "extension: Hellings & Sadoghi, byzantine cluster-sending in expected \
         constant communication";
      header =
        [
          "mode";
          "n";
          "fi";
          "scenario";
          "rec/s";
          "p50 ms";
          "p99 ms";
          "WAN msg/rec";
          "WAN KB/rec";
          "verifies/rec";
        ];
      rows = List.map row results;
      metrics;
      notes =
        [
          "C->O closed loop (outstanding 8); delivery = source daemon's cumulative ack frontier";
          "byz withhold: fi comm-muted nodes per unit (top indices), primaries honest";
          "verifies/rec sums bundle checks and chain-head checks over both units' nodes";
          "expected shape: bundle verifies/rec grows ~n*(fi+1); cluster stays ~n + fi";
        ];
    };
  ]

let plan ~scale =
  Runner.Plan
    { tasks = List.mapi (fun i c -> task ~scale i c) combos; merge }

let run ?(scale = 1.0) () = Runner.run_plan (plan ~scale)
