(** Workload generators.

    {!Runner.sequential} drives closed-loop (one-at-a-time) workloads —
    what the paper's latency experiments use. This module adds an
    open-loop generator: arrivals follow a Poisson process at a fixed
    offered rate, regardless of completions, which is what exposes
    queueing behaviour and the saturation knee of group commit. *)

type result = {
  latencies : Bp_util.Stats.t;  (** per-request completion latency, ms *)
  makespan_ms : float;  (** first arrival to last completion *)
  achieved_per_sec : float;  (** completions / makespan *)
}

val open_loop :
  Bp_sim.Engine.t ->
  rng:Bp_util.Rng.t ->
  rate_per_sec:float ->
  count:int ->
  submit:(int -> on_done:(unit -> unit) -> unit) ->
  result
(** Schedule [count] arrivals with exponential inter-arrival times at the
    given rate; [submit i ~on_done] fires each request and must call
    [on_done] at completion. Drives the engine until all requests
    complete (fails after a long virtual-time guard).

    Arrivals are streamed: each arrival event schedules its successor
    (drawing the next gap from [rng]) before submitting, so the event
    heap holds at most one pending arrival regardless of [count] — the
    same O(1)-per-process discipline as {!Loadgen}, and the same gap
    sequence (hence byte-identical results) as the former eager
    pre-scheduling loop for equal seeds. *)
