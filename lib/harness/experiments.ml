type t = {
  id : string;
  title : string;
  plan : scale:float -> Runner.plan;
}

let all =
  [
    {
      id = "table1";
      title = "RTT matrix between the four datacenters (simulator input)";
      plan = (fun ~scale:_ -> Exp_comm.table1_plan ());
    };
    {
      id = "fig4";
      title = "Local commitment latency/throughput vs batch size";
      plan = (fun ~scale -> Exp_local.fig4_plan ~scale);
    };
    {
      id = "table2";
      title = "Local commitment vs number of nodes";
      plan = (fun ~scale -> Exp_local.table2_plan ~scale);
    };
    {
      id = "fig5";
      title = "Geo-correlated fault tolerance latency";
      plan = (fun ~scale -> Exp_geo.fig5_plan ~scale);
    };
    {
      id = "fig6";
      title = "Communication latency between participants";
      plan = (fun ~scale -> Exp_comm.fig6_plan ~scale);
    };
    {
      id = "fig7";
      title = "Byzantized paxos vs baselines";
      plan = (fun ~scale -> Exp_consensus.fig7_plan ~scale);
    };
    {
      id = "fig8";
      title = "Reacting to failures";
      plan = (fun ~scale -> Exp_geo.fig8_plan ~scale);
    };
    (* Ablations beyond the paper's figures. *)
    {
      id = "ablation-reads";
      title = "Read strategies (SVI-A) latency";
      plan = (fun ~scale -> Exp_ablation.reads_plan ~scale);
    };
    {
      id = "ablation-batch";
      title = "Group commit (SVI-C) on/off";
      plan = (fun ~scale -> Exp_ablation.batching_plan ~scale);
    };
    {
      id = "ablation-sig";
      title = "HMAC vs hash-based signatures";
      plan = (fun ~scale -> Exp_ablation.signatures_plan ~scale);
    };
    {
      id = "ablation-loss";
      title = "Commit latency under packet loss";
      plan = (fun ~scale -> Exp_ablation.loss_plan ~scale);
    };
    {
      id = "ablation-load";
      title = "Offered load vs latency (open loop)";
      plan = (fun ~scale -> Exp_ablation.load_plan ~scale);
    };
    {
      id = "ablation-saturation";
      title = "Saturation sweep: open-loop rate x pipeline depth";
      plan = (fun ~scale -> Exp_saturation.plan ~scale);
    };
    {
      id = "ablation-pipeline";
      title = "Consensus pipeline depth (windowed multi-slot PBFT)";
      plan = (fun ~scale -> Exp_local.pipeline_plan ~scale);
    };
    {
      id = "ablation-verify";
      title = "Verification parallelism vs pipeline depth";
      plan = (fun ~scale -> Exp_local.verify_plan ~scale);
    };
    {
      id = "ablation-shard";
      title = "Keyspace sharding: 1..16 units, cross-shard BFT commit";
      plan = (fun ~scale -> Exp_shard.plan ~scale);
    };
    {
      id = "ablation-clustersend";
      title = "Cluster-sending vs fi+1-signature bundles";
      plan = (fun ~scale -> Exp_clustersend.plan ~scale);
    };
    {
      id = "locality";
      title = "Intra-DC vs wide-area traffic share (SIII-A)";
      plan = (fun ~scale -> Exp_locality.locality_plan ~scale);
    };
    {
      id = "costs";
      title = "Resource costs of byzantizing (SVI-D)";
      plan = (fun ~scale -> Exp_costs.costs_plan ~scale);
    };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let run ?pool e ~scale = Runner.run_plan ?pool (e.plan ~scale)

let run_all ?pool ?(scale = 1.0) () =
  List.concat_map (fun e -> run ?pool e ~scale) all
