(** The experiment registry: every table and figure of §VIII, by id.

    Each experiment is registered as a {!Runner.plan} factory — a sweep
    decomposed into independent single-simulation tasks — so a run can
    be executed sequentially or fanned out over a {!Bp_parallel.Pool}
    with bit-identical output. *)

type t = {
  id : string;
  title : string;
  plan : scale:float -> Runner.plan;
}

val all : t list
(** In paper order: table1, fig4, table2, fig5, fig6, fig7, fig8 — then
    the ablations (ablation-reads, -batch, -sig, -loss). *)

val find : string -> t option

val run : ?pool:Bp_parallel.Pool.t -> t -> scale:float -> Report.t list
(** Execute one experiment — on the pool's worker domains when [pool] is
    given, inline otherwise. Output is identical either way. *)

val run_all : ?pool:Bp_parallel.Pool.t -> ?scale:float -> unit -> Report.t list
