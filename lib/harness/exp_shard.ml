open Bp_sim
open Blockplane

(* Scale-out study: the keyspace partitioned across 1..16 independent
   Blockplane units at FIXED per-unit resources (every unit keeps its
   own 3fi+1 nodes, its own datacenter on the tiled Table I topology,
   and the d8mf16 batch-cut policy that won ablation-saturation), under
   open-loop load offered proportionally to the shard count. The 0%
   cross-shard series is the headline: units share nothing, so the
   aggregate knee should scale near-linearly. The 5%/20% series price
   the BFT two-phase commit (prepare/vote/decide each a committed record
   plus a WAN round), and the skewed series concentrates load zipf(0.99)
   on hot shards — the honest degradation cases. *)

let shard_counts = [ 1; 2; 4; 8; 16 ]

type series = { key : string; cross : float; skew : float }

let series_list =
  [
    { key = "x0"; cross = 0.0; skew = 0.0 };
    { key = "x5"; cross = 0.05; skew = 0.0 };
    { key = "x20"; cross = 0.20; skew = 0.0 };
    { key = "x5skew"; cross = 0.05; skew = 0.99 };
  ]

(* Offered rate per unit, just under the d8mf16 single-unit saturation
   knee (~162k/s in ablation-saturation): at 0% cross-shard every unit
   runs at its own knee, so the aggregate curve measures scale-out, not
   queueing collapse. *)
let per_unit_rate = 150_000.0

(* Each point offers its rate for a window of simulated time (the
   saturation sweep's discipline) — the count grows with the aggregate
   rate so every unit sees the same per-unit workload. *)
let window_ms = 8.0

let count_for ~scale nshards =
  Runner.scaled scale
    (Stdlib.max 400
       (int_of_float (per_unit_rate *. float_of_int nshards *. window_ms /. 1000.0)))

(* Range map with human-readable split points: shard i >= 1 owns keys
   from "s%02i"; Shard.key_for derives O(1) shard-targeted keys from the
   same splits, so the generator never rejection-samples. *)
let map_for nshards =
  Shard.make
    ~policy:
      (Shard.Range (Array.init (nshards - 1) (fun i -> Printf.sprintf "s%02d" (i + 1))))
    ~shards:nshards ()

(* Cross-shard transactions span two shards: the common case for a
   cross-partition write (move/transfer), and the cheapest point of the
   2PC price — wider transactions only add more of the same rounds. *)
let txn_keys = 2

let op_bytes = 1000

let op_payload ~client i =
  let stamp = Printf.sprintf "c%d;op%d;" client i in
  let b = Bytes.make op_bytes 'x' in
  Bytes.blit_string stamp 0 b 0 (Stdlib.min (String.length stamp) op_bytes);
  Bytes.unsafe_to_string b

let shard_task ~scale ~series ~nshards ~seed () =
  let map = map_for nshards in
  let world =
    Runner.fresh_world ~fi:1 ~seed ~n_participants:nshards ~shard_map:map
      ~max_in_flight:8 ~batch_min_fill:16 ~batch_hold:(Time.of_ms 0.25) ()
  in
  let engine = world.Runner.engine in
  let router = Deployment.shard_router world.Runner.dep in
  let count = count_for ~scale nshards in
  let gen =
    Loadgen.create
      ~rng:(Bp_util.Rng.split (Engine.rng engine))
      {
        Loadgen.process =
          Loadgen.Poisson { rate_per_sec = per_unit_rate *. float_of_int nshards };
        clients = 200_000;
        skew = !Runner.default_skew;
        count;
      }
  in
  let mix =
    Loadgen.mix
      ~rng:(Bp_util.Rng.split (Engine.rng engine))
      {
        Loadgen.shards = nshards;
        cross_fraction = series.cross;
        txn_keys;
        shard_skew = series.skew;
      }
  in
  let r =
    Loadgen.run engine ~gen ~submit:(fun i ~client ~on_done ->
        let targets = Loadgen.draw_targets mix in
        let ops =
          List.map
            (fun s -> (Shard.key_for map ~shard:s ~salt:i, op_payload ~client i))
            targets
        in
        (* An abort still completes the arrival — the downgrade is the
           deterministic no-op outcome, counted by the router's stats. *)
        Shard.submit router ~on_aborted:on_done ~on_done ops)
  in
  let staged_left =
    List.init nshards (fun p -> Api.xs_staged (Deployment.api world.Runner.dep p))
    |> List.fold_left ( + ) 0
  in
  (nshards, r, Shard.stats router, staged_left)

let shard_merge results =
  let nper = List.length shard_counts in
  let groups =
    List.mapi
      (fun si series ->
        let points = List.filteri (fun i _ -> i / nper = si) results in
        (series, points))
      series_list
  in
  let rows =
    List.concat_map
      (fun ((series : series), points) ->
        List.map
          (fun (nshards, r, (st : Shard.stats), _) ->
            let p pct = Bp_util.Stats.percentile r.Loadgen.latencies pct in
            [
              series.key;
              string_of_int nshards;
              Printf.sprintf "%.0f/s" (per_unit_rate *. float_of_int nshards);
              Printf.sprintf "%.0f/s" r.Loadgen.achieved_per_sec;
              Report.ms (p 50.0);
              Report.ms (p 99.0);
              string_of_int st.Shard.cross_shard;
              string_of_int st.Shard.aborted;
            ])
          points)
      groups
  in
  let achieved_at key n =
    List.concat_map
      (fun ((series : series), points) ->
        if String.equal series.key key then
          List.filter_map
            (fun (nshards, r, _, _) ->
              if nshards = n then Some r.Loadgen.achieved_per_sec else None)
            points
        else [])
      groups
  in
  let metrics =
    List.concat_map
      (fun ((series : series), points) ->
        List.concat_map
          (fun (nshards, r, (st : Shard.stats), staged_left) ->
            let m name = Printf.sprintf "%s_s%d_%s" series.key nshards name in
            [
              (m "achieved_rps", r.Loadgen.achieved_per_sec);
              (m "p99_ms", Bp_util.Stats.percentile r.Loadgen.latencies 99.0);
              (m "cross", float_of_int st.Shard.cross_shard);
              (m "aborted", float_of_int st.Shard.aborted);
              (m "timeouts", float_of_int st.Shard.timeouts);
              (m "staged_left", float_of_int staged_left);
            ])
          points)
      groups
    @
    match (achieved_at "x0" 1, achieved_at "x0" (List.fold_left Stdlib.max 1 shard_counts)) with
    | [ one ], [ top ] when one > 0.0 -> [ ("x0_scaleout", top /. one) ]
    | _ -> []
  in
  [
    {
      Report.id = "ablation-shard";
      title = "Keyspace sharding: 1..16 units, cross-shard BFT commit";
      paper_ref =
        "beyond the paper (ROADMAP: multi-unit sharding); per-unit config = \
         d8mf16 from ablation-saturation, topology = Table I tiled to one \
         DC per unit";
      header =
        [ "series"; "shards"; "offered"; "achieved"; "p50 ms"; "p99 ms"; "cross"; "abort" ];
      rows;
      metrics;
      notes =
        [
          Printf.sprintf
            "offered load = %.0f/s per unit (just under the d8mf16 knee); x0/x5/x20 = cross-shard fraction, x5skew adds zipf(0.99) shard popularity"
            per_unit_rate;
          "cross-shard txns span 2 shards; every 2PC step (prepare, vote, decide) is a committed record, votes/decides ride the communication path";
          "x0_scaleout = aggregate throughput at 16 units over the 1-unit point; single-core container: scale-out is in simulated time, wall-clock runs the units sequentially";
          "abort = timeout/NO-vote downgrades (deterministic no-ops); staged_left metrics must be 0 (every prepare decided)";
          "achieved = completions/makespan for the whole window INCLUDING the cross-shard drain tail (two WAN rounds, ~300 ms on tiled Table I), which is why any cross mix collapses it while p50 stays at the local-commit floor — steady-state single-shard capacity is the x0 row";
        ];
    };
  ]

let plan ~scale =
  let tasks =
    List.concat
      (List.mapi
         (fun si series ->
           List.mapi
             (fun ci nshards ->
               let seed = Int64.of_int (11_000 + (100 * si) + ci) in
               fun () -> shard_task ~scale ~series ~nshards ~seed ())
             shard_counts)
         series_list)
  in
  Runner.Plan { tasks; merge = shard_merge }

let shard ?(scale = 1.0) () = Runner.run_plan (plan ~scale)
