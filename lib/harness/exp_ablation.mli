(** Ablations beyond the paper's figures — each isolates one design
    choice that DESIGN.md calls out:

    - [reads]: the three read strategies of §VI-A (read-1, 2f+1 quorum,
      linearizable) — what each level of read safety costs.
    - [batching]: §VI-C group commit — throughput with and without
      request batching under concurrent load.
    - [signatures]: HMAC-registry vs real hash-based (Lamport/Merkle)
      signatures — the wire-size and CPU cost of full crypto fidelity.
    - [loss]: commit latency under increasing network loss — what the
      reliable-transport layer absorbs. *)

val reads : ?scale:float -> unit -> Report.t list
val batching : ?scale:float -> unit -> Report.t list
val signatures : ?scale:float -> unit -> Report.t list
val loss : ?scale:float -> unit -> Report.t list

val load : ?scale:float -> unit -> Report.t list
(** Open-loop offered load vs commit latency: the queueing/batching knee
    of group commit (§VI-C) under a Poisson arrival process. *)

(** Plan decompositions for the domain pool: [reads] is one task (its
    three strategies share a populated world); [batching] and
    [signatures] are one task per configuration; [loss] and [load] one
    task per rate. *)

val reads_plan : scale:float -> Runner.plan
val batching_plan : scale:float -> Runner.plan
val signatures_plan : scale:float -> Runner.plan
val loss_plan : scale:float -> Runner.plan
val load_plan : scale:float -> Runner.plan
