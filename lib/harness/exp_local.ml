open Bp_sim
open Blockplane

(* A deployment with one participant measures pure local commitment: no
   wide-area traffic is involved (§VIII-A runs in Virginia alone). *)
let local_world ~fi ~seed = Runner.fresh_world ~fi ~seed ~n_participants:1 ()

let commit_loop world ~size ~n ~warmup =
  let api = Deployment.api world.Runner.dep 0 in
  Runner.sequential world.Runner.engine ~n ~warmup ~run_one:(fun i ~on_done ->
      let started = Engine.now world.Runner.engine in
      Api.log_commit api (Runner.payload ~size i) ~on_done:(fun () ->
          on_done (Time.to_ms (Time.diff (Engine.now world.Runner.engine) started))))

(* size (KB), measured batches, paper latency (ms), paper throughput (MB/s).
   Paper numbers from the §VIII-A text; "-" where the figure is not read
   out numerically in the text. *)
let fig4_points =
  [
    (1, 100, "<1", "~1.4");
    (10, 100, "<1", "-");
    (100, 100, "~1.2", "83");
    (500, 50, "-", "-");
    (1000, 30, "4.5", "~215");
    (2000, 20, "8.2", "~240");
  ]

(* One task per batch size: each point gets its own world and seed. *)
let fig4_task ~scale (kb, batches, paper_lat, paper_thr) () =
  let world = local_world ~fi:1 ~seed:(Int64.of_int (1000 + kb)) in
  let n = Runner.scaled scale batches in
  let warmup = Stdlib.max 1 (n / 10) in
  let stats = commit_loop world ~size:(kb * 1000) ~n ~warmup in
  let mean_ms = Bp_util.Stats.mean stats in
  (* Group commit, one batch at a time: throughput = size/latency. *)
  let throughput_mbps = float_of_int kb /. 1000.0 /. (mean_ms /. 1000.0) in
  (kb, mean_ms, throughput_mbps, paper_lat, paper_thr)

let fig4_merge results =
  let lat_rows =
    List.map
      (fun (kb, mean_ms, _, paper_lat, _) ->
        [ Printf.sprintf "%d KB" kb; Report.ms mean_ms; paper_lat ])
      results
  in
  let thr_rows =
    List.map
      (fun (kb, _, thr, _, paper_thr) ->
        [ Printf.sprintf "%d KB" kb; Report.mbps thr; paper_thr ])
      results
  in
  [
    {
      Report.id = "fig4a";
      title = "Local commitment latency vs batch size";
      paper_ref = "Fig. 4(a), SVIII-A: Virginia, fi=1, 4 nodes";
      header = [ "batch size"; "latency ms (measured)"; "latency ms (paper)" ];
      rows = lat_rows;
      notes =
        [
          "expected shape: ~1 ms up to 100 KB, then growing with NIC serialization";
        ];
    };
    {
      Report.id = "fig4b";
      title = "Local commitment throughput vs batch size";
      paper_ref = "Fig. 4(b), SVIII-A";
      header = [ "batch size"; "MB/s (measured)"; "MB/s (paper)" ];
      rows = thr_rows;
      notes =
        [
          "expected shape: steep growth to 100 KB (~60x from 1 KB), +~160% to 1 MB, ~+10% to 2 MB";
        ];
    };
  ]

let fig4_plan ~scale =
  Runner.Plan
    { tasks = List.map (fun p -> fig4_task ~scale p) fig4_points; merge = fig4_merge }

let fig4 ?(scale = 1.0) () = Runner.run_plan (fig4_plan ~scale)

let table2_points =
  [ (1, "83", "1.2"); (2, "51", "1.9"); (3, "28", "3.5"); (4, "25", "4") ]

let table2_task ~scale (fi, paper_thr, paper_lat) () =
  let world = local_world ~fi ~seed:(Int64.of_int (2000 + fi)) in
  let n = Runner.scaled scale 50 in
  let warmup = Stdlib.max 1 (n / 10) in
  let stats = commit_loop world ~size:100_000 ~n ~warmup in
  let mean_ms = Bp_util.Stats.mean stats in
  let thr = 0.1 /. (mean_ms /. 1000.0) in
  [
    Printf.sprintf "%d (fi=%d)" ((3 * fi) + 1) fi;
    Report.mbps thr;
    paper_thr;
    Report.ms mean_ms;
    paper_lat;
  ]

let table2_merge rows =
  [
    {
      Report.id = "table2";
      title = "Local commitment vs unit size (batch 100 KB)";
      paper_ref = "Table II, SVIII-A";
      header =
        [ "nodes"; "MB/s (measured)"; "MB/s (paper)"; "ms (measured)"; "ms (paper)" ];
      rows;
      notes = [ "expected shape: throughput falls and latency rises with n" ];
    };
  ]

let table2_plan ~scale =
  Runner.Plan
    {
      tasks = List.map (fun p -> table2_task ~scale p) table2_points;
      merge = table2_merge;
    }

let table2 ?(scale = 1.0) () = Runner.run_plan (table2_plan ~scale)
