open Bp_sim
open Blockplane

(* A deployment with one participant measures pure local commitment: no
   wide-area traffic is involved (§VIII-A runs in Virginia alone). *)
let local_world ~fi ~seed = Runner.fresh_world ~fi ~seed ~n_participants:1 ()

let commit_loop world ~size ~n ~warmup =
  let api = Deployment.api world.Runner.dep 0 in
  Runner.sequential world.Runner.engine ~n ~warmup ~run_one:(fun i ~on_done ->
      let started = Engine.now world.Runner.engine in
      Api.log_commit api (Runner.payload ~size i) ~on_done:(fun () ->
          on_done (Time.to_ms (Time.diff (Engine.now world.Runner.engine) started))))

(* size (KB), measured batches, paper latency (ms), paper throughput (MB/s).
   Paper numbers from the §VIII-A text; "-" where the figure is not read
   out numerically in the text. *)
let fig4_points =
  [
    (1, 100, "<1", "~1.4");
    (10, 100, "<1", "-");
    (100, 100, "~1.2", "83");
    (500, 50, "-", "-");
    (1000, 30, "4.5", "~215");
    (2000, 20, "8.2", "~240");
  ]

(* Latency percentiles over every measured operation of an experiment,
   plus the units' mean pipeline occupancy — the bench JSON counters. *)
let op_metrics ~stats_list ~occupancies =
  let all = Bp_util.Stats.create () in
  List.iter
    (fun s -> Bp_util.Stats.add_list all (Array.to_list (Bp_util.Stats.samples s)))
    stats_list;
  let occ =
    match occupancies with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  [
    ("p50_ms", Bp_util.Stats.percentile all 50.0);
    ("p95_ms", Bp_util.Stats.percentile all 95.0);
    ("p99_ms", Bp_util.Stats.percentile all 99.0);
    ("pipeline_occupancy", occ);
  ]

(* One task per batch size: each point gets its own world and seed. *)
let fig4_task ~scale (kb, batches, paper_lat, paper_thr) () =
  let world = local_world ~fi:1 ~seed:(Int64.of_int (1000 + kb)) in
  let n = Runner.scaled scale batches in
  let warmup = Stdlib.max 1 (n / 10) in
  let stats = commit_loop world ~size:(kb * 1000) ~n ~warmup in
  let mean_ms = Bp_util.Stats.mean stats in
  let occ = Api.pipeline_occupancy (Deployment.api world.Runner.dep 0) in
  (* Group commit, one batch at a time: throughput = size/latency. *)
  let throughput_mbps = float_of_int kb /. 1000.0 /. (mean_ms /. 1000.0) in
  (kb, mean_ms, throughput_mbps, paper_lat, paper_thr, stats, occ)

let fig4_merge results =
  let lat_rows =
    List.map
      (fun (kb, mean_ms, _, paper_lat, _, _, _) ->
        [ Printf.sprintf "%d KB" kb; Report.ms mean_ms; paper_lat ])
      results
  in
  let thr_rows =
    List.map
      (fun (kb, _, thr, _, paper_thr, _, _) ->
        [ Printf.sprintf "%d KB" kb; Report.mbps thr; paper_thr ])
      results
  in
  let metrics =
    op_metrics
      ~stats_list:(List.map (fun (_, _, _, _, _, s, _) -> s) results)
      ~occupancies:(List.map (fun (_, _, _, _, _, _, o) -> o) results)
  in
  [
    {
      Report.id = "fig4a";
      title = "Local commitment latency vs batch size";
      paper_ref = "Fig. 4(a), SVIII-A: Virginia, fi=1, 4 nodes";
      header = [ "batch size"; "latency ms (measured)"; "latency ms (paper)" ];
      rows = lat_rows;
      metrics;
      notes =
        [
          "expected shape: ~1 ms up to 100 KB, then growing with NIC serialization";
        ];
    };
    {
      Report.id = "fig4b";
      title = "Local commitment throughput vs batch size";
      paper_ref = "Fig. 4(b), SVIII-A";
      header = [ "batch size"; "MB/s (measured)"; "MB/s (paper)" ];
      rows = thr_rows;
      metrics;
      notes =
        [
          "expected shape: steep growth to 100 KB (~60x from 1 KB), +~160% to 1 MB, ~+10% to 2 MB";
        ];
    };
  ]

let fig4_plan ~scale =
  Runner.Plan
    { tasks = List.map (fun p -> fig4_task ~scale p) fig4_points; merge = fig4_merge }

let fig4 ?(scale = 1.0) () = Runner.run_plan (fig4_plan ~scale)

let table2_points =
  [ (1, "83", "1.2"); (2, "51", "1.9"); (3, "28", "3.5"); (4, "25", "4") ]

let table2_task ~scale (fi, paper_thr, paper_lat) () =
  let world = local_world ~fi ~seed:(Int64.of_int (2000 + fi)) in
  let n = Runner.scaled scale 50 in
  let warmup = Stdlib.max 1 (n / 10) in
  let stats = commit_loop world ~size:100_000 ~n ~warmup in
  let mean_ms = Bp_util.Stats.mean stats in
  let occ = Api.pipeline_occupancy (Deployment.api world.Runner.dep 0) in
  let thr = 0.1 /. (mean_ms /. 1000.0) in
  ( [
      Printf.sprintf "%d (fi=%d)" ((3 * fi) + 1) fi;
      Report.mbps thr;
      paper_thr;
      Report.ms mean_ms;
      paper_lat;
    ],
    stats,
    occ )

let table2_merge results =
  let rows = List.map (fun (row, _, _) -> row) results in
  [
    {
      Report.id = "table2";
      title = "Local commitment vs unit size (batch 100 KB)";
      paper_ref = "Table II, SVIII-A";
      header =
        [ "nodes"; "MB/s (measured)"; "MB/s (paper)"; "ms (measured)"; "ms (paper)" ];
      rows;
      metrics =
        op_metrics
          ~stats_list:(List.map (fun (_, s, _) -> s) results)
          ~occupancies:(List.map (fun (_, _, o) -> o) results);
      notes = [ "expected shape: throughput falls and latency rises with n" ];
    };
  ]

let table2_plan ~scale =
  Runner.Plan
    {
      tasks = List.map (fun p -> table2_task ~scale p) table2_points;
      merge = table2_merge;
    }

let table2 ?(scale = 1.0) () = Runner.run_plan (table2_plan ~scale)

(* ---------- pipeline-depth ablation (beyond the paper) ---------- *)

let pipeline_depths = [ 1; 2; 4; 8 ]

(* Modeled per-signature verification cost for the pipeline/verify
   ablations (Config.verify_cost). The value matches the measured
   hash-based signature verify on real hardware (~0.4 ms — see the
   "lamport verify" micro row in the bench), so the ablations study the
   regime the paper's middleware actually sits in when it runs a real
   asymmetric scheme. The golden experiments keep the cost at zero:
   crypto is free in simulated time there, exactly the seed model. *)
let verify_model_cost = Time.of_ms 0.4

(* Fig4-style local commitment, but closed-loop with several requests
   outstanding and [batch_max = 1], so the consensus pipeline depth is
   the only concurrency lever: at depth 1 the primary is the seed's
   stop-and-wait one; deeper pipelines overlap the three-phase rounds of
   successive 100 KB batches. Depth 1 is the honesty baseline the
   speedups are quoted against. Verification pays the modeled cost
   above, divided across [--verify-jobs] simulated cores (default 1):
   pipelining can only hide verification latency to the extent the
   verify resource keeps up, which is precisely what the companion
   ablation-verify sweep quantifies. *)
let pipeline_task ~scale depth () =
  let world =
    Runner.fresh_world ~fi:1 ~seed:(Int64.of_int (7000 + depth))
      ~n_participants:1 ~batch_max:1 ~max_in_flight:depth
      ~verify_cost:verify_model_cost ()
  in
  let api = Deployment.api world.Runner.dep 0 in
  let size = 100_000 in
  let total = Runner.scaled scale 60 in
  let stats, makespan =
    Runner.closed_loop world.Runner.engine ~total ~outstanding:16
      ~run_one:(fun i ~on_done ->
        let started = Engine.now world.Runner.engine in
        Api.log_commit api (Runner.payload ~size i) ~on_done:(fun () ->
            on_done
              (Time.to_ms (Time.diff (Engine.now world.Runner.engine) started))))
  in
  let span_s = Time.to_sec makespan in
  let thr_mbps =
    float_of_int total *. float_of_int size /. 1e6 /. Stdlib.max 1e-9 span_s
  in
  (depth, thr_mbps, stats, Api.pipeline_occupancy api)

let pipeline_merge results =
  let base_thr =
    match results with (1, thr, _, _) :: _ -> thr | _ -> 0.0
  in
  let rows =
    List.map
      (fun (depth, thr, stats, occ) ->
        [
          string_of_int depth;
          Report.mbps thr;
          (if base_thr > 0.0 then Printf.sprintf "%.2fx" (thr /. base_thr)
           else "-");
          Report.ms (Bp_util.Stats.mean stats);
          Report.ms (Bp_util.Stats.percentile stats 95.0);
          Printf.sprintf "%.2f" occ;
        ])
      results
  in
  let metrics =
    List.concat_map
      (fun (depth, thr, stats, occ) ->
        let d name = Printf.sprintf "d%d_%s" depth name in
        [
          (d "throughput_mbps", thr);
          (d "speedup_vs_d1", if base_thr > 0.0 then thr /. base_thr else 0.0);
          (d "p50_ms", Bp_util.Stats.percentile stats 50.0);
          (d "p95_ms", Bp_util.Stats.percentile stats 95.0);
          (d "p99_ms", Bp_util.Stats.percentile stats 99.0);
          (d "pipeline_occupancy", occ);
        ])
      results
  in
  [
    {
      Report.id = "pipeline";
      title = "Consensus pipeline depth (windowed multi-slot PBFT)";
      paper_ref = "beyond the paper; cf. Fig. 4 setup (SVIII-A), 100 KB batches";
      header =
        [ "depth"; "MB/s"; "speedup"; "mean ms"; "p95 ms"; "occupancy" ];
      rows;
      metrics;
      notes =
        [
          "closed loop, 16 outstanding 100 KB commits, batch_max=1: depth is the only concurrency lever";
          "depth 1 = the stop-and-wait baseline; execution stays in order at any depth";
        ];
    };
  ]

let pipeline_plan ~scale =
  Runner.Plan
    {
      tasks = List.map (fun d -> pipeline_task ~scale d) pipeline_depths;
      merge = pipeline_merge;
    }

let pipeline ?(scale = 1.0) () = Runner.run_plan (pipeline_plan ~scale)

(* ---------- verify-jobs ablation (beyond the paper) ---------- *)

(* jobs x depth grid. Depth 1 rows are each jobs level's own baseline, so
   the speedup column isolates how much of the pipeline's promise the
   verify resource lets through at that parallelism. *)
let verify_points =
  List.concat_map
    (fun jobs -> List.map (fun depth -> (jobs, depth)) [ 1; 2; 8 ])
    [ 1; 2; 4 ]

(* Same closed-loop workload as the pipeline ablation, but the world pins
   its own verify_jobs instead of inheriting the --verify-jobs default:
   the sweep is the knob. *)
let verify_task ~scale (jobs, depth) () =
  let world =
    Runner.fresh_world ~fi:1
      ~seed:(Int64.of_int (8000 + (10 * jobs) + depth))
      ~n_participants:1 ~batch_max:1 ~max_in_flight:depth
      ~verify_cost:verify_model_cost ~verify_jobs:jobs ()
  in
  let api = Deployment.api world.Runner.dep 0 in
  let size = 100_000 in
  let total = Runner.scaled scale 60 in
  let stats, makespan =
    Runner.closed_loop world.Runner.engine ~total ~outstanding:16
      ~run_one:(fun i ~on_done ->
        let started = Engine.now world.Runner.engine in
        Api.log_commit api (Runner.payload ~size i) ~on_done:(fun () ->
            on_done
              (Time.to_ms (Time.diff (Engine.now world.Runner.engine) started))))
  in
  let span_s = Time.to_sec makespan in
  let thr_mbps =
    float_of_int total *. float_of_int size /. 1e6 /. Stdlib.max 1e-9 span_s
  in
  (jobs, depth, thr_mbps, stats, Api.pipeline_occupancy api)

let verify_merge results =
  let base_thr jobs =
    List.fold_left
      (fun acc (j, d, thr, _, _) -> if j = jobs && d = 1 then thr else acc)
      0.0 results
  in
  let rows =
    List.map
      (fun (jobs, depth, thr, stats, occ) ->
        let base = base_thr jobs in
        [
          string_of_int jobs;
          string_of_int depth;
          Report.mbps thr;
          (if base > 0.0 then Printf.sprintf "%.2fx" (thr /. base) else "-");
          Report.ms (Bp_util.Stats.mean stats);
          Printf.sprintf "%.2f" occ;
        ])
      results
  in
  let metrics =
    List.concat_map
      (fun (jobs, depth, thr, stats, occ) ->
        let base = base_thr jobs in
        let m name = Printf.sprintf "j%d_d%d_%s" jobs depth name in
        [
          (m "throughput_mbps", thr);
          (m "speedup_vs_d1", if base > 0.0 then thr /. base else 0.0);
          (m "p95_ms", Bp_util.Stats.percentile stats 95.0);
          (m "pipeline_occupancy", occ);
        ])
      results
  in
  [
    {
      Report.id = "verify";
      title = "Verification parallelism vs pipeline depth";
      paper_ref = "beyond the paper; modeled in-replica verify cost, cf. SVIII-A setup";
      header = [ "jobs"; "depth"; "MB/s"; "speedup"; "mean ms"; "occupancy" ];
      rows;
      metrics;
      notes =
        [
          Printf.sprintf
            "each slot charges (batch + 2f) x %.2f ms of verification, served by `jobs` simulated cores"
            (Time.to_ms verify_model_cost);
          "speedup is vs the same jobs level at depth 1: it shows how much pipeline overlap the verify resource admits";
        ];
    };
  ]

let verify_plan ~scale =
  Runner.Plan
    {
      tasks = List.map (fun p -> verify_task ~scale p) verify_points;
      merge = verify_merge;
    }

let verify_ablation ?(scale = 1.0) () = Runner.run_plan (verify_plan ~scale)
