open Bp_sim

type result = {
  latencies : Bp_util.Stats.t;
  makespan_ms : float;
  achieved_per_sec : float;
}

let open_loop engine ~rng ~rate_per_sec ~count ~submit =
  if rate_per_sec <= 0.0 || count <= 0 then invalid_arg "Workload.open_loop";
  let stats = Bp_util.Stats.create () in
  let mean_gap_ms = 1000.0 /. rate_per_sec in
  let completed = ref 0 in
  let first_arrival = ref None in
  let last_completion = ref Time.zero in
  let rec arrive i at =
    ignore
      (Engine.schedule_at engine at (fun () ->
           (* Streaming arrivals: the successor is drawn and scheduled
              from inside this event, before the request is submitted, so
              at most one arrival per process sits in the heap at a time —
              O(1) occupancy however large [count] — while the gap
              sequence is drawn in arrival order, exactly the draws the
              old pre-scheduling loop made from the same [rng]. *)
           if i + 1 < count then begin
             let gap = Time.of_ms (Bp_util.Rng.exponential rng ~mean:mean_gap_ms) in
             arrive (i + 1) (Time.add at gap)
           end;
           if !first_arrival = None then first_arrival := Some (Engine.now engine);
           let t0 = Engine.now engine in
           submit i ~on_done:(fun () ->
               incr completed;
               last_completion := Engine.now engine;
               Bp_util.Stats.add stats (Time.to_ms (Time.diff (Engine.now engine) t0)))))
  in
  arrive 0 (Time.add (Engine.now engine) (Time.of_ms mean_gap_ms));
  (* Drive until everything completes; periodic deployment timers never
     drain the queue on their own, so step with a completion check. *)
  let guard = ref 0 in
  while !completed < count && Engine.step engine do
    incr guard;
    if !guard > 100_000_000 then failwith "Workload.open_loop: runaway simulation"
  done;
  if !completed < count then failwith "Workload.open_loop: requests lost";
  let start = Option.value ~default:Time.zero !first_arrival in
  let makespan_ms = Time.to_ms (Time.diff !last_completion start) in
  {
    latencies = stats;
    makespan_ms;
    achieved_per_sec = float_of_int count /. (makespan_ms /. 1000.0);
  }
