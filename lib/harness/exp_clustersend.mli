(** ablation-clustersend: expected-constant byzantine cluster-sending
    ({!Blockplane.Cluster_send}) against the fi+1-signature-bundle
    baseline, swept over unit size n = 3fi+1 (4/7/10/13) under clean,
    lossy, and byzantine-withholding networks. Reports throughput,
    latency percentiles, WAN messages and kilobytes per delivered
    record, and signature verifications per delivered record; the merge
    adds cluster-vs-bundle ratio metrics per (n, scenario) cell. *)

val plan : scale:float -> Runner.plan
val run : ?scale:float -> unit -> Report.t list
