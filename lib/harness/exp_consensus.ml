open Bp_sim

let repetitions scale = Runner.scaled scale 10

(* Paper readings (SVIII-D text + Fig. 7): paxos = RTT to the closest
   majority; Blockplane-paxos within 0-33% above; PBFT 102-157 ms;
   Hierarchical PBFT between paxos and Blockplane-paxos. *)
let paper = function
  | 0 -> ("61", "~81", "102", "61-81") (* California *)
  | 1 -> ("79", "~87", "~110", "79-87") (* Oregon *)
  | 2 -> ("70", "~78", "~120", "70-78") (* Virginia *)
  | _ -> ("130", "~130", "157", "~130") (* Ireland *)

(* -------- plain paxos: one node per datacenter -------- *)

let measure_paxos ~leader ~reps ~seed =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper () in
  let addrs = Array.init 4 (fun p -> Addr.make ~dc:p ~idx:0) in
  let cfg = { Bp_paxos.Replica.nodes = addrs; election_timeout = Time.of_ms 400.0 } in
  let replicas =
    Array.init 4 (fun i ->
        Bp_paxos.Replica.create (Bp_net.Transport.create net addrs.(i)) cfg ~id:i
          ~on_learn:(fun _ _ -> ()))
  in
  let ready = ref false in
  Bp_paxos.Replica.try_lead replicas.(leader) ~on_elected:(fun () -> ready := true);
  Engine.run ~until:(Time.of_sec 2.0) engine;
  if not !ready then failwith "paxos election failed";
  Runner.sequential engine ~n:reps ~warmup:1 ~run_one:(fun i ~on_done ->
      let started = Engine.now engine in
      Bp_paxos.Replica.propose replicas.(leader)
        (Printf.sprintf "v%d" i)
        ~on_commit:(fun _ ->
          on_done (Time.to_ms (Time.diff (Engine.now engine) started))))

(* -------- Blockplane-paxos -------- *)

let measure_bp_paxos ~leader ~reps ~seed =
  let world =
    Runner.fresh_world ~seed
      ~app:(fun () -> Blockplane.App.make (module Bp_apps.Byz_paxos.Protocol))
      ()
  in
  let drivers =
    Array.init 4 (fun p ->
        Bp_apps.Byz_paxos.attach (Blockplane.Deployment.api world.Runner.dep p)
          ~n_participants:4)
  in
  let ready = ref false in
  Bp_apps.Byz_paxos.elect drivers.(leader) ~on_elected:(fun ok -> ready := ok);
  Engine.run ~until:(Time.of_sec 5.0) world.Runner.engine;
  if not !ready then failwith "blockplane-paxos election failed";
  Runner.sequential world.Runner.engine ~n:reps ~warmup:1 ~run_one:(fun i ~on_done ->
      let started = Engine.now world.Runner.engine in
      Bp_apps.Byz_paxos.replicate drivers.(leader)
        (Printf.sprintf "v%d" i)
        ~on_result:(fun ok ->
          if not ok then failwith "blockplane-paxos lost leadership mid-benchmark";
          on_done (Time.to_ms (Time.diff (Engine.now world.Runner.engine) started))))

(* -------- flat geo-PBFT: one replica per datacenter -------- *)

let measure_flat_pbft ~leader ~reps ~seed =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  (* Rotate the node order so the view-0 primary sits at [leader]. *)
  let addrs = Array.init 4 (fun i -> Addr.make ~dc:((leader + i) mod 4) ~idx:0) in
  let cfg =
    Bp_pbft.Config.make ~nodes:addrs ~keystore
      ~request_timeout:(Time.of_sec 5.0) ()
  in
  Array.iteri
    (fun i addr ->
      ignore
        (Bp_pbft.Replica.create (Bp_net.Transport.create net addr) cfg ~id:i
           ~execute:(fun ~seq:_ _ -> "ok")
           ()))
    addrs;
  let client_transport = Bp_net.Transport.create net (Addr.make ~dc:leader ~idx:100) in
  let client = Bp_pbft.Client.create client_transport cfg in
  Runner.sequential engine ~n:reps ~warmup:1 ~run_one:(fun i ~on_done ->
      let started = Engine.now engine in
      Bp_pbft.Client.submit client (Printf.sprintf "v%d" i) ~on_result:(fun _ ->
          on_done (Time.to_ms (Time.diff (Engine.now engine) started))))

(* -------- hierarchical PBFT -------- *)

let measure_hier ~leader ~reps ~seed =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper () in
  let h = Bp_apps.Hier_pbft.create ~network:net ~n_participants:4 () in
  Runner.sequential engine ~n:reps ~warmup:1 ~run_one:(fun i ~on_done ->
      let started = Engine.now engine in
      Bp_apps.Hier_pbft.replicate h ~leader
        (Printf.sprintf "v%d" i)
        ~on_committed:(fun () ->
          on_done (Time.to_ms (Time.diff (Engine.now engine) started))))

(* One task per (leader, system) cell — 16 independent simulations. The
   seed formula matches the old nested loop, so results are unchanged. *)
let fig7_task ~reps ~leader k () =
  let seed = Int64.of_int (((5000 + leader) * 10) + k) in
  Bp_util.Stats.mean
    (match k with
    | 1 -> measure_paxos ~leader ~reps ~seed
    | 2 -> measure_bp_paxos ~leader ~reps ~seed
    | 3 -> measure_flat_pbft ~leader ~reps ~seed
    | _ -> measure_hier ~leader ~reps ~seed)

(* Leader-major task order; the merge folds each leader's four cells
   back into one row. *)
let fig7_merge means =
  let topo = Topology.aws_paper in
  let arr = Array.of_list means in
  let rows =
    List.init 4 (fun leader ->
        let p_paxos, p_bp, p_pbft, p_hier = paper leader in
        let m k = arr.((leader * 4) + k) in
        [
          Topology.name topo leader;
          Printf.sprintf "%s (%s)" (Report.ms (m 0)) p_paxos;
          Printf.sprintf "%s (%s)" (Report.ms (m 1)) p_bp;
          Printf.sprintf "%s (%s)" (Report.ms (m 2)) p_pbft;
          Printf.sprintf "%s (%s)" (Report.ms (m 3)) p_hier;
        ])
  in
  [
    {
      Report.id = "fig7";
      title =
        "Replication latency of Blockplane-paxos vs paxos, PBFT, Hierarchical PBFT";
      paper_ref = "Fig. 7, SVIII-D: leader at each datacenter; measured (paper) in ms";
      header = [ "leader"; "paxos"; "blockplane-paxos"; "PBFT"; "hier. PBFT" ];
      rows;
      metrics = [];
      notes =
        [
          "expected order: paxos <= hier. PBFT <= blockplane-paxos << flat PBFT";
          "blockplane-paxos pays only local-commit overhead on top of paxos (one wide-area round)";
        ];
    };
  ]

let fig7_plan ~scale =
  let reps = repetitions scale in
  let tasks =
    List.concat_map
      (fun leader -> List.map (fun k -> fig7_task ~reps ~leader k) [ 1; 2; 3; 4 ])
      [ 0; 1; 2; 3 ]
  in
  Runner.Plan { tasks; merge = fig7_merge }

let fig7 ?(scale = 1.0) () = Runner.run_plan (fig7_plan ~scale)
