open Bp_sim

type world = {
  engine : Engine.t;
  net : Network.t;
  dep : Blockplane.Deployment.t;
}

(* Harness worlds default to depth 1 — the seed's stop-and-wait primary —
   so every experiment table stays byte-identical to the pre-pipeline
   baseline unless a depth is requested explicitly (--pipeline N, or the
   pipeline ablation's own sweep). Written once by the executables before
   any plan runs, then only read, including from pool domains. *)
let default_pipeline = ref 1

let set_default_pipeline depth =
  if depth <= 0 then invalid_arg "Runner.set_default_pipeline: depth must be positive";
  default_pipeline := depth

(* The --verify-jobs knob, same write-once discipline as the pipeline
   depth. It feeds two distinct mechanisms: the real wall-clock fan-out
   (Bp_crypto.Verify_batch, resized by the executables) and the modeled
   in-replica verification parallelism here — worlds that enable
   Config.verify_cost divide each slot's charge by this many simulated
   cores unless they pick a value explicitly. *)
let default_verify_jobs = ref 1

let set_default_verify_jobs jobs =
  if jobs <= 0 then
    invalid_arg "Runner.set_default_verify_jobs: jobs must be positive";
  default_verify_jobs := jobs

(* The --cluster-send knob, same write-once discipline. Off by default:
   experiment tables stay byte-identical to the fi+1-bundle seed unless
   cluster-sending is requested (--cluster-send on, or the clustersend
   ablation's own sweep). *)
let default_cluster_send = ref false
let set_default_cluster_send b = default_cluster_send := b

(* The open-loop load knobs (--load-rate / --load-trace / --skew), same
   write-once discipline. They parameterize experiments that drive
   Loadgen (the saturation sweep): the arrival-process shape, an
   optional single offered rate replacing the sweep's own rate list,
   and the zipf exponent over the modeled client population. Defaults
   reproduce the stock sweep. *)
type load_shape = [ `Poisson | `Bursty | `Diurnal ]

let default_load_shape : load_shape ref = ref `Poisson
let set_default_load_shape s = default_load_shape := s

let default_load_rate : float option ref = ref None

let set_default_load_rate r =
  (match r with
  | Some r when r <= 0.0 || not (Float.is_finite r) ->
      invalid_arg "Runner.set_default_load_rate: rate must be positive"
  | _ -> ());
  default_load_rate := r

let default_skew = ref 0.99

let set_default_skew s =
  if s < 0.0 || not (Float.is_finite s) then
    invalid_arg "Runner.set_default_skew: skew must be >= 0 and finite";
  default_skew := s

let fresh_world ?(fi = 1) ?(fg = 0) ?(seed = 4242L) ?(n_participants = 4)
    ?batch_max ?batch_min_fill ?batch_hold ?max_in_flight ?verify_cost
    ?verify_jobs ?cluster_send
    ?(app = fun () -> Blockplane.App.make (module Blockplane.App.Null)) () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper () in
  let max_in_flight =
    match max_in_flight with Some d -> d | None -> !default_pipeline
  in
  let verify_jobs =
    match verify_jobs with Some j -> j | None -> !default_verify_jobs
  in
  let cluster_send =
    match cluster_send with Some b -> b | None -> !default_cluster_send
  in
  let dep =
    Blockplane.Deployment.create ~network:net ~n_participants ~fi ~fg ?batch_max
      ?batch_min_fill ?batch_hold ~max_in_flight ?verify_cost ~verify_jobs
      ~cluster_send ~app ()
  in
  { engine; net; dep }

let payload ~size i =
  if size <= 0 then ""
  else begin
    let stamp = Printf.sprintf "batch-%d;" i in
    let b = Bytes.make size 'x' in
    Bytes.blit_string stamp 0 b 0 (Stdlib.min (String.length stamp) size);
    Bytes.unsafe_to_string b
  end

let sequential engine ~n ~warmup ~run_one =
  let stats = Bp_util.Stats.create () in
  let total = warmup + n in
  let finished = ref false in
  let rec go i =
    if i >= total then finished := true
    else
      run_one i ~on_done:(fun latency_ms ->
          if i >= warmup then Bp_util.Stats.add stats latency_ms;
          go (i + 1))
  in
  go 0;
  (* Step until the workload completes — the deployment's periodic timers
     (reserve probes, daemon retries) never drain the queue on their own. *)
  let guard = ref 0 in
  while (not !finished) && Engine.step engine do
    incr guard;
    if !guard > 200_000_000 then
      failwith "Runner.sequential: runaway simulation"
  done;
  if not !finished then
    failwith "Runner.sequential: workload did not finish (deadlock in protocol?)";
  stats

let closed_loop engine ~total ~outstanding ~run_one =
  let stats = Bp_util.Stats.create () in
  let next = ref 0 in
  let completed = ref 0 in
  let finished = ref false in
  let t0 = Engine.now engine in
  let rec launch () =
    if !next < total then begin
      let i = !next in
      incr next;
      run_one i ~on_done:(fun latency_ms ->
          Bp_util.Stats.add stats latency_ms;
          incr completed;
          if !completed >= total then finished := true else launch ())
    end
  in
  (* Prime the window; each completion immediately launches a successor,
     keeping [outstanding] operations in flight until the tail. *)
  for _ = 1 to Stdlib.min outstanding total do
    launch ()
  done;
  let guard = ref 0 in
  while (not !finished) && Engine.step engine do
    incr guard;
    if !guard > 200_000_000 then failwith "Runner.closed_loop: runaway simulation"
  done;
  if not !finished then
    failwith "Runner.closed_loop: workload did not finish (deadlock in protocol?)";
  (stats, Time.diff (Engine.now engine) t0)

let scaled s n = Stdlib.max 1 (int_of_float (Float.round (s *. float_of_int n)))

(* An experiment decomposed for the domain pool: independent closed
   tasks (each builds its own engine/network/deployment from its own
   seed — nothing is shared) plus a merge over the results in task-index
   order. The existential keeps per-experiment result types out of the
   registry. *)
type plan =
  | Plan : {
      tasks : (unit -> 'a) list;
      merge : 'a list -> Report.t list;
    }
      -> plan

let run_plan ?pool (Plan { tasks; merge }) =
  let results =
    match pool with
    | None -> List.map (fun task -> task ()) tasks
    | Some pool -> Bp_parallel.Pool.run pool tasks
  in
  merge results
