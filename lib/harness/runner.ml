open Bp_sim

type world = {
  engine : Engine.t;
  net : Network.t;
  dep : Blockplane.Deployment.t;
}

(* Harness worlds default to depth 1 — the seed's stop-and-wait primary —
   so every experiment table stays byte-identical to the pre-pipeline
   baseline unless a depth is requested explicitly (--pipeline N, or the
   pipeline ablation's own sweep). Written once by the executables before
   any plan runs, then only read, including from pool domains. *)
let default_pipeline = ref 1

let set_default_pipeline depth =
  if depth <= 0 then invalid_arg "Runner.set_default_pipeline: depth must be positive";
  default_pipeline := depth

(* The --verify-jobs knob, same write-once discipline as the pipeline
   depth. It feeds two distinct mechanisms: the real wall-clock fan-out
   (Bp_crypto.Verify_batch, resized by the executables) and the modeled
   in-replica verification parallelism here — worlds that enable
   Config.verify_cost divide each slot's charge by this many simulated
   cores unless they pick a value explicitly. *)
let default_verify_jobs = ref 1

let set_default_verify_jobs jobs =
  if jobs <= 0 then
    invalid_arg "Runner.set_default_verify_jobs: jobs must be positive";
  default_verify_jobs := jobs

(* The --cluster-send knob, same write-once discipline. Off by default:
   experiment tables stay byte-identical to the fi+1-bundle seed unless
   cluster-sending is requested (--cluster-send on, or the clustersend
   ablation's own sweep). *)
let default_cluster_send = ref false
let set_default_cluster_send b = default_cluster_send := b

(* The open-loop load knobs (--load-rate / --load-trace / --skew), same
   write-once discipline. They parameterize experiments that drive
   Loadgen (the saturation sweep): the arrival-process shape, an
   optional single offered rate replacing the sweep's own rate list,
   and the zipf exponent over the modeled client population. Defaults
   reproduce the stock sweep. *)
type load_shape = [ `Poisson | `Bursty | `Diurnal ]

let default_load_shape : load_shape ref = ref `Poisson
let set_default_load_shape s = default_load_shape := s

let default_load_rate : float option ref = ref None

let set_default_load_rate r =
  (match r with
  | Some r when r <= 0.0 || not (Float.is_finite r) ->
      invalid_arg "Runner.set_default_load_rate: rate must be positive"
  | _ -> ());
  default_load_rate := r

let default_skew = ref 0.99

let set_default_skew s =
  if s < 0.0 || not (Float.is_finite s) then
    invalid_arg "Runner.set_default_skew: skew must be >= 0 and finite";
  default_skew := s

(* The --batch-min-fill / --batch-hold knobs (PR 9's batch-cut policy),
   same write-once discipline. [None] keeps the seed's cut-on-any-signal
   behaviour. Kept as options — unlike the eager knobs above — so an
   experiment passing its own explicit policy and a world passing
   nothing compose instead of resetting each other: the per-world
   explicit value always wins, the CLI default fills only the gaps, and
   the pair rule (min-fill > 1 needs a hold window) is judged by
   [Bp_pbft.Config.make] on the COMPOSED values, not on whichever knob
   was set last. *)
let default_batch_min_fill : int option ref = ref None

let set_default_batch_min_fill v =
  (match v with
  | Some m when m < 1 ->
      invalid_arg "Runner.set_default_batch_min_fill: must be >= 1"
  | _ -> ());
  default_batch_min_fill := v

let default_batch_hold : Time.t option ref = ref None

let set_default_batch_hold v =
  (match v with
  | Some h when Time.compare h Time.zero < 0 ->
      invalid_arg "Runner.set_default_batch_hold: must be >= 0"
  | _ -> ());
  default_batch_hold := v

(* The --shards knob, same write-once discipline. Worlds that don't
   carry an explicit shard map get [min default n_participants] hash
   shards: the clamp keeps small fixed-size worlds (the fig4 unit pair,
   the two-participant comm studies) valid under a global --shards 16
   instead of failing Deployment's shards <= participants check. An
   EXPLICIT ?shards is never clamped — asking for more shards than
   participants is a configuration error and raises. Default 1 = the
   seed-identical unsharded path. *)
let default_shards = ref 1

let set_default_shards s =
  if s < 1 then invalid_arg "Runner.set_default_shards: shards must be >= 1";
  default_shards := s

let fresh_world ?(fi = 1) ?(fg = 0) ?(seed = 4242L) ?(n_participants = 4)
    ?topology ?batch_max ?batch_min_fill ?batch_hold ?max_in_flight
    ?verify_cost ?verify_jobs ?cluster_send ?shards ?shard_map
    ?prepare_timeout
    ?(app = fun () -> Blockplane.App.make (module Blockplane.App.Null)) () =
  let engine = Engine.create ~seed () in
  (* More participants than the paper's four regions: tile the Table I
     topology (metro twins per region) so every unit still gets its own
     datacenter. Deployments within the first four sites are unchanged. *)
  let topology =
    match topology with
    | Some topo -> topo
    | None ->
        if n_participants <= Topology.num_dcs Topology.aws_paper then
          Topology.aws_paper
        else Topology.tiled Topology.aws_paper ~sites:n_participants
  in
  let net = Network.create engine topology () in
  let max_in_flight =
    match max_in_flight with Some d -> d | None -> !default_pipeline
  in
  let verify_jobs =
    match verify_jobs with Some j -> j | None -> !default_verify_jobs
  in
  let cluster_send =
    match cluster_send with Some b -> b | None -> !default_cluster_send
  in
  let batch_min_fill =
    match batch_min_fill with Some _ as v -> v | None -> !default_batch_min_fill
  in
  let batch_hold =
    match batch_hold with Some _ as v -> v | None -> !default_batch_hold
  in
  let shard_map =
    match (shard_map, shards) with
    | Some m, _ -> m
    | None, Some s -> Blockplane.Shard.make ~shards:s ()
    | None, None ->
        Blockplane.Shard.make ~shards:(Stdlib.min !default_shards n_participants) ()
  in
  let dep =
    Blockplane.Deployment.create ~network:net ~n_participants ~fi ~fg ?batch_max
      ?batch_min_fill ?batch_hold ~max_in_flight ?verify_cost ~verify_jobs
      ~cluster_send ~shard_map ?prepare_timeout ~app ()
  in
  { engine; net; dep }

let payload ~size i =
  if size <= 0 then ""
  else begin
    let stamp = Printf.sprintf "batch-%d;" i in
    let b = Bytes.make size 'x' in
    Bytes.blit_string stamp 0 b 0 (Stdlib.min (String.length stamp) size);
    Bytes.unsafe_to_string b
  end

let sequential engine ~n ~warmup ~run_one =
  let stats = Bp_util.Stats.create () in
  let total = warmup + n in
  let finished = ref false in
  let rec go i =
    if i >= total then finished := true
    else
      run_one i ~on_done:(fun latency_ms ->
          if i >= warmup then Bp_util.Stats.add stats latency_ms;
          go (i + 1))
  in
  go 0;
  (* Step until the workload completes — the deployment's periodic timers
     (reserve probes, daemon retries) never drain the queue on their own. *)
  let guard = ref 0 in
  while (not !finished) && Engine.step engine do
    incr guard;
    if !guard > 200_000_000 then
      failwith "Runner.sequential: runaway simulation"
  done;
  if not !finished then
    failwith "Runner.sequential: workload did not finish (deadlock in protocol?)";
  stats

let closed_loop engine ~total ~outstanding ~run_one =
  let stats = Bp_util.Stats.create () in
  let next = ref 0 in
  let completed = ref 0 in
  let finished = ref false in
  let t0 = Engine.now engine in
  let rec launch () =
    if !next < total then begin
      let i = !next in
      incr next;
      run_one i ~on_done:(fun latency_ms ->
          Bp_util.Stats.add stats latency_ms;
          incr completed;
          if !completed >= total then finished := true else launch ())
    end
  in
  (* Prime the window; each completion immediately launches a successor,
     keeping [outstanding] operations in flight until the tail. *)
  for _ = 1 to Stdlib.min outstanding total do
    launch ()
  done;
  let guard = ref 0 in
  while (not !finished) && Engine.step engine do
    incr guard;
    if !guard > 200_000_000 then failwith "Runner.closed_loop: runaway simulation"
  done;
  if not !finished then
    failwith "Runner.closed_loop: workload did not finish (deadlock in protocol?)";
  (stats, Time.diff (Engine.now engine) t0)

let scaled s n = Stdlib.max 1 (int_of_float (Float.round (s *. float_of_int n)))

(* An experiment decomposed for the domain pool: independent closed
   tasks (each builds its own engine/network/deployment from its own
   seed — nothing is shared) plus a merge over the results in task-index
   order. The existential keeps per-experiment result types out of the
   registry. *)
type plan =
  | Plan : {
      tasks : (unit -> 'a) list;
      merge : 'a list -> Report.t list;
    }
      -> plan

let run_plan ?pool (Plan { tasks; merge }) =
  let results =
    match pool with
    | None -> List.map (fun task -> task ()) tasks
    | Some pool -> Bp_parallel.Pool.run pool tasks
  in
  merge results
