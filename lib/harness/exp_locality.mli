(** The locality claim, quantified.

    The paper's central design argument (§III-A, §IX) is that Blockplane
    "performs as much computation as possible locally and only
    communicates across the wide-area link when necessary". This
    experiment runs the same consensus workload (one leader election plus
    replicated commands) under Blockplane-Paxos and under flat geo-PBFT,
    and reports where the bytes actually went: intra-datacenter vs
    wide-area, per system. *)

val locality_plan : scale:float -> Runner.plan
(** Two tasks: the Blockplane-Paxos and flat-PBFT runs. *)

val locality : ?scale:float -> unit -> Report.t list
