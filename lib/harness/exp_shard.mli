(** Keyspace-sharding scale-out study (beyond the paper; ROADMAP:
    multi-unit sharding): 1..16 independent Blockplane units at fixed
    per-unit resources — each unit keeps its own 3fi+1 nodes, its own
    datacenter ({!Bp_sim.Topology.tiled} over Table I) and the d8mf16
    batch-cut policy — under open-loop load offered proportionally to
    the shard count ({!Loadgen}, with its multi-key transaction mix
    targeting shards through {!Blockplane.Shard.key_for}).

    Series: 0% / 5% / 20% cross-shard transaction mix (uniform shard
    popularity) plus 5% with zipf(0.99) shard skew. The 0% series is the
    scale-out headline ([x0_scaleout] = aggregate throughput at 16 units
    over the 1-unit point); the others price the cross-shard BFT
    two-phase commit and hot-shard contention honestly, including abort
    downgrades. Per-point metrics land in the bench JSON as
    [<series>_s<shards>_{achieved_rps,p99_ms,cross,aborted,timeouts,
    staged_left}]. *)

val plan : scale:float -> Runner.plan
(** One task per (series, shard-count) point — 20 independent worlds. *)

val shard : ?scale:float -> unit -> Report.t list
