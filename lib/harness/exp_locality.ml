open Bp_sim

let split_traffic net =
  let m = Network.traffic_matrix net in
  let intra = ref 0 and wide = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j b -> if i = j then intra := !intra + b else wide := !wide + b) row)
    m;
  (!intra, !wide)

let run_bp_paxos ~reps ~seed =
  let world =
    Runner.fresh_world ~seed
      ~app:(fun () -> Blockplane.App.make (module Bp_apps.Byz_paxos.Protocol))
      ()
  in
  let drivers =
    Array.init 4 (fun p ->
        Bp_apps.Byz_paxos.attach (Blockplane.Deployment.api world.Runner.dep p)
          ~n_participants:4)
  in
  let ready = ref false in
  Bp_apps.Byz_paxos.elect drivers.(2) ~on_elected:(fun ok -> ready := ok);
  Engine.run ~until:(Time.of_sec 5.0) world.Runner.engine;
  if not !ready then failwith "locality: election failed";
  ignore
    (Runner.sequential world.Runner.engine ~n:reps ~warmup:0 ~run_one:(fun i ~on_done ->
         Bp_apps.Byz_paxos.replicate drivers.(2)
           (Printf.sprintf "v%d" i)
           ~on_result:(fun _ -> on_done 0.0)));
  split_traffic world.Runner.net

let run_flat_pbft ~reps ~seed =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Topology.aws_paper () in
  let keystore = Bp_crypto.Signer.create (Bp_util.Rng.split (Engine.rng engine)) in
  let addrs = Array.init 4 (fun p -> Addr.make ~dc:p ~idx:0) in
  let cfg =
    Bp_pbft.Config.make ~nodes:addrs ~keystore ~request_timeout:(Time.of_sec 5.0) ()
  in
  Array.iteri
    (fun i addr ->
      ignore
        (Bp_pbft.Replica.create (Bp_net.Transport.create net addr) cfg ~id:i
           ~execute:(fun ~seq:_ _ -> "ok")
           ()))
    addrs;
  let client =
    Bp_pbft.Client.create (Bp_net.Transport.create net (Addr.make ~dc:2 ~idx:100)) cfg
  in
  ignore
    (Runner.sequential engine ~n:reps ~warmup:0 ~run_one:(fun i ~on_done ->
         Bp_pbft.Client.submit client (Printf.sprintf "v%d" i) ~on_result:(fun _ ->
             on_done 0.0)));
  split_traffic net

let locality_merge ~reps results =
  let (bp_intra, bp_wide), (fp_intra, fp_wide) =
    match results with
    | [ a; b ] -> (a, b)
    | _ -> failwith "locality: expected two traffic splits"
  in
  let row name (intra, wide) =
    let total = intra + wide in
    [
      name;
      Printf.sprintf "%d" (intra / 1000);
      Printf.sprintf "%d" (wide / 1000);
      Printf.sprintf "%.0f%%" (100.0 *. float_of_int wide /. float_of_int total);
    ]
  in
  [
    {
      Report.id = "locality";
      title = "Where the bytes go: Blockplane-paxos vs flat PBFT";
      paper_ref =
        Printf.sprintf
          "SIII-A locality argument; %d replicated commands, leader at Virginia" reps;
      header = [ "system"; "intra-DC KB"; "wide-area KB"; "wide-area share" ];
      rows = [ row "blockplane-paxos" (bp_intra, bp_wide); row "flat PBFT" (fp_intra, fp_wide) ];
      metrics = [];
      notes =
        [
          "Blockplane masks byzantine failures inside datacenters, so its byzantine-protocol";
          "traffic is intra-DC and only the benign paxos pattern crosses the WAN;";
          "flat PBFT runs all three quadratic phases across the wide area";
        ];
    };
  ]

let locality_plan ~scale =
  let reps = Runner.scaled scale 10 in
  Runner.Plan
    {
      tasks =
        [
          (fun () -> run_bp_paxos ~reps ~seed:6700L);
          (fun () -> run_flat_pbft ~reps ~seed:6701L);
        ];
      merge = locality_merge ~reps;
    }

let locality ?(scale = 1.0) () = Runner.run_plan (locality_plan ~scale)
