open Bp_sim
open Blockplane

(* Saturation sweep: open-loop load from a zipf-skewed modeled client
   population (Loadgen) against the pipelined primary, rate x depth.
   Where the ablation-load experiment probes the group-commit knee of
   the stop-and-wait seed at a handful of rates, this one drives every
   pipeline depth past its knee and reports the throughput-vs-tail
   curve, the batch fill the adaptive cut policy achieves, and the
   saturation knee (highest offered rate whose p99 still meets the SLO).

   The open question this sweep answers (and the pipeline ablation
   cannot): at depth 8 the cut-on-any-signal policy degenerates under
   open-loop load into streams of tiny batches — a free slot plus any
   queued request cuts immediately — so the depth buys little. The
   min-fill/hold policy rows quantify the repair. *)

let stock_rates = [ 5_000.0; 20_000.0; 50_000.0; 100_000.0; 200_000.0 ]

(* --load-rate replaces the sweep with a single probed rate; read at
   plan-build time, before any task runs (write-once knob discipline). *)
let rates () =
  match !Runner.default_load_rate with Some r -> [ r ] | None -> stock_rates

let depths = [ 1; 2; 4; 8 ]

(* Modeled client population: large enough that per-client state would
   be untenable (the point of Loadgen's O(1) arrival processes), skewed
   like YCSB unless --skew overrides. *)
let clients = 200_000

(* --load-trace selects the arrival-process family; all three shapes
   offer the same long-run rate so the rate column keeps its meaning.
   Bursty: 2 ms on / 2 ms off phases at double intensity. Diurnal: a
   day-curve compressed to one 10 ms cycle, with a quiet quarter. *)
let process_for rate =
  match !Runner.default_load_shape with
  | `Poisson -> Loadgen.Poisson { rate_per_sec = rate }
  | `Bursty -> Loadgen.Bursty { rate_on = 2.0 *. rate; on_ms = 2.0; off_ms = 2.0 }
  | `Diurnal ->
      Loadgen.Diurnal
        {
          base_rate = rate;
          trace = [| (2.5, 0.5); (2.5, 1.5); (2.5, 2.0); (2.5, 0.0) |];
        }

(* Tail SLO defining the saturation knee. ~5x the unloaded local-commit
   p99 (~2 ms): past this, queueing delay owns the tail. *)
let slo_p99_ms = 10.0

(* Arrival window: each point offers its rate for a fixed stretch of
   simulated time rather than a fixed op count, so past-saturation
   points actually accumulate the backlog that blows the tail — with a
   fixed count, a 200k/s burst is over in a few ms and drains before
   p99 can feel it. *)
let window_ms = 10.0
let count_for ~scale rate =
  Runner.scaled scale
    (Stdlib.max 600 (int_of_float (rate *. window_ms /. 1000.0)))

type series = { key : string; depth : int; min_fill : int; hold_ms : float }

let series_list =
  List.map
    (fun d ->
      { key = Printf.sprintf "d%d" d; depth = d; min_fill = 1; hold_ms = 0.0 })
    depths
  (* The adaptive cut policy at full depth: hold a cut until 16 requests
     queue, bounded by a hold timer well under the commit latency. *)
  @ [ { key = "d8mf16"; depth = 8; min_fill = 16; hold_ms = 0.25 } ]

let payload ~client i =
  let stamp = Printf.sprintf "c%d;op%d;" client i in
  let b = Bytes.make 1000 'x' in
  Bytes.blit_string stamp 0 b 0 (Stdlib.min (String.length stamp) 1000);
  Bytes.unsafe_to_string b

let sat_task ~scale ~series ~rate ~seed () =
  let world =
    Runner.fresh_world ~fi:1 ~seed ~n_participants:1
      ~max_in_flight:series.depth ~batch_min_fill:series.min_fill
      ?batch_hold:
        (if series.hold_ms > 0.0 then Some (Time.of_ms series.hold_ms) else None)
      ()
  in
  let engine = world.Runner.engine in
  let api = Deployment.api world.Runner.dep 0 in
  let count = count_for ~scale rate in
  let gen =
    Loadgen.create
      ~rng:(Bp_util.Rng.split (Engine.rng engine))
      {
        Loadgen.process = process_for rate;
        clients;
        skew = !Runner.default_skew;
        count;
      }
  in
  let r =
    Loadgen.run engine ~gen ~submit:(fun i ~client ~on_done ->
        Api.log_commit api (payload ~client i) ~on_done)
  in
  (rate, r, Api.batch_stats api, Api.pipeline_occupancy api)

let mean_fill (bs : Bp_pbft.Replica.batch_stats) =
  if bs.Bp_pbft.Replica.batches_cut = 0 then 0.0
  else
    float_of_int bs.Bp_pbft.Replica.ops_proposed
    /. float_of_int bs.Bp_pbft.Replica.batches_cut

(* results arrive grouped by series, rates ascending within each. *)
let sat_merge ~nrates results =
  let groups =
    List.mapi
      (fun si series ->
        let points = List.filteri (fun i _ -> i / nrates = si) results in
        (series, points))
      series_list
  in
  let knee points =
    List.fold_left
      (fun acc (rate, r, _, _) ->
        if Bp_util.Stats.percentile r.Loadgen.latencies 99.0 <= slo_p99_ms then
          Stdlib.max acc rate
        else acc)
      0.0 points
  in
  let rows =
    List.concat_map
      (fun (series, points) ->
        List.map
          (fun (rate, r, bs, occ) ->
            let p pct = Bp_util.Stats.percentile r.Loadgen.latencies pct in
            [
              series.key;
              Printf.sprintf "%.0f/s" rate;
              Printf.sprintf "%.0f/s" r.Loadgen.achieved_per_sec;
              Report.ms (p 50.0);
              Report.ms (p 95.0);
              Report.ms (p 99.0);
              Printf.sprintf "%.1f" (mean_fill bs);
              Printf.sprintf "%.2f" occ;
            ])
          points)
      groups
  in
  let peak_arrivals =
    List.fold_left
      (fun acc (_, r, _, _) -> Stdlib.max acc r.Loadgen.peak_arrivals_pending)
      0 results
  in
  let metrics =
    List.concat_map
      (fun (series, points) ->
        let m name = Printf.sprintf "%s_%s" series.key name in
        let top =
          match List.rev points with
          | (_, r, bs, _) :: _ -> [
              (m "top_achieved_rps", r.Loadgen.achieved_per_sec);
              (m "top_mean_fill", mean_fill bs);
              ( m "top_window_stalls",
                float_of_int bs.Bp_pbft.Replica.window_stalls );
            ]
          | [] -> []
        in
        (m "saturation_knee_rps", knee points) :: top)
      groups
    @ [ ("peak_arrivals_pending", float_of_int peak_arrivals) ]
  in
  [
    {
      Report.id = "ablation-saturation";
      title = "Saturation sweep: open-loop rate x pipeline depth";
      paper_ref =
        Printf.sprintf
          "extension of SVI-C / SVIII-A: 1 KB ops, one unit, zipf(%g) over 200k modeled clients"
          !Runner.default_skew;
      header =
        [ "series"; "offered"; "achieved"; "p50 ms"; "p95 ms"; "p99 ms"; "fill"; "occ" ];
      rows;
      metrics;
      notes =
        [
          Printf.sprintf
            "saturation knee = highest offered rate with p99 <= %.0f ms; fill = mean requests per cut batch (max 64)"
            slo_p99_ms;
          "d8mf16 = depth 8 with batch_min_fill=16 / batch_hold=0.25ms instead of the seed's cut-on-any-signal policy";
          "arrivals stream through Loadgen: one pending arrival event per process at any instant, whatever the count";
        ];
    };
  ]

let plan ~scale =
  let rates = rates () in
  let tasks =
    List.concat
      (List.mapi
         (fun si series ->
           List.mapi
             (fun ri rate ->
               let seed = Int64.of_int (9000 + (100 * si) + ri) in
               fun () -> sat_task ~scale ~series ~rate ~seed ())
             rates)
         series_list)
  in
  Runner.Plan { tasks; merge = sat_merge ~nrates:(List.length rates) }

let saturation ?(scale = 1.0) () = Runner.run_plan (plan ~scale)
