(** §VIII-A — local commitment performance.

    Fig. 4(a)/(b): latency and throughput of [log-commit] while varying
    the batch size (single datacenter, fi = 1).
    Table II: the same at 100 KB while varying the unit size
    n ∈ {4, 7, 10, 13} (fi 1..4). *)

val fig4_plan : scale:float -> Runner.plan
(** One task per batch size. *)

val fig4 : ?scale:float -> unit -> Report.t list
(** Returns the fig4a (latency) and fig4b (throughput) reports. *)

val table2_plan : scale:float -> Runner.plan
(** One task per unit size (fi 1..4). *)

val table2 : ?scale:float -> unit -> Report.t list
