(** §VIII-A — local commitment performance.

    Fig. 4(a)/(b): latency and throughput of [log-commit] while varying
    the batch size (single datacenter, fi = 1).
    Table II: the same at 100 KB while varying the unit size
    n ∈ {4, 7, 10, 13} (fi 1..4). *)

val fig4_plan : scale:float -> Runner.plan
(** One task per batch size. *)

val fig4 : ?scale:float -> unit -> Report.t list
(** Returns the fig4a (latency) and fig4b (throughput) reports. *)

val table2_plan : scale:float -> Runner.plan
(** One task per unit size (fi 1..4). *)

val table2 : ?scale:float -> unit -> Report.t list

val pipeline_plan : scale:float -> Runner.plan
(** Pipeline-depth ablation (beyond the paper): closed-loop 100 KB
    commits with [batch_max = 1] at depths 1/2/4/8, one task per depth.
    Depth 1 reproduces the stop-and-wait baseline; the report's metrics
    carry per-depth throughput, speedup vs depth 1, p50/p95/p99 latency
    and mean pipeline occupancy. *)

val pipeline : ?scale:float -> unit -> Report.t list

val verify_plan : scale:float -> Runner.plan
(** Verification-parallelism ablation (beyond the paper): the pipeline
    workload swept over a (verify_jobs, depth) grid with the modeled
    per-signature verification cost enabled — one task per grid point,
    each pinning its own [verify_jobs]. The report's metrics carry
    [j<jobs>_d<depth>_throughput_mbps] and [..._speedup_vs_d1] (vs the
    same jobs level at depth 1). *)

val verify_ablation : ?scale:float -> unit -> Report.t list
