(** Shared experiment machinery: deterministic worlds over the paper's
    AWS topology and CPS-style measurement loops (the simulator is
    event-driven, so sequential workloads are chained through callbacks). *)

type world = {
  engine : Bp_sim.Engine.t;
  net : Bp_sim.Network.t;
  dep : Blockplane.Deployment.t;
}

val set_default_pipeline : int -> unit
(** Pipeline depth for worlds that don't pick one explicitly (the
    [--pipeline N] knob). Defaults to 1 — the stop-and-wait baseline —
    so experiment tables are byte-identical to the pre-pipeline seed
    unless a depth is requested. Call before any plan runs (it is read,
    never written, from worker domains).
    @raise Invalid_argument on a non-positive depth. *)

val set_default_verify_jobs : int -> unit
(** Modeled verification parallelism for worlds that don't pick one
    explicitly (the [--verify-jobs N] knob; the executables also resize
    the real [Bp_crypto.Verify_batch] fan-out to match). Only observable
    in worlds that enable [verify_cost] — with the model off (the
    default everywhere but the pipeline/verify ablations) simulated
    results are identical at any value. Defaults to 1.
    @raise Invalid_argument on a non-positive count. *)

val set_default_cluster_send : bool -> unit
(** Inter-participant path for worlds that don't pick one explicitly
    (the [--cluster-send on|off] knob): expected-constant cluster-sending
    when on, the fi+1-signature-bundle baseline when off. Defaults to
    off, so experiment tables are byte-identical to the bundle seed
    unless requested. Same write-once discipline as the other knobs. *)

type load_shape = [ `Poisson | `Bursty | `Diurnal ]
(** Arrival-process families the load knobs select between (see
    {!Loadgen.process} for their semantics). *)

val set_default_load_shape : load_shape -> unit
(** Arrival-process shape for Loadgen-driven experiments (the
    [--load-trace] knob). Defaults to [`Poisson] — the stock saturation
    sweep. Same write-once discipline as the other knobs. *)

val default_load_shape : load_shape ref

val set_default_load_rate : float option -> unit
(** When set (the [--load-rate] knob), Loadgen-driven experiments probe
    this single offered rate instead of their built-in rate sweep.
    [None] (the default) keeps the sweep.
    @raise Invalid_argument on a non-positive or non-finite rate. *)

val default_load_rate : float option ref

val set_default_skew : float -> unit
(** Zipf exponent over the modeled client population for Loadgen-driven
    experiments (the [--skew] knob). 0 = uniform; defaults to 0.99.
    @raise Invalid_argument on a negative or non-finite exponent. *)

val default_skew : float ref

val set_default_batch_min_fill : int option -> unit
(** Batch-cut minimum fill for worlds that don't pick one explicitly
    (the [--batch-min-fill] knob; see {!Bp_pbft.Config}). [None] (the
    default) keeps the seed's cut-on-any-signal policy. Composes with
    per-world explicit values instead of resetting them: the explicit
    value wins, and the min-fill/hold pair rule is validated by
    [Config.make] on the composed pair.
    @raise Invalid_argument on a fill below 1. *)

val default_batch_min_fill : int option ref

val set_default_batch_hold : Bp_sim.Time.t option -> unit
(** Batch-cut hold window for worlds that don't pick one explicitly (the
    [--batch-hold] knob, milliseconds on the command line). Same
    discipline as {!set_default_batch_min_fill}.
    @raise Invalid_argument on a negative hold. *)

val default_batch_hold : Bp_sim.Time.t option ref

val set_default_shards : int -> unit
(** Shard count for worlds that don't carry an explicit shard map (the
    [--shards N] knob). Defaults to 1 — the seed-identical unsharded
    path. Worlds clamp the DEFAULT to their participant count (a global
    [--shards 16] must not break a two-participant comm study); an
    explicit [?shards] to {!fresh_world} is never clamped and raises in
    [Deployment.create] if it exceeds the participants.
    @raise Invalid_argument on a count below 1. *)

val default_shards : int ref

val fresh_world :
  ?fi:int ->
  ?fg:int ->
  ?seed:int64 ->
  ?n_participants:int ->
  ?topology:Bp_sim.Topology.t ->
  ?batch_max:int ->
  ?batch_min_fill:int ->
  ?batch_hold:Bp_sim.Time.t ->
  ?max_in_flight:int ->
  ?verify_cost:Bp_sim.Time.t ->
  ?verify_jobs:int ->
  ?cluster_send:bool ->
  ?shards:int ->
  ?shard_map:Blockplane.Shard.map ->
  ?prepare_timeout:Bp_sim.Time.t ->
  ?app:(unit -> Blockplane.App.instance) ->
  unit ->
  world
(** A deterministic world: engine, network and deployment. [topology]
    defaults to the paper's Table I; when [n_participants] exceeds its
    four regions the default becomes {!Bp_sim.Topology.tiled} over it,
    so scale-out worlds get one datacenter per unit at fixed per-unit
    resources. [shards] / [shard_map] select the keyspace partition
    (explicit map wins; neither = the write-once [--shards] default,
    clamped to the participant count); [prepare_timeout] bounds the
    cross-shard vote wait (see {!Blockplane.Shard.router}). *)

val payload : size:int -> int -> string
(** Deterministic batch contents of the given byte size (the index makes
    successive batches distinct). *)

val sequential :
  Bp_sim.Engine.t ->
  n:int ->
  warmup:int ->
  run_one:(int -> on_done:(float -> unit) -> unit) ->
  Bp_util.Stats.t
(** Run [warmup + n] operations strictly one after another; [run_one i]
    must eventually call [on_done latency_ms]. Returns the statistics of
    the measured (post-warmup) operations. Drives the engine itself. *)

val closed_loop :
  Bp_sim.Engine.t ->
  total:int ->
  outstanding:int ->
  run_one:(int -> on_done:(float -> unit) -> unit) ->
  Bp_util.Stats.t * Bp_sim.Time.t
(** Run [total] operations keeping up to [outstanding] in flight at
    once (each completion launches the next). Returns the per-operation
    latency statistics and the makespan in simulated time — the basis
    for throughput under concurrency, where {!sequential} can only
    measure stop-and-wait latency. Drives the engine itself. *)

val scaled : float -> int -> int
(** [scaled s n] = max 1 (round (s * n)) — workload scaling. *)

type plan =
  | Plan : {
      tasks : (unit -> 'a) list;
      merge : 'a list -> Report.t list;
    }
      -> plan
(** An experiment as a list of independent closed tasks plus a merge of
    their results. Each task must be self-contained: it builds its own
    engine, network and deployment from its own fixed seed and shares no
    mutable state with any other task, so the tasks can run on worker
    domains in any order. [merge] always receives the results in
    task-index order — which is why parallel output is bit-identical to
    sequential. *)

val run_plan : ?pool:Bp_parallel.Pool.t -> plan -> Report.t list
(** Execute a plan's tasks — sequentially in task order when [pool] is
    absent, on the pool's worker domains otherwise — and merge the
    results. The two modes produce identical reports by construction. *)
