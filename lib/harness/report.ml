type t = {
  id : string;
  title : string;
  paper_ref : string;
  header : string list;
  rows : string list list;
  notes : string list;
  metrics : (string * float) list;
}

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  Buffer.add_string buf (Printf.sprintf "   (%s)\n" t.paper_ref);
  Buffer.add_string buf (Bp_util.Tablefmt.render ~header:t.header t.rows);
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "   note: %s\n" n)) t.notes;
  Buffer.contents buf

let ms v = Printf.sprintf "%.1f" v
let mbps v = Printf.sprintf "%.1f" v
