(** PBFT client: submits operations and waits for f+1 matching replies
    from distinct replicas (up to f replies might come from liars, so one
    of f+1 identical answers is honest — §II). Retransmits to all replicas
    on timeout, which is also what triggers view changes against a faulty
    primary. *)

type t

val create : ?cache:Bp_crypto.Verify_cache.t -> Bp_net.Transport.t -> Config.t -> t
(** Installs the reply handler (tag [cfg.tag ^ ".reply"]). One client per
    transport endpoint per cluster. [cache] memoizes signature verdicts;
    it never changes any produced byte or verdict. *)

val submit : t -> ?kind:int -> string -> on_result:(string -> unit) -> unit
(** Fire an operation ([kind] is the Blockplane record annotation,
    default 0). [on_result] fires exactly once, with the replicated
    result, once f+1 matching replies arrive. *)

val in_flight : t -> int
(** Requests not yet answered. *)
