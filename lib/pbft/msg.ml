open Bp_codec

type request = {
  client : Bp_sim.Addr.t;
  ts : int;
  kind : int;
  op : string;
  client_sig : string;
}

type prepared_proof = {
  pview : int;
  pseq : int;
  pdigest : string;
  pbatch : request list;
  prepare_sigs : (int * string) list;
}

type view_change = {
  new_view : int;
  stable_seq : int;
  stable_digest : string;
  prepared : prepared_proof list;
  vc_replica : int;
}

type body =
  | Request of request
  | Pre_prepare of { view : int; seq : int; digest : string; batch : request list }
  | Prepare of { view : int; seq : int; digest : string; replica : int }
  | Commit of { view : int; seq : int; digest : string; replica : int }
  | Reply of {
      view : int;
      ts : int;
      client : Bp_sim.Addr.t;
      replica : int;
      result : string;
    }
  | Checkpoint of { seq : int; state_digest : string; replica : int }
  | View_change of view_change
  | New_view of {
      view : int;
      view_change_envelopes : string list;
      batches : (int * string * request list) list;
      replica : int;
    }
  | Fetch of { from_seq : int; replica : int }
  | Fetch_reply of {
      batches : (int * string * request list) list;
      replica : int;
    }

(* ---------- encoding ---------- *)

let encode_addr e (a : Bp_sim.Addr.t) =
  Wire.varint e a.Bp_sim.Addr.dc;
  Wire.varint e a.Bp_sim.Addr.idx

let decode_addr d =
  let dc = Wire.read_varint d in
  let idx = Wire.read_varint d in
  Bp_sim.Addr.make ~dc ~idx

(* ---------- content-addressed signing payloads ----------

   With the global {!Bp_crypto.Verify_cache.enabled} flag on (the
   default), signatures over bulky messages cover a *content-addressed*
   payload: the structural encoding with every client operation replaced
   by its SHA-256 digest (and, for New_view, each carried view-change
   envelope replaced by its digest). This is PBFT's classic
   digest-amortization — the MAC/signature pass touches kilobytes instead
   of megabytes, while binding exactly the same semantic content, since
   SHA-256 pins the op bytes. The mode is keyed off the one global flag,
   never off whether a caller holds a cache, so every signer and verifier
   in a process agrees byte-for-byte on what was signed; a per-call
   [?cache] only memoizes the digests and verdicts.

   Domain separation: content-addressed body payloads start with byte
   0xCA and request payloads with 0xCB, neither of which is a valid body
   tag (0..9), so a signature over one payload shape can never be replayed
   as another. Small-bodied messages (Prepare, Commit, Reply, Checkpoint,
   Fetch) keep signing their exact encoding — there is nothing to
   amortize, and view-change proof checking can reconstruct their signed
   bytes without any op in hand. *)

let digest_op cache op =
  match cache with
  | Some c -> Bp_crypto.Verify_cache.digest c op
  | None -> Bp_crypto.Sha256.digest op

(* Digest amortization only pays for itself when the content it would
   digest is big enough that one SHA-256 pass (memoized per node)
   undercuts MAC-ing the raw bytes on every verification. Below the
   cutoff the CA transform is pure overhead — an extra encoding pass and
   an extra hash per message — which matters for latency experiments
   whose operations are a handful of bytes. The weight is a pure function
   of the message's content, so every signer and verifier derives the
   same mode for the same message; the cutoff never changes what travels
   on the wire, only which bytes the signature covers. *)
let ca_min_bytes = 256

let request_signing_payload ?cache ~client ~ts ~kind ~op () =
  if Bp_crypto.Verify_cache.enabled () && String.length op >= ca_min_bytes then
    Wire.encode (fun e ->
        Wire.u8 e 0xCB;
        encode_addr e client;
        Wire.varint e ts;
        Wire.u8 e kind;
        Wire.string e (digest_op cache op))
  else
    Wire.encode (fun e ->
        encode_addr e client;
        Wire.varint e ts;
        Wire.u8 e kind;
        Wire.string e op)

let encode_request e r =
  encode_addr e r.client;
  Wire.varint e r.ts;
  Wire.u8 e r.kind;
  Wire.string e r.op;
  Wire.string e r.client_sig

let decode_request d =
  let client = decode_addr d in
  let ts = Wire.read_varint d in
  let kind = Wire.read_u8 d in
  let op = Wire.read_string d in
  let client_sig = Wire.read_string d in
  { client; ts; kind; op; client_sig }

let encode_proof e p =
  Wire.varint e p.pview;
  Wire.varint e p.pseq;
  Wire.string e p.pdigest;
  Wire.list e (encode_request e) p.pbatch;
  Wire.list e
    (fun (i, s) ->
      Wire.varint e i;
      Wire.string e s)
    p.prepare_sigs

let decode_proof d =
  let pview = Wire.read_varint d in
  let pseq = Wire.read_varint d in
  let pdigest = Wire.read_string d in
  let pbatch = Wire.read_list d decode_request in
  let prepare_sigs =
    Wire.read_list d (fun d ->
        let i = Wire.read_varint d in
        let s = Wire.read_string d in
        (i, s))
  in
  { pview; pseq; pdigest; pbatch; prepare_sigs }

let encode_body_into e body =
  (match body with
      | Request r ->
          Wire.u8 e 0;
          encode_request e r
      | Pre_prepare { view; seq; digest; batch } ->
          Wire.u8 e 1;
          Wire.varint e view;
          Wire.varint e seq;
          Wire.string e digest;
          Wire.list e (encode_request e) batch
      | Prepare { view; seq; digest; replica } ->
          Wire.u8 e 2;
          Wire.varint e view;
          Wire.varint e seq;
          Wire.string e digest;
          Wire.varint e replica
      | Commit { view; seq; digest; replica } ->
          Wire.u8 e 3;
          Wire.varint e view;
          Wire.varint e seq;
          Wire.string e digest;
          Wire.varint e replica
      | Reply { view; ts; client; replica; result } ->
          Wire.u8 e 4;
          Wire.varint e view;
          Wire.varint e ts;
          encode_addr e client;
          Wire.varint e replica;
          Wire.string e result
      | Checkpoint { seq; state_digest; replica } ->
          Wire.u8 e 5;
          Wire.varint e seq;
          Wire.string e state_digest;
          Wire.varint e replica
      | View_change { new_view; stable_seq; stable_digest; prepared; vc_replica } ->
          Wire.u8 e 6;
          Wire.varint e new_view;
          Wire.varint e stable_seq;
          Wire.string e stable_digest;
          Wire.list e (encode_proof e) prepared;
          Wire.varint e vc_replica
      | New_view { view; view_change_envelopes; batches; replica } ->
          Wire.u8 e 7;
          Wire.varint e view;
          Wire.list e (Wire.string e) view_change_envelopes;
          Wire.list e
            (fun (seq, digest, batch) ->
              Wire.varint e seq;
              Wire.string e digest;
              Wire.list e (encode_request e) batch)
            batches;
          Wire.varint e replica
      | Fetch { from_seq; replica } ->
          Wire.u8 e 8;
          Wire.varint e from_seq;
          Wire.varint e replica
      | Fetch_reply { batches; replica } ->
          Wire.u8 e 9;
          Wire.list e
            (fun (seq, digest, batch) ->
              Wire.varint e seq;
              Wire.string e digest;
              Wire.list e (encode_request e) batch)
            batches;
          Wire.varint e replica)

let encode_body body = Wire.encode (fun e -> encode_body_into e body)

let decode_body s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 -> Request (decode_request d)
      | 1 ->
          let view = Wire.read_varint d in
          let seq = Wire.read_varint d in
          let digest = Wire.read_string d in
          let batch = Wire.read_list d decode_request in
          Pre_prepare { view; seq; digest; batch }
      | 2 ->
          let view = Wire.read_varint d in
          let seq = Wire.read_varint d in
          let digest = Wire.read_string d in
          let replica = Wire.read_varint d in
          Prepare { view; seq; digest; replica }
      | 3 ->
          let view = Wire.read_varint d in
          let seq = Wire.read_varint d in
          let digest = Wire.read_string d in
          let replica = Wire.read_varint d in
          Commit { view; seq; digest; replica }
      | 4 ->
          let view = Wire.read_varint d in
          let ts = Wire.read_varint d in
          let client = decode_addr d in
          let replica = Wire.read_varint d in
          let result = Wire.read_string d in
          Reply { view; ts; client; replica; result }
      | 5 ->
          let seq = Wire.read_varint d in
          let state_digest = Wire.read_string d in
          let replica = Wire.read_varint d in
          Checkpoint { seq; state_digest; replica }
      | 6 ->
          let new_view = Wire.read_varint d in
          let stable_seq = Wire.read_varint d in
          let stable_digest = Wire.read_string d in
          let prepared = Wire.read_list d decode_proof in
          let replica = Wire.read_varint d in
          View_change { new_view; stable_seq; stable_digest; prepared; vc_replica = replica }
      | 7 ->
          let view = Wire.read_varint d in
          let view_change_envelopes = Wire.read_list d Wire.read_string in
          let batches =
            Wire.read_list d (fun d ->
                let seq = Wire.read_varint d in
                let digest = Wire.read_string d in
                let batch = Wire.read_list d decode_request in
                (seq, digest, batch))
          in
          let replica = Wire.read_varint d in
          New_view { view; view_change_envelopes; batches; replica }
      | 8 ->
          let from_seq = Wire.read_varint d in
          let replica = Wire.read_varint d in
          Fetch { from_seq; replica }
      | 9 ->
          let batches =
            Wire.read_list d (fun d ->
                let seq = Wire.read_varint d in
                let digest = Wire.read_string d in
                let batch = Wire.read_list d decode_request in
                (seq, digest, batch))
          in
          let replica = Wire.read_varint d in
          Fetch_reply { batches; replica }
      | n -> raise (Wire.Malformed (Printf.sprintf "pbft msg tag %d" n)))

(* ---------- signatures ---------- *)

(* Content-addressed image of a request / proof / body: ops (and carried
   envelopes) replaced by their digests. Only the bulky constructors are
   transformed; the small ones sign their exact encoding. *)

let ca_request cache r = { r with op = digest_op cache r.op }

let ca_proof cache p = { p with pbatch = List.map (ca_request cache) p.pbatch }

let ca_batches cache batches =
  List.map
    (fun (seq, digest, batch) -> (seq, digest, List.map (ca_request cache) batch))
    batches

let ca_body cache = function
  | Request r -> Request (ca_request cache r)
  | Pre_prepare { view; seq; digest; batch } ->
      Pre_prepare { view; seq; digest; batch = List.map (ca_request cache) batch }
  | View_change { new_view; stable_seq; stable_digest; prepared; vc_replica } ->
      View_change
        {
          new_view;
          stable_seq;
          stable_digest;
          prepared = List.map (ca_proof cache) prepared;
          vc_replica;
        }
  | New_view { view; view_change_envelopes; batches; replica } ->
      New_view
        {
          view;
          view_change_envelopes = List.map (digest_op cache) view_change_envelopes;
          batches = ca_batches cache batches;
          replica;
        }
  | Fetch_reply { batches; replica } ->
      Fetch_reply { batches = ca_batches cache batches; replica }
  | (Prepare _ | Commit _ | Reply _ | Checkpoint _ | Fetch _) as small -> small

(* Bulk weight of a body: the bytes the CA transform would digest away.
   Bodies at or above {!ca_min_bytes} sign the content-addressed payload;
   lighter ones sign their exact encoding, exactly as in [--no-cache]
   mode. *)
let batch_weight batch =
  List.fold_left (fun acc r -> acc + String.length r.op) 0 batch

let batches_weight batches =
  List.fold_left (fun acc (_, _, batch) -> acc + batch_weight batch) 0 batches

let bulk_weight = function
  | Request r -> String.length r.op
  | Pre_prepare { batch; _ } -> batch_weight batch
  | View_change { prepared; _ } ->
      List.fold_left (fun acc p -> acc + batch_weight p.pbatch) 0 prepared
  | New_view { view_change_envelopes; batches; _ } ->
      List.fold_left
        (fun acc env -> acc + String.length env)
        (batches_weight batches) view_change_envelopes
  | Fetch_reply { batches; _ } -> batches_weight batches
  | Prepare _ | Commit _ | Reply _ | Checkpoint _ | Fetch _ -> 0

let content_addressed body =
  Bp_crypto.Verify_cache.enabled () && bulk_weight body >= ca_min_bytes

(* The bytes a body's envelope signature covers. [encoded] is the body's
   wire encoding (always computed — it is what travels). The
   content-addressed payload is built on an uncounted raw encoder: it is
   derived bookkeeping, not a message serialization, and must not perturb
   the encode-once accounting that {!Wire.encode_calls} tests pin. *)
let signing_payload ?cache ~encoded body =
  if content_addressed body then begin
    let e = Wire.encoder ~size_hint:512 () in
    Wire.u8 e 0xCA;
    encode_body_into e (ca_body cache body);
    Wire.to_string e
  end
  else encoded

let make_request ?cache cfg ~client ~ts ~kind ~op =
  let payload = request_signing_payload ?cache ~client ~ts ~kind ~op () in
  let identity = Config.identity cfg client in
  let client_sig =
    match cache with
    | Some c -> Bp_crypto.Verify_cache.sign c ~signer:identity payload
    | None -> Bp_crypto.Signer.sign cfg.Config.keystore ~signer:identity payload
  in
  { client; ts; kind; op; client_sig }

let request_valid ?cache cfg r =
  let payload =
    request_signing_payload ?cache ~client:r.client ~ts:r.ts ~kind:r.kind
      ~op:r.op ()
  in
  let signer = Config.identity cfg r.client in
  match cache with
  | Some c ->
      Bp_crypto.Verify_cache.verify c ~signer ~msg:payload
        ~signature:r.client_sig
  | None ->
      Bp_crypto.Verify_cache.verify_uncached cfg.Config.keystore ~signer
        ~msg:payload ~signature:r.client_sig

(* Batched spelling of [List.for_all (request_valid ?cache cfg)]: the
   per-request payloads and identities are derived on the calling
   domain, then every signature checks as one [Verify_batch] fan-out.
   Index-ordered join makes the verdict independent of worker count. *)
let requests_valid ?cache cfg batch =
  match batch with
  | [] -> true
  | [ r ] -> request_valid ?cache cfg r
  | _ ->
      let jobs =
        List.map
          (fun r ->
            let payload =
              request_signing_payload ?cache ~client:r.client ~ts:r.ts
                ~kind:r.kind ~op:r.op ()
            in
            Bp_crypto.Verify_batch.Keyed
              {
                signer = Config.identity cfg r.client;
                msg = payload;
                signature = r.client_sig;
              })
          batch
      in
      let ctx = Bp_crypto.Verify_batch.global () in
      let verdicts =
        Bp_crypto.Verify_batch.verify ?cache ~keystore:cfg.Config.keystore ctx
          jobs
      in
      List.for_all Fun.id verdicts

let batch_digest ?cache batch =
  let ctx = Bp_crypto.Sha256.init () in
  let image =
    if Bp_crypto.Verify_cache.enabled () && batch_weight batch >= ca_min_bytes
    then fun r -> ca_request cache r
    else fun r -> r
  in
  List.iter
    (fun r ->
      Bp_crypto.Sha256.update ctx
        (Wire.encode (fun e -> encode_request e (image r))))
    batch;
  Bp_crypto.Sha256.finalize ctx

let sender_of cfg = function
  | Request r -> Some r.client
  | Pre_prepare { view; _ } ->
      Some cfg.Config.nodes.(Config.primary_of_view cfg view)
  | Prepare { replica; _ }
  | Commit { replica; _ }
  | Reply { replica; _ }
  | Checkpoint { replica; _ }
  | View_change { vc_replica = replica; _ }
  | New_view { replica; _ }
  | Fetch { replica; _ }
  | Fetch_reply { replica; _ } ->
      if replica >= 0 && replica < Config.n cfg then
        Some cfg.Config.nodes.(replica)
      else None

let seal ?cache cfg ~sender body =
  let encoded = encode_body body in
  let payload = signing_payload ?cache ~encoded body in
  let signer = Config.identity cfg sender in
  let signature =
    match cache with
    | Some c -> Bp_crypto.Verify_cache.sign c ~signer payload
    | None -> Bp_crypto.Signer.sign cfg.Config.keystore ~signer payload
  in
  Wire.encode (fun e ->
      Wire.string e encoded;
      Wire.string e signature)

let seal_forged cfg ~sender body =
  ignore (Config.identity cfg sender);
  let encoded = encode_body body in
  Wire.encode (fun e ->
      Wire.string e encoded;
      Wire.string e (String.make 32 '\x00'))

let open_envelope ?cache cfg ~claimed s =
  match
    Wire.decode s (fun d ->
        let encoded = Wire.read_string d in
        let signature = Wire.read_string d in
        (encoded, signature))
  with
  | Error e -> Error e
  | Ok (encoded, signature) -> (
      match decode_body encoded with
      | Error e -> Error e
      | Ok body -> (
          match claimed body with
          | None -> Error "no sender identity"
          | Some sender ->
              let payload = signing_payload ?cache ~encoded body in
              let signer = Config.identity cfg sender in
              let ok =
                match cache with
                | Some c ->
                    Bp_crypto.Verify_cache.verify c ~signer ~msg:payload
                      ~signature
                | None ->
                    Bp_crypto.Verify_cache.verify_uncached cfg.Config.keystore
                      ~signer ~msg:payload ~signature
              in
              if ok then Ok body else Error "bad signature"))

let verify_envelope ?cache cfg s =
  open_envelope ?cache cfg ~claimed:(sender_of cfg) s
