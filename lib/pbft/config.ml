type t = {
  nodes : Bp_sim.Addr.t array;
  f : int;
  keystore : Bp_crypto.Signer.t;
  tag : string;
  batch_max : int;
  batch_min_fill : int;
  batch_hold : Bp_sim.Time.t;
  request_timeout : Bp_sim.Time.t;
  checkpoint_interval : int;
  watermark_window : int;
  max_in_flight : int;
  verify_cost : Bp_sim.Time.t;
  verify_jobs : int;
  extra_verify_units : string -> int;
}

let make ~nodes ~keystore ?(tag = "pbft") ?(batch_max = 64)
    ?(batch_min_fill = 1) ?(batch_hold = Bp_sim.Time.zero)
    ?(request_timeout = Bp_sim.Time.of_ms 500.0) ?(checkpoint_interval = 32)
    ?(watermark_window = 128) ?(max_in_flight = 8)
    ?(verify_cost = Bp_sim.Time.zero) ?(verify_jobs = 1)
    ?(extra_verify_units = fun _ -> 0) () =
  let n = Array.length nodes in
  if n < 4 || (n - 1) mod 3 <> 0 then
    invalid_arg "Pbft.Config.make: need n = 3f+1 >= 4 nodes";
  if batch_max <= 0 then
    invalid_arg "Pbft.Config.make: batch_max must be positive";
  if batch_min_fill <= 0 || batch_min_fill > batch_max then
    (* A min fill above batch_max could never be satisfied: the hold
       timer would fire on every batch, degrading every cut to the
       timeout path. Zero or negative would disable batching entirely. *)
    invalid_arg "Pbft.Config.make: batch_min_fill must be in [1, batch_max]";
  if Bp_sim.Time.(batch_hold < Bp_sim.Time.zero) then
    invalid_arg "Pbft.Config.make: batch_hold must be non-negative";
  if batch_min_fill > 1 && Bp_sim.Time.(batch_hold <= Bp_sim.Time.zero) then
    (* min-fill without a hold bound would wedge the tail: the last
       requests of a workload may never reach the fill threshold. *)
    invalid_arg "Pbft.Config.make: batch_min_fill > 1 requires batch_hold > 0";
  if checkpoint_interval <= 0 then
    (* A zero interval would silently disable checkpointing — and with it
       watermark advancement and garbage collection. *)
    invalid_arg "Pbft.Config.make: checkpoint_interval must be positive";
  if watermark_window <= 0 then
    invalid_arg "Pbft.Config.make: watermark_window must be positive";
  if max_in_flight <= 0 then
    invalid_arg "Pbft.Config.make: max_in_flight must be positive";
  if verify_jobs <= 0 then
    invalid_arg "Pbft.Config.make: verify_jobs must be positive";
  if checkpoint_interval > watermark_window then
    (* The window must span at least one checkpoint, or the protocol
       wedges: no stable checkpoint can form inside the window, so the
       watermarks never advance once the window fills. *)
    invalid_arg
      "Pbft.Config.make: checkpoint_interval must not exceed watermark_window";
  let t =
    {
      nodes;
      f = (n - 1) / 3;
      keystore;
      tag;
      batch_max;
      batch_min_fill;
      batch_hold;
      request_timeout;
      checkpoint_interval;
      watermark_window;
      (* The pipeline can never usefully exceed the watermark window: slots
         beyond it are rejected by every replica's in_window check. *)
      max_in_flight = Stdlib.min max_in_flight watermark_window;
      verify_cost;
      verify_jobs;
      extra_verify_units;
    }
  in
  Array.iter
    (fun a ->
      Bp_crypto.Signer.add_identity keystore (tag ^ "/" ^ Bp_sim.Addr.to_string a))
    nodes;
  t

let n t = Array.length t.nodes
let quorum t = (2 * t.f) + 1
let primary_of_view t view = view mod n t

let identity t addr =
  let id = t.tag ^ "/" ^ Bp_sim.Addr.to_string addr in
  Bp_crypto.Signer.add_identity t.keystore id;
  id

let replica_id t addr =
  let found = ref None in
  Array.iteri (fun i a -> if Bp_sim.Addr.equal a addr then found := Some i) t.nodes;
  !found
