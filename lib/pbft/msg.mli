(** PBFT wire messages, with signatures.

    Every message travels as a signed envelope: the encoded body plus a
    signature by the sender's identity. Receivers verify the signature
    against the identity *claimed inside the body* (replica index or
    client address), so a byzantine node cannot impersonate another.

    Two Blockplane-specific extensions over textbook PBFT (§IV-B):
    - requests carry a record-type annotation ([kind]);
    - replicas run a verification routine between the prepared and commit
      phases (see {!Replica.set_verifier}). *)

type request = {
  client : Bp_sim.Addr.t;
  ts : int;  (** client-local, monotone; (client, ts) identifies a request *)
  kind : int;  (** Blockplane record-type annotation *)
  op : string;
  client_sig : string;
}

type prepared_proof = {
  pview : int;
  pseq : int;
  pdigest : string;
  pbatch : request list;
  prepare_sigs : (int * string) list;  (** replica id, prepare signature *)
}

type view_change = {
  new_view : int;
  stable_seq : int;
  stable_digest : string;
  prepared : prepared_proof list;
  vc_replica : int;
}

type body =
  | Request of request
  | Pre_prepare of { view : int; seq : int; digest : string; batch : request list }
  | Prepare of { view : int; seq : int; digest : string; replica : int }
  | Commit of { view : int; seq : int; digest : string; replica : int }
  | Reply of {
      view : int;
      ts : int;
      client : Bp_sim.Addr.t;
      replica : int;
      result : string;
    }
  | Checkpoint of { seq : int; state_digest : string; replica : int }
  | View_change of view_change
  | New_view of {
      view : int;
      view_change_envelopes : string list;  (** signed View_change envelopes *)
      batches : (int * string * request list) list;  (** seq, digest, batch *)
      replica : int;
    }
  | Fetch of { from_seq : int; replica : int }
      (** state transfer: a lagging replica asks peers for executed
          batches starting at [from_seq] *)
  | Fetch_reply of {
      batches : (int * string * request list) list;  (** seq, digest, batch *)
      replica : int;
    }

(** {1 Content-addressed signing}

    With the global {!Bp_crypto.Verify_cache.enabled} flag on (the
    default), signatures over bulky messages (Request, Pre_prepare,
    View_change, New_view, Fetch_reply) cover a {e content-addressed}
    payload — the structural encoding with each client operation (and each
    carried view-change envelope) replaced by its SHA-256 digest — so the
    signature pass touches kilobytes instead of megabytes while binding
    the same content. Small messages sign their exact encoding in both
    modes, as do bulky constructors whose content weighs under a fixed
    cutoff (256 bytes) — below it the transform saves nothing and the
    extra encoding pass and hash would tax tiny-operation workloads. The
    cutoff is a pure function of the message, so all parties agree on the
    mode. The mode is otherwise decided by the single global flag, never by whether
    a caller passes [?cache]: a cache only memoizes digests and verdicts
    (per node), so passing or omitting it can never change any produced
    byte or verdict — only how fast they come back. *)

val make_request :
  ?cache:Bp_crypto.Verify_cache.t ->
  Config.t ->
  client:Bp_sim.Addr.t ->
  ts:int ->
  kind:int ->
  op:string ->
  request
(** Builds and client-signs a request. *)

val request_valid : ?cache:Bp_crypto.Verify_cache.t -> Config.t -> request -> bool

val requests_valid :
  ?cache:Bp_crypto.Verify_cache.t -> Config.t -> request list -> bool
(** Conjunction of {!request_valid} over the batch, with the signature
    checks fanned out as one [Bp_crypto.Verify_batch] batch (through the
    process-global context, so [--verify-jobs] applies). Verdict is
    identical to the sequential fold at any worker count; the only
    observable difference is that verification does not short-circuit at
    the first invalid request. *)

val batch_digest : ?cache:Bp_crypto.Verify_cache.t -> request list -> string
(** Digest of a batch proposal. In content-addressed mode this hashes the
    requests' content-addressed images (same value for the same batch
    whether or not a cache is supplied). *)

val encode_body : body -> string
val decode_body : string -> (body, string) result

val seal :
  ?cache:Bp_crypto.Verify_cache.t ->
  Config.t ->
  sender:Bp_sim.Addr.t ->
  body ->
  string
(** Sign with [sender]'s identity and wrap into an envelope. *)

val seal_forged : Config.t -> sender:Bp_sim.Addr.t -> body -> string
(** Test hook: envelope with a garbage signature (models a node that
    cannot actually sign for the identity it impersonates). *)

val open_envelope :
  ?cache:Bp_crypto.Verify_cache.t ->
  Config.t ->
  claimed:(body -> Bp_sim.Addr.t option) ->
  string ->
  (body, string) result
(** Decode and verify: [claimed] maps the decoded body to the address
    whose signature must check (normally {!sender_of}). *)

val sender_of : Config.t -> body -> Bp_sim.Addr.t option
(** The address implied by the body's replica index / client field. *)

val verify_envelope :
  ?cache:Bp_crypto.Verify_cache.t -> Config.t -> string -> (body, string) result
(** [open_envelope] with [claimed = sender_of config]. *)
