open Bp_sim

let log = Logs.Src.create "bp.pbft" ~doc:"PBFT replica"

module Log = (val Logs.src_log log : Logs.LOG)
module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type slot = {
  seq : int;
  mutable sview : int; (* view in which the pre-prepare was accepted *)
  mutable digest : string option;
  mutable batch : Msg.request list;
  (* replica id, (view, digest) voted for, prepare signature *)
  mutable prepares : (int * (int * string) * string) list;
  mutable commits : (int * (int * string)) list; (* replica id, (view, digest) *)
  mutable sent_prepare : bool;
  mutable sent_commit : bool;
  mutable committed : bool;
  mutable executed : bool;
  mutable in_pipeline : bool;
      (* counted in [t.pipeline]: has a digest, not yet committed *)
  mutable verify_ready : Time.t;
      (* modeled verification cost: simulated instant at which this
         slot's signature checks finish on the replica's verify
         resource; [Time.zero] (always, when the model is off) means
         "already done" *)
  mutable prefetch : (unit -> unit) option;
      (* join handle of an asynchronous verification prefetch submitted
         when the slot entered the pipeline as a non-head slot; invoked
         (once) before the slot is judged in check_prepared *)
}

type status = Normal | View_changing of int

exception Invariant_violation of string

let invariant_violation fmt =
  Printf.ksprintf (fun s -> raise (Invariant_violation s)) fmt

type t = {
  cfg : Config.t;
  id : int;
  transport : Bp_net.Transport.t;
  engine : Engine.t;
  cache : Bp_crypto.Verify_cache.t option; (* per-node memoization *)
  batch_memo : Msg.request list Bp_crypto.Verify_cache.memo;
  execute : seq:int -> Msg.request -> string;
  mutable on_executed : seq:int -> Msg.request list -> unit;
  mutable verifier : kind:int -> op:string -> bool;
  mutable preverify : Msg.request list -> (unit -> unit) option;
      (* asynchronous verification prefetch hook (see set_preverifier):
         submit whatever crypto the verification routines will need for
         this batch, return the join closure — or None if nothing to do *)
  mutable view : int;
  mutable status : status;
  mutable next_seq : int; (* primary: next sequence to assign *)
  mutable slots : slot Int_map.t;
  mutable low_watermark : int;
  mutable last_exec : int;
  mutable chain : string; (* hash chain over executed batches *)
  (* primary batching *)
  queue : Msg.request Queue.t;
  queued_keys : (string, unit) Hashtbl.t;
      (* dedup of queued requests, keyed [timer_key (request_key r)].
         O(1) membership/removal: under open-loop saturation the queue
         holds tens of thousands of requests, and the list this replaced
         made every enqueue/dequeue a linear scan. *)
  (* adaptive batch-cut policy (Config.batch_min_fill / batch_hold) *)
  mutable hold_timer : Engine.timer option;
      (* armed when a cut is deferred below the fill threshold *)
  mutable cut_forced : bool;
      (* the hold timer expired: the next cut ignores the fill threshold *)
  (* batch-formation telemetry for the saturation harness *)
  mutable batches_cut : int;
  mutable ops_proposed : int; (* total requests across all cut batches *)
  mutable window_stalls : int;
      (* cut attempts blocked by the watermark window (pipeline free,
         requests waiting, next_seq beyond the high watermark) *)
  mutable hold_deferrals : int; (* cuts deferred below batch_min_fill *)
  (* Windowed pipeline: number of slots currently in the
     pre-prepare/prepare/commit phases (digest assigned, not yet
     committed). The primary proposes while this stays below
     [Config.max_in_flight]; execution remains strictly in sequence
     order regardless of commit order. *)
  mutable pipeline : int;
  (* occupancy telemetry: pipeline depth sampled whenever a slot enters *)
  mutable occ_sum : int;
  mutable occ_samples : int;
  (* client bookkeeping *)
  last_reply : (string, int * string) Hashtbl.t; (* client key -> ts, reply envelope *)
  (* request timers: key -> timer *)
  timers : (string, Engine.timer) Hashtbl.t;
  (* checkpoints: seq -> replica -> digest *)
  mutable checkpoints : (int * string) list Int_map.t;
  mutable own_checkpoints : string Int_map.t; (* seq -> digest, ours *)
  (* view change *)
  mutable view_changes : (int * string) list Int_map.t; (* target view -> (replica, envelope) *)
  mutable vc_timer : Engine.timer option;
  (* state transfer *)
  archive : (int, string * Msg.request list) Hashtbl.t; (* executed batches *)
  (* seq -> per-digest vote tallies: (digest, voters, batch) *)
  fetch_votes : (int, (string * Int_set.t * Msg.request list) list) Hashtbl.t;
  mutable fetching : bool;
  mutable stopped : bool;
  mutable suppress_commits : bool;
  mutable verify_busy : Time.t;
      (* modeled verification resource: simulated instant at which the
         replica's verification cores drain the work already booked *)
}

let id t = t.id
let view t = t.view
let is_primary t = Config.primary_of_view t.cfg t.view = t.id
let is_normal t = match t.status with Normal -> true | View_changing _ -> false
let last_executed t = t.last_exec
let low_watermark t = t.low_watermark
let exec_chain t = t.chain
let set_verifier t v = t.verifier <- v
let set_preverifier t f = t.preverify <- f
let set_on_executed t f = t.on_executed <- f
let suppress_commit_votes t b = t.suppress_commits <- b

let pipeline_now t = t.pipeline

let pipeline_occupancy t =
  if t.occ_samples = 0 then 0.0
  else float_of_int t.occ_sum /. float_of_int t.occ_samples

let occupancy_samples t = t.occ_samples
let open_slot_count t = Int_map.cardinal t.slots
let archive_size t = Hashtbl.length t.archive
let queue_depth t = Queue.length t.queue

type batch_stats = {
  batches_cut : int;
  ops_proposed : int;
  window_stalls : int;
  hold_deferrals : int;
}

let batch_stats (t : t) =
  {
    batches_cut = t.batches_cut;
    ops_proposed = t.ops_proposed;
    window_stalls = t.window_stalls;
    hold_deferrals = t.hold_deferrals;
  }

(* Modeled verification cost. The simulator charges zero simulated time
   for crypto (the only time model is the NIC and the links), which is
   right for the golden experiments but hides the verify bottleneck the
   pipeline ablations study. When [Config.verify_cost] is positive, a
   slot entering the pipeline books its verification work — batch size
   plus 2f proof signatures, plus whatever extra units each request op
   carries ([Config.extra_verify_units], e.g. embedded signature
   bundles), divided across [Config.verify_jobs]
   simulated cores — on the replica's single verification resource, and
   the slot's commit vote waits for the booked work to drain (see
   check_prepared). With the default zero cost nothing is booked and
   the seed timing is bit-identical. *)
let charge_verification t s =
  let cost = t.cfg.Config.verify_cost in
  if Time.(cost > Time.zero) then begin
    let extra =
      List.fold_left
        (fun acc r -> acc + t.cfg.Config.extra_verify_units r.Msg.op)
        0 s.batch
    in
    let units = List.length s.batch + (2 * t.cfg.Config.f) + extra in
    let jobs = t.cfg.Config.verify_jobs in
    let rounds = (units + jobs - 1) / jobs in
    let service = Time.scale cost (float_of_int rounds) in
    let start = Time.max (Engine.now t.engine) t.verify_busy in
    let ready = Time.add start service in
    t.verify_busy <- ready;
    s.verify_ready <- ready
  end

(* A slot enters the pipeline when it gains a digest (the primary's own
   proposal, an accepted pre-prepare, or a new-view re-proposal) and
   leaves when it commits. The per-slot flag keeps the counter exact
   even when the same slot is touched through several of those paths. *)
let pipeline_enter t s =
  if not s.in_pipeline then begin
    s.in_pipeline <- true;
    t.pipeline <- t.pipeline + 1;
    t.occ_sum <- t.occ_sum + t.pipeline;
    t.occ_samples <- t.occ_samples + 1;
    charge_verification t s
  end

let pipeline_leave t s =
  if s.in_pipeline then begin
    s.in_pipeline <- false;
    t.pipeline <- t.pipeline - 1
  end

let self_addr t = t.cfg.Config.nodes.(t.id)

let client_key (a : Addr.t) = Addr.to_string a
let request_key (r : Msg.request) = (client_key r.Msg.client, r.Msg.ts)
let timer_key (ck, ts) = Printf.sprintf "%s#%d" ck ts

let request_equal (a : Msg.request) (b : Msg.request) =
  Addr.equal a.Msg.client b.Msg.client
  && a.Msg.ts = b.Msg.ts && a.Msg.kind = b.Msg.kind
  && String.equal a.Msg.op b.Msg.op

(* Structural equality for new-view batch lists, monomorphized so a
   byzantine peer cannot exploit (and we cannot pay for) polymorphic
   compare on protocol payloads. *)
let batches_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (seq_a, dg_a, batch_a) (seq_b, dg_b, batch_b) ->
         seq_a = seq_b && String.equal dg_a dg_b
         && List.length batch_a = List.length batch_b
         && List.for_all2 request_equal batch_a batch_b)
       a b

let broadcast t body =
  (* Seal once, serialize the transport suffix once: the whole broadcast
     encodes the message exactly one time regardless of cluster size. *)
  let sealed = Msg.seal ?cache:t.cache t.cfg ~sender:(self_addr t) body in
  Bp_net.Transport.broadcast t.transport ~dsts:t.cfg.Config.nodes
    ~tag:t.cfg.Config.tag sealed

(* Hash-consed slot digests: a batch list the replica already holds (its
   own proposal, an accepted pre-prepare, prepared-proof material) is
   digested once and looked up by physical identity afterwards. *)
let digest_of_batch t batch =
  Bp_crypto.Verify_cache.memoize t.batch_memo batch (fun () ->
      Msg.batch_digest ?cache:t.cache batch)

let reply_tag cfg = cfg.Config.tag ^ ".reply"

let send_reply t (r : Msg.request) result =
  let body =
    Msg.Reply
      { view = t.view; ts = r.Msg.ts; client = r.Msg.client; replica = t.id; result }
  in
  let sealed = Msg.seal ?cache:t.cache t.cfg ~sender:(self_addr t) body in
  Hashtbl.replace t.last_reply (client_key r.Msg.client) (r.Msg.ts, sealed);
  Bp_net.Transport.send t.transport ~dst:r.Msg.client ~tag:(reply_tag t.cfg) sealed

let slot_of t seq =
  match Int_map.find_opt seq t.slots with
  | Some s -> s
  | None ->
      let s =
        {
          seq;
          sview = t.view;
          digest = None;
          batch = [];
          prepares = [];
          commits = [];
          sent_prepare = false;
          sent_commit = false;
          committed = false;
          executed = false;
          in_pipeline = false;
          verify_ready = Time.zero;
          prefetch = None;
        }
      in
      t.slots <- Int_map.add seq s t.slots;
      s

let in_window t seq =
  seq > t.low_watermark && seq <= t.low_watermark + t.cfg.Config.watermark_window

(* The digest of a slot that the protocol has already established as
   proposed: reaching for it on an empty slot is a local-state corruption,
   not a byzantine input, so fail loudly with the slot's coordinates. *)
let slot_digest_exn t s =
  match s.digest with
  | Some d -> d
  | None ->
      invariant_violation "pbft replica %d: slot seq=%d view=%d has no digest"
        t.id s.seq s.sview

(* ---------- view change triggering ---------- *)

let cancel_request_timer t key =
  match Hashtbl.find_opt t.timers (timer_key key) with
  | Some timer ->
      Engine.cancel timer;
      Hashtbl.remove t.timers (timer_key key)
  | None -> ()

let matching_prepares s =
  match s.digest with
  | None -> []
  | Some d ->
      List.filter (fun (_, (v, dg), _) -> v = s.sview && String.equal dg d) s.prepares

let matching_commits s =
  match s.digest with
  | None -> []
  | Some d ->
      List.filter (fun (_, (v, dg)) -> v = s.sview && String.equal dg d) s.commits

let prepared_proofs t =
  Int_map.fold
    (fun seq s acc ->
      let matching = matching_prepares s in
      if
        seq > t.low_watermark
        && (not s.executed)
        && Option.is_some s.digest
        && List.length matching >= 2 * t.cfg.Config.f
      then
        {
          Msg.pview = s.sview;
          pseq = seq;
          pdigest = slot_digest_exn t s;
          pbatch = s.batch;
          prepare_sigs = List.map (fun (r, _, sg) -> (r, sg)) matching;
        }
        :: acc
      else acc)
    t.slots []

let rec move_to_view t target =
  if target > t.view then begin
    Log.debug (fun m -> m "pbft %d: view change -> %d" t.id target);
    t.status <- View_changing target;
    (* Clear per-request timers; the new view re-arms protocol progress.
       Cancellation order cannot affect protocol state, so the
       order-dependent iteration is safe here. *)
    (Hashtbl.iter (fun _ timer -> Engine.cancel timer) t.timers
    [@bplint.allow "R2-hiter"]);
    Hashtbl.reset t.timers;
    let body =
      Msg.View_change
        {
          new_view = target;
          stable_seq = t.low_watermark;
          stable_digest =
            (match Int_map.find_opt t.low_watermark t.own_checkpoints with
            | Some d -> d
            | None -> "");
          prepared = prepared_proofs t;
          vc_replica = t.id;
        }
    in
    (* Record our own view-change message. *)
    let sealed = Msg.seal ?cache:t.cache t.cfg ~sender:(self_addr t) body in
    record_view_change t target t.id sealed;
    broadcast t body;
    (match t.vc_timer with Some timer -> Engine.cancel timer | None -> ());
    t.vc_timer <-
      Some
        (Engine.schedule t.engine ~after:(Time.scale t.cfg.Config.request_timeout 2.0)
           (fun () ->
             match t.status with
             | View_changing v when v = target -> move_to_view t (target + 1)
             | _ -> ()))
  end

and record_view_change t target replica envelope =
  let existing = Option.value ~default:[] (Int_map.find_opt target t.view_changes) in
  if not (List.mem_assoc replica existing) then begin
    t.view_changes <- Int_map.add target ((replica, envelope) :: existing) t.view_changes;
    maybe_new_view t target
  end

(* The new primary assembles and broadcasts New_view once it holds 2f+1
   view-change messages for the target view. *)
and maybe_new_view t target =
  if Config.primary_of_view t.cfg target = t.id && target > t.view then begin
    let vcs = Option.value ~default:[] (Int_map.find_opt target t.view_changes) in
    if List.length vcs >= Config.quorum t.cfg then begin
      match compute_new_view_batches ?cache:t.cache t.cfg (List.map snd vcs) with
      | None -> ()
      | Some batches ->
          let body =
            Msg.New_view
              {
                view = target;
                view_change_envelopes = List.map snd vcs;
                batches;
                replica = t.id;
              }
          in
          broadcast t body;
          enter_new_view t target batches
    end
  end

and verified_view_changes ?cache cfg target envelopes =
  (* Returns (replica, View_change fields) for envelopes that verify and
     target the right view, at most one per replica. *)
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun env ->
      match Msg.verify_envelope ?cache cfg env with
      | Ok (Msg.View_change vc) when vc.Msg.new_view = target ->
          if Hashtbl.mem seen vc.Msg.vc_replica then None
          else begin
            Hashtbl.add seen vc.Msg.vc_replica ();
            Some vc
          end
      | _ -> None)
    envelopes

and proof_valid ?cache cfg (p : Msg.prepared_proof) =
  String.equal p.Msg.pdigest (Msg.batch_digest ?cache p.Msg.pbatch)
  && begin
       (* 2f distinct, valid prepare signatures over the reconstructed
          prepare body. Prepare is a small-bodied message, so its signed
          bytes are its exact encoding in both signing modes. *)
       let distinct = Hashtbl.create 8 in
       let valid =
         List.filter
           (fun (replica, signature) ->
             if Hashtbl.mem distinct replica then false
             else if replica < 0 || replica >= Config.n cfg then false
             else begin
               let body =
                 Msg.encode_body
                   (Msg.Prepare
                      {
                        view = p.Msg.pview;
                        seq = p.Msg.pseq;
                        digest = p.Msg.pdigest;
                        replica;
                      })
               in
               let signer = Config.identity cfg cfg.Config.nodes.(replica) in
               let ok =
                 match cache with
                 | Some c ->
                     Bp_crypto.Verify_cache.verify c ~signer ~msg:body
                       ~signature
                 | None ->
                     Bp_crypto.Verify_cache.verify_uncached cfg.Config.keystore
                       ~signer ~msg:body ~signature
               in
               if ok then Hashtbl.add distinct replica ();
               ok
             end)
           p.Msg.prepare_sigs
       in
       List.length valid >= 2 * cfg.Config.f
     end

and compute_new_view_batches ?cache cfg envelopes =
  (* Deterministic function of the view-change set: both the new primary
     and the backups run it and must agree. *)
  let target =
    List.fold_left
      (fun acc env ->
        match Msg.verify_envelope ?cache cfg env with
        | Ok (Msg.View_change vc) -> Stdlib.max acc vc.Msg.new_view
        | _ -> acc)
      (-1) envelopes
  in
  if target < 0 then None
  else begin
    let vcs = verified_view_changes ?cache cfg target envelopes in
    if List.length vcs < Config.quorum cfg then None
    else begin
      (* min_s: the highest stable sequence supported by at least f+1
         view-change messages — at least one of those reporters is honest,
         so a lone byzantine node cannot truncate prepared batches by
         claiming an inflated stable checkpoint. *)
      let stables =
        List.sort (fun a b -> Int.compare b a) (List.map (fun vc -> vc.Msg.stable_seq) vcs)
      in
      let min_s =
        match List.nth_opt stables (Stdlib.min (List.length stables - 1) cfg.Config.f) with
        | Some s -> s
        | None -> 0 (* unreachable: vcs passed the quorum check above *)
      in
      let best = ref Int_map.empty in
      List.iter
        (fun vc ->
          List.iter
            (fun p ->
              if p.Msg.pseq > min_s && proof_valid cfg p then
                match Int_map.find_opt p.Msg.pseq !best with
                | Some existing when existing.Msg.pview >= p.Msg.pview -> ()
                | _ -> best := Int_map.add p.Msg.pseq p !best)
            vc.Msg.prepared)
        vcs;
      let max_s =
        match Int_map.max_binding_opt !best with
        | Some (seq, _) -> Stdlib.max min_s seq
        | None -> min_s
      in
      let batches =
        List.init (max_s - min_s) (fun i ->
            let seq = min_s + 1 + i in
            match Int_map.find_opt seq !best with
            | Some p -> (seq, p.Msg.pdigest, p.Msg.pbatch)
            | None -> (seq, Msg.batch_digest ?cache [], []))
      in
      Some batches
    end
  end

and enter_new_view t target batches =
  (match t.vc_timer with Some timer -> Engine.cancel timer | None -> ());
  t.vc_timer <- None;
  t.view <- target;
  t.status <- Normal;
  (* Recompute pipeline membership from scratch: only the slots
     re-proposed below (and not already committed) are in flight in the
     new view. Dead slots from the old view must not pin the counter. *)
  Int_map.iter (fun _ s -> s.in_pipeline <- false) t.slots;
  t.pipeline <- 0;
  let max_seq = List.fold_left (fun acc (s, _, _) -> Stdlib.max acc s) 0 batches in
  t.next_seq <- Stdlib.max t.next_seq (Stdlib.max max_seq t.last_exec + 1);
  List.iter
    (fun (seq, digest, batch) ->
      if seq > t.last_exec && in_window t seq then begin
        let s = slot_of t seq in
        s.sview <- target;
        s.digest <- Some digest;
        s.batch <- batch;
        s.prepares <- [];
        s.commits <- [];
        s.sent_prepare <- false;
        s.sent_commit <- false;
        if not s.committed then pipeline_enter t s;
        (* Everyone, including the new primary, prepares the re-proposed
           batches in the new view. *)
        send_prepare t s
      end)
    batches;
  Log.debug (fun m -> m "pbft %d: entered view %d" t.id target);
  (* The new primary may hold queued requests (leftovers from an earlier
     primaryship); fill whatever pipeline capacity the re-proposals left. *)
  if is_primary t then try_form_batch t

(* ---------- normal case ---------- *)

and send_prepare t s =
  if not s.sent_prepare then begin
    s.sent_prepare <- true;
    match s.digest with
    | Some digest ->
        broadcast t (Msg.Prepare { view = s.sview; seq = s.seq; digest; replica = t.id })
    | None -> ()
  end

and check_prepared t s =
  match s.digest with
  | None -> ()
  | Some digest ->
      if
        (not s.sent_commit)
        && List.length (matching_prepares s) >= 2 * t.cfg.Config.f
      then begin
        (* Blockplane hook: run the verification routines before voting to
           commit (§IV-B). With a pipeline, a failing verdict is only
           *provisional* while earlier slots are in flight — the state it
           was judged against may still change — so it withholds the vote
           and is re-judged as execution advances (see try_execute). Once
           the slot is next in execution order the verdict is final and
           identical on every honest replica; a finally-invalid batch must
           still commit (a peer that judged it against an earlier state
           may already have voted, so it may be committed elsewhere) —
           execution then downgrades its requests to deterministic no-op
           rejections. Without that, a prepared-but-invalid slot wedges
           the window behind endless view changes. At depth 1 the seed
           semantics are unchanged: a failing verdict always withholds. *)
        (* Join the asynchronous verification prefetch first, if one was
           submitted when the slot entered the pipeline: the signature
           checks it fanned out land in the per-node cache, so the
           verification routines below mostly hit. Joining is free when
           the batch already drained on worker domains. Cache writes
           happen here, after the join, never on the workers — the
           submit/record split that bplint R7-parpure verifies. *)
        (match s.prefetch with
        | Some join ->
            s.prefetch <- None;
            join ()
        | None -> ());
        let all_valid =
          List.for_all (fun r -> t.verifier ~kind:r.Msg.kind ~op:r.Msg.op) s.batch
        in
        let verdict_final =
          t.cfg.Config.max_in_flight > 1 && s.seq = t.last_exec + 1
        in
        if all_valid || verdict_final then begin
          s.sent_commit <- true;
          if not t.suppress_commits then begin
            let now = Engine.now t.engine in
            if Time.(s.verify_ready <= now) then
              broadcast t
                (Msg.Commit { view = s.sview; seq = s.seq; digest; replica = t.id })
            else begin
              (* Modeled verification (Config.verify_cost) still in
                 flight for this slot: the vote goes out when the
                 simulated verify resource drains it. The guards re-check
                 at fire time that the slot still stands for the same
                 (view, digest) — a view change in between resets
                 sent_commit and re-proposes under a new sview. *)
              let view_c = s.sview in
              ignore
                (Engine.schedule t.engine ~after:(Time.diff s.verify_ready now)
                   (fun () ->
                     if
                       (not t.stopped) && is_normal t && s.sent_commit
                       && s.sview = view_c
                       && not t.suppress_commits
                       &&
                       match s.digest with
                       | Some d -> String.equal d digest
                       | None -> false
                     then
                       broadcast t
                         (Msg.Commit
                            { view = view_c; seq = s.seq; digest; replica = t.id })))
            end
          end
        end
      end

and check_committed t s =
  if
    (not s.committed)
    && s.sent_commit
    && List.length (matching_commits s) >= Config.quorum t.cfg
  then begin
    s.committed <- true;
    pipeline_leave t s;
    try_execute t;
    (* A pipeline slot just freed: the primary cuts the next batch now
       rather than waiting for [batch_max] requests (adaptive batching). *)
    if is_primary t && is_normal t then try_form_batch t
  end

and try_execute t =
  let executed_any = ref false in
  let deferred_checkpoints = ref [] in
  let rec go () =
    match Int_map.find_opt (t.last_exec + 1) t.slots with
    | Some s when s.committed && not s.executed ->
        executed_any := true;
        s.executed <- true;
        t.last_exec <- s.seq;
        (* Retain the executed batch for state transfer, bounded. *)
        Hashtbl.replace t.archive s.seq (Option.value ~default:"" s.digest, s.batch);
        let horizon = s.seq - (4 * t.cfg.Config.watermark_window) in
        if horizon > 0 then Hashtbl.remove t.archive horizon;
        List.iter
          (fun r ->
            (* Pipelined mode re-verifies at execution: the commit-time
               verdict may have been cast against a stale state (or
               force-granted once final, see check_prepared). Every honest
               replica evaluates this at the identical sequential state,
               so the downgrade to a no-op rejection is unanimous. *)
            let result =
              if
                t.cfg.Config.max_in_flight > 1
                && not (t.verifier ~kind:r.Msg.kind ~op:r.Msg.op)
              then "__rejected"
              else t.execute ~seq:s.seq r
            in
            cancel_request_timer t (request_key r);
            send_reply t r result)
          s.batch;
        t.chain <-
          Bp_crypto.Sha256.digest_list
            [ t.chain; Option.value ~default:"" s.digest ];
        t.on_executed ~seq:s.seq s.batch;
        if s.seq mod t.cfg.Config.checkpoint_interval = 0 then begin
          t.own_checkpoints <- Int_map.add s.seq t.chain t.own_checkpoints;
          (* Pipelined mode overlaps checkpoint production with pipeline
             progress: the digest is recorded here (it is this point of
             the chain), but the broadcast is deferred until the whole
             execution drain finishes, so the replies and commit votes of
             the slots behind this one are not NIC-queued behind
             checkpoint traffic. Depth 1 keeps the seed's inline
             broadcast, byte-for-byte. *)
          if t.cfg.Config.max_in_flight > 1 then
            deferred_checkpoints := (s.seq, t.chain) :: !deferred_checkpoints
          else
            broadcast t
              (Msg.Checkpoint { seq = s.seq; state_digest = t.chain; replica = t.id })
        end;
        go ()
    | _ -> ()
  in
  go ();
  (* Verification routines read application state, so a pipelined slot
     whose batch was rejected while an earlier slot was still in flight
     must be re-judged now that execution advanced — otherwise the
     withheld commit vote is never reconsidered and the slot wedges
     until a view change. With a single slot in flight (depth 1) no
     other slot can be waiting, so this never fires there. *)
  if !executed_any then
    Int_map.iter
      (fun _ s ->
        if (not s.executed) && not s.sent_commit then begin
          check_prepared t s;
          check_committed t s
        end)
      t.slots;
  (* Flush deferred checkpoint broadcasts (pipelined mode only, see
     above): protocol-critical traffic — replies, commit votes, the
     re-judged slots' votes — has already been queued ahead of them. *)
  List.iter
    (fun (seq, digest) ->
      broadcast t (Msg.Checkpoint { seq; state_digest = digest; replica = t.id }))
    (List.rev !deferred_checkpoints)

and arm_hold_timer t =
  (* One timer at a time; re-armed only after it fires. The fire-time
     guards re-check primaryship — a view change in between deposes us
     and the new primary runs its own policy. *)
  match t.hold_timer with
  | Some _ -> ()
  | None ->
      t.hold_timer <-
        Some
          (Engine.schedule t.engine ~after:t.cfg.Config.batch_hold (fun () ->
               t.hold_timer <- None;
               if
                 (not t.stopped) && is_primary t && is_normal t
                 && not (Queue.is_empty t.queue)
               then begin
                 t.cut_forced <- true;
                 try_form_batch t
               end))

and try_form_batch t =
  (* Windowed pipelining: keep cutting batches while the pipeline has a
     free slot, requests are waiting, and the next sequence fits under
     the high watermark. Each iteration either consumes queued requests
     or opens a slot, so the loop terminates. At [max_in_flight = 1]
     this is exactly the classic stop-and-wait primary.

     Batch-cut policy: with the default [batch_min_fill = 1] any waiting
     request is cut immediately (the seed policy). A higher threshold
     holds the cut until enough requests pool — bounded by the
     [batch_hold] timer, whose expiry forces the next cut regardless of
     fill. This is the knob that stops a deep pipeline from shredding an
     open-loop workload into degenerate 1-op batches: every commit frees
     a slot, and without the threshold each free slot immediately
     consumes whatever trickle is queued. *)
  let deferred = ref false in
  while
    (not !deferred) && is_primary t && is_normal t
    && t.pipeline < t.cfg.Config.max_in_flight
    && (not (Queue.is_empty t.queue))
    && t.next_seq <= t.low_watermark + t.cfg.Config.watermark_window
  do
    if Queue.length t.queue < t.cfg.Config.batch_min_fill && not t.cut_forced
    then begin
      t.hold_deferrals <- t.hold_deferrals + 1;
      arm_hold_timer t;
      deferred := true
    end
    else begin
      t.cut_forced <- false;
      let batch = ref [] in
      let blen = ref 0 in
      (* Batch length tracked alongside the list: [List.length !batch] in
         the loop guard made each cut O(batch^2). *)
      while (not (Queue.is_empty t.queue)) && !blen < t.cfg.Config.batch_max do
        let r = Queue.pop t.queue in
        Hashtbl.remove t.queued_keys (timer_key (request_key r));
        (* Pre-screen with the verification routine; invalid requests are
           dropped here (an honest primary never proposes them). *)
        if t.verifier ~kind:r.Msg.kind ~op:r.Msg.op then begin
          batch := r :: !batch;
          incr blen
        end
      done;
      let batch = List.rev !batch in
      if not (List.is_empty batch) then begin
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        let digest = digest_of_batch t batch in
        let s = slot_of t seq in
        s.sview <- t.view;
        s.digest <- Some digest;
        s.batch <- batch;
        t.batches_cut <- t.batches_cut + 1;
        t.ops_proposed <- t.ops_proposed + !blen;
        pipeline_enter t s;
        broadcast t (Msg.Pre_prepare { view = t.view; seq; digest; batch })
        (* The primary's pre-prepare stands in for its prepare: backups
           count it via the digest; the primary collects 2f backup prepares
           like everyone else. *)
      end
    end
  done;
  (* Window-stall telemetry: a free pipeline slot and waiting requests,
     but the next sequence would overrun the high watermark — progress
     now depends on the next stable checkpoint. The saturation harness
     reads this to attribute throughput plateaus. *)
  if
    is_primary t && is_normal t
    && t.pipeline < t.cfg.Config.max_in_flight
    && (not (Queue.is_empty t.queue))
    && t.next_seq > t.low_watermark + t.cfg.Config.watermark_window
  then t.window_stalls <- t.window_stalls + 1

and arm_request_timer t (r : Msg.request) =
  let key = request_key r in
  let tk = timer_key key in
  if not (Hashtbl.mem t.timers tk) then begin
    let timer =
      Engine.schedule t.engine ~after:t.cfg.Config.request_timeout (fun () ->
          Hashtbl.remove t.timers tk;
          (* The request did not execute in time: suspect the primary. *)
          match t.status with
          | Normal -> move_to_view t (t.view + 1)
          | View_changing _ -> ())
    in
    Hashtbl.replace t.timers tk timer
  end

and handle_request t ~envelope (r : Msg.request) =
  if Msg.request_valid ?cache:t.cache t.cfg r then begin
    let ck = client_key r.Msg.client in
    match Hashtbl.find_opt t.last_reply ck with
    | Some (ts, envelope) when ts >= r.Msg.ts ->
        (* Already executed: re-send the cached reply. *)
        if ts = r.Msg.ts then
          Bp_net.Transport.send t.transport ~dst:r.Msg.client
            ~tag:(reply_tag t.cfg) envelope
    | _ when not (t.verifier ~kind:r.Msg.kind ~op:r.Msg.op) ->
        (* Pre-screen: an op the verification routine rejects can never
           commit; answer immediately instead of letting request timers
           churn view changes. The client waits for f+1 of these, so up
           to f liars cannot fake a rejection. *)
        let body =
          Msg.Reply
            {
              view = t.view;
              ts = r.Msg.ts;
              client = r.Msg.client;
              replica = t.id;
              result = "__rejected";
            }
        in
        Bp_net.Transport.send t.transport ~dst:r.Msg.client ~tag:(reply_tag t.cfg)
          (Msg.seal ?cache:t.cache t.cfg ~sender:(self_addr t) body)
    | _ ->
        if is_primary t && is_normal t then begin
          let qk = timer_key (request_key r) in
          if not (Hashtbl.mem t.queued_keys qk) then begin
            Queue.push r t.queue;
            Hashtbl.replace t.queued_keys qk ();
            arm_request_timer t r;
            try_form_batch t
          end
        end
        else begin
          (* Backup: forward the client's original envelope (we cannot
             re-sign for the client) and watch for progress. Never forward
             to ourselves (we may be the deposed primary of a view change
             in progress) — the client's retransmissions provide liveness. *)
          let primary = Config.primary_of_view t.cfg t.view in
          if primary <> t.id && is_normal t then
            Bp_net.Transport.send t.transport
              ~dst:t.cfg.Config.nodes.(primary)
              ~tag:t.cfg.Config.tag envelope;
          arm_request_timer t r
        end
  end

and handle_pre_prepare t ~view ~seq ~digest ~batch =
  if
    is_normal t && view = t.view && in_window t seq
    && Config.primary_of_view t.cfg view <> t.id
    && String.equal digest (digest_of_batch t batch)
    (* One fanned Verify_batch submission for the whole batch's client
       signatures, not a per-request loop (verdict identical). *)
    && Msg.requests_valid ?cache:t.cache t.cfg batch
  then begin
    let s = slot_of t seq in
    match s.digest with
    | Some existing when s.sview = view ->
        if not (String.equal existing digest) then
          (* Equivocating primary: refuse, and push for a view change. *)
          move_to_view t (t.view + 1)
    | _ ->
        (* A committed-but-unexecuted slot (possible while earlier slots
           are still in flight, or after a fetch drain) already holds the
           digest a quorum agreed on; a late pre-prepare must not
           overwrite it or re-enter it into the pipeline. *)
        if (not s.executed) && not s.committed then begin
          s.sview <- view;
          s.digest <- Some digest;
          s.batch <- batch;
          pipeline_enter t s;
          (* Non-head slot: its verdict can wait (provisional/final
             machinery above), so kick the verification routines' crypto
             off the critical path now and join when the slot is judged
             in check_prepared. The head slot is judged synchronously —
             nothing to overlap with. *)
          if s.seq > t.last_exec + 1 then s.prefetch <- t.preverify batch;
          List.iter (fun r -> cancel_request_timer t (request_key r)) batch;
          List.iter (fun r -> arm_request_timer t r) batch;
          send_prepare t s;
          check_prepared t s;
          check_committed t s
        end
  end

and handle_prepare t ~view ~seq ~digest ~replica ~signature =
  if in_window t seq && view >= 0 then begin
    let s = slot_of t seq in
    (* Buffer each replica's vote with the (view, digest) it voted for —
       votes for other digests are kept but never counted, so a byzantine
       flood cannot inflate the prepared count. *)
    if not (List.exists (fun (r, _, _) -> r = replica) s.prepares) then begin
      s.prepares <- (replica, (view, digest), signature) :: s.prepares;
      check_prepared t s;
      check_committed t s
    end
  end

and handle_commit t ~view ~seq ~digest ~replica =
  if in_window t seq then begin
    let s = slot_of t seq in
    if not (List.exists (fun (r, _) -> r = replica) s.commits) then begin
      s.commits <- (replica, (view, digest)) :: s.commits;
      check_committed t s
    end
  end

and handle_checkpoint t ~seq ~state_digest ~replica =
  if seq > t.low_watermark then begin
    let existing = Option.value ~default:[] (Int_map.find_opt seq t.checkpoints) in
    if not (List.mem_assoc replica existing) then begin
      let entries = (replica, state_digest) :: existing in
      t.checkpoints <- Int_map.add seq entries t.checkpoints;
      (* State-transfer trigger: f+1 distinct replicas checkpointing a
         sequence we have not executed means at least one honest replica
         is ahead of us — fetch the gap (e.g. after an amnesiac reboot). *)
      if seq > t.last_exec && List.length entries >= t.cfg.Config.f + 1 then
        start_fetch t;
      let matching =
        List.length (List.filter (fun (_, d) -> String.equal d state_digest) entries)
      in
      if matching >= Config.quorum t.cfg && Int_map.mem seq t.own_checkpoints then begin
        (* Stable checkpoint: advance watermarks and collect garbage.
           Only executed slots sit at or below a stable checkpoint, so
           the filter can never drop an in-pipeline slot. *)
        t.low_watermark <- seq;
        t.slots <- Int_map.filter (fun s _ -> s > seq) t.slots;
        t.checkpoints <- Int_map.filter (fun s _ -> s > seq) t.checkpoints;
        t.own_checkpoints <- Int_map.filter (fun s _ -> s >= seq) t.own_checkpoints;
        (* The high watermark moved: sequences that were window-blocked
           are proposable again. *)
        if is_primary t && is_normal t then try_form_batch t
      end
    end
  end

(* ---------- state transfer ---------- *)

and start_fetch t =
  if not t.fetching then begin
    t.fetching <- true;
    broadcast t (Msg.Fetch { from_seq = t.last_exec + 1; replica = t.id });
    (* Allow a re-trigger if this round stalls (lost replies, still
       behind). *)
    ignore
      (Engine.schedule t.engine ~after:(Time.scale t.cfg.Config.request_timeout 2.0)
         (fun () -> t.fetching <- false))
  end

and handle_fetch t ~from_seq ~replica =
  if replica <> t.id && replica >= 0 && replica < Config.n t.cfg then begin
    let batches = ref [] in
    let upto = Stdlib.min t.last_exec (from_seq + 31) in
    for seq = upto downto from_seq do
      match Hashtbl.find_opt t.archive seq with
      | Some (digest, batch) -> batches := (seq, digest, batch) :: !batches
      | None -> ()
    done;
    if not (List.is_empty !batches) then begin
      let body = Msg.Fetch_reply { batches = !batches; replica = t.id } in
      Bp_net.Transport.send t.transport ~dst:t.cfg.Config.nodes.(replica)
        ~tag:t.cfg.Config.tag
        (Msg.seal ?cache:t.cache t.cfg ~sender:(self_addr t) body)
    end
  end

and handle_fetch_reply t ~batches ~replica =
  List.iter
    (fun (seq, digest, batch) ->
      if seq > t.last_exec && String.equal digest (digest_of_batch t batch) then begin
        let entries = Option.value ~default:[] (Hashtbl.find_opt t.fetch_votes seq) in
        let entries =
          match List.partition (fun (d, _, _) -> String.equal d digest) entries with
          | (d, voters, stored) :: _, rest ->
              (d, Int_set.add replica voters, stored) :: rest
          | [], rest -> (digest, Int_set.singleton replica, batch) :: rest
        in
        Hashtbl.replace t.fetch_votes seq entries
      end)
    batches;
  (* Drain: accept the next sequence once f+1 distinct peers vouch for
     the same digest — at least one of them is honest and executed it.
     At most one digest can reach f+1 honest votes, so if byzantine peers
     stuff a second qualifying digest we still pick deterministically:
     the lexicographically smallest. *)
  let rec drain () =
    let next = t.last_exec + 1 in
    let qualifying =
      List.filter
        (fun (_, voters, _) -> Int_set.cardinal voters >= t.cfg.Config.f + 1)
        (Option.value ~default:[] (Hashtbl.find_opt t.fetch_votes next))
    in
    let candidate =
      match
        List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) qualifying
      with
      | (digest, _, batch) :: _ -> Some (digest, batch)
      | [] -> None
    in
    match candidate with
    | Some (digest, batch) ->
        let s = slot_of t next in
        if not s.executed then begin
          s.digest <- Some digest;
          s.batch <- batch;
          s.committed <- true;
          s.sent_commit <- true;
          (* The slot may have been mid-pipeline when we fell behind. *)
          pipeline_leave t s
        end;
        Hashtbl.remove t.fetch_votes next;
        try_execute t;
        if t.last_exec >= next then drain ()
    | None -> ()
  in
  let before = t.last_exec in
  drain ();
  (* A fetch round covers a bounded range; if checkpoint evidence says we
     are still behind, immediately ask for the next stretch. *)
  if t.last_exec > before then begin
    let still_behind =
      Int_map.exists
        (fun seq entries ->
          seq > t.last_exec && List.length entries >= t.cfg.Config.f + 1)
        t.checkpoints
    in
    if still_behind then begin
      t.fetching <- false;
      start_fetch t
    end
  end

(* ---------- dispatch ---------- *)

let extract_prepare_signature envelope =
  (* envelope = Wire{body, signature}; we need the signature to stash in
     prepared-certificates. *)
  match
    Bp_codec.Wire.decode envelope (fun d ->
        let _body = Bp_codec.Wire.read_string d in
        Bp_codec.Wire.read_string d)
  with
  | Ok s -> s
  | Error _ -> ""

let on_envelope t ~src:_ envelope =
  if not t.stopped then
    match Msg.verify_envelope ?cache:t.cache t.cfg envelope with
    | Error e -> Log.debug (fun m -> m "pbft %d: rejected envelope: %s" t.id e)
    | Ok body -> (
        match body with
        | Msg.Request r -> handle_request t ~envelope r
        | Msg.Pre_prepare { view; seq; digest; batch } ->
            handle_pre_prepare t ~view ~seq ~digest ~batch
        | Msg.Prepare { view; seq; digest; replica } ->
            handle_prepare t ~view ~seq ~digest ~replica
              ~signature:(extract_prepare_signature envelope)
        | Msg.Commit { view; seq; digest; replica } ->
            handle_commit t ~view ~seq ~digest ~replica
        | Msg.Reply _ -> () (* replicas ignore replies *)
        | Msg.Checkpoint { seq; state_digest; replica } ->
            handle_checkpoint t ~seq ~state_digest ~replica
        | Msg.View_change ({ new_view; vc_replica = replica; _ } as vc) ->
            if new_view > t.view then begin
              record_view_change t new_view replica envelope;
              (* Liveness rule: join a view change supported by f+1. *)
              let support =
                List.length
                  (Option.value ~default:[] (Int_map.find_opt new_view t.view_changes))
              in
              ignore vc;
              if support >= t.cfg.Config.f + 1 then begin
                match t.status with
                | View_changing v when v >= new_view -> ()
                | _ -> move_to_view t new_view
              end
            end
        | Msg.New_view { view; view_change_envelopes; batches; replica } ->
            if
              view > t.view
              && Config.primary_of_view t.cfg view = replica
              && replica <> t.id
            then begin
              match compute_new_view_batches ?cache:t.cache t.cfg view_change_envelopes with
              | Some expected when batches_equal expected batches ->
                  enter_new_view t view batches
              | _ ->
                  Log.debug (fun m -> m "pbft %d: invalid new-view from %d" t.id replica)
            end
        | Msg.Fetch { from_seq; replica } -> handle_fetch t ~from_seq ~replica
        | Msg.Fetch_reply { batches; replica } ->
            handle_fetch_reply t ~batches ~replica)

let create ?cache transport cfg ~id ~execute () =
  let engine = Network.engine (Bp_net.Transport.network transport) in
  let t =
    {
      cfg;
      id;
      transport;
      engine;
      cache;
      batch_memo = Bp_crypto.Verify_cache.memo ~capacity:16 ();
      execute;
      on_executed = (fun ~seq:_ _ -> ());
      verifier = (fun ~kind:_ ~op:_ -> true);
      preverify = (fun _ -> None);
      view = 0;
      status = Normal;
      next_seq = 1;
      slots = Int_map.empty;
      low_watermark = 0;
      last_exec = 0;
      chain = Bp_crypto.Sha256.digest "pbft-genesis";
      queue = Queue.create ();
      queued_keys = Hashtbl.create 64;
      hold_timer = None;
      cut_forced = false;
      batches_cut = 0;
      ops_proposed = 0;
      window_stalls = 0;
      hold_deferrals = 0;
      pipeline = 0;
      occ_sum = 0;
      occ_samples = 0;
      last_reply = Hashtbl.create 32;
      timers = Hashtbl.create 32;
      checkpoints = Int_map.empty;
      own_checkpoints = Int_map.empty;
      view_changes = Int_map.empty;
      vc_timer = None;
      archive = Hashtbl.create 128;
      fetch_votes = Hashtbl.create 32;
      fetching = false;
      stopped = false;
      suppress_commits = false;
      verify_busy = Time.zero;
    }
  in
  (* Sequence 0 is a virtual, pre-executed genesis slot. *)
  t.own_checkpoints <- Int_map.add 0 t.chain t.own_checkpoints;
  Bp_net.Transport.set_handler transport ~tag:cfg.Config.tag (fun ~src payload ->
      on_envelope t ~src payload);
  t

let stop t =
  t.stopped <- true;
  (* Shutdown path: cancellation order cannot affect protocol state. *)
  (Hashtbl.iter (fun _ timer -> Engine.cancel timer) t.timers
  [@bplint.allow "R2-hiter"]);
  Hashtbl.reset t.timers;
  (match t.vc_timer with Some timer -> Engine.cancel timer | None -> ());
  t.vc_timer <- None;
  (match t.hold_timer with Some timer -> Engine.cancel timer | None -> ());
  t.hold_timer <- None;
  Bp_net.Transport.clear_handler t.transport ~tag:t.cfg.Config.tag
