(** Static configuration of one PBFT cluster (a Blockplane unit, or a
    geo-distributed baseline deployment). *)

type t = {
  nodes : Bp_sim.Addr.t array;  (** 3f+1 replicas; replica id = index *)
  f : int;
  keystore : Bp_crypto.Signer.t;
  tag : string;  (** transport tag — isolates clusters sharing a network *)
  batch_max : int;  (** max requests folded into one pre-prepare *)
  batch_min_fill : int;
      (** adaptive batch-cut policy: the primary only cuts a batch once
          this many requests are queued (or the hold timer below
          expires). 1 (the default) is the seed's cut-on-any-signal
          policy — a batch forms whenever a pipeline slot frees and any
          request waits, which at deep pipelines degrades into streams
          of tiny batches under open-loop load. *)
  batch_hold : Bp_sim.Time.t;
      (** upper bound on how long a queued request may wait for
          [batch_min_fill] company before the primary cuts the batch
          anyway. [Time.zero] (the default, required when
          [batch_min_fill = 1]) disables the timer: cuts are driven
          purely by fill and slot availability. *)
  request_timeout : Bp_sim.Time.t;  (** view-change trigger *)
  checkpoint_interval : int;  (** stable-checkpoint cadence, in sequences *)
  watermark_window : int;  (** high watermark = low + window *)
  max_in_flight : int;
      (** pipeline depth: how many sequence numbers the primary may have
          simultaneously in the pre-prepare/prepare/commit phases. 1
          reproduces classic stop-and-wait batching; clamped to
          [watermark_window]. *)
  verify_cost : Bp_sim.Time.t;
      (** modeled simulated-time cost of verifying one signature on one
          core. [Time.zero] (the default) disables the model entirely —
          the seed behaviour, where crypto is free in simulated time.
          When positive, each slot books
          [ceil(units / verify_jobs) * verify_cost] on the replica's
          single verification resource (units = batch size + 2f proof
          signatures) and the slot's commit vote waits for it. Used by
          the ablation-pipeline / ablation-verify experiments to study
          how parallel verification interacts with pipelining. *)
  verify_jobs : int;
      (** modeled verification parallelism dividing [verify_cost]
          charges (default 1). Irrelevant while [verify_cost] is zero. *)
  extra_verify_units : string -> int;
      (** additional verification units a request op carries beyond its
          own client signature — e.g. the fi+1-proof bundle embedded in
          a Blockplane [Recv] record, which every replica must check
          before voting. Summed over the batch and added to the
          [verify_cost] charge. Default [fun _ -> 0]: batch entries cost
          one unit each, the seed model. Irrelevant while [verify_cost]
          is zero. *)
}

val make :
  nodes:Bp_sim.Addr.t array ->
  keystore:Bp_crypto.Signer.t ->
  ?tag:string ->
  ?batch_max:int ->
  ?batch_min_fill:int ->
  ?batch_hold:Bp_sim.Time.t ->
  ?request_timeout:Bp_sim.Time.t ->
  ?checkpoint_interval:int ->
  ?watermark_window:int ->
  ?max_in_flight:int ->
  ?verify_cost:Bp_sim.Time.t ->
  ?verify_jobs:int ->
  ?extra_verify_units:(string -> int) ->
  unit ->
  t
(** [f] is derived as [(n-1)/3]; requires [n = 3f+1 >= 4]. Registers every
    node identity (and the [tag]-derived client identities are registered
    lazily by {!identity}). Defaults: tag ["pbft"], batch 64 requests,
    request timeout 500 ms, checkpoints every 32, window 128, pipeline
    depth 8.

    @raise Invalid_argument if [n] is not of the form [3f+1 >= 4], if any
    of [batch_max], [checkpoint_interval], [watermark_window] or
    [max_in_flight] is non-positive, if [batch_min_fill] falls outside
    [1, batch_max], if [batch_hold] is negative, if
    [batch_min_fill > 1] without a positive [batch_hold] (the tail of a
    workload could then never form a batch), or if
    [checkpoint_interval > watermark_window] (the window could then never
    contain a stable checkpoint and the protocol would wedge once it
    fills). [max_in_flight] larger than [watermark_window] is clamped to
    the window rather than rejected — the window is the hard bound on
    concurrently-open slots. *)

val n : t -> int
val quorum : t -> int
(** 2f+1. *)

val primary_of_view : t -> int -> int
(** Round-robin: view mod n. *)

val identity : t -> Bp_sim.Addr.t -> string
(** Signing identity for an address within this cluster; registers it in
    the keystore on first use (clients as well as replicas). *)

val replica_id : t -> Bp_sim.Addr.t -> int option
(** Index of a replica address, [None] for clients/outsiders. *)
