(** A PBFT replica (Castro & Liskov, OSDI'99) with the Blockplane
    modifications of §IV-B.

    Normal case: the view's primary batches client requests and drives
    pre-prepare / prepare / commit; a request executes once the replica is
    committed-local and all earlier sequences have executed. Replies go
    directly to the client, which waits for f+1 matching ones.

    Blockplane modifications:
    - every request carries a record-type annotation ({!Msg.request.kind});
    - after becoming *prepared* and before broadcasting its [Commit] vote,
      a replica runs the registered verification routine on every request
      of the batch and withholds the vote if any fails — so fewer than
      2f+1 honest votes assemble for an invalid state transition.

    Also implemented: stable checkpoints with watermarks and garbage
    collection, and view changes (with prepared-certificates carried in
    the view-change messages, so a new primary re-proposes exactly the
    possibly-committed batches).

    The primary runs a windowed pipeline: up to
    {!Config.t.max_in_flight} sequence numbers may be in the
    pre-prepare/prepare/commit phases at once (never beyond the
    watermark window). Slots may commit out of order; execution — and
    therefore the hash chain and every checkpoint digest — stays
    strictly in sequence order at any depth. Depth 1 is the classic
    stop-and-wait primary. *)

type t

exception Invariant_violation of string
(** Raised when local protocol state contradicts an invariant the replica
    itself is responsible for (e.g. a prepared slot with no digest). This
    is never raised on byzantine *input* — malformed or lying messages are
    dropped — only on impossible local states, carrying the replica id and
    slot coordinates. *)

val create :
  ?cache:Bp_crypto.Verify_cache.t ->
  Bp_net.Transport.t ->
  Config.t ->
  id:int ->
  execute:(seq:int -> Msg.request -> string) ->
  unit ->
  t
(** [execute] is the deterministic application upcall; it runs exactly
    once per request, in global sequence order, on every correct replica;
    its return value is the client-visible result.

    [cache] memoizes signature verdicts and batch digests for this
    replica. Purely a performance knob: protocol outputs are bit-identical
    with or without it (see {!Msg}). *)

val id : t -> int
val view : t -> int
val is_primary : t -> bool
val last_executed : t -> int
val low_watermark : t -> int
val exec_chain : t -> string
(** Hash chain over executed batches — two replicas executed the same
    prefix iff their chains agree. Also the checkpoint state digest. *)

val pipeline_now : t -> int
(** Slots currently in the pre-prepare/prepare/commit phases on this
    replica (digest assigned, not yet committed). *)

val pipeline_occupancy : t -> float
(** Mean pipeline depth sampled at each slot entry — 1.0 exactly for a
    stop-and-wait run, approaching [max_in_flight] when the pipeline is
    kept full. 0.0 if no slot ever entered. *)

val occupancy_samples : t -> int
(** Number of samples behind {!pipeline_occupancy} (= slots that entered
    the pipeline on this replica). *)

val open_slot_count : t -> int
(** Slots currently tracked between the watermarks, including the
    out-of-order commit buffer; bounded by the watermark window plus
    checkpoint lag. *)

val archive_size : t -> int
(** Executed batches retained for state transfer (bounded GC horizon). *)

val queue_depth : t -> int
(** Requests queued at this replica awaiting batch formation (only ever
    non-zero on a primary). *)

type batch_stats = {
  batches_cut : int;  (** pre-prepares this primary proposed *)
  ops_proposed : int;
      (** total requests across those batches; [ops_proposed /
          batches_cut] is the mean batch fill — the quantity the
          adaptive-cut policy knobs exist to defend under load *)
  window_stalls : int;
      (** cut attempts that found a free pipeline slot and waiting
          requests but were blocked by the watermark window (progress
          gated on the next stable checkpoint) *)
  hold_deferrals : int;
      (** cuts deferred because the queue was below
          [Config.batch_min_fill] (the hold timer bounds the wait) *)
}

val batch_stats : t -> batch_stats
(** Batch-formation telemetry since creation; all zero on backups. *)

val set_verifier : t -> (kind:int -> op:string -> bool) -> unit
(** Install the Blockplane verification routine (default: accept all). *)

val set_preverifier : t -> (Msg.request list -> (unit -> unit) option) -> unit
(** Install the asynchronous verification prefetch hook (default: none).
    When a pre-prepare is accepted for a slot that is {e not} next to
    execute, the replica calls the hook with the batch; the hook may
    submit whatever crypto the verification routines will need (e.g. a
    [Bp_crypto.Verify_batch] of the transmission-record signature sets)
    and return the join closure, which the replica invokes exactly once
    before judging the slot in the prepared check. Because the verdict
    for a non-head slot is provisional anyway, this only warms the
    per-node cache — verdicts are identical whether or not a hook is
    installed, at any [--verify-jobs]. *)

val set_on_executed : t -> (seq:int -> Msg.request list -> unit) -> unit
(** Batch-level notification after execution (Blockplane's Local Log
    append hook). *)

val stop : t -> unit
(** Detach from the transport and cancel timers (simulated host death;
    distinct from a network-level crash, which keeps state). *)

val suppress_commit_votes : t -> bool -> unit
(** Byzantine test knob: a faulty replica that stays silent in the commit
    phase. *)
