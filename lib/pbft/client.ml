open Bp_sim

module Int_map = Map.Make (Int)

type pending = {
  request : Msg.request;
  mutable replies : (int * string) list; (* replica id, result *)
  mutable done_ : bool;
  mutable timer : Engine.timer option;
  on_result : string -> unit;
}

type t = {
  cfg : Config.t;
  transport : Bp_net.Transport.t;
  engine : Engine.t;
  cache : Bp_crypto.Verify_cache.t option;
  mutable next_ts : int;
  mutable view_estimate : int;
  mutable pending : pending Int_map.t; (* keyed by ts *)
}

let in_flight t = Int_map.cardinal t.pending

let send_to_primary t request =
  let primary = Config.primary_of_view t.cfg t.view_estimate in
  Bp_net.Transport.send t.transport ~dst:t.cfg.Config.nodes.(primary)
    ~tag:t.cfg.Config.tag
    (Msg.seal ?cache:t.cache t.cfg
       ~sender:(Bp_net.Transport.addr t.transport)
       (Msg.Request request))

let broadcast_request t request =
  let sealed =
    Msg.seal ?cache:t.cache t.cfg
      ~sender:(Bp_net.Transport.addr t.transport)
      (Msg.Request request)
  in
  Bp_net.Transport.broadcast t.transport ~dsts:t.cfg.Config.nodes
    ~tag:t.cfg.Config.tag sealed

let rec arm_timer t p =
  p.timer <-
    Some
      (Engine.schedule t.engine ~after:(Time.scale t.cfg.Config.request_timeout 1.5)
         (fun () ->
           if not p.done_ then begin
             (* Suspect the primary: tell everyone (backups will forward
                and start their own timers, per PBFT). *)
             broadcast_request t p.request;
             arm_timer t p
           end))

let on_reply t body =
  match body with
  | Msg.Reply { view; ts; client; replica; result }
    when Addr.equal client (Bp_net.Transport.addr t.transport) -> (
      t.view_estimate <- Stdlib.max t.view_estimate view;
      match Int_map.find_opt ts t.pending with
      | Some p when not p.done_ ->
          if not (List.mem_assoc replica p.replies) then begin
            p.replies <- (replica, result) :: p.replies;
            let matching =
              List.length
                (List.filter (fun (_, r) -> String.equal r result) p.replies)
            in
            if matching >= t.cfg.Config.f + 1 then begin
              p.done_ <- true;
              (match p.timer with Some timer -> Engine.cancel timer | None -> ());
              t.pending <- Int_map.remove ts t.pending;
              p.on_result result
            end
          end
      | _ -> ())
  | _ -> ()

let create ?cache transport cfg =
  let engine = Network.engine (Bp_net.Transport.network transport) in
  let t =
    {
      cfg;
      transport;
      engine;
      cache;
      next_ts = 1;
      view_estimate = 0;
      pending = Int_map.empty;
    }
  in
  Bp_net.Transport.set_handler transport ~tag:(cfg.Config.tag ^ ".reply")
    (fun ~src:_ payload ->
      match Msg.verify_envelope ?cache cfg payload with
      | Ok body -> on_reply t body
      | Error _ -> ());
  t

let submit t ?(kind = 0) op ~on_result =
  let ts = t.next_ts in
  t.next_ts <- ts + 1;
  let request =
    Msg.make_request ?cache:t.cache t.cfg
      ~client:(Bp_net.Transport.addr t.transport)
      ~ts ~kind ~op
  in
  let p = { request; replies = []; done_ = false; timer = None; on_result } in
  t.pending <- Int_map.add ts p t.pending;
  send_to_primary t request;
  arm_timer t p
