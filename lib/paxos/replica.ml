open Bp_sim

let log = Logs.Src.create "bp.paxos" ~doc:"Paxos replica"

module Log = (val Logs.src_log log : Logs.LOG)
module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

exception Conflicting_choice of int * string * string

type config = { nodes : Addr.t array; election_timeout : Time.t }

type prepare_state = {
  pballot : Ballot.t;
  mutable votes : Int_set.t;
  mutable seen_accepted : (Ballot.t * string) Int_map.t;
  mutable finished : bool;
  on_elected : unit -> unit;
}

type proposal = {
  prop_ballot : Ballot.t;
  value : string;
  mutable acks : Int_set.t;
  mutable committed : bool;
  on_commit : int -> unit;
}

type t = {
  cfg : config;
  id : int;
  transport : Bp_net.Transport.t;
  engine : Engine.t;
  rng : Bp_util.Rng.t;
  auto_retry : bool;
  (* acceptor state; an ordered map so recovery scans are deterministic *)
  mutable promised : Ballot.t;
  mutable accepted : (Ballot.t * string) Int_map.t;
  (* learner state *)
  chosen : (int, string) Hashtbl.t;
  mutable max_chosen : int;
  on_learn : int -> string -> unit;
  (* proposer state *)
  mutable ballot : Ballot.t;
  mutable leading : bool;
  mutable next_instance : int;
  mutable prepare : prepare_state option;
  proposals : (int, proposal) Hashtbl.t;
}

let id t = t.id
let is_leader t = t.leading
let majority t = (Array.length t.cfg.nodes / 2) + 1

let node_of_addr t addr =
  let found = ref (-1) in
  Array.iteri (fun i a -> if Addr.equal a addr then found := i) t.cfg.nodes;
  !found

let send t ~dst_id m =
  Bp_net.Transport.send t.transport ~dst:t.cfg.nodes.(dst_id) ~tag:Msg.tag
    (Msg.encode m)

let broadcast t m =
  (* Encode once for the whole cluster, not once per acceptor. *)
  Bp_net.Transport.broadcast t.transport ~dsts:t.cfg.nodes ~tag:Msg.tag
    (Msg.encode m)

let learn t instance value =
  match Hashtbl.find_opt t.chosen instance with
  | Some existing ->
      if not (String.equal existing value) then
        raise (Conflicting_choice (instance, existing, value))
  | None ->
      Hashtbl.replace t.chosen instance value;
      t.max_chosen <- Stdlib.max t.max_chosen instance;
      t.on_learn instance value

(* ---------- acceptor ---------- *)

let on_prepare t ~src (ballot : Ballot.t) from_instance =
  if Ballot.(ballot >= t.promised) then begin
    t.promised <- ballot;
    let accepted =
      Int_map.fold
        (fun instance (b, v) acc ->
          if instance >= from_instance then
            { Msg.instance; ballot = b; value = v } :: acc
          else acc)
        t.accepted []
    in
    send t ~dst_id:src (Msg.Promise { ballot; ok = true; accepted })
  end
  else send t ~dst_id:src (Msg.Promise { ballot; ok = false; accepted = [] })

let on_propose t ~src ballot instance value =
  if Ballot.(ballot >= t.promised) then begin
    t.promised <- ballot;
    t.accepted <- Int_map.add instance (ballot, value) t.accepted;
    send t ~dst_id:src (Msg.Accepted { ballot; instance; ok = true })
  end
  else send t ~dst_id:src (Msg.Accepted { ballot; instance; ok = false })

(* ---------- proposer ---------- *)

let start_proposal t instance value on_commit =
  let p =
    {
      prop_ballot = t.ballot;
      value;
      acks = Int_set.empty;
      committed = false;
      on_commit;
    }
  in
  Hashtbl.replace t.proposals instance p;
  broadcast t (Msg.Propose { ballot = t.ballot; instance; value })

let propose t value ~on_commit =
  if not t.leading then failwith "Paxos.propose: not the leader";
  let instance = t.next_instance in
  t.next_instance <- instance + 1;
  start_proposal t instance value on_commit

let rec try_lead_ballot t ballot ~on_elected =
  t.ballot <- ballot;
  let st =
    {
      pballot = ballot;
      votes = Int_set.empty;
      seen_accepted = Int_map.empty;
      finished = false;
      on_elected;
    }
  in
  t.prepare <- Some st;
  broadcast t (Msg.Prepare { ballot; from_instance = 0 });
  if t.auto_retry then begin
    let backoff =
      Time.add t.cfg.election_timeout
        (Time.of_ms (Bp_util.Rng.float t.rng (Time.to_ms t.cfg.election_timeout)))
    in
    ignore
      (Engine.schedule t.engine ~after:backoff (fun () ->
           if (not st.finished) && not t.leading then
             try_lead_ballot t
               (Ballot.next (Ballot.next t.promised ~node:t.id) ~node:t.id)
               ~on_elected))
  end

let try_lead t ~on_elected =
  let base = if Ballot.(t.promised > t.ballot) then t.promised else t.ballot in
  try_lead_ballot t (Ballot.next base ~node:t.id) ~on_elected

let step_down t =
  if t.leading then Log.debug (fun m -> m "paxos %d: stepping down" t.id);
  t.leading <- false

let on_promise t ~src ballot ok accepted_entries =
  match t.prepare with
  | Some st when Ballot.equal st.pballot ballot && not st.finished ->
      if not ok then begin
        st.finished <- true;
        t.prepare <- None
      end
      else begin
        st.votes <- Int_set.add src st.votes;
        List.iter
          (fun { Msg.instance; ballot = b; value } ->
            let better =
              match Int_map.find_opt instance st.seen_accepted with
              | None -> true
              | Some (b', _) -> Ballot.(b > b')
            in
            if better then
              st.seen_accepted <- Int_map.add instance (b, value) st.seen_accepted)
          accepted_entries;
        if Int_set.cardinal st.votes >= majority t then begin
          st.finished <- true;
          t.prepare <- None;
          t.leading <- true;
          (* Re-propose previously accepted values (paxos recovery rule:
             highest-ballot accepted value per instance wins). *)
          let max_inst = ref (-1) in
          Int_map.iter
            (fun instance (_, value) ->
              max_inst := Stdlib.max !max_inst instance;
              if not (Hashtbl.mem t.chosen instance) then
                start_proposal t instance value ignore)
            st.seen_accepted;
          max_inst := Stdlib.max !max_inst t.max_chosen;
          t.next_instance <- Stdlib.max t.next_instance (!max_inst + 1);
          st.on_elected ()
        end
      end
  | _ -> ()

let on_accepted t ~src ballot instance ok =
  match Hashtbl.find_opt t.proposals instance with
  | Some p when Ballot.equal p.prop_ballot ballot && not p.committed ->
      if not ok then begin
        (* A higher ballot exists: we are no longer leader (Algorithm 3
           sets l = false on a failed majority). *)
        Hashtbl.remove t.proposals instance;
        step_down t
      end
      else begin
        p.acks <- Int_set.add src p.acks;
        if Int_set.cardinal p.acks >= majority t then begin
          p.committed <- true;
          learn t instance p.value;
          p.on_commit instance;
          broadcast t (Msg.Learn { instance; value = p.value })
        end
      end
  | _ -> ()

let on_message t ~src payload =
  let src_id = node_of_addr t src in
  if src_id >= 0 then
    match Msg.decode payload with
    | Error e -> Log.debug (fun m -> m "paxos %d: bad message: %s" t.id e)
    | Ok (Msg.Prepare { ballot; from_instance }) ->
        on_prepare t ~src:src_id ballot from_instance
    | Ok (Msg.Promise { ballot; ok; accepted }) ->
        on_promise t ~src:src_id ballot ok accepted
    | Ok (Msg.Propose { ballot; instance; value }) ->
        on_propose t ~src:src_id ballot instance value
    | Ok (Msg.Accepted { ballot; instance; ok }) ->
        on_accepted t ~src:src_id ballot instance ok
    | Ok (Msg.Learn { instance; value }) -> learn t instance value

let create ?(auto_retry = false) transport cfg ~id ~on_learn =
  let engine = Network.engine (Bp_net.Transport.network transport) in
  let t =
    {
      cfg;
      id;
      transport;
      engine;
      rng = Bp_util.Rng.split (Engine.rng engine);
      auto_retry;
      promised = Ballot.zero;
      accepted = Int_map.empty;
      chosen = Hashtbl.create 64;
      max_chosen = -1;
      on_learn;
      ballot = Ballot.zero;
      leading = false;
      next_instance = 0;
      prepare = None;
      proposals = Hashtbl.create 16;
    }
  in
  Bp_net.Transport.set_handler transport ~tag:Msg.tag (fun ~src payload ->
      on_message t ~src payload);
  t

let chosen t instance = Hashtbl.find_opt t.chosen instance
let chosen_count t = Hashtbl.length t.chosen
