open Bp_sim

let log = Logs.Src.create "bp.net" ~doc:"Blockplane transport"

module Log = (val Logs.src_log log : Logs.LOG)

module Int_map = Map.Make (Int)

type packet =
  | Unreliable of { tag : string; payload : string }
  | Data of { seq : int; tag : string; payload : string }
  | Ack of { next_expected : int }

let encode_packet_into e p =
  match p with
  | Unreliable { tag; payload } ->
      Bp_codec.Wire.u8 e 0;
      Bp_codec.Wire.string e tag;
      Bp_codec.Wire.string e payload
  | Data { seq; tag; payload } ->
      Bp_codec.Wire.u8 e 1;
      Bp_codec.Wire.varint e seq;
      Bp_codec.Wire.string e tag;
      Bp_codec.Wire.string e payload
  | Ack { next_expected } ->
      Bp_codec.Wire.u8 e 2;
      Bp_codec.Wire.varint e next_expected

let packet_reader d =
  match Bp_codec.Wire.read_u8 d with
  | 0 ->
      let tag = Bp_codec.Wire.read_string d in
      let payload = Bp_codec.Wire.read_string d in
      Unreliable { tag; payload }
  | 1 ->
      let seq = Bp_codec.Wire.read_varint d in
      let tag = Bp_codec.Wire.read_string d in
      let payload = Bp_codec.Wire.read_string d in
      Data { seq; tag; payload }
  | 2 -> Ack { next_expected = Bp_codec.Wire.read_varint d }
  | n -> raise (Bp_codec.Wire.Malformed (Printf.sprintf "packet kind %d" n))

(* Decode-once fan-out: when one sealed frame is sent to many recipients,
   the sender attaches its own decoded view of the packet. A receiver may
   use it only after proving the hint describes the very bytes it was
   handed — physical identity, so a corrupted (rewritten) or unrelated
   payload can never borrow a hint. *)
type Network.hint += Decoded of { frame : string; packet : packet }

type peer = {
  remote : Addr.t;
  mutable next_send_seq : int;
  mutable unacked : (string * string) Int_map.t; (* seq -> tag, payload *)
  mutable retransmit : Engine.timer option;
  mutable next_recv_seq : int;
  mutable reorder_buffer : (string * string) Int_map.t;
  mutable send_times : Time.t Int_map.t; (* first-transmission times (Karn) *)
  mutable srtt : Time.t option; (* smoothed round-trip estimate *)
  mutable backoff : int; (* exponential RTO backoff (resets on a sample) *)
}

type t = {
  net : Network.t;
  engine : Engine.t;
  self : Addr.t;
  handlers : (string, src:Addr.t -> string -> unit) Hashtbl.t;
  peers : peer Addr.Tbl.t;
  scratch : Bp_codec.Wire.encoder; (* frame assembly (Frame.seal_with) *)
  mutable retransmissions : int;
  mutable discarded : int;
  mutable stopped : bool;
}

let addr t = t.self
let network t = t.net

let peer_of t remote =
  match Addr.Tbl.find_opt t.peers remote with
  | Some p -> p
  | None ->
      let p =
        {
          remote;
          next_send_seq = 0;
          unacked = Int_map.empty;
          retransmit = None;
          next_recv_seq = 0;
          reorder_buffer = Int_map.empty;
          send_times = Int_map.empty;
          srtt = None;
          backoff = 0;
        }
      in
      Addr.Tbl.add t.peers remote p;
      p

(* Adaptive retransmission timeout: the static floor covers propagation,
   while the smoothed RTT sample absorbs NIC serialization of large
   payloads (a 2 MB batch ahead of the ack must not trigger a spurious
   retransmission storm). *)
let rto t p =
  let topo = Network.topology t.net in
  let rtt = Topology.rtt topo t.self.Addr.dc p.remote.Addr.dc in
  let static = Time.add (Time.scale rtt 2.5) (Time.of_ms 5.0) in
  let base =
    match p.srtt with
    | None -> static
    | Some srtt -> Time.max static (Time.add (Time.scale srtt 3.0) (Time.of_ms 2.0))
  in
  (* Exponential backoff escapes the Karn deadlock: without it, a segment
     whose transfer time exceeds the static RTO would be retransmitted
     forever and never yield an RTT sample. *)
  Time.scale base (Float.of_int (1 lsl Stdlib.min p.backoff 6))

(* The packet is serialized straight into the frame inside the endpoint's
   scratch encoder (Frame.seal_with): one exactly-sized string allocation
   per send, no intermediate payload copy — the 2 MB fig4 batches pay one
   blit instead of two. *)
let raw_send t ~dst packet =
  let frame =
    Bp_codec.Frame.seal_with t.scratch (fun e -> encode_packet_into e packet)
  in
  Network.send t.net ~src:t.self ~dst ~hint:(Decoded { frame; packet }) frame

let rec arm_retransmit t p =
  match p.retransmit with
  | Some _ -> ()
  | None ->
      if not t.stopped then
        let timer =
          Engine.schedule t.engine ~after:(rto t p) (fun () ->
              p.retransmit <- None;
              if not (Int_map.is_empty p.unacked) then begin
                p.backoff <- p.backoff + 1;
                Int_map.iter
                  (fun seq (tag, payload) ->
                    t.retransmissions <- t.retransmissions + 1;
                    (* Karn: retransmitted segments never produce RTT
                       samples. *)
                    p.send_times <- Int_map.remove seq p.send_times;
                    raw_send t ~dst:p.remote (Data { seq; tag; payload }))
                  p.unacked;
                arm_retransmit t p
              end)
        in
        p.retransmit <- Some timer

let dispatch t ~src ~tag payload =
  match Hashtbl.find_opt t.handlers tag with
  | Some h -> h ~src payload
  | None ->
      Log.debug (fun m ->
          m "%s: no handler for tag %S (from %s)" (Addr.to_string t.self) tag
            (Addr.to_string src))

let handle_data t p ~src ~seq ~tag payload =
  if seq < p.next_recv_seq then
    (* Duplicate of something already delivered: just re-ack. *)
    raw_send t ~dst:src (Ack { next_expected = p.next_recv_seq })
  else begin
    if not (Int_map.mem seq p.reorder_buffer) then
      p.reorder_buffer <- Int_map.add seq (tag, payload) p.reorder_buffer;
    (* Drain any in-order prefix. *)
    let rec drain () =
      match Int_map.find_opt p.next_recv_seq p.reorder_buffer with
      | Some (tag, payload) ->
          p.reorder_buffer <- Int_map.remove p.next_recv_seq p.reorder_buffer;
          p.next_recv_seq <- p.next_recv_seq + 1;
          dispatch t ~src ~tag payload;
          drain ()
      | None -> ()
    in
    drain ();
    raw_send t ~dst:src (Ack { next_expected = p.next_recv_seq })
  end

let handle_ack t p ~next_expected =
  (* RTT samples from first-transmission times of newly acked segments. *)
  let now = Engine.now t.engine in
  Int_map.iter
    (fun seq sent_at ->
      if seq < next_expected then begin
        let sample = Time.diff now sent_at in
        let smoothed =
          match p.srtt with
          | None -> sample
          | Some srtt ->
              Time.of_ns (((7 * Time.to_ns srtt) + Time.to_ns sample) / 8)
        in
        p.srtt <- Some smoothed;
        p.backoff <- 0
      end)
    p.send_times;
  p.send_times <- Int_map.filter (fun seq _ -> seq >= next_expected) p.send_times;
  p.unacked <- Int_map.filter (fun seq _ -> seq >= next_expected) p.unacked
(* The retransmit timer stays armed; it self-disarms when it finds the
   unacked map empty. *)

let handle_packet t ~src packet =
  match packet with
  | Unreliable { tag; payload } -> dispatch t ~src ~tag payload
  | Data { seq; tag; payload } ->
      handle_data t (peer_of t src) ~src ~seq ~tag payload
  | Ack { next_expected } -> handle_ack t (peer_of t src) ~next_expected

let on_frame t ~src ~hint frame =
  match hint with
  | Some (Decoded h) when h.frame == frame ->
      (* The hint describes these exact bytes (physical identity), so the
         checksum and the re-decode are provably redundant. Corrupted
         deliveries never take this path: fault injection rewrites the
         payload string and drops the hint. *)
      handle_packet t ~src h.packet
  | _ -> (
      (* Zero-copy slow path: validate the checksum in place, then decode
         the packet from a window of the frame — no payload-sized
         [String.sub] before the fields are read. *)
      match Bp_codec.Frame.unseal_sub frame ~off:0 with
      | Error (`Corrupt | `Malformed) -> t.discarded <- t.discarded + 1
      | Ok (off, len) ->
          if off + len <> String.length frame then t.discarded <- t.discarded + 1
          else (
            match Bp_codec.Wire.decode_sub frame ~off ~len packet_reader with
            | Error _ -> t.discarded <- t.discarded + 1
            | Ok packet -> handle_packet t ~src packet))

let create net self =
  let t =
    {
      net;
      engine = Network.engine net;
      self;
      handlers = Hashtbl.create 8;
      peers = Addr.Tbl.create 16;
      scratch = Bp_codec.Wire.encoder ~size_hint:512 ();
      retransmissions = 0;
      discarded = 0;
      stopped = false;
    }
  in
  Network.register net self (fun ~src ~hint frame -> on_frame t ~src ~hint frame);
  t

let set_handler t ~tag handler = Hashtbl.replace t.handlers tag handler
let clear_handler t ~tag = Hashtbl.remove t.handlers tag

(* Loop-back: deliver asynchronously (keeping run-to-completion event
   semantics) without touching the network. *)
let loopback t ~tag payload =
  ignore
    (Engine.schedule t.engine ~after:Time.zero (fun () ->
         dispatch t ~src:t.self ~tag payload))

(* Register [seq] on the peer's reliable stream (send_times must be
   stamped before the packet departs so Karn's sample is conservative). *)
let reserve_seq t p ~tag payload =
  let seq = p.next_send_seq in
  p.next_send_seq <- seq + 1;
  p.unacked <- Int_map.add seq (tag, payload) p.unacked;
  p.send_times <- Int_map.add seq (Engine.now t.engine) p.send_times;
  seq

let send t ?(reliable = true) ~dst ~tag payload =
  if Addr.equal dst t.self then loopback t ~tag payload
  else if not reliable then raw_send t ~dst (Unreliable { tag; payload })
  else begin
    let p = peer_of t dst in
    let seq = reserve_seq t p ~tag payload in
    raw_send t ~dst (Data { seq; tag; payload });
    arm_retransmit t p
  end

(* Encode-once broadcast. The (tag, payload) suffix — all of the message
   body except the per-peer stream header — is serialized exactly once
   per broadcast; each destination then costs one small header write plus
   a blit into the frame, instead of a full re-serialization. Unreliable
   broadcasts share the entire sealed frame. Wire format and send order
   are identical to a loop of {!send}, so virtual-time results do not
   change. *)
let broadcast t ?(reliable = true) ~dsts ~tag payload =
  if Array.length dsts > 0 then begin
    let suffix =
      Bp_codec.Wire.encode
        ~size_hint:(String.length tag + String.length payload + 12)
        (fun e ->
          Bp_codec.Wire.string e tag;
          Bp_codec.Wire.string e payload)
    in
    (* One payload-sized CRC pass per broadcast: per-destination frames
       stitch the precomputed suffix checksum on with [Crc32.combine]
       instead of re-checksumming megabytes per destination. Skipped
       under [--no-cache] so the baseline stays honest. *)
    let combine = Bp_crypto.Verify_cache.enabled () in
    let suffix_crc = if combine then Bp_crypto.Crc32.string suffix else 0l in
    (* Per-destination assembly reuses the endpoint's scratch encoder and
       does not re-walk the message (not counted by Wire.encode_calls). *)
    let assemble header_kind seq =
      let write_header e =
        Bp_codec.Wire.u8 e header_kind;
        match seq with
        | Some s -> Bp_codec.Wire.varint e s
        | None -> ()
      in
      if combine then
        Bp_codec.Frame.seal_with_suffix t.scratch ~suffix ~suffix_crc
          write_header
      else
        Bp_codec.Frame.seal_with t.scratch (fun e ->
            write_header e;
            Bp_codec.Wire.fixed e suffix)
    in
    if not reliable then begin
      (* All recipients share one sealed frame and one decoded view. *)
      let shared = ref None in
      Array.iter
        (fun dst ->
          if Addr.equal dst t.self then loopback t ~tag payload
          else begin
            let frame, hint =
              match !shared with
              | Some fh -> fh
              | None ->
                  let frame = assemble 0 None in
                  let fh =
                    (frame, Decoded { frame; packet = Unreliable { tag; payload } })
                  in
                  shared := Some fh;
                  fh
            in
            Network.send t.net ~src:t.self ~dst ~hint frame
          end)
        dsts
    end
    else
      Array.iter
        (fun dst ->
          if Addr.equal dst t.self then loopback t ~tag payload
          else begin
            let p = peer_of t dst in
            let seq = reserve_seq t p ~tag payload in
            let frame = assemble 1 (Some seq) in
            Network.send t.net ~src:t.self ~dst
              ~hint:(Decoded { frame; packet = Data { seq; tag; payload } })
              frame;
            arm_retransmit t p
          end)
        dsts
  end

let stop t =
  t.stopped <- true;
  Addr.Tbl.iter
    (fun _ p ->
      (match p.retransmit with Some timer -> Engine.cancel timer | None -> ());
      p.retransmit <- None)
    t.peers

let stats t = (t.retransmissions, t.discarded)
