open Bp_sim

type peer_state = { mutable last_heard : Time.t; mutable suspect : bool }

type t = {
  transport : Transport.t;
  engine : Engine.t;
  peers : peer_state Addr.Tbl.t;
  timeout : Time.t;
  on_suspect : Addr.t -> unit;
  on_restore : Addr.t -> unit;
  mutable timers : Engine.timer list;
}

let ping_tag = "_hb.ping"
let pong_tag = "_hb.pong"

let serve transport =
  Transport.set_handler transport ~tag:ping_tag (fun ~src _ ->
      Transport.send transport ~reliable:false ~dst:src ~tag:pong_tag "")

let create transport ~peers ~period ~timeout ~on_suspect ?(on_restore = ignore) () =
  let engine = Network.engine (Transport.network transport) in
  let t =
    {
      transport;
      engine;
      peers = Addr.Tbl.create 8;
      timeout;
      on_suspect;
      on_restore;
      timers = [];
    }
  in
  let now = Engine.now engine in
  List.iter
    (fun p -> Addr.Tbl.replace t.peers p { last_heard = now; suspect = false })
    peers;
  serve transport;
  Transport.set_handler transport ~tag:pong_tag (fun ~src _ ->
      match Addr.Tbl.find_opt t.peers src with
      | None -> ()
      | Some st ->
          st.last_heard <- Engine.now engine;
          if st.suspect then begin
            st.suspect <- false;
            t.on_restore src
          end);
  let ping_timer =
    Engine.periodic engine ~every:period (fun () ->
        (* Collect in table-iteration order (matching the old per-peer
           send loop), then ping with one shared sealed frame. *)
        let dsts = ref [] in
        Addr.Tbl.iter (fun p _ -> dsts := p :: !dsts) t.peers;
        Transport.broadcast transport ~reliable:false
          ~dsts:(Array.of_list (List.rev !dsts))
          ~tag:ping_tag "")
  in
  let check_timer =
    Engine.periodic engine ~every:period (fun () ->
        let now = Engine.now engine in
        Addr.Tbl.iter
          (fun p st ->
            if (not st.suspect) && Time.(Time.diff now st.last_heard > t.timeout)
            then begin
              st.suspect <- true;
              t.on_suspect p
            end)
          t.peers)
  in
  t.timers <- [ ping_timer; check_timer ];
  t

let suspected t addr =
  match Addr.Tbl.find_opt t.peers addr with
  | Some st -> st.suspect
  | None -> false

let stop t =
  List.iter Engine.cancel t.timers;
  t.timers <- [];
  Transport.clear_handler t.transport ~tag:ping_tag;
  Transport.clear_handler t.transport ~tag:pong_tag
