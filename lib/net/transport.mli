(** Per-node transport endpoint over the lossy datagram network.

    Adds what the paper assumes from TCP (§III-B): corruption detection
    (CRC frames — corrupted packets are discarded), de-duplication,
    ordering and retransmission. Each pair of endpoints shares one
    reliable, FIFO byte stream; application messages are multiplexed on it
    by [tag], so a node can run PBFT, communication daemons and reserve
    probes over one connection, as separate handlers.

    An [unreliable] mode bypasses retransmission for traffic that tolerates
    loss (heartbeats). *)

type t

val create : Bp_sim.Network.t -> Bp_sim.Addr.t -> t
(** Registers the address on the network.
    @raise Invalid_argument if already registered. *)

val addr : t -> Bp_sim.Addr.t
val network : t -> Bp_sim.Network.t

val set_handler : t -> tag:string -> (src:Bp_sim.Addr.t -> string -> unit) -> unit
(** Replaces any previous handler for the tag. *)

val clear_handler : t -> tag:string -> unit

val send : t -> ?reliable:bool -> dst:Bp_sim.Addr.t -> tag:string -> string -> unit
(** [reliable] defaults to [true]. Reliable messages are delivered exactly
    once, in per-peer FIFO order, as long as both nodes stay up and the
    link is eventually non-lossy. Unreliable messages may be lost,
    duplicated (never corrupted — frames catch that) or reordered. *)

val broadcast :
  t -> ?reliable:bool -> dsts:Bp_sim.Addr.t array -> tag:string -> string -> unit
(** Semantically identical to calling {!send} for each destination in
    array order (self-destinations loop back), but the message body is
    serialized exactly once per broadcast: destinations share the encoded
    (tag, payload) suffix, and unreliable broadcasts share the entire
    sealed frame. Wire bytes and send order are unchanged, so simulated
    timings are identical to the send-loop equivalent. *)

val stop : t -> unit
(** Cancel all retransmission timers (used at controlled shutdown). *)

val stats : t -> int * int
(** (retransmissions, discarded corrupt/malformed frames). *)
