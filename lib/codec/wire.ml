(* The encoder is a growable Bytes buffer with an explicit length, not a
   [Buffer.t]: it can be reset and reused across messages (no allocation
   per message on steady-state paths) and created with a size hint so
   bulk encodes never reallocate mid-write. *)

type encoder = { mutable buf : Bytes.t; mutable len : int }

let encoder ?(size_hint = 128) () =
  { buf = Bytes.create (max 16 size_hint); len = 0 }

let reset e = e.len <- 0
let length e = e.len
let to_string e = Bytes.sub_string e.buf 0 e.len
let unsafe_bytes e = e.buf

let grow e needed =
  let cap = ref (2 * Bytes.length e.buf) in
  while e.len + needed > !cap do
    cap := 2 * !cap
  done;
  let nbuf = Bytes.create !cap in
  Bytes.blit e.buf 0 nbuf 0 e.len;
  e.buf <- nbuf

let[@inline] ensure e n = if e.len + n > Bytes.length e.buf then grow e n

let[@inline] add_char e c =
  ensure e 1;
  Bytes.unsafe_set e.buf e.len c;
  e.len <- e.len + 1

let add_string e s =
  let n = String.length s in
  ensure e n;
  Bytes.blit_string s 0 e.buf e.len n;
  e.len <- e.len + n

(* Serializations started through {!encode} / {!encode_with} — the
   entrypoints that walk a message structure. Per-destination packet
   assembly that merely prepends a header to already-encoded bytes does
   not count, which is exactly what lets tests assert the encode-once
   broadcast property. *)
let encode_calls_counter = ref 0

let encode_calls () = !encode_calls_counter

(* Writes [n] as an unsigned 63-bit LEB128 varint: negative inputs are
   reinterpreted as their 63-bit two's-complement bit pattern (at most
   9 bytes). Only {!zigzag} feeds it negatives. *)
let varint_raw buf n =
  let rec go n =
    if n >= 0 && n < 0x80 then add_char buf (Char.unsafe_chr n)
    else begin
      add_char buf (Char.unsafe_chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let varint buf n =
  if n < 0 then invalid_arg "Wire.varint: negative";
  varint_raw buf n

let zigzag buf n = varint_raw buf (n lsl 1 lxor (n asr (Sys.int_size - 1)))

let u8 buf n =
  if n < 0 || n > 255 then invalid_arg "Wire.u8: out of range";
  add_char buf (Char.unsafe_chr n)

let bool buf b = u8 buf (if b then 1 else 0)

let string buf s =
  varint buf (String.length s);
  add_string buf s

let fixed buf s = add_string buf s

let list buf enc xs =
  varint buf (List.length xs);
  List.iter enc xs

let option buf enc = function
  | None -> bool buf false
  | Some x ->
      bool buf true;
      enc x

(* The decoder reads through a Bytes view of the input (one bounds check
   against the cached length, then unsafe loads). [read_fixed] returns
   the original string without copying when the read spans the whole
   input — the bulk-payload case. *)
type decoder = { src : string; bytes : Bytes.t; len : int; mutable pos : int }

exception Malformed of string

let decoder src =
  { src; bytes = Bytes.unsafe_of_string src; len = String.length src; pos = 0 }

(* A window decoder shares the backing string: [len] is the window's end
   offset, so [remaining]/[at_end] confine every read to the window while
   reads index the original bytes directly — no [String.sub] up front. *)
let decoder_sub src ~off ~len =
  if off < 0 || len < 0 || off + len > String.length src then
    invalid_arg "Wire.decoder_sub";
  { src; bytes = Bytes.unsafe_of_string src; len = off + len; pos = off }

let remaining d = d.len - d.pos
let at_end d = d.pos >= d.len

let fail msg = raise (Malformed msg)

let read_u8 d =
  if d.pos >= d.len then fail "u8: end of input";
  let c = Char.code (Bytes.unsafe_get d.bytes d.pos) in
  d.pos <- d.pos + 1;
  c

(* Unsigned 63-bit counterpart of {!varint_raw}: the full native-int bit
   pattern, so the result may be negative (zigzag of a negative number).
   Valid encodings span at most 9 bytes; a 10th byte cannot contribute
   any bits to a 63-bit int and is rejected. *)
let read_varint_raw d =
  let rec go shift acc =
    let b = read_u8 d in
    if shift >= 63 then fail "varint: exceeds 10 bytes (overflows 63-bit int)"
    else begin
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    end
  in
  go 0 0

let read_varint d =
  let v = read_varint_raw d in
  if v < 0 then fail "varint: overflows non-negative int";
  v

let read_zigzag d =
  let m = read_varint_raw d in
  m lsr 1 lxor - (m land 1)

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> fail (Printf.sprintf "bool: invalid byte %d" n)

let read_fixed d n =
  if n < 0 || remaining d < n then fail "fixed: end of input";
  if n = d.len && d.pos = 0 && d.len = String.length d.src then begin
    (* The read is the entire input: hand back the original string. *)
    d.pos <- n;
    d.src
  end
  else begin
    let s = String.sub d.src d.pos n in
    d.pos <- d.pos + n;
    s
  end

let skip d n =
  if n < 0 || remaining d < n then fail "skip: end of input";
  d.pos <- d.pos + n

let read_string d =
  let n = read_varint d in
  read_fixed d n

let read_list d elt =
  let n = read_varint d in
  if n > remaining d then fail "list: length exceeds input";
  List.init n (fun _ -> elt d)

let read_option d elt = if read_bool d then Some (elt d) else None

let run_reader d reader =
  match reader d with
  | v -> if at_end d then Ok v else Error "trailing bytes"
  | exception Malformed msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let decode src reader = run_reader (decoder src) reader

let decode_sub src ~off ~len reader =
  match decoder_sub src ~off ~len with
  | d -> run_reader d reader
  | exception Invalid_argument msg -> Error msg

let encode ?size_hint f =
  incr encode_calls_counter;
  let e = encoder ?size_hint () in
  f e;
  to_string e

let encode_with e f =
  incr encode_calls_counter;
  reset e;
  f e;
  to_string e
