(** Length-prefixed, CRC32-protected frames.

    This is the corruption-detection layer the paper delegates to TCP:
    every message crossing the simulated network travels inside a frame,
    and a frame whose checksum does not match its payload is dropped by the
    receiver (surfacing as a message loss, which the reliable-channel layer
    then recovers by retransmission). *)

val overhead : int
(** Bytes added around a payload (magic + length + checksum). *)

val seal : string -> string
(** Wrap a payload into a frame. *)

val seal_with : Wire.encoder -> (Wire.encoder -> unit) -> string
(** [seal_with enc write] builds a frame by running [write] directly
    after the header inside [enc] (resetting it first), then patching the
    length and checksum in place — equivalent to
    [seal (Wire.encode write)] but with a single exactly-sized string
    allocation and no intermediate payload copy. [enc] is typically a
    retained scratch encoder; its contents are clobbered. *)

val unseal : string -> (string, [ `Corrupt | `Malformed ]) result
(** Recover the payload. [`Corrupt] means the checksum failed (in-flight
    bit-flips); [`Malformed] means the framing structure itself is broken. *)

val unseal_prefix :
  string -> off:int -> (string * int, [ `Corrupt | `Malformed ]) result
(** Parse one frame starting at [off] in a longer buffer (e.g. a WAL
    image); on success returns the payload and the total frame length
    consumed. *)
