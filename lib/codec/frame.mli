(** Length-prefixed, CRC32-protected frames.

    This is the corruption-detection layer the paper delegates to TCP:
    every message crossing the simulated network travels inside a frame,
    and a frame whose checksum does not match its payload is dropped by the
    receiver (surfacing as a message loss, which the reliable-channel layer
    then recovers by retransmission). *)

val overhead : int
(** Bytes added around a payload (magic + length + checksum). *)

val seal : string -> string
(** Wrap a payload into a frame. *)

val seal_with : Wire.encoder -> (Wire.encoder -> unit) -> string
(** [seal_with enc write] builds a frame by running [write] directly
    after the header inside [enc] (resetting it first), then patching the
    length and checksum in place — equivalent to
    [seal (Wire.encode write)] but with a single exactly-sized string
    allocation and no intermediate payload copy. [enc] is typically a
    retained scratch encoder; its contents are clobbered. *)

val unseal : string -> (string, [ `Corrupt | `Malformed ]) result
(** Recover the payload. [`Corrupt] means the checksum failed (in-flight
    bit-flips); [`Malformed] means the framing structure itself is broken. *)

val unseal_prefix :
  string -> off:int -> (string * int, [ `Corrupt | `Malformed ]) result
(** Parse one frame starting at [off] in a longer buffer (e.g. a WAL
    image); on success returns the payload and the total frame length
    consumed. *)

val unseal_sub :
  string -> off:int -> (int * int, [ `Corrupt | `Malformed ]) result
(** Like {!unseal_prefix} but without materializing the payload: on
    success returns [(payload_off, payload_len)] into the original buffer,
    checksum already validated. Pair with {!Wire.decoder_sub} to decode a
    received frame with zero payload copies. *)

val seal_with_suffix :
  Wire.encoder ->
  suffix:string ->
  suffix_crc:int32 ->
  (Wire.encoder -> unit) ->
  string
(** [seal_with_suffix enc ~suffix ~suffix_crc write_prefix] is
    [seal_with enc (fun e -> write_prefix e; Wire.fixed e suffix)] — bit
    for bit — but checksums only the prefix and stitches on the
    precomputed [suffix_crc = Crc32.string suffix] with {!Crc32.combine}.
    Broadcast paths use it to pay one payload-sized CRC pass per
    broadcast instead of one per destination. When the global
    {!Bp_crypto.Verify_cache.enabled} flag is off the shortcut is skipped
    (full checksum pass), keeping [--no-cache] an honest baseline. *)
