(** Binary wire format combinators.

    Every protocol message in the repository is serialized through this
    module, so message sizes seen by the network simulator are the real
    encoded sizes. Integers use LEB128 varints; strings and lists are
    length-prefixed. Decoding is total: malformed input yields [Error],
    never an exception, because byzantine peers may send arbitrary bytes.

    Encoders are reusable: {!reset} rewinds one without releasing its
    buffer, and {!encode_with} runs a whole encode cycle over a retained
    encoder, so steady-state send paths allocate nothing but the final
    string. *)

type encoder

val encoder : ?size_hint:int -> unit -> encoder
(** [size_hint] presizes the internal buffer (default 128 bytes) so bulk
    encodes never reallocate mid-write. *)

val reset : encoder -> unit
(** Rewind to empty, keeping the allocated buffer for reuse. *)

val length : encoder -> int
(** Bytes written since creation or the last {!reset}. *)

val to_string : encoder -> string

val unsafe_bytes : encoder -> bytes
(** The encoder's backing buffer, of which only the first {!length} bytes
    are meaningful. Any further write may grow (reallocate) the encoder
    and detach the returned value, so fetch it after the last write. Used
    by {!Frame.seal_with} to patch header words in place. *)

val varint : encoder -> int -> unit
(** Non-negative varint. @raise Invalid_argument on negative input. *)

val zigzag : encoder -> int -> unit
(** Signed varint (zigzag encoding). Total on the whole [int] range,
    including [min_int]. *)

val u8 : encoder -> int -> unit
val bool : encoder -> bool -> unit
val string : encoder -> string -> unit
val fixed : encoder -> string -> unit
(** Raw bytes with no length prefix (both sides must know the length). *)

val list : encoder -> ('a -> unit) -> 'a list -> unit
(** Length-prefixed list; the element encoder writes into the same buffer. *)

val option : encoder -> ('a -> unit) -> 'a option -> unit

type decoder

val decoder : string -> decoder

val decoder_sub : string -> off:int -> len:int -> decoder
(** Decoder over the window [off, off+len) of the string, sharing the
    backing bytes (no copy). Reads are confined to the window; {!at_end}
    means the window is exhausted.
    @raise Invalid_argument when the window is out of bounds. *)

val remaining : decoder -> int
val at_end : decoder -> bool

exception Malformed of string
(** Raised internally by the [read_*] functions; {!decode} converts it to
    [Error]. *)

val read_varint : decoder -> int
(** Rejects encodings longer than 10 bytes or overflowing the
    non-negative [int] range, with a precise error. *)

val read_zigzag : decoder -> int
val read_u8 : decoder -> int
val read_bool : decoder -> bool
val read_string : decoder -> string

val read_fixed : decoder -> int -> string
(** When the read spans the entire input, the original string is returned
    without copying (the bulk-payload fast path). *)

val skip : decoder -> int -> unit
(** Advance past [n] bytes without materializing them. *)

val read_list : decoder -> (decoder -> 'a) -> 'a list
val read_option : decoder -> (decoder -> 'a) -> 'a option

val decode : string -> (decoder -> 'a) -> ('a, string) result
(** Run a reader over the whole input; trailing bytes are an error. *)

val decode_sub :
  string -> off:int -> len:int -> (decoder -> 'a) -> ('a, string) result
(** {!decode} over a window of the input without materializing it as a
    separate string; trailing bytes within the window are an error. *)

val encode : ?size_hint:int -> (encoder -> unit) -> string
(** Convenience: run an encoding function over a fresh encoder. *)

val encode_with : encoder -> (encoder -> unit) -> string
(** [encode_with e f] resets [e], runs [f e] and returns the bytes — the
    allocation-light path for senders that retain an encoder. *)

val encode_calls : unit -> int
(** Monotone count of message serializations started via {!encode} or
    {!encode_with}, across the whole process. Tests use deltas of this
    counter to assert that broadcast paths serialize each message once
    per broadcast, not once per destination. *)
