let magic = "BPF1"
let overhead = String.length magic + 4 + 4

(* One exactly-sized allocation per frame; the header words are written
   in place rather than through a Buffer. *)
let seal payload =
  let plen = String.length payload in
  let out = Bytes.create (overhead + plen) in
  Bytes.blit_string magic 0 out 0 4;
  Bytes.set_int32_be out 4 (Int32.of_int plen);
  Bytes.set_int32_be out 8 (Bp_crypto.Crc32.string payload);
  Bytes.blit_string payload 0 out overhead plen;
  Bytes.unsafe_to_string out

(* Placeholder for the length and checksum words, patched after the
   payload is written. *)
let header_rest = String.make (overhead - 4) '\000'

(* Frame assembly without the intermediate payload string: the writer
   serializes the payload directly after the header inside [enc], then
   the length and CRC words are patched in place. Against the old
   encode-then-seal send path this drops one of two big allocations and
   one of three whole-payload moves — the difference senders of
   megabyte batches feel as GC pressure. *)
let seal_with enc write =
  Wire.reset enc;
  Wire.fixed enc magic;
  Wire.fixed enc header_rest;
  write enc;
  let plen = Wire.length enc - overhead in
  (* Fetch the buffer only after the last write: growing reallocates. *)
  let buf = Wire.unsafe_bytes enc in
  Bytes.set_int32_be buf 4 (Int32.of_int plen);
  Bytes.set_int32_be buf 8 (Bp_crypto.Crc32.bytes buf ~off:overhead ~len:plen);
  Wire.to_string enc

(* [seal_with] where the payload tail is an already-encoded string with a
   known checksum: the suffix bytes still land in the frame, but the CRC
   pass only touches the (typically tiny) prefix and stitches the suffix
   checksum on with {!Bp_crypto.Crc32.combine}. The emitted frame is bit
   for bit what [seal_with] would produce; with caching globally disabled
   the combine shortcut is skipped so [--no-cache] measures the full
   checksum pass. *)
let seal_with_suffix enc ~suffix ~suffix_crc write_prefix =
  Wire.reset enc;
  Wire.fixed enc magic;
  Wire.fixed enc header_rest;
  write_prefix enc;
  let prefix_len = Wire.length enc - overhead in
  Wire.fixed enc suffix;
  let plen = Wire.length enc - overhead in
  let buf = Wire.unsafe_bytes enc in
  Bytes.set_int32_be buf 4 (Int32.of_int plen);
  let crc =
    if Bp_crypto.Verify_cache.enabled () then
      Bp_crypto.Crc32.combine
        (Bp_crypto.Crc32.bytes buf ~off:overhead ~len:prefix_len)
        suffix_crc (String.length suffix)
    else Bp_crypto.Crc32.bytes buf ~off:overhead ~len:plen
  in
  Bytes.set_int32_be buf 8 crc;
  Wire.to_string enc

(* Validation without payload extraction: callers that can decode from a
   window (see {!Wire.decoder_sub}) skip the [String.sub] copy entirely. *)
let unseal_sub buf ~off =
  if off < 0 || String.length buf - off < overhead then Error `Malformed
  else if
    not
      (String.unsafe_get buf off = 'B'
      && String.unsafe_get buf (off + 1) = 'P'
      && String.unsafe_get buf (off + 2) = 'F'
      && String.unsafe_get buf (off + 3) = '1')
  then Error `Malformed
  else begin
    let len = Int32.to_int (String.get_int32_be buf (off + 4)) in
    if len < 0 || String.length buf - off < overhead + len then Error `Malformed
    else begin
      let crc = String.get_int32_be buf (off + 8) in
      (* Checksum the payload in place; nothing is copied on any path. *)
      let actual =
        Bp_crypto.Crc32.bytes (Bytes.unsafe_of_string buf) ~off:(off + overhead)
          ~len
      in
      if actual = crc then Ok (off + overhead, len) else Error `Corrupt
    end
  end

let unseal_prefix buf ~off =
  match unseal_sub buf ~off with
  | Error _ as e -> e
  | Ok (poff, plen) -> Ok (String.sub buf poff plen, poff - off + plen)

let unseal frame =
  match unseal_prefix frame ~off:0 with
  | Error _ as e -> e
  | Ok (payload, consumed) ->
      if consumed = String.length frame then Ok payload else Error `Malformed
