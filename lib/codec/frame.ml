let magic = "BPF1"
let overhead = String.length magic + 4 + 4

(* One exactly-sized allocation per frame; the header words are written
   in place rather than through a Buffer. *)
let seal payload =
  let plen = String.length payload in
  let out = Bytes.create (overhead + plen) in
  Bytes.blit_string magic 0 out 0 4;
  Bytes.set_int32_be out 4 (Int32.of_int plen);
  Bytes.set_int32_be out 8 (Bp_crypto.Crc32.string payload);
  Bytes.blit_string payload 0 out overhead plen;
  Bytes.unsafe_to_string out

(* Placeholder for the length and checksum words, patched after the
   payload is written. *)
let header_rest = String.make (overhead - 4) '\000'

(* Frame assembly without the intermediate payload string: the writer
   serializes the payload directly after the header inside [enc], then
   the length and CRC words are patched in place. Against the old
   encode-then-seal send path this drops one of two big allocations and
   one of three whole-payload moves — the difference senders of
   megabyte batches feel as GC pressure. *)
let seal_with enc write =
  Wire.reset enc;
  Wire.fixed enc magic;
  Wire.fixed enc header_rest;
  write enc;
  let plen = Wire.length enc - overhead in
  (* Fetch the buffer only after the last write: growing reallocates. *)
  let buf = Wire.unsafe_bytes enc in
  Bytes.set_int32_be buf 4 (Int32.of_int plen);
  Bytes.set_int32_be buf 8 (Bp_crypto.Crc32.bytes buf ~off:overhead ~len:plen);
  Wire.to_string enc

let unseal_prefix buf ~off =
  if off < 0 || String.length buf - off < overhead then Error `Malformed
  else if
    not
      (String.unsafe_get buf off = 'B'
      && String.unsafe_get buf (off + 1) = 'P'
      && String.unsafe_get buf (off + 2) = 'F'
      && String.unsafe_get buf (off + 3) = '1')
  then Error `Malformed
  else begin
    let len = Int32.to_int (String.get_int32_be buf (off + 4)) in
    if len < 0 || String.length buf - off < overhead + len then Error `Malformed
    else begin
      let crc = String.get_int32_be buf (off + 8) in
      (* Checksum the payload in place; only a valid frame pays for the
         payload extraction. *)
      let actual =
        Bp_crypto.Crc32.bytes (Bytes.unsafe_of_string buf) ~off:(off + overhead)
          ~len
      in
      if actual = crc then Ok (String.sub buf (off + overhead) len, overhead + len)
      else Error `Corrupt
    end
  end

let unseal frame =
  match unseal_prefix frame ~off:0 with
  | Error _ as e -> e
  | Ok (payload, consumed) ->
      if consumed = String.length frame then Ok payload else Error `Malformed
