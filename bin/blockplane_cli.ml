(* Command-line entry point: run any of the paper's experiments. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let scale_arg =
  let doc =
    "Workload scale factor: 1.0 reproduces the full configured workload, \
     smaller values shrink batch counts proportionally for quick runs."
  in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Bp_harness.Experiments.id
          e.Bp_harness.Experiments.title)
      Bp_harness.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments")
    Term.(const run $ const ())

let run_experiment id scale verbose =
  setup_logs verbose;
  match Bp_harness.Experiments.find id with
  | None ->
      Printf.eprintf "unknown experiment %S; try `blockplane-cli list`\n" id;
      exit 1
  | Some e ->
      List.iter (fun r -> print_string (Bp_harness.Report.render r)) (e.Bp_harness.Experiments.run ~scale)

let run_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see `list`).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print its paper-vs-measured table")
    Term.(const run_experiment $ id_arg $ scale_arg $ verbose_arg)

let all_cmd =
  let run scale verbose =
    setup_logs verbose;
    List.iter
      (fun e ->
        List.iter (fun r -> print_string (Bp_harness.Report.render r)) (e.Bp_harness.Experiments.run ~scale))
      Bp_harness.Experiments.all
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every table and figure of the evaluation")
    Term.(const run $ scale_arg $ verbose_arg)

let () =
  let info =
    Cmd.info "blockplane-cli" ~version:"0.1.0"
      ~doc:"Blockplane (ICDE 2019) reproduction — experiment driver"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd ]))
