(* Command-line entry point: run any of the paper's experiments. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let scale_arg =
  let doc =
    "Workload scale factor: 1.0 reproduces the full configured workload, \
     smaller values shrink batch counts proportionally for quick runs."
  in
  Arg.(value & opt float 1.0 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let no_cache_arg =
  Arg.(
    value
    & flag
    & info [ "no-cache" ]
        ~doc:
          "Disable the per-node verification/digest caches and \
           content-addressed signing. Every experiment table is \
           bit-identical either way; only wall time changes.")

let set_cache no_cache =
  if no_cache then Bp_crypto.Verify_cache.set_enabled false

let pipeline_arg =
  let doc =
    "Consensus pipeline depth: how many PBFT slots each primary keeps in \
     flight concurrently. 1 (the default) is the stop-and-wait baseline \
     and reproduces the pre-pipeline tables byte-for-byte; deeper values \
     overlap successive three-phase rounds. The ablation-pipeline \
     experiment sweeps its own depths regardless of this flag."
  in
  Arg.(value & opt int 1 & info [ "pipeline" ] ~docv:"DEPTH" ~doc)

let set_pipeline depth =
  if depth < 1 then (
    Printf.eprintf "blockplane-cli: --pipeline must be at least 1, got %d\n"
      depth;
    exit 1);
  Bp_harness.Runner.set_default_pipeline depth

let verify_jobs_arg =
  let doc =
    "Verification parallelism: fans in-replica batch crypto across this \
     many worker domains (and sets the modeled verify parallelism for \
     worlds that charge simulated verification time). Every experiment \
     table except the ablation-verify/ablation-pipeline cost models is \
     bit-identical at any value; only wall time changes."
  in
  Arg.(value & opt int 1 & info [ "verify-jobs" ] ~docv:"N" ~doc)

let set_verify_jobs jobs =
  if jobs < 1 then (
    Printf.eprintf "blockplane-cli: --verify-jobs must be at least 1, got %d\n"
      jobs;
    exit 1);
  Bp_harness.Runner.set_default_verify_jobs jobs;
  Bp_crypto.Verify_batch.set_default_jobs jobs

let cluster_send_arg =
  let doc =
    "Inter-participant WAN path: $(b,off) (the default) ships fi+1 \
     signature bundles per record, $(b,on) switches every world to \
     expected-constant byzantine cluster-sending (chain-head probes with \
     one signature each, receiver-side local agreement and intra-unit \
     dispersal). The golden paper tables are recorded under $(b,off); \
     the ablation-clustersend experiment sweeps both modes regardless."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("on", true); ("off", false) ]) false
    & info [ "cluster-send" ] ~docv:"on|off" ~doc)

let set_cluster_send b = Bp_harness.Runner.set_default_cluster_send b

let load_rate_arg =
  let doc =
    "Probe a single open-loop offered rate (requests/s) instead of the \
     saturation sweep's built-in rate list. Only Loadgen-driven \
     experiments (ablation-saturation) consult it."
  in
  Arg.(value & opt (some float) None & info [ "load-rate" ] ~docv:"RATE" ~doc)

let set_load_rate r =
  (match r with
  | Some r when r <= 0.0 ->
      Printf.eprintf "blockplane-cli: --load-rate must be positive, got %g\n" r;
      exit 1
  | _ -> ());
  Bp_harness.Runner.set_default_load_rate r

let load_trace_arg =
  let doc =
    "Arrival-process shape for Loadgen-driven experiments: $(b,poisson) \
     (the default), $(b,bursty) (Markov-modulated on/off phases) or \
     $(b,diurnal) (a compressed day-curve rate trace). All shapes offer \
     the same long-run rate."
  in
  Arg.(
    value
    & opt
        (Arg.enum
           [ ("poisson", `Poisson); ("bursty", `Bursty); ("diurnal", `Diurnal) ])
        `Poisson
    & info [ "load-trace" ] ~docv:"SHAPE" ~doc)

let set_load_trace s = Bp_harness.Runner.set_default_load_shape s

let skew_arg =
  let doc =
    "Zipf exponent over the modeled client population for Loadgen-driven \
     experiments: 0 is uniform, 0.99 (the default) the classic YCSB skew."
  in
  Arg.(value & opt float 0.99 & info [ "skew" ] ~docv:"S" ~doc)

let set_skew s =
  if s < 0.0 then (
    Printf.eprintf "blockplane-cli: --skew must be non-negative, got %g\n" s;
    exit 1);
  Bp_harness.Runner.set_default_skew s

let shards_arg =
  let doc =
    "Keyspace shards for worlds that do not build their own shard map: \
     each shard is an independent Blockplane unit owning a slice of the \
     keyspace, with cross-shard transactions committed through the BFT \
     two-phase protocol. 1 (the default) reproduces the unsharded tables \
     byte-for-byte; the value is clamped to each world's participant \
     count. The ablation-shard experiment sweeps 1..16 regardless."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let set_shards n =
  if n < 1 then (
    Printf.eprintf "blockplane-cli: --shards must be at least 1, got %d\n" n;
    exit 1);
  Bp_harness.Runner.set_default_shards n

let batch_min_fill_arg =
  let doc =
    "Adaptive batch-cut fill target: a primary holds a non-empty batch \
     open until it has at least this many requests (or the $(b,--batch-hold) \
     timer fires). 1 (the seed behaviour) cuts on any signal. Values \
     above 1 require a positive $(b,--batch-hold)."
  in
  Arg.(value & opt (some int) None & info [ "batch-min-fill" ] ~docv:"N" ~doc)

let batch_hold_arg =
  let doc =
    "Adaptive batch-cut hold timer in milliseconds: the longest a \
     non-empty batch below the fill target waits before being cut anyway. \
     Bounds the latency cost of $(b,--batch-min-fill)."
  in
  Arg.(value & opt (some float) None & info [ "batch-hold" ] ~docv:"MS" ~doc)

let set_batch min_fill hold_ms =
  (match min_fill with
  | Some m when m < 1 ->
      Printf.eprintf "blockplane-cli: --batch-min-fill must be at least 1, got %d\n" m;
      exit 1
  | _ -> ());
  (match hold_ms with
  | Some h when h < 0.0 ->
      Printf.eprintf "blockplane-cli: --batch-hold must be non-negative, got %g\n" h;
      exit 1
  | _ -> ());
  (* The pair rule Config.make enforces per world, surfaced as a flag
     error: a fill target above 1 with no timer would stall batches that
     never reach it. *)
  (match (min_fill, hold_ms) with
  | Some m, (None | Some 0.0) when m > 1 ->
      Printf.eprintf
        "blockplane-cli: --batch-min-fill %d needs --batch-hold MS with MS > 0\n"
        m;
      exit 1
  | _ -> ());
  Bp_harness.Runner.set_default_batch_min_fill min_fill;
  Bp_harness.Runner.set_default_batch_hold (Option.map Bp_sim.Time.of_ms hold_ms)

let jobs_arg =
  let doc =
    "Number of worker domains to fan independent simulation tasks across. \
     Results are bit-identical at any job count; only wall time changes. \
     Defaults to the number of cores; 1 runs everything inline."
  in
  Arg.(
    value
    & opt int (Bp_parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Build a pool for [jobs], run [f] and always shut the pool down, so CLI
   exits never leave worker domains blocked on the work queue. The global
   batch-verify workers (--verify-jobs > 1) are joined the same way. *)
let with_pool jobs f =
  if jobs < 1 then (
    Printf.eprintf "blockplane-cli: --jobs must be at least 1, got %d\n" jobs;
    exit 1);
  let pool = if jobs > 1 then Some (Bp_parallel.Pool.create ~jobs) else None in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Bp_parallel.Pool.shutdown pool;
      Bp_crypto.Verify_batch.set_default_jobs 1)
    (fun () -> f pool)

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Bp_harness.Experiments.id
          e.Bp_harness.Experiments.title)
      Bp_harness.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available experiments")
    Term.(const run $ const ())

let run_experiment id scale jobs verbose no_cache pipeline verify_jobs
    cluster_send load_rate load_trace skew shards batch_min_fill batch_hold =
  setup_logs verbose;
  set_cache no_cache;
  set_pipeline pipeline;
  set_verify_jobs verify_jobs;
  set_cluster_send cluster_send;
  set_load_rate load_rate;
  set_load_trace load_trace;
  set_skew skew;
  set_shards shards;
  set_batch batch_min_fill batch_hold;
  match Bp_harness.Experiments.find id with
  | None ->
      Printf.eprintf "unknown experiment %S; try `blockplane-cli list`\n" id;
      exit 1
  | Some e ->
      with_pool jobs (fun pool ->
          List.iter
            (fun r -> print_string (Bp_harness.Report.render r))
            (Bp_harness.Experiments.run ?pool e ~scale))

let run_cmd =
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id (see `list`).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment and print its paper-vs-measured table")
    Term.(
      const run_experiment $ id_arg $ scale_arg $ jobs_arg $ verbose_arg
      $ no_cache_arg $ pipeline_arg $ verify_jobs_arg $ cluster_send_arg
      $ load_rate_arg $ load_trace_arg $ skew_arg $ shards_arg
      $ batch_min_fill_arg $ batch_hold_arg)

let all_cmd =
  let run scale jobs verbose no_cache pipeline verify_jobs cluster_send
      load_rate load_trace skew shards batch_min_fill batch_hold =
    setup_logs verbose;
    set_cache no_cache;
    set_pipeline pipeline;
    set_verify_jobs verify_jobs;
    set_cluster_send cluster_send;
    set_load_rate load_rate;
    set_load_trace load_trace;
    set_skew skew;
    set_shards shards;
    set_batch batch_min_fill batch_hold;
    with_pool jobs (fun pool ->
        List.iter
          (fun e ->
            List.iter
              (fun r -> print_string (Bp_harness.Report.render r))
              (Bp_harness.Experiments.run ?pool e ~scale))
          Bp_harness.Experiments.all)
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every table and figure of the evaluation")
    Term.(
      const run $ scale_arg $ jobs_arg $ verbose_arg $ no_cache_arg
      $ pipeline_arg $ verify_jobs_arg $ cluster_send_arg $ load_rate_arg
      $ load_trace_arg $ skew_arg $ shards_arg $ batch_min_fill_arg
      $ batch_hold_arg)

let () =
  let info =
    Cmd.info "blockplane-cli" ~version:"0.1.0"
      ~doc:"Blockplane (ICDE 2019) reproduction — experiment driver"
  in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd ]))
