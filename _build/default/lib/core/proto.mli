(** Auxiliary Blockplane-space messages: transmission-record signing,
    delivery and acknowledgement, reserve probes (§IV-C), and the
    geo-correlated mirroring protocol (§V).

    Tag layout for participant [u] (on top of the PBFT tags ["u<u>"] and
    ["u<u>.reply"]):
    - ["u<u>.aux"] — everything below, dispatched by constructor. *)

type t =
  | Sign_request of { transmission : Record.transmission }
      (** daemon -> local node: attest this transmission record (proofs
          field empty) *)
  | Sign_response of {
      dest : int;
      comm_seq : int;
      identity : string;
      signature : string;
    }
  | Transmit of { transmission : Record.transmission }
      (** source daemon -> destination node *)
  | Ack of { from_participant : int; comm_seq : int }
      (** destination node -> source daemon: committed up to [comm_seq]
          (cumulative) *)
  | Reserve_query of { src : int }
      (** reserve node -> destination nodes: highest in-order transmission
          comm_seq you have committed from [src]? *)
  | Reserve_reply of { src : int; last : int }
  | Mirror_request of { owner : int; pos : int; value : string }
      (** geo: primary -> mirror participant: durably store entry [pos] *)
  | Mirror_proof of {
      owner : int;
      pos : int;
      participant : int;
      sigs : (string * string) list;  (** fi+1 local attestations *)
    }
  | Mirror_sign_request of { owner : int; pos : int; digest : string }
      (** mirror agent -> its local nodes *)
  | Mirror_sign_response of {
      owner : int;
      pos : int;
      identity : string;
      signature : string;
    }
  | Read_query of { pos : int }
      (** read strategies (§VI-A): fetch Local Log entry [pos] *)
  | Read_reply of { pos : int; payload : string option }

val encode : t -> string
val decode : string -> (t, string) result

val aux_tag : int -> string
(** Transport tag for participant [u]'s auxiliary traffic. *)

val mirror_statement : owner:int -> pos:int -> digest:string -> string
(** The byte string mirror nodes sign to attest a mirrored entry. *)
