open Bp_codec

type t =
  | Sign_request of { transmission : Record.transmission }
  | Sign_response of {
      dest : int;
      comm_seq : int;
      identity : string;
      signature : string;
    }
  | Transmit of { transmission : Record.transmission }
  | Ack of { from_participant : int; comm_seq : int }
  | Reserve_query of { src : int }
  | Reserve_reply of { src : int; last : int }
  | Mirror_request of { owner : int; pos : int; value : string }
  | Mirror_proof of {
      owner : int;
      pos : int;
      participant : int;
      sigs : (string * string) list;
    }
  | Mirror_sign_request of { owner : int; pos : int; digest : string }
  | Mirror_sign_response of {
      owner : int;
      pos : int;
      identity : string;
      signature : string;
    }
  | Read_query of { pos : int }
  | Read_reply of { pos : int; payload : string option }

let aux_tag u = Printf.sprintf "u%d.aux" u

let encode_transmission e (tr : Record.transmission) =
  Wire.string e (Record.encode (Record.Recv tr))

let decode_transmission d =
  match Record.decode (Wire.read_string d) with
  | Ok (Record.Recv tr) -> tr
  | Ok _ -> raise (Wire.Malformed "expected Recv record")
  | Error msg -> raise (Wire.Malformed msg)

let encode_sigs e sigs =
  Wire.list e
    (fun (identity, signature) ->
      Wire.string e identity;
      Wire.string e signature)
    sigs

let decode_sigs d =
  Wire.read_list d (fun d ->
      let identity = Wire.read_string d in
      let signature = Wire.read_string d in
      (identity, signature))

let encode m =
  Wire.encode (fun e ->
      match m with
      | Sign_request { transmission } ->
          Wire.u8 e 0;
          encode_transmission e transmission
      | Sign_response { dest; comm_seq; identity; signature } ->
          Wire.u8 e 1;
          Wire.varint e dest;
          Wire.varint e comm_seq;
          Wire.string e identity;
          Wire.string e signature
      | Transmit { transmission } ->
          Wire.u8 e 2;
          encode_transmission e transmission
      | Ack { from_participant; comm_seq } ->
          Wire.u8 e 3;
          Wire.varint e from_participant;
          Wire.zigzag e comm_seq
      | Reserve_query { src } ->
          Wire.u8 e 4;
          Wire.varint e src
      | Reserve_reply { src; last } ->
          Wire.u8 e 5;
          Wire.varint e src;
          Wire.zigzag e last
      | Mirror_request { owner; pos; value } ->
          Wire.u8 e 6;
          Wire.varint e owner;
          Wire.varint e pos;
          Wire.string e value
      | Mirror_proof { owner; pos; participant; sigs } ->
          Wire.u8 e 7;
          Wire.varint e owner;
          Wire.varint e pos;
          Wire.varint e participant;
          encode_sigs e sigs
      | Mirror_sign_request { owner; pos; digest } ->
          Wire.u8 e 8;
          Wire.varint e owner;
          Wire.varint e pos;
          Wire.string e digest
      | Mirror_sign_response { owner; pos; identity; signature } ->
          Wire.u8 e 9;
          Wire.varint e owner;
          Wire.varint e pos;
          Wire.string e identity;
          Wire.string e signature
      | Read_query { pos } ->
          Wire.u8 e 10;
          Wire.varint e pos
      | Read_reply { pos; payload } ->
          Wire.u8 e 11;
          Wire.varint e pos;
          Wire.option e (Wire.string e) payload)

let decode s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 -> Sign_request { transmission = decode_transmission d }
      | 1 ->
          let dest = Wire.read_varint d in
          let comm_seq = Wire.read_varint d in
          let identity = Wire.read_string d in
          let signature = Wire.read_string d in
          Sign_response { dest; comm_seq; identity; signature }
      | 2 -> Transmit { transmission = decode_transmission d }
      | 3 ->
          let from_participant = Wire.read_varint d in
          let comm_seq = Wire.read_zigzag d in
          Ack { from_participant; comm_seq }
      | 4 -> Reserve_query { src = Wire.read_varint d }
      | 5 ->
          let src = Wire.read_varint d in
          let last = Wire.read_zigzag d in
          Reserve_reply { src; last }
      | 6 ->
          let owner = Wire.read_varint d in
          let pos = Wire.read_varint d in
          let value = Wire.read_string d in
          Mirror_request { owner; pos; value }
      | 7 ->
          let owner = Wire.read_varint d in
          let pos = Wire.read_varint d in
          let participant = Wire.read_varint d in
          let sigs = decode_sigs d in
          Mirror_proof { owner; pos; participant; sigs }
      | 8 ->
          let owner = Wire.read_varint d in
          let pos = Wire.read_varint d in
          let digest = Wire.read_string d in
          Mirror_sign_request { owner; pos; digest }
      | 9 ->
          let owner = Wire.read_varint d in
          let pos = Wire.read_varint d in
          let identity = Wire.read_string d in
          let signature = Wire.read_string d in
          Mirror_sign_response { owner; pos; identity; signature }
      | 10 -> Read_query { pos = Wire.read_varint d }
      | 11 ->
          let pos = Wire.read_varint d in
          let payload = Wire.read_option d Wire.read_string in
          Read_reply { pos; payload }
      | n -> raise (Wire.Malformed (Printf.sprintf "proto tag %d" n)))

let mirror_statement ~owner ~pos ~digest =
  Wire.encode (fun e ->
      Wire.string e "bp-mirror";
      Wire.varint e owner;
      Wire.varint e pos;
      Wire.string e digest)
