(** Communication-daemon reserves (§IV-C).

    A reserve is hosted on a unit node distinct from the active daemon's.
    It periodically probes nodes at the destination participant for the
    highest in-order transmission they have committed from us, derives a
    *guaranteed* floor — the value supported by the best set of f+1
    responders (at least one of whom is honest) — and compares it against
    the communication records committed in its own Local Log copy. A
    persistent gap means the active daemon is crashed or maliciously
    delaying messages; the reserve then promotes itself into a full
    communication daemon starting from the guaranteed floor. *)

type t

val create :
  node:Unit_node.t ->
  dest:int ->
  dest_nodes:Bp_sim.Addr.t array ->
  ?geo_proofs:(pos:int -> on_ready:((int * (string * string) list) list -> unit) -> unit) ->
  ?probe_every:Bp_sim.Time.t ->
  ?patience:int ->
  unit ->
  t
(** [probe_every] defaults to 500 ms; [patience] (consecutive gap
    observations before promotion) to 3. *)

val promoted : t -> bool

val daemon : t -> Comm_daemon.t option
(** The daemon spawned on promotion, if any. *)
