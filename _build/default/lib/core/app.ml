module type S = sig
  type state

  val create : unit -> state
  val verify : state -> Record.t -> bool
  val apply : state -> Record.t -> unit
  val digest : state -> string
  val describe : state -> string
end

type instance = Instance : (module S with type state = 's) * 's -> instance

let make (module A : S) = Instance ((module A), A.create ())

let verify (Instance ((module A), state)) record = A.verify state record
let apply (Instance ((module A), state)) record = A.apply state record
let digest (Instance ((module A), state)) = A.digest state
let describe (Instance ((module A), state)) = A.describe state

module Null = struct
  type state = string ref

  let create () = ref (Bp_crypto.Sha256.digest "null-app")
  let verify _ _ = true
  let apply state record =
    state := Bp_crypto.Sha256.digest_list [ !state; Record.encode record ]

  let digest state = !state
  let describe state = "null-app:" ^ Bp_util.Hex.encode (String.sub !state 0 4)
end
