(** Geo-correlated fault tolerance (§V).

    With [fg > 0], a participant's commits only count once [fg] other
    participants (out of its chosen mirror set of up to [2fg+1]) have
    durably mirrored the entry and attested it with [fi+1] local
    signatures. The proof bundles are kept as annotations of the proved
    entry and travel inside transmission records.

    Mirrors store entries *through their own unit's PBFT* (as [Mirrored]
    records in their Local Log), realising the paper's "participants
    maintain mirrors of each others' states on 3fi+1 nodes [that]
    co-locate with the Blockplane nodes used for local commitment".

    A heartbeat failure detector reroutes proof requests around suspected
    (crashed) mirror participants, which is what Fig. 8(a) measures; full
    primary takeover (Fig. 8(b)) is orchestrated by the caller using
    {!on_suspect}/{!on_restore}. *)

module Agent : sig
  type t

  val install : Unit_node.t -> t
  (** Serve mirror duties on a node: handle [Mirror_request] (commit the
      entry locally, gather fi+1 attestations, answer with a
      [Mirror_proof]) and [Mirror_sign_request]. Install on every node of
      every unit that may act as a mirror. *)
end

type t

val create :
  node:Unit_node.t ->
  fg:int ->
  mirror_set:int list ->
  all_unit_nodes:(int -> Bp_sim.Addr.t array) ->
  unit ->
  t
(** The proving coordinator for one participant, hosted on [node] (its
    unit's node 0). [mirror_set] lists other participants in preference
    order (normally by RTT); only the first [fg] live ones are asked.
    Every record executed on the host node automatically starts proving. *)

val wait_proved : t -> pos:int -> (unit -> unit) -> unit
(** Run the callback once entry [pos] has [fg] proof bundles (immediately
    if already proved, or if [fg = 0]). *)

val proofs_for :
  t -> pos:int -> on_ready:((int * (string * string) list) list -> unit) -> unit
(** Daemon-facing: the proof bundles for a position, once available. *)

val is_proved : t -> pos:int -> bool

val current_targets : t -> int list
(** The fg mirror participants currently being asked (changes under
    suspicion). *)

val on_suspect : t -> (int -> unit) -> unit
(** Register for mirror-participant suspicion events. *)

val on_restore : t -> (int -> unit) -> unit

val suspected : t -> int -> bool
