lib/core/api.ml: Addr Array Bp_net Bp_pbft Bp_sim Bp_storage Geo List Option Printf Proto Record Unit_node
