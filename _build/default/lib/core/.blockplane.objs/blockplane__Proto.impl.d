lib/core/proto.ml: Bp_codec Printf Record Wire
