lib/core/app.ml: Bp_crypto Bp_util Record String
