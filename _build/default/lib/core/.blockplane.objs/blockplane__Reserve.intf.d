lib/core/reserve.mli: Bp_sim Comm_daemon Unit_node
