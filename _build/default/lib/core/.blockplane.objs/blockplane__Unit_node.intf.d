lib/core/unit_node.mli: App Bp_crypto Bp_net Bp_pbft Bp_sim Bp_storage Proto Record
