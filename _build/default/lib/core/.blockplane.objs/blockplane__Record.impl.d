lib/core/record.ml: Bp_codec Bp_crypto Printf Wire
