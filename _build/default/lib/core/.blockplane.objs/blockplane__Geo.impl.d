lib/core/geo.ml: Addr Array Bp_crypto Bp_net Bp_sim Engine Hashtbl Int List Map Network Printf Proto Record String Time Unit_node
