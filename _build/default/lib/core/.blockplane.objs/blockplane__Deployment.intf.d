lib/core/deployment.mli: Api App Bp_crypto Bp_sim Comm_daemon Geo Reserve Unit_node
