lib/core/record.mli:
