lib/core/comm_daemon.ml: Addr Array Bp_crypto Bp_net Bp_sim Bp_storage Engine Int List Map Network Option Proto Record Stdlib Time Topology Unit_node
