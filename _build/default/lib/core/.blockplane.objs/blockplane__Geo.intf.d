lib/core/geo.mli: Bp_sim Unit_node
