lib/core/app.mli: Record
