lib/core/unit_node.ml: Addr App Array Bp_crypto Bp_net Bp_pbft Bp_sim Bp_storage Hashtbl Int List Logs Map Network Option Printf Proto Queue Record String
