lib/core/deployment.ml: Addr Api Array Bp_crypto Bp_pbft Bp_sim Bp_storage Bp_util Comm_daemon Engine Fun Geo List Network Printf Reserve Stdlib String Topology Unit_node
