lib/core/comm_daemon.mli: Bp_sim Unit_node
