lib/core/proto.mli: Record
