lib/core/api.mli: Bp_pbft Bp_sim Geo Record Unit_node
