lib/core/reserve.ml: Addr Array Bp_net Bp_sim Bp_storage Comm_daemon Engine List Network Proto Record Stdlib Time Unit_node
