(** The user-protocol interface (§III-C).

    A protocol [P] byzantized by Blockplane supplies a deterministic state
    machine plus verification routines. Every Blockplane node in the unit
    runs one instance; instances start identical and evolve only through
    {!S.apply} on committed Local Log records, so all honest copies agree.

    [verify] is the programmer-written verification routine: replicas call
    it (against their own replayed state) between the PBFT prepared and
    commit phases, and an honest primary also pre-screens with it. It must
    be a pure function of [(state, record)]. *)

module type S = sig
  type state

  val create : unit -> state

  val verify : state -> Record.t -> bool
  (** Is this record a legal next state transition? For [Recv] records the
      middleware has already enforced the built-in receive checks (f+1
      source signatures, ordering, no duplicates) before asking. *)

  val apply : state -> Record.t -> unit
  (** Incorporate a committed record. Must be deterministic. *)

  val digest : state -> string
  (** State digest, for cross-replica agreement checks in tests. *)

  val describe : state -> string
  (** Human-readable snapshot (examples, debugging, state inspection). *)
end

type instance = Instance : (module S with type state = 's) * 's -> instance

val make : (module S) -> instance
val verify : instance -> Record.t -> bool
val apply : instance -> Record.t -> unit
val digest : instance -> string
val describe : instance -> string

(** A trivial app that accepts everything and only folds records into a
    digest — useful for measuring pure middleware cost. *)
module Null : S
