let magic = "BPF1"
let overhead = String.length magic + 4 + 4

let put_u32 buf v =
  for i = 3 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * i)) land 0xff))
  done

let get_u32 s off =
  let b i = Int32.of_int (Char.code s.[off + i]) in
  Int32.logor
    (Int32.shift_left (b 0) 24)
    (Int32.logor
       (Int32.shift_left (b 1) 16)
       (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))

let seal payload =
  let buf = Buffer.create (String.length payload + overhead) in
  Buffer.add_string buf magic;
  put_u32 buf (Int32.of_int (String.length payload));
  put_u32 buf (Bp_crypto.Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let unseal_prefix buf ~off =
  let mlen = String.length magic in
  if off < 0 || String.length buf - off < overhead then Error `Malformed
  else if not (String.equal (String.sub buf off mlen) magic) then Error `Malformed
  else begin
    let len = Int32.to_int (get_u32 buf (off + mlen)) in
    if len < 0 || String.length buf - off < overhead + len then Error `Malformed
    else begin
      let crc = get_u32 buf (off + mlen + 4) in
      let payload = String.sub buf (off + overhead) len in
      if Bp_crypto.Crc32.string payload = crc then Ok (payload, overhead + len)
      else Error `Corrupt
    end
  end

let unseal frame =
  match unseal_prefix frame ~off:0 with
  | Error _ as e -> e
  | Ok (payload, consumed) ->
      if consumed = String.length frame then Ok payload else Error `Malformed
