(** Binary wire format combinators.

    Every protocol message in the repository is serialized through this
    module, so message sizes seen by the network simulator are the real
    encoded sizes. Integers use LEB128 varints; strings and lists are
    length-prefixed. Decoding is total: malformed input yields [Error],
    never an exception, because byzantine peers may send arbitrary bytes. *)

type encoder

val encoder : unit -> encoder
val to_string : encoder -> string

val varint : encoder -> int -> unit
(** Non-negative varint. @raise Invalid_argument on negative input. *)

val zigzag : encoder -> int -> unit
(** Signed varint (zigzag encoding). *)

val u8 : encoder -> int -> unit
val bool : encoder -> bool -> unit
val string : encoder -> string -> unit
val fixed : encoder -> string -> unit
(** Raw bytes with no length prefix (both sides must know the length). *)

val list : encoder -> ('a -> unit) -> 'a list -> unit
(** Length-prefixed list; the element encoder writes into the same buffer. *)

val option : encoder -> ('a -> unit) -> 'a option -> unit

type decoder

val decoder : string -> decoder
val remaining : decoder -> int
val at_end : decoder -> bool

exception Malformed of string
(** Raised internally by the [read_*] functions; {!decode} converts it to
    [Error]. *)

val read_varint : decoder -> int
val read_zigzag : decoder -> int
val read_u8 : decoder -> int
val read_bool : decoder -> bool
val read_string : decoder -> string
val read_fixed : decoder -> int -> string
val read_list : decoder -> (decoder -> 'a) -> 'a list
val read_option : decoder -> (decoder -> 'a) -> 'a option

val decode : string -> (decoder -> 'a) -> ('a, string) result
(** Run a reader over the whole input; trailing bytes are an error. *)

val encode : (encoder -> unit) -> string
(** Convenience: run an encoding function over a fresh encoder. *)
