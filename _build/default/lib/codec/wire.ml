type encoder = Buffer.t

let encoder () = Buffer.create 128
let to_string = Buffer.contents

let varint buf n =
  if n < 0 then invalid_arg "Wire.varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let zigzag buf n =
  let mapped = if n >= 0 then 2 * n else (-2 * n) - 1 in
  varint buf mapped

let u8 buf n =
  if n < 0 || n > 255 then invalid_arg "Wire.u8: out of range";
  Buffer.add_char buf (Char.chr n)

let bool buf b = u8 buf (if b then 1 else 0)

let string buf s =
  varint buf (String.length s);
  Buffer.add_string buf s

let fixed buf s = Buffer.add_string buf s

let list buf enc xs =
  varint buf (List.length xs);
  List.iter enc xs

let option buf enc = function
  | None -> bool buf false
  | Some x ->
      bool buf true;
      enc x

type decoder = { src : string; mutable pos : int }

exception Malformed of string

let decoder src = { src; pos = 0 }
let remaining d = String.length d.src - d.pos
let at_end d = remaining d = 0

let fail msg = raise (Malformed msg)

let read_u8 d =
  if d.pos >= String.length d.src then fail "u8: end of input";
  let c = Char.code d.src.[d.pos] in
  d.pos <- d.pos + 1;
  c

let read_varint d =
  let rec go shift acc =
    if shift > 62 then fail "varint: too long";
    let b = read_u8 d in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_zigzag d =
  let m = read_varint d in
  if m land 1 = 0 then m / 2 else -((m + 1) / 2)

let read_bool d =
  match read_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> fail (Printf.sprintf "bool: invalid byte %d" n)

let read_fixed d n =
  if n < 0 || remaining d < n then fail "fixed: end of input";
  let s = String.sub d.src d.pos n in
  d.pos <- d.pos + n;
  s

let read_string d =
  let n = read_varint d in
  read_fixed d n

let read_list d elt =
  let n = read_varint d in
  if n > remaining d then fail "list: length exceeds input";
  List.init n (fun _ -> elt d)

let read_option d elt = if read_bool d then Some (elt d) else None

let decode src reader =
  let d = decoder src in
  match reader d with
  | v -> if at_end d then Ok v else Error "trailing bytes"
  | exception Malformed msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let encode f =
  let e = encoder () in
  f e;
  to_string e
