lib/codec/frame.mli:
