lib/codec/wire.mli:
