lib/codec/wire.ml: Buffer Char List Printf String
