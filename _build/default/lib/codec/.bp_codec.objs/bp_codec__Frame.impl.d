lib/codec/frame.ml: Bp_crypto Buffer Char Int32 String
