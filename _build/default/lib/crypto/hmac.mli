(** HMAC-SHA256 (RFC 2104). *)

val sha256 : key:string -> string -> string
(** [sha256 ~key msg] is the 32-byte HMAC tag. Keys longer than the 64-byte
    block size are hashed first, per the RFC. *)

val verify : key:string -> msg:string -> tag:string -> bool
(** Constant-time comparison of [tag] against the recomputed tag. *)
