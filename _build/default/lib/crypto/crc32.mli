(** CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).

    Used by the framing layer to detect in-flight corruption, modelling the
    paper's reliance on TCP-style checksums. *)

val string : string -> int32

val bytes : bytes -> off:int -> len:int -> int32

val update : int32 -> bytes -> off:int -> len:int -> int32
(** Incremental: feed successive chunks, starting from {!empty}. *)

val empty : int32
(** The CRC of the empty string (the initial accumulator). *)
