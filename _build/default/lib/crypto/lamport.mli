(** Lamport one-time signatures over SHA-256.

    A genuinely asymmetric, hash-based scheme: the secret key is 2x256
    random 32-byte preimages; the public key is their hashes. Signing a
    message reveals one preimage per digest bit. Each key pair must sign at
    most once — {!Merkle_sig} lifts this to a many-time scheme. *)

type secret_key
type public_key = string
(** The public key is compressed to a single 32-byte digest (the hash of
    all 512 hashed preimages, in order). *)

type signature

val keygen : Bp_util.Rng.t -> secret_key * public_key

val sign : secret_key -> string -> signature
(** Sign an arbitrary message (its SHA-256 is what is actually signed). *)

val verify : public_key -> string -> signature -> bool

val signature_size : signature -> int
(** Wire size in bytes (for the network cost model). *)

val encode : signature -> string
val decode : string -> signature option
