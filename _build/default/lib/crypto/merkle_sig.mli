(** A many-time hash-based signature scheme (Merkle signature scheme).

    [2^height] Lamport one-time key pairs are generated up front; their
    public keys form the leaves of a Merkle tree whose root is the long-term
    public key. Each signature uses the next unused leaf and attaches the
    leaf's inclusion proof. Stateful: signing more than [2^height] times
    raises. *)

type signer
type public_key = string

type signature

val keygen : ?height:int -> Bp_util.Rng.t -> signer * public_key
(** Default height is 6 (64 signatures). *)

val capacity : signer -> int
(** Signatures remaining. *)

val sign : signer -> string -> signature
(** @raise Failure when the key pool is exhausted. *)

val verify : public_key -> string -> signature -> bool

val signature_size : signature -> int

val encode : signature -> string
val decode : string -> signature option
