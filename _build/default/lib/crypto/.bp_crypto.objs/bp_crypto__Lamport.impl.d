lib/crypto/lamport.ml: Array Bp_util Buffer Bytes Char Sha256 String
