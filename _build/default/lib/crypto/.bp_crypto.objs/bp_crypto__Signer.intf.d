lib/crypto/signer.mli: Bp_util
