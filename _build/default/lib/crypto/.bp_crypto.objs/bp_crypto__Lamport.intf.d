lib/crypto/lamport.mli: Bp_util
