lib/crypto/merkle_sig.ml: Array Buffer Char Lamport List Merkle String
