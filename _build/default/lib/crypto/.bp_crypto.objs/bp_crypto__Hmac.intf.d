lib/crypto/hmac.mli:
