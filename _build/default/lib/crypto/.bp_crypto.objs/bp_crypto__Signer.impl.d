lib/crypto/signer.ml: Bp_util Bytes Hashtbl Hmac List Merkle_sig
