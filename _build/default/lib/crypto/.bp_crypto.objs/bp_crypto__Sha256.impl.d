lib/crypto/sha256.ml: Array Bp_util Bytes Char Int32 Int64 List String
