lib/crypto/merkle_sig.mli: Bp_util
