lib/crypto/merkle.mli:
