(** SHA-256 (FIPS 180-4), pure OCaml.

    Used for log digests, Merkle trees, HMAC and the hash-based signature
    schemes. The implementation processes 64-byte blocks over an
    incremental context, so large batches can be hashed without copying. *)

type ctx
(** Mutable hashing context. *)

val init : unit -> ctx

val update : ctx -> string -> unit
(** Absorb the whole string. *)

val update_bytes : ctx -> bytes -> off:int -> len:int -> unit

val finalize : ctx -> string
(** Produce the 32-byte digest. The context must not be reused after. *)

val digest : string -> string
(** One-shot hash of a string; 32 raw bytes. *)

val digest_list : string list -> string
(** Hash of the concatenation, without building the concatenation. *)

val hex : string -> string
(** [hex s] is the lowercase-hex SHA-256 of [s]. *)

val digest_length : int
(** 32. *)
