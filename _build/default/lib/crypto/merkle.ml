type proof = { leaf_index : int; path : (string * [ `Left | `Right ]) list }

let leaf_hash payload = Sha256.digest ("\x00" ^ payload)

let node_hash left right = Sha256.digest_list [ "\x01"; left; right ]

let level_up nodes =
  let rec pair acc = function
    | [] -> List.rev acc
    | [ last ] -> List.rev (last :: acc)
    | a :: b :: rest -> pair (node_hash a b :: acc) rest
  in
  pair [] nodes

let root leaves =
  let rec climb = function
    | [] -> leaf_hash ""
    | [ single ] -> single
    | nodes -> climb (level_up nodes)
  in
  climb (List.map leaf_hash leaves)

let prove leaves i =
  let n = List.length leaves in
  if i < 0 || i >= n then invalid_arg "Merkle.prove: index out of range";
  let rec climb nodes index acc =
    match nodes with
    | [] | [ _ ] -> { leaf_index = i; path = List.rev acc }
    | _ ->
        let arr = Array.of_list nodes in
        let sibling, side =
          if index mod 2 = 0 then
            if index + 1 < Array.length arr then (Some arr.(index + 1), `Right)
            else (None, `Right)
          else (Some arr.(index - 1), `Left)
        in
        let acc =
          match sibling with Some h -> (h, side) :: acc | None -> acc
        in
        climb (level_up nodes) (index / 2) acc
  in
  climb (List.map leaf_hash leaves) i []

let verify ~root:expected ~leaf proof =
  let start = leaf_hash leaf in
  let folded =
    List.fold_left
      (fun acc (sibling, side) ->
        match side with
        | `Left -> node_hash sibling acc
        | `Right -> node_hash acc sibling)
      start proof.path
  in
  String.equal folded expected
