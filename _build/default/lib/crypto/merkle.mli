(** Merkle hash trees with inclusion proofs.

    Leaves and internal nodes use domain-separated SHA-256 (a [\x00] prefix
    for leaves, [\x01] for internal nodes) so a leaf can never be confused
    with an internal node. Odd nodes at a level are promoted unchanged. *)

type proof = { leaf_index : int; path : (string * [ `Left | `Right ]) list }
(** An authentication path: sibling hashes from leaf level to the root,
    each tagged with the side the sibling sits on. *)

val leaf_hash : string -> string

val root : string list -> string
(** Root hash of the given leaf payloads. The root of zero leaves is the
    hash of the empty string under the leaf domain. *)

val prove : string list -> int -> proof
(** [prove leaves i] builds the inclusion proof for leaf [i].
    @raise Invalid_argument if [i] is out of range. *)

val verify : root:string -> leaf:string -> proof -> bool
(** Check that [leaf]'s payload is included under [root] at the proof's
    position. *)
