let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let empty = 0l

let update crc buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Crc32.update";
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xffffffffl) in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.unsafe_get buf i)))) 0xffl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xffffffffl

let bytes buf ~off ~len = update empty buf ~off ~len

let string s = bytes (Bytes.unsafe_of_string s) ~off:0 ~len:(String.length s)
