(** Deterministic, splittable pseudo-random number generator.

    The whole repository routes randomness through this module so that a
    single seed reproduces every simulation, fault-injection schedule and
    workload bit-for-bit. The core generator is SplitMix64 (Steele et al.,
    OOPSLA 2014), which is small, fast and has a well-understood split
    operation. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] itself advances, so
    successive splits are independent of each other. *)

val copy : t -> t
(** Duplicate the current state (both copies then produce the same stream). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
