type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64's output mixing function (variant 13 of Stafford's mixers). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits into [0, 1), scaled. *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let bytes t n =
  let b = Bytes.create n in
  let i = ref 0 in
  while !i < n do
    let word = int64 t in
    let k = min 8 (n - !i) in
    for j = 0 to k - 1 do
      Bytes.unsafe_set b (!i + j)
        (Char.unsafe_chr
           (Int64.to_int (Int64.shift_right_logical word (8 * j)) land 0xff))
    done;
    i := !i + k
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
