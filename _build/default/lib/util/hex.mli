(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
(** Lower-case hex of every byte, e.g. [encode "\xab" = "ab"]. *)

val encode_bytes : bytes -> string

val decode : string -> string
(** Inverse of {!encode}. Accepts upper or lower case.
    @raise Invalid_argument on odd length or non-hex characters. *)
