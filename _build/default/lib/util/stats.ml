type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 16 0.0; len = 0; sorted = true }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let add_list t xs = List.iter (add t) xs

let count t = t.len

let is_empty t = t.len = 0

let require_nonempty t name =
  if t.len = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty" name)

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.data 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.data 0 t.len;
    t.sorted <- true
  end

let total t =
  let s = ref 0.0 in
  for i = 0 to t.len - 1 do
    s := !s +. t.data.(i)
  done;
  !s

let mean t =
  require_nonempty t "mean";
  total t /. float_of_int t.len

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let m = mean t in
    let s = ref 0.0 in
    for i = 0 to t.len - 1 do
      let d = t.data.(i) -. m in
      s := !s +. (d *. d)
    done;
    sqrt (!s /. float_of_int (t.len - 1))
  end

let min t =
  require_nonempty t "min";
  ensure_sorted t;
  t.data.(0)

let max t =
  require_nonempty t "max";
  ensure_sorted t;
  t.data.(t.len - 1)

let percentile t p =
  require_nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  ensure_sorted t;
  let rank = p /. 100.0 *. float_of_int (t.len - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then t.data.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
  end

let median t = percentile t 50.0

let samples t =
  ensure_sorted t;
  Array.sub t.data 0 t.len

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summarize t =
  require_nonempty t "summarize";
  {
    n = count t;
    mean = mean t;
    stddev = stddev t;
    min = min t;
    p50 = percentile t 50.0;
    p95 = percentile t 95.0;
    p99 = percentile t 99.0;
    max = max t;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.p50 s.p95 s.p99 s.max
