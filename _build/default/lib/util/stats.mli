(** Online sample collection and summary statistics for experiments. *)

type t
(** A mutable bag of float samples. *)

val create : unit -> t

val add : t -> float -> unit

val add_list : t -> float list -> unit

val count : t -> int

val is_empty : t -> bool

val mean : t -> float
(** Arithmetic mean. @raise Invalid_argument if empty. *)

val stddev : t -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples. *)

val min : t -> float

val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], linear interpolation between
    order statistics. @raise Invalid_argument if empty. *)

val median : t -> float

val total : t -> float
(** Sum of all samples. *)

val samples : t -> float array
(** A sorted copy of the samples. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val summarize : t -> summary
(** @raise Invalid_argument if empty. *)

val pp_summary : Format.formatter -> summary -> unit
