lib/util/tablefmt.ml: Array Buffer List Stdlib String
