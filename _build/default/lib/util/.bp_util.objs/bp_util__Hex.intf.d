lib/util/hex.mli:
