lib/util/rng.mli:
