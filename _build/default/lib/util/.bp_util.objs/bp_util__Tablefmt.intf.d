lib/util/tablefmt.mli:
