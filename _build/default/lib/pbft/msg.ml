open Bp_codec

type request = {
  client : Bp_sim.Addr.t;
  ts : int;
  kind : int;
  op : string;
  client_sig : string;
}

type prepared_proof = {
  pview : int;
  pseq : int;
  pdigest : string;
  pbatch : request list;
  prepare_sigs : (int * string) list;
}

type view_change = {
  new_view : int;
  stable_seq : int;
  stable_digest : string;
  prepared : prepared_proof list;
  vc_replica : int;
}

type body =
  | Request of request
  | Pre_prepare of { view : int; seq : int; digest : string; batch : request list }
  | Prepare of { view : int; seq : int; digest : string; replica : int }
  | Commit of { view : int; seq : int; digest : string; replica : int }
  | Reply of {
      view : int;
      ts : int;
      client : Bp_sim.Addr.t;
      replica : int;
      result : string;
    }
  | Checkpoint of { seq : int; state_digest : string; replica : int }
  | View_change of view_change
  | New_view of {
      view : int;
      view_change_envelopes : string list;
      batches : (int * string * request list) list;
      replica : int;
    }
  | Fetch of { from_seq : int; replica : int }
  | Fetch_reply of {
      batches : (int * string * request list) list;
      replica : int;
    }

(* ---------- encoding ---------- *)

let encode_addr e (a : Bp_sim.Addr.t) =
  Wire.varint e a.Bp_sim.Addr.dc;
  Wire.varint e a.Bp_sim.Addr.idx

let decode_addr d =
  let dc = Wire.read_varint d in
  let idx = Wire.read_varint d in
  Bp_sim.Addr.make ~dc ~idx

let request_signing_payload ~client ~ts ~kind ~op =
  Wire.encode (fun e ->
      encode_addr e client;
      Wire.varint e ts;
      Wire.u8 e kind;
      Wire.string e op)

let encode_request e r =
  encode_addr e r.client;
  Wire.varint e r.ts;
  Wire.u8 e r.kind;
  Wire.string e r.op;
  Wire.string e r.client_sig

let decode_request d =
  let client = decode_addr d in
  let ts = Wire.read_varint d in
  let kind = Wire.read_u8 d in
  let op = Wire.read_string d in
  let client_sig = Wire.read_string d in
  { client; ts; kind; op; client_sig }

let encode_proof e p =
  Wire.varint e p.pview;
  Wire.varint e p.pseq;
  Wire.string e p.pdigest;
  Wire.list e (encode_request e) p.pbatch;
  Wire.list e
    (fun (i, s) ->
      Wire.varint e i;
      Wire.string e s)
    p.prepare_sigs

let decode_proof d =
  let pview = Wire.read_varint d in
  let pseq = Wire.read_varint d in
  let pdigest = Wire.read_string d in
  let pbatch = Wire.read_list d decode_request in
  let prepare_sigs =
    Wire.read_list d (fun d ->
        let i = Wire.read_varint d in
        let s = Wire.read_string d in
        (i, s))
  in
  { pview; pseq; pdigest; pbatch; prepare_sigs }

let encode_body body =
  Wire.encode (fun e ->
      match body with
      | Request r ->
          Wire.u8 e 0;
          encode_request e r
      | Pre_prepare { view; seq; digest; batch } ->
          Wire.u8 e 1;
          Wire.varint e view;
          Wire.varint e seq;
          Wire.string e digest;
          Wire.list e (encode_request e) batch
      | Prepare { view; seq; digest; replica } ->
          Wire.u8 e 2;
          Wire.varint e view;
          Wire.varint e seq;
          Wire.string e digest;
          Wire.varint e replica
      | Commit { view; seq; digest; replica } ->
          Wire.u8 e 3;
          Wire.varint e view;
          Wire.varint e seq;
          Wire.string e digest;
          Wire.varint e replica
      | Reply { view; ts; client; replica; result } ->
          Wire.u8 e 4;
          Wire.varint e view;
          Wire.varint e ts;
          encode_addr e client;
          Wire.varint e replica;
          Wire.string e result
      | Checkpoint { seq; state_digest; replica } ->
          Wire.u8 e 5;
          Wire.varint e seq;
          Wire.string e state_digest;
          Wire.varint e replica
      | View_change { new_view; stable_seq; stable_digest; prepared; vc_replica } ->
          Wire.u8 e 6;
          Wire.varint e new_view;
          Wire.varint e stable_seq;
          Wire.string e stable_digest;
          Wire.list e (encode_proof e) prepared;
          Wire.varint e vc_replica
      | New_view { view; view_change_envelopes; batches; replica } ->
          Wire.u8 e 7;
          Wire.varint e view;
          Wire.list e (Wire.string e) view_change_envelopes;
          Wire.list e
            (fun (seq, digest, batch) ->
              Wire.varint e seq;
              Wire.string e digest;
              Wire.list e (encode_request e) batch)
            batches;
          Wire.varint e replica
      | Fetch { from_seq; replica } ->
          Wire.u8 e 8;
          Wire.varint e from_seq;
          Wire.varint e replica
      | Fetch_reply { batches; replica } ->
          Wire.u8 e 9;
          Wire.list e
            (fun (seq, digest, batch) ->
              Wire.varint e seq;
              Wire.string e digest;
              Wire.list e (encode_request e) batch)
            batches;
          Wire.varint e replica)

let decode_body s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 -> Request (decode_request d)
      | 1 ->
          let view = Wire.read_varint d in
          let seq = Wire.read_varint d in
          let digest = Wire.read_string d in
          let batch = Wire.read_list d decode_request in
          Pre_prepare { view; seq; digest; batch }
      | 2 ->
          let view = Wire.read_varint d in
          let seq = Wire.read_varint d in
          let digest = Wire.read_string d in
          let replica = Wire.read_varint d in
          Prepare { view; seq; digest; replica }
      | 3 ->
          let view = Wire.read_varint d in
          let seq = Wire.read_varint d in
          let digest = Wire.read_string d in
          let replica = Wire.read_varint d in
          Commit { view; seq; digest; replica }
      | 4 ->
          let view = Wire.read_varint d in
          let ts = Wire.read_varint d in
          let client = decode_addr d in
          let replica = Wire.read_varint d in
          let result = Wire.read_string d in
          Reply { view; ts; client; replica; result }
      | 5 ->
          let seq = Wire.read_varint d in
          let state_digest = Wire.read_string d in
          let replica = Wire.read_varint d in
          Checkpoint { seq; state_digest; replica }
      | 6 ->
          let new_view = Wire.read_varint d in
          let stable_seq = Wire.read_varint d in
          let stable_digest = Wire.read_string d in
          let prepared = Wire.read_list d decode_proof in
          let replica = Wire.read_varint d in
          View_change { new_view; stable_seq; stable_digest; prepared; vc_replica = replica }
      | 7 ->
          let view = Wire.read_varint d in
          let view_change_envelopes = Wire.read_list d Wire.read_string in
          let batches =
            Wire.read_list d (fun d ->
                let seq = Wire.read_varint d in
                let digest = Wire.read_string d in
                let batch = Wire.read_list d decode_request in
                (seq, digest, batch))
          in
          let replica = Wire.read_varint d in
          New_view { view; view_change_envelopes; batches; replica }
      | 8 ->
          let from_seq = Wire.read_varint d in
          let replica = Wire.read_varint d in
          Fetch { from_seq; replica }
      | 9 ->
          let batches =
            Wire.read_list d (fun d ->
                let seq = Wire.read_varint d in
                let digest = Wire.read_string d in
                let batch = Wire.read_list d decode_request in
                (seq, digest, batch))
          in
          let replica = Wire.read_varint d in
          Fetch_reply { batches; replica }
      | n -> raise (Wire.Malformed (Printf.sprintf "pbft msg tag %d" n)))

(* ---------- signatures ---------- *)

let make_request cfg ~client ~ts ~kind ~op =
  let payload = request_signing_payload ~client ~ts ~kind ~op in
  let identity = Config.identity cfg client in
  let client_sig =
    Bp_crypto.Signer.sign cfg.Config.keystore ~signer:identity payload
  in
  { client; ts; kind; op; client_sig }

let request_valid cfg r =
  let payload =
    request_signing_payload ~client:r.client ~ts:r.ts ~kind:r.kind ~op:r.op
  in
  Bp_crypto.Signer.verify cfg.Config.keystore
    ~signer:(Config.identity cfg r.client)
    ~msg:payload ~signature:r.client_sig

let batch_digest batch =
  let ctx = Bp_crypto.Sha256.init () in
  List.iter
    (fun r -> Bp_crypto.Sha256.update ctx (Wire.encode (fun e -> encode_request e r)))
    batch;
  Bp_crypto.Sha256.finalize ctx

let sender_of cfg = function
  | Request r -> Some r.client
  | Pre_prepare { view; _ } ->
      Some cfg.Config.nodes.(Config.primary_of_view cfg view)
  | Prepare { replica; _ }
  | Commit { replica; _ }
  | Reply { replica; _ }
  | Checkpoint { replica; _ }
  | View_change { vc_replica = replica; _ }
  | New_view { replica; _ }
  | Fetch { replica; _ }
  | Fetch_reply { replica; _ } ->
      if replica >= 0 && replica < Config.n cfg then
        Some cfg.Config.nodes.(replica)
      else None

let seal cfg ~sender body =
  let encoded = encode_body body in
  let signature =
    Bp_crypto.Signer.sign cfg.Config.keystore
      ~signer:(Config.identity cfg sender)
      encoded
  in
  Wire.encode (fun e ->
      Wire.string e encoded;
      Wire.string e signature)

let seal_forged cfg ~sender body =
  ignore (Config.identity cfg sender);
  let encoded = encode_body body in
  Wire.encode (fun e ->
      Wire.string e encoded;
      Wire.string e (String.make 32 '\x00'))

let open_envelope cfg ~claimed s =
  match
    Wire.decode s (fun d ->
        let encoded = Wire.read_string d in
        let signature = Wire.read_string d in
        (encoded, signature))
  with
  | Error e -> Error e
  | Ok (encoded, signature) -> (
      match decode_body encoded with
      | Error e -> Error e
      | Ok body -> (
          match claimed body with
          | None -> Error "no sender identity"
          | Some sender ->
              if
                Bp_crypto.Signer.verify cfg.Config.keystore
                  ~signer:(Config.identity cfg sender)
                  ~msg:encoded ~signature
              then Ok body
              else Error "bad signature"))

let verify_envelope cfg s = open_envelope cfg ~claimed:(sender_of cfg) s
