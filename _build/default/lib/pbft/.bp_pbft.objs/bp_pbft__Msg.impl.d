lib/pbft/msg.ml: Array Bp_codec Bp_crypto Bp_sim Config List Printf String Wire
