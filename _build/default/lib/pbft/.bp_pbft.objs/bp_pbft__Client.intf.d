lib/pbft/client.mli: Bp_net Config
