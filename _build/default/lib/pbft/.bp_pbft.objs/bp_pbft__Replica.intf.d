lib/pbft/replica.mli: Bp_net Config Msg
