lib/pbft/config.mli: Bp_crypto Bp_sim
