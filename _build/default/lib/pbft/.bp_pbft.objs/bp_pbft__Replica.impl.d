lib/pbft/replica.ml: Addr Array Bp_codec Bp_crypto Bp_net Bp_sim Config Engine Hashtbl Int List Logs Map Msg Network Option Printf Queue Set Stdlib String Time
