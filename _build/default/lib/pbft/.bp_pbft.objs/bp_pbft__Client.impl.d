lib/pbft/client.ml: Addr Array Bp_net Bp_sim Config Engine Int List Map Msg Network Stdlib String Time
