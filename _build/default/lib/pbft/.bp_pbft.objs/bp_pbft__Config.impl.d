lib/pbft/config.ml: Array Bp_crypto Bp_sim
