lib/pbft/msg.mli: Bp_sim Config
