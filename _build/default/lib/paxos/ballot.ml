type t = { round : int; node : int }

let zero = { round = 0; node = -1 }
let next b ~node = { round = b.round + 1; node }

let compare a b =
  let c = Int.compare a.round b.round in
  if c <> 0 then c else Int.compare a.node b.node

let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let equal a b = compare a b = 0

let encode e b =
  Bp_codec.Wire.varint e b.round;
  Bp_codec.Wire.zigzag e b.node

let decode d =
  let round = Bp_codec.Wire.read_varint d in
  let node = Bp_codec.Wire.read_zigzag d in
  { round; node }

let pp ppf b = Format.fprintf ppf "(%d.%d)" b.round b.node
