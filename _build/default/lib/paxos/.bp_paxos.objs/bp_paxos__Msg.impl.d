lib/paxos/msg.ml: Ballot Bp_codec Printf Wire
