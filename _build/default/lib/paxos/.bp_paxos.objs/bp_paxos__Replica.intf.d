lib/paxos/replica.mli: Bp_net Bp_sim
