lib/paxos/replica.ml: Addr Array Ballot Bp_net Bp_sim Bp_util Engine Hashtbl Int List Logs Map Msg Network Set Stdlib String Time
