lib/paxos/ballot.ml: Bp_codec Format Int
