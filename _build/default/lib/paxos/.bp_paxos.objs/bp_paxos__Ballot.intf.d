lib/paxos/ballot.mli: Bp_codec Format
