lib/paxos/msg.mli: Ballot
