(** Paxos wire messages (Lamport's "Paxos Made Simple", multi-decree,
    leader-based — the structure of the paper's Algorithm 3). *)

type accepted_entry = { instance : int; ballot : Ballot.t; value : string }

type t =
  | Prepare of { ballot : Ballot.t; from_instance : int }
      (** Phase 1a for all instances >= [from_instance]. *)
  | Promise of {
      ballot : Ballot.t;
      ok : bool;  (** [false] = nack: a higher ballot was promised *)
      accepted : accepted_entry list;
          (** previously accepted values the new leader must re-propose *)
    }
  | Propose of { ballot : Ballot.t; instance : int; value : string }
      (** Phase 2a. *)
  | Accepted of { ballot : Ballot.t; instance : int; ok : bool }
  | Learn of { instance : int; value : string }
      (** Commit notification from the leader to learners. *)

val encode : t -> string
val decode : string -> (t, string) result
val tag : string
(** Transport tag for paxos traffic. *)
