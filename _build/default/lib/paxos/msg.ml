open Bp_codec

type accepted_entry = { instance : int; ballot : Ballot.t; value : string }

type t =
  | Prepare of { ballot : Ballot.t; from_instance : int }
  | Promise of { ballot : Ballot.t; ok : bool; accepted : accepted_entry list }
  | Propose of { ballot : Ballot.t; instance : int; value : string }
  | Accepted of { ballot : Ballot.t; instance : int; ok : bool }
  | Learn of { instance : int; value : string }

let tag = "paxos"

let encode m =
  Wire.encode (fun e ->
      match m with
      | Prepare { ballot; from_instance } ->
          Wire.u8 e 0;
          Ballot.encode e ballot;
          Wire.varint e from_instance
      | Promise { ballot; ok; accepted } ->
          Wire.u8 e 1;
          Ballot.encode e ballot;
          Wire.bool e ok;
          Wire.list e
            (fun { instance; ballot; value } ->
              Wire.varint e instance;
              Ballot.encode e ballot;
              Wire.string e value)
            accepted
      | Propose { ballot; instance; value } ->
          Wire.u8 e 2;
          Ballot.encode e ballot;
          Wire.varint e instance;
          Wire.string e value
      | Accepted { ballot; instance; ok } ->
          Wire.u8 e 3;
          Ballot.encode e ballot;
          Wire.varint e instance;
          Wire.bool e ok
      | Learn { instance; value } ->
          Wire.u8 e 4;
          Wire.varint e instance;
          Wire.string e value)

let decode s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 ->
          let ballot = Ballot.decode d in
          Prepare { ballot; from_instance = Wire.read_varint d }
      | 1 ->
          let ballot = Ballot.decode d in
          let ok = Wire.read_bool d in
          let accepted =
            Wire.read_list d (fun d ->
                let instance = Wire.read_varint d in
                let ballot = Ballot.decode d in
                let value = Wire.read_string d in
                { instance; ballot; value })
          in
          Promise { ballot; ok; accepted }
      | 2 ->
          let ballot = Ballot.decode d in
          let instance = Wire.read_varint d in
          Propose { ballot; instance; value = Wire.read_string d }
      | 3 ->
          let ballot = Ballot.decode d in
          let instance = Wire.read_varint d in
          Accepted { ballot; instance; ok = Wire.read_bool d }
      | 4 ->
          let instance = Wire.read_varint d in
          Learn { instance; value = Wire.read_string d }
      | n -> raise (Wire.Malformed (Printf.sprintf "paxos msg tag %d" n)))
