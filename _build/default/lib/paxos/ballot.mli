(** Paxos ballot numbers: a round counter paired with the proposer's node
    id, so ballots from distinct nodes never tie. *)

type t = { round : int; node : int }

val zero : t
(** Smaller than any real ballot. *)

val next : t -> node:int -> t
(** First ballot of the next round owned by [node]. *)

val compare : t -> t -> int
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val equal : t -> t -> bool

val encode : Bp_codec.Wire.encoder -> t -> unit
val decode : Bp_codec.Wire.decoder -> t
val pp : Format.formatter -> t -> unit
