(** A multi-decree Paxos node (acceptor + learner + potential leader).

    Mirrors the structure of the paper's Algorithm 3: a [LeaderElection]
    routine (phase 1 over all instances) and a [Replication] routine
    (phase 2 per value). Used directly as the plain-Paxos baseline of
    Fig. 7, and — rebuilt on top of the Blockplane API — as
    Blockplane-Paxos.

    All nodes are symmetric; any node may call {!try_lead}. A node that
    observes a higher ballot (nack) silently steps down, matching
    [l = false] in Algorithm 3. *)

type config = {
  nodes : Bp_sim.Addr.t array;  (** node id [i] lives at [nodes.(i)] *)
  election_timeout : Bp_sim.Time.t;
      (** retry interval for auto-elections (see [auto_retry]) *)
}

type t

val create :
  ?auto_retry:bool ->
  Bp_net.Transport.t ->
  config ->
  id:int ->
  on_learn:(int -> string -> unit) ->
  t
(** Installs the paxos handler on the transport. [on_learn] fires exactly
    once per (instance, chosen value) on this node, in arbitrary instance
    order. With [auto_retry] (default false), a failed or timed-out
    election is retried with a higher ballot after a randomized backoff —
    needed for liveness under duelling proposers. *)

val id : t -> int
val is_leader : t -> bool

val try_lead : t -> on_elected:(unit -> unit) -> unit
(** Run the leader-election routine. [on_elected] fires if this attempt
    wins a majority of promises; a nacked attempt just gives up (unless
    [auto_retry]). *)

val propose : t -> string -> on_commit:(int -> unit) -> unit
(** Replication routine. Must be leader.
    @raise Failure if this node is not the leader. [on_commit] fires when
    a majority has accepted (the instant the paper measures as the
    Replication-phase latency). *)

val chosen : t -> int -> string option
(** Learned value for an instance. *)

val chosen_count : t -> int

exception Conflicting_choice of int * string * string
(** Raised if two different values are ever learned for one instance — a
    safety violation; tests rely on it never firing. *)
