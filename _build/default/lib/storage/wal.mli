(** Write-ahead log encoding with crash recovery.

    Serializes a sequence of records into a byte image (standing in for a
    disk file in the simulation) as CRC-framed records. Recovery scans from
    the start and stops at the first torn or corrupt record, recovering
    exactly the durable prefix — the semantics Blockplane nodes need to
    restart after a crash (§VI-B). *)

type t

val create : unit -> t

val append : t -> string -> unit

val size : t -> int
(** Bytes of the on-disk image. *)

val contents : t -> string
(** The raw image (what would be on disk). *)

val of_contents : string -> t * int
(** Rebuild from a (possibly damaged) image. Returns the WAL holding every
    intact record plus the count of trailing bytes discarded. *)

val records : t -> string list

val truncate_tail : t -> int -> t
(** [truncate_tail t n] simulates a crash that lost the last [n] bytes. *)

val corrupt_byte : t -> int -> t
(** Flip one byte of the image at the given offset (fault injection). *)
