(** Append-only log with a SHA-256 hash chain.

    Every Blockplane node keeps its copy of the Local Log in one of these.
    Entry [i]'s digest commits to the whole prefix, so two replicas agree
    on a prefix iff they agree on a single digest — the cheap way to audit
    agreement in tests and to catch up lagging replicas. *)

type t

type entry = { index : int; payload : string; digest : string }

val create : unit -> t

val append : t -> string -> entry
(** Append a payload; returns the entry with its chained digest. *)

val length : t -> int

val get : t -> int -> entry option

val payload_exn : t -> int -> string
(** @raise Invalid_argument if out of range. *)

val last_digest : t -> string
(** Digest of the latest entry, or the genesis digest when empty. *)

val digest_at : t -> int -> string
(** Digest after [n] entries; [digest_at t 0] is the genesis digest.
    @raise Invalid_argument if [n] exceeds the length. *)

val iter_from : t -> int -> (entry -> unit) -> unit
(** Apply to every entry with index >= the given one, in order. *)

val to_list : t -> entry list

val verify_chain : t -> bool
(** Recompute the chain; [false] if any stored digest mismatches (detects
    in-memory tampering in byzantine tests). *)

val tamper : t -> int -> string -> unit
(** Overwrite a payload without fixing digests — test-only hook for
    modelling a byzantine node rewriting its log. *)
