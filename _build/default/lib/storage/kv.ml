module Smap = Map.Make (String)

type t = { mutable map : string Smap.t }

type op =
  | Put of string * string
  | Delete of string
  | Add of string * int
  | Cas of string * string option * string

type outcome = Applied | Failed of string

let create () = { map = Smap.empty }
let copy t = { map = t.map }
let get t k = Smap.find_opt k t.map
let bindings t = Smap.bindings t.map

let check t = function
  | Put _ -> Ok ()
  | Delete k ->
      if Smap.mem k t.map then Ok () else Error "delete: no such key"
  | Add (k, _) -> (
      match Smap.find_opt k t.map with
      | None -> Ok () (* treated as 0 *)
      | Some v -> (
          match int_of_string_opt v with
          | Some _ -> Ok ()
          | None -> Error "add: value not numeric"))
  | Cas (k, expected, _) ->
      if Smap.find_opt k t.map = expected then Ok ()
      else Error "cas: expectation failed"

let can_apply t op = match check t op with Ok () -> true | Error _ -> false

let apply t op =
  match check t op with
  | Error msg -> Failed msg
  | Ok () ->
      (match op with
      | Put (k, v) -> t.map <- Smap.add k v t.map
      | Delete k -> t.map <- Smap.remove k t.map
      | Add (k, n) ->
          let current =
            match Smap.find_opt k t.map with
            | None -> 0
            | Some v -> int_of_string v
          in
          t.map <- Smap.add k (string_of_int (current + n)) t.map
      | Cas (k, _, v) -> t.map <- Smap.add k v t.map);
      Applied

let digest t =
  let ctx = Bp_crypto.Sha256.init () in
  Smap.iter
    (fun k v ->
      Bp_crypto.Sha256.update ctx (Printf.sprintf "%d:%s=%d:%s;" (String.length k) k (String.length v) v))
    t.map;
  Bp_crypto.Sha256.finalize ctx

let encode_op op =
  Bp_codec.Wire.encode (fun e ->
      match op with
      | Put (k, v) ->
          Bp_codec.Wire.u8 e 0;
          Bp_codec.Wire.string e k;
          Bp_codec.Wire.string e v
      | Delete k ->
          Bp_codec.Wire.u8 e 1;
          Bp_codec.Wire.string e k
      | Add (k, n) ->
          Bp_codec.Wire.u8 e 2;
          Bp_codec.Wire.string e k;
          Bp_codec.Wire.zigzag e n
      | Cas (k, expected, v) ->
          Bp_codec.Wire.u8 e 3;
          Bp_codec.Wire.string e k;
          Bp_codec.Wire.option e (Bp_codec.Wire.string e) expected;
          Bp_codec.Wire.string e v)

let decode_op s =
  Bp_codec.Wire.decode s (fun d ->
      match Bp_codec.Wire.read_u8 d with
      | 0 ->
          let k = Bp_codec.Wire.read_string d in
          Put (k, Bp_codec.Wire.read_string d)
      | 1 -> Delete (Bp_codec.Wire.read_string d)
      | 2 ->
          let k = Bp_codec.Wire.read_string d in
          Add (k, Bp_codec.Wire.read_zigzag d)
      | 3 ->
          let k = Bp_codec.Wire.read_string d in
          let expected = Bp_codec.Wire.read_option d Bp_codec.Wire.read_string in
          Cas (k, expected, Bp_codec.Wire.read_string d)
      | n -> raise (Bp_codec.Wire.Malformed (Printf.sprintf "kv op tag %d" n)))
