lib/storage/kv.mli:
