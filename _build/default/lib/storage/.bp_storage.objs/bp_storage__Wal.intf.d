lib/storage/wal.mli:
