lib/storage/wal.ml: Bp_codec Buffer Bytes Char List Stdlib String
