lib/storage/log_store.ml: Array Bp_crypto List Printf Stdlib String
