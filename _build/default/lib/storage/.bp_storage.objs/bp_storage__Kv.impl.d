lib/storage/kv.ml: Bp_codec Bp_crypto Map Printf String
