type entry = { index : int; payload : string; digest : string }

type t = { mutable entries : entry array; mutable len : int }

let genesis = Bp_crypto.Sha256.digest "blockplane-genesis"

let create () =
  { entries = Array.make 16 { index = -1; payload = ""; digest = "" }; len = 0 }

let length t = t.len

let last_digest t = if t.len = 0 then genesis else t.entries.(t.len - 1).digest

let chain prev payload = Bp_crypto.Sha256.digest_list [ prev; payload ]

let append t payload =
  let e = { index = t.len; payload; digest = chain (last_digest t) payload } in
  if t.len = Array.length t.entries then begin
    let bigger = Array.make (2 * t.len) e in
    Array.blit t.entries 0 bigger 0 t.len;
    t.entries <- bigger
  end;
  t.entries.(t.len) <- e;
  t.len <- t.len + 1;
  e

let get t i = if i < 0 || i >= t.len then None else Some t.entries.(i)

let payload_exn t i =
  match get t i with
  | Some e -> e.payload
  | None -> invalid_arg (Printf.sprintf "Log_store.payload_exn: index %d" i)

let digest_at t n =
  if n < 0 || n > t.len then invalid_arg "Log_store.digest_at";
  if n = 0 then genesis else t.entries.(n - 1).digest

let iter_from t start f =
  for i = Stdlib.max 0 start to t.len - 1 do
    f t.entries.(i)
  done

let to_list t = List.init t.len (fun i -> t.entries.(i))

let verify_chain t =
  let rec go i prev =
    if i >= t.len then true
    else begin
      let e = t.entries.(i) in
      String.equal e.digest (chain prev e.payload) && go (i + 1) e.digest
    end
  in
  go 0 genesis

let tamper t i payload =
  match get t i with
  | None -> invalid_arg "Log_store.tamper"
  | Some e -> t.entries.(i) <- { e with payload }
