type t = { buf : Buffer.t; mutable recs : string list (* newest first *) }

let create () = { buf = Buffer.create 256; recs = [] }

let append t payload =
  Buffer.add_string t.buf (Bp_codec.Frame.seal payload);
  t.recs <- payload :: t.recs

let size t = Buffer.length t.buf
let contents t = Buffer.contents t.buf
let records t = List.rev t.recs

let of_contents image =
  let t = create () in
  let len = String.length image in
  let rec scan off =
    if off >= len then 0
    else
      match Bp_codec.Frame.unseal_prefix image ~off with
      | Ok (payload, consumed) ->
          append t payload;
          scan (off + consumed)
      | Error (`Corrupt | `Malformed) -> len - off
  in
  let discarded = scan 0 in
  (t, discarded)

let truncate_tail t n =
  let image = contents t in
  let keep = Stdlib.max 0 (String.length image - n) in
  fst (of_contents (String.sub image 0 keep))

let corrupt_byte t off =
  let image = Bytes.of_string (contents t) in
  if off < 0 || off >= Bytes.length image then invalid_arg "Wal.corrupt_byte";
  Bytes.set image off (Char.chr (Char.code (Bytes.get image off) lxor 0x40));
  fst (of_contents (Bytes.to_string image))
