(** A deterministic in-memory key-value store with serializable operations.

    This is the application state machine used by the replicated examples:
    operations have a wire encoding (so they can be carried in Local Log
    records) and applying an operation is deterministic, as Blockplane
    requires of user protocols (§III-C). *)

type t

type op =
  | Put of string * string
  | Delete of string
  | Add of string * int
      (** Numeric add on a decimal-encoded value; fails on non-numeric. *)
  | Cas of string * string option * string
      (** Compare-and-swap: expected current value (None = absent). *)

type outcome = Applied | Failed of string

val create : unit -> t
val copy : t -> t
val get : t -> string -> string option
val bindings : t -> (string * string) list
(** Sorted by key. *)

val apply : t -> op -> outcome
(** Mutates the store; [Failed] leaves it untouched. *)

val can_apply : t -> op -> bool
(** Pure check whether [apply] would succeed — verification-routine
    building block. *)

val digest : t -> string
(** SHA-256 over the sorted bindings: equal iff states are equal. *)

val encode_op : op -> string
val decode_op : string -> (op, string) result
