lib/net/heartbeat.ml: Addr Bp_sim Engine List Network Time Transport
