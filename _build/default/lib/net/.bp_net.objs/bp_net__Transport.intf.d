lib/net/transport.mli: Bp_sim
