lib/net/transport.ml: Addr Bp_codec Bp_sim Engine Float Hashtbl Int Logs Map Network Printf Stdlib Time Topology
