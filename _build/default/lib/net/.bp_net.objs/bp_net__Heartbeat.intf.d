lib/net/heartbeat.mli: Bp_sim Transport
