(** Heartbeat-based failure detector.

    Periodically pings peers (unreliably — losing a heartbeat must not
    trigger retransmission storms) and raises suspicion when no pong has
    been heard for [timeout]. Used by the geo-correlated layer to detect a
    failed primary participant, and by tests. *)

type t

val serve : Transport.t -> unit
(** Install the ping-responder on a node that is monitored but does not
    itself monitor anyone. {!create} installs it implicitly. *)

val create :
  Transport.t ->
  peers:Bp_sim.Addr.t list ->
  period:Bp_sim.Time.t ->
  timeout:Bp_sim.Time.t ->
  on_suspect:(Bp_sim.Addr.t -> unit) ->
  ?on_restore:(Bp_sim.Addr.t -> unit) ->
  unit ->
  t
(** Installs handlers on the transport (tags ["_hb.ping"]/["_hb.pong"]) and
    starts the ping/check timers. [on_suspect] fires once per downtime
    episode; [on_restore] fires when a suspected peer is heard again. *)

val suspected : t -> Bp_sim.Addr.t -> bool

val stop : t -> unit
