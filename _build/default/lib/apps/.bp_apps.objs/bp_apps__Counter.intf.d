lib/apps/counter.mli: Blockplane
