lib/apps/two_phase.ml: Api Blockplane Bp_codec Bp_crypto Bp_storage Hashtbl List Option Printf Record String Unit_node Wire
