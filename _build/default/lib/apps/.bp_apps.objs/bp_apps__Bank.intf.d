lib/apps/bank.mli: Blockplane
