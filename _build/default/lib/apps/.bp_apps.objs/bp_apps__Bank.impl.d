lib/apps/bank.ml: Api App Blockplane Bp_codec Bp_crypto Hashtbl List Option Printf Record String Unit_node Wire
