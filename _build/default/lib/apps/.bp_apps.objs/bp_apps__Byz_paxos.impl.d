lib/apps/byz_paxos.ml: Api Blockplane Bp_codec Bp_crypto Fun List Printf Record Stdlib String Wire
