lib/apps/hier_pbft.ml: Addr Array Bp_codec Bp_crypto Bp_net Bp_pbft Bp_sim Bp_util Engine List Network Printf String Wire
