lib/apps/byz_paxos.mli: Blockplane
