lib/apps/counter.ml: Api App Blockplane Bp_crypto List Printf Record String Unit_node
