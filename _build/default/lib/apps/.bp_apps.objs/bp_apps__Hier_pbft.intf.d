lib/apps/hier_pbft.mli: Bp_sim
