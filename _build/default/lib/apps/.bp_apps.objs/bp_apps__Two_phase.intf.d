lib/apps/two_phase.mli: Blockplane Bp_storage
