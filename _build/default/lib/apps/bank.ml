open Blockplane
open Bp_codec

type op =
  | Open of string * int
  | Deposit of string * int
  | Withdraw of string * int
  | Credit_from_transfer of string * int
  | Transfer_debit of {
      from_account : string;
      dest : int;
      to_account : string;
      amount : int;
    }

let encode_op op =
  Wire.encode (fun e ->
      match op with
      | Open (acct, n) ->
          Wire.u8 e 0;
          Wire.string e acct;
          Wire.zigzag e n
      | Deposit (acct, n) ->
          Wire.u8 e 1;
          Wire.string e acct;
          Wire.zigzag e n
      | Withdraw (acct, n) ->
          Wire.u8 e 2;
          Wire.string e acct;
          Wire.zigzag e n
      | Credit_from_transfer (acct, n) ->
          Wire.u8 e 3;
          Wire.string e acct;
          Wire.zigzag e n
      | Transfer_debit { from_account; dest; to_account; amount } ->
          Wire.u8 e 4;
          Wire.string e from_account;
          Wire.varint e dest;
          Wire.string e to_account;
          Wire.zigzag e amount)

let decode_op s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 ->
          let acct = Wire.read_string d in
          Open (acct, Wire.read_zigzag d)
      | 1 ->
          let acct = Wire.read_string d in
          Deposit (acct, Wire.read_zigzag d)
      | 2 ->
          let acct = Wire.read_string d in
          Withdraw (acct, Wire.read_zigzag d)
      | 3 ->
          let acct = Wire.read_string d in
          Credit_from_transfer (acct, Wire.read_zigzag d)
      | 4 ->
          let from_account = Wire.read_string d in
          let dest = Wire.read_varint d in
          let to_account = Wire.read_string d in
          let amount = Wire.read_zigzag d in
          Transfer_debit { from_account; dest; to_account; amount }
      | n -> raise (Wire.Malformed (Printf.sprintf "bank op %d" n)))

(* Transfer messages on the wire: the credit instruction. *)
let xfer_payload ~to_account ~amount =
  Wire.encode (fun e ->
      Wire.string e "xfer";
      Wire.string e to_account;
      Wire.zigzag e amount)

let parse_xfer s =
  match
    Wire.decode s (fun d ->
        let tag = Wire.read_string d in
        let to_account = Wire.read_string d in
        let amount = Wire.read_zigzag d in
        (tag, to_account, amount))
  with
  | Ok ("xfer", to_account, amount) -> Some (to_account, amount)
  | _ -> None

module Ledger = struct
  type state = {
    balances : (string, int) Hashtbl.t;
    mutable outbox : (int * string * int) list; (* dest, to_account, amount *)
    mutable inbox : (string * int) list; (* to_account, amount, unconsumed *)
  }

  let create () = { balances = Hashtbl.create 16; outbox = []; inbox = [] }

  let balance state acct = Hashtbl.find_opt state.balances acct

  let remove_first p l =
    let rec go acc = function
      | [] -> None
      | x :: rest -> if p x then Some (List.rev_append acc rest) else go (x :: acc) rest
    in
    go [] l

  let verify_op state = function
    | Open (acct, initial) -> initial >= 0 && not (Hashtbl.mem state.balances acct)
    | Deposit (acct, n) -> n > 0 && Hashtbl.mem state.balances acct
    | Withdraw (acct, n) -> (
        n > 0
        &&
        match balance state acct with Some b -> b >= n | None -> false)
    | Credit_from_transfer (acct, n) ->
        (* Only a genuinely received transfer can mint this credit. *)
        List.mem (acct, n) state.inbox
    | Transfer_debit { from_account; amount; _ } -> (
        amount > 0
        &&
        match balance state from_account with
        | Some b -> b >= amount
        | None -> false)

  let verify state = function
    | Record.Commit payload -> (
        match decode_op payload with Ok op -> verify_op state op | Error _ -> false)
    | Record.Comm { Record.dest; payload; _ } -> (
        (* A transfer message must be licensed by a committed debit. *)
        match parse_xfer payload with
        | Some (to_account, amount) ->
            List.mem (dest, to_account, amount) state.outbox
        | None -> false)
    | Record.Recv _ -> true
    | Record.Mirrored _ -> true

  let apply state = function
    | Record.Commit payload -> (
        match decode_op payload with
        | Error _ -> ()
        | Ok (Open (acct, initial)) -> Hashtbl.replace state.balances acct initial
        | Ok (Deposit (acct, n)) ->
            Hashtbl.replace state.balances acct
              (Option.value ~default:0 (balance state acct) + n)
        | Ok (Withdraw (acct, n)) ->
            Hashtbl.replace state.balances acct
              (Option.value ~default:0 (balance state acct) - n)
        | Ok (Credit_from_transfer (acct, n)) ->
            Hashtbl.replace state.balances acct
              (Option.value ~default:0 (balance state acct) + n);
            (match remove_first (fun x -> x = (acct, n)) state.inbox with
            | Some rest -> state.inbox <- rest
            | None -> ())
        | Ok (Transfer_debit { from_account; dest; to_account; amount }) ->
            Hashtbl.replace state.balances from_account
              (Option.value ~default:0 (balance state from_account) - amount);
            state.outbox <- (dest, to_account, amount) :: state.outbox)
    | Record.Comm { Record.dest; payload; _ } -> (
        match parse_xfer payload with
        | Some (to_account, amount) -> (
            match
              remove_first (fun x -> x = (dest, to_account, amount)) state.outbox
            with
            | Some rest -> state.outbox <- rest
            | None -> ())
        | None -> ())
    | Record.Recv tr -> (
        match parse_xfer tr.Record.tpayload with
        | Some (to_account, amount) -> state.inbox <- (to_account, amount) :: state.inbox
        | None -> ())
    | Record.Mirrored _ -> ()

  let sorted_balances state =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) state.balances [])

  let digest state =
    Bp_crypto.Sha256.digest
      (String.concat ";"
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (sorted_balances state))
      ^ Printf.sprintf "|out=%d|in=%d" (List.length state.outbox)
          (List.length state.inbox))

  let describe state =
    String.concat ";"
      (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (sorted_balances state))
end

type t = { api : Api.t }

let attach api =
  let t = { api } in
  (* Destination side: every received transfer message is committed as a
     credit. *)
  Api.on_receive api (fun ~src:_ payload ->
      match parse_xfer payload with
      | Some (to_account, amount) ->
          Api.log_commit api
            (encode_op (Credit_from_transfer (to_account, amount)))
            ~on_done:ignore
      | None -> ());
  t

let commit t ?on_rejected op ~on_done =
  Api.log_commit t.api ?on_rejected (encode_op op) ~on_done

let open_account t acct initial ~on_done = commit t (Open (acct, initial)) ~on_done
let deposit t acct n ~on_done = commit t (Deposit (acct, n)) ~on_done

let withdraw t ?on_rejected acct n ~on_done =
  commit t ?on_rejected (Withdraw (acct, n)) ~on_done

let transfer t ?on_rejected ~from_account ~dest ~to_account amount ~on_done =
  commit t ?on_rejected
    (Transfer_debit { from_account; dest; to_account; amount })
    ~on_done:(fun () ->
      Api.send t.api ~dest (xfer_payload ~to_account ~amount) ~on_done)

let balance node acct =
  let described = App.describe (Unit_node.app node) in
  let entries = String.split_on_char ';' described in
  List.find_map
    (fun entry ->
      match String.split_on_char '=' entry with
      | [ a; b ] when String.equal a acct -> int_of_string_opt b
      | _ -> None)
    entries
