open Blockplane
open Bp_codec

(* ---------- wire messages between participants ---------- *)

type wmsg =
  | Prepare of { tid : string; op : Bp_storage.Kv.op }
  | Vote of { tid : string; yes : bool; cohort : int }
  | Decision of { tid : string; commit : bool }

let encode_wmsg m =
  Wire.encode (fun e ->
      match m with
      | Prepare { tid; op } ->
          Wire.u8 e 0;
          Wire.string e tid;
          Wire.string e (Bp_storage.Kv.encode_op op)
      | Vote { tid; yes; cohort } ->
          Wire.u8 e 1;
          Wire.string e tid;
          Wire.bool e yes;
          Wire.varint e cohort
      | Decision { tid; commit } ->
          Wire.u8 e 2;
          Wire.string e tid;
          Wire.bool e commit)

let decode_wmsg s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 ->
          let tid = Wire.read_string d in
          let op_s = Wire.read_string d in
          (match Bp_storage.Kv.decode_op op_s with
          | Ok op -> Prepare { tid; op }
          | Error m -> raise (Wire.Malformed m))
      | 1 ->
          let tid = Wire.read_string d in
          let yes = Wire.read_bool d in
          let cohort = Wire.read_varint d in
          Vote { tid; yes; cohort }
      | 2 ->
          let tid = Wire.read_string d in
          Decision { tid; commit = Wire.read_bool d }
      | n -> raise (Wire.Malformed (Printf.sprintf "2pc wmsg %d" n)))

let kind_of_wmsg = function
  | Prepare _ -> "prepare"
  | Vote _ -> "vote"
  | Decision _ -> "decision"

(* ---------- committed protocol events ---------- *)

type event =
  | Begin of { tid : string; cohorts : int list }
  | Decide of { tid : string; commit : bool }
  | Vote_cast of { tid : string; yes : bool; cohort : int }
  | Finish of { tid : string }

let encode_event ev =
  Wire.encode (fun e ->
      match ev with
      | Begin { tid; cohorts } ->
          Wire.u8 e 0;
          Wire.string e tid;
          Wire.list e (Wire.varint e) cohorts
      | Decide { tid; commit } ->
          Wire.u8 e 1;
          Wire.string e tid;
          Wire.bool e commit
      | Vote_cast { tid; yes; cohort } ->
          Wire.u8 e 2;
          Wire.string e tid;
          Wire.bool e yes;
          Wire.varint e cohort
      | Finish { tid } ->
          Wire.u8 e 3;
          Wire.string e tid)

let decode_event s =
  Wire.decode s (fun d ->
      match Wire.read_u8 d with
      | 0 ->
          let tid = Wire.read_string d in
          let cohorts = Wire.read_list d Wire.read_varint in
          Begin { tid; cohorts }
      | 1 ->
          let tid = Wire.read_string d in
          Decide { tid; commit = Wire.read_bool d }
      | 2 ->
          let tid = Wire.read_string d in
          let yes = Wire.read_bool d in
          let cohort = Wire.read_varint d in
          Vote_cast { tid; yes; cohort }
      | 3 -> Finish { tid = Wire.read_string d }
      | n -> raise (Wire.Malformed (Printf.sprintf "2pc event %d" n)))

(* ---------- the replicated protocol state ---------- *)

module Protocol = struct
  type txn_coord = {
    cohorts : int list;
    mutable votes : (int * bool) list; (* received votes *)
    mutable decided : bool option;
  }

  type txn_cohort = {
    cop : Bp_storage.Kv.op;
    mutable voted : bool option;
    mutable decision : bool option; (* received decision *)
    mutable finished : bool;
  }

  type state = {
    kv : Bp_storage.Kv.t;
    coord : (string, txn_coord) Hashtbl.t;
    cohort : (string, txn_cohort) Hashtbl.t;
    credits : (string * string, int) Hashtbl.t; (* (msg kind, tid) -> sends allowed *)
  }

  let create () =
    {
      kv = Bp_storage.Kv.create ();
      coord = Hashtbl.create 16;
      cohort = Hashtbl.create 16;
      credits = Hashtbl.create 16;
    }

  let credit state key =
    Option.value ~default:0 (Hashtbl.find_opt state.credits key)

  let add_credit state key n = Hashtbl.replace state.credits key (credit state key + n)

  let all_votes_yes_and_complete t =
    List.length t.votes = List.length t.cohorts
    && List.for_all (fun (_, yes) -> yes) t.votes

  let verify state = function
    | Record.Commit payload -> (
        match decode_event payload with
        | Error _ -> false
        | Ok (Begin { tid; cohorts }) ->
            cohorts <> [] && not (Hashtbl.mem state.coord tid)
        | Ok (Decide { tid; commit }) -> (
            match Hashtbl.find_opt state.coord tid with
            | None -> false
            | Some t ->
                t.decided = None
                (* COMMIT is only a legal decision when every cohort's YES
                   vote was genuinely received — the safety core of 2PC. *)
                && ((not commit) || all_votes_yes_and_complete t))
        | Ok (Vote_cast { tid; yes; cohort = _ }) -> (
            match Hashtbl.find_opt state.cohort tid with
            | None -> false (* voting without a received prepare *)
            | Some t ->
                t.voted = None
                (* the vote must be honest about whether the op applies *)
                && yes = Bp_storage.Kv.can_apply state.kv t.cop)
        | Ok (Finish { tid }) -> (
            match Hashtbl.find_opt state.cohort tid with
            | None -> false
            | Some t -> t.decision <> None && not t.finished))
    | Record.Comm { Record.payload; _ } -> (
        match decode_wmsg payload with
        | Error _ -> false
        | Ok m -> (
            let tid =
              match m with
              | Prepare { tid; _ } | Vote { tid; _ } | Decision { tid; _ } -> tid
            in
            credit state (kind_of_wmsg m, tid) > 0))
    | Record.Recv _ -> true
    | Record.Mirrored _ -> true

  let apply state = function
    | Record.Commit payload -> (
        match decode_event payload with
        | Error _ -> ()
        | Ok (Begin { tid; cohorts }) ->
            Hashtbl.replace state.coord tid { cohorts; votes = []; decided = None };
            add_credit state ("prepare", tid) (List.length cohorts)
        | Ok (Decide { tid; commit }) -> (
            match Hashtbl.find_opt state.coord tid with
            | None -> ()
            | Some t ->
                t.decided <- Some commit;
                add_credit state ("decision", tid) (List.length t.cohorts))
        | Ok (Vote_cast { tid; yes; cohort = _ }) -> (
            match Hashtbl.find_opt state.cohort tid with
            | None -> ()
            | Some t ->
                t.voted <- Some yes;
                add_credit state ("vote", tid) 1)
        | Ok (Finish { tid }) -> (
            match Hashtbl.find_opt state.cohort tid with
            | None -> ()
            | Some t ->
                t.finished <- true;
                if t.decision = Some true then
                  ignore (Bp_storage.Kv.apply state.kv t.cop)))
    | Record.Comm { Record.payload; _ } -> (
        match decode_wmsg payload with
        | Error _ -> ()
        | Ok m ->
            let tid =
              match m with
              | Prepare { tid; _ } | Vote { tid; _ } | Decision { tid; _ } -> tid
            in
            let key = (kind_of_wmsg m, tid) in
            Hashtbl.replace state.credits key (credit state key - 1))
    | Record.Recv tr -> (
        match decode_wmsg tr.Record.tpayload with
        | Error _ -> ()
        | Ok (Prepare { tid; op }) ->
            if not (Hashtbl.mem state.cohort tid) then
              Hashtbl.replace state.cohort tid
                { cop = op; voted = None; decision = None; finished = false }
        | Ok (Vote { tid; yes; cohort }) -> (
            match Hashtbl.find_opt state.coord tid with
            | None -> ()
            | Some t ->
                if not (List.mem_assoc cohort t.votes) then
                  t.votes <- (cohort, yes) :: t.votes)
        | Ok (Decision { tid; commit }) -> (
            match Hashtbl.find_opt state.cohort tid with
            | None -> ()
            | Some t -> t.decision <- Some commit))
    | Record.Mirrored _ -> ()

  let digest state =
    let parts =
      [
        Bp_storage.Kv.digest state.kv;
        string_of_int (Hashtbl.length state.coord);
        string_of_int (Hashtbl.length state.cohort);
      ]
    in
    Bp_crypto.Sha256.digest (String.concat "|" parts)

  let describe state =
    String.concat ";"
      (List.map
         (fun (k, v) -> Printf.sprintf "%s=%s" k v)
         (Bp_storage.Kv.bindings state.kv))
end

(* ---------- drivers ---------- *)

type outcome = Committed | Aborted

type pending = {
  ops : (int * Bp_storage.Kv.op) list;
  mutable votes_in : (int * bool) list;
  mutable done_ : bool;
  on_decided : outcome -> unit;
}

type t = {
  api : Api.t;
  mutable next_tid : int;
  pending : (string, pending) Hashtbl.t;
  mutable committed : int;
  mutable aborted : int;
}

let decided_count t = (t.committed, t.aborted)

let decide t tid p =
  if not p.done_ then begin
    p.done_ <- true;
    let commit = List.for_all (fun (_, yes) -> yes) p.votes_in in
    Api.log_commit t.api (encode_event (Decide { tid; commit })) ~on_done:(fun () ->
        List.iter
          (fun (c, _) ->
            Api.send t.api ~dest:c (encode_wmsg (Decision { tid; commit }))
              ~on_done:ignore)
          p.ops;
        Hashtbl.remove t.pending tid;
        if commit then t.committed <- t.committed + 1 else t.aborted <- t.aborted + 1;
        p.on_decided (if commit then Committed else Aborted))
  end

let attach_coordinator api =
  let t =
    { api; next_tid = 0; pending = Hashtbl.create 16; committed = 0; aborted = 0 }
  in
  Api.on_receive api (fun ~src:_ payload ->
      match decode_wmsg payload with
      | Ok (Vote { tid; yes; cohort }) -> (
          match Hashtbl.find_opt t.pending tid with
          | None -> ()
          | Some p ->
              if not (List.mem_assoc cohort p.votes_in) then begin
                p.votes_in <- (cohort, yes) :: p.votes_in;
                if List.length p.votes_in = List.length p.ops then decide t tid p
              end)
      | _ -> ());
  t

let submit t ~ops ~on_decided =
  if ops = [] then invalid_arg "Two_phase.submit: no operations";
  let tid = Printf.sprintf "t%d.%d" (Api.participant t.api) t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let p = { ops; votes_in = []; done_ = false; on_decided } in
  Hashtbl.replace t.pending tid p;
  Api.log_commit t.api
    (encode_event (Begin { tid; cohorts = List.map fst ops }))
    ~on_done:(fun () ->
      List.iter
        (fun (c, op) ->
          Api.send t.api ~dest:c (encode_wmsg (Prepare { tid; op })) ~on_done:ignore)
        ops)

let attach_cohort api =
  let me = Api.participant api in
  Api.on_receive api (fun ~src payload ->
      match decode_wmsg payload with
      | Ok (Prepare { tid; _ }) ->
          (* Optimistic vote: try YES; if the replicas' verification
             routines reject it (the op does not apply), cast NO. The
             routines force the vote to be honest either way. *)
          let cast yes =
            Api.log_commit api
              (encode_event (Vote_cast { tid; yes; cohort = me }))
              ~on_done:(fun () ->
                Api.send api ~dest:src (encode_wmsg (Vote { tid; yes; cohort = me }))
                  ~on_done:ignore)
          in
          Api.log_commit api
            (encode_event (Vote_cast { tid; yes = true; cohort = me }))
            ~on_rejected:(fun () -> cast false)
            ~on_done:(fun () ->
              Api.send api ~dest:src
                (encode_wmsg (Vote { tid; yes = true; cohort = me }))
                ~on_done:ignore)
      | Ok (Decision { tid; _ }) ->
          Api.log_commit api (encode_event (Finish { tid })) ~on_done:ignore
      | _ -> ())

let partition_get node key =
  let described = Blockplane.App.describe (Unit_node.app node) in
  List.find_map
    (fun entry ->
      match String.split_on_char '=' entry with
      | [ k; v ] when String.equal k key -> Some v
      | _ -> None)
    (String.split_on_char ';' described)
