open Blockplane

(* Record payload formats:
   - Commit "request:<dest>:<id>"    — a trusted user triggered a request
   - Comm  payload "count:<id>"      — the message carrying the request
   - Commit "increment-counter"      — consume one received message *)

let request_payload ~dest ~id = Printf.sprintf "request:%d:%d" dest id
let message_payload ~id = Printf.sprintf "count:%d" id
let increment_payload = "increment-counter"

let parse_request payload =
  match String.split_on_char ':' payload with
  | [ "request"; dest; id ] -> (
      match (int_of_string_opt dest, int_of_string_opt id) with
      | Some d, Some i -> Some (d, i)
      | _ -> None)
  | _ -> None

let parse_message payload =
  match String.split_on_char ':' payload with
  | [ "count"; id ] -> int_of_string_opt id
  | _ -> None

module Protocol = struct
  type state = {
    mutable counter : int;
    mutable pending : (int * int) list; (* unconsumed user requests: dest, id *)
    mutable unconsumed_received : int;
  }

  let create () = { counter = 0; pending = []; unconsumed_received = 0 }

  let verify state = function
    | Record.Commit payload when String.equal payload increment_payload ->
        (* Only legal if an actually-received message backs it — the
           counter cannot be inflated by a byzantine proposal. *)
        state.unconsumed_received > 0
    | Record.Commit payload -> parse_request payload <> None
    | Record.Comm { Record.dest; payload; _ } -> (
        (* Only legal if the matching user request was committed and is
           still unconsumed. *)
        match parse_message payload with
        | Some id -> List.mem (dest, id) state.pending
        | None -> false)
    | Record.Recv _ -> true (* middleware already checked it *)
    | Record.Mirrored _ -> true

  let apply state = function
    | Record.Commit payload when String.equal payload increment_payload ->
        state.counter <- state.counter + 1;
        state.unconsumed_received <- state.unconsumed_received - 1
    | Record.Commit payload -> (
        match parse_request payload with
        | Some (dest, id) -> state.pending <- (dest, id) :: state.pending
        | None -> ())
    | Record.Comm { Record.dest; payload; _ } -> (
        match parse_message payload with
        | Some id ->
            state.pending <- List.filter (fun p -> p <> (dest, id)) state.pending
        | None -> ())
    | Record.Recv _ -> state.unconsumed_received <- state.unconsumed_received + 1
    | Record.Mirrored _ -> ()

  let digest state =
    Bp_crypto.Sha256.digest
      (Printf.sprintf "%d|%s|%d" state.counter
         (String.concat ","
            (List.map (fun (d, i) -> Printf.sprintf "%d:%d" d i) state.pending))
         state.unconsumed_received)

  let describe state = Printf.sprintf "counter=%d" state.counter
end

type t = { api : Api.t; mutable next_id : int }

let attach api =
  let t = { api; next_id = 0 } in
  (* StartServer (Algorithm 1, lines 6-11): every received message is
     log-committed as an increment event. *)
  Api.on_receive api (fun ~src:_ _payload ->
      Api.log_commit api increment_payload ~on_done:ignore);
  t

let user_request t ~dest ~on_done =
  let id = t.next_id in
  t.next_id <- id + 1;
  (* Algorithm 1, lines 2-5: commit the request info, then send. *)
  Api.log_commit t.api (request_payload ~dest ~id) ~on_done:(fun () ->
      Api.send t.api ~dest (message_payload ~id) ~on_done);
  ()

let value node =
  match
    String.split_on_char '=' (App.describe (Unit_node.app node))
  with
  | [ "counter"; n ] -> int_of_string n
  | _ -> invalid_arg "Counter.value: node does not run the counter protocol"
