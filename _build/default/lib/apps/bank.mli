(** A replicated banking ledger byzantized with Blockplane — the class of
    mission-critical application the paper targets (§VI-D).

    Each participant keeps a ledger of accounts. Local operations
    (open/deposit/withdraw) are log-committed; cross-participant
    transfers use the communication interface: the source commits a
    withdraw-and-send, the destination credits the amount only when the
    (verified) message arrives. Verification routines reject overdrafts,
    unknown accounts and credits not backed by a received message — a
    byzantine replica can neither mint money nor double-spend. *)

module Ledger : Blockplane.App.S

type op =
  | Open of string * int  (** account, initial balance (trusted bootstrap) *)
  | Deposit of string * int
  | Withdraw of string * int
  | Credit_from_transfer of string * int
      (** destination-side credit; only valid backed by a received
          transfer message *)
  | Transfer_debit of { from_account : string; dest : int; to_account : string; amount : int }
      (** source-side debit that licenses exactly one transfer message *)

val encode_op : op -> string
val decode_op : string -> (op, string) result

type t

val attach : Blockplane.Api.t -> t
(** Installs the transfer-receiving loop. *)

val open_account : t -> string -> int -> on_done:(unit -> unit) -> unit
val deposit : t -> string -> int -> on_done:(unit -> unit) -> unit

val withdraw :
  t -> ?on_rejected:(unit -> unit) -> string -> int -> on_done:(unit -> unit) -> unit
(** Rejected (via verification routines) on overdraft. *)

val transfer :
  t ->
  ?on_rejected:(unit -> unit) ->
  from_account:string ->
  dest:int ->
  to_account:string ->
  int ->
  on_done:(unit -> unit) ->
  unit
(** Debit locally, then ship a credit message to participant [dest].
    [on_done] fires at local commitment of the debit. *)

val balance : Blockplane.Unit_node.t -> string -> int option
(** Balance of an account in a node's ledger replica. *)
